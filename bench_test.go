// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per figure, plus ablations and micro
// benchmarks of the core operations). Each benchmark reports the headline
// quality metric of its figure via b.ReportMetric, so `go test -bench=.`
// doubles as a compact reproduction report:
//
//	medianAE  — median absolute error of score prediction (Figures 2-4, 7)
//	f1        — mean F1 of the PPM validator (Figures 5-6, §6.2.1)
//
// The benchmarks run at the "quick" experiment scale; use
// `go run ./cmd/ppm-bench -scale full` for the full evaluation recorded
// in EXPERIMENTS.md.
package blackboxval_test

import (
	"fmt"
	"math/rand"
	"testing"

	"blackboxval"
	"blackboxval/internal/experiments"
	"blackboxval/internal/stats"
)

// benchScale trims the quick scale further so the full benchmark suite
// stays in the minutes range.
var benchScale = experiments.Scale{
	Name:             "bench",
	TabularRows:      1600,
	ImageRows:        400,
	Repetitions:      12,
	Trials:           6,
	ValidatorBatches: 60,
	ForestSizes:      []int{30},
	Seed:             1,
}

func reportMedianAE(b *testing.B, medians []float64) {
	b.Helper()
	if len(medians) > 0 {
		b.ReportMetric(stats.Median(medians), "medianAE")
	}
}

func benchmarkFigure2(b *testing.B, model string) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(benchScale, model)
		if err != nil {
			b.Fatal(err)
		}
		var medians []float64
		for _, row := range res.Rows {
			medians = append(medians, row.MedianAE)
		}
		reportMedianAE(b, medians)
	}
}

func BenchmarkFigure2aLR(b *testing.B)   { benchmarkFigure2(b, "lr") }
func BenchmarkFigure2bDNN(b *testing.B)  { benchmarkFigure2(b, "dnn") }
func BenchmarkFigure2cXGB(b *testing.B)  { benchmarkFigure2(b, "xgb") }
func BenchmarkFigure2dConv(b *testing.B) { benchmarkFigure2(b, "conv") }

func BenchmarkFigure3UnknownErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		// Report the nonlinear series' worst-case median, the paper's
		// headline robustness claim.
		worst := 0.0
		for _, p := range res.Nonlinear {
			if p.Median > worst {
				worst = p.Median
			}
		}
		b.ReportMetric(worst, "medianAE")
	}
}

func BenchmarkFigure4SampleSize(b *testing.B) {
	scale := benchScale
	scale.Trials = 4
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(scale)
		if err != nil {
			b.Fatal(err)
		}
		// Report the MAE at the largest sample size (the converged regime).
		var last []float64
		for _, s := range res.Series {
			last = append(last, s.Points[len(s.Points)-1].MAE)
		}
		reportMedianAE(b, last)
	}
}

func reportMeanPPMF1(b *testing.B, res *experiments.ValidationResult) {
	b.Helper()
	sum := 0.0
	for _, row := range res.Rows {
		sum += row.F1["PPM"]
	}
	b.ReportMetric(sum/float64(len(res.Rows)), "f1")
}

func BenchmarkValidationKnownMixtures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ValidationKnown(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportMeanPPMF1(b, res)
	}
}

func BenchmarkFigure5UnknownShifts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportMeanPPMF1(b, res)
	}
}

func BenchmarkFigure6AutoML(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, row := range res.Rows {
			sum += row.F1["PPM"]
		}
		b.ReportMetric(sum/float64(len(res.Rows)), "f1")
	}
}

func BenchmarkFigure7CloudModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var maes []float64
		for _, s := range res.Series {
			maes = append(maes, s.MAE)
		}
		reportMedianAE(b, maes)
	}
}

func BenchmarkFigure2aAUC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2AUC(benchScale, "lr")
		if err != nil {
			b.Fatal(err)
		}
		var medians []float64
		for _, row := range res.Rows {
			medians = append(medians, row.MedianAE)
		}
		reportMedianAE(b, medians)
	}
}

func BenchmarkGeneralizationMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.GeneralizationMatrix(benchScale, "lr")
		if err != nil {
			b.Fatal(err)
		}
		// Report the worst unknown-error median: the generalization gap.
		worst := 0.0
		for _, row := range res.Rows {
			if !row.Known && row.MedianAE > worst {
				worst = row.MedianAE
			}
		}
		b.ReportMetric(worst, "medianAE")
	}
}

// Ablation benchmarks for the design choices called out in DESIGN.md.

func BenchmarkAblationPercentileStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPercentileStep(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRegressor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRegressor(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTrainingSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTrainingSize(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationKSFeatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationKSFeatures(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro benchmarks of the deployed-path operations: featurizing a batch
// of model outputs and producing an estimate must be cheap enough to run
// on every serving batch.

func benchPredictorSetup(b *testing.B) (*blackboxval.Predictor, blackboxval.Model, *blackboxval.Dataset) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	ds := blackboxval.IncomeDataset(2000, 1).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := blackboxval.TrainXGB(train, 1)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
		Generators:  blackboxval.KnownTabularGenerators(),
		Repetitions: 12,
		ForestSizes: []int{30},
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return pred, model, serving
}

func BenchmarkEstimateServingBatch(b *testing.B) {
	pred, model, serving := benchPredictorSetup(b)
	proba := model.PredictProba(serving)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.EstimateFromProba(proba)
	}
}

func BenchmarkBlackBoxPredict(b *testing.B) {
	_, model, serving := benchPredictorSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.PredictProba(serving)
	}
}

func BenchmarkPredictionStatistics(b *testing.B) {
	_, model, serving := benchPredictorSetup(b)
	proba := model.PredictProba(serving)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blackboxval.PredictionStatistics(proba, 5)
	}
}

// BenchmarkTrainPredictor measures meta-dataset construction plus forest
// training at several worker-pool widths. Training is bit-identical for
// every workers value, so the sub-benchmarks differ only in wall-clock
// time; the speedup table lives in EXPERIMENTS.md.
func BenchmarkTrainPredictor(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := blackboxval.IncomeDataset(1500, 1).Balance(rng)
	source, _ := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := blackboxval.TrainXGB(train, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
					Generators:  blackboxval.KnownTabularGenerators(),
					Repetitions: 10,
					ForestSizes: []int{30},
					Workers:     workers,
					Seed:        1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
