package blackboxval_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"blackboxval"
)

const sampleCSV = `age,income,job,label
25,50000,eng,no
40,NA,doc,yes
31,72000,eng,yes
58,39000,nurse,no
`

func TestDatasetFromCSVLabeled(t *testing.T) {
	ds, err := blackboxval.DatasetFromCSV(strings.NewReader(sampleCSV), "label")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 4 {
		t.Fatalf("rows = %d", ds.Len())
	}
	if len(ds.Classes) != 2 || ds.Classes[0] != "no" || ds.Classes[1] != "yes" {
		t.Fatalf("classes = %v", ds.Classes)
	}
	if ds.Labels[0] != 0 || ds.Labels[1] != 1 {
		t.Fatalf("labels = %v", ds.Labels)
	}
	if ds.Frame.Column("label") != nil {
		t.Fatal("label column leaked into features")
	}
	if !math.IsNaN(ds.Frame.Column("income").Num[1]) {
		t.Fatal("NA not parsed as missing")
	}
}

func TestDatasetFromCSVUnlabeled(t *testing.T) {
	ds, err := blackboxval.DatasetFromCSV(strings.NewReader(sampleCSV), "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Frame.Column("label") == nil {
		t.Fatal("unlabeled mode should keep all columns")
	}
	for _, y := range ds.Labels {
		if y != 0 {
			t.Fatal("unlabeled dataset should have zero labels")
		}
	}
}

func TestDatasetFromCSVErrors(t *testing.T) {
	if _, err := blackboxval.DatasetFromCSV(strings.NewReader(sampleCSV), "nope"); err == nil {
		t.Fatal("missing label column should error")
	}
	if _, err := blackboxval.DatasetFromCSV(strings.NewReader("age,label\n5,yes\n6,\n"), "label"); err == nil {
		t.Fatal("missing label value should error")
	}
	if _, err := blackboxval.DatasetFromCSV(strings.NewReader("age,label\n5,yes\n6,no\n"), "age"); err == nil {
		t.Fatal("numeric label column should error")
	}
	if _, err := blackboxval.DatasetFromCSV(strings.NewReader("label\nyes\nno\n"), "label"); err == nil {
		t.Fatal("label-only CSV should error")
	}
}

func TestCSVRoundTripThroughPublicAPI(t *testing.T) {
	orig := blackboxval.IncomeDataset(50, 1)
	var buf bytes.Buffer
	if err := blackboxval.WriteDatasetCSV(&buf, orig, true); err != nil {
		t.Fatal(err)
	}
	ds, err := blackboxval.DatasetFromCSV(&buf, "label")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != orig.Len() {
		t.Fatalf("rows = %d, want %d", ds.Len(), orig.Len())
	}
	// Class names survive; labels map back consistently.
	for i := range ds.Labels {
		if ds.Classes[ds.Labels[i]] != orig.Classes[orig.Labels[i]] {
			t.Fatalf("row %d label changed", i)
		}
	}
	// A model trained on generated data accepts the round-tripped batch.
	model, err := blackboxval.TrainLR(blackboxval.IncomeDataset(600, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	proba := model.PredictProba(ds)
	if proba.Rows != ds.Len() {
		t.Fatal("prediction on round-tripped CSV failed")
	}
}

func TestWriteDatasetCSVRejectsImages(t *testing.T) {
	ds := blackboxval.DigitsDataset(5, 1)
	if err := blackboxval.WriteDatasetCSV(&bytes.Buffer{}, ds, false); err == nil {
		t.Fatal("image dataset should be rejected")
	}
}
