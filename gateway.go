package blackboxval

// The shadow-validation gateway: a resilient, observable reverse proxy
// that puts the performance predictor on the serving path. Traffic to
// POST /predict_proba is forwarded to the backend model server through
// a hardened client (timeouts, retries with backoff, circuit breaker)
// while every response batch is tapped — asynchronously, off the hot
// path — into a Monitor, so estimated accuracy and alarm state are
// maintained continuously without labels. See cmd/ppm-gateway for the
// runnable binary.

import (
	"net/http"
	"time"

	"blackboxval/internal/gateway"
)

// Gateway is the shadow-validation serving proxy.
type Gateway = gateway.Gateway

// GatewayConfig configures NewGateway.
type GatewayConfig = gateway.Config

// GatewayStatus is the JSON document the gateway serves at /status.
type GatewayStatus = gateway.Status

// BreakerConfig tunes the gateway's circuit breaker.
type BreakerConfig = gateway.BreakerConfig

// NewGateway validates the configuration and returns a ready gateway.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return gateway.New(cfg) }

// ListenAndServeGracefully serves handler at addr and drains in-flight
// requests for up to drain after SIGINT/SIGTERM before returning.
func ListenAndServeGracefully(addr string, handler http.Handler, drain time.Duration) error {
	return gateway.ListenAndServe(addr, handler, drain)
}
