package blackboxval_test

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"blackboxval"
)

// The quickstart flow: train a black box, learn a performance predictor
// for it, and estimate the accuracy on an unlabeled serving batch.
func Example() {
	rng := rand.New(rand.NewSource(1))
	ds := blackboxval.IncomeDataset(3000, 1).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	model, err := blackboxval.TrainXGB(train, 1)
	if err != nil {
		panic(err)
	}
	predictor, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
		Generators:  blackboxval.KnownTabularGenerators(),
		Repetitions: 20,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}

	estimate := predictor.Estimate(serving) // no labels needed
	truth := blackboxval.AccuracyScore(model.PredictProba(serving), serving.Labels)
	fmt.Println("estimate within 0.1 of truth:", math.Abs(estimate-truth) < 0.1)
	// Output: estimate within 0.1 of truth: true
}

// Validators answer the binary question "did accuracy drop more than t?".
func ExampleTrainValidator() {
	rng := rand.New(rand.NewSource(2))
	ds := blackboxval.HeartDataset(3000, 2).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	model, err := blackboxval.TrainXGB(train, 2)
	if err != nil {
		panic(err)
	}
	validator, err := blackboxval.TrainValidator(model, test, blackboxval.ValidatorConfig{
		Generators: blackboxval.KnownTabularGenerators(),
		Threshold:  0.1,
		Batches:    100,
		Seed:       2,
	})
	if err != nil {
		panic(err)
	}

	broken := blackboxval.Scaling{}.Corrupt(serving, 0.95, rng)
	fmt.Println("alarm on clean batch:", validator.Violation(serving))
	fmt.Println("alarm on catastrophically scaled batch:", validator.Violation(broken))
	// Output:
	// alarm on clean batch: false
	// alarm on catastrophically scaled batch: true
}

// Explain attributes an alarm to the columns that drifted.
func ExampleExplain() {
	rng := rand.New(rand.NewSource(3))
	ds := blackboxval.BankDataset(3000, 3)
	reference, serving := ds.Split(0.5, rng)

	// A preprocessing bug scales one column by 1000.
	col := serving.Frame.Column("balance")
	for i := range col.Num {
		col.Num[i] *= 1000
	}

	report, err := blackboxval.Explain(reference, serving)
	if err != nil {
		panic(err)
	}
	fmt.Println("most suspicious column:", report.Top(1)[0].Column)
	// Output: most suspicious column: balance
}

// Error generators corrupt dataset copies at a chosen magnitude.
func ExampleGenerator() {
	rng := rand.New(rand.NewSource(4))
	ds := blackboxval.IncomeDataset(100, 4)
	corrupted := blackboxval.MissingValues{}.Corrupt(ds, 0.5, rng)

	missing := 0
	for _, name := range []string{"occupation", "marital_status", "sex"} {
		for _, v := range corrupted.Frame.Column(name).Str {
			if v == "" {
				missing++
			}
		}
	}
	fmt.Println("introduced missing values:", missing > 0)
	fmt.Println("original untouched:", ds.Frame.Column("occupation").Str[0] != "")
	// Output:
	// introduced missing values: true
	// original untouched: true
}

// DatasetFromCSV ingests user data with schema inference.
func ExampleDatasetFromCSV() {
	csv := `age,city,label
34,berlin,yes
28,paris,no
45,berlin,yes
`
	ds, err := blackboxval.DatasetFromCSV(newReader(csv), "label")
	if err != nil {
		panic(err)
	}
	fmt.Println("rows:", ds.Len())
	fmt.Println("classes:", ds.Classes)
	fmt.Println("numeric age:", ds.Frame.Column("age").Num[0])
	// Output:
	// rows: 3
	// classes: [no yes]
	// numeric age: 34
}

// newReader avoids importing strings at the top for a single example.
func newReader(s string) io.Reader { return strings.NewReader(s) }
