#!/usr/bin/env bash
# Three-process smoke test for the serving stack:
#
#   ppm-serve (backend model server)  <-  ppm-gateway (shadow proxy)  <-  curl
#
# Boots both binaries on loopback, fires a smoke request through the
# proxy, asserts the gateway's /metrics endpoint scrapes as Prometheus
# text with the traffic accounted for, and shuts both down gracefully
# (SIGTERM, exercising the shared drain path). Run via `make demo`.
set -euo pipefail

cd "$(dirname "$0")/.."

SERVE_ADDR=127.0.0.1:18080
GW_ADDR=127.0.0.1:18088
WORKDIR="$(mktemp -d)"
SERVE_PID=""
GW_PID=""

cleanup() {
  # SIGTERM first so the graceful drain path runs; escalate only if needed.
  for pid in "$GW_PID" "$SERVE_PID"; do
    [ -n "$pid" ] && kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "$GW_PID" "$SERVE_PID"; do
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

wait_for() { # url [attempts]
  local url="$1" attempts="${2:-100}"
  for _ in $(seq "$attempts"); do
    if curl -fsS "$url" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "demo: $url never came up" >&2
  return 1
}

echo "demo: building binaries"
go build -o "$WORKDIR/ppm-serve" ./cmd/ppm-serve
go build -o "$WORKDIR/ppm-gateway" ./cmd/ppm-gateway

echo "demo: starting ppm-serve on $SERVE_ADDR (small lr model, quick to train)"
"$WORKDIR/ppm-serve" -dataset income -model lr -rows 1200 -addr "$SERVE_ADDR" \
  >"$WORKDIR/serve.log" 2>&1 &
SERVE_PID=$!
wait_for "http://$SERVE_ADDR/healthz" 300

echo "demo: starting ppm-gateway on $GW_ADDR (proxy mode)"
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  >"$WORKDIR/gateway.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"

echo "demo: firing a smoke request through the proxy"
# An empty JSON object is a well-formed request the backend rejects with
# 400 — it still exercises the full proxy path (forward, relay, account).
code="$(curl -s -o /dev/null -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' -d '{}' \
  "http://$GW_ADDR/predict_proba")"
if [ "$code" != "400" ]; then
  echo "demo: expected the backend's 400 relayed through the gateway, got $code" >&2
  cat "$WORKDIR/gateway.log" >&2
  exit 1
fi

echo "demo: asserting /metrics scrapes"
metrics="$(curl -fsS "http://$GW_ADDR/metrics")"
echo "$metrics" | grep -q '^# TYPE gateway_requests_total counter$' || {
  echo "demo: /metrics is missing the requests counter TYPE line" >&2; exit 1; }
echo "$metrics" | grep -q '^gateway_requests_total{outcome="upstream_4xx"} 1$' || {
  echo "demo: proxied smoke request not accounted in /metrics:" >&2
  echo "$metrics" | grep gateway_requests_total >&2 || true
  exit 1
}
echo "$metrics" | grep -q '^gateway_breaker_state 0$' || {
  echo "demo: breaker should be closed" >&2; exit 1; }

echo "demo: checking /status"
curl -fsS "http://$GW_ADDR/status" | grep -q '"breaker_state":"closed"' || {
  echo "demo: /status missing breaker state" >&2; exit 1; }

echo "demo: OK — gateway proxied traffic and /metrics scraped cleanly"
