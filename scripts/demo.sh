#!/usr/bin/env bash
# Smoke test for the serving stack, in eight acts:
#
#   ppm-serve (backend model server)  <-  ppm-gateway (shadow proxy)  <-  curl / ppm-traffic
#                                              |
#                                              +-> ppm-traffic sink (alert webhook)
#
# Act 1 boots the backend and a proxy-mode gateway, fires a smoke
# request and asserts the gateway's /metrics endpoint scrapes as
# Prometheus text with the traffic accounted for. Act 2 trains a small
# validation bundle, restarts the gateway with shadow validation and an
# alert rule wired to a webhook sink, drives a corruption ramp through
# it with ppm-traffic, and asserts the drift timeline filled, the alert
# reached the sink, and every response carried an X-Request-ID. Act 3
# restarts the gateway with the incident flight recorder, ramps a
# single-column corruption (-corrupt-column age) through it, and
# asserts the alert auto-captured an incident bundle whose per-column
# attribution ranks the corrupted column first, then renders it with
# ppm-diagnose. Act 4 boots a second gateway replica plus ppm-aggregate
# over both, round-robins a corruption ramp across the replicas with
# ppm-traffic -targets, and asserts the merged fleet timeline fills,
# the fleet alert reaches the sink (with /healthz flipping to 503),
# and that killing one replica degrades to the stale-shards gauge
# instead of a false alarm. Act 5 closes the label-feedback loop: the
# gateway restarts with an alert rule on |h - labeled accuracy|, a
# corruption ramp runs with ground truth replayed one batch behind
# (ppm-traffic -label-lag 1), and the act asserts the labels joined,
# the Bayesian credible interval narrowed, the labeled-accuracy series
# reached the drift timeline, and the gap rule fired on the corrupted
# tail. Act 6 exercises the serving SLO observatory: the gateway
# restarts with a 1ns latency budget (every request lands over budget),
# ppm-traffic drives an open-loop ramp (-rate, coordinated-omission-free
# arrival schedule) through it, and the act asserts the burn-rate rule
# fired, the firing edge auto-captured an incident bundle embedding
# CPU+heap pprof profiles plus the SLO snapshot with slow-request
# exemplars, /slo and the ppm_serving_* metric families report the
# over-budget state, and ppm-diagnose -extract-profiles writes a pprof
# pair that go tool pprof can open. Act 7 turns on distributed tracing:
# backend and gateway restart with span journals (-trace-dir),
# ppm-traffic drives a half-sampled ramp (-trace-sample 0.5, the
# deterministic head-sampling verdict is a pure function of the
# seed-derived trace id), and ppm-diagnose -trace stitches the two
# on-disk journals into one waterfall that must carry the gateway
# relay, backend predict and shadow monitor observe spans under a
# single shared trace id — while the unsampled trace ids left no spans
# anywhere. Act 8 turns on the durable timeline store: the gateway
# restarts with -tsdb-dir and the act-2 alert rule, a corruption ramp
# fires the alert live, and the act asserts /monitor/timeline/range
# serves the persisted windows, that the history survives a gateway
# restart onto the same directory, and that ppm-backtest replaying the
# on-disk windows reproduces the live webhook alert event byte for
# byte. All acts shut down gracefully (SIGTERM, exercising the
# shared drain path). Run via `make demo`.
set -euo pipefail

cd "$(dirname "$0")/.."

SERVE_ADDR=127.0.0.1:18080
GW_ADDR=127.0.0.1:18088
GW2_ADDR=127.0.0.1:18089
AGG_ADDR=127.0.0.1:18090
SINK_ADDR=127.0.0.1:18099
WORKDIR="$(mktemp -d)"
SERVE_PID=""
GW_PID=""
GW2_PID=""
AGG_PID=""
SINK_PID=""

cleanup() {
  # SIGTERM first so the graceful drain path runs; escalate only if needed.
  for pid in "$AGG_PID" "$GW_PID" "$GW2_PID" "$SERVE_PID" "$SINK_PID"; do
    [ -n "$pid" ] && kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "$AGG_PID" "$GW_PID" "$GW2_PID" "$SERVE_PID" "$SINK_PID"; do
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

wait_for() { # url [attempts]
  local url="$1" attempts="${2:-100}"
  for _ in $(seq "$attempts"); do
    if curl -fsS "$url" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "demo: $url never came up" >&2
  return 1
}

echo "demo: building binaries"
go build -o "$WORKDIR/ppm-serve" ./cmd/ppm-serve
go build -o "$WORKDIR/ppm-gateway" ./cmd/ppm-gateway
go build -o "$WORKDIR/ppm-validate" ./cmd/ppm-validate
go build -o "$WORKDIR/ppm-traffic" ./cmd/ppm-traffic
go build -o "$WORKDIR/ppm-diagnose" ./cmd/ppm-diagnose
go build -o "$WORKDIR/ppm-aggregate" ./cmd/ppm-aggregate
go build -o "$WORKDIR/ppm-backtest" ./cmd/ppm-backtest

echo "demo: starting ppm-serve on $SERVE_ADDR (small lr model, quick to train)"
"$WORKDIR/ppm-serve" -dataset income -model lr -rows 1200 -addr "$SERVE_ADDR" \
  >"$WORKDIR/serve.log" 2>&1 &
SERVE_PID=$!
wait_for "http://$SERVE_ADDR/healthz" 300

echo "demo: starting ppm-gateway on $GW_ADDR (proxy mode)"
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  >"$WORKDIR/gateway.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"

echo "demo: firing a smoke request through the proxy"
# An empty JSON object is a well-formed request the backend rejects with
# 400 — it still exercises the full proxy path (forward, relay, account).
code="$(curl -s -o /dev/null -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' -d '{}' \
  "http://$GW_ADDR/predict_proba")"
if [ "$code" != "400" ]; then
  echo "demo: expected the backend's 400 relayed through the gateway, got $code" >&2
  cat "$WORKDIR/gateway.log" >&2
  exit 1
fi

echo "demo: asserting /metrics scrapes"
metrics="$(curl -fsS "http://$GW_ADDR/metrics")"
echo "$metrics" | grep -q '^# TYPE gateway_requests_total counter$' || {
  echo "demo: /metrics is missing the requests counter TYPE line" >&2; exit 1; }
echo "$metrics" | grep -q '^gateway_requests_total{outcome="upstream_4xx"} 1$' || {
  echo "demo: proxied smoke request not accounted in /metrics:" >&2
  echo "$metrics" | grep gateway_requests_total >&2 || true
  exit 1
}
echo "$metrics" | grep -q '^gateway_breaker_state 0$' || {
  echo "demo: breaker should be closed" >&2; exit 1; }

echo "demo: checking /status"
# NB: assertions capture the body first — `curl | grep -q` under
# pipefail can fail spuriously when grep matches early and curl takes a
# write error on the closed pipe.
status_body="$(curl -fsS "http://$GW_ADDR/status")"
echo "$status_body" | grep -q '"breaker_state":"closed"' || {
  echo "demo: /status missing breaker state" >&2; exit 1; }

echo "demo: act 1 OK — gateway proxied traffic and /metrics scraped cleanly"

# ---- Act 2: shadow validation, drift timeline, alerting -------------

echo "demo: training a validation bundle (small lr model)"
"$WORKDIR/ppm-validate" train -dataset income -model lr -rows 1200 \
  -threshold 0.05 -out "$WORKDIR/bundle" >"$WORKDIR/train.log" 2>&1

cat >"$WORKDIR/rules.json" <<'EOF'
{"rules": [
  {"name": "accuracy_alarm", "series": "alarm", "op": ">=", "threshold": 1,
   "reduce": "max", "for_windows": 1, "clear_windows": 2, "severity": "critical"}
]}
EOF

echo "demo: starting the alert webhook sink on $SINK_ADDR"
"$WORKDIR/ppm-traffic" sink -addr "$SINK_ADDR" >"$WORKDIR/sink.log" 2>&1 &
SINK_PID=$!
wait_for "http://$SINK_ADDR/healthz"

echo "demo: restarting the gateway with shadow validation + alerting"
kill -TERM "$GW_PID" && wait "$GW_PID" 2>/dev/null || true
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  -bundle "$WORKDIR/bundle" \
  -alert-rules "$WORKDIR/rules.json" -alert-webhook "http://$SINK_ADDR/" \
  >"$WORKDIR/gateway2.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"

echo "demo: driving a corruption ramp through the proxy"
"$WORKDIR/ppm-traffic" send -target "http://$GW_ADDR" -dataset income \
  -batches 6 -rows 300 -corrupt scaling -max-magnitude 0.95 -clean 2 \
  | tee "$WORKDIR/traffic.log"
grep -q 'request_id gw-' "$WORKDIR/traffic.log" || {
  echo "demo: ppm-traffic responses missing gateway-minted request ids" >&2; exit 1; }

echo "demo: asserting every response carries X-Request-ID (even errors)"
curl -s -o /dev/null -D "$WORKDIR/headers" \
  -X POST -H 'Content-Type: application/json' -d '{}' \
  "http://$GW_ADDR/predict_proba"
grep -qi '^x-request-id:' "$WORKDIR/headers" || {
  echo "demo: 4xx response lost the X-Request-ID header" >&2
  cat "$WORKDIR/headers" >&2; exit 1; }

echo "demo: asserting the drift timeline filled"
# The shadow tap observes batches asynchronously; poll until windows
# with series aggregates show up on /monitor/timeline.
timeline_ok=""
for _ in $(seq 50); do
  tl_body="$(curl -fsS "http://$GW_ADDR/monitor/timeline" 2>/dev/null || true)"
  if echo "$tl_body" | grep -q '"estimate"'; then
    timeline_ok=1; break
  fi
  sleep 0.2
done
[ -n "$timeline_ok" ] || {
  echo "demo: /monitor/timeline never produced a window with series data:" >&2
  curl -fsS "http://$GW_ADDR/monitor/timeline" >&2 || true
  cat "$WORKDIR/gateway2.log" >&2; exit 1; }

echo "demo: waiting for the alert to reach the webhook sink"
alert_ok=""
for _ in $(seq 50); do
  count="$(curl -fsS "http://$SINK_ADDR/count" | sed 's/[^0-9]//g')"
  if [ -n "$count" ] && [ "$count" -ge 1 ]; then alert_ok=1; break; fi
  sleep 0.2
done
[ -n "$alert_ok" ] || {
  echo "demo: the corruption ramp never produced a webhook alert:" >&2
  curl -fsS "http://$SINK_ADDR/events" >&2 || true
  cat "$WORKDIR/gateway2.log" >&2; exit 1; }
sink_events="$(curl -fsS "http://$SINK_ADDR/events")"
echo "$sink_events" | grep -q '"state":"firing"' || {
  echo "demo: sink events missing a firing alert" >&2; exit 1; }

echo "demo: asserting alert metrics on /metrics"
gw2_metrics="$(curl -fsS "http://$GW_ADDR/metrics")"
echo "$gw2_metrics" | grep -q '^ppm_alerts_total{rule="accuracy_alarm"} ' || {
  echo "demo: ppm_alerts_total missing from the gateway registry" >&2; exit 1; }

# ---- Act 3: incident flight recorder with drift attribution ---------

# The act-2 rule fires on the very first alarming window, when the
# reservoir has barely seen corrupted rows; holding the alarm for two
# windows lets the capture accumulate enough drifted mass for a
# decisive attribution.
cat >"$WORKDIR/rules3.json" <<'EOF'
{"rules": [
  {"name": "accuracy_alarm", "series": "alarm", "op": ">=", "threshold": 1,
   "reduce": "max", "for_windows": 2, "clear_windows": 2, "severity": "critical"}
]}
EOF

echo "demo: restarting the gateway with the incident flight recorder"
kill -TERM "$GW_PID" && wait "$GW_PID" 2>/dev/null || true
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  -bundle "$WORKDIR/bundle" \
  -alert-rules "$WORKDIR/rules3.json" -alert-webhook "http://$SINK_ADDR/" \
  -incident-dir "$WORKDIR/incidents" \
  >"$WORKDIR/gateway3.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"

echo "demo: asserting runtime self-telemetry on /metrics"
gw3_metrics="$(curl -fsS "http://$GW_ADDR/metrics")"
echo "$gw3_metrics" | grep -q '^ppm_go_goroutines ' || {
  echo "demo: ppm_go_goroutines missing from the gateway registry" >&2; exit 1; }

echo "demo: ramping a single-column corruption (age x1000) through the proxy"
"$WORKDIR/ppm-traffic" send -target "http://$GW_ADDR" -dataset income \
  -batches 7 -rows 300 -corrupt-column age -max-magnitude 0.95 -clean 2 \
  >"$WORKDIR/traffic3.log" 2>&1

echo "demo: waiting for the alert to auto-capture an incident bundle"
incident_ok=""
for _ in $(seq 50); do
  inc_body="$(curl -fsS "http://$GW_ADDR/debug/incidents" 2>/dev/null || true)"
  if echo "$inc_body" | grep -q '"inc-'; then
    incident_ok=1; break
  fi
  sleep 0.2
done
[ -n "$incident_ok" ] || {
  echo "demo: the corruption ramp never auto-captured an incident:" >&2
  curl -fsS "http://$GW_ADDR/debug/incidents" >&2 || true
  cat "$WORKDIR/gateway3.log" >&2; exit 1; }

echo "demo: asserting the bundle attributes the drift to the corrupted column"
incidents_body="$(curl -fsS "http://$GW_ADDR/debug/incidents")"
echo "$incidents_body" | grep -q '"top_column":"age"' || {
  echo "demo: incident attribution did not rank the corrupted column first:" >&2
  echo "$incidents_body" >&2
  exit 1; }
latest_body="$(curl -fsS "http://$GW_ADDR/debug/incidents/latest")"
echo "$latest_body" | grep -q '"reason":"alert:' || {
  echo "demo: latest bundle was not captured by the alert hook" >&2; exit 1; }

echo "demo: rendering the bundle with ppm-diagnose"
"$WORKDIR/ppm-diagnose" -dir "$WORKDIR/incidents" >"$WORKDIR/incident.md"
grep -q '| 1 | age |' "$WORKDIR/incident.md" || {
  echo "demo: ppm-diagnose report does not rank age first:" >&2
  cat "$WORKDIR/incident.md" >&2; exit 1; }

# ---- Act 4: two replicas, fleet aggregation, stale-shard degradation

echo "demo: restarting gateway replica gw-a (shadow validation, no local alerting)"
kill -TERM "$GW_PID" && wait "$GW_PID" 2>/dev/null || true
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  -bundle "$WORKDIR/bundle" -replica gw-a \
  >"$WORKDIR/gateway4a.log" 2>&1 &
GW_PID=$!
echo "demo: starting gateway replica gw-b on $GW2_ADDR"
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW2_ADDR" \
  -bundle "$WORKDIR/bundle" -replica gw-b \
  >"$WORKDIR/gateway4b.log" 2>&1 &
GW2_PID=$!
wait_for "http://$GW_ADDR/healthz"
wait_for "http://$GW2_ADDR/healthz"

echo "demo: starting ppm-aggregate over both replicas on $AGG_ADDR"
# Alerting moves to the fleet level: the same rule file as act 2, now
# evaluated on the merged timeline and webhooked to the same sink.
"$WORKDIR/ppm-aggregate" \
  -replicas "gw-a=http://$GW_ADDR,gw-b=http://$GW2_ADDR" \
  -addr "$AGG_ADDR" -interval 500ms -stale-after 2s \
  -alert-rules "$WORKDIR/rules.json" -alert-webhook "http://$SINK_ADDR/" \
  >"$WORKDIR/aggregate.log" 2>&1 &
AGG_PID=$!
wait_for "http://$AGG_ADDR/healthz"
fleet_dash="$(curl -fsS "http://$AGG_ADDR/")"
echo "$fleet_dash" | grep -q 'Fleet drift timeline' || {
  echo "demo: fleet dashboard did not render" >&2; exit 1; }

sink_before="$(curl -fsS "http://$SINK_ADDR/count" | sed 's/[^0-9]//g')"

echo "demo: round-robining a corruption ramp across both replicas"
"$WORKDIR/ppm-traffic" send -targets "http://$GW_ADDR,http://$GW2_ADDR" \
  -dataset income -batches 8 -rows 300 -corrupt scaling -max-magnitude 0.95 \
  -clean 2 >"$WORKDIR/traffic4.log" 2>&1

echo "demo: waiting for the merged fleet timeline to fill"
fleet_ok=""
for _ in $(seq 50); do
  fleet_tl="$(curl -fsS "http://$AGG_ADDR/timeline" 2>/dev/null || true)"
  if echo "$fleet_tl" | grep -q '"estimate"'; then
    fleet_ok=1; break
  fi
  sleep 0.2
done
[ -n "$fleet_ok" ] || {
  echo "demo: aggregator /timeline never produced a merged window:" >&2
  curl -fsS "http://$AGG_ADDR/timeline" >&2 || true
  cat "$WORKDIR/aggregate.log" >&2; exit 1; }

echo "demo: waiting for the fleet alert to reach the webhook sink"
fleet_alert=""
for _ in $(seq 50); do
  count="$(curl -fsS "http://$SINK_ADDR/count" | sed 's/[^0-9]//g')"
  if [ -n "$count" ] && [ "$count" -gt "${sink_before:-0}" ]; then fleet_alert=1; break; fi
  sleep 0.2
done
[ -n "$fleet_alert" ] || {
  echo "demo: the fleet-level alert never reached the sink:" >&2
  cat "$WORKDIR/aggregate.log" >&2; exit 1; }

echo "demo: asserting the aggregator /healthz reports 503 while the fleet alarm is active"
agg_code="$(curl -s -o /dev/null -w '%{http_code}' "http://$AGG_ADDR/healthz")"
if [ "$agg_code" != "503" ]; then
  echo "demo: aggregator /healthz returned $agg_code during an active fleet alert" >&2
  exit 1
fi

echo "demo: asserting federation metrics on the aggregator /metrics"
agg_metrics="$(curl -fsS "http://$AGG_ADDR/metrics")"
echo "$agg_metrics" | grep -q '^ppm_federate_replicas 2$' || {
  echo "demo: ppm_federate_replicas gauge wrong:" >&2
  echo "$agg_metrics" | grep ppm_federate >&2 || true; exit 1; }
echo "$agg_metrics" | grep -q '^ppm_federate_windows_merged_total [1-9]' || {
  echo "demo: no fleet windows merged" >&2; exit 1; }

echo "demo: killing replica gw-b and waiting for stale-shard degradation"
kill -TERM "$GW2_PID" && wait "$GW2_PID" 2>/dev/null || true
GW2_PID=""
stale_ok=""
for _ in $(seq 50); do
  stale_metrics="$(curl -fsS "http://$AGG_ADDR/metrics" 2>/dev/null || true)"
  if echo "$stale_metrics" | grep -q '^ppm_federate_stale_shards 1$'; then
    stale_ok=1; break
  fi
  sleep 0.2
done
[ -n "$stale_ok" ] || {
  echo "demo: dead replica never surfaced as a stale shard:" >&2
  curl -fsS "http://$AGG_ADDR/metrics" | grep ppm_federate >&2 || true
  cat "$WORKDIR/aggregate.log" >&2; exit 1; }
agg_status="$(curl -fsS "http://$AGG_ADDR/status")"
echo "$agg_status" | grep -q '"stale":true' || {
  echo "demo: /status does not flag the dead replica as stale" >&2; exit 1; }

# ---- Act 5: label feedback — lagged ground truth closes the loop ----

echo "demo: stopping the aggregator (act 5 is single-replica)"
kill -TERM "$AGG_PID" && wait "$AGG_PID" 2>/dev/null || true
AGG_PID=""

# The gap rule watches |h - labeled accuracy|: h keeps estimating from
# unlabeled batch statistics while the replayed ground truth says what
# the model actually scored. The ramp uses flipped_sign — one of the
# paper's held-out *unknown* error types h was never trained on (the
# bundle trains on the four known tabular types) — so h stays confident
# while the labels disagree; only the delayed ground truth exposes the
# gap. (A known type like scaling would NOT fire this rule: act-2's h
# tracks it to within ~0.03.)
cat >"$WORKDIR/rules5.json" <<'EOF'
{"rules": [
  {"name": "h_acc_gap", "series": "h_abs_gap", "op": ">=", "threshold": 0.15,
   "reduce": "max", "for_windows": 1, "clear_windows": 2, "severity": "critical"}
]}
EOF

echo "demo: restarting the gateway with label feedback + the |h - acc| gap rule"
kill -TERM "$GW_PID" && wait "$GW_PID" 2>/dev/null || true
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  -bundle "$WORKDIR/bundle" \
  -alert-rules "$WORKDIR/rules5.json" -alert-webhook "http://$SINK_ADDR/" \
  >"$WORKDIR/gateway5.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"

sink_before5="$(curl -fsS "http://$SINK_ADDR/count" | sed 's/[^0-9]//g')"

echo "demo: driving an unknown-error ramp with ground truth replayed one batch behind"
"$WORKDIR/ppm-traffic" send -target "http://$GW_ADDR" -dataset income \
  -batches 8 -rows 300 -corrupt flipped_sign -max-magnitude 0.95 -clean 3 \
  -label-lag 1 >"$WORKDIR/traffic5.log" 2>&1
grep -q 'labels: replayed' "$WORKDIR/traffic5.log" || {
  echo "demo: ppm-traffic never replayed labels:" >&2
  cat "$WORKDIR/traffic5.log" >&2; exit 1; }

echo "demo: waiting for the labels to join and the credible interval to narrow"
labels_ok=""
for _ in $(seq 50); do
  labels_status="$(curl -fsS "http://$GW_ADDR/labels/status" 2>/dev/null || true)"
  joined="$(echo "$labels_status" | sed -n 's/.*"rows_labeled":\([0-9]*\).*/\1/p')"
  if [ -n "$joined" ] && [ "$joined" -ge 2400 ]; then labels_ok=1; break; fi
  sleep 0.2
done
[ -n "$labels_ok" ] || {
  echo "demo: /labels/status never accounted the replayed ground truth:" >&2
  echo "$labels_status" >&2
  cat "$WORKDIR/gateway5.log" >&2; exit 1; }
# With ~2400 labeled rows the Beta(1,1) prior's 0.95-wide interval must
# have collapsed; 0.1 is loose for the demo's clean/corrupt mix.
overall="$(echo "$labels_status" | grep -o '"overall":{[^}]*}')"
acc_lo="$(echo "$overall" | sed -n 's/.*"lo":\([0-9.e-]*\).*/\1/p')"
acc_hi="$(echo "$overall" | sed -n 's/.*"hi":\([0-9.e-]*\).*/\1/p')"
awk -v lo="$acc_lo" -v hi="$acc_hi" 'BEGIN { exit !(hi > lo && hi - lo < 0.1) }' || {
  echo "demo: labeled-accuracy interval [$acc_lo, $acc_hi] did not narrow" >&2
  echo "$labels_status" >&2; exit 1; }

echo "demo: asserting the labeled-accuracy series reached the drift timeline"
tl5_body="$(curl -fsS "http://$GW_ADDR/monitor/timeline")"
echo "$tl5_body" | grep -q '"labeled_acc_mean"' || {
  echo "demo: /monitor/timeline is missing the labeled_acc_mean series" >&2; exit 1; }

echo "demo: waiting for the |h - acc| gap alert to reach the sink"
gap_alert=""
for _ in $(seq 50); do
  count="$(curl -fsS "http://$SINK_ADDR/count" | sed 's/[^0-9]//g')"
  if [ -n "$count" ] && [ "$count" -gt "${sink_before5:-0}" ]; then gap_alert=1; break; fi
  sleep 0.2
done
[ -n "$gap_alert" ] || {
  echo "demo: the corrupted tail never fired the h_acc_gap rule:" >&2
  curl -fsS "http://$GW_ADDR/monitor/timeline" >&2 || true
  cat "$WORKDIR/gateway5.log" >&2; exit 1; }
sink5_events="$(curl -fsS "http://$SINK_ADDR/events")"
echo "$sink5_events" | grep -q '"rule":"h_acc_gap"' || {
  echo "demo: sink events missing the h_acc_gap rule" >&2
  echo "$sink5_events" >&2; exit 1; }

# ---- Act 6: serving SLO observatory — burn rate triggers a profiled
# ---- incident capture under an open-loop ramp

# A 1ns budget puts every request over budget, so the burn-rate series
# hits 1/(1-target) = 100 at the first window close and the built-in
# serving_burn_rate rule (threshold 1.0, on by default) fires
# deterministically. The short -slo-window closes windows quickly and
# the short -profile-cpu keeps the capture fast.
echo "demo: restarting the gateway with a 1ns latency budget (SLO observatory act)"
kill -TERM "$GW_PID" && wait "$GW_PID" 2>/dev/null || true
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  -bundle "$WORKDIR/bundle" \
  -incident-dir "$WORKDIR/incidents6" \
  -slo-budget 1ns -slo-window 8 -profile-cpu 100ms \
  >"$WORKDIR/gateway6.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"

echo "demo: driving an open-loop ramp (fixed arrival rate) through the gateway"
"$WORKDIR/ppm-traffic" send -target "http://$GW_ADDR" -dataset income \
  -batches 16 -rows 120 -rate 40 >"$WORKDIR/traffic6.log" 2>&1
grep -q 'latency (open loop @ 40.0/s): 16 requests, 0 errors' "$WORKDIR/traffic6.log" || {
  echo "demo: ppm-traffic open-loop latency summary missing or lossy:" >&2
  cat "$WORKDIR/traffic6.log" >&2; exit 1; }

echo "demo: asserting /slo reports the over-budget burn state"
slo_body="$(curl -fsS "http://$GW_ADDR/slo")"
echo "$slo_body" | grep -q '"stage":"request"' || {
  echo "demo: /slo missing the request stage:" >&2
  echo "$slo_body" >&2; exit 1; }
over="$(echo "$slo_body" | sed -n 's/.*"over_budget":\([0-9]*\).*/\1/p')"
if [ -z "$over" ] || [ "$over" -lt 16 ]; then
  echo "demo: /slo over_budget = '$over', want >= 16 under a 1ns budget" >&2
  echo "$slo_body" >&2; exit 1
fi

echo "demo: asserting the ppm_serving_* families on /metrics"
gw6_metrics="$(curl -fsS "http://$GW_ADDR/metrics")"
for fam in ppm_serving_stage_duration_seconds ppm_serving_inflight \
           ppm_serving_over_budget_total ppm_serving_burn_rate; do
  echo "$gw6_metrics" | grep -q "^# TYPE $fam " || {
    echo "demo: /metrics missing the $fam family" >&2; exit 1; }
done

echo "demo: waiting for the burn-rate alert to auto-capture a profiled bundle"
# The CPU profile takes -profile-cpu wall time after the firing edge;
# poll until the bundle shows up with the burn-rate trigger.
burn_ok=""
for _ in $(seq 50); do
  inc6_body="$(curl -fsS "http://$GW_ADDR/debug/incidents/latest" 2>/dev/null || true)"
  if echo "$inc6_body" | grep -q '"reason":"alert:serving_burn'; then
    burn_ok=1; break
  fi
  sleep 0.2
done
[ -n "$burn_ok" ] || {
  echo "demo: the burn-rate rule never captured an incident bundle:" >&2
  curl -fsS "http://$GW_ADDR/debug/incidents" >&2 || true
  cat "$WORKDIR/gateway6.log" >&2; exit 1; }
echo "$inc6_body" | grep -q '"cpu":"' || {
  echo "demo: burn-rate bundle carries no CPU pprof profile:" >&2
  echo "$inc6_body" | head -c 2000 >&2; exit 1; }
echo "$inc6_body" | grep -q '"exemplars":\[{' || {
  echo "demo: burn-rate bundle has no slow-request exemplars" >&2; exit 1; }

echo "demo: extracting the embedded pprof pair with ppm-diagnose"
"$WORKDIR/ppm-diagnose" -dir "$WORKDIR/incidents6" \
  -extract-profiles "$WORKDIR/profiles6" >"$WORKDIR/incident6.md" 2>"$WORKDIR/diagnose6.log"
grep -q '## Serving SLO' "$WORKDIR/incident6.md" || {
  echo "demo: ppm-diagnose report missing the serving SLO section:" >&2
  cat "$WORKDIR/incident6.md" >&2; exit 1; }
cpu_prof="$(ls "$WORKDIR"/profiles6/*-cpu.pprof 2>/dev/null | head -n 1)"
[ -n "$cpu_prof" ] && [ -s "$cpu_prof" ] || {
  echo "demo: -extract-profiles wrote no CPU pprof:" >&2
  cat "$WORKDIR/diagnose6.log" >&2; exit 1; }
go tool pprof -top "$cpu_prof" >/dev/null 2>&1 || {
  echo "demo: go tool pprof cannot read $cpu_prof" >&2; exit 1; }

# ---- Act 7: distributed tracing — a half-sampled ramp stitched into
# ---- one cross-process waterfall

# The head-sampling verdict is a pure function of the trace id, and
# ppm-traffic derives batch n's trace id from the workload seed — so at
# -trace-sample 0.5 the same batches sample on every run, and every
# process (gateway, backend, shadow monitor tap) agrees per trace with
# no coordination. Each process journals its sampled spans to its own
# -trace-dir; ppm-diagnose -trace merges the journals offline.
echo "demo: restarting the backend with a span journal (tracing act)"
kill -TERM "$SERVE_PID" && wait "$SERVE_PID" 2>/dev/null || true
"$WORKDIR/ppm-serve" -dataset income -model lr -rows 1200 -addr "$SERVE_ADDR" \
  -trace-dir "$WORKDIR/traces/backend" \
  >"$WORKDIR/serve7.log" 2>&1 &
SERVE_PID=$!
wait_for "http://$SERVE_ADDR/healthz" 300

echo "demo: restarting the gateway with a span journal"
kill -TERM "$GW_PID" && wait "$GW_PID" 2>/dev/null || true
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  -bundle "$WORKDIR/bundle" \
  -trace-dir "$WORKDIR/traces/gateway" \
  >"$WORKDIR/gateway7.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"

echo "demo: driving a half-sampled clean ramp (-trace-sample 0.5)"
"$WORKDIR/ppm-traffic" send -target "http://$GW_ADDR" -dataset income \
  -batches 8 -rows 120 -trace-sample 0.5 | tee "$WORKDIR/traffic7.log"
grep -q 'sampled=true' "$WORKDIR/traffic7.log" || {
  echo "demo: no batch sampled at rate 0.5" >&2; exit 1; }
grep -q 'sampled=false' "$WORKDIR/traffic7.log" || {
  echo "demo: every batch sampled at rate 0.5" >&2; exit 1; }
tid="$(sed -n 's/.* trace_id \([0-9a-f]\{32\}\) sampled=true$/\1/p' "$WORKDIR/traffic7.log" | head -n 1)"
utid="$(sed -n 's/.* trace_id \([0-9a-f]\{32\}\) sampled=false$/\1/p' "$WORKDIR/traffic7.log" | head -n 1)"
[ -n "$tid" ] && [ -n "$utid" ] || {
  echo "demo: could not extract trace ids from the traffic log" >&2; exit 1; }

echo "demo: asserting the ppm_trace_* families on /metrics"
gw7_metrics="$(curl -fsS "http://$GW_ADDR/metrics")"
echo "$gw7_metrics" | grep -q '^# TYPE ppm_trace_sampled_total counter$' || {
  echo "demo: ppm_trace_sampled_total family missing from /metrics" >&2; exit 1; }
echo "$gw7_metrics" | grep -q '^ppm_trace_sampled_total [1-9]' || {
  echo "demo: no sampled traces accounted:" >&2
  echo "$gw7_metrics" | grep ppm_trace >&2 || true; exit 1; }

echo "demo: stitching the journals into the waterfall of trace $tid"
# Journals append live (one O_APPEND write per sampled root), so the
# stitcher runs against the running fleet; the monitor tap observes
# asynchronously, so poll until its span lands in the gateway journal.
JOURNALS7="gateway=$WORKDIR/traces/gateway,backend=$WORKDIR/traces/backend"
stitch_ok=""
for _ in $(seq 50); do
  if "$WORKDIR/ppm-diagnose" -trace "$tid" -journals "$JOURNALS7" \
       >"$WORKDIR/trace7.md" 2>/dev/null \
     && grep -q 'monitor_observe' "$WORKDIR/trace7.md"; then
    stitch_ok=1; break
  fi
  sleep 0.2
done
[ -n "$stitch_ok" ] || {
  echo "demo: trace $tid never stitched into a full waterfall:" >&2
  cat "$WORKDIR/trace7.md" >&2 || true
  cat "$WORKDIR/gateway7.log" >&2; exit 1; }

echo "demo: asserting the waterfall covers every hop under the shared trace id"
for span in gateway_request gateway_relay backend_predict monitor_observe; do
  grep -q "$span" "$WORKDIR/trace7.md" || {
    echo "demo: stitched waterfall missing the $span span:" >&2
    cat "$WORKDIR/trace7.md" >&2; exit 1; }
done
grep -q "$tid" "$WORKDIR/trace7.md" || {
  echo "demo: waterfall does not carry the shared trace id" >&2; exit 1; }

echo "demo: asserting the unsampled trace $utid left no spans in any journal"
if "$WORKDIR/ppm-diagnose" -trace "$utid" -journals "$JOURNALS7" >/dev/null 2>&1; then
  echo "demo: unsampled trace $utid has journaled spans" >&2; exit 1
fi

echo "demo: rendering the auto-picked waterfall as standalone HTML"
"$WORKDIR/ppm-diagnose" -trace auto -journals "$JOURNALS7" \
  -html "$WORKDIR/trace7.html" >/dev/null 2>"$WORKDIR/diagnose7.log"
grep -q '<html' "$WORKDIR/trace7.html" || {
  echo "demo: -html wrote no waterfall page:" >&2
  cat "$WORKDIR/diagnose7.log" >&2; exit 1; }

echo "demo: fetching the gateway's local fragment via /debug/traces"
frag_body="$(curl -fsS "http://$GW_ADDR/debug/traces/$tid")"
echo "$frag_body" | grep -q '"gateway_request"' || {
  echo "demo: /debug/traces/$tid missing the request span:" >&2
  echo "$frag_body" >&2; exit 1; }

# ---- Act 8: durable timeline — history survives a restart and
# ---- ppm-backtest bit-reproduces the live alert events

sink_before8="$(curl -fsS "http://$SINK_ADDR/count" | sed 's/[^0-9]//g')"

echo "demo: restarting the gateway with the durable timeline store (-tsdb-dir)"
kill -TERM "$GW_PID" && wait "$GW_PID" 2>/dev/null || true
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  -bundle "$WORKDIR/bundle" \
  -alert-rules "$WORKDIR/rules.json" -alert-webhook "http://$SINK_ADDR/" \
  -tsdb-dir "$WORKDIR/tsdb" \
  >"$WORKDIR/gateway8.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"

echo "demo: driving the act-2 corruption ramp so the alert fires live"
"$WORKDIR/ppm-traffic" send -target "http://$GW_ADDR" -dataset income \
  -batches 6 -rows 300 -corrupt scaling -max-magnitude 0.95 -clean 2 \
  >"$WORKDIR/traffic8.log" 2>&1

echo "demo: waiting for the live alert to reach the webhook sink"
live_fire=""
for _ in $(seq 50); do
  events8="$(curl -fsS "http://$SINK_ADDR/events" 2>/dev/null || true)"
  live_fire="$(echo "$events8" | grep -o '{"rule":"accuracy_alarm"[^}]*"state":"firing"[^}]*}' | tail -n 1)"
  count="$(curl -fsS "http://$SINK_ADDR/count" | sed 's/[^0-9]//g')"
  if [ -n "$live_fire" ] && [ -n "$count" ] && [ "$count" -gt "${sink_before8:-0}" ]; then break; fi
  live_fire=""
  sleep 0.2
done
[ -n "$live_fire" ] || {
  echo "demo: the act-8 ramp never produced a live firing event:" >&2
  curl -fsS "http://$SINK_ADDR/events" >&2 || true
  cat "$WORKDIR/gateway8.log" >&2; exit 1; }
fire_widx="$(echo "$live_fire" | sed -n 's/.*"window_index":\([0-9]*\).*/\1/p')"

echo "demo: waiting for the alerting window to persist to /monitor/timeline/range"
range_ok=""
for _ in $(seq 50); do
  probe="$(curl -fsS "http://$GW_ADDR/monitor/timeline/range?from=0&to=0" 2>/dev/null || true)"
  max_idx="$(echo "$probe" | sed -n 's/.*"max_index":\([0-9]*\).*/\1/p')"
  if [ -n "$max_idx" ] && [ "$max_idx" -ge "${fire_widx:-0}" ]; then range_ok=1; break; fi
  sleep 0.2
done
[ -n "$range_ok" ] || {
  echo "demo: the durable store never caught up to window $fire_widx:" >&2
  echo "$probe" >&2
  cat "$WORKDIR/gateway8.log" >&2; exit 1; }
range_body="$(curl -fsS "http://$GW_ADDR/monitor/timeline/range?from=0&to=$max_idx")"
echo "$range_body" | grep -q '"estimate"' || {
  echo "demo: /monitor/timeline/range served no re-aggregated series:" >&2
  echo "$range_body" >&2; exit 1; }

echo "demo: restarting the gateway onto the same -tsdb-dir (history must survive)"
kill -TERM "$GW_PID" && wait "$GW_PID" 2>/dev/null || true
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  -bundle "$WORKDIR/bundle" \
  -tsdb-dir "$WORKDIR/tsdb" \
  >"$WORKDIR/gateway8b.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"
survive="$(curl -fsS "http://$GW_ADDR/monitor/timeline/range?from=0&to=0")"
echo "$survive" | grep -q "\"max_index\":$max_idx" || {
  echo "demo: pre-restart history (through window $max_idx) did not survive:" >&2
  echo "$survive" >&2
  cat "$WORKDIR/gateway8b.log" >&2; exit 1; }

echo "demo: replaying the persisted windows with ppm-backtest"
"$WORKDIR/ppm-backtest" -tsdb-dir "$WORKDIR/tsdb" -rules "$WORKDIR/rules.json" \
  -json >"$WORKDIR/backtest8.json"
# The replay is deterministic: Event.At is the persisted window-close
# time, so the replayed firing event must equal the live webhook body
# byte for byte (the sink stored it verbatim; flattening whitespace
# only undoes -json's indentation).
tr -d ' \n' <"$WORKDIR/backtest8.json" | grep -qF "$live_fire" || {
  echo "demo: ppm-backtest did not reproduce the live firing event:" >&2
  echo "live: $live_fire" >&2
  cat "$WORKDIR/backtest8.json" >&2; exit 1; }

echo "demo: sweeping candidate thresholds over the persisted history"
"$WORKDIR/ppm-backtest" -tsdb-dir "$WORKDIR/tsdb" -rules "$WORKDIR/rules.json" \
  -sweep-rule accuracy_alarm -thresholds 0.5,1,2 >"$WORKDIR/sweep8.txt"
grep -q 'threshold' "$WORKDIR/sweep8.txt" || {
  echo "demo: threshold sweep produced no table:" >&2
  cat "$WORKDIR/sweep8.txt" >&2; exit 1; }

echo "demo: OK — proxying, drift timeline, alerting, request correlation, incident capture, fleet federation, label feedback, the serving SLO observatory, cross-process trace stitching and the durable timeline store (restart-surviving history + bit-exact alert backtesting) all verified"
