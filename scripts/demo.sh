#!/usr/bin/env bash
# Smoke test for the serving stack, in three acts:
#
#   ppm-serve (backend model server)  <-  ppm-gateway (shadow proxy)  <-  curl / ppm-traffic
#                                              |
#                                              +-> ppm-traffic sink (alert webhook)
#
# Act 1 boots the backend and a proxy-mode gateway, fires a smoke
# request and asserts the gateway's /metrics endpoint scrapes as
# Prometheus text with the traffic accounted for. Act 2 trains a small
# validation bundle, restarts the gateway with shadow validation and an
# alert rule wired to a webhook sink, drives a corruption ramp through
# it with ppm-traffic, and asserts the drift timeline filled, the alert
# reached the sink, and every response carried an X-Request-ID. Act 3
# restarts the gateway with the incident flight recorder, ramps a
# single-column corruption (-corrupt-column age) through it, and
# asserts the alert auto-captured an incident bundle whose per-column
# attribution ranks the corrupted column first, then renders it with
# ppm-diagnose. All acts shut down gracefully (SIGTERM, exercising the
# shared drain path). Run via `make demo`.
set -euo pipefail

cd "$(dirname "$0")/.."

SERVE_ADDR=127.0.0.1:18080
GW_ADDR=127.0.0.1:18088
SINK_ADDR=127.0.0.1:18099
WORKDIR="$(mktemp -d)"
SERVE_PID=""
GW_PID=""
SINK_PID=""

cleanup() {
  # SIGTERM first so the graceful drain path runs; escalate only if needed.
  for pid in "$GW_PID" "$SERVE_PID" "$SINK_PID"; do
    [ -n "$pid" ] && kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "$GW_PID" "$SERVE_PID" "$SINK_PID"; do
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

wait_for() { # url [attempts]
  local url="$1" attempts="${2:-100}"
  for _ in $(seq "$attempts"); do
    if curl -fsS "$url" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "demo: $url never came up" >&2
  return 1
}

echo "demo: building binaries"
go build -o "$WORKDIR/ppm-serve" ./cmd/ppm-serve
go build -o "$WORKDIR/ppm-gateway" ./cmd/ppm-gateway
go build -o "$WORKDIR/ppm-validate" ./cmd/ppm-validate
go build -o "$WORKDIR/ppm-traffic" ./cmd/ppm-traffic
go build -o "$WORKDIR/ppm-diagnose" ./cmd/ppm-diagnose

echo "demo: starting ppm-serve on $SERVE_ADDR (small lr model, quick to train)"
"$WORKDIR/ppm-serve" -dataset income -model lr -rows 1200 -addr "$SERVE_ADDR" \
  >"$WORKDIR/serve.log" 2>&1 &
SERVE_PID=$!
wait_for "http://$SERVE_ADDR/healthz" 300

echo "demo: starting ppm-gateway on $GW_ADDR (proxy mode)"
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  >"$WORKDIR/gateway.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"

echo "demo: firing a smoke request through the proxy"
# An empty JSON object is a well-formed request the backend rejects with
# 400 — it still exercises the full proxy path (forward, relay, account).
code="$(curl -s -o /dev/null -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' -d '{}' \
  "http://$GW_ADDR/predict_proba")"
if [ "$code" != "400" ]; then
  echo "demo: expected the backend's 400 relayed through the gateway, got $code" >&2
  cat "$WORKDIR/gateway.log" >&2
  exit 1
fi

echo "demo: asserting /metrics scrapes"
metrics="$(curl -fsS "http://$GW_ADDR/metrics")"
echo "$metrics" | grep -q '^# TYPE gateway_requests_total counter$' || {
  echo "demo: /metrics is missing the requests counter TYPE line" >&2; exit 1; }
echo "$metrics" | grep -q '^gateway_requests_total{outcome="upstream_4xx"} 1$' || {
  echo "demo: proxied smoke request not accounted in /metrics:" >&2
  echo "$metrics" | grep gateway_requests_total >&2 || true
  exit 1
}
echo "$metrics" | grep -q '^gateway_breaker_state 0$' || {
  echo "demo: breaker should be closed" >&2; exit 1; }

echo "demo: checking /status"
curl -fsS "http://$GW_ADDR/status" | grep -q '"breaker_state":"closed"' || {
  echo "demo: /status missing breaker state" >&2; exit 1; }

echo "demo: act 1 OK — gateway proxied traffic and /metrics scraped cleanly"

# ---- Act 2: shadow validation, drift timeline, alerting -------------

echo "demo: training a validation bundle (small lr model)"
"$WORKDIR/ppm-validate" train -dataset income -model lr -rows 1200 \
  -threshold 0.05 -out "$WORKDIR/bundle" >"$WORKDIR/train.log" 2>&1

cat >"$WORKDIR/rules.json" <<'EOF'
{"rules": [
  {"name": "accuracy_alarm", "series": "alarm", "op": ">=", "threshold": 1,
   "reduce": "max", "for_windows": 1, "clear_windows": 2, "severity": "critical"}
]}
EOF

echo "demo: starting the alert webhook sink on $SINK_ADDR"
"$WORKDIR/ppm-traffic" sink -addr "$SINK_ADDR" >"$WORKDIR/sink.log" 2>&1 &
SINK_PID=$!
wait_for "http://$SINK_ADDR/healthz"

echo "demo: restarting the gateway with shadow validation + alerting"
kill -TERM "$GW_PID" && wait "$GW_PID" 2>/dev/null || true
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  -bundle "$WORKDIR/bundle" \
  -alert-rules "$WORKDIR/rules.json" -alert-webhook "http://$SINK_ADDR/" \
  >"$WORKDIR/gateway2.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"

echo "demo: driving a corruption ramp through the proxy"
"$WORKDIR/ppm-traffic" send -target "http://$GW_ADDR" -dataset income \
  -batches 6 -rows 300 -corrupt scaling -max-magnitude 0.95 -clean 2 \
  | tee "$WORKDIR/traffic.log"
grep -q 'request_id gw-' "$WORKDIR/traffic.log" || {
  echo "demo: ppm-traffic responses missing gateway-minted request ids" >&2; exit 1; }

echo "demo: asserting every response carries X-Request-ID (even errors)"
curl -s -o /dev/null -D "$WORKDIR/headers" \
  -X POST -H 'Content-Type: application/json' -d '{}' \
  "http://$GW_ADDR/predict_proba"
grep -qi '^x-request-id:' "$WORKDIR/headers" || {
  echo "demo: 4xx response lost the X-Request-ID header" >&2
  cat "$WORKDIR/headers" >&2; exit 1; }

echo "demo: asserting the drift timeline filled"
# The shadow tap observes batches asynchronously; poll until windows
# with series aggregates show up on /monitor/timeline.
timeline_ok=""
for _ in $(seq 50); do
  if curl -fsS "http://$GW_ADDR/monitor/timeline" | grep -q '"estimate"'; then
    timeline_ok=1; break
  fi
  sleep 0.2
done
[ -n "$timeline_ok" ] || {
  echo "demo: /monitor/timeline never produced a window with series data:" >&2
  curl -fsS "http://$GW_ADDR/monitor/timeline" >&2 || true
  cat "$WORKDIR/gateway2.log" >&2; exit 1; }

echo "demo: waiting for the alert to reach the webhook sink"
alert_ok=""
for _ in $(seq 50); do
  count="$(curl -fsS "http://$SINK_ADDR/count" | sed 's/[^0-9]//g')"
  if [ -n "$count" ] && [ "$count" -ge 1 ]; then alert_ok=1; break; fi
  sleep 0.2
done
[ -n "$alert_ok" ] || {
  echo "demo: the corruption ramp never produced a webhook alert:" >&2
  curl -fsS "http://$SINK_ADDR/events" >&2 || true
  cat "$WORKDIR/gateway2.log" >&2; exit 1; }
curl -fsS "http://$SINK_ADDR/events" | grep -q '"state":"firing"' || {
  echo "demo: sink events missing a firing alert" >&2; exit 1; }

echo "demo: asserting alert metrics on /metrics"
curl -fsS "http://$GW_ADDR/metrics" | grep -q '^ppm_alerts_total{rule="accuracy_alarm"} ' || {
  echo "demo: ppm_alerts_total missing from the gateway registry" >&2; exit 1; }

# ---- Act 3: incident flight recorder with drift attribution ---------

# The act-2 rule fires on the very first alarming window, when the
# reservoir has barely seen corrupted rows; holding the alarm for two
# windows lets the capture accumulate enough drifted mass for a
# decisive attribution.
cat >"$WORKDIR/rules3.json" <<'EOF'
{"rules": [
  {"name": "accuracy_alarm", "series": "alarm", "op": ">=", "threshold": 1,
   "reduce": "max", "for_windows": 2, "clear_windows": 2, "severity": "critical"}
]}
EOF

echo "demo: restarting the gateway with the incident flight recorder"
kill -TERM "$GW_PID" && wait "$GW_PID" 2>/dev/null || true
"$WORKDIR/ppm-gateway" -backend "http://$SERVE_ADDR" -addr "$GW_ADDR" \
  -bundle "$WORKDIR/bundle" \
  -alert-rules "$WORKDIR/rules3.json" -alert-webhook "http://$SINK_ADDR/" \
  -incident-dir "$WORKDIR/incidents" \
  >"$WORKDIR/gateway3.log" 2>&1 &
GW_PID=$!
wait_for "http://$GW_ADDR/healthz"

echo "demo: asserting runtime self-telemetry on /metrics"
curl -fsS "http://$GW_ADDR/metrics" | grep -q '^ppm_go_goroutines ' || {
  echo "demo: ppm_go_goroutines missing from the gateway registry" >&2; exit 1; }

echo "demo: ramping a single-column corruption (age x1000) through the proxy"
"$WORKDIR/ppm-traffic" send -target "http://$GW_ADDR" -dataset income \
  -batches 7 -rows 300 -corrupt-column age -max-magnitude 0.95 -clean 2 \
  >"$WORKDIR/traffic3.log" 2>&1

echo "demo: waiting for the alert to auto-capture an incident bundle"
incident_ok=""
for _ in $(seq 50); do
  if curl -fsS "http://$GW_ADDR/debug/incidents" | grep -q '"inc-'; then
    incident_ok=1; break
  fi
  sleep 0.2
done
[ -n "$incident_ok" ] || {
  echo "demo: the corruption ramp never auto-captured an incident:" >&2
  curl -fsS "http://$GW_ADDR/debug/incidents" >&2 || true
  cat "$WORKDIR/gateway3.log" >&2; exit 1; }

echo "demo: asserting the bundle attributes the drift to the corrupted column"
curl -fsS "http://$GW_ADDR/debug/incidents" | grep -q '"top_column":"age"' || {
  echo "demo: incident attribution did not rank the corrupted column first:" >&2
  curl -fsS "http://$GW_ADDR/debug/incidents" >&2 || true
  exit 1; }
curl -fsS "http://$GW_ADDR/debug/incidents/latest" | grep -q '"reason":"alert:' || {
  echo "demo: latest bundle was not captured by the alert hook" >&2; exit 1; }

echo "demo: rendering the bundle with ppm-diagnose"
"$WORKDIR/ppm-diagnose" -dir "$WORKDIR/incidents" >"$WORKDIR/incident.md"
grep -q '| 1 | age |' "$WORKDIR/incident.md" || {
  echo "demo: ppm-diagnose report does not rank age first:" >&2
  cat "$WORKDIR/incident.md" >&2; exit 1; }

echo "demo: OK — proxying, drift timeline, alerting, request correlation and incident capture all verified"
