// Tests of the public API surface: everything a downstream user touches
// must work without importing internal packages.
package blackboxval_test

import (
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"

	"blackboxval"
)

func TestPublicQuickstartFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := blackboxval.IncomeDataset(2500, 1).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	model, err := blackboxval.TrainXGB(train, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
		Generators:  blackboxval.KnownTabularGenerators(),
		Repetitions: 15,
		ForestSizes: []int{30},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	est := pred.Estimate(serving)
	truth := blackboxval.AccuracyScore(model.PredictProba(serving), serving.Labels)
	if math.Abs(est-truth) > 0.1 {
		t.Fatalf("estimate %v too far from truth %v", est, truth)
	}

	val, err := blackboxval.TrainValidator(model, test, blackboxval.ValidatorConfig{
		Generators: blackboxval.KnownTabularGenerators(),
		Threshold:  0.1,
		Batches:    80,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if val.Violation(serving) {
		t.Fatal("clean serving batch flagged at t=0.1")
	}
	heavy := blackboxval.Scaling{}.Corrupt(serving, 0.9, rng)
	heavyProba := model.PredictProba(heavy)
	heavyTruth := blackboxval.AccuracyScore(heavyProba, heavy.Labels)
	if heavyTruth < (1-0.1)*val.TestScore() && !val.ViolationFromProba(heavyProba) {
		t.Fatal("heavy scaling corruption not flagged")
	}
}

func TestPublicGeneratorsAvailable(t *testing.T) {
	gens := blackboxval.KnownTabularGenerators()
	if len(gens) != 4 {
		t.Fatalf("known generators = %d", len(gens))
	}
	if len(blackboxval.UnknownTabularGenerators()) != 3 {
		t.Fatal("unknown generators wrong")
	}
	if len(blackboxval.ImageGenerators()) != 2 {
		t.Fatal("image generators wrong")
	}
	ds := blackboxval.HeartDataset(200, 1)
	rng := rand.New(rand.NewSource(2))
	for _, g := range gens {
		out := g.Corrupt(ds, 0.5, rng)
		if out.Len() != ds.Len() {
			t.Fatalf("%s changed row count", g.Name())
		}
	}
}

func TestPublicDatasets(t *testing.T) {
	cases := map[string]*blackboxval.Dataset{
		"income":  blackboxval.IncomeDataset(100, 1),
		"heart":   blackboxval.HeartDataset(100, 1),
		"bank":    blackboxval.BankDataset(100, 1),
		"tweets":  blackboxval.TweetsDataset(100, 1),
		"digits":  blackboxval.DigitsDataset(50, 1),
		"fashion": blackboxval.FashionDataset(50, 1),
	}
	for name, ds := range cases {
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPublicCloudRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := blackboxval.BankDataset(1200, 3).Balance(rng)
	train, serving := ds.Split(0.7, rng)
	model, err := blackboxval.TrainLR(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(blackboxval.NewCloudServer(model).Handler())
	defer srv.Close()
	client := blackboxval.NewCloudClient(srv.URL)
	remote := client.PredictProba(serving)
	local := model.PredictProba(serving)
	for i := range local.Data {
		if math.Abs(remote.Data[i]-local.Data[i]) > 1e-9 {
			t.Fatal("remote and local predictions differ")
		}
	}
	if client.NumClasses() != 2 {
		t.Fatal("NumClasses wrong after first call")
	}
}

func TestPublicBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := blackboxval.IncomeDataset(2000, 4).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := blackboxval.TrainLR(train, 4)
	if err != nil {
		t.Fatal(err)
	}
	testOut := model.PredictProba(test)
	detectors := []blackboxval.Detector{
		blackboxval.NewREL(test),
		blackboxval.NewBBSE(model, testOut),
		blackboxval.NewBBSEh(model, testOut),
	}
	corrupted := blackboxval.Scaling{}.Corrupt(serving, 0.9, rng)
	for _, d := range detectors {
		if d.Violation(serving) {
			t.Fatalf("%s alarmed on clean data", d.Name())
		}
	}
	// At least the raw-data detector must catch a 90% scaling corruption.
	if !detectors[0].Violation(corrupted) {
		t.Fatal("REL missed heavy scaling")
	}
}

func TestPublicPredictionStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := blackboxval.IncomeDataset(600, 5)
	train, rest := ds.Split(0.7, rng)
	model, err := blackboxval.TrainXGB(train, 5)
	if err != nil {
		t.Fatal(err)
	}
	proba := model.PredictProba(rest)
	feats := blackboxval.PredictionStatistics(proba, 5)
	if len(feats) != 42 {
		t.Fatalf("feature count = %d", len(feats))
	}
	preds := blackboxval.Predict(proba)
	if len(preds) != rest.Len() {
		t.Fatal("Predict length wrong")
	}
}

func TestPublicAUCScore(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := blackboxval.HeartDataset(1500, 6).Balance(rng)
	train, test := ds.Split(0.7, rng)
	model, err := blackboxval.TrainXGB(train, 6)
	if err != nil {
		t.Fatal(err)
	}
	auc := blackboxval.AUCScore(model.PredictProba(test), test.Labels)
	if auc < 0.7 {
		t.Fatalf("AUC = %v, model should beat chance comfortably", auc)
	}
}
