module blackboxval

go 1.22
