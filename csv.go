package blackboxval

import (
	"fmt"
	"io"
	"sort"

	"blackboxval/internal/data"
	"blackboxval/internal/frame"
)

// DatasetFromCSV ingests user data: it parses CSV with a header row,
// infers every column's kind (numeric, categorical or free text), pops
// the named label column and returns a ready Dataset. Empty cells and
// "NA"/"null"-style tokens become missing values. Class names are the
// distinct label values in sorted order.
//
// For unlabeled serving batches, pass an empty labelColumn: all labels
// are zero and a single placeholder class is used (scores computed
// against such labels are meaningless, but Estimate and Violation never
// look at them).
func DatasetFromCSV(r io.Reader, labelColumn string) (*Dataset, error) {
	df, err := frame.InferCSV(r)
	if err != nil {
		return nil, err
	}
	if labelColumn == "" {
		return &Dataset{
			Frame:   df,
			Labels:  make([]int, df.NumRows()),
			Classes: []string{"unlabeled"},
		}, nil
	}

	labelCol := df.Column(labelColumn)
	if labelCol == nil {
		return nil, fmt.Errorf("blackboxval: CSV has no column %q", labelColumn)
	}
	if labelCol.Kind == frame.Numeric {
		return nil, fmt.Errorf("blackboxval: label column %q is numeric; labels must be class names", labelColumn)
	}
	classSet := map[string]bool{}
	for i, v := range labelCol.Str {
		if v == "" {
			return nil, fmt.Errorf("blackboxval: row %d has a missing label", i)
		}
		classSet[v] = true
	}
	classes := make([]string, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	index := map[string]int{}
	for i, c := range classes {
		index[c] = i
	}
	labels := make([]int, len(labelCol.Str))
	for i, v := range labelCol.Str {
		labels[i] = index[v]
	}

	features := frame.New()
	for _, c := range df.Columns() {
		if c.Name == labelColumn {
			continue
		}
		switch c.Kind {
		case frame.Numeric:
			features.AddNumeric(c.Name, c.Num)
		case frame.Categorical:
			features.AddCategorical(c.Name, c.Str)
		case frame.Text:
			features.AddText(c.Name, c.Str)
		}
	}
	if features.NumCols() == 0 {
		return nil, fmt.Errorf("blackboxval: CSV has no feature columns besides the label")
	}
	ds := &data.Dataset{Frame: features, Labels: labels, Classes: classes}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteDatasetCSV writes a dataset's feature columns (plus, when
// withLabels is set, a trailing "label" column of class names) as CSV.
func WriteDatasetCSV(w io.Writer, ds *Dataset, withLabels bool) error {
	if !ds.Tabular() {
		return fmt.Errorf("blackboxval: only tabular datasets can be written as CSV")
	}
	out := ds.Frame
	if withLabels {
		out = ds.Frame.Clone()
		names := make([]string, ds.Len())
		for i, y := range ds.Labels {
			names[i] = ds.Classes[y]
		}
		out.AddCategorical("label", names)
	}
	return out.WriteCSV(w)
}
