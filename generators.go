package blackboxval

import "blackboxval/internal/errorgen"

// The error generator types of the paper, re-exported for users who
// specify expected serving-data errors programmatically. Implement the
// Generator interface for custom error types.
type (
	// MissingValues introduces missing cells into random categorical (or
	// numeric) columns.
	MissingValues = errorgen.MissingValues
	// Outliers adds scaled gaussian noise to random numeric columns.
	Outliers = errorgen.Outliers
	// SwappedColumns exchanges values between columns.
	SwappedColumns = errorgen.SwappedColumns
	// Scaling multiplies numeric values by 10/100/1000, mimicking unit
	// bugs.
	Scaling = errorgen.Scaling
	// AdversarialText rewrites text as leetspeak, simulating attackers.
	AdversarialText = errorgen.AdversarialText
	// EncodingErrors introduces mojibake into categorical values.
	EncodingErrors = errorgen.EncodingErrors
	// Typos introduces character-level typos into categorical values.
	Typos = errorgen.Typos
	// Smearing moves numeric values by up to ±10%.
	Smearing = errorgen.Smearing
	// FlippedSigns multiplies numeric values by -1.
	FlippedSigns = errorgen.FlippedSigns
	// EntropyMissing discards values from the examples the model is most
	// certain about (an adversarially hard missingness pattern).
	EntropyMissing = errorgen.EntropyMissing
	// ImageNoise adds gaussian pixel noise to a fraction of images.
	ImageNoise = errorgen.ImageNoise
	// ImageRotation rotates a fraction of images by random angles.
	ImageRotation = errorgen.ImageRotation
	// Mixture applies a randomly weighted blend of generators.
	Mixture = errorgen.Mixture
	// NoOp leaves data untouched (the no-error regime).
	NoOp = errorgen.NoOp
)

// KnownTabularGenerators returns the paper's four standard "known" error
// types for relational data: missing values, outliers, swapped columns
// and scaling.
func KnownTabularGenerators() []Generator { return errorgen.KnownTabular() }

// UnknownTabularGenerators returns the held-out "unknown" error types
// used to evaluate generalization: typos, smearing and flipped signs.
func UnknownTabularGenerators() []Generator { return errorgen.UnknownTabular() }

// ImageGenerators returns the image error types: noise and rotation.
func ImageGenerators() []Generator { return errorgen.Image() }
