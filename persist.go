package blackboxval

import (
	"blackboxval/internal/models"
	"blackboxval/internal/persist"
)

// Persistence: trained artifacts are stored as versioned JSON files, like
// the serialized datasets and models the paper publishes. Predictors and
// validators are stored WITHOUT their black box model (it may be remote);
// re-attach one on load, or load with nil and use the *FromProba methods.

// Pipeline is a serializable trained black box (feature map + classifier)
// produced by TrainLR/TrainDNN/TrainXGB/TrainConv.
type Pipeline = models.Pipeline

// SaveDataset writes a labeled dataset to path as versioned JSON.
func SaveDataset(path string, ds *Dataset) error { return persist.SaveDataset(path, ds) }

// LoadDataset reads a labeled dataset from path.
func LoadDataset(path string) (*Dataset, error) { return persist.LoadDataset(path) }

// SaveModel writes a trained black box pipeline to path. Only locally
// trained pipelines are serializable; cloud clients are just URLs.
func SaveModel(path string, model Model) error {
	p, ok := model.(*Pipeline)
	if !ok {
		return errNotAPipeline(model)
	}
	return persist.SavePipeline(path, p)
}

// LoadModel reads a trained black box pipeline from path.
func LoadModel(path string) (*Pipeline, error) { return persist.LoadPipeline(path) }

// SavePredictor writes a trained performance predictor to path.
func SavePredictor(path string, p *Predictor) error { return persist.SavePredictor(path, p) }

// LoadPredictor reads a performance predictor from path, attaching the
// given model (may be nil; EstimateFromProba works without one).
func LoadPredictor(path string, model Model) (*Predictor, error) {
	return persist.LoadPredictor(path, model)
}

// SaveValidator writes a trained performance validator to path.
func SaveValidator(path string, v *Validator) error { return persist.SaveValidator(path, v) }

// LoadValidator reads a performance validator from path, attaching the
// given model (may be nil; ViolationFromProba works without one).
func LoadValidator(path string, model Model) (*Validator, error) {
	return persist.LoadValidator(path, model)
}

type pipelineTypeError struct{ model Model }

func (e pipelineTypeError) Error() string {
	return "blackboxval: only locally trained pipelines can be saved (got a different Model implementation)"
}

func errNotAPipeline(model Model) error { return pipelineTypeError{model: model} }
