package blackboxval

import "blackboxval/internal/explain"

// Drift attribution: when an alarm fires, Explain compares the serving
// batch against a clean reference sample and ranks columns (or derived
// image/text statistics) by drift suspicion, pointing an engineer at the
// data that likely caused the drop.

// DriftFinding is the drift evidence for one column or derived statistic.
type DriftFinding = explain.Finding

// DriftReport ranks all findings, most suspicious first.
type DriftReport = explain.Report

// Explain compares a serving batch against a clean reference sample of
// the same schema and returns the ranked drift report.
func Explain(reference, serving *Dataset) (*DriftReport, error) {
	return explain.Explain(reference, serving)
}
