package blackboxval

import (
	"math/rand"

	"blackboxval/internal/automl"
	"blackboxval/internal/cloud"
	"blackboxval/internal/datagen"
	"blackboxval/internal/featurize"
	"blackboxval/internal/models"
)

// The four black box model families of the paper's evaluation. Each
// trainer grid-searches hyperparameters with five-fold cross-validation
// (as in Section 6) and returns an opaque Model.

// TrainLR trains a logistic regression (SGD) black box, grid-searching
// regularization type and learning rate.
func TrainLR(train *Dataset, seed int64) (Model, error) {
	return trainGrid(train, models.LRCandidates(seed), seed)
}

// TrainDNN trains a two-layer ReLU feed-forward network black box,
// grid-searching the layer sizes.
func TrainDNN(train *Dataset, seed int64) (Model, error) {
	return trainGrid(train, models.DNNCandidates(seed), seed)
}

// TrainXGB trains a gradient-boosted decision tree black box,
// grid-searching the number and depth of trees.
func TrainXGB(train *Dataset, seed int64) (Model, error) {
	return trainGrid(train, models.XGBCandidates(seed), seed)
}

// TrainConv trains a convolutional network black box for image datasets.
func TrainConv(train *Dataset, seed int64) (Model, error) {
	return trainGrid(train, models.ConvCandidates(seed), seed)
}

func trainGrid(train *Dataset, cands []models.Candidate, seed int64) (Model, error) {
	feat := &featurize.Pipeline{}
	if err := feat.Fit(train); err != nil {
		return nil, err
	}
	X, err := feat.Transform(train)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 40))
	clf, _, err := models.GridSearchCV(X, train.Labels, len(train.Classes), 5, cands, rng)
	if err != nil {
		return nil, err
	}
	// Refit a fresh pipeline so feature map + classifier travel together.
	return models.TrainPipeline(train, clf, featurize.DefaultHashDims)
}

// AutoML searches standing in for the paper's auto-sklearn, TPOT and
// auto-keras experiments (Section 6.3).

// AutoMLConfig configures the AutoML searches.
type AutoMLConfig = automl.Config

// AutoSklearn returns a soft-voting ensemble of the best model
// configurations found by cross-validated search.
func AutoSklearn(train *Dataset, cfg AutoMLConfig) (Model, error) {
	return automl.AutoSklearn(train, cfg)
}

// TPOT returns the best single pipeline found by greedy search with one
// round of hyperparameter mutations.
func TPOT(train *Dataset, cfg AutoMLConfig) (Model, error) { return automl.TPOT(train, cfg) }

// AutoKeras returns the best convnet found by a small architecture
// search (image data only).
func AutoKeras(train *Dataset, cfg AutoMLConfig) (Model, error) { return automl.AutoKeras(train, cfg) }

// LargeConvNet trains a fixed large convolutional architecture (image
// data only).
func LargeConvNet(train *Dataset, cfg AutoMLConfig) (Model, error) {
	return automl.LargeConvNet(train, cfg)
}

// Cloud-hosted black boxes (Section 6.3.2): serve any Model over HTTP and
// consume it remotely through a client that is itself a Model.

// CloudServer exposes a Model over an HTTP JSON API.
type CloudServer = cloud.Server

// CloudClient is a Model backed by a remote prediction service.
type CloudClient = cloud.Client

// NewCloudServer wraps a trained model for serving.
func NewCloudServer(model Model) *CloudServer { return cloud.NewServer(model) }

// NewCloudClient returns a client for the prediction service at baseURL.
func NewCloudClient(baseURL string) *CloudClient { return cloud.NewClient(baseURL) }

// AutoMLServer simulates a full cloud AutoML service: upload a labeled
// dataset over HTTP, the service trains a model server-side, predictions
// are retrieved per model id — the complete Google AutoML Tables contract
// of the paper's Section 6.3.2.
type AutoMLServer = cloud.AutoMLServer

// AutoMLClient drives a remote AutoMLServer: Train uploads data and
// returns a prediction client (a Model) for the resulting model.
type AutoMLClient = cloud.AutoMLClient

// NewAutoMLServer returns a cloud AutoML service with the given search
// configuration.
func NewAutoMLServer(cfg AutoMLConfig) *AutoMLServer { return cloud.NewAutoMLServer(cfg) }

// NewAutoMLClient returns a client for the AutoML service at baseURL.
func NewAutoMLClient(baseURL string) *AutoMLClient { return cloud.NewAutoMLClient(baseURL) }

// Synthetic datasets mirroring the schema shape of the paper's six public
// evaluation datasets (see DESIGN.md for the substitution rationale).

// IncomeDataset generates an adult-census-like dataset (binary income
// classification over numeric + categorical columns).
func IncomeDataset(n int, seed int64) *Dataset { return datagen.Income(n, seed) }

// HeartDataset generates a cardiovascular-disease-like dataset.
func HeartDataset(n int, seed int64) *Dataset { return datagen.Heart(n, seed) }

// BankDataset generates a bank-marketing-like dataset.
func BankDataset(n int, seed int64) *Dataset { return datagen.Bank(n, seed) }

// TweetsDataset generates a cyber-troll-like text dataset.
func TweetsDataset(n int, seed int64) *Dataset { return datagen.Tweets(n, seed) }

// DigitsDataset generates an MNIST-like 3-vs-5 image dataset.
func DigitsDataset(n int, seed int64) *Dataset { return datagen.Digits(n, seed) }

// FashionDataset generates a sneaker-vs-ankle-boot image dataset.
func FashionDataset(n int, seed int64) *Dataset { return datagen.Fashion(n, seed) }

// ProductsDataset generates a three-class e-commerce dataset (the sales
// prediction scenario of the paper's introduction), for exercising
// multiclass models and validators.
func ProductsDataset(n int, seed int64) *Dataset { return datagen.Products(n, seed) }
