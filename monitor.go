package blackboxval

import (
	"blackboxval/internal/core"
	"blackboxval/internal/monitor"
)

// Serving-side monitoring: feed a Monitor the stream of serving batches
// (or their logged model outputs) and it tracks score estimates, applies
// an alarm policy with hysteresis, and keeps bounded history.

// Monitor tracks the estimated performance of one deployed model.
type Monitor = monitor.Monitor

// MonitorConfig configures NewMonitor.
type MonitorConfig = monitor.Config

// MonitorRecord is the outcome recorded for one serving batch.
type MonitorRecord = monitor.Record

// MonitorSummary aggregates a monitor's history.
type MonitorSummary = monitor.Summary

// NewMonitor validates the configuration and returns a ready monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) { return monitor.New(cfg) }

// StreamAccumulator builds percentile features from a stream of single
// model outputs with O(1) memory (P² online quantiles), for deployments
// that cannot batch. Obtain one matched to a predictor via
// Predictor.NewStreamAccumulator, feed it rows, and estimate with
// Predictor.EstimateFromFeatures — or use Monitor.ObserveRow, which does
// all of this with windowing.
type StreamAccumulator = core.StreamAccumulator
