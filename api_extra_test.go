package blackboxval_test

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blackboxval"
)

func TestPublicPersistenceWorkflow(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(41))
	ds := blackboxval.IncomeDataset(1800, 41).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	model, err := blackboxval.TrainXGB(train, 41)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
		Generators:  blackboxval.KnownTabularGenerators(),
		Repetitions: 10,
		ForestSizes: []int{20},
		Seed:        41,
	})
	if err != nil {
		t.Fatal(err)
	}

	dsPath := filepath.Join(dir, "ds.json")
	modelPath := filepath.Join(dir, "model.json")
	predPath := filepath.Join(dir, "pred.json")
	if err := blackboxval.SaveDataset(dsPath, serving); err != nil {
		t.Fatal(err)
	}
	if err := blackboxval.SaveModel(modelPath, model); err != nil {
		t.Fatal(err)
	}
	if err := blackboxval.SavePredictor(predPath, pred); err != nil {
		t.Fatal(err)
	}

	loadedDS, err := blackboxval.LoadDataset(dsPath)
	if err != nil {
		t.Fatal(err)
	}
	loadedModel, err := blackboxval.LoadModel(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	loadedPred, err := blackboxval.LoadPredictor(predPath, loadedModel)
	if err != nil {
		t.Fatal(err)
	}
	want := pred.Estimate(serving)
	got := loadedPred.Estimate(loadedDS)
	if math.Abs(want-got) > 1e-12 {
		t.Fatalf("persisted pipeline estimate %v != original %v", got, want)
	}
}

type notAPipeline struct{ blackboxval.Model }

func TestSaveModelRejectsNonPipelines(t *testing.T) {
	err := blackboxval.SaveModel(filepath.Join(t.TempDir(), "x.json"), notAPipeline{})
	if err == nil {
		t.Fatal("expected error for non-pipeline model")
	}
	if !strings.Contains(err.Error(), "pipeline") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestPublicMonitorFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ds := blackboxval.HeartDataset(2200, 42).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := blackboxval.TrainXGB(train, 42)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
		Generators:  blackboxval.KnownTabularGenerators(),
		Repetitions: 10,
		ForestSizes: []int{20},
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := blackboxval.NewMonitor(blackboxval.MonitorConfig{Predictor: pred, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rec := mon.Observe(serving)
	if rec.Alarming {
		t.Fatal("clean batch alarmed at t=0.1")
	}
	broken := blackboxval.Scaling{}.Corrupt(serving, 0.95, rng)
	mon.Observe(broken)
	s := mon.Summarize()
	if s.Batches != 2 {
		t.Fatalf("summary batches = %d", s.Batches)
	}
}

func TestPublicGatewayFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ds := blackboxval.IncomeDataset(2000, 43).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)
	model, err := blackboxval.TrainXGB(train, 43)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
		Generators:  blackboxval.KnownTabularGenerators(),
		Repetitions: 10,
		ForestSizes: []int{20},
		Seed:        43,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := blackboxval.NewMonitor(blackboxval.MonitorConfig{Predictor: pred, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}

	backend := httptest.NewServer(blackboxval.NewCloudServer(model).Handler())
	defer backend.Close()
	gw, err := blackboxval.NewGateway(blackboxval.GatewayConfig{Backend: backend.URL, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	// A cloud client pointed at the gateway behaves exactly like one
	// pointed at the backend: the proxy is transparent.
	remote, err := blackboxval.NewCloudClient(gwSrv.URL).Predict(serving)
	if err != nil {
		t.Fatal(err)
	}
	local := model.PredictProba(serving)
	if remote.Rows != local.Rows || remote.Cols != local.Cols {
		t.Fatalf("shape via gateway %dx%d, local %dx%d", remote.Rows, remote.Cols, local.Rows, local.Cols)
	}

	// The shadow tap feeds the monitor off the hot path.
	deadline := time.Now().Add(10 * time.Second)
	for gw.ShadowObserved() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("shadow tap never observed the batch")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s := mon.Summarize(); s.Batches != 1 {
		t.Fatalf("monitor batches = %d, want 1", s.Batches)
	}
	resp, err := http.Get(gwSrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d on clean traffic", resp.StatusCode)
	}
}

func TestPublicExplain(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ds := blackboxval.BankDataset(3000, 43)
	ref, srv := ds.Split(0.5, rng)
	col := srv.Frame.Column("duration")
	for i := range col.Num {
		col.Num[i] *= 100
	}
	report, err := blackboxval.Explain(ref, srv)
	if err != nil {
		t.Fatal(err)
	}
	if top := report.Top(1); len(top) == 0 || top[0].Column != "duration" {
		t.Fatalf("Explain did not pinpoint the scaled column: %+v", report.Top(3))
	}
}

func TestPublicProductsDataset(t *testing.T) {
	ds := blackboxval.ProductsDataset(900, 44)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Classes) != 3 {
		t.Fatalf("classes = %d", len(ds.Classes))
	}
	rng := rand.New(rand.NewSource(44))
	train, test := ds.Balance(rng).Split(0.7, rng)
	model, err := blackboxval.TrainXGB(train, 44)
	if err != nil {
		t.Fatal(err)
	}
	if acc := blackboxval.AccuracyScore(model.PredictProba(test), test.Labels); acc < 0.5 {
		t.Fatalf("3-class accuracy = %v", acc)
	}
}
