// Package blackboxval learns to validate the predictions of black box
// classifiers on unseen data, reproducing Schelter, Rukat & Biessmann
// (SIGMOD 2020). Given a pretrained black box model — anything exposing
// class probabilities, including models served over the network — and a
// programmatic specification of the error types expected in serving data,
// the package learns:
//
//   - a Predictor (Algorithms 1 & 2 of the paper): a regression model
//     estimating the black box model's score (accuracy, AUC, ...) on an
//     unlabeled serving batch from class-wise percentiles of the model's
//     output distribution, and
//   - a Validator: a binary classifier deciding whether the score dropped
//     by more than a user threshold t, combining the percentile features
//     with Kolmogorov–Smirnov statistics between test-time and
//     serving-time outputs.
//
// Minimal usage:
//
//	model, _ := blackboxval.TrainXGB(train, 1)
//	pred, _ := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
//		Generators: blackboxval.KnownTabularGenerators(),
//	})
//	estimate := pred.Estimate(servingBatch) // no labels needed
//
// The subpackages used here are re-exported so downstream users never
// import internal paths.
package blackboxval

import (
	"blackboxval/internal/baselines"
	"blackboxval/internal/core"
	"blackboxval/internal/data"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/linalg"
)

// Dataset is a labeled tabular or image dataset.
type Dataset = data.Dataset

// Model is the black box classifier contract: class probabilities in,
// nothing else observable.
type Model = data.Model

// Matrix is the dense matrix type used for model outputs.
type Matrix = linalg.Matrix

// Generator is an error generator: a parameterized perturbation injecting
// a typical data error into a dataset copy.
type Generator = errorgen.Generator

// Predictor estimates the score of a black box model on unlabeled serving
// batches.
type Predictor = core.Predictor

// Validator raises alarms when the estimated score drop exceeds a
// threshold.
type Validator = core.Validator

// PredictorConfig configures TrainPredictor.
type PredictorConfig = core.PredictorConfig

// ValidatorConfig configures TrainValidator.
type ValidatorConfig = core.ValidatorConfig

// ScoreFunc is the scoring function L of the black box model.
type ScoreFunc = core.ScoreFunc

// Detector is the task-independent baseline contract (REL, BBSE, BBSEh).
type Detector = baselines.Detector

// TrainPredictor implements Algorithm 1 of the paper: learn a performance
// predictor for a pretrained black box model from synthetically corrupted
// copies of the held-out test set.
func TrainPredictor(model Model, test *Dataset, cfg PredictorConfig) (*Predictor, error) {
	return core.TrainPredictor(model, test, cfg)
}

// TrainValidator learns a performance validator: a binary classifier
// deciding whether the score on a serving batch dropped by more than
// cfg.Threshold relative to the clean test score.
func TrainValidator(model Model, test *Dataset, cfg ValidatorConfig) (*Validator, error) {
	return core.TrainValidator(model, test, cfg)
}

// PredictionStatistics computes the paper's output featurizer: class-wise
// percentiles (0, step, ..., 100) of a probability matrix.
func PredictionStatistics(proba *Matrix, step float64) []float64 {
	return core.PredictionStatistics(proba, step)
}

// AccuracyScore scores a probability matrix by argmax accuracy.
func AccuracyScore(proba *Matrix, y []int) float64 { return core.AccuracyScore(proba, y) }

// AUCScore scores binary problems by area under the ROC curve.
func AUCScore(proba *Matrix, y []int) float64 { return core.AUCScore(proba, y) }

// Predict returns the argmax class per row of a probability matrix.
func Predict(proba *Matrix) []int { return data.Predict(proba) }

// NewREL builds the relational shift detection baseline from a clean
// reference sample.
func NewREL(reference *Dataset) *baselines.REL { return baselines.NewREL(reference) }

// NewBBSE builds the black box shift detection baseline (soft outputs).
func NewBBSE(model Model, testOutputs *Matrix) *baselines.BBSE {
	return baselines.NewBBSE(model, testOutputs)
}

// NewBBSEh builds the black box shift detection baseline (hard
// predictions).
func NewBBSEh(model Model, testOutputs *Matrix) *baselines.BBSEh {
	return baselines.NewBBSEh(model, testOutputs)
}
