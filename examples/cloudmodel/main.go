// Cloud model example (the paper's Section 6.3.2 scenario, full
// contract): the client uploads training data to a simulated cloud AutoML
// service, the service picks and trains a model server-side, and the
// client gets back nothing but a prediction URL — the ultimate black box.
// The performance predictor is then trained purely through that URL and
// monitors corrupted serving batches.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"

	"blackboxval"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	ds := blackboxval.HeartDataset(5000, 7).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	// ----- "cloud" side: an AutoML service, nothing pre-trained --------
	service := blackboxval.NewAutoMLServer(blackboxval.AutoMLConfig{Seed: 7, Folds: 2})
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: service.Handler()}
	go server.Serve(listener)
	defer server.Close()
	baseURL := "http://" + listener.Addr().String()
	fmt.Printf("cloud AutoML service at %s\n", baseURL)

	// ----- client side: upload data, get a model URL back --------------
	client, reported, err := blackboxval.NewAutoMLClient(baseURL).Train(train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service trained a model (reported quality %.3f), serving at %s\n",
		reported, client.BaseURL)

	// The prediction client is a Model; the validation stack runs
	// against it unchanged.
	predictor, err := blackboxval.TrainPredictor(client, test, blackboxval.PredictorConfig{
		Generators:  blackboxval.KnownTabularGenerators(),
		Repetitions: 40,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote model accuracy on held-out data: %.3f\n\n", predictor.TestScore())

	// Monitor a stream of serving batches, some corrupted.
	mix := blackboxval.Mixture{Generators: blackboxval.KnownTabularGenerators()}
	fmt.Printf("%-22s %-12s %-12s\n", "batch", "estimated", "true")
	for i := 0; i < 6; i++ {
		batch := serving
		label := "clean"
		if i%2 == 1 {
			batch = mix.Corrupt(serving, rng.Float64(), rng)
			label = "corrupted"
		}
		proba := client.PredictProba(batch)
		fmt.Printf("%-22s %-12.3f %-12.3f\n",
			fmt.Sprintf("#%d (%s)", i, label),
			predictor.EstimateFromProba(proba),
			blackboxval.AccuracyScore(proba, batch.Labels))
	}
}
