// Quickstart: train a black box model, learn a performance predictor for
// it (Algorithm 1 of the paper), and use the predictor to estimate the
// model's accuracy on unseen, unlabeled — and possibly corrupted —
// serving data (Algorithm 2). A validator additionally raises alarms when
// the estimated drop exceeds 5%.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blackboxval"
)

func main() {
	// An e-commerce-style tabular dataset: numeric and categorical
	// attributes, binary target. In production this would be your data.
	rng := rand.New(rand.NewSource(1))
	ds := blackboxval.IncomeDataset(6000, 1).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	// Train the black box. The validation machinery below only ever calls
	// PredictProba on it — it could equally be a remote model.
	model, err := blackboxval.TrainXGB(train, 1)
	if err != nil {
		log.Fatal(err)
	}
	cleanProba := model.PredictProba(test)
	fmt.Printf("black box accuracy on held-out test data: %.3f\n",
		blackboxval.AccuracyScore(cleanProba, test.Labels))

	// Specify the error types we expect to see in serving data — their
	// magnitudes are unknown and will be randomized during training.
	generators := blackboxval.KnownTabularGenerators()

	// Algorithm 1: learn the performance predictor.
	predictor, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
		Generators:  generators,
		Repetitions: 60,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Algorithm 2 on clean serving data: the estimate needs NO labels.
	fmt.Printf("\nclean serving batch:\n")
	fmt.Printf("  estimated accuracy: %.3f\n", predictor.Estimate(serving))
	fmt.Printf("  true accuracy:      %.3f (normally unknowable!)\n",
		blackboxval.AccuracyScore(model.PredictProba(serving), serving.Labels))

	// Now simulate a preprocessing bug: someone changed the scale of
	// numeric attributes (seconds -> milliseconds).
	corrupted := blackboxval.Scaling{}.Corrupt(serving, 0.8, rng)
	proba := model.PredictProba(corrupted)
	fmt.Printf("\nserving batch with scaling bug:\n")
	fmt.Printf("  estimated accuracy: %.3f\n", predictor.EstimateFromProba(proba))
	fmt.Printf("  true accuracy:      %.3f\n",
		blackboxval.AccuracyScore(proba, corrupted.Labels))

	// The validator turns this into an alarm at a 5% tolerated drop.
	validator, err := blackboxval.TrainValidator(model, test, blackboxval.ValidatorConfig{
		Generators: generators,
		Threshold:  0.05,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalidator (t=5%%):\n")
	fmt.Printf("  alarm on clean batch:     %v\n", validator.Violation(serving))
	fmt.Printf("  alarm on corrupted batch: %v\n", validator.Violation(corrupted))
}
