// Image drift example (the paper's digits/fashion scenario): a
// convolutional network classifies images; upstream camera or pipeline
// changes rotate and blur the serving images. The performance predictor
// estimates the accuracy drop from the network's output distribution
// alone, without a single serving label.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blackboxval"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	ds := blackboxval.DigitsDataset(1600, 5).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	model, err := blackboxval.TrainConv(train, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("convnet accuracy on held-out digits: %.3f\n\n",
		blackboxval.AccuracyScore(model.PredictProba(test), test.Labels))

	predictor, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
		Generators:  blackboxval.ImageGenerators(),
		Repetitions: 25,
		Seed:        5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %-12s %-12s\n", "drift", "estimated", "true")
	scenarios := []struct {
		name      string
		gen       blackboxval.Generator
		magnitude float64
	}{
		{"none", blackboxval.NoOp{}, 0},
		{"noise on 30% of images", blackboxval.ImageNoise{}, 0.3},
		{"noise on 90% of images", blackboxval.ImageNoise{}, 0.9},
		{"rotation of 30% of images", blackboxval.ImageRotation{}, 0.3},
		{"rotation of 90% of images", blackboxval.ImageRotation{}, 0.9},
	}
	for _, sc := range scenarios {
		drifted := sc.gen.Corrupt(serving, sc.magnitude, rng)
		proba := model.PredictProba(drifted)
		fmt.Printf("%-28s %-12.3f %-12.3f\n", sc.name,
			predictor.EstimateFromProba(proba),
			blackboxval.AccuracyScore(proba, drifted.Labels))
	}
}
