// Custom error generator example: the paper's Section 4 lets engineers
// "implement their own [error generators] in a few lines" against an
// abstract base class. The Go equivalent is the blackboxval.Generator
// interface. Here a team that once shipped a kg-vs-lbs unit mixup encodes
// that institutional knowledge as a generator, includes it among the
// expected error types, and gets a performance predictor that resolves
// exactly this failure mode on unlabeled serving data.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blackboxval"
)

// UnitMixup converts a fraction of the weight column from kilograms to
// pounds without changing the header — the classic silent unit bug.
// It implements blackboxval.Generator in ~15 lines.
type UnitMixup struct{}

// Name implements blackboxval.Generator.
func (UnitMixup) Name() string { return "kg_to_lbs" }

// Corrupt implements blackboxval.Generator.
func (UnitMixup) Corrupt(ds *blackboxval.Dataset, magnitude float64, rng *rand.Rand) *blackboxval.Dataset {
	out := ds.Clone()
	col := out.Frame.Column("weight")
	if col == nil {
		return out
	}
	for i, v := range col.Num {
		if rng.Float64() < magnitude {
			col.Num[i] = v * 2.20462
		}
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(13))
	ds := blackboxval.HeartDataset(6000, 13).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	model, err := blackboxval.TrainDNN(train, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heart-disease model accuracy on held-out data: %.3f\n\n",
		blackboxval.AccuracyScore(model.PredictProba(test), test.Labels))

	// The team expects the standard errors AND their own historical bug.
	generators := append(blackboxval.KnownTabularGenerators(), UnitMixup{})
	predictor, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
		Generators:  generators,
		Repetitions: 50,
		Seed:        13,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-30s %-12s %-12s\n", "scenario", "estimated", "true")
	for _, magnitude := range []float64{0, 0.3, 0.7, 1.0} {
		buggy := UnitMixup{}.Corrupt(serving, magnitude, rng)
		proba := model.PredictProba(buggy)
		fmt.Printf("%-30s %-12.3f %-12.3f\n",
			fmt.Sprintf("%.0f%% of rows in lbs", magnitude*100),
			predictor.EstimateFromProba(proba),
			blackboxval.AccuracyScore(proba, buggy.Labels))
	}
	fmt.Println("\nthe predictor was trained before the bug recurred — no labels needed")
}
