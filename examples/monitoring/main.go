// Monitoring example: the full deployment lifecycle. A model bundle
// (black box + performance predictor + validator) is trained and
// persisted to disk, reloaded as a serving system would on startup, and
// wired into a Monitor that watches a stream of serving batches. Halfway
// through the stream a preprocessing bug starts corrupting the data; the
// monitor's hysteresis alarm fires after the configured number of
// consecutive bad batches.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"blackboxval"
)

func main() {
	dir, err := os.MkdirTemp("", "ppm-bundle-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- training time -------------------------------------------------
	rng := rand.New(rand.NewSource(11))
	ds := blackboxval.BankDataset(6000, 11).Balance(rng)
	source, servingPool := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	model, err := blackboxval.TrainXGB(train, 11)
	if err != nil {
		log.Fatal(err)
	}
	predictor, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
		Generators: blackboxval.KnownTabularGenerators(),
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	validator, err := blackboxval.TrainValidator(model, test, blackboxval.ValidatorConfig{
		Generators: blackboxval.KnownTabularGenerators(),
		Threshold:  0.05,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}

	modelPath := filepath.Join(dir, "model.json")
	predPath := filepath.Join(dir, "predictor.json")
	valPath := filepath.Join(dir, "validator.json")
	for _, step := range []struct {
		name string
		err  error
	}{
		{"model", blackboxval.SaveModel(modelPath, model)},
		{"predictor", blackboxval.SavePredictor(predPath, predictor)},
		{"validator", blackboxval.SaveValidator(valPath, validator)},
	} {
		if step.err != nil {
			log.Fatalf("saving %s: %v", step.name, step.err)
		}
	}
	fmt.Printf("bundle persisted to %s\n", dir)

	// ---- serving time: fresh process state ------------------------------
	loadedModel, err := blackboxval.LoadModel(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	loadedPred, err := blackboxval.LoadPredictor(predPath, loadedModel)
	if err != nil {
		log.Fatal(err)
	}
	loadedVal, err := blackboxval.LoadValidator(valPath, loadedModel)
	if err != nil {
		log.Fatal(err)
	}
	mon, err := blackboxval.NewMonitor(blackboxval.MonitorConfig{
		Predictor:  loadedPred,
		Validator:  loadedVal,
		Threshold:  0.05,
		Hysteresis: 2, // require 2 consecutive bad batches before paging
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring with alarm line %.3f (reference accuracy %.3f)\n\n",
		mon.AlarmLine(), loadedPred.TestScore())

	// ---- the serving stream ---------------------------------------------
	fmt.Printf("%-6s %-10s %-10s %-10s %-8s\n", "batch", "kind", "estimate", "true-acc", "alarm")
	for i := 0; i < 10; i++ {
		batch := servingPool.Sample(600, rng)
		kind := "clean"
		if i >= 5 {
			// Deployment of buggy preprocessing code: scales get mangled.
			batch = blackboxval.Scaling{}.Corrupt(batch, 0.7, rng)
			kind = "corrupted"
		}
		rec := mon.Observe(batch)
		trueAcc := blackboxval.AccuracyScore(loadedModel.PredictProba(batch), batch.Labels)
		fmt.Printf("%-6d %-10s %-10.3f %-10.3f %-8v\n", rec.Seq, kind, rec.Estimate, trueAcc, rec.Alarming)
	}

	s := mon.Summarize()
	fmt.Printf("\nsummary: %d batches, %d violating, %d alarmed, mean estimate %.3f, min %.3f\n",
		s.Batches, s.Violations, s.AlarmedBatches, s.MeanEstimate, s.MinEstimate)
}
