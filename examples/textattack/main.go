// Text attack example (the paper's tweets scenario): a troll-detection
// classifier faces an adversarial "leetspeak" attack, where attackers
// change the spelling of their messages ("hello world" -> "h3110 w041d")
// to evade the model. The performance predictor, trained only on
// synthetic attacks against held-out data, tracks the resulting accuracy
// collapse on unlabeled serving traffic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blackboxval"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	ds := blackboxval.TweetsDataset(6000, 3).Balance(rng)
	source, serving := ds.Split(0.7, rng)
	train, test := source.Split(0.6, rng)

	model, err := blackboxval.TrainLR(train, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("troll classifier accuracy on held-out tweets: %.3f\n\n",
		blackboxval.AccuracyScore(model.PredictProba(test), test.Labels))

	predictor, err := blackboxval.TrainPredictor(model, test, blackboxval.PredictorConfig{
		Generators:  []blackboxval.Generator{blackboxval.AdversarialText{}},
		Repetitions: 60,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-24s %-12s %-12s\n", "attack intensity", "estimated", "true")
	for _, intensity := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		attacked := blackboxval.AdversarialText{}.Corrupt(serving, intensity, rng)
		proba := model.PredictProba(attacked)
		fmt.Printf("%-24s %-12.3f %-12.3f\n",
			fmt.Sprintf("%.0f%% of tweets", intensity*100),
			predictor.EstimateFromProba(proba),
			blackboxval.AccuracyScore(proba, attacked.Labels))
	}
	fmt.Println("\nthe estimate requires no labels: an operator can alarm on it directly")
}
