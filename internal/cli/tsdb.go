package cli

// Durable-timeline wiring shared by ppm-monitor, ppm-gateway and
// ppm-aggregate: all three accept -tsdb-dir/-tsdb-retention (plus the
// size/downsampling knobs) and hand the parsed flags to WireTSDB,
// which opens the on-disk window store, registers the ppm_tsdb_*
// metric families and hooks Append onto the window source — a
// replica's drift timeline or the aggregator's merged fleet timeline;
// closed windows flow into segments either way. The returned DB's
// RangeHandler mounts at /timeline/range next to the live /timeline.

import (
	"flag"
	"log/slog"
	"time"

	"blackboxval/internal/obs"
	"blackboxval/internal/obs/tsdb"
)

// TSDBFlags carries the shared -tsdb-* flag values; the same five
// flags mean the same thing on ppm-monitor, ppm-gateway and
// ppm-aggregate (the obs.LogConfig idiom).
type TSDBFlags struct {
	Dir            string
	Retention      time.Duration
	RetentionBytes int64
	SegmentBytes   int64
	Downsample     int
}

// RegisterFlags installs the -tsdb-* flags on fs.
func (f *TSDBFlags) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&f.Dir, "tsdb-dir", "",
		"directory persisting closed timeline windows as an on-disk store (empty = durable history off)")
	fs.DurationVar(&f.Retention, "tsdb-retention", 0,
		"drop persisted segments older than this (0 = no age bound)")
	fs.Int64Var(&f.RetentionBytes, "tsdb-retention-bytes", 0,
		"on-disk footprint bound in bytes (0 = default 256MiB)")
	fs.Int64Var(&f.SegmentBytes, "tsdb-segment-bytes", 0,
		"segment file size bound in bytes (0 = default 4MiB)")
	fs.IntVar(&f.Downsample, "tsdb-downsample", 0,
		"compaction factor merging K old windows per bucket (0 = default 8; 1 keeps full resolution forever)")
}

// Options lifts the parsed flags into WireTSDB options.
func (f *TSDBFlags) Options(reg *obs.Registry, logger *slog.Logger) TSDBOptions {
	return TSDBOptions{
		Dir:            f.Dir,
		Retention:      f.Retention,
		RetentionBytes: f.RetentionBytes,
		SegmentBytes:   f.SegmentBytes,
		Downsample:     f.Downsample,
		Registry:       reg,
		Logger:         logger,
	}
}

// TSDBOptions configures WireTSDB.
type TSDBOptions struct {
	// Dir is the segment directory (empty = durable history off).
	Dir string
	// Retention drops closed segments whose newest window ended longer
	// ago than this (0 = no age bound).
	Retention time.Duration
	// RetentionBytes bounds the on-disk footprint (0 = tsdb default).
	RetentionBytes int64
	// SegmentBytes bounds one segment file (0 = tsdb default).
	SegmentBytes int64
	// Downsample is the compaction factor K (0 = tsdb default; 1
	// disables compaction so replay stays bit-exact forever).
	Downsample int
	// Registry receives the ppm_tsdb_* families (nil = obs.Default()).
	Registry *obs.Registry
	// Logger receives store lifecycle events (nil = slog.Default()).
	Logger *slog.Logger
}

// WireTSDB opens the durable window store and hooks it onto src so
// every closed timeline window is persisted. With an empty Dir it is a
// no-op returning a nil DB. The returned close function seals the
// active segment (call it on shutdown); it is never nil.
func WireTSDB(src WindowSource, opts TSDBOptions) (*tsdb.DB, func(), error) {
	if opts.Dir == "" {
		return nil, func() {}, nil
	}
	db, err := tsdb.Open(tsdb.Config{
		Dir:            opts.Dir,
		Retention:      opts.Retention,
		RetentionBytes: opts.RetentionBytes,
		SegmentBytes:   opts.SegmentBytes,
		Downsample:     opts.Downsample,
		Logger:         opts.Logger,
	})
	if err != nil {
		return nil, nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	db.RegisterMetrics(reg)
	src.OnWindowClose(db.Append)
	return db, func() { db.Close() }, nil
}
