package cli

// Tracing wiring shared by the serving binaries: open the bounded
// on-disk span journal, point the process tracers at it, and export
// the ppm_trace_* counter families — one call in each main(), so
// every process in the fleet persists its trace fragments the same
// way and ppm-diagnose -trace can stitch them (DESIGN.md §16).

import (
	"log/slog"

	"blackboxval/internal/obs"
)

// TracingOptions configures WireTracing.
type TracingOptions struct {
	// Dir is the span journal directory; "" keeps spans in the
	// in-memory ring only (/debug/traces still serves the live ring,
	// but fragments neither survive the process nor feed
	// ppm-diagnose -trace).
	Dir string
	// SegmentBytes / Segments bound the journal (0 = obs defaults,
	// 1 MiB × 4 segments).
	SegmentBytes int64
	Segments     int
	// Tracers are the process tracers to journal and export (empty =
	// obs.DefaultTracer()).
	Tracers []*obs.Tracer
	// Registry receives the ppm_trace_* families (nil = obs.Default()).
	Registry *obs.Registry
	// Logger receives the startup line (nil = slog.Default()).
	Logger *slog.Logger
}

// WireTracing attaches the distributed-tracing plumbing to a process:
// with Dir set it opens (or resumes) the bounded spans-*.jsonl journal
// and points every tracer at it, and it always registers the
// ppm_trace_* counter families. The returned close function detaches
// the tracers and closes the journal; it is never nil.
func WireTracing(opts TracingOptions) (func(), error) {
	tracers := opts.Tracers
	if len(tracers) == 0 {
		tracers = []*obs.Tracer{obs.DefaultTracer()}
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	closer := func() {}
	if opts.Dir != "" {
		j, err := obs.OpenJournal(opts.Dir, opts.SegmentBytes, opts.Segments)
		if err != nil {
			return nil, err
		}
		for _, tr := range tracers {
			tr.SetJournal(j)
		}
		closer = func() {
			for _, tr := range tracers {
				tr.SetJournal(nil)
			}
			j.Close()
		}
		logger.Info("span journal on", "dir", opts.Dir)
	}
	obs.RegisterTraceMetrics(reg, tracers...)
	return closer, nil
}
