package cli

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"blackboxval/internal/obs"
)

func TestSendTrafficRampsCorruption(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/predict_proba" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		n := calls.Add(1)
		w.Header().Set(obs.RequestIDHeader, fmt.Sprintf("req-%d", n))
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	var out bytes.Buffer
	err := SendTraffic(TrafficOptions{
		Target: srv.URL, Dataset: "income", Batches: 4, Rows: 60,
		Corrupt: "scaling", MaxMagnitude: 0.8, CleanBatches: 2,
		Seed: 5, Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("backend saw %d batches, want 4", calls.Load())
	}
	log := out.String()
	// Two clean batches, then a linear ramp ending at the max magnitude.
	if got := strings.Count(log, "magnitude 0.00"); got != 2 {
		t.Fatalf("clean batches = %d, want 2:\n%s", got, log)
	}
	for _, want := range []string{"magnitude 0.40", "magnitude 0.80", "request_id req-1", "request_id req-4"} {
		if !strings.Contains(log, want) {
			t.Fatalf("log missing %q:\n%s", want, log)
		}
	}
}

func TestSendTrafficFailsOnNon2xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	err := SendTraffic(TrafficOptions{
		Target: srv.URL, Dataset: "income", Batches: 1, Rows: 20, Out: &bytes.Buffer{},
	})
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("expected 500 error, got %v", err)
	}
}

func TestSendTrafficRejectsUnknownNames(t *testing.T) {
	if err := SendTraffic(TrafficOptions{
		Target: "http://127.0.0.1:1", Dataset: "nope", Batches: 1, Out: &bytes.Buffer{},
	}); err == nil {
		t.Fatal("unknown dataset should error before any request")
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	if err := SendTraffic(TrafficOptions{
		Target: srv.URL, Dataset: "income", Batches: 3, Rows: 20,
		Corrupt: "no-such-generator", Out: &bytes.Buffer{},
	}); err == nil {
		t.Fatal("unknown generator should error once the ramp starts")
	}
}

func TestAlertSink(t *testing.T) {
	sink := &AlertSink{}
	h := sink.Handler()

	do := func(method, path, body string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(method, path, strings.NewReader(body)))
		return rr
	}

	if rr := do(http.MethodPost, "/", `{"rule": "r1", "state": "firing"}`); rr.Code != http.StatusNoContent {
		t.Fatalf("POST valid JSON = %d, want 204", rr.Code)
	}
	if rr := do(http.MethodPost, "/", "not json"); rr.Code != http.StatusBadRequest {
		t.Fatalf("POST invalid JSON = %d, want 400", rr.Code)
	}
	if rr := do(http.MethodGet, "/", ""); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET / = %d, want 405", rr.Code)
	}
	if sink.Count() != 1 {
		t.Fatalf("Count = %d, want 1", sink.Count())
	}
	if rr := do(http.MethodGet, "/count", ""); !strings.Contains(rr.Body.String(), `"count": 1`) {
		t.Fatalf("GET /count = %q", rr.Body.String())
	}
	if rr := do(http.MethodGet, "/events", ""); !strings.Contains(rr.Body.String(), `"rule":"r1"`) {
		t.Fatalf("GET /events = %q", rr.Body.String())
	}
	if rr := do(http.MethodGet, "/healthz", ""); rr.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", rr.Code)
	}
}
