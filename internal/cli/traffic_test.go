package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blackboxval/internal/obs"
)

func TestSendTrafficRampsCorruption(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/predict_proba" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		n := calls.Add(1)
		w.Header().Set(obs.RequestIDHeader, fmt.Sprintf("req-%d", n))
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	var out bytes.Buffer
	err := SendTraffic(TrafficOptions{
		Target: srv.URL, Dataset: "income", Batches: 4, Rows: 60,
		Corrupt: "scaling", MaxMagnitude: 0.8, CleanBatches: 2,
		Seed: 5, Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Fatalf("backend saw %d batches, want 4", calls.Load())
	}
	log := out.String()
	// Two clean batches, then a linear ramp ending at the max magnitude.
	if got := strings.Count(log, "magnitude 0.00"); got != 2 {
		t.Fatalf("clean batches = %d, want 2:\n%s", got, log)
	}
	for _, want := range []string{"magnitude 0.40", "magnitude 0.80", "request_id req-1", "request_id req-4"} {
		if !strings.Contains(log, want) {
			t.Fatalf("log missing %q:\n%s", want, log)
		}
	}
}

func TestSendTrafficFailsOnlyWhenAllFail(t *testing.T) {
	t.Run("every batch fails", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}))
		defer srv.Close()
		var out bytes.Buffer
		err := SendTraffic(TrafficOptions{
			Target: srv.URL, Dataset: "income", Batches: 3, Rows: 20, Out: &out,
		})
		if err == nil || !strings.Contains(err.Error(), "every batch failed (3/3)") ||
			!strings.Contains(err.Error(), "500") {
			t.Fatalf("want a clear all-failed error naming the last status, got %v", err)
		}
	})
	t.Run("dead target", func(t *testing.T) {
		err := SendTraffic(TrafficOptions{
			Target: "http://127.0.0.1:1", Dataset: "income", Batches: 2, Rows: 20, Out: &bytes.Buffer{},
		})
		if err == nil || !strings.Contains(err.Error(), "every batch failed (2/2)") {
			t.Fatalf("a dead target must exit non-zero, got %v", err)
		}
	})
	t.Run("partial failure continues", func(t *testing.T) {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			if calls.Add(1) == 2 { // one mid-ramp hiccup
				http.Error(w, "flake", http.StatusServiceUnavailable)
				return
			}
			w.WriteHeader(http.StatusOK)
		}))
		defer srv.Close()
		var out bytes.Buffer
		err := SendTraffic(TrafficOptions{
			Target: srv.URL, Dataset: "income", Batches: 4, Rows: 20, Out: &out,
		})
		if err != nil {
			t.Fatalf("one flaky batch must not fail the ramp: %v", err)
		}
		if calls.Load() != 4 {
			t.Fatalf("backend saw %d batches, want all 4 attempted", calls.Load())
		}
		if !strings.Contains(out.String(), "batch 1: send failed: status 503") {
			t.Fatalf("log missing the per-batch failure line:\n%s", out.String())
		}
	})
}

// TestSendTrafficReplaysLaggedLabels pins the label replay contract:
// batch i's ground truth is POSTed to /labels after batch i+lag is
// served, the tail flushes at ramp end, every row is covered, and the
// labels are the generator's truth (idempotent with the request ids the
// target minted).
func TestSendTrafficReplaysLaggedLabels(t *testing.T) {
	type post struct {
		when int64 // batches served when this label post arrived
		recs []trafficLabelRecord
	}
	var mu sync.Mutex
	var served atomic.Int64
	var posts []post
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/predict_proba":
			n := served.Add(1)
			w.Header().Set(obs.RequestIDHeader, fmt.Sprintf("req-%d", n))
			w.WriteHeader(http.StatusOK)
		case "/labels":
			var body struct {
				Records []trafficLabelRecord `json:"records"`
			}
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				t.Errorf("bad /labels body: %v", err)
			}
			mu.Lock()
			posts = append(posts, post{when: served.Load(), recs: body.Records})
			mu.Unlock()
			w.WriteHeader(http.StatusOK)
		default:
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
	}))
	defer srv.Close()

	const batches, rows, lag = 5, 30, 2
	var out bytes.Buffer
	err := SendTraffic(TrafficOptions{
		Target: srv.URL, Dataset: "income", Batches: batches, Rows: rows,
		Seed: 3, ReplayLabels: true, LabelLag: lag, Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(posts) != batches {
		t.Fatalf("saw %d label posts, want one per batch:\n%s", len(posts), out.String())
	}
	for i, p := range posts {
		if len(p.recs) != 1 || p.recs[0].RequestID != fmt.Sprintf("req-%d", i+1) {
			t.Fatalf("post %d carries %+v, want the labels of req-%d", i, p.recs, i+1)
		}
		if len(p.recs[0].Labels) != rows || p.recs[0].Rows != nil {
			t.Fatalf("post %d: %d labels (rows %v), want full batch of %d", i, len(p.recs[0].Labels), p.recs[0].Rows, rows)
		}
		// In-ramp posts arrive exactly lag batches late; the tail flush
		// happens after all batches are served.
		wantWhen := int64(i + 1 + lag)
		if wantWhen > batches {
			wantWhen = batches
		}
		if p.when != wantWhen {
			t.Fatalf("labels for batch %d posted when %d batches served, want %d", i, p.when, wantWhen)
		}
	}
	if !strings.Contains(out.String(), fmt.Sprintf("labels: replayed %d rows over %d batches", batches*rows, batches)) {
		t.Fatalf("log missing the replay summary:\n%s", out.String())
	}
}

// TestSendTrafficBudgetModeAsksWorklist pins budget mode: the sender
// labels only the rows GET /labels/requests returns, grouped per
// request id with explicit row indices.
func TestSendTrafficBudgetModeAsksWorklist(t *testing.T) {
	var served atomic.Int64
	var mu sync.Mutex
	var worklistCalls []string
	var recs []trafficLabelRecord
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/predict_proba":
			n := served.Add(1)
			w.Header().Set(obs.RequestIDHeader, fmt.Sprintf("req-%d", n))
			w.WriteHeader(http.StatusOK)
		case "/labels/requests":
			mu.Lock()
			worklistCalls = append(worklistCalls, r.URL.RawQuery)
			mu.Unlock()
			// Ask for two rows of the oldest known batch and one of an id
			// the sender never served (must be skipped).
			fmt.Fprint(w, `{"requests":[
				{"request_id":"req-1","row":4},
				{"request_id":"req-1","row":7},
				{"request_id":"unknown","row":0}]}`)
		case "/labels":
			var body struct {
				Records []trafficLabelRecord `json:"records"`
			}
			json.NewDecoder(r.Body).Decode(&body)
			mu.Lock()
			recs = append(recs, body.Records...)
			mu.Unlock()
			w.WriteHeader(http.StatusOK)
		default:
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
	}))
	defer srv.Close()

	var out bytes.Buffer
	err := SendTraffic(TrafficOptions{
		Target: srv.URL, Dataset: "income", Batches: 1, Rows: 20, Seed: 3,
		ReplayLabels: true, LabelLag: 0, LabelBudget: 2, LabelPolicy: "uniform", Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(worklistCalls) != 1 || !strings.Contains(worklistCalls[0], "budget=2") ||
		!strings.Contains(worklistCalls[0], "policy=uniform") {
		t.Fatalf("worklist calls %v, want one with budget=2&policy=uniform", worklistCalls)
	}
	if len(recs) != 1 || recs[0].RequestID != "req-1" {
		t.Fatalf("label records %+v, want exactly req-1", recs)
	}
	if len(recs[0].Rows) != 2 || recs[0].Rows[0] != 4 || recs[0].Rows[1] != 7 || len(recs[0].Labels) != 2 {
		t.Fatalf("budget post %+v, want rows [4 7] with matching labels", recs[0])
	}
}

// TestSendTrafficLatencySummary pins satellite (b): both loop modes
// end with a per-run latency line carrying the request count, error
// count, and p50/p99/max quantiles.
func TestSendTrafficLatencySummary(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 2 {
			http.Error(w, "flake", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set(obs.RequestIDHeader, fmt.Sprintf("req-%d", calls.Load()))
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	var out bytes.Buffer
	if err := SendTraffic(TrafficOptions{
		Target: srv.URL, Dataset: "income", Batches: 4, Rows: 20, Out: &out,
	}); err != nil {
		t.Fatal(err)
	}
	log := out.String()
	if !strings.Contains(log, "latency (closed loop): 3 requests, 1 errors, p50 ") {
		t.Fatalf("closed-loop run missing the latency summary:\n%s", log)
	}
	for _, want := range []string{"p50 ", "p99 ", "max "} {
		if !strings.Contains(log, want) {
			t.Fatalf("summary missing %q:\n%s", want, log)
		}
	}
}

// TestSendTrafficOpenLoop pins the open-loop contract: all batches are
// dispatched at the arrival rate without waiting for responses (a
// deliberately slow target still sees every batch), the summary names
// the rate, and each successful request lands in the histogram.
func TestSendTrafficOpenLoop(t *testing.T) {
	var calls atomic.Int64
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		n := calls.Add(1)
		<-block // hold every response until all batches have been dispatched
		w.Header().Set(obs.RequestIDHeader, fmt.Sprintf("req-%d", n))
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	const batches = 6
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- SendTraffic(TrafficOptions{
			Target: srv.URL, Dataset: "income", Batches: batches, Rows: 20,
			Rate: 500, Out: &out,
		})
	}()

	// A closed loop would deadlock here: batch 1 would wait forever for
	// batch 0's held response. Open loop keeps dispatching.
	deadline := time.Now().Add(10 * time.Second)
	for calls.Load() < batches {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d batches dispatched while responses were held", calls.Load(), batches)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	log := out.String()
	if !strings.Contains(log, fmt.Sprintf("latency (open loop @ 500.0/s): %d requests, 0 errors", batches)) {
		t.Fatalf("open-loop run missing the latency summary:\n%s", log)
	}
	for i := 1; i <= batches; i++ {
		if !strings.Contains(log, fmt.Sprintf("request_id req-%d", i)) {
			t.Fatalf("log missing batch with request_id req-%d:\n%s", i, log)
		}
	}
}

// Open loop cannot replay labels: the backlog needs the closed loop's
// serve order.
func TestSendTrafficOpenLoopRejectsLabelReplay(t *testing.T) {
	err := SendTraffic(TrafficOptions{
		Target: "http://127.0.0.1:1", Dataset: "income", Batches: 1, Rows: 10,
		Rate: 10, ReplayLabels: true, Out: &bytes.Buffer{},
	})
	if err == nil || !strings.Contains(err.Error(), "open loop") {
		t.Fatalf("want an open-loop/label-replay conflict error, got %v", err)
	}
}

func TestSendTrafficRejectsUnknownNames(t *testing.T) {
	if err := SendTraffic(TrafficOptions{
		Target: "http://127.0.0.1:1", Dataset: "nope", Batches: 1, Out: &bytes.Buffer{},
	}); err == nil {
		t.Fatal("unknown dataset should error before any request")
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	if err := SendTraffic(TrafficOptions{
		Target: srv.URL, Dataset: "income", Batches: 3, Rows: 20,
		Corrupt: "no-such-generator", Out: &bytes.Buffer{},
	}); err == nil {
		t.Fatal("unknown generator should error once the ramp starts")
	}
}

func TestAlertSink(t *testing.T) {
	sink := &AlertSink{}
	h := sink.Handler()

	do := func(method, path, body string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(method, path, strings.NewReader(body)))
		return rr
	}

	if rr := do(http.MethodPost, "/", `{"rule": "r1", "state": "firing"}`); rr.Code != http.StatusNoContent {
		t.Fatalf("POST valid JSON = %d, want 204", rr.Code)
	}
	if rr := do(http.MethodPost, "/", "not json"); rr.Code != http.StatusBadRequest {
		t.Fatalf("POST invalid JSON = %d, want 400", rr.Code)
	}
	if rr := do(http.MethodGet, "/", ""); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET / = %d, want 405", rr.Code)
	}
	if sink.Count() != 1 {
		t.Fatalf("Count = %d, want 1", sink.Count())
	}
	if rr := do(http.MethodGet, "/count", ""); !strings.Contains(rr.Body.String(), `"count": 1`) {
		t.Fatalf("GET /count = %q", rr.Body.String())
	}
	if rr := do(http.MethodGet, "/events", ""); !strings.Contains(rr.Body.String(), `"rule":"r1"`) {
		t.Fatalf("GET /events = %q", rr.Body.String())
	}
	if rr := do(http.MethodGet, "/healthz", ""); rr.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", rr.Code)
	}
}
