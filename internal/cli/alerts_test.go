package cli

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
)

func quietSlog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestWireAlertsNoopWithoutRules(t *testing.T) {
	engine, closer, err := WireAlerts(nil, AlertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if engine != nil {
		t.Fatal("no rules should mean no engine")
	}
	if closer == nil {
		t.Fatal("closer must never be nil on success")
	}
	closer()
}

func TestWireAlertsWebhookNeedsRules(t *testing.T) {
	_, _, err := WireAlerts(nil, AlertOptions{WebhookURL: "http://127.0.0.1:1"})
	if err == nil {
		t.Fatal("webhook without rules should error")
	}
	if !strings.Contains(err.Error(), "-alert-rules") {
		t.Fatalf("error should point at the missing flag: %v", err)
	}
}

func TestWireAlertsRejectsBadRuleFiles(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := WireAlerts(nil, AlertOptions{
		RulesPath: filepath.Join(dir, "missing.json"),
	}); err == nil {
		t.Fatal("missing rule file should error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, `[{"name": "r", "series": "estimate", "op": "~", "threshold": 1}]`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := WireAlerts(nil, AlertOptions{RulesPath: bad, Logger: quietSlog()}); err == nil {
		t.Fatal("invalid rule op should error")
	}
}

// TestWireAlertsFullWiring drives the whole CLI-facing chain once: the
// watch options plumb the timeline/dashboard knobs into the monitor,
// WireAlerts hooks the rule engine onto the timeline with a webhook
// notifier, and a single catastrophically corrupted batch fires the
// rule and delivers the event.
func TestWireAlertsFullWiring(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "bundle")
	trainSmallBundle(t, bundle)
	watchDir := filepath.Join(dir, "spool")
	if err := mkdirAll(watchDir); err != nil {
		t.Fatal(err)
	}
	mustGenBatch(t, GenBatchOptions{
		Dataset: "income", Corrupt: "scaling", Magnitude: 0.95,
		Rows: 400, OutCSV: filepath.Join(watchDir, "01-broken.csv"), Seed: 2, WithLabels: true,
	})

	mon, run, err := PrepareWatch(WatchOptions{
		BundleDir: bundle, WatchDir: watchDir,
		Interval: 10 * time.Millisecond, Labeled: true, MaxBatches: 1,
		TimelineWindow: 1, TimelineCapacity: 16,
		DashboardRefresh: 1234 * time.Millisecond,
		Out:              &bytes.Buffer{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flag plumbing: the CLI options must land in the monitor.
	if got := mon.DashboardRefresh(); got != 1234*time.Millisecond {
		t.Fatalf("DashboardRefresh = %v, want 1.234s", got)
	}

	var (
		mu       sync.Mutex
		payloads []alert.Event
	)
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev alert.Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("bad webhook payload: %v", err)
		}
		mu.Lock()
		payloads = append(payloads, ev)
		mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}))
	defer sink.Close()

	rules := filepath.Join(dir, "rules.json")
	ruleJSON := `{"rules": [{"name": "alarm_on", "series": "alarm", "op": ">=",
		"threshold": 1, "reduce": "max", "for_windows": 1, "severity": "critical"}]}`
	if err := writeFile(rules, ruleJSON); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	engine, closeAlerts, err := WireAlerts(mon, AlertOptions{
		RulesPath: rules, WebhookURL: sink.URL,
		Registry: reg, Logger: quietSlog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if engine == nil {
		t.Fatal("rules given, engine expected")
	}

	if err := run(); err != nil {
		t.Fatal(err)
	}
	closeAlerts() // drains the webhook delivery queue

	doc := mon.TimelineDoc()
	if len(doc.Windows) != 1 {
		t.Fatalf("timeline windows = %d, want 1", len(doc.Windows))
	}
	if doc.RefreshMillis != 1234 {
		t.Fatalf("refresh_ms = %d, want 1234", doc.RefreshMillis)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(payloads) != 1 {
		t.Fatalf("webhook payloads = %d, want 1 (%+v)", len(payloads), payloads)
	}
	if payloads[0].Rule != "alarm_on" || payloads[0].State != "firing" || payloads[0].Severity != "critical" {
		t.Fatalf("unexpected event: %+v", payloads[0])
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `ppm_alerts_total{rule="alarm_on"} 1`) {
		t.Fatalf("alert metrics missing from registry:\n%s", b.String())
	}
}
