package cli

// Federation wiring behind cmd/ppm-aggregate: parse the -replicas flag
// into shard configs, build the fed.Aggregator, hook the stock alert
// engine onto the merged fleet timeline (same rule files, same webhook
// notifier as a single replica), and optionally attach the fleet
// incident capture.

import (
	"fmt"
	"log/slog"
	"strings"
	"time"

	"blackboxval/internal/fed"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
)

// FederationOptions configures WireFederation.
type FederationOptions struct {
	// Replicas are "name=url" pairs (or bare URLs, which get synthetic
	// shard-N names). URLs without a scheme get "http://"; URLs without
	// a path get "/federate" appended.
	Replicas []string
	// Interval is the scrape cadence (default 2s).
	Interval time.Duration
	// Timeout bounds each per-replica fetch (default 1s).
	Timeout time.Duration
	// StaleAfter is the shard staleness bound (default 5×Interval).
	StaleAfter time.Duration
	// Capacity bounds the merged fleet window ring (default 128).
	Capacity int
	// RefreshMillis is the fleet dashboard poll interval.
	RefreshMillis int
	// AlertRulesPath / AlertWebhookURL mirror the replica alert flags,
	// applied to the merged fleet timeline.
	AlertRulesPath  string
	AlertWebhookURL string
	// IncidentDir, when set, captures fleet incident files on alert
	// fire; IncidentMax bounds the ring.
	IncidentDir string
	IncidentMax int
	// TraceSampleRate head-samples the federate_scrape traces the
	// aggregator mints each cycle (<=0 or >1 = sample everything).
	TraceSampleRate float64
	// Registry receives the ppm_federate_* and alert families
	// (nil = obs.Default()).
	Registry *obs.Registry
	// Logger receives structured events (nil = slog.Default()).
	Logger *slog.Logger
}

// ParseReplicas turns -replicas values into shard configs.
func ParseReplicas(specs []string) ([]fed.ReplicaConfig, error) {
	var out []fed.ReplicaConfig
	for i, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, url := "", spec
		if eq := strings.Index(spec, "="); eq >= 0 && !strings.Contains(spec[:eq], "/") {
			name, url = spec[:eq], spec[eq+1:]
		}
		if name == "" {
			name = fmt.Sprintf("shard-%d", i)
		}
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		rest := url[strings.Index(url, "://")+3:]
		if !strings.Contains(rest, "/") {
			url += "/federate"
		} else if strings.HasSuffix(url, "/") {
			url += "federate"
		}
		if rest == "" || strings.HasPrefix(rest, "/") {
			return nil, fmt.Errorf("cli: replica %q has no host", spec)
		}
		out = append(out, fed.ReplicaConfig{Name: name, URL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cli: -replicas needs at least one name=url entry")
	}
	return out, nil
}

// WireFederation builds the aggregator, wires alerts and incident
// capture over the merged fleet timeline, and registers the federation
// metric families. The caller starts scraping with agg.Run(ctx). The
// returned close function drains the alert webhook queue; it is never
// nil.
func WireFederation(opts FederationOptions) (*fed.Aggregator, *alert.Engine, func(), error) {
	replicas, err := ParseReplicas(opts.Replicas)
	if err != nil {
		return nil, nil, nil, err
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	agg, err := fed.New(fed.Config{
		Replicas:        replicas,
		Interval:        opts.Interval,
		Timeout:         opts.Timeout,
		StaleAfter:      opts.StaleAfter,
		Capacity:        opts.Capacity,
		RefreshMillis:   opts.RefreshMillis,
		TraceSampleRate: opts.TraceSampleRate,
		Logger:          opts.Logger,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	agg.RegisterMetrics(reg)

	var notifier alert.Notifier
	if opts.IncidentDir != "" {
		capture, err := fed.NewCapture(agg, fed.CaptureConfig{
			Dir:    opts.IncidentDir,
			Max:    opts.IncidentMax,
			Logger: opts.Logger,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		notifier = capture.Notifier()
	}
	engine, closer, err := WireAlertEngine(agg, AlertOptions{
		RulesPath:  opts.AlertRulesPath,
		WebhookURL: opts.AlertWebhookURL,
		Notifier:   notifier,
		Registry:   reg,
		Logger:     opts.Logger,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if engine != nil {
		agg.SetAlarming(func() bool { return len(engine.Active()) > 0 })
	}
	return agg, engine, closer, nil
}
