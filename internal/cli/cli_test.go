package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blackboxval/internal/cloud"
	"blackboxval/internal/data"
)

// trainSmallBundle builds one small bundle shared across tests of this
// package (training is the slow part).
func trainSmallBundle(t *testing.T, dir string) {
	t.Helper()
	report, err := Train(TrainOptions{
		Dataset: "income", Model: "lr", Rows: 1800,
		Threshold: 0.05, OutDir: dir, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "held-out accuracy") {
		t.Fatalf("train report missing accuracy: %q", report)
	}
	for _, name := range []string{ManifestFile, ModelFile, PredictorFile, ValidatorFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("bundle missing %s: %v", name, err)
		}
	}
}

func TestTrainCheckGenBatchWorkflow(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "bundle")
	trainSmallBundle(t, bundle)

	// Clean batch: verdict ok.
	cleanCSV := filepath.Join(dir, "clean.csv")
	if _, err := GenBatch(GenBatchOptions{
		Dataset: "income", Rows: 800, OutCSV: cleanCSV, Seed: 7, WithLabels: true,
	}); err != nil {
		t.Fatal(err)
	}
	report, err := Check(CheckOptions{BundleDir: bundle, BatchCSV: cleanCSV, Labeled: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "verdict: ok") {
		t.Fatalf("clean batch not ok:\n%s", report)
	}
	if !strings.Contains(report, "true accuracy") {
		t.Fatal("labeled check should print the true accuracy")
	}

	// Catastrophically scaled batch: verdict ALARM.
	badCSV := filepath.Join(dir, "bad.csv")
	if _, err := GenBatch(GenBatchOptions{
		Dataset: "income", Corrupt: "scaling", Magnitude: 0.95,
		Rows: 800, OutCSV: badCSV, Seed: 8, WithLabels: true,
	}); err != nil {
		t.Fatal(err)
	}
	report, err = Check(CheckOptions{BundleDir: bundle, BatchCSV: badCSV, Labeled: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "ALARM") {
		t.Fatalf("catastrophic batch not alarmed:\n%s", report)
	}
	if !strings.Contains(report, "most suspicious columns") {
		t.Fatalf("alarm report lacks drift attribution:\n%s", report)
	}
}

func TestLoadServingBundleAttachesRemoteModel(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "bundle")
	trainSmallBundle(t, bundle)

	// The gateway path: validation artifacts from disk, black box remote.
	remote := cloud.NewClient("http://127.0.0.1:9")
	manifest, pred, val, err := LoadServingBundle(bundle, remote)
	if err != nil {
		t.Fatal(err)
	}
	if manifest.Dataset != "income" || manifest.Model != "lr" {
		t.Fatalf("manifest = %+v", manifest)
	}
	if pred.TestScore() != manifest.TestScore {
		t.Fatalf("predictor test score %v != manifest %v", pred.TestScore(), manifest.TestScore)
	}
	if pred.Model() != data.Model(remote) {
		t.Fatal("predictor not attached to the provided remote model")
	}
	if val.Threshold() != manifest.Threshold {
		t.Fatalf("validator threshold %v != manifest %v", val.Threshold(), manifest.Threshold)
	}
	// The model file must not be required: a serving host only syncs the
	// validation artifacts.
	if err := os.Remove(filepath.Join(bundle, ModelFile)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadServingBundle(bundle, remote); err != nil {
		t.Fatalf("serving bundle should load without the model file: %v", err)
	}
	if _, _, _, err := LoadServingBundle(t.TempDir(), remote); err == nil {
		t.Fatal("missing bundle should error")
	}
}

func TestCheckUnlabeledBatch(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "bundle")
	trainSmallBundle(t, bundle)
	csv := filepath.Join(dir, "batch.csv")
	if _, err := GenBatch(GenBatchOptions{
		Dataset: "income", Rows: 500, OutCSV: csv, Seed: 9, WithLabels: false,
	}); err != nil {
		t.Fatal(err)
	}
	report, err := Check(CheckOptions{BundleDir: bundle, BatchCSV: csv, Labeled: false})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(report, "true accuracy") {
		t.Fatal("unlabeled check must not claim a true accuracy")
	}
	if !strings.Contains(report, "estimated accuracy") {
		t.Fatal("check report missing estimate")
	}
}

func TestTrainRejectsUnknownInputs(t *testing.T) {
	if _, err := Train(TrainOptions{Dataset: "nope", Model: "lr", OutDir: t.TempDir()}); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if _, err := Train(TrainOptions{Dataset: "income", Model: "nope", OutDir: t.TempDir()}); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestGeneratorByName(t *testing.T) {
	for _, name := range []string{"missing", "outliers", "swapped", "scaling", "typos", "smearing", "flipped_sign", "leetspeak", "none"} {
		g, err := GeneratorByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Name() != name {
			t.Fatalf("resolved %q for request %q", g.Name(), name)
		}
	}
	if _, err := GeneratorByName("bogus"); err == nil {
		t.Fatal("unknown generator should error")
	}
}

func TestCheckRejectsMissingBundle(t *testing.T) {
	if _, err := Check(CheckOptions{BundleDir: t.TempDir(), BatchCSV: "x.csv"}); err == nil {
		t.Fatal("missing bundle should error")
	}
}

func TestReadBatchCSVUnknownLabel(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "bundle")
	trainSmallBundle(t, bundle)
	manifest, _, _, _, err := LoadBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "bad.csv")
	if _, err := GenBatch(GenBatchOptions{Dataset: "income", Rows: 5, OutCSV: csv, Seed: 1, WithLabels: true}); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(csv)
	broken := strings.Replace(string(raw), "<=50K", "WHAT", 1)
	broken = strings.Replace(broken, ">50K", "WHAT", 1)
	if err := os.WriteFile(csv, []byte(broken), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBatchCSV(csv, manifest, true); err == nil {
		t.Fatal("unknown label should error")
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "batch.csv")
	if _, err := GenBatch(GenBatchOptions{Dataset: "income", Rows: 100, OutCSV: csv, Seed: 5, WithLabels: true}); err != nil {
		t.Fatal(err)
	}
	report, err := Inspect(InspectOptions{BatchCSV: csv})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"100 rows", "age", "numeric", "occupation", "categorical", "label"} {
		if !strings.Contains(report, want) {
			t.Fatalf("inspect report missing %q:\n%s", want, report)
		}
	}
	if _, err := Inspect(InspectOptions{BatchCSV: filepath.Join(dir, "missing.csv")}); err == nil {
		t.Fatal("missing file should error")
	}
}
