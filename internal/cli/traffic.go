package cli

// Traffic generation and the alert sink behind cmd/ppm-traffic: the
// send side replays a synthetic serving workload through a gateway with
// an optional corruption ramp (clean batches first, then a linearly
// growing error magnitude — the deterministic drift scenario used by
// the demo and the e2e tests), and the sink side is a tiny webhook
// receiver that scripts can poll to assert an alert actually arrived.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"blackboxval/internal/cloud"
	"blackboxval/internal/data"
	"blackboxval/internal/frame"
	"blackboxval/internal/obs"
	"blackboxval/internal/stats"
)

// TrafficOptions configures SendTraffic.
type TrafficOptions struct {
	// Target is the base URL posted to (the gateway), e.g.
	// "http://127.0.0.1:8088".
	Target string
	// Targets, when non-empty, shards the workload round-robin: batch i
	// goes to Targets[i%len(Targets)] — the dispatch layout the
	// federation determinism contract assumes (DESIGN.md §13). Target
	// is ignored when set.
	Targets []string
	// Dataset names the synthetic dataset (income, heart, bank, tweets).
	Dataset string
	// Batches is how many serving batches to send (default 6).
	Batches int
	// Rows per batch (default 500).
	Rows int
	// Corrupt names the error generator for the ramp (empty = all clean).
	Corrupt string
	// Column, when set, overrides Corrupt's random column pick with a
	// targeted single-column scaling corruption of the named numeric
	// column (each value is multiplied by 1000 with per-value probability
	// equal to the ramp magnitude). This is the deterministic
	// attribution scenario: the incident recorder should rank exactly
	// this column first.
	Column string
	// MaxMagnitude is the ramp's final corruption magnitude (default 0.95).
	MaxMagnitude float64
	// CleanBatches is how many leading batches stay uncorrupted
	// (default 2 when Corrupt is set).
	CleanBatches int
	// Interval pauses between batches (default none; closed loop only).
	Interval time.Duration
	// Rate, when > 0, switches to open-loop dispatch: batches are
	// launched at a fixed arrival rate (Rate per second) on their own
	// goroutines instead of waiting for the previous response, and each
	// latency is measured from the batch's *intended* start time — the
	// coordinated-omission-free convention, so a slow target inflates
	// the recorded tail instead of silently thinning the workload.
	// Incompatible with ReplayLabels (the replay backlog needs the
	// closed loop's serve order).
	Rate float64
	// Seed makes the generated workload reproducible.
	Seed int64
	// TraceSampleRate is the head-sampling rate stamped into the
	// deterministic traceparent each batch carries (DESIGN.md §16):
	// batch n's trace id is a pure function of Seed and n, so the
	// sampled subset is bit-identical across runs and across closed-
	// and open-loop modes. <= 0 or > 1 means sample everything.
	TraceSampleRate float64
	// ReplayLabels replays delayed ground truth: after batch i succeeds,
	// the true labels of batch i-LabelLag are POSTed to the /labels
	// endpoint of the target that served it, and the tail is flushed when
	// the ramp ends. Labels are the generator's ground truth — corruption
	// perturbs features only, so the labeled accuracy genuinely collapses
	// while h may or may not notice.
	ReplayLabels bool
	// LabelLag is the replay delay in batches (0 = labels arrive right
	// after their own batch).
	LabelLag int
	// LabelBudget switches the replay to budget mode: instead of full
	// batches, each due step asks GET /labels/requests?budget=N which
	// rows are worth labeling and posts only those (0 = full batches).
	LabelBudget int
	// LabelPolicy is the budget-mode worklist policy: "ts" (default) or
	// "uniform".
	LabelPolicy string
	// HTTPClient overrides the transport (tests inject fakes).
	HTTPClient *http.Client
	// Out receives one log line per batch (default os.Stdout).
	Out io.Writer
}

// SendTraffic generates the workload and posts each batch to
// Target/predict_proba, logging the status and the X-Request-ID the
// gateway minted for each. Local errors (unknown dataset, unknown
// generator, encoding) still fail fast, but per-batch delivery
// failures are logged and the ramp continues — the run errors only
// when every request failed, so a flaky target degrades the workload
// instead of truncating it while a dead target exits non-zero with a
// clear message. With ReplayLabels the ground truth follows the ramp
// LabelLag batches behind (see the option docs). Every run ends with
// a latency summary line (p50/p99/max plus the error count); with
// Rate > 0 the batches are dispatched open-loop at the fixed arrival
// rate and the latencies are measured from each batch's intended
// start time.
func SendTraffic(opts TrafficOptions) error {
	if opts.Out == nil {
		opts.Out = os.Stdout
	}
	if opts.Batches <= 0 {
		opts.Batches = 6
	}
	if opts.Rows <= 0 {
		opts.Rows = 500
	}
	if opts.MaxMagnitude <= 0 {
		opts.MaxMagnitude = 0.95
	}
	if opts.CleanBatches <= 0 && opts.Corrupt != "" {
		opts.CleanBatches = 2
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.TraceSampleRate <= 0 || opts.TraceSampleRate > 1 {
		opts.TraceSampleRate = 1
	}
	if opts.Rate > 0 && opts.ReplayLabels {
		return fmt.Errorf("cli: -rate (open loop) cannot replay labels: the backlog needs the closed loop's serve order")
	}
	clean, err := generateDataset(opts.Dataset, opts.Rows, opts.Seed)
	if err != nil {
		return err
	}
	if opts.Column != "" {
		col := clean.Frame.Column(opts.Column)
		if col == nil || col.Kind != frame.Numeric {
			return fmt.Errorf("cli: -corrupt-column %q is not a numeric column of %s", opts.Column, opts.Dataset)
		}
		if opts.CleanBatches <= 0 {
			opts.CleanBatches = 2
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	// makeBatch applies the corruption ramp to batch i. It must be
	// called in batch order — the corruption draws come from one shared
	// rng stream, which is what keeps a given seed's workload identical
	// across closed- and open-loop runs.
	makeBatch := func(i int) (*data.Dataset, float64, error) {
		if (opts.Corrupt == "" && opts.Column == "") || i < opts.CleanBatches {
			return clean, 0, nil
		}
		// Linear ramp over the corrupted tail, ending at MaxMagnitude.
		corrupted := opts.Batches - opts.CleanBatches
		magnitude := opts.MaxMagnitude * float64(i-opts.CleanBatches+1) / float64(corrupted)
		if opts.Column != "" {
			return CorruptColumn(clean, opts.Column, magnitude, rng), magnitude, nil
		}
		gen, err := GeneratorByName(opts.Corrupt)
		if err != nil {
			return nil, 0, err
		}
		return gen.Corrupt(clean, magnitude, rng), magnitude, nil
	}
	targetFor := func(i int) string {
		if len(opts.Targets) > 0 {
			return opts.Targets[i%len(opts.Targets)]
		}
		return opts.Target
	}
	if opts.Rate > 0 {
		return sendOpenLoop(opts, makeBatch, targetFor)
	}
	return sendClosedLoop(opts, makeBatch, targetFor)
}

// postPredict posts one serving batch with its deterministic
// traceparent: batch n of a run always carries the trace id
// obs.DeriveTraceID(seed, n), so a replayed workload is traceable
// end-to-end and the head-sampled subset is bit-identical across runs
// and loop modes (DESIGN.md §16). The returned context is the one put
// on the wire (synthetic client span id included).
func postPredict(opts TrafficOptions, target string, body []byte, n int) (*http.Response, obs.TraceContext, error) {
	tc := obs.DeriveTraceContext(uint64(opts.Seed), uint64(n), opts.TraceSampleRate)
	req, err := http.NewRequest(http.MethodPost, target+"/predict_proba", bytes.NewReader(body))
	if err != nil {
		return nil, tc, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	resp, err := opts.HTTPClient.Do(req)
	return resp, tc, err
}

// sendClosedLoop is the classic request-response ramp: each batch
// waits for the previous response (plus Interval), so a slow target
// slows the workload down — fine for drift scenarios, wrong for
// latency measurement (coordinated omission). Latency is still
// recorded per request and summarized on exit.
func sendClosedLoop(opts TrafficOptions, makeBatch func(int) (*data.Dataset, float64, error), targetFor func(int) string) error {
	replay := newLabelReplayer(opts)
	hist := stats.NewLatencyHist(stats.DefaultExemplarSlots)
	succeeded, failed := 0, 0
	var lastErr error
	for i := 0; i < opts.Batches; i++ {
		batch, magnitude, err := makeBatch(i)
		if err != nil {
			return err
		}
		body, err := cloud.EncodeRequest(batch)
		if err != nil {
			return err
		}
		target := targetFor(i)
		start := time.Now()
		resp, tc, err := postPredict(opts, target, body, i)
		if err != nil {
			failed++
			lastErr = err
			fmt.Fprintf(opts.Out, "batch %d: send failed: %v\n", i, err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		latency := time.Since(start).Seconds()
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			failed++
			lastErr = fmt.Errorf("target returned %d", resp.StatusCode)
			fmt.Fprintf(opts.Out, "batch %d: send failed: status %d\n", i, resp.StatusCode)
			continue
		}
		succeeded++
		id := resp.Header.Get(obs.RequestIDHeader)
		hist.ObserveID(latency, id)
		fmt.Fprintf(opts.Out, "batch %d: %d rows, magnitude %.2f, status %d, request_id %s, trace_id %s sampled=%t\n",
			i, opts.Rows, magnitude, resp.StatusCode, id, tc.TraceID, tc.Sampled())
		// The gateway echoes the traceparent of its request span, so a
		// replayed label lands as a child of gateway_request instead of a
		// second root in the waterfall. Fall back to the sent context when
		// the target predates tracing.
		if echoed, perr := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader)); perr == nil {
			tc = echoed
		}
		replay.sent(opts, id, batch.Labels, target, tc)
		if opts.Interval > 0 && i < opts.Batches-1 {
			time.Sleep(opts.Interval)
		}
	}
	replay.flush(opts)
	printLatencySummary(opts.Out, "closed loop", hist, failed)
	if succeeded == 0 {
		return fmt.Errorf("cli: every batch failed (%d/%d); last error: %w", failed, opts.Batches, lastErr)
	}
	return nil
}

// sendOpenLoop dispatches batches at the fixed arrival rate opts.Rate
// (batches per second) regardless of how fast responses come back:
// each batch gets its own goroutine and its latency is measured from
// the *intended* start time, so queueing delay behind a slow target
// shows up in the recorded tail instead of being silently absorbed by
// the sender waiting (coordinated omission). Bodies are pre-encoded in
// batch order to keep the corruption rng stream deterministic.
func sendOpenLoop(opts TrafficOptions, makeBatch func(int) (*data.Dataset, float64, error), targetFor func(int) string) error {
	type job struct {
		i         int
		body      []byte
		magnitude float64
		target    string
	}
	jobs := make([]job, 0, opts.Batches)
	for i := 0; i < opts.Batches; i++ {
		batch, magnitude, err := makeBatch(i)
		if err != nil {
			return err
		}
		body, err := cloud.EncodeRequest(batch)
		if err != nil {
			return err
		}
		jobs = append(jobs, job{i: i, body: body, magnitude: magnitude, target: targetFor(i)})
	}
	tick := time.Duration(float64(time.Second) / opts.Rate)
	hist := stats.NewLatencyHist(stats.DefaultExemplarSlots)
	var (
		mu        sync.Mutex // guards hist, counters, and Out
		succeeded int
		failed    int
		lastErr   error
		wg        sync.WaitGroup
	)
	start := time.Now()
	for _, j := range jobs {
		intended := start.Add(time.Duration(j.i) * tick)
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(j job, intended time.Time) {
			defer wg.Done()
			resp, tc, err := postPredict(opts, j.target, j.body, j.i)
			if err != nil {
				mu.Lock()
				failed++
				lastErr = err
				fmt.Fprintf(opts.Out, "batch %d: send failed: %v\n", j.i, err)
				mu.Unlock()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			latency := time.Since(intended).Seconds()
			mu.Lock()
			defer mu.Unlock()
			if resp.StatusCode < 200 || resp.StatusCode >= 300 {
				failed++
				lastErr = fmt.Errorf("target returned %d", resp.StatusCode)
				fmt.Fprintf(opts.Out, "batch %d: send failed: status %d\n", j.i, resp.StatusCode)
				return
			}
			succeeded++
			id := resp.Header.Get(obs.RequestIDHeader)
			hist.ObserveID(latency, id)
			fmt.Fprintf(opts.Out, "batch %d: %d rows, magnitude %.2f, status %d, request_id %s, trace_id %s sampled=%t\n",
				j.i, opts.Rows, j.magnitude, resp.StatusCode, id, tc.TraceID, tc.Sampled())
		}(j, intended)
	}
	wg.Wait()
	printLatencySummary(opts.Out, fmt.Sprintf("open loop @ %.1f/s", opts.Rate), hist, failed)
	if succeeded == 0 {
		return fmt.Errorf("cli: every batch failed (%d/%d); last error: %w", failed, opts.Batches, lastErr)
	}
	return nil
}

// printLatencySummary emits the per-run latency line every send mode
// ends with. Quantiles come from the same mergeable histogram the
// gateway's SLO observatory uses, so sender-side and server-side
// numbers share one bucketing.
func printLatencySummary(out io.Writer, mode string, hist *stats.LatencyHist, errors int) {
	if hist.Count() == 0 {
		fmt.Fprintf(out, "latency (%s): no successful requests, %d errors\n", mode, errors)
		return
	}
	fmt.Fprintf(out, "latency (%s): %d requests, %d errors, p50 %.1fms p99 %.1fms max %.1fms\n",
		mode, hist.Count(), errors, hist.Quantile(0.5)*1e3, hist.Quantile(0.99)*1e3, hist.Max()*1e3)
}

// labelReplayer holds the delayed-ground-truth backlog during a ramp:
// batch i's true labels are posted once batch i+LabelLag has been
// served (or at flush time for the tail).
type labelReplayer struct {
	enabled bool
	backlog []labelBacklogEntry
	byID    map[string][]int
	posted  int // backlog entries already replayed
	rows    int64
	errors  int
}

type labelBacklogEntry struct {
	id     string
	labels []int
	target string
	// trace is the serving batch's trace context (the gateway-echoed
	// one when available), so the delayed label_join span lands in the
	// same waterfall as the prediction it grounds.
	trace obs.TraceContext
}

func newLabelReplayer(opts TrafficOptions) *labelReplayer {
	return &labelReplayer{enabled: opts.ReplayLabels, byID: map[string][]int{}}
}

// sent records a successfully served batch and replays the entry that
// just crossed the lag horizon, if any.
func (r *labelReplayer) sent(opts TrafficOptions, id string, labels []int, target string, tc obs.TraceContext) {
	if !r.enabled || id == "" {
		return
	}
	r.backlog = append(r.backlog, labelBacklogEntry{id: id, labels: labels, target: target, trace: tc})
	r.byID[id] = labels
	for r.posted < len(r.backlog)-opts.LabelLag {
		r.replay(opts, r.backlog[r.posted])
		r.posted++
	}
}

// flush replays the tail entries still inside the lag window after the
// ramp ends, then logs the replay summary.
func (r *labelReplayer) flush(opts TrafficOptions) {
	if !r.enabled {
		return
	}
	for ; r.posted < len(r.backlog); r.posted++ {
		r.replay(opts, r.backlog[r.posted])
	}
	fmt.Fprintf(opts.Out, "labels: replayed %d rows over %d batches (lag %d, budget %d, errors %d)\n",
		r.rows, len(r.backlog), opts.LabelLag, opts.LabelBudget, r.errors)
}

// replay posts one backlog entry's ground truth. In full mode the whole
// batch goes out; in budget mode the target's own worklist decides
// which rows are worth labeling and only those are posted. Failures are
// logged and counted, never fatal: losing labels is a degradation the
// monitor's coverage metrics surface, not a reason to kill the ramp.
func (r *labelReplayer) replay(opts TrafficOptions, e labelBacklogEntry) {
	records, err := r.buildRecords(opts, e)
	if err != nil {
		r.errors++
		fmt.Fprintf(opts.Out, "labels: batch %s: %v\n", e.id, err)
		return
	}
	if len(records) == 0 {
		return
	}
	body, err := json.Marshal(map[string]any{"records": records})
	if err != nil {
		r.errors++
		return
	}
	req, err := http.NewRequest(http.MethodPost, e.target+"/labels", bytes.NewReader(body))
	if err != nil {
		r.errors++
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if !e.trace.TraceID.IsZero() {
		req.Header.Set(obs.TraceparentHeader, e.trace.Traceparent())
	}
	resp, err := opts.HTTPClient.Do(req)
	if err != nil {
		r.errors++
		fmt.Fprintf(opts.Out, "labels: batch %s: post failed: %v\n", e.id, err)
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		r.errors++
		fmt.Fprintf(opts.Out, "labels: batch %s: post failed: status %d\n", e.id, resp.StatusCode)
		return
	}
	for _, rec := range records {
		r.rows += int64(len(rec.Labels))
	}
}

// trafficLabelRecord mirrors labels.Record on the wire without
// importing the package (the traffic generator speaks pure HTTP, like
// a real labeling system would).
type trafficLabelRecord struct {
	RequestID string `json:"request_id"`
	Rows      []int  `json:"rows,omitempty"`
	Labels    []int  `json:"labels"`
}

func (r *labelReplayer) buildRecords(opts TrafficOptions, e labelBacklogEntry) ([]trafficLabelRecord, error) {
	if opts.LabelBudget <= 0 {
		return []trafficLabelRecord{{RequestID: e.id, Labels: e.labels}}, nil
	}
	// Budget mode: ask the target which rows are worth an annotator's
	// time. The worklist may span several retained batches; answer for
	// every id we know the ground truth of.
	policy := opts.LabelPolicy
	if policy == "" {
		policy = "ts"
	}
	resp, err := opts.HTTPClient.Get(fmt.Sprintf("%s/labels/requests?budget=%d&policy=%s",
		e.target, opts.LabelBudget, policy))
	if err != nil {
		return nil, fmt.Errorf("worklist: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worklist: status %d", resp.StatusCode)
	}
	var work struct {
		Requests []struct {
			RequestID string `json:"request_id"`
			Row       int    `json:"row"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&work); err != nil {
		return nil, fmt.Errorf("worklist: %w", err)
	}
	grouped := map[string]*trafficLabelRecord{}
	var order []string
	for _, item := range work.Requests {
		truth, ok := r.byID[item.RequestID]
		if !ok || item.Row < 0 || item.Row >= len(truth) {
			continue
		}
		rec := grouped[item.RequestID]
		if rec == nil {
			rec = &trafficLabelRecord{RequestID: item.RequestID}
			grouped[item.RequestID] = rec
			order = append(order, item.RequestID)
		}
		rec.Rows = append(rec.Rows, item.Row)
		rec.Labels = append(rec.Labels, truth[item.Row])
	}
	records := make([]trafficLabelRecord, 0, len(order))
	for _, id := range order {
		records = append(records, *grouped[id])
	}
	return records, nil
}

// CorruptColumn applies a scaling corruption (x1000, per-value
// probability = magnitude) to one named numeric column — the targeted
// variant of errorgen.Scaling, used by the incident-attribution demo
// and e2e tests where the ground-truth drifted column must be known.
func CorruptColumn(ds *data.Dataset, column string, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	col := out.Frame.Column(column)
	if col == nil || col.Kind != frame.Numeric {
		return out
	}
	if magnitude < 0 {
		magnitude = 0
	} else if magnitude > 1 {
		magnitude = 1
	}
	for i, v := range col.Num {
		if rng.Float64() < magnitude {
			col.Num[i] = v * 1000
		}
	}
	return out
}

// AlertSink is an in-memory webhook receiver for demos and tests:
// POST / stores the JSON body, GET /count and GET /events expose what
// arrived so shell scripts can poll for delivery.
type AlertSink struct {
	mu     sync.Mutex
	events []json.RawMessage
}

// Count returns how many events the sink has received.
func (s *AlertSink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Handler serves the sink's HTTP surface:
//
//	POST /        -> store the JSON body, 204
//	GET  /count   -> {"count": N}
//	GET  /events  -> JSON array of the raw stored payloads
//	GET  /healthz -> 200 ok
func (s *AlertSink) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/" {
			http.Error(w, "POST / only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil || !json.Valid(body) {
			http.Error(w, "invalid JSON body", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.events = append(s.events, json.RawMessage(body))
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/count", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"count\": %d}\n", s.Count())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		events := append([]json.RawMessage(nil), s.events...)
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(events)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}
