package cli

// Traffic generation and the alert sink behind cmd/ppm-traffic: the
// send side replays a synthetic serving workload through a gateway with
// an optional corruption ramp (clean batches first, then a linearly
// growing error magnitude — the deterministic drift scenario used by
// the demo and the e2e tests), and the sink side is a tiny webhook
// receiver that scripts can poll to assert an alert actually arrived.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"blackboxval/internal/cloud"
	"blackboxval/internal/data"
	"blackboxval/internal/frame"
	"blackboxval/internal/obs"
)

// TrafficOptions configures SendTraffic.
type TrafficOptions struct {
	// Target is the base URL posted to (the gateway), e.g.
	// "http://127.0.0.1:8088".
	Target string
	// Targets, when non-empty, shards the workload round-robin: batch i
	// goes to Targets[i%len(Targets)] — the dispatch layout the
	// federation determinism contract assumes (DESIGN.md §13). Target
	// is ignored when set.
	Targets []string
	// Dataset names the synthetic dataset (income, heart, bank, tweets).
	Dataset string
	// Batches is how many serving batches to send (default 6).
	Batches int
	// Rows per batch (default 500).
	Rows int
	// Corrupt names the error generator for the ramp (empty = all clean).
	Corrupt string
	// Column, when set, overrides Corrupt's random column pick with a
	// targeted single-column scaling corruption of the named numeric
	// column (each value is multiplied by 1000 with per-value probability
	// equal to the ramp magnitude). This is the deterministic
	// attribution scenario: the incident recorder should rank exactly
	// this column first.
	Column string
	// MaxMagnitude is the ramp's final corruption magnitude (default 0.95).
	MaxMagnitude float64
	// CleanBatches is how many leading batches stay uncorrupted
	// (default 2 when Corrupt is set).
	CleanBatches int
	// Interval pauses between batches (default none).
	Interval time.Duration
	// Seed makes the generated workload reproducible.
	Seed int64
	// HTTPClient overrides the transport (tests inject fakes).
	HTTPClient *http.Client
	// Out receives one log line per batch (default os.Stdout).
	Out io.Writer
}

// SendTraffic generates the workload and posts each batch to
// Target/predict_proba, logging the status and the X-Request-ID the
// gateway minted for each. It fails fast on the first non-2xx response.
func SendTraffic(opts TrafficOptions) error {
	if opts.Out == nil {
		opts.Out = os.Stdout
	}
	if opts.Batches <= 0 {
		opts.Batches = 6
	}
	if opts.Rows <= 0 {
		opts.Rows = 500
	}
	if opts.MaxMagnitude <= 0 {
		opts.MaxMagnitude = 0.95
	}
	if opts.CleanBatches <= 0 && opts.Corrupt != "" {
		opts.CleanBatches = 2
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	clean, err := generateDataset(opts.Dataset, opts.Rows, opts.Seed)
	if err != nil {
		return err
	}
	if opts.Column != "" {
		col := clean.Frame.Column(opts.Column)
		if col == nil || col.Kind != frame.Numeric {
			return fmt.Errorf("cli: -corrupt-column %q is not a numeric column of %s", opts.Column, opts.Dataset)
		}
		if opts.CleanBatches <= 0 {
			opts.CleanBatches = 2
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	for i := 0; i < opts.Batches; i++ {
		batch := clean
		magnitude := 0.0
		if (opts.Corrupt != "" || opts.Column != "") && i >= opts.CleanBatches {
			// Linear ramp over the corrupted tail, ending at MaxMagnitude.
			corrupted := opts.Batches - opts.CleanBatches
			magnitude = opts.MaxMagnitude * float64(i-opts.CleanBatches+1) / float64(corrupted)
			if opts.Column != "" {
				batch = CorruptColumn(clean, opts.Column, magnitude, rng)
			} else {
				gen, err := GeneratorByName(opts.Corrupt)
				if err != nil {
					return err
				}
				batch = gen.Corrupt(clean, magnitude, rng)
			}
		}
		body, err := cloud.EncodeRequest(batch)
		if err != nil {
			return err
		}
		target := opts.Target
		if len(opts.Targets) > 0 {
			target = opts.Targets[i%len(opts.Targets)]
		}
		resp, err := opts.HTTPClient.Post(target+"/predict_proba", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("cli: batch %d: %w", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			return fmt.Errorf("cli: batch %d: target returned %d", i, resp.StatusCode)
		}
		fmt.Fprintf(opts.Out, "batch %d: %d rows, magnitude %.2f, status %d, request_id %s\n",
			i, opts.Rows, magnitude, resp.StatusCode, resp.Header.Get(obs.RequestIDHeader))
		if opts.Interval > 0 && i < opts.Batches-1 {
			time.Sleep(opts.Interval)
		}
	}
	return nil
}

// CorruptColumn applies a scaling corruption (x1000, per-value
// probability = magnitude) to one named numeric column — the targeted
// variant of errorgen.Scaling, used by the incident-attribution demo
// and e2e tests where the ground-truth drifted column must be known.
func CorruptColumn(ds *data.Dataset, column string, magnitude float64, rng *rand.Rand) *data.Dataset {
	out := ds.Clone()
	col := out.Frame.Column(column)
	if col == nil || col.Kind != frame.Numeric {
		return out
	}
	if magnitude < 0 {
		magnitude = 0
	} else if magnitude > 1 {
		magnitude = 1
	}
	for i, v := range col.Num {
		if rng.Float64() < magnitude {
			col.Num[i] = v * 1000
		}
	}
	return out
}

// AlertSink is an in-memory webhook receiver for demos and tests:
// POST / stores the JSON body, GET /count and GET /events expose what
// arrived so shell scripts can poll for delivery.
type AlertSink struct {
	mu     sync.Mutex
	events []json.RawMessage
}

// Count returns how many events the sink has received.
func (s *AlertSink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Handler serves the sink's HTTP surface:
//
//	POST /        -> store the JSON body, 204
//	GET  /count   -> {"count": N}
//	GET  /events  -> JSON array of the raw stored payloads
//	GET  /healthz -> 200 ok
func (s *AlertSink) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/" {
			http.Error(w, "POST / only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil || !json.Valid(body) {
			http.Error(w, "invalid JSON body", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.events = append(s.events, json.RawMessage(body))
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/count", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"count\": %d}\n", s.Count())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		events := append([]json.RawMessage(nil), s.events...)
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(events)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}
