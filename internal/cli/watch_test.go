package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustGenBatch(t *testing.T, opts GenBatchOptions) {
	t.Helper()
	if _, err := GenBatch(opts); err != nil {
		t.Fatal(err)
	}
}

func mkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func mkdirAndMove(base, dir, from, to string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.Rename(filepath.Join(base, from), filepath.Join(dir, to))
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestWatchProcessesBatches(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "bundle")
	trainSmallBundle(t, bundle)
	watchDir := filepath.Join(dir, "spool")
	mustGenBatch(t, GenBatchOptions{
		Dataset: "income", Rows: 400, OutCSV: filepath.Join(dir, "tmp-a.csv"), Seed: 1, WithLabels: true,
	})
	// Stage the files into the watch dir before starting.
	if err := mkdirAndMove(dir, watchDir, "tmp-a.csv", "01-clean.csv"); err != nil {
		t.Fatal(err)
	}
	mustGenBatch(t, GenBatchOptions{
		Dataset: "income", Corrupt: "scaling", Magnitude: 0.95,
		Rows: 400, OutCSV: filepath.Join(watchDir, "02-broken.csv"), Seed: 2, WithLabels: true,
	})

	var out bytes.Buffer
	mon, err := Watch(WatchOptions{
		BundleDir:  bundle,
		WatchDir:   watchDir,
		Interval:   10 * time.Millisecond,
		Labeled:    true,
		MaxBatches: 2,
		Out:        &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := out.String()
	if !strings.Contains(log, "01-clean.csv") || !strings.Contains(log, "02-broken.csv") {
		t.Fatalf("log missing batches:\n%s", log)
	}
	if !strings.Contains(log, "ALARM") {
		t.Fatalf("catastrophic batch did not alarm:\n%s", log)
	}
	s := mon.Summarize()
	if s.Batches != 2 || s.Violations < 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestWatchSkipsMalformedCSV(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "bundle")
	trainSmallBundle(t, bundle)
	watchDir := filepath.Join(dir, "spool")
	if err := mkdirAll(watchDir); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(filepath.Join(watchDir, "01-bad.csv"), "not,a,valid\nschema\n"); err != nil {
		t.Fatal(err)
	}
	mustGenBatch(t, GenBatchOptions{
		Dataset: "income", Rows: 200, OutCSV: filepath.Join(watchDir, "02-good.csv"), Seed: 3, WithLabels: true,
	})

	var out bytes.Buffer
	mon, err := Watch(WatchOptions{
		BundleDir:  bundle,
		WatchDir:   watchDir,
		Interval:   10 * time.Millisecond,
		Labeled:    true,
		MaxBatches: 2,
		Out:        &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SKIPPED") {
		t.Fatalf("malformed CSV not skipped:\n%s", out.String())
	}
	if mon.Summarize().Batches != 1 {
		t.Fatalf("summary = %+v", mon.Summarize())
	}
}

func TestWatchMissingDirErrors(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "bundle")
	trainSmallBundle(t, bundle)
	if _, err := Watch(WatchOptions{
		BundleDir:  bundle,
		WatchDir:   filepath.Join(dir, "nope"),
		MaxBatches: 1,
		Out:        &bytes.Buffer{},
	}); err == nil {
		t.Fatal("missing watch dir should error")
	}
}
