// Package cli implements the operator workflow behind the ppm-validate
// command: train-and-persist a model bundle (black box + performance
// predictor + validator + schema manifest), generate serving batch CSVs,
// and check unlabeled batches against a bundle. It lives in its own
// package so the workflow is unit-testable without spawning processes.
package cli

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"blackboxval/internal/core"
	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/explain"
	"blackboxval/internal/frame"
	"blackboxval/internal/models"
	"blackboxval/internal/obs"
	"blackboxval/internal/persist"
)

// Bundle file names inside the bundle directory.
const (
	ManifestFile  = "manifest.json"
	ModelFile     = "model.json"
	PredictorFile = "predictor.json"
	ValidatorFile = "validator.json"
	ReferenceFile = "reference.json"
)

// Manifest describes a trained bundle: the schema serving batches must
// follow and the reference quality of the black box.
type Manifest struct {
	Dataset   string             `json:"dataset"`
	Model     string             `json:"model"`
	Threshold float64            `json:"threshold"`
	TestScore float64            `json:"test_score"`
	Classes   []string           `json:"classes"`
	Columns   []frame.ColumnSpec `json:"columns"`
}

// TrainOptions configures Train.
type TrainOptions struct {
	Dataset   string
	Model     string
	Rows      int
	Threshold float64
	OutDir    string
	// Workers bounds the goroutines used for predictor/validator
	// training (0 = all cores). The trained bundle is bit-identical for
	// every value.
	Workers int
	Seed    int64
}

// generateDataset builds the named synthetic tabular dataset.
func generateDataset(name string, rows int, seed int64) (*data.Dataset, error) {
	switch name {
	case "income":
		return datagen.Income(rows, seed), nil
	case "heart":
		return datagen.Heart(rows, seed), nil
	case "bank":
		return datagen.Bank(rows, seed), nil
	case "tweets":
		return datagen.Tweets(rows, seed), nil
	default:
		return nil, fmt.Errorf("cli: unknown dataset %q (want income, heart, bank or tweets)", name)
	}
}

// generatorsFor returns the expected error types for a dataset.
func generatorsFor(dataset string) []errorgen.Generator {
	if dataset == "tweets" {
		return []errorgen.Generator{errorgen.AdversarialText{}}
	}
	return errorgen.KnownTabular()
}

// GeneratorByName resolves an error generator from its wire name.
func GeneratorByName(name string) (errorgen.Generator, error) {
	gens := []errorgen.Generator{
		errorgen.MissingValues{}, errorgen.MissingValues{Numeric: true},
		errorgen.Outliers{}, errorgen.SwappedColumns{}, errorgen.Scaling{},
		errorgen.AdversarialText{}, errorgen.EncodingErrors{},
		errorgen.Typos{}, errorgen.Smearing{}, errorgen.FlippedSigns{},
		errorgen.ImageNoise{}, errorgen.ImageRotation{}, errorgen.NoOp{},
	}
	for _, g := range gens {
		if g.Name() == name {
			return g, nil
		}
	}
	var names []string
	for _, g := range gens {
		names = append(names, g.Name())
	}
	return nil, fmt.Errorf("cli: unknown error type %q (known: %s)", name, strings.Join(names, ", "))
}

// Train builds a bundle: trains the black box, its performance predictor
// and validator, and writes everything plus a manifest to OutDir.
func Train(opts TrainOptions) (string, error) {
	return TrainCtx(context.Background(), opts)
}

// TrainCtx is Train with telemetry: the whole bundle build is recorded
// as a "train_bundle" span tree (train_model, train_predictor,
// train_validator, persist) on the tracer carried by ctx, or the
// process-default tracer otherwise — ppm-validate's -trace flag prints
// the resulting stage report.
func TrainCtx(ctx context.Context, opts TrainOptions) (string, error) {
	if opts.Rows <= 0 {
		opts.Rows = 4000
	}
	if opts.Threshold == 0 {
		opts.Threshold = 0.05
	}
	ctx, root := obs.StartSpan(ctx, "train_bundle")
	defer root.End()
	root.SetMetric("rows", float64(opts.Rows))

	rng := rand.New(rand.NewSource(opts.Seed))
	ds, err := generateDataset(opts.Dataset, opts.Rows, opts.Seed)
	if err != nil {
		return "", err
	}
	balanced := ds.Balance(rng)
	train, test := balanced.Split(0.6, rng)

	var clf models.Classifier
	switch opts.Model {
	case "lr":
		clf = &models.SGDClassifier{Seed: opts.Seed}
	case "dnn":
		clf = &models.MLPClassifier{Seed: opts.Seed}
	case "xgb":
		clf = &models.GBDTClassifier{Seed: opts.Seed}
	default:
		return "", fmt.Errorf("cli: unknown model %q (want lr, dnn or xgb)", opts.Model)
	}
	_, modelSp := obs.StartSpan(ctx, "train_model")
	model, err := models.TrainPipeline(train, clf, 256)
	modelSp.End()
	if err != nil {
		return "", fmt.Errorf("cli: training black box: %w", err)
	}

	gens := generatorsFor(opts.Dataset)
	pred, err := core.TrainPredictorCtx(ctx, model, test, core.PredictorConfig{
		Generators: gens,
		Workers:    opts.Workers,
		Seed:       opts.Seed,
	})
	if err != nil {
		return "", fmt.Errorf("cli: training predictor: %w", err)
	}
	val, err := core.TrainValidatorCtx(ctx, model, test, core.ValidatorConfig{
		Generators: gens,
		Threshold:  opts.Threshold,
		Workers:    opts.Workers,
		Seed:       opts.Seed,
	})
	if err != nil {
		return "", fmt.Errorf("cli: training validator: %w", err)
	}

	_, persistSp := obs.StartSpan(ctx, "persist")
	defer persistSp.End()
	if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return "", fmt.Errorf("cli: creating bundle dir: %w", err)
	}
	manifest := Manifest{
		Dataset:   opts.Dataset,
		Model:     opts.Model,
		Threshold: opts.Threshold,
		TestScore: pred.TestScore(),
		Classes:   ds.Classes,
	}
	for _, c := range ds.Frame.Columns() {
		manifest.Columns = append(manifest.Columns, frame.ColumnSpec{Name: c.Name, Kind: c.Kind})
	}
	manifestJSON, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(opts.OutDir, ManifestFile), manifestJSON, 0o644); err != nil {
		return "", err
	}
	if err := persist.SavePipeline(filepath.Join(opts.OutDir, ModelFile), model); err != nil {
		return "", err
	}
	if err := persist.SavePredictor(filepath.Join(opts.OutDir, PredictorFile), pred); err != nil {
		return "", err
	}
	if err := persist.SaveValidator(filepath.Join(opts.OutDir, ValidatorFile), val); err != nil {
		return "", err
	}
	// A capped reference sample powers the drift attribution of `check`.
	reference := test
	if reference.Len() > 2000 {
		reference = reference.Sample(2000, rng)
	}
	if err := persist.SaveDataset(filepath.Join(opts.OutDir, ReferenceFile), reference); err != nil {
		return "", err
	}

	return fmt.Sprintf(
		"trained %s on %s (%d rows)\nheld-out accuracy: %.3f\nalarm threshold: %.0f%% relative drop\nbundle written to %s\n",
		opts.Model, opts.Dataset, opts.Rows, pred.TestScore(), opts.Threshold*100, opts.OutDir), nil
}

// LoadServingBundle reads a bundle's manifest, predictor and validator,
// attaching the given model instead of the bundled pipeline. This is the
// gateway-startup path: the black box stays remote (a cloud.Client over
// the backend), while the locally trained validation artifacts ride
// along. The bundled model file is not required to exist.
func LoadServingBundle(dir string, model data.Model) (*Manifest, *core.Predictor, *core.Validator, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cli: reading manifest: %w", err)
	}
	var manifest Manifest
	if err := json.Unmarshal(raw, &manifest); err != nil {
		return nil, nil, nil, fmt.Errorf("cli: decoding manifest: %w", err)
	}
	pred, err := persist.LoadPredictor(filepath.Join(dir, PredictorFile), model)
	if err != nil {
		return nil, nil, nil, err
	}
	val, err := persist.LoadValidator(filepath.Join(dir, ValidatorFile), model)
	if err != nil {
		return nil, nil, nil, err
	}
	return &manifest, pred, val, nil
}

// LoadBundle reads a bundle from disk and re-attaches the model.
func LoadBundle(dir string) (*Manifest, *models.Pipeline, *core.Predictor, *core.Validator, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("cli: reading manifest: %w", err)
	}
	var manifest Manifest
	if err := json.Unmarshal(raw, &manifest); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("cli: decoding manifest: %w", err)
	}
	model, err := persist.LoadPipeline(filepath.Join(dir, ModelFile))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pred, err := persist.LoadPredictor(filepath.Join(dir, PredictorFile), model)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	val, err := persist.LoadValidator(filepath.Join(dir, ValidatorFile), model)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return &manifest, model, pred, val, nil
}

// CheckOptions configures Check.
type CheckOptions struct {
	BundleDir string
	BatchCSV  string
	Labeled   bool
}

// Check evaluates one serving batch CSV against a bundle and renders the
// operator report.
func Check(opts CheckOptions) (string, error) {
	manifest, model, pred, val, err := LoadBundle(opts.BundleDir)
	if err != nil {
		return "", err
	}
	ds, err := ReadBatchCSV(opts.BatchCSV, manifest, opts.Labeled)
	if err != nil {
		return "", err
	}
	proba := model.PredictProba(ds)
	estimate := pred.EstimateFromProba(proba)
	alarm := val.ViolationFromProba(proba)
	line := (1 - manifest.Threshold) * manifest.TestScore

	var b strings.Builder
	fmt.Fprintf(&b, "batch: %s (%d rows)\n", opts.BatchCSV, ds.Len())
	fmt.Fprintf(&b, "reference accuracy (clean test data): %.3f\n", manifest.TestScore)
	fmt.Fprintf(&b, "estimated accuracy on this batch:     %.3f\n", estimate)
	if opts.Labeled {
		truth := core.AccuracyScore(proba, ds.Labels)
		fmt.Fprintf(&b, "true accuracy (labels provided):      %.3f\n", truth)
	}
	fmt.Fprintf(&b, "alarm line ((1-t) * reference):       %.3f\n", line)
	if alarm {
		fmt.Fprintf(&b, "verdict: ALARM — do not rely on these predictions\n")
		// Attribute the alarm to the most drifted columns.
		if reference, err := persist.LoadDataset(filepath.Join(opts.BundleDir, ReferenceFile)); err == nil {
			if report, err := explain.Explain(reference, ds); err == nil {
				fmt.Fprintf(&b, "\nmost suspicious columns:\n")
				for _, f := range report.Top(3) {
					fmt.Fprintf(&b, "  %-26s %-14s p=%.3g missingΔ=%.3f\n",
						f.Column, f.Kind, f.PValue, f.MissingDelta)
				}
			}
		}
	} else {
		fmt.Fprintf(&b, "verdict: ok\n")
	}
	return b.String(), nil
}

// ReadBatchCSV parses a serving batch CSV following the manifest schema.
// With labeled=true the CSV must carry a trailing "label" column holding
// class names.
func ReadBatchCSV(path string, manifest *Manifest, labeled bool) (*data.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cli: opening batch: %w", err)
	}
	defer f.Close()

	specs := append([]frame.ColumnSpec(nil), manifest.Columns...)
	if labeled {
		specs = append(specs, frame.ColumnSpec{Name: "label", Kind: frame.Categorical})
	}
	df, err := frame.ReadCSV(f, specs)
	if err != nil {
		return nil, fmt.Errorf("cli: parsing batch: %w", err)
	}

	labels := make([]int, df.NumRows())
	if labeled {
		classIndex := map[string]int{}
		for i, c := range manifest.Classes {
			classIndex[c] = i
		}
		labelCol := df.Column("label")
		for i, name := range labelCol.Str {
			idx, ok := classIndex[name]
			if !ok {
				return nil, fmt.Errorf("cli: row %d has unknown label %q", i, name)
			}
			labels[i] = idx
		}
		// Rebuild the frame without the label column.
		features := frame.New()
		for _, c := range df.Columns() {
			if c.Name == "label" {
				continue
			}
			switch c.Kind {
			case frame.Numeric:
				features.AddNumeric(c.Name, c.Num)
			case frame.Categorical:
				features.AddCategorical(c.Name, c.Str)
			case frame.Text:
				features.AddText(c.Name, c.Str)
			}
		}
		df = features
	}
	return &data.Dataset{Frame: df, Labels: labels, Classes: manifest.Classes}, nil
}

// GenBatchOptions configures GenBatch.
type GenBatchOptions struct {
	Dataset    string
	Corrupt    string // empty = clean
	Magnitude  float64
	Rows       int
	OutCSV     string
	Seed       int64
	WithLabels bool
}

// GenBatch writes a synthetic (optionally corrupted) serving batch CSV.
func GenBatch(opts GenBatchOptions) (string, error) {
	if opts.Rows <= 0 {
		opts.Rows = 1000
	}
	ds, err := generateDataset(opts.Dataset, opts.Rows, opts.Seed)
	if err != nil {
		return "", err
	}
	state := "clean"
	if opts.Corrupt != "" {
		gen, err := GeneratorByName(opts.Corrupt)
		if err != nil {
			return "", err
		}
		rng := rand.New(rand.NewSource(opts.Seed + 1))
		ds = gen.Corrupt(ds, opts.Magnitude, rng)
		state = fmt.Sprintf("corrupted by %s at magnitude %.2f", opts.Corrupt, opts.Magnitude)
	}

	out := ds.Frame.Clone()
	if opts.WithLabels {
		labelNames := make([]string, ds.Len())
		for i, y := range ds.Labels {
			labelNames[i] = ds.Classes[y]
		}
		out.AddCategorical("label", labelNames)
	}
	f, err := os.Create(opts.OutCSV)
	if err != nil {
		return "", fmt.Errorf("cli: creating output: %w", err)
	}
	defer f.Close()
	if err := out.WriteCSV(f); err != nil {
		return "", err
	}
	return fmt.Sprintf("wrote %d rows of %s data (%s) to %s\n", opts.Rows, opts.Dataset, state, opts.OutCSV), nil
}

// InspectOptions configures Inspect.
type InspectOptions struct {
	// BatchCSV is the file to profile.
	BatchCSV string
}

// Inspect profiles a CSV file with inferred schema: per-column kinds,
// missingness and distribution statistics — the pre-flight check before
// data reaches a model.
func Inspect(opts InspectOptions) (string, error) {
	f, err := os.Open(opts.BatchCSV)
	if err != nil {
		return "", fmt.Errorf("cli: opening batch: %w", err)
	}
	defer f.Close()
	df, err := frame.InferCSV(f)
	if err != nil {
		return "", fmt.Errorf("cli: parsing batch: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d rows, %d columns\n", opts.BatchCSV, df.NumRows(), df.NumCols())
	for _, s := range df.Describe() {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String(), nil
}
