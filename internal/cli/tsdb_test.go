package cli

import (
	"strings"
	"testing"

	"blackboxval/internal/obs"
	"blackboxval/internal/obs/tsdb"
)

func TestWireTSDBNoDir(t *testing.T) {
	ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	db, closer, err := WireTSDB(ts, TSDBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if db != nil {
		t.Fatal("empty Dir must not open a store")
	}
	if closer == nil {
		t.Fatal("closer must never be nil")
	}
	closer()
}

func TestWireTSDBPersistsClosedWindows(t *testing.T) {
	dir := t.TempDir()
	ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	db, closer, err := WireTSDB(ts, TSDBOptions{Dir: dir, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if db == nil {
		t.Fatal("expected an open store")
	}
	for i := 0; i < 5; i++ {
		ts.Record("estimate", 0.9)
		ts.Commit()
	}
	if got := db.Appended(); got != 5 {
		t.Fatalf("appended %d windows, want 5", got)
	}
	// The registry carries the store's families after wiring.
	var expo strings.Builder
	if _, err := reg.WriteTo(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), "ppm_tsdb_appended_windows_total") {
		t.Fatal("ppm_tsdb_* families missing from the wired registry")
	}
	closer()

	// The sealed history survives the process: a fresh read-only open
	// sees every closed window.
	ro, err := tsdb.OpenReadOnly(tsdb.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	min, max, ok := ro.Bounds()
	if !ok || min != 0 || max != 4 {
		t.Fatalf("reopened bounds %d..%d ok=%v, want 0..4", min, max, ok)
	}
}
