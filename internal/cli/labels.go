package cli

// Label-feedback wiring shared by ppm-monitor and ppm-gateway: both
// binaries accept -label-lag/-label-pending/-label-seed and hand the
// parsed flags to WireLabels, which builds the store on the monitor's
// drift timeline, hooks it onto the batch stream and registers its
// metric families. Mount the store's Handler at /labels (the gateway
// does this via gateway.Config.Labels) and pass the store to
// WireIncidents via IncidentOptions.Labels so captured bundles carry
// the assessment snapshot.

import (
	"log/slog"

	"blackboxval/internal/labels"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
)

// LabelOptions configures WireLabels.
type LabelOptions struct {
	// MaxLagWindows is the join horizon in drift-timeline windows
	// (0 = default 64).
	MaxLagWindows int64
	// MaxPending bounds the served batches retained while waiting for
	// labels (0 = default 512).
	MaxPending int
	// Level is the credible/prediction interval level (0 = default 0.95).
	Level float64
	// Seed drives the active-sampling policies' RNG (0 = default 1).
	Seed int64
	// Registry receives the ppm_labels_* families (nil = obs.Default()).
	Registry *obs.Registry
	// Logger receives join anomalies (nil = slog.Default()).
	Logger *slog.Logger
}

// WireLabels attaches the label-feedback store to the monitor: every
// shadow-observed batch is remembered by X-Request-ID, delayed true
// labels posted to /labels join against it, and the Beta-Bernoulli
// assessment series (labeled_acc_mean/lo95/hi95, labeled_coverage,
// label_lag, h_abs_gap, h_interval_lo/hi) land on the same drift
// timeline as h's unlabeled estimate.
func WireLabels(mon *monitor.Monitor, opts LabelOptions) (*labels.Store, error) {
	store, err := labels.New(labels.Config{
		Timeline:      mon.Timeline(),
		MaxLagWindows: opts.MaxLagWindows,
		MaxPending:    opts.MaxPending,
		Level:         opts.Level,
		Seed:          opts.Seed,
		Logger:        opts.Logger,
	})
	if err != nil {
		return nil, err
	}
	store.RegisterMetrics(opts.Registry)
	mon.OnObserve(store.ObserveBatch)
	return store, nil
}
