package cli

// Incident-recorder wiring shared by ppm-monitor and ppm-gateway: both
// binaries accept -incident-dir/-incident-rows/... and hand the parsed
// flags to WireIncidents, which loads the bundle's held-out reference
// sample (the attribution baseline), builds the flight recorder, hooks
// it onto the monitor's batch stream and registers its metric families.
// Compose the returned recorder's AlertNotifier into WireAlerts via
// AlertOptions.Notifier so alert fire transitions auto-capture bundles.

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"blackboxval/internal/labels"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/incident"
	"blackboxval/internal/persist"
)

// IncidentOptions configures WireIncidents.
type IncidentOptions struct {
	// BundleDir is the trained bundle directory; its reference.json
	// becomes the attribution baseline and its manifest's class list
	// labels the predicted-class histograms.
	BundleDir string
	// Dir is the on-disk bundle retention ring (empty = in-memory only).
	Dir string
	// MaxBundles bounds the retention ring (0 = default 16).
	MaxBundles int
	// ReservoirRows bounds the retained serving-row sample (0 = default 512).
	ReservoirRows int
	// Seed fixes the reservoir's sampling stream (0 = default 1).
	Seed int64
	// Labels, when set, snapshots the label-feedback assessment into
	// every captured bundle (see WireLabels).
	Labels *labels.Store
	// Profiler, when set, captures a bounded CPU+heap pprof pair into
	// every bundle (alert-triggered profiling; the profiler's cooldown
	// bounds cost).
	Profiler *obs.Profiler
	// Serving, when set, snapshots the serving SLO observatory into
	// every bundle (the gateway passes Gateway.IncidentServing).
	Serving func() *incident.ServingSLO
	// Registry receives the ppm_incident_* families (nil = obs.Default()).
	Registry *obs.Registry
	// Logger receives capture logs (nil = slog.Default()).
	Logger *slog.Logger
}

// WireIncidents attaches an incident flight recorder to the monitor:
// the recorder samples every observed serving batch into a bounded
// deterministic reservoir and, when triggered, assembles a diagnostic
// bundle with per-column drift attribution against the bundle's
// held-out reference sample.
func WireIncidents(mon *monitor.Monitor, opts IncidentOptions) (*incident.Recorder, error) {
	reference, err := persist.LoadDataset(filepath.Join(opts.BundleDir, ReferenceFile))
	if err != nil {
		return nil, fmt.Errorf("cli: loading incident reference sample: %w", err)
	}
	var classes []string
	if raw, err := os.ReadFile(filepath.Join(opts.BundleDir, ManifestFile)); err == nil {
		var manifest Manifest
		if err := json.Unmarshal(raw, &manifest); err == nil {
			classes = manifest.Classes
		}
	}
	if classes == nil {
		classes = reference.Classes
	}
	cfg := incident.Config{
		Reference:     reference,
		Classes:       classes,
		Monitor:       mon,
		Dir:           opts.Dir,
		MaxBundles:    opts.MaxBundles,
		ReservoirRows: opts.ReservoirRows,
		Seed:          opts.Seed,
		Labels:        opts.Labels,
		Profiler:      opts.Profiler,
		Serving:       opts.Serving,
		Registry:      opts.Registry,
		Logger:        opts.Logger,
	}
	if pred := mon.Predictor(); pred != nil {
		cfg.RefOutputs = pred.TestOutputs()
	}
	rec, err := incident.New(cfg)
	if err != nil {
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	rec.RegisterMetrics(reg)
	mon.OnObserve(rec.ObserveBatch)
	return rec, nil
}
