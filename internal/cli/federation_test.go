package cli

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"blackboxval/internal/fed"
	"blackboxval/internal/obs"
)

func TestParseReplicas(t *testing.T) {
	got, err := ParseReplicas([]string{
		"a=http://h1:1/federate",
		"http://h2:2",
		"h3:3",
		"b=h4:4/",
		" ",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []fed.ReplicaConfig{
		{Name: "a", URL: "http://h1:1/federate"},
		{Name: "shard-1", URL: "http://h2:2/federate"},
		{Name: "shard-2", URL: "http://h3:3/federate"},
		{Name: "b", URL: "http://h4:4/federate"},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d replicas, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replica %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := ParseReplicas(nil); err == nil {
		t.Fatal("empty replica list accepted")
	}
	if _, err := ParseReplicas([]string{""}); err == nil {
		t.Fatal("blank replica list accepted")
	}
}

// TestWireFederation wires the full fleet stack — aggregator, alert
// engine over the merged timeline, incident capture, metrics — against
// a fake replica whose estimate breaches the rule.
func TestWireFederation(t *testing.T) {
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{WindowBatches: 1})
		if err != nil {
			t.Error(err)
			return
		}
		ts.Record("estimate", 0.10)
		ts.Commit()
		json.NewEncoder(w).Encode(fed.Doc{
			Version:   fed.DocVersion,
			Replica:   "a",
			Quantiles: ts.Quantiles(),
			AlarmLine: 0.5,
			Observed:  1,
			Windows:   ts.Windows(),
		})
	}))
	defer replica.Close()

	rules := filepath.Join(t.TempDir(), "rules.json")
	ruleJSON := `[{"name":"estimate_low","series":"estimate","op":"<","threshold":0.5}]`
	if err := os.WriteFile(rules, []byte(ruleJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	incidentDir := t.TempDir()
	reg := obs.NewRegistry()
	agg, engine, closer, err := WireFederation(FederationOptions{
		Replicas:       []string{"a=" + replica.URL + "/federate"},
		Interval:       time.Hour,
		Timeout:        2 * time.Second,
		AlertRulesPath: rules,
		IncidentDir:    incidentDir,
		Registry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	if engine == nil {
		t.Fatal("no engine wired despite rules")
	}

	agg.ScrapeOnce(context.Background())
	if len(agg.Windows()) != 1 {
		t.Fatalf("fleet merged %d windows, want 1", len(agg.Windows()))
	}
	if active := engine.Active(); len(active) != 1 || active[0] != "estimate_low" {
		t.Fatalf("active alerts = %v, want [estimate_low]", active)
	}
	if !agg.Alarming() {
		t.Fatal("aggregator not alarming while the engine is")
	}
	// The firing edge must have captured a fleet incident.
	files, err := filepath.Glob(filepath.Join(incidentDir, "fleet-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("incident files = %v (err %v), want one", files, err)
	}

	// Misconfiguration surfaces at wire time.
	if _, _, _, err := WireFederation(FederationOptions{Replicas: []string{"x"}, AlertWebhookURL: "http://w", Registry: obs.NewRegistry()}); err == nil {
		t.Fatal("webhook without rules accepted")
	}
	if _, _, _, err := WireFederation(FederationOptions{}); err == nil {
		t.Fatal("no replicas accepted")
	}
}
