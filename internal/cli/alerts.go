package cli

// Alert wiring shared by ppm-monitor and ppm-gateway: both binaries
// accept -alert-rules/-alert-webhook and hand the parsed flags to
// WireAlerts, which loads the rule file, builds the engine (plus the
// webhook notifier when configured), registers the alert metric
// families and hooks the engine onto the monitor's drift timeline.

import (
	"fmt"
	"log/slog"

	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
)

// AlertOptions configures WireAlerts.
type AlertOptions struct {
	// RulesPath is the JSON rule file (empty = alerting off).
	RulesPath string
	// WebhookURL optionally receives alert events as JSON POSTs.
	WebhookURL string
	// Notifier is an extra event consumer composed alongside the webhook
	// (typically an incident recorder's AlertNotifier, so alert fire
	// transitions auto-capture flight-recorder bundles). Optional.
	Notifier alert.Notifier
	// Registry receives ppm_alerts_total / ppm_alert_active
	// (nil = obs.Default()).
	Registry *obs.Registry
	// Logger receives the structured alert events (nil = slog.Default()).
	Logger *slog.Logger
}

// WindowSource is anything that emits closed timeline windows in
// order: a replica's obs.TimeSeries or the federation aggregator's
// merged fleet timeline. The alert engine doesn't care which.
type WindowSource interface {
	OnWindowClose(func(obs.Window))
}

// WireAlerts attaches an alert engine to the monitor's drift timeline.
// With an empty RulesPath it is a no-op. The returned close function
// drains the webhook's delivery queue (call it on shutdown); it is
// never nil.
func WireAlerts(mon *monitor.Monitor, opts AlertOptions) (*alert.Engine, func(), error) {
	// The monitor's timeline is only needed once a rule file is given;
	// a nil monitor is fine for the no-op and misconfiguration paths.
	var src WindowSource
	if mon != nil {
		src = mon.Timeline()
	}
	return WireAlertEngine(src, opts)
}

// WireAlertEngine attaches an alert engine to any window source — the
// shared body behind WireAlerts (replica timelines) and WireFederation
// (the merged fleet timeline).
func WireAlertEngine(src WindowSource, opts AlertOptions) (*alert.Engine, func(), error) {
	if opts.RulesPath == "" {
		if opts.WebhookURL != "" {
			return nil, nil, fmt.Errorf("cli: -alert-webhook needs -alert-rules")
		}
		return nil, func() {}, nil
	}
	rules, err := alert.LoadRules(opts.RulesPath)
	if err != nil {
		return nil, nil, err
	}
	cfg := alert.Config{Rules: rules, Logger: opts.Logger}
	closer := func() {}
	if opts.WebhookURL != "" {
		webhook, err := alert.NewWebhook(alert.WebhookConfig{
			URL:    opts.WebhookURL,
			Logger: opts.Logger,
		})
		if err != nil {
			return nil, nil, err
		}
		cfg.Notifier = alert.Notifiers(webhook, opts.Notifier)
		closer = webhook.Close
	} else {
		cfg.Notifier = opts.Notifier
	}
	engine, err := alert.New(cfg)
	if err != nil {
		closer()
		return nil, nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	engine.RegisterMetrics(reg)
	src.OnWindowClose(engine.Evaluate)
	return engine, closer, nil
}
