package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
)

// WatchOptions configures Watch.
type WatchOptions struct {
	// BundleDir holds the artifacts written by Train.
	BundleDir string
	// WatchDir is polled for new .csv serving batches.
	WatchDir string
	// Interval is the polling period (default 2s).
	Interval time.Duration
	// Hysteresis is the consecutive-violation count before alarming
	// (default 1).
	Hysteresis int
	// Labeled indicates the CSVs carry a trailing label column.
	Labeled bool
	// MaxBatches stops the watcher after processing this many batches
	// (0 = run until Stop is closed). Tests and one-shot runs use this.
	MaxBatches int
	// TimelineWindow is how many batches aggregate into one drift-timeline
	// window (0 = monitor default of 1).
	TimelineWindow int
	// TimelineCapacity bounds the retained timeline windows (0 = monitor
	// default of 128).
	TimelineCapacity int
	// DashboardRefresh is the HTML dashboard's auto-refresh interval
	// (0 = monitor default of 5s; <0 disables auto-refresh).
	DashboardRefresh time.Duration
	// Stop terminates the loop when closed.
	Stop <-chan struct{}
	// Out receives the per-batch log lines.
	Out io.Writer
}

// Watch loads a bundle, then polls a directory for serving batch CSVs and
// feeds each new file to a performance monitor, logging one line per
// batch. It returns the monitor so callers can inspect the final state.
func Watch(opts WatchOptions) (*monitor.Monitor, error) {
	mon, run, err := PrepareWatch(opts)
	if err != nil {
		return nil, err
	}
	return mon, run()
}

// PrepareWatch loads the bundle and builds the monitor, returning the
// polling loop as a closure so callers can mount the monitor's HTTP
// dashboard before the loop starts.
func PrepareWatch(opts WatchOptions) (*monitor.Monitor, func() error, error) {
	if opts.Out == nil {
		opts.Out = os.Stdout
	}
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	manifest, _, pred, val, err := LoadBundle(opts.BundleDir)
	if err != nil {
		return nil, nil, err
	}
	mon, err := monitor.New(monitor.Config{
		Predictor:        pred,
		Validator:        val,
		Threshold:        manifest.Threshold,
		Hysteresis:       opts.Hysteresis,
		TimelineWindow:   opts.TimelineWindow,
		TimelineCapacity: opts.TimelineCapacity,
		DashboardRefresh: opts.DashboardRefresh,
	})
	if err != nil {
		return nil, nil, err
	}

	run := func() error {
		fmt.Fprintf(opts.Out, "watching %s for serving batches (alarm line %.3f)\n",
			opts.WatchDir, mon.AlarmLine())
		processed := map[string]bool{}
		batches := 0
		for {
			names, err := listCSVs(opts.WatchDir)
			if err != nil {
				return err
			}
			for _, name := range names {
				if processed[name] {
					continue
				}
				processed[name] = true
				batches++
				path := filepath.Join(opts.WatchDir, name)
				_, sp := obs.StartSpan(context.Background(), "watch_batch")
				ds, err := ReadBatchCSV(path, manifest, opts.Labeled)
				if err != nil {
					sp.End()
					fmt.Fprintf(opts.Out, "%s: SKIPPED (%v)\n", name, err)
					continue
				}
				rec := mon.Observe(ds)
				sp.SetMetric("rows", float64(rec.Size))
				sp.SetMetric("estimate", rec.Estimate)
				sp.End()
				status := "ok"
				if rec.Alarming {
					status = "ALARM"
				} else if rec.Violating {
					status = "violating"
				}
				fmt.Fprintf(opts.Out, "%s: %d rows, estimate %.3f, %s\n",
					name, rec.Size, rec.Estimate, status)
				if opts.MaxBatches > 0 && batches >= opts.MaxBatches {
					return nil
				}
			}
			select {
			case <-opts.Stop:
				return nil
			case <-time.After(opts.Interval):
			}
		}
	}
	return mon, run, nil
}

// listCSVs returns the .csv files in dir, sorted by name for
// deterministic processing order.
func listCSVs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cli: reading watch dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
