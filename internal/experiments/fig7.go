package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http/httptest"

	"blackboxval/internal/automl"
	"blackboxval/internal/cloud"
	"blackboxval/internal/core"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/stats"
)

// Figure7Point is one serving trial of the cloud experiment.
type Figure7Point struct {
	TrueScore, PredictedScore float64
}

// Figure7Series is the scatter for one dataset.
type Figure7Series struct {
	Dataset string
	Points  []Figure7Point
	MAE     float64
}

// Figure7Result holds the income and heart series.
type Figure7Result struct {
	Series []Figure7Series
}

// Figure7 reproduces the cloud-model experiment (Section 6.3.2): an
// AutoML-selected model is trained and hosted behind an HTTP prediction
// service (standing in for Google AutoML Tables); the validation system
// interacts with it purely over the network, trains a performance
// predictor from corrupted test data, and predicts the accuracy on
// corrupted serving batches. The paper reports MAE 0.0038 (income) and
// 0.0101 (heart).
func Figure7(scale Scale) (*Figure7Result, error) {
	result := &Figure7Result{}
	for di, dataset := range []string{"income", "heart"} {
		seed := scale.Seed + int64(di)
		ds, err := scale.GenerateDataset(dataset, seed)
		if err != nil {
			return nil, err
		}
		train, test, serving := Splits(ds, seed)

		// The full cloud contract: upload the training data to the AutoML
		// service, which selects and trains a model server-side; the
		// client only receives a prediction URL.
		srv := httptest.NewServer(cloud.NewAutoMLServer(automl.Config{Seed: seed, Folds: 2, HashDims: 64}).Handler())
		client, _, err := cloud.NewAutoMLClient(srv.URL).Train(train)
		if err != nil {
			srv.Close()
			return nil, fmt.Errorf("experiments: training cloud model: %w", err)
		}

		pred, err := core.TrainPredictor(client, test, core.PredictorConfig{
			Generators:  errorgen.KnownTabular(),
			Repetitions: scale.Repetitions,
			ForestSizes: scale.ForestSizes,
			Workers:     scale.Workers,
			Seed:        seed,
		})
		if err != nil {
			srv.Close()
			return nil, err
		}

		rng := rand.New(rand.NewSource(seed + 700))
		mixture := errorgen.Mixture{Generators: errorgen.KnownTabular()}
		series := Figure7Series{Dataset: dataset}
		var absErrs []float64
		for trial := 0; trial < scale.Trials; trial++ {
			batch := serving
			if trial%5 != 0 {
				batch = mixture.Corrupt(serving, rng.Float64()*0.5, rng)
			}
			proba := client.PredictProba(batch)
			truth := core.AccuracyScore(proba, batch.Labels)
			est := pred.EstimateFromProba(proba)
			series.Points = append(series.Points, Figure7Point{TrueScore: truth, PredictedScore: est})
			absErrs = append(absErrs, math.Abs(est-truth))
		}
		srv.Close()
		series.MAE = stats.Mean(absErrs)
		result.Series = append(result.Series, series)
	}
	return result, nil
}

// Print renders the scatter data and MAE per dataset.
func (r *Figure7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: score prediction for a cloud-hosted black box model")
	for _, s := range r.Series {
		fmt.Fprintf(w, "%s: MAE = %.4f (paper: income 0.0038, heart 0.0101)\n", s.Dataset, s.MAE)
		fmt.Fprintf(w, "  %-12s %-12s\n", "true acc", "predicted")
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %-12.4f %-12.4f\n", p.TrueScore, p.PredictedScore)
		}
	}
}
