package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func servingScale() Scale {
	s := Quick
	s.Name = "test" // trimmed batch count (see ServingBench)
	s.TabularRows = 600
	s.Repetitions = 4
	s.Workers = 2
	return s
}

func TestServingBench(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a live gateway plus a testing.Benchmark calibration loop")
	}
	r, err := ServingBench(servingScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSeconds <= 0 || r.RequestsPerSec <= 0 || r.RowsPerSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", r)
	}
	if r.AllocsPerOp <= 0 || r.BytesPerOp <= 0 || r.NsPerOp <= 0 {
		t.Fatalf("degenerate allocation numbers: %+v", r)
	}
	if r.BudgetSeconds <= 0 || r.Target <= 0 {
		t.Fatalf("missing SLO config in result: %+v", r)
	}

	// Every hot-path stage must be present with plausible quantiles; the
	// request stage dominates its sub-stages.
	byStage := map[string]ServingStageLatency{}
	for _, s := range r.Stages {
		byStage[s.Stage] = s
	}
	for _, stage := range []string{"request", "decode", "relay", "shadow_enqueue", "monitor_observe"} {
		s, ok := byStage[stage]
		if !ok {
			t.Fatalf("stage %q missing from %+v", stage, r.Stages)
		}
		if s.Count <= 0 || s.P50Ms < 0 || s.P99Ms < s.P50Ms || s.MaxMs < s.P99Ms {
			t.Fatalf("stage %q has implausible quantiles: %+v", stage, s)
		}
	}
	req, relay := byStage["request"], byStage["relay"]
	if req.Count < int64(r.Batches) {
		t.Fatalf("request stage saw %d requests, want >= %d", req.Count, r.Batches)
	}
	if req.P50Ms < relay.P50Ms {
		t.Fatalf("request p50 %.3fms below its relay sub-stage %.3fms", req.P50Ms, relay.P50Ms)
	}

	// The result is the BENCH_serving.json payload: round-trip intact.
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back ServingResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Stages) != len(r.Stages) || back.RequestsPerSec != r.RequestsPerSec {
		t.Fatalf("JSON round-trip lost data: %+v vs %+v", back, r)
	}

	var out bytes.Buffer
	r.Print(&out)
	for _, want := range []string{"Serving SLO benchmark", "request", "rows/sec", "allocs/op"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("Print output missing %q:\n%s", want, out.String())
		}
	}
}
