package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"blackboxval/internal/baselines"
	"blackboxval/internal/core"
	"blackboxval/internal/data"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/linalg"
	"blackboxval/internal/stats"
)

// Methods are the compared approaches, in the paper's order.
var Methods = []string{"PPM", "BBSE", "BBSE-h", "REL"}

// ValidationRow is one cell of a validation comparison: F1 scores of all
// methods for a dataset/model/threshold combination.
type ValidationRow struct {
	Dataset   string
	Model     string
	Threshold float64
	F1        map[string]float64
	// Violations / Trials give the base rate of true violations.
	Violations, Trials int
}

// ValidationResult collects the rows of §6.2.1 (known mixtures) or
// Figure 5 (unknown errors).
type ValidationResult struct {
	Mode string // "known" or "unknown"
	Rows []ValidationRow
}

// ValidationKnown reproduces the experiment of Section 6.2.1: the
// validator is trained on random mixtures of the four known error types
// and evaluated on fresh random mixtures of the same types.
func ValidationKnown(scale Scale) (*ValidationResult, error) {
	return runValidation(scale, "known")
}

// Figure5 reproduces the unknown-shift validation experiment: training on
// mixtures of the known error types, evaluation on mixtures of typos,
// smearing and flipped signs — error types the validator never saw.
func Figure5(scale Scale) (*ValidationResult, error) {
	return runValidation(scale, "unknown")
}

func runValidation(scale Scale, mode string) (*ValidationResult, error) {
	result := &ValidationResult{Mode: mode}
	for di, dataset := range TabularDatasets {
		ds, err := scale.GenerateDataset(dataset, scale.Seed+int64(di))
		if err != nil {
			return nil, err
		}
		train, test, serving := Splits(ds, scale.Seed+int64(di))
		for mi, model := range ModelNames {
			seed := scale.Seed + int64(di*10+mi)
			blackBox, err := scale.TrainModel(model, train, seed)
			if err != nil {
				return nil, err
			}
			evalGens := errorgen.KnownTabular()
			if mode == "unknown" {
				evalGens = errorgen.UnknownTabular()
			}
			rows, err := validationCell(scale, cellSpec{
				dataset: dataset, model: model, seed: seed,
				blackBox: blackBox, test: test, serving: serving,
				trainGens: errorgen.KnownTabular(), evalGens: evalGens,
			})
			if err != nil {
				return nil, err
			}
			result.Rows = append(result.Rows, rows...)
		}
	}
	return result, nil
}

// cellSpec bundles the inputs of one dataset/model validation cell.
type cellSpec struct {
	dataset, model      string
	seed                int64
	blackBox            data.Model
	test, serving       *data.Dataset
	trainGens, evalGens []errorgen.Generator
}

// validationCell trains the PPM validator per threshold, builds the three
// baselines once, evaluates everything on the same serving trial batches
// and returns one row per threshold.
func validationCell(scale Scale, spec cellSpec) ([]ValidationRow, error) {
	testOutputs := spec.blackBox.PredictProba(spec.test)
	testScore := core.AccuracyScore(testOutputs, spec.test.Labels)
	bbse := baselines.NewBBSE(spec.blackBox, testOutputs)
	bbseh := baselines.NewBBSEh(spec.blackBox, testOutputs)
	rel := baselines.NewREL(spec.test)

	// Shared trial batches: a quarter clean, the rest corrupted by random
	// mixtures of the evaluation error types. The black box runs once per
	// batch; thresholds and methods reuse the outputs.
	rng := rand.New(rand.NewSource(spec.seed + 500))
	mixture := errorgen.Mixture{Generators: spec.evalGens}
	trials := scale.Trials * 2
	scores := make([]float64, trials)
	probas := make([]*linalg.Matrix, trials)
	baselineAlarms := map[string][]bool{
		"BBSE":   make([]bool, trials),
		"BBSE-h": make([]bool, trials),
		"REL":    make([]bool, trials),
	}
	for i := 0; i < trials; i++ {
		batch := spec.serving
		if i%4 != 0 {
			batch = mixture.Corrupt(spec.serving, rng.Float64(), rng)
		}
		proba := spec.blackBox.PredictProba(batch)
		probas[i] = proba
		scores[i] = core.AccuracyScore(proba, batch.Labels)
		baselineAlarms["BBSE"][i] = bbse.ViolationFromProba(proba)
		baselineAlarms["BBSE-h"][i] = bbseh.ViolationFromProba(proba)
		if rel.Applicable() {
			baselineAlarms["REL"][i] = rel.Violation(batch)
		}
	}

	var rows []ValidationRow
	for _, t := range Thresholds {
		validator, err := core.TrainValidator(spec.blackBox, spec.test, core.ValidatorConfig{
			Generators: spec.trainGens,
			Threshold:  t,
			Batches:    scale.ValidatorBatches,
			Workers:    scale.Workers,
			Seed:       spec.seed,
		})
		if err != nil {
			return nil, err
		}
		row := ValidationRow{
			Dataset: spec.dataset, Model: spec.model, Threshold: t,
			F1: map[string]float64{}, Trials: trials,
		}
		truth := make([]int, trials)
		for i := range truth {
			if scores[i] < (1-t)*testScore {
				truth[i] = 1
				row.Violations++
			}
		}
		ppmPred := make([]int, trials)
		for i := range ppmPred {
			if validator.ViolationFromProba(probas[i]) {
				ppmPred[i] = 1
			}
		}
		row.F1["PPM"] = stats.F1Score(ppmPred, truth, 1)
		for _, method := range []string{"BBSE", "BBSE-h", "REL"} {
			pred := make([]int, trials)
			for i, alarm := range baselineAlarms[method] {
				if alarm {
					pred[i] = 1
				}
			}
			row.F1[method] = stats.F1Score(pred, truth, 1)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Print renders the comparison table.
func (r *ValidationResult) Print(w io.Writer) {
	if r.Mode == "unknown" {
		fmt.Fprintln(w, "Figure 5: validation F1 under unknown shifts and errors")
	} else {
		fmt.Fprintln(w, "Section 6.2.1: validation F1 under mixtures of known shifts and errors")
	}
	fmt.Fprintf(w, "%-8s %-6s %-6s %8s %8s %8s %8s %12s\n",
		"dataset", "model", "t", "PPM", "BBSE", "BBSE-h", "REL", "violations")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %-6s %-6.2f %8.3f %8.3f %8.3f %8.3f %8d/%d\n",
			row.Dataset, row.Model, row.Threshold,
			row.F1["PPM"], row.F1["BBSE"], row.F1["BBSE-h"], row.F1["REL"],
			row.Violations, row.Trials)
	}
}

// WinsByMethod counts, per method, in how many rows it achieves the best
// F1 (ties count for all tied methods) — the paper's "outperforms the
// baselines in the vast majority of cases" claim in one number.
func (r *ValidationResult) WinsByMethod() map[string]int {
	wins := map[string]int{}
	for _, row := range r.Rows {
		best := -1.0
		for _, m := range Methods {
			if row.F1[m] > best {
				best = row.F1[m]
			}
		}
		for _, m := range Methods {
			if row.F1[m] == best {
				wins[m]++
			}
		}
	}
	return wins
}
