package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"blackboxval/internal/core"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/stats"
)

// Figure2Row summarizes the absolute-error distribution of the
// performance predictor for one dataset/model cell of Figure 2.
type Figure2Row struct {
	Dataset   string
	Model     string
	TestScore float64   // black box accuracy on the clean test set
	AbsErrors []float64 // |estimated - true| accuracy per serving trial
	MedianAE  float64
	P25, P75  float64
}

// Figure2Result collects all cells of one Figure 2 panel.
type Figure2Result struct {
	Panel string // "a" (lr), "b" (dnn), "c" (xgb), "d" (conv)
	Rows  []Figure2Row
}

// generatorsFor returns the error types the paper injects for a dataset.
func generatorsFor(dataset string) []errorgen.Generator {
	switch dataset {
	case "tweets":
		return []errorgen.Generator{errorgen.AdversarialText{}}
	case "digits", "fashion":
		return errorgen.Image()
	default:
		return errorgen.KnownTabular()
	}
}

// Figure2 reproduces one panel of Figure 2: the distribution of the
// absolute error of accuracy prediction under known error types (but
// unknown magnitudes), for the given model family over its datasets.
func Figure2(scale Scale, model string) (*Figure2Result, error) {
	return figure2Scored(scale, model, core.AccuracyScore)
}

// Figure2AUC is the AUC variant of Figure 2. The paper runs both and
// reports that "the results for AUC do not significantly differ" from
// the accuracy results; this runner regenerates that check.
func Figure2AUC(scale Scale, model string) (*Figure2Result, error) {
	return figure2Scored(scale, model, core.AUCScore)
}

func figure2Scored(scale Scale, model string, score core.ScoreFunc) (*Figure2Result, error) {
	var panel string
	var datasets []string
	switch model {
	case "lr":
		panel, datasets = "a", []string{"income", "heart", "bank", "tweets"}
	case "dnn":
		panel, datasets = "b", []string{"income", "heart", "bank", "tweets"}
	case "xgb":
		panel, datasets = "c", []string{"income", "heart", "bank", "tweets"}
	case "conv":
		panel, datasets = "d", []string{"digits", "fashion"}
	default:
		return nil, fmt.Errorf("experiments: figure 2 has no panel for model %q", model)
	}

	result := &Figure2Result{Panel: panel}
	for di, dataset := range datasets {
		row, err := figure2Cell(scale, dataset, model, scale.Seed+int64(di), score)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 2 cell %s/%s: %w", dataset, model, err)
		}
		result.Rows = append(result.Rows, *row)
	}
	return result, nil
}

func figure2Cell(scale Scale, dataset, model string, seed int64, score core.ScoreFunc) (*Figure2Row, error) {
	ds, err := scale.GenerateDataset(dataset, seed)
	if err != nil {
		return nil, err
	}
	train, test, serving := Splits(ds, seed)
	blackBox, err := scale.TrainModel(model, train, seed)
	if err != nil {
		return nil, err
	}
	gens := generatorsFor(dataset)

	pred, err := core.TrainPredictor(blackBox, test, core.PredictorConfig{
		Generators:  gens,
		Repetitions: scale.Repetitions,
		ForestSizes: scale.ForestSizes,
		Score:       score,
		Workers:     scale.Workers,
		Seed:        seed,
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed + 200))
	row := &Figure2Row{Dataset: dataset, Model: model, TestScore: pred.TestScore()}
	for trial := 0; trial < scale.Trials; trial++ {
		gen := gens[rng.Intn(len(gens))]
		corrupted := gen.Corrupt(serving, rng.Float64(), rng)
		proba := blackBox.PredictProba(corrupted)
		truth := score(proba, corrupted.Labels)
		est := pred.EstimateFromProba(proba)
		row.AbsErrors = append(row.AbsErrors, math.Abs(est-truth))
	}
	row.MedianAE = stats.Median(row.AbsErrors)
	row.P25 = stats.Percentile(row.AbsErrors, 25)
	row.P75 = stats.Percentile(row.AbsErrors, 75)
	return row, nil
}

// Print renders the panel like the paper's box plots, as a table.
func (r *Figure2Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 2(%s): absolute error of score prediction, known errors\n", r.Panel)
	fmt.Fprintf(w, "%-10s %-6s %10s %10s %10s %10s\n", "dataset", "model", "test-score", "p25", "median", "p75")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-6s %10.3f %10.4f %10.4f %10.4f\n",
			row.Dataset, row.Model, row.TestScore, row.P25, row.MedianAE, row.P75)
	}
}
