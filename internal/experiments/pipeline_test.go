package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func pipelineScale() Scale {
	s := Quick
	s.TabularRows = 600
	s.Repetitions = 4
	s.ValidatorBatches = 24
	s.Workers = 2
	return s
}

func TestPipelineBench(t *testing.T) {
	r, err := PipelineBench(pipelineScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSeconds <= 0 || r.RowsScored <= 0 || r.RowsPerSec <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.MetaExamples == 0 || r.TestRows == 0 {
		t.Fatalf("missing size metadata: %+v", r)
	}
	for _, path := range []string{
		"pipeline",
		"pipeline/train_model",
		"pipeline/train_predictor",
		"pipeline/train_predictor/meta_dataset",
		"pipeline/train_predictor/predictor_fit",
		"pipeline/train_validator",
		"pipeline/train_validator/validator_batches",
		"pipeline/train_validator/validator_fit",
		"pipeline/train_validator/train_predictor",
	} {
		if r.StageSeconds(path) <= 0 {
			t.Fatalf("stage %q missing or zero in %v", path, r.SortedStagePaths())
		}
	}
	// Stage times must nest: the pipeline root bounds every stage.
	for _, st := range r.Stages {
		if st.Seconds > r.TotalSeconds {
			t.Fatalf("stage %s (%vs) exceeds total %vs", st.Path, st.Seconds, r.TotalSeconds)
		}
	}

	// The result is the BENCH_pipeline.json payload: it must round-trip
	// through JSON with the stage breakdown intact.
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back PipelineResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Stages) != len(r.Stages) || back.RowsScored != r.RowsScored {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}

	var out bytes.Buffer
	r.Print(&out)
	for _, want := range []string{"Pipeline benchmark", "meta_dataset", "rows/sec"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, out.String())
		}
	}
}
