package experiments

import (
	"fmt"
	"io"

	"blackboxval/internal/stats"
)

// StabilityCell aggregates one Figure 2 cell across seeds.
type StabilityCell struct {
	Dataset string
	Model   string
	// Medians holds the per-seed median absolute errors.
	Medians []float64
	Mean    float64
	Std     float64
}

// StabilityResult reports how robust the headline score-prediction
// quality is to the random seed (data generation, splits, model and
// predictor training all reseeded).
type StabilityResult struct {
	Seeds []int64
	Cells []StabilityCell
}

// Stability reruns the Figure 2 panel for the given model across several
// seeds and reports the spread of the per-cell median absolute error —
// the reproduction-robustness check a reviewer would ask for.
func Stability(scale Scale, model string, seeds []int64) (*StabilityResult, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	result := &StabilityResult{Seeds: seeds}
	perCell := map[string][]float64{}
	var order []string
	for _, seed := range seeds {
		seededScale := scale
		seededScale.Seed = seed
		res, err := Figure2(seededScale, model)
		if err != nil {
			return nil, fmt.Errorf("experiments: stability seed %d: %w", seed, err)
		}
		for _, row := range res.Rows {
			key := row.Dataset + "/" + row.Model
			if _, ok := perCell[key]; !ok {
				order = append(order, key)
			}
			perCell[key] = append(perCell[key], row.MedianAE)
		}
	}
	for _, key := range order {
		medians := perCell[key]
		var dataset, modelName string
		for i := range key {
			if key[i] == '/' {
				dataset, modelName = key[:i], key[i+1:]
				break
			}
		}
		result.Cells = append(result.Cells, StabilityCell{
			Dataset: dataset,
			Model:   modelName,
			Medians: medians,
			Mean:    stats.Mean(medians),
			Std:     stats.StdDev(medians),
		})
	}
	return result, nil
}

// Print renders the stability table.
func (r *StabilityResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Seed stability of the Figure 2 median absolute error (%d seeds)\n", len(r.Seeds))
	fmt.Fprintf(w, "%-10s %-6s %12s %12s %s\n", "dataset", "model", "mean-median", "std", "per-seed medians")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-10s %-6s %12.4f %12.4f %v\n", c.Dataset, c.Model, c.Mean, c.Std, roundAll(c.Medians))
	}
}

func roundAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(int(v*10000)) / 10000
	}
	return out
}
