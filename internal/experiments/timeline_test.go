package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTimelineBench(t *testing.T) {
	scale := Quick
	scale.Seed = 1
	res, err := TimelineBench(scale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != res.Capacity {
		t.Fatalf("ring should be full: %d windows, capacity %d", res.Windows, res.Capacity)
	}
	if res.Batches%res.WindowBatches != 0 {
		t.Fatalf("batches %d not a multiple of window %d", res.Batches, res.WindowBatches)
	}
	if res.BatchesPerSec <= 0 || res.WindowsPerSec <= 0 {
		t.Fatalf("throughput missing: %+v", res)
	}
	if res.RenderBytes == 0 || res.RenderMeanMs <= 0 || res.RenderMaxMs < res.RenderMeanMs {
		t.Fatalf("render stats inconsistent: %+v", res)
	}

	// The serialized form is what lands in BENCH_timeline.json.
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"batches_per_sec", "windows_per_sec", "render_mean_ms", "render_bytes"} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("JSON missing %q: %s", key, buf)
		}
	}

	var out bytes.Buffer
	res.Print(&out)
	if !strings.Contains(out.String(), "batches/sec") {
		t.Fatalf("text report missing throughput: %s", out.String())
	}
}
