// Package experiments contains one runner per table/figure of the
// paper's evaluation (Section 6), regenerating the same rows and series:
//
//	Figure 2a-d  prediction-error distributions for known error types
//	Figure 3     MAE under increasing fractions of unknown error types
//	Figure 4     sensitivity to the held-out sample size |Dtest|
//	§6.2.1       validation F1 under mixtures of known errors
//	Figure 5     validation F1 under unknown errors
//	Figure 6     validation F1 for AutoML-trained black boxes
//	Figure 7     score prediction for a cloud-hosted black box
//
// Each runner accepts a Scale so the same code drives quick benchmark
// runs and the full evaluation recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"

	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/models"
)

// Scale sizes an experimental run.
type Scale struct {
	Name             string
	TabularRows      int // rows per generated tabular dataset
	ImageRows        int // images per generated image dataset
	Repetitions      int // corrupted datasets per error type for predictor training
	Trials           int // serving batches evaluated per cell
	ValidatorBatches int // training batches for the performance validator
	ForestSizes      []int
	Workers          int // goroutines for meta-dataset construction (0 = all cores)
	Seed             int64
}

// Quick is sized for benchmarks and CI: every experiment finishes in
// seconds while preserving the qualitative shape of the results.
var Quick = Scale{
	Name:             "quick",
	TabularRows:      2200,
	ImageRows:        700,
	Repetitions:      30,
	Trials:           14,
	ValidatorBatches: 120,
	ForestSizes:      []int{50},
	Seed:             1,
}

// Full is sized for the recorded evaluation in EXPERIMENTS.md.
var Full = Scale{
	Name:             "full",
	TabularRows:      6000,
	ImageRows:        1400,
	Repetitions:      100,
	Trials:           40,
	ValidatorBatches: 300,
	ForestSizes:      []int{50, 100},
	Seed:             1,
}

// TabularDatasets are the relational datasets of the evaluation.
var TabularDatasets = []string{"income", "heart", "bank"}

// ModelNames are the black box families for relational data.
var ModelNames = []string{"lr", "dnn", "xgb"}

// Thresholds are the validation thresholds evaluated in the paper.
var Thresholds = []float64{0.03, 0.05, 0.10}

// GenerateDataset produces the named synthetic dataset at the scale's
// size.
func (s Scale) GenerateDataset(name string, seed int64) (*data.Dataset, error) {
	switch name {
	case "income":
		return datagen.Income(s.TabularRows, seed), nil
	case "heart":
		return datagen.Heart(s.TabularRows, seed), nil
	case "bank":
		return datagen.Bank(s.TabularRows, seed), nil
	case "tweets":
		return datagen.Tweets(s.TabularRows, seed), nil
	case "digits":
		return datagen.Digits(s.ImageRows, seed), nil
	case "fashion":
		return datagen.Fashion(s.ImageRows, seed), nil
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}

// Splits partitions a dataset following the paper's protocol: a source
// partition (split again into model-training and held-out test data) and
// a disjoint unseen serving partition. Classes are balanced first, as in
// the paper's accuracy experiments.
func Splits(ds *data.Dataset, seed int64) (train, test, serving *data.Dataset) {
	rng := rand.New(rand.NewSource(seed + 100))
	balanced := ds.Balance(rng)
	source, serving := balanced.Split(0.7, rng)
	train, test = source.Split(0.6, rng)
	return train, test, serving
}

// TrainModel trains the named black box family on the training split.
// Grid search is skipped at quick scale for speed; the default
// hyperparameters are the grid winners in the common case.
func (s Scale) TrainModel(name string, train *data.Dataset, seed int64) (data.Model, error) {
	var clf models.Classifier
	switch name {
	case "lr":
		clf = &models.SGDClassifier{Seed: seed}
	case "dnn":
		clf = &models.MLPClassifier{Seed: seed}
	case "xgb":
		clf = &models.GBDTClassifier{Seed: seed}
	case "conv":
		clf = &models.CNNClassifier{Seed: seed, Epochs: 3}
	default:
		return nil, fmt.Errorf("experiments: unknown model %q", name)
	}
	return models.TrainPipeline(train, clf, 256)
}

// IsLinear reports whether the named model family is linear (used by the
// Figure 3 breakdown).
func IsLinear(model string) bool { return model == "lr" }
