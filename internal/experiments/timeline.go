package experiments

// TimelineBench measures the drift-timeline store of internal/obs on
// the two paths production exercises: ingest (Record + Commit of a
// monitor-shaped batch of series samples, windows closing every
// WindowBatches commits) and render (the JSON serialization behind the
// /timeline endpoint, taken from a concurrent-safe snapshot).
// ppm-bench serializes the result as BENCH_timeline.json so timeline
// throughput regressions show up in review diffs the same way the
// pipeline timings do.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"blackboxval/internal/obs"
)

// timelineSeries mirrors the series the monitor feeds per observed
// batch (see monitor.feedTimeline): the core verdict series plus the
// per-class drift statistics for a binary classifier.
var timelineSeries = []string{
	"estimate", "alarm", "violation", "batch_size",
	"ks_max", "ks_class_0", "ks_class_1",
	"p50_shift_class_0", "p50_shift_class_1",
}

// TimelineResult is the machine-readable timeline benchmark
// (BENCH_timeline.json). Render latencies are in milliseconds.
type TimelineResult struct {
	Scale          string  `json:"scale"`
	Batches        int     `json:"batches"`
	SeriesPerBatch int     `json:"series_per_batch"`
	WindowBatches  int     `json:"window_batches"`
	Capacity       int     `json:"capacity"`
	Windows        int     `json:"windows"`
	IngestSeconds  float64 `json:"ingest_seconds"`
	BatchesPerSec  float64 `json:"batches_per_sec"`
	WindowsPerSec  float64 `json:"windows_per_sec"`
	Renders        int     `json:"renders"`
	RenderMeanMs   float64 `json:"render_mean_ms"`
	RenderMaxMs    float64 `json:"render_max_ms"`
	RenderBytes    int     `json:"render_bytes"`
}

// TimelineBench ingests a synthetic monitor workload into a TimeSeries
// ring at the given scale, then times the JSON render of the full
// retained timeline. The sample values come from a seeded generator so
// the serialized output is reproducible for a given scale and seed.
func TimelineBench(scale Scale) (*TimelineResult, error) {
	batches, renders := 20_000, 50
	if scale.Name == "full" {
		batches, renders = 200_000, 200
	}
	const windowBatches, capacity = 8, 256

	ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{
		Capacity:      capacity,
		WindowBatches: windowBatches,
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(scale.Seed))
	start := time.Now()
	for i := 0; i < batches; i++ {
		for _, name := range timelineSeries {
			ts.Record(name, rng.Float64())
		}
		ts.Commit()
	}
	ingest := time.Since(start)

	res := &TimelineResult{
		Scale:          scale.Name,
		Batches:        batches,
		SeriesPerBatch: len(timelineSeries),
		WindowBatches:  windowBatches,
		Capacity:       capacity,
		Windows:        ts.Len(),
		IngestSeconds:  ingest.Seconds(),
		Renders:        renders,
	}
	if s := ingest.Seconds(); s > 0 {
		res.BatchesPerSec = float64(batches) / s
		res.WindowsPerSec = float64(batches/windowBatches) / s
	}

	// Render path: the snapshot + JSON serialization a /timeline scrape
	// performs against the fully populated ring.
	var total, max time.Duration
	for i := 0; i < renders; i++ {
		t0 := time.Now()
		buf, err := json.Marshal(ts.Windows())
		d := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("experiments: rendering timeline: %w", err)
		}
		res.RenderBytes = len(buf)
		total += d
		if d > max {
			max = d
		}
	}
	res.RenderMeanMs = total.Seconds() * 1000 / float64(renders)
	res.RenderMaxMs = max.Seconds() * 1000
	return res, nil
}

// Print renders the human-readable throughput summary.
func (r *TimelineResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Timeline benchmark (scale=%s, %d batches x %d series, window=%d, capacity=%d)\n",
		r.Scale, r.Batches, r.SeriesPerBatch, r.WindowBatches, r.Capacity)
	fmt.Fprintf(w, "ingest  %8.3fs  %12.0f batches/sec  %10.0f windows/sec\n",
		r.IngestSeconds, r.BatchesPerSec, r.WindowsPerSec)
	fmt.Fprintf(w, "render  %d windows as %d JSON bytes: mean %.3fms, max %.3fms over %d renders\n",
		r.Windows, r.RenderBytes, r.RenderMeanMs, r.RenderMaxMs, r.Renders)
}
