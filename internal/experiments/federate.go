package experiments

// FederateBench measures the federation layer behind ppm-aggregate on
// the three axes that matter for fleet-scale monitoring:
//
//  1. Sketch accuracy and merge exactness — the same sample stream
//     summarized by one stats.KLL versus sharded across N replicas and
//     merged. The merged quantiles must be bit-equal to the single
//     sketch (DESIGN.md §13); the benchmark errors out otherwise and
//     reports the sketch-vs-exact relative error per quantile.
//  2. Aggregator ingest throughput — JSON-decoding replica /federate
//     documents and merging the aligned windows, the hot path of every
//     scrape tick (docs/sec, merged windows/sec, MB/sec).
//  3. Aggregate-of-aggregates honesty — the fleet p99 from the merged
//     sketch versus the max of per-shard p99s on a skewed fleet, the
//     naive rollup the mergeable sketches make unnecessary.
//
// ppm-bench serializes the result as BENCH_federate.json so federation
// regressions show up in review diffs like the pipeline timings do.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"blackboxval/internal/fed"
	"blackboxval/internal/obs"
	"blackboxval/internal/stats"
)

// FederateQuantile is one row of the merged-vs-single accuracy table.
type FederateQuantile struct {
	Q           float64 `json:"q"`
	Exact       float64 `json:"exact"`
	Single      float64 `json:"single_sketch"`
	Merged      float64 `json:"merged_sketch"`
	MergedDelta float64 `json:"merged_minus_single"`
	RelativeErr float64 `json:"sketch_relative_error"`
}

// FederateResult is the machine-readable federation benchmark
// (BENCH_federate.json).
type FederateResult struct {
	Scale   string `json:"scale"`
	Shards  int    `json:"shards"`
	Samples int    `json:"samples"`

	Quantiles []FederateQuantile `json:"quantiles"`

	DocWindows         int     `json:"doc_windows"`
	DocSeries          int     `json:"doc_series"`
	DocBytes           int     `json:"doc_bytes"`
	Rounds             int     `json:"rounds"`
	DecodeMergeSeconds float64 `json:"decode_merge_seconds"`
	DocsPerSec         float64 `json:"docs_per_sec"`
	WindowsPerSec      float64 `json:"merged_windows_per_sec"`
	MBPerSec           float64 `json:"mb_per_sec"`

	ShardP99s   []float64 `json:"shard_p99s"`
	FleetP99    float64   `json:"fleet_p99"`
	MaxShardP99 float64   `json:"max_shard_p99"`
}

// FederateBench runs the federation benchmark at the given scale.
func FederateBench(scale Scale) (*FederateResult, error) {
	const shards = 5
	samples, rounds, windows := 100_000, 50, 64
	if scale.Name == "full" {
		samples, rounds, windows = 1_000_000, 200, 256
	}
	rng := rand.New(rand.NewSource(scale.Seed))
	res := &FederateResult{Scale: scale.Name, Shards: shards, Samples: samples}

	// --- 1. merged-vs-single quantile table over one skewed stream ---
	values := make([]float64, samples)
	single := stats.NewKLL()
	shardSketches := make([]*stats.KLL, shards)
	for i := range shardSketches {
		shardSketches[i] = stats.NewKLL()
	}
	for i := range values {
		// Lognormal-ish positive stream: heavy tail, like a latency or a
		// raw feature column.
		v := math.Exp(rng.NormFloat64())
		values[i] = v
		single.Add(v)
		shardSketches[i%shards].Add(v)
	}
	merged := stats.NewKLL()
	for _, s := range shardSketches {
		if err := merged.Merge(s); err != nil {
			return nil, fmt.Errorf("experiments: merging shard sketch: %w", err)
		}
	}
	sort.Float64s(values)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		idx := int(q * float64(len(values)-1))
		row := FederateQuantile{
			Q:      q,
			Exact:  values[idx],
			Single: single.Quantile(q),
			Merged: merged.Quantile(q),
		}
		row.MergedDelta = row.Merged - row.Single
		if row.Exact != 0 {
			row.RelativeErr = math.Abs(row.Single-row.Exact) / math.Abs(row.Exact)
		}
		if row.MergedDelta != 0 {
			return nil, fmt.Errorf(
				"experiments: merge determinism violated at q=%g: single %v != merged %v",
				q, row.Single, row.Merged)
		}
		res.Quantiles = append(res.Quantiles, row)
	}

	// --- 2. decode+merge throughput over realistic /federate docs ---
	docs := make([][]byte, shards)
	quantiles := []float64(nil)
	for s := 0; s < shards; s++ {
		ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{
			Capacity:      windows,
			WindowBatches: 1,
		})
		if err != nil {
			return nil, err
		}
		for w := 0; w < windows; w++ {
			for _, name := range timelineSeries {
				ts.Record(name, rng.Float64())
			}
			ts.Commit()
		}
		quantiles = ts.Quantiles()
		doc := fed.Doc{
			Version:       fed.DocVersion,
			Replica:       fmt.Sprintf("bench-%d", s),
			WindowBatches: 1,
			Quantiles:     quantiles,
			AlarmLine:     0.5,
			Observed:      windows,
			Windows:       ts.Windows(),
		}
		buf, err := json.Marshal(doc)
		if err != nil {
			return nil, err
		}
		docs[s] = buf
	}
	res.DocWindows = windows
	res.DocSeries = len(timelineSeries)
	res.DocBytes = len(docs[0])
	res.Rounds = rounds

	start := time.Now()
	for r := 0; r < rounds; r++ {
		decoded := make([]fed.Doc, shards)
		for s := range docs {
			if err := json.Unmarshal(docs[s], &decoded[s]); err != nil {
				return nil, fmt.Errorf("experiments: decoding bench doc: %w", err)
			}
		}
		group := make([]obs.Window, shards)
		for w := 0; w < windows; w++ {
			for s := range decoded {
				group[s] = decoded[s].Windows[w]
			}
			if _, ok := obs.MergeWindowSet(group, quantiles); !ok {
				return nil, fmt.Errorf("experiments: empty merge at window %d", w)
			}
		}
	}
	elapsed := time.Since(start)
	res.DecodeMergeSeconds = elapsed.Seconds()
	if s := elapsed.Seconds(); s > 0 {
		res.DocsPerSec = float64(rounds*shards) / s
		res.WindowsPerSec = float64(rounds*windows) / s
		res.MBPerSec = float64(rounds*shards*res.DocBytes) / s / (1 << 20)
	}

	// --- 3. fleet p99 vs max of shard p99s on a skewed fleet ---
	// Shard i is (i+1)× hotter and (i+1)× slower than shard 0, the
	// classic skew where naive per-shard rollups mislead.
	fleet := stats.NewKLL()
	perShard := samples / 10
	for s := 0; s < shards; s++ {
		sk := stats.NewKLL()
		for i := 0; i < perShard*(s+1); i++ {
			sk.Add(rng.ExpFloat64() * float64(s+1))
		}
		res.ShardP99s = append(res.ShardP99s, sk.Quantile(0.99))
		if err := fleet.Merge(sk); err != nil {
			return nil, err
		}
	}
	res.FleetP99 = fleet.Quantile(0.99)
	res.MaxShardP99 = res.ShardP99s[len(res.ShardP99s)-1]
	for _, p := range res.ShardP99s {
		if p > res.MaxShardP99 {
			res.MaxShardP99 = p
		}
	}
	return res, nil
}

// Print renders the human-readable federation summary.
func (r *FederateResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Federation benchmark (scale=%s, %d shards, %d samples)\n",
		r.Scale, r.Shards, r.Samples)
	fmt.Fprintf(w, "%8s  %14s  %14s  %14s  %10s\n",
		"q", "exact", "single", "merged", "rel err")
	for _, row := range r.Quantiles {
		fmt.Fprintf(w, "%8.3f  %14.6f  %14.6f  %14.6f  %9.4f%%  (merged-single = %g)\n",
			row.Q, row.Exact, row.Single, row.Merged, row.RelativeErr*100, row.MergedDelta)
	}
	fmt.Fprintf(w, "ingest  %d docs x %d windows x %d series (%d JSON bytes/doc), %d rounds in %.3fs\n",
		r.Shards, r.DocWindows, r.DocSeries, r.DocBytes, r.Rounds, r.DecodeMergeSeconds)
	fmt.Fprintf(w, "        %10.0f docs/sec  %10.0f merged windows/sec  %8.1f MB/sec\n",
		r.DocsPerSec, r.WindowsPerSec, r.MBPerSec)
	fmt.Fprintf(w, "skew    shard p99s %v\n", r.ShardP99s)
	fmt.Fprintf(w, "        fleet p99 %.4f vs max shard p99 %.4f (naive rollup off by %+.1f%%)\n",
		r.FleetP99, r.MaxShardP99, (r.MaxShardP99/r.FleetP99-1)*100)
}
