package experiments

// PipelineBench times the end-to-end training pipeline (black box fit,
// performance predictor, performance validator) on one dataset and
// reports a per-stage wall-time breakdown extracted from the span tree
// of internal/obs. ppm-bench serializes the result as
// BENCH_pipeline.json so timing regressions show up in review diffs
// the same way the F1/MAE tables do.

import (
	"context"
	"fmt"
	"io"
	"sort"

	"blackboxval/internal/core"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/obs"
)

// StageTiming is one node of the flattened span tree. Path is the
// slash-joined span names from the pipeline root (e.g.
// "train_predictor/meta_dataset").
type StageTiming struct {
	Path    string             `json:"path"`
	Seconds float64            `json:"seconds"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// PipelineResult is the machine-readable pipeline benchmark
// (BENCH_pipeline.json).
type PipelineResult struct {
	Scale        string        `json:"scale"`
	Dataset      string        `json:"dataset"`
	Model        string        `json:"model"`
	Workers      int           `json:"workers"`
	TestRows     int           `json:"test_rows"`
	MetaExamples int           `json:"meta_examples"`
	RowsScored   int           `json:"rows_scored"`
	TotalSeconds float64       `json:"total_seconds"`
	RowsPerSec   float64       `json:"rows_per_sec"`
	Stages       []StageTiming `json:"stages"`

	root *obs.Span // retained for the human-readable report
}

// PipelineBench trains the income/lr predictor and validator at the
// given scale under a private tracer and assembles the stage breakdown.
// Throughput (RowsPerSec) counts the synthetic serving-batch rows pushed
// through the black box during training, divided by total wall time.
func PipelineBench(scale Scale) (*PipelineResult, error) {
	ds, err := scale.GenerateDataset("income", scale.Seed)
	if err != nil {
		return nil, err
	}
	train, test, _ := Splits(ds, scale.Seed)

	tr := obs.NewTracer(4)
	ctx, pipe := obs.StartSpan(obs.WithTracer(context.Background(), tr), "pipeline")

	_, modelSp := obs.StartSpan(ctx, "train_model")
	model, err := scale.TrainModel("lr", train, scale.Seed)
	modelSp.SetMetric("rows", float64(train.Len()))
	modelSp.End()
	if err != nil {
		return nil, err
	}

	gens := errorgen.KnownTabular()
	pred, err := core.TrainPredictorCtx(ctx, model, test, core.PredictorConfig{
		Generators:  gens,
		Repetitions: scale.Repetitions,
		ForestSizes: scale.ForestSizes,
		Workers:     scale.Workers,
		Seed:        scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	_, err = core.TrainValidatorCtx(ctx, model, test, core.ValidatorConfig{
		Generators: gens,
		Batches:    scale.ValidatorBatches,
		Workers:    scale.Workers,
		Seed:       scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	pipe.End()

	res := &PipelineResult{
		Scale:        scale.Name,
		Dataset:      "income",
		Model:        "lr",
		Workers:      scale.Workers,
		TestRows:     test.Len(),
		MetaExamples: pred.NumExamples(),
		TotalSeconds: pipe.Duration().Seconds(),
		root:         pipe,
	}
	flattenSpans(pipe, "", &res.Stages)
	for _, st := range res.Stages {
		if rows, ok := st.Metrics["rows_scored"]; ok {
			res.RowsScored += int(rows)
		}
	}
	if res.TotalSeconds > 0 {
		res.RowsPerSec = float64(res.RowsScored) / res.TotalSeconds
	}
	return res, nil
}

// flattenSpans walks the span tree depth-first, appending one
// StageTiming per span with its slash-joined path.
func flattenSpans(s *obs.Span, prefix string, out *[]StageTiming) {
	path := s.Name()
	if prefix != "" {
		path = prefix + "/" + s.Name()
	}
	js := s.JSON()
	*out = append(*out, StageTiming{Path: path, Seconds: js.Seconds, Metrics: js.Metrics})
	for _, c := range s.Children() {
		flattenSpans(c, path, out)
	}
}

// Print renders the human-readable stage report plus the throughput
// summary line.
func (r *PipelineResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Pipeline benchmark (scale=%s, dataset=%s, model=%s, workers=%d)\n",
		r.Scale, r.Dataset, r.Model, r.Workers)
	if r.root != nil {
		r.root.Report(w)
	} else {
		for _, st := range r.Stages {
			fmt.Fprintf(w, "%-44s %8.3fs\n", st.Path, st.Seconds)
		}
	}
	fmt.Fprintf(w, "total %.3fs, %d rows scored, %.0f rows/sec\n",
		r.TotalSeconds, r.RowsScored, r.RowsPerSec)
}

// StageSeconds returns the duration of the stage at the given path, or
// 0 when absent — convenience for tests and the markdown renderer.
func (r *PipelineResult) StageSeconds(path string) float64 {
	for _, st := range r.Stages {
		if st.Path == path {
			return st.Seconds
		}
	}
	return 0
}

// SortedStagePaths returns all stage paths in depth-first order (the
// natural order of Stages); exposed so renderers need not re-walk.
func (r *PipelineResult) SortedStagePaths() []string {
	paths := make([]string, len(r.Stages))
	for i, st := range r.Stages {
		paths[i] = st.Path
	}
	sort.Strings(paths)
	return paths
}
