package experiments

// TSDBBench measures the durable timeline store (internal/obs/tsdb) on
// the paths production exercises: append (one closed window persisted
// per OnWindowClose, segments rotating and fsyncing), cold decode +
// re-aggregate (a fresh open over the full on-disk history answering a
// step-query, the /timeline/range path), range-query latency
// (p50/p99 over seeded subrange queries against a warm store) and the
// compaction associativity contract (eager vs lazy schedules must
// produce bit-equal effective histories — DESIGN.md §17). ppm-bench
// serializes the result as BENCH_tsdb.json.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"blackboxval/internal/obs"
	"blackboxval/internal/obs/tsdb"
)

// TSDBResult is the machine-readable durable-store benchmark
// (BENCH_tsdb.json). Latencies are in milliseconds.
type TSDBResult struct {
	Scale           string `json:"scale"`
	Windows         int    `json:"windows"`
	SeriesPerWindow int    `json:"series_per_window"`

	AppendSeconds       float64 `json:"append_seconds"`
	AppendWindowsPerSec float64 `json:"append_windows_per_sec"`
	Segments            int     `json:"segments"`
	BytesOnDisk         int64   `json:"bytes_on_disk"`

	// Cold decode + re-aggregate: fresh open, one step-8 range query
	// over the whole history (the /timeline/range path end to end).
	DecodeSeconds       float64 `json:"decode_seconds"`
	DecodeWindowsPerSec float64 `json:"decode_windows_per_sec"`
	ReaggBuckets        int     `json:"reagg_buckets"`

	Queries    int     `json:"queries"`
	QueryP50Ms float64 `json:"query_p50_ms"`
	QueryP99Ms float64 `json:"query_p99_ms"`

	// CompactionDeterministic is the eager-vs-lazy bit-equality check;
	// a false here is a correctness regression, not a slowdown.
	CompactionDeterministic bool `json:"compaction_deterministic"`
	CompactedWindows        int  `json:"compacted_windows"`
}

// TSDBBench persists a synthetic monitor workload into an on-disk
// store under a temp dir, then measures the read paths against it.
func TSDBBench(scale Scale) (*TSDBResult, error) {
	windows, queries := 4096, 200
	if scale.Name == "full" {
		windows, queries = 32768, 500
	}

	dir, err := os.MkdirTemp("", "ppm-tsdb-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	ws, err := benchWindows(windows, scale.Seed)
	if err != nil {
		return nil, err
	}
	res := &TSDBResult{
		Scale:           scale.Name,
		Windows:         windows,
		SeriesPerWindow: len(timelineSeries),
		Queries:         queries,
	}

	// Append path: one Append per closed window, exactly what the
	// OnWindowClose hook delivers in production.
	appendDir := dir + "/append"
	db, err := tsdb.Open(tsdb.Config{Dir: appendDir, SegmentBytes: 1 << 20, Downsample: 1})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for _, w := range ws {
		db.Append(w)
	}
	res.AppendSeconds = time.Since(start).Seconds()
	if err := db.Close(); err != nil {
		return nil, err
	}
	if res.AppendSeconds > 0 {
		res.AppendWindowsPerSec = float64(windows) / res.AppendSeconds
	}

	// Cold decode + re-aggregate: a fresh read-only open answering the
	// full-history step query — segment decode, shadow resolution and
	// mergeable re-aggregation in one measured pass.
	cold, err := tsdb.OpenReadOnly(tsdb.Config{Dir: appendDir})
	if err != nil {
		return nil, err
	}
	st := cold.Stats()
	res.Segments, res.BytesOnDisk = st.Segments, st.Bytes
	min, max, ok := cold.Bounds()
	if !ok {
		return nil, fmt.Errorf("experiments: benchmark store is empty")
	}
	start = time.Now()
	buckets, _, err := cold.Range(min, max, 8)
	if err != nil {
		return nil, err
	}
	res.DecodeSeconds = time.Since(start).Seconds()
	res.ReaggBuckets = len(buckets)
	if res.DecodeSeconds > 0 {
		res.DecodeWindowsPerSec = float64(windows) / res.DecodeSeconds
	}

	// Query latency: seeded subrange quantile queries against the now
	// warm store, the repeated-dashboard-poll shape.
	rng := rand.New(rand.NewSource(scale.Seed + 1))
	lat := make([]float64, 0, queries)
	for i := 0; i < queries; i++ {
		span := int64(64 + rng.Intn(192))
		from := min + rng.Int63n(max-min+1)
		to := from + span
		if to > max {
			to = max
		}
		t0 := time.Now()
		if _, err := cold.Query("estimate", from, to, 4); err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(t0).Seconds()*1000)
	}
	sort.Float64s(lat)
	res.QueryP50Ms = lat[len(lat)/2]
	res.QueryP99Ms = lat[min99(len(lat))]

	// Compaction associativity: an eager schedule (tiny segments,
	// frequent passes) and a lazy one (one pass at the end) over the
	// same windows must be bit-equal in their effective history.
	det, compacted, err := compactionCheck(dir, ws)
	if err != nil {
		return nil, err
	}
	res.CompactionDeterministic = det
	res.CompactedWindows = compacted
	return res, nil
}

// benchWindows closes n windows of monitor-shaped series through a
// real TimeSeries so the persisted aggregates carry genuine sketches
// and exact sums.
func benchWindows(n int, seed int64) ([]obs.Window, error) {
	ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{Capacity: n + 1})
	if err != nil {
		return nil, err
	}
	out := make([]obs.Window, 0, n)
	ts.OnWindowClose(func(w obs.Window) { out = append(out, w) })
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for _, name := range timelineSeries {
			ts.Record(name, rng.Float64())
		}
		ts.Commit()
	}
	return out, nil
}

// compactionCheck replays ws through an eager and a lazy compaction
// schedule and compares the canonical serialization of everything a
// reader can observe.
func compactionCheck(dir string, ws []obs.Window) (bool, int, error) {
	open := func(sub string, segBytes int64) (*tsdb.DB, error) {
		return tsdb.Open(tsdb.Config{
			Dir: dir + "/" + sub, SegmentBytes: segBytes,
			Downsample: 8, CompactAfter: 8,
		})
	}
	eager, err := open("eager", 64<<10)
	if err != nil {
		return false, 0, err
	}
	for i, w := range ws {
		eager.Append(w)
		if i%64 == 63 {
			eager.Compact()
		}
	}
	lazy, err := open("lazy", 16<<20)
	if err != nil {
		return false, 0, err
	}
	for _, w := range ws {
		lazy.Append(w)
	}
	// Restart both stores so every raw window sits in a sealed segment
	// (the active segment is never compactable), then run one final
	// pass each. Up to here the schedules could not differ more: eager
	// compacted 64 times over tiny segments, lazy not once.
	if err := eager.Close(); err != nil {
		return false, 0, err
	}
	if eager, err = open("eager", 64<<10); err != nil {
		return false, 0, err
	}
	eager.Compact()
	if err := lazy.Close(); err != nil {
		return false, 0, err
	}
	if lazy, err = open("lazy", 16<<20); err != nil {
		return false, 0, err
	}
	lazy.Compact()
	a, err := effective(eager)
	if err != nil {
		return false, 0, err
	}
	b, err := effective(lazy)
	if err != nil {
		return false, 0, err
	}
	compacted := len(eager.Entries(0, int64(len(ws))))
	if err := eager.Close(); err != nil {
		return false, 0, err
	}
	if err := lazy.Close(); err != nil {
		return false, 0, err
	}
	return bytes.Equal(a, b), compacted, nil
}

// effective serializes the reader-observable state of a store: the
// shadow-resolved records plus a step query over them.
func effective(db *tsdb.DB) ([]byte, error) {
	min, max, ok := db.Bounds()
	if !ok {
		return nil, fmt.Errorf("experiments: compaction store is empty")
	}
	q, err := db.Query("estimate", min, max, 8)
	if err != nil {
		return nil, err
	}
	return json.Marshal(map[string]any{
		"entries": db.Entries(min, max),
		"q":       q,
	})
}

// min99 is the index of the p99 order statistic.
func min99(n int) int {
	i := (n * 99) / 100
	if i >= n {
		i = n - 1
	}
	return i
}

// Print renders the human-readable durable-store summary.
func (r *TSDBResult) Print(w io.Writer) {
	fmt.Fprintf(w, "TSDB benchmark (scale=%s, %d windows x %d series)\n",
		r.Scale, r.Windows, r.SeriesPerWindow)
	fmt.Fprintf(w, "append  %8.3fs  %12.0f windows/sec  -> %d segments, %d bytes\n",
		r.AppendSeconds, r.AppendWindowsPerSec, r.Segments, r.BytesOnDisk)
	fmt.Fprintf(w, "decode+re-aggregate (cold, step=8)  %8.3fs  %12.0f windows/sec  -> %d buckets\n",
		r.DecodeSeconds, r.DecodeWindowsPerSec, r.ReaggBuckets)
	fmt.Fprintf(w, "query   p50 %.3fms  p99 %.3fms over %d subrange queries\n",
		r.QueryP50Ms, r.QueryP99Ms, r.Queries)
	fmt.Fprintf(w, "compaction determinism (eager vs lazy, %d effective records): %v\n",
		r.CompactedWindows, r.CompactionDeterministic)
}
