package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"blackboxval/internal/core"
	"blackboxval/internal/data"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/stats"
)

// Figure3Point is one x-position of Figure 3: the distribution of the
// prediction error at a given fraction of unknown error types in the
// serving data.
type Figure3Point struct {
	Fraction        float64
	Median, P5, P95 float64
	AbsErrors       []float64
}

// Figure3Result holds the two series of Figure 3.
type Figure3Result struct {
	Linear    []Figure3Point // lr
	Nonlinear []Figure3Point // dnn and xgb pooled
}

// Figure3Fractions are the x-axis positions of the figure.
var Figure3Fractions = []float64{0, 0.25, 0.5, 0.75, 1.0}

// Figure3 reproduces the mixed/unknown-shift experiment (Section 6.1.2):
// performance predictors are trained on the known error types, then
// evaluated on serving data where a growing fraction of the corruption
// comes from error types the predictor never observed (including the
// adversarial model-entropy-based missingness). The paper finds the
// linear model's error grows with the unknown fraction while nonlinear
// models stay flat.
func Figure3(scale Scale) (*Figure3Result, error) {
	result := &Figure3Result{}
	perBucket := map[bool]map[float64][]float64{true: {}, false: {}}

	for di, dataset := range TabularDatasets {
		ds, err := scale.GenerateDataset(dataset, scale.Seed+int64(di))
		if err != nil {
			return nil, err
		}
		train, test, serving := Splits(ds, scale.Seed+int64(di))
		for mi, model := range ModelNames {
			seed := scale.Seed + int64(di*10+mi)
			blackBox, err := scale.TrainModel(model, train, seed)
			if err != nil {
				return nil, err
			}
			known := errorgen.KnownTabular()
			unknown := []errorgen.Generator{
				errorgen.Typos{},
				errorgen.Smearing{},
				errorgen.FlippedSigns{},
				errorgen.EntropyMissing{Model: blackBox},
			}
			pred, err := core.TrainPredictor(blackBox, test, core.PredictorConfig{
				Generators:  known,
				Repetitions: scale.Repetitions,
				ForestSizes: scale.ForestSizes,
				Workers:     scale.Workers,
				Seed:        seed,
			})
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed + 300))
			for _, frac := range Figure3Fractions {
				for trial := 0; trial < scale.Trials/2+1; trial++ {
					corrupted := blendErrors(serving, known, unknown, frac, rng)
					proba := blackBox.PredictProba(corrupted)
					truth := core.AccuracyScore(proba, corrupted.Labels)
					est := pred.EstimateFromProba(proba)
					bucket := perBucket[IsLinear(model)]
					bucket[frac] = append(bucket[frac], math.Abs(est-truth))
				}
			}
		}
	}

	for _, frac := range Figure3Fractions {
		result.Linear = append(result.Linear, summarizePoint(frac, perBucket[true][frac]))
		result.Nonlinear = append(result.Nonlinear, summarizePoint(frac, perBucket[false][frac]))
	}
	return result, nil
}

// blendErrors corrupts serving data with a magnitude-controlled blend:
// fraction frac of the corruption budget goes to unknown error types,
// the rest to known ones.
func blendErrors(serving *data.Dataset, known, unknown []errorgen.Generator, frac float64, rng *rand.Rand) *data.Dataset {
	magnitude := 0.1 + rng.Float64()*0.8
	out := serving
	if frac < 1 {
		gen := known[rng.Intn(len(known))]
		out = gen.Corrupt(out, magnitude*(1-frac), rng)
	}
	if frac > 0 {
		gen := unknown[rng.Intn(len(unknown))]
		out = gen.Corrupt(out, magnitude*frac, rng)
	}
	return out
}

func summarizePoint(frac float64, absErrs []float64) Figure3Point {
	return Figure3Point{
		Fraction:  frac,
		AbsErrors: absErrs,
		Median:    stats.Median(absErrs),
		P5:        stats.Percentile(absErrs, 5),
		P95:       stats.Percentile(absErrs, 95),
	}
}

// Print renders both series.
func (r *Figure3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: prediction error vs. fraction of unknown error types")
	fmt.Fprintf(w, "%-10s %-10s %10s %10s %10s\n", "series", "fraction", "p5", "median", "p95")
	for _, p := range r.Linear {
		fmt.Fprintf(w, "%-10s %-10.2f %10.4f %10.4f %10.4f\n", "linear", p.Fraction, p.P5, p.Median, p.P95)
	}
	for _, p := range r.Nonlinear {
		fmt.Fprintf(w, "%-10s %-10.2f %10.4f %10.4f %10.4f\n", "nonlinear", p.Fraction, p.P5, p.Median, p.P95)
	}
}
