package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"blackboxval/internal/core"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/stats"
)

// Figure4Point is the predictor quality at one held-out sample size.
type Figure4Point struct {
	TestSize      int
	MAE, P10, P90 float64
}

// Figure4Series is one panel of Figure 4 (a dataset/error/model cell).
type Figure4Series struct {
	Dataset string
	Error   string
	Model   string
	Points  []Figure4Point
}

// Figure4Result holds all six panels.
type Figure4Result struct {
	Series []Figure4Series
}

// Figure4Sizes are the |Dtest| values of the paper.
var Figure4Sizes = []int{10, 50, 100, 250, 500, 750, 1000, 1500}

// Figure4 reproduces the sample-size sensitivity experiment (Section
// 6.1.3): how many held-out examples does the performance predictor need
// before its estimates stabilize? Panels: missing values on income and
// outliers on heart, each for lr, dnn and xgb.
func Figure4(scale Scale) (*Figure4Result, error) {
	result := &Figure4Result{}
	cells := []struct {
		dataset string
		gen     errorgen.Generator
	}{
		{"income", errorgen.MissingValues{}},
		{"heart", errorgen.Outliers{}},
	}
	for ci, cell := range cells {
		// Oversize the dataset so even |Dtest|=1500 leaves training and
		// serving partitions intact.
		bigScale := scale
		if bigScale.TabularRows < 5000 {
			bigScale.TabularRows = 5000
		}
		ds, err := bigScale.GenerateDataset(cell.dataset, scale.Seed+int64(ci))
		if err != nil {
			return nil, err
		}
		train, test, serving := Splits(ds, scale.Seed+int64(ci))
		for mi, model := range ModelNames {
			seed := scale.Seed + int64(ci*10+mi)
			blackBox, err := scale.TrainModel(model, train, seed)
			if err != nil {
				return nil, err
			}
			series := Figure4Series{Dataset: cell.dataset, Error: cell.gen.Name(), Model: model}
			rng := rand.New(rand.NewSource(seed + 400))
			for _, size := range Figure4Sizes {
				if size > test.Len() {
					size = test.Len()
				}
				sample := test.Sample(size, rng)
				pred, err := core.TrainPredictor(blackBox, sample, core.PredictorConfig{
					Generators:  []errorgen.Generator{cell.gen},
					Repetitions: scale.Repetitions,
					ForestSizes: scale.ForestSizes,
					Workers:     scale.Workers,
					Seed:        seed,
				})
				if err != nil {
					return nil, err
				}
				var absErrs []float64
				for trial := 0; trial < scale.Trials; trial++ {
					corrupted := cell.gen.Corrupt(serving, rng.Float64(), rng)
					proba := blackBox.PredictProba(corrupted)
					truth := core.AccuracyScore(proba, corrupted.Labels)
					est := pred.EstimateFromProba(proba)
					absErrs = append(absErrs, math.Abs(est-truth))
				}
				series.Points = append(series.Points, Figure4Point{
					TestSize: size,
					MAE:      stats.Mean(absErrs),
					P10:      stats.Percentile(absErrs, 10),
					P90:      stats.Percentile(absErrs, 90),
				})
			}
			result.Series = append(result.Series, series)
		}
	}
	return result, nil
}

// Print renders the six panels.
func (r *Figure4Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: predictor sensitivity to the held-out sample size |Dtest|")
	for _, s := range r.Series {
		fmt.Fprintf(w, "%s in %s (%s):\n", s.Error, s.Dataset, s.Model)
		fmt.Fprintf(w, "  %-8s %10s %10s %10s\n", "|Dtest|", "p10", "MAE", "p90")
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %-8d %10.4f %10.4f %10.4f\n", p.TestSize, p.P10, p.MAE, p.P90)
		}
	}
}
