package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"blackboxval/internal/core"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/stats"
)

// GenMatrixRow is one row of the error-type generalization matrix: how
// well a predictor trained on the four standard known error types
// estimates the score under one specific (possibly never-seen) error.
type GenMatrixRow struct {
	Error    string
	Known    bool // was this error type in the training set?
	MedianAE float64
	P90      float64
}

// GenMatrixResult is the full generalization matrix for one model family.
type GenMatrixResult struct {
	Dataset string
	Model   string
	Rows    []GenMatrixRow
}

// GeneralizationMatrix extends the paper's future-work question — "is
// there a set of errors for training which generalizes to the majority of
// real world cases?" — by measuring, per individual error type, the
// prediction error of a predictor trained only on the standard four
// (missing values, outliers, swapped columns, scaling). Known types act
// as the control group.
func GeneralizationMatrix(scale Scale, model string) (*GenMatrixResult, error) {
	ds, err := scale.GenerateDataset("income", scale.Seed)
	if err != nil {
		return nil, err
	}
	train, test, serving := Splits(ds, scale.Seed)
	blackBox, err := scale.TrainModel(model, train, scale.Seed)
	if err != nil {
		return nil, err
	}
	known := errorgen.KnownTabular()
	pred, err := core.TrainPredictor(blackBox, test, core.PredictorConfig{
		Generators:  known,
		Repetitions: scale.Repetitions,
		ForestSizes: scale.ForestSizes,
		Workers:     scale.Workers,
		Seed:        scale.Seed,
	})
	if err != nil {
		return nil, err
	}

	knownNames := map[string]bool{}
	for _, g := range known {
		knownNames[g.Name()] = true
	}
	evalGens := append(append([]errorgen.Generator{}, known...), errorgen.UnknownTabular()...)
	evalGens = append(evalGens, errorgen.ExtendedTabular()...)
	evalGens = append(evalGens, errorgen.EncodingErrors{}, errorgen.EntropyMissing{Model: blackBox})

	result := &GenMatrixResult{Dataset: "income", Model: model}
	rng := rand.New(rand.NewSource(scale.Seed + 1000))
	for _, gen := range evalGens {
		var absErrs []float64
		for trial := 0; trial < scale.Trials; trial++ {
			corrupted := gen.Corrupt(serving, rng.Float64(), rng)
			proba := blackBox.PredictProba(corrupted)
			truth := core.AccuracyScore(proba, corrupted.Labels)
			absErrs = append(absErrs, math.Abs(pred.EstimateFromProba(proba)-truth))
		}
		result.Rows = append(result.Rows, GenMatrixRow{
			Error:    gen.Name(),
			Known:    knownNames[gen.Name()],
			MedianAE: stats.Median(absErrs),
			P90:      stats.Percentile(absErrs, 90),
		})
	}
	return result, nil
}

// Print renders the generalization matrix.
func (r *GenMatrixResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Error-type generalization matrix (%s on %s; predictor trained on the 4 known types)\n",
		r.Model, r.Dataset)
	fmt.Fprintf(w, "%-18s %-8s %10s %10s\n", "error type", "known?", "medianAE", "p90")
	for _, row := range r.Rows {
		known := "yes"
		if !row.Known {
			known = "no"
		}
		fmt.Fprintf(w, "%-18s %-8s %10.4f %10.4f\n", row.Error, known, row.MedianAE, row.P90)
	}
}
