package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestGeneralizationMatrixSmoke(t *testing.T) {
	res, err := GeneralizationMatrix(tiny, "lr")
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "lr" || res.Dataset != "income" {
		t.Fatalf("metadata wrong: %+v", res)
	}
	// 4 known + 3 unknown + 5 extended + encoding + entropy = 14 rows.
	if len(res.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(res.Rows))
	}
	knownCount := 0
	for _, row := range res.Rows {
		if row.Known {
			knownCount++
		}
		if row.MedianAE < 0 || row.MedianAE > 0.5 {
			t.Fatalf("%s: implausible median AE %v", row.Error, row.MedianAE)
		}
		if row.P90 < row.MedianAE {
			t.Fatalf("%s: p90 %v below median %v", row.Error, row.P90, row.MedianAE)
		}
	}
	if knownCount != 4 {
		t.Fatalf("known rows = %d, want 4", knownCount)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "generalization matrix") {
		t.Fatal("print output missing header")
	}
	if !strings.Contains(buf.String(), "shuffled_column") {
		t.Fatal("print output missing extended error type")
	}
}

func TestGeneralizationMatrixUnknownModel(t *testing.T) {
	if _, err := GeneralizationMatrix(tiny, "nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFigure2AUCSmoke(t *testing.T) {
	res, err := Figure2AUC(tiny, "lr")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// AUC of a working binary model lies above chance.
		if row.TestScore < 0.6 || row.TestScore > 1 {
			t.Fatalf("%s: implausible test AUC %v", row.Dataset, row.TestScore)
		}
		if row.MedianAE > 0.3 {
			t.Fatalf("%s: AUC prediction error %v way off", row.Dataset, row.MedianAE)
		}
	}
}

func TestStabilitySmoke(t *testing.T) {
	res, err := Stability(tiny, "lr", []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds = %v", res.Seeds)
	}
	if len(res.Cells) != 4 { // income, heart, bank, tweets
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if len(c.Medians) != 2 {
			t.Fatalf("%s/%s has %d medians", c.Dataset, c.Model, len(c.Medians))
		}
		if c.Model != "lr" || c.Dataset == "" {
			t.Fatalf("cell metadata wrong: %+v", c)
		}
		if c.Std < 0 || c.Mean < 0 {
			t.Fatalf("bad aggregates: %+v", c)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Seed stability") {
		t.Fatal("print output missing header")
	}
}
