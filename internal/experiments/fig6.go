package experiments

import (
	"fmt"
	"io"

	"blackboxval/internal/automl"
	"blackboxval/internal/data"
	"blackboxval/internal/errorgen"
)

// Figure6Row is one bar group of Figure 6: F1 scores of all methods for
// one AutoML system at one threshold.
type Figure6Row struct {
	System    string
	Dataset   string
	Threshold float64
	F1        map[string]float64
	// RELApplicable is false for image data, where the raw-column
	// baseline cannot run (as the paper notes for auto-keras).
	RELApplicable bool
}

// Figure6Result collects all AutoML validation rows.
type Figure6Result struct {
	Rows []Figure6Row
}

// Figure6 reproduces the AutoML experiment (Section 6.3.1): black boxes
// produced by auto-sklearn- and TPOT-style searches on income, and by an
// auto-keras-style architecture search plus a fixed large convnet on
// digits, validated under mixtures of known error types.
func Figure6(scale Scale) (*Figure6Result, error) {
	result := &Figure6Result{}

	type system struct {
		name    string
		dataset string
		train   func(*data.Dataset) (data.Model, error)
	}
	cfg := automl.Config{Seed: scale.Seed, Folds: 2, HashDims: 64}
	systems := []system{
		{"auto-sklearn", "income", func(tr *data.Dataset) (data.Model, error) { return automl.AutoSklearn(tr, cfg) }},
		{"TPOT", "income", func(tr *data.Dataset) (data.Model, error) { return automl.TPOT(tr, cfg) }},
		{"auto-keras", "digits", func(tr *data.Dataset) (data.Model, error) { return automl.AutoKeras(tr, cfg) }},
		{"large-convnet", "digits", func(tr *data.Dataset) (data.Model, error) { return automl.LargeConvNet(tr, cfg) }},
	}

	for si, sys := range systems {
		seed := scale.Seed + int64(si)
		ds, err := scale.GenerateDataset(sys.dataset, seed)
		if err != nil {
			return nil, err
		}
		train, test, serving := Splits(ds, seed)
		blackBox, err := sys.train(train)
		if err != nil {
			return nil, fmt.Errorf("experiments: training %s: %w", sys.name, err)
		}
		gens := errorgen.KnownTabular()
		if sys.dataset == "digits" {
			gens = errorgen.Image()
		}
		rows, err := validationCell(scale, cellSpec{
			dataset: sys.dataset, model: sys.name, seed: seed,
			blackBox: blackBox, test: test, serving: serving,
			trainGens: gens, evalGens: gens,
		})
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			result.Rows = append(result.Rows, Figure6Row{
				System:        sys.name,
				Dataset:       sys.dataset,
				Threshold:     row.Threshold,
				F1:            row.F1,
				RELApplicable: sys.dataset != "digits",
			})
		}
	}
	return result, nil
}

// Print renders the AutoML validation table.
func (r *Figure6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: validation F1 for AutoML-trained black boxes, known error mixtures")
	fmt.Fprintf(w, "%-14s %-8s %-6s %8s %8s %8s %8s\n",
		"system", "dataset", "t", "PPM", "BBSE", "BBSE-h", "REL")
	for _, row := range r.Rows {
		rel := fmt.Sprintf("%8.3f", row.F1["REL"])
		if !row.RELApplicable {
			rel = "     n/a"
		}
		fmt.Fprintf(w, "%-14s %-8s %-6.2f %8.3f %8.3f %8.3f %s\n",
			row.System, row.Dataset, row.Threshold,
			row.F1["PPM"], row.F1["BBSE"], row.F1["BBSE-h"], rel)
	}
}
