package experiments

// LabelsBench validates the label-feedback subsystem end to end, on
// the axes the paper's open question implies once ground truth starts
// arriving late:
//
//  1. Credible-interval calibration — a deterministic lagged ramp with
//     known true accuracy; the per-window 95% Beta intervals must cover
//     the truth >= 90% of the time over >= 50 clean windows, and the
//     run is repeated on a corrupted stream (true accuracy collapses
//     while h keeps reporting the clean estimate) where the intervals
//     must track the collapsed truth, not h.
//  2. Label efficiency of active sampling — Thompson sampling over the
//     per-stratum posteriors versus the uniform baseline at the same
//     per-round budget: how many labels each policy spends before the
//     uncertain stratum's 95% interval narrows to a target width. The
//     benchmark errors out unless active needs measurably fewer.
//  3. Conformal recalibration — the online prediction interval wrapped
//     around h must hit near-nominal coverage once warm.
//  4. Cost — join throughput through Store.Ingest (rows/sec, full
//     assessment and timeline feed included) and the per-interval
//     Beta-quantile overhead, so the hot-path price of the subsystem
//     shows up in review diffs.
//
// ppm-bench serializes the result as BENCH_labels.json next to the
// pipeline/timeline/federate benchmarks.

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"blackboxval/internal/labels"
	"blackboxval/internal/linalg"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/stats"
)

// LabelsResult is the machine-readable label-feedback benchmark
// (BENCH_labels.json).
type LabelsResult struct {
	Scale string `json:"scale"`

	// Credible-interval calibration on the lagged ramp.
	CleanWindows    int     `json:"clean_windows"`
	CleanCoverage   float64 `json:"clean_coverage"`
	CorruptWindows  int     `json:"corrupt_windows"`
	CorruptCoverage float64 `json:"corrupt_coverage"`
	LagBatches      int     `json:"lag_batches"`
	MeanLagWindows  float64 `json:"mean_lag_windows"`
	FinalAbsGap     float64 `json:"final_h_abs_gap"`

	// Active sampling vs the uniform baseline.
	TargetWidth   float64 `json:"target_width"`
	ActiveLabels  int     `json:"active_labels_to_target"`
	UniformLabels int     `json:"uniform_labels_to_target"`
	LabelSavings  float64 `json:"label_savings"` // 1 - active/uniform

	// Conformal recalibration of h.
	ConformalEvaluated int64   `json:"conformal_evaluated"`
	ConformalCoverage  float64 `json:"conformal_coverage"`

	// Cost.
	JoinRows        int     `json:"join_rows"`
	JoinSeconds     float64 `json:"join_seconds"`
	JoinRowsPerSec  float64 `json:"join_rows_per_sec"`
	IntervalNanosOp float64 `json:"beta_interval_nanos_per_op"`
}

// labelsRamp drives one lagged replay against a fresh store: windows
// batches of rows at trueAcc, labels joined lag batches behind, every
// window's interval assessed the moment its labels land. h reports
// hEstimate throughout, whatever the truth does.
func labelsRamp(s *labels.Store, ts *obs.TimeSeries, rng *rand.Rand,
	windows, rows, lag int, trueAcc, hEstimate float64, idPrefix string) (covered, assessed int, err error) {
	type sent struct {
		id     string
		labels []int
		window int64
	}
	var backlog []sent
	post := func(b sent) error {
		s.Ingest([]labels.Record{{RequestID: b.id, Labels: b.labels}})
		p, ok := s.WindowPosterior(b.window)
		if !ok {
			return fmt.Errorf("experiments: window %d lost its posterior before assessment", b.window)
		}
		assessed++
		if p.Lo <= trueAcc && trueAcc <= p.Hi {
			covered++
		}
		return nil
	}
	for w := 0; w < windows; w++ {
		pred := make([]int, rows)
		labelVals := make([]int, rows)
		proba := linalg.NewMatrix(rows, 4)
		for i := range pred {
			pred[i] = rng.Intn(4)
			proba.Set(i, pred[i], 1)
			if rng.Float64() < trueAcc {
				labelVals[i] = pred[i]
			} else {
				labelVals[i] = (pred[i] + 1) % 4
			}
		}
		id := fmt.Sprintf("%s-%05d", idPrefix, w)
		rec := monitor.Record{RequestID: id, Estimate: hEstimate, Window: ts.OpenIndex()}
		s.ObserveBatch(nil, proba, rec)
		ts.Commit()
		backlog = append(backlog, sent{id: id, labels: labelVals, window: rec.Window})
		if w >= lag {
			if err := post(backlog[w-lag]); err != nil {
				return covered, assessed, err
			}
		}
	}
	for _, b := range backlog[windows-lag:] {
		if err := post(b); err != nil {
			return covered, assessed, err
		}
	}
	return covered, assessed, nil
}

// LabelsBench runs the label-feedback benchmark at the given scale.
func LabelsBench(scale Scale) (*LabelsResult, error) {
	cleanWindows, corruptWindows, rows := 60, 20, 100
	budget, targetWidth := 10, 0.30
	if scale.Name == "full" {
		cleanWindows, corruptWindows, rows = 200, 50, 200
	}
	const lag, trueAcc, corruptAcc = 3, 0.9, 0.55
	res := &LabelsResult{Scale: scale.Name, LagBatches: lag, TargetWidth: targetWidth}

	// --- 1. credible-interval calibration, clean then corrupted ---
	ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{WindowBatches: 1, Capacity: 64})
	if err != nil {
		return nil, err
	}
	store, err := labels.New(labels.Config{Timeline: ts, MaxLagWindows: 16, Seed: scale.Seed})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(scale.Seed + 41))
	covered, assessed, err := labelsRamp(store, ts, rng, cleanWindows, rows, lag, trueAcc, trueAcc, "clean")
	if err != nil {
		return nil, err
	}
	res.CleanWindows = assessed
	res.CleanCoverage = float64(covered) / float64(assessed)
	if assessed < 50 {
		return nil, fmt.Errorf("experiments: only %d clean windows assessed, need >= 50", assessed)
	}
	if res.CleanCoverage < 0.9 {
		return nil, fmt.Errorf("experiments: clean 95%% interval coverage %.3f over %d windows, need >= 0.9",
			res.CleanCoverage, assessed)
	}
	// Corrupted continuation: the model's true accuracy collapses but h
	// keeps reporting the clean estimate. The intervals must follow the
	// labels (cover corruptAcc), and the |h - labeled acc| gap must open.
	covered, assessed, err = labelsRamp(store, ts, rng, corruptWindows, rows, lag, corruptAcc, trueAcc, "corrupt")
	if err != nil {
		return nil, err
	}
	res.CorruptWindows = assessed
	res.CorruptCoverage = float64(covered) / float64(assessed)
	if res.CorruptCoverage < 0.9 {
		return nil, fmt.Errorf("experiments: corrupted-stream interval coverage %.3f, need >= 0.9 (intervals must track labels, not h)",
			res.CorruptCoverage)
	}
	snap := store.Snapshot()
	res.MeanLagWindows = snap.MeanLagWindows
	res.ConformalEvaluated = snap.Conformal.Evaluated
	res.ConformalCoverage = snap.Conformal.Coverage
	if snap.Conformal.Evaluated >= 30 && snap.Conformal.Coverage < 0.8 {
		return nil, fmt.Errorf("experiments: conformal online coverage %.3f over %d intervals, need >= 0.8",
			snap.Conformal.Coverage, snap.Conformal.Evaluated)
	}
	res.FinalAbsGap = trueAcc - corruptAcc // the designed gap; the series is asserted in internal/labels tests

	// --- 2. active sampling vs uniform at the same budget ---
	active, err := labelsToTargetWidth(scale.Seed, labels.PolicyThompson, rows, budget, targetWidth)
	if err != nil {
		return nil, err
	}
	uniform, err := labelsToTargetWidth(scale.Seed, labels.PolicyUniform, rows, budget, targetWidth)
	if err != nil {
		return nil, err
	}
	res.ActiveLabels, res.UniformLabels = active, uniform
	res.LabelSavings = 1 - float64(active)/float64(uniform)
	if active >= uniform {
		return nil, fmt.Errorf("experiments: Thompson sampling spent %d labels to reach width %.2f, uniform spent %d — active must need measurably fewer",
			active, targetWidth, uniform)
	}

	// --- 3. join throughput + assessment overhead ---
	benchTS, err := obs.NewTimeSeries(obs.TimeSeriesConfig{WindowBatches: 1, Capacity: 64})
	if err != nil {
		return nil, err
	}
	benchStore, err := labels.New(labels.Config{Timeline: benchTS, MaxPending: 4096, MaxLagWindows: 1 << 20, Seed: scale.Seed})
	if err != nil {
		return nil, err
	}
	benchBatches, benchRows := 50, 1000
	if scale.Name == "full" {
		benchBatches = 200
	}
	records := make([]labels.Record, 0, benchBatches)
	for b := 0; b < benchBatches; b++ {
		proba := linalg.NewMatrix(benchRows, 4)
		labelVals := make([]int, benchRows)
		for i := 0; i < benchRows; i++ {
			c := rng.Intn(4)
			proba.Set(i, c, 1)
			if rng.Float64() < trueAcc {
				labelVals[i] = c
			} else {
				labelVals[i] = (c + 1) % 4
			}
		}
		id := fmt.Sprintf("bench-%05d", b)
		benchStore.ObserveBatch(nil, proba, monitor.Record{RequestID: id, Estimate: trueAcc, Window: benchTS.OpenIndex()})
		benchTS.Commit()
		records = append(records, labels.Record{RequestID: id, Labels: labelVals})
	}
	start := time.Now()
	ingest := benchStore.Ingest(records)
	elapsed := time.Since(start)
	if want := int64(benchBatches * benchRows); ingest.JoinedRows != want {
		return nil, fmt.Errorf("experiments: bench joined %d rows, want %d", ingest.JoinedRows, want)
	}
	res.JoinRows = benchBatches * benchRows
	res.JoinSeconds = elapsed.Seconds()
	if s := elapsed.Seconds(); s > 0 {
		res.JoinRowsPerSec = float64(res.JoinRows) / s
	}
	const intervalOps = 20_000
	start = time.Now()
	sink := 0.0
	for i := 0; i < intervalOps; i++ {
		lo, hi := stats.BetaInterval(1+float64(i%500), 1+float64(i%37), 0.95)
		sink += lo + hi
	}
	if sink < 0 { // defeat dead-code elimination
		return nil, fmt.Errorf("experiments: impossible interval sum %v", sink)
	}
	res.IntervalNanosOp = float64(time.Since(start).Nanoseconds()) / intervalOps
	return res, nil
}

// labelsToTargetWidth serves one fixed stream where predicted class 0
// is rare (~10% of rows) and genuinely uncertain (50% accurate) while
// classes 1-3 are common and 97% accurate, then spends budget-sized
// labeling rounds under the given policy until the class-0 stratum's
// 95% credible interval narrows to the target width. Both policies see
// the identical stream and ground truth (same seeds); only the
// worklist selection differs. Returns the labels spent.
func labelsToTargetWidth(seed int64, policy string, rows, budget int, targetWidth float64) (int, error) {
	ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{WindowBatches: 1, Capacity: 64})
	if err != nil {
		return 0, err
	}
	store, err := labels.New(labels.Config{Timeline: ts, MaxPending: 4096, MaxLagWindows: 1 << 20, Seed: seed})
	if err != nil {
		return 0, err
	}
	const batches = 40
	rng := rand.New(rand.NewSource(seed + 977)) // shared stream seed: identical for both policies
	truth := map[string][]int{}
	for b := 0; b < batches; b++ {
		proba := linalg.NewMatrix(rows, 4)
		labelVals := make([]int, rows)
		for i := 0; i < rows; i++ {
			c := 1 + rng.Intn(3)
			acc := 0.97
			if rng.Float64() < 0.1 { // the rare, uncertain stratum
				c = 0
				acc = 0.5
			}
			proba.Set(i, c, 1)
			if rng.Float64() < acc {
				labelVals[i] = c
			} else {
				labelVals[i] = (c + 1) % 4
			}
		}
		id := fmt.Sprintf("as-%04d", b)
		truth[id] = labelVals
		store.ObserveBatch(nil, proba, monitor.Record{RequestID: id, Estimate: 0.9, Window: ts.OpenIndex()})
		ts.Commit()
	}

	spent := 0
	for round := 0; round < 10_000; round++ {
		if w, ok := stratumWidth(store, 0); ok && w <= targetWidth {
			return spent, nil
		}
		items := store.Worklist(budget, policy)
		if len(items) == 0 {
			return spent, fmt.Errorf("experiments: %s policy exhausted %d candidates before reaching width %.2f",
				policy, batches*rows, targetWidth)
		}
		recs := make([]labels.Record, 0, len(items))
		for _, it := range items {
			recs = append(recs, labels.Record{
				RequestID: it.RequestID,
				Rows:      []int{it.Row},
				Labels:    []int{truth[it.RequestID][it.Row]},
			})
		}
		result := store.Ingest(recs)
		spent += int(result.JoinedRows)
	}
	return spent, fmt.Errorf("experiments: %s policy never reached width %.2f", policy, targetWidth)
}

// stratumWidth returns the 95% credible-interval width of the clean
// (non-alarming) stratum for the given predicted class.
func stratumWidth(store *labels.Store, class int) (float64, bool) {
	for _, st := range store.Snapshot().Strata {
		if st.Class == class && !st.Alarming {
			return st.Hi - st.Lo, true
		}
	}
	return 0, false
}

// Print renders the human-readable label-feedback summary.
func (r *LabelsResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Label-feedback benchmark (scale=%s, lag %d batches)\n", r.Scale, r.LagBatches)
	fmt.Fprintf(w, "calibration  clean   %d windows, 95%% interval coverage %.3f\n", r.CleanWindows, r.CleanCoverage)
	fmt.Fprintf(w, "             corrupt %d windows, coverage %.3f (h frozen, truth collapsed by %.2f)\n",
		r.CorruptWindows, r.CorruptCoverage, r.FinalAbsGap)
	fmt.Fprintf(w, "             mean label lag %.2f windows\n", r.MeanLagWindows)
	fmt.Fprintf(w, "sampling     to width %.2f on the uncertain stratum: thompson %d labels, uniform %d (%.0f%% fewer)\n",
		r.TargetWidth, r.ActiveLabels, r.UniformLabels, r.LabelSavings*100)
	fmt.Fprintf(w, "conformal    %d intervals evaluated online, coverage %.3f\n", r.ConformalEvaluated, r.ConformalCoverage)
	fmt.Fprintf(w, "cost         joined %d rows in %.3fs (%.0f rows/sec), Beta interval %.0f ns/op\n",
		r.JoinRows, r.JoinSeconds, r.JoinRowsPerSec, r.IntervalNanosOp)
}
