package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tiny is a minimal scale for smoke tests: the absolute numbers are
// noisy, but every code path runs.
var tiny = Scale{
	Name:             "tiny",
	TabularRows:      900,
	ImageRows:        220,
	Repetitions:      6,
	Trials:           4,
	ValidatorBatches: 40,
	ForestSizes:      []int{20},
	Seed:             1,
}

func TestGenerateDatasetNames(t *testing.T) {
	for _, name := range []string{"income", "heart", "bank", "tweets", "digits", "fashion"} {
		ds, err := tiny.GenerateDataset(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := tiny.GenerateDataset("nope", 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestSplitsDisjointSizes(t *testing.T) {
	ds, _ := tiny.GenerateDataset("income", 1)
	train, test, serving := Splits(ds, 1)
	total := train.Len() + test.Len() + serving.Len()
	if total == 0 || train.Len() == 0 || test.Len() == 0 || serving.Len() == 0 {
		t.Fatalf("degenerate splits: %d/%d/%d", train.Len(), test.Len(), serving.Len())
	}
	// Balanced upstream: classes roughly equal in the training split.
	counts := train.ClassCounts()
	if math.Abs(float64(counts[0]-counts[1])) > float64(train.Len())/4 {
		t.Fatalf("training split imbalanced: %v", counts)
	}
}

func TestTrainModelNames(t *testing.T) {
	ds, _ := tiny.GenerateDataset("income", 1)
	train, _, _ := Splits(ds, 1)
	for _, name := range []string{"lr", "xgb"} {
		if _, err := tiny.TrainModel(name, train, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := tiny.TrainModel("nope", train, 1); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestFigure2Smoke(t *testing.T) {
	res, err := Figure2(tiny, "lr")
	if err != nil {
		t.Fatal(err)
	}
	if res.Panel != "a" || len(res.Rows) != 4 {
		t.Fatalf("panel %s with %d rows", res.Panel, len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.AbsErrors) != tiny.Trials {
			t.Fatalf("row %s has %d trials", row.Dataset, len(row.AbsErrors))
		}
		if row.MedianAE < 0 || row.MedianAE > 0.5 {
			t.Fatalf("implausible median abs error %v for %s", row.MedianAE, row.Dataset)
		}
		if row.TestScore < 0.6 {
			t.Fatalf("black box too weak on %s: %v", row.Dataset, row.TestScore)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 2(a)") {
		t.Fatal("print output missing header")
	}
}

func TestFigure2UnknownModel(t *testing.T) {
	if _, err := Figure2(tiny, "nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFigure4Smoke(t *testing.T) {
	small := tiny
	small.Trials = 3
	res, err := Figure4(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != len(Figure4Sizes) {
			t.Fatalf("%s/%s: %d points", s.Dataset, s.Model, len(s.Points))
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "|Dtest|") {
		t.Fatal("print output missing header")
	}
}

func TestValidationKnownSmoke(t *testing.T) {
	res, err := ValidationKnown(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 27 { // 3 datasets x 3 models x 3 thresholds
		t.Fatalf("rows = %d, want 27", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, m := range Methods {
			f1 := row.F1[m]
			if f1 < 0 || f1 > 1 || math.IsNaN(f1) {
				t.Fatalf("invalid F1 %v for %s", f1, m)
			}
		}
	}
	wins := res.WinsByMethod()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total < len(res.Rows) {
		t.Fatalf("wins don't cover rows: %v", wins)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "known") {
		t.Fatal("print output missing header")
	}
}

func TestAblationPercentileStepSmoke(t *testing.T) {
	res, err := AblationPercentileStep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "percentile-step") {
		t.Fatal("print output missing study name")
	}
}

func TestAblationKSFeaturesSmoke(t *testing.T) {
	res, err := AblationKSFeatures(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestFigure3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 3 trains 9 models")
	}
	res, err := Figure3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Linear) != len(Figure3Fractions) || len(res.Nonlinear) != len(Figure3Fractions) {
		t.Fatal("wrong number of points")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "nonlinear") {
		t.Fatal("print output missing series")
	}
}

func TestFigure7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 7 spins up HTTP servers and AutoML searches")
	}
	res, err := Figure7(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if s.MAE < 0 || s.MAE > 0.3 {
			t.Fatalf("%s: implausible cloud MAE %v", s.Dataset, s.MAE)
		}
		if len(s.Points) != tiny.Trials {
			t.Fatalf("%s: %d points", s.Dataset, len(s.Points))
		}
	}
}

func TestFigure6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 6 runs AutoML searches including convnets")
	}
	res, err := Figure6(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 { // 4 systems x 3 thresholds
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Dataset == "digits" && row.RELApplicable {
			t.Fatal("REL should be n/a on image data")
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "n/a") {
		t.Fatal("print output should mark REL n/a for images")
	}
}
