package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"blackboxval/internal/core"
	"blackboxval/internal/data"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/models"
	"blackboxval/internal/stats"
)

// AblationRow records predictor quality for one configuration variant.
type AblationRow struct {
	Variant string
	MAE     float64
	P90     float64
}

// AblationResult collects one ablation study over the design choices
// called out in DESIGN.md.
type AblationResult struct {
	Study string
	Rows  []AblationRow
}

// ablationVariant names a way of building a performance predictor.
type ablationVariant struct {
	name string
	make func(test *data.Dataset, blackBox data.Model) (*core.Predictor, error)
}

// runPredictorAblation trains the income lr black box once, then measures
// each predictor variant's MAE over the same corrupted serving trials.
func runPredictorAblation(scale Scale, study string, variants []ablationVariant) (*AblationResult, error) {
	ds, err := scale.GenerateDataset("income", scale.Seed)
	if err != nil {
		return nil, err
	}
	train, test, serving := Splits(ds, scale.Seed)
	blackBox, err := scale.TrainModel("lr", train, scale.Seed)
	if err != nil {
		return nil, err
	}

	result := &AblationResult{Study: study}
	for _, v := range variants {
		pred, err := v.make(test, blackBox)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation variant %s: %w", v.name, err)
		}
		rng := rand.New(rand.NewSource(scale.Seed + 800))
		mixture := errorgen.Mixture{Generators: errorgen.KnownTabular()}
		var absErrs []float64
		for trial := 0; trial < scale.Trials; trial++ {
			batch := mixture.Corrupt(serving, rng.Float64(), rng)
			proba := blackBox.PredictProba(batch)
			truth := core.AccuracyScore(proba, batch.Labels)
			absErrs = append(absErrs, math.Abs(pred.EstimateFromProba(proba)-truth))
		}
		result.Rows = append(result.Rows, AblationRow{
			Variant: v.name,
			MAE:     stats.Mean(absErrs),
			P90:     stats.Percentile(absErrs, 90),
		})
	}
	return result, nil
}

// AblationPercentileStep varies the granularity of the output featurizer:
// the paper's 5%-step percentile grid vs. coarser alternatives.
func AblationPercentileStep(scale Scale) (*AblationResult, error) {
	var variants []ablationVariant
	for _, step := range []float64{5, 10, 25, 50} {
		step := step
		variants = append(variants, ablationVariant{
			name: fmt.Sprintf("step=%g", step),
			make: func(test *data.Dataset, bb data.Model) (*core.Predictor, error) {
				return core.TrainPredictor(bb, test, core.PredictorConfig{
					Generators:     errorgen.KnownTabular(),
					Repetitions:    scale.Repetitions,
					PercentileStep: step,
					ForestSizes:    scale.ForestSizes,
					Workers:        scale.Workers,
					Seed:           scale.Seed,
				})
			},
		})
	}
	return runPredictorAblation(scale, "percentile-step", variants)
}

// AblationRegressor compares the paper's random forest regressor against
// a gradient-boosted regressor as the performance predictor h.
func AblationRegressor(scale Scale) (*AblationResult, error) {
	variants := []ablationVariant{
		{
			name: "random-forest",
			make: func(test *data.Dataset, bb data.Model) (*core.Predictor, error) {
				return core.TrainPredictor(bb, test, core.PredictorConfig{
					Generators:  errorgen.KnownTabular(),
					Repetitions: scale.Repetitions,
					ForestSizes: scale.ForestSizes,
					Workers:     scale.Workers,
					Seed:        scale.Seed,
				})
			},
		},
		{
			name: "gbdt-regressor",
			make: func(test *data.Dataset, bb data.Model) (*core.Predictor, error) {
				return core.TrainPredictor(bb, test, core.PredictorConfig{
					Generators:  errorgen.KnownTabular(),
					Repetitions: scale.Repetitions,
					Regressor:   &models.GBDTRegressor{Trees: 80, Seed: scale.Seed},
					Workers:     scale.Workers,
					Seed:        scale.Seed,
				})
			},
		},
	}
	return runPredictorAblation(scale, "regressor", variants)
}

// AblationTrainingSize varies the number of corrupted datasets per error
// type used to train the performance predictor.
func AblationTrainingSize(scale Scale) (*AblationResult, error) {
	var variants []ablationVariant
	for _, reps := range []int{5, 15, 50, 100} {
		reps := reps
		variants = append(variants, ablationVariant{
			name: fmt.Sprintf("reps=%d", reps),
			make: func(test *data.Dataset, bb data.Model) (*core.Predictor, error) {
				return core.TrainPredictor(bb, test, core.PredictorConfig{
					Generators:  errorgen.KnownTabular(),
					Repetitions: reps,
					ForestSizes: scale.ForestSizes,
					Workers:     scale.Workers,
					Seed:        scale.Seed,
				})
			},
		})
	}
	return runPredictorAblation(scale, "training-size", variants)
}

// AblationKSFeatures measures the validator with and without its
// hypothesis-test features. Rows report 1-F1 in the MAE column so that
// lower is better, consistent with the other studies.
func AblationKSFeatures(scale Scale) (*AblationResult, error) {
	ds, err := scale.GenerateDataset("income", scale.Seed)
	if err != nil {
		return nil, err
	}
	train, test, serving := Splits(ds, scale.Seed)
	blackBox, err := scale.TrainModel("lr", train, scale.Seed)
	if err != nil {
		return nil, err
	}
	testScore := core.AccuracyScore(blackBox.PredictProba(test), test.Labels)

	result := &AblationResult{Study: "ks-features (values are 1-F1)"}
	for _, disable := range []bool{false, true} {
		validator, err := core.TrainValidator(blackBox, test, core.ValidatorConfig{
			Generators:        errorgen.KnownTabular(),
			Threshold:         0.05,
			Batches:           scale.ValidatorBatches,
			DisableKSFeatures: disable,
			Workers:           scale.Workers,
			Seed:              scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(scale.Seed + 900))
		mixture := errorgen.Mixture{Generators: errorgen.KnownTabular()}
		var pred, truth []int
		for trial := 0; trial < scale.Trials*2; trial++ {
			batch := serving
			if trial%4 != 0 {
				batch = mixture.Corrupt(serving, rng.Float64(), rng)
			}
			proba := blackBox.PredictProba(batch)
			tv := 0
			if core.AccuracyScore(proba, batch.Labels) < (1-0.05)*testScore {
				tv = 1
			}
			pv := 0
			if validator.ViolationFromProba(proba) {
				pv = 1
			}
			truth = append(truth, tv)
			pred = append(pred, pv)
		}
		name := "with-ks"
		if disable {
			name = "without-ks"
		}
		result.Rows = append(result.Rows, AblationRow{
			Variant: name,
			MAE:     1 - stats.F1Score(pred, truth, 1),
		})
	}
	return result, nil
}

// Print renders the ablation table.
func (r *AblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation (%s):\n", r.Study)
	fmt.Fprintf(w, "%-20s %10s %10s\n", "variant", "MAE", "p90")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-20s %10.4f %10.4f\n", row.Variant, row.MAE, row.P90)
	}
}
