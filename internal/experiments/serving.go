package experiments

// ServingBench measures the gateway's serving hot path under the SLO
// observatory (DESIGN.md §15): a canned-response backend isolates the
// proxy + shadow-tap overhead from model compute, a fixed number of
// batches is pushed through a real gateway over HTTP, and the result
// reports the per-stage latency quantiles (p50/p99/p999 straight from
// the observatory's mergeable histograms), end-to-end throughput
// (requests/sec and rows/sec), and the allocation cost per request —
// client-visible allocs/op via testing.Benchmark plus the gateway's
// own alloc-bytes-per-request gauge. ppm-bench serializes the result
// as BENCH_serving.json so hot-path latency or allocation regressions
// show up in review diffs like the pipeline timings do.

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"blackboxval/internal/cloud"
	"blackboxval/internal/core"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/gateway"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
)

// ServingStageLatency is one stage row of the serving benchmark:
// quantiles in milliseconds from the SLO observatory's histogram.
type ServingStageLatency struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// ServingResult is the machine-readable serving benchmark
// (BENCH_serving.json).
type ServingResult struct {
	Scale        string `json:"scale"`
	Dataset      string `json:"dataset"`
	Model        string `json:"model"`
	Batches      int    `json:"batches"`
	RowsPerBatch int    `json:"rows_per_batch"`

	BudgetSeconds float64 `json:"budget_seconds"`
	Target        float64 `json:"target"`
	OverBudget    int64   `json:"over_budget"`
	BurnFast      float64 `json:"burn_fast"`
	BurnSlow      float64 `json:"burn_slow"`

	TotalSeconds   float64 `json:"total_seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	RowsPerSec     float64 `json:"rows_per_sec"`

	// Client-visible per-request cost measured by testing.Benchmark
	// over the same gateway (includes HTTP client overhead).
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Server-side heap bytes per proxied request, from the gateway's
	// ppm_serving_alloc_bytes_per_req gauge (process-wide TotalAlloc
	// delta sampled at SLO window close).
	ServerAllocBytesPerReq float64 `json:"server_alloc_bytes_per_req"`

	// Trace is the distributed-tracing overhead split (DESIGN.md §16):
	// the same request posted with a head-sampled vs an unsampled
	// traceparent, so the span-creation cost and the propagate-only
	// baseline are separable in review diffs.
	Trace *ServingTraceOverhead `json:"trace,omitempty"`

	Stages []ServingStageLatency `json:"stages"`
}

// ServingTraceOverhead compares the gateway hot path under sampled
// (spans created, ring + journal fed) and unsampled (headers
// propagated, no spans) traceparent flags.
type ServingTraceOverhead struct {
	SampledReqPerSec     float64 `json:"sampled_req_per_sec"`
	SampledAllocsPerOp   int64   `json:"sampled_allocs_per_op"`
	UnsampledReqPerSec   float64 `json:"unsampled_req_per_sec"`
	UnsampledAllocsPerOp int64   `json:"unsampled_allocs_per_op"`
}

// ServingBench runs the serving hot-path benchmark at the given scale.
func ServingBench(scale Scale) (*ServingResult, error) {
	rows, batches := 100, 256
	switch scale.Name {
	case "quick": // defaults above
	case "full":
		rows, batches = 200, 2048
	default: // trimmed scales used by tests
		rows, batches = 40, 48
	}
	res := &ServingResult{
		Scale: scale.Name, Dataset: "income", Model: "lr",
		Batches: batches, RowsPerBatch: rows,
	}

	ds, err := scale.GenerateDataset("income", scale.Seed)
	if err != nil {
		return nil, err
	}
	train, test, serving := Splits(ds, scale.Seed)
	model, err := scale.TrainModel("lr", train, scale.Seed)
	if err != nil {
		return nil, err
	}
	pred, err := core.TrainPredictor(model, test, core.PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: scale.Repetitions,
		ForestSizes: scale.ForestSizes,
		Workers:     scale.Workers,
		Seed:        scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	mon, err := monitor.New(monitor.Config{Predictor: pred, Threshold: 0.05})
	if err != nil {
		return nil, err
	}

	batch := serving
	if serving.Len() > rows {
		idx := make([]int, rows)
		for i := range idx {
			idx[i] = i
		}
		batch = serving.SelectRows(idx)
	}
	res.RowsPerBatch = batch.Len()
	reqBody, err := cloud.EncodeRequest(batch)
	if err != nil {
		return nil, err
	}
	// Canned response: the real model's output for the batch, serialized
	// once, so the backend costs one write per request and the measured
	// latency is the gateway hop itself (bench_test.go's protocol).
	probe := httptest.NewServer(cloud.NewServer(model).Handler())
	probeResp, err := http.Post(probe.URL+"/predict_proba", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		probe.Close()
		return nil, err
	}
	canned, err := io.ReadAll(probeResp.Body)
	probeResp.Body.Close()
	probe.Close()
	if err != nil {
		return nil, err
	}
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Write(canned)
	}))
	defer backend.Close()

	g, err := gateway.New(gateway.Config{
		Backend: backend.URL,
		Monitor: mon,
		Logger:  log.New(io.Discard, "", 0),
	})
	if err != nil {
		return nil, err
	}
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(id string) error {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/predict_proba", bytes.NewReader(reqBody))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if id != "" {
			req.Header.Set(obs.RequestIDHeader, id)
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("experiments: serving bench request returned %d", resp.StatusCode)
		}
		return nil
	}

	for i := 0; i < 8; i++ { // warmup: transport setup, first-hit paths
		if err := post(""); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	for i := 0; i < batches; i++ {
		if err := post(fmt.Sprintf("bench-%06d", i)); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start).Seconds()
	res.TotalSeconds = elapsed
	if elapsed > 0 {
		res.RequestsPerSec = float64(batches) / elapsed
		res.RowsPerSec = float64(batches*batch.Len()) / elapsed
	}

	// Allocation cost per request, measured by the stdlib benchmark
	// harness over the same live gateway. Runs after the timed loop so
	// the throughput numbers above cover exactly `batches` requests.
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := post(""); err != nil {
				b.Fatal(err)
			}
		}
	})
	res.NsPerOp = br.NsPerOp()
	res.AllocsPerOp = br.AllocsPerOp()
	res.BytesPerOp = br.AllocedBytesPerOp()

	// Tracing overhead: the same request with an explicit traceparent,
	// sampled flag on vs off. The client pins the head-sampling verdict
	// (the gateway honors incoming flags), so the two loops isolate the
	// span-creation cost from the propagate-only baseline. Trace ids
	// still vary per request via the deterministic derivation to keep
	// the ring realistic.
	var traceSeq uint64
	postTraced := func(flags byte) error {
		traceSeq++
		tc := obs.TraceContext{
			TraceID: obs.DeriveTraceID(uint64(scale.Seed), traceSeq),
			SpanID:  obs.SpanID{1},
			Flags:   flags,
		}
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/predict_proba", bytes.NewReader(reqBody))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("experiments: traced bench request returned %d", resp.StatusCode)
		}
		return nil
	}
	overhead := &ServingTraceOverhead{}
	for _, mode := range []struct {
		flags byte
		rps   *float64
		aop   *int64
	}{
		{obs.FlagSampled, &overhead.SampledReqPerSec, &overhead.SampledAllocsPerOp},
		{0, &overhead.UnsampledReqPerSec, &overhead.UnsampledAllocsPerOp},
	} {
		tb := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := postTraced(mode.flags); err != nil {
					b.Fatal(err)
				}
			}
		})
		if ns := tb.NsPerOp(); ns > 0 {
			*mode.rps = 1e9 / float64(ns)
		}
		*mode.aop = tb.AllocsPerOp()
	}
	res.Trace = overhead

	// Let the shadow worker drain so monitor_observe has its rows.
	deadline := time.Now().Add(15 * time.Second)
	for g.ShadowObserved() < int64(batches) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	doc := g.SLO()
	res.BudgetSeconds = doc.BudgetSeconds
	res.Target = doc.Target
	res.OverBudget = doc.OverBudget
	res.BurnFast = doc.BurnFast
	res.BurnSlow = doc.BurnSlow
	res.ServerAllocBytesPerReq = doc.AllocBytesPerReq
	for _, s := range doc.Stages {
		res.Stages = append(res.Stages, ServingStageLatency{
			Stage: s.Stage, Count: s.Count,
			P50Ms:  s.P50 * 1e3,
			P99Ms:  s.P99 * 1e3,
			P999Ms: s.P999 * 1e3,
			MaxMs:  s.Max * 1e3,
		})
	}
	return res, nil
}

// Print renders the human-readable serving benchmark summary.
func (r *ServingResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Serving SLO benchmark (scale=%s, %s/%s, %d batches x %d rows)\n",
		r.Scale, r.Dataset, r.Model, r.Batches, r.RowsPerBatch)
	fmt.Fprintf(w, "%-16s %8s %10s %10s %10s %10s\n", "stage", "count", "p50 ms", "p99 ms", "p999 ms", "max ms")
	for _, s := range r.Stages {
		fmt.Fprintf(w, "%-16s %8d %10.3f %10.3f %10.3f %10.3f\n",
			s.Stage, s.Count, s.P50Ms, s.P99Ms, s.P999Ms, s.MaxMs)
	}
	fmt.Fprintf(w, "throughput  %d requests in %.3fs -> %.0f req/sec, %.0f rows/sec\n",
		r.Batches, r.TotalSeconds, r.RequestsPerSec, r.RowsPerSec)
	fmt.Fprintf(w, "allocation  %d allocs/op, %d B/op, %.3fms/op client-visible; %.0f server alloc bytes/req\n",
		r.AllocsPerOp, r.BytesPerOp, float64(r.NsPerOp)/1e6, r.ServerAllocBytesPerReq)
	if r.Trace != nil {
		fmt.Fprintf(w, "tracing     sampled %d allocs/op at %.0f req/sec, unsampled %d allocs/op at %.0f req/sec\n",
			r.Trace.SampledAllocsPerOp, r.Trace.SampledReqPerSec,
			r.Trace.UnsampledAllocsPerOp, r.Trace.UnsampledReqPerSec)
	}
	fmt.Fprintf(w, "slo         budget %.0fms target %.2f, over-budget %d, burn fast %.2f slow %.2f\n",
		r.BudgetSeconds*1e3, r.Target, r.OverBudget, r.BurnFast, r.BurnSlow)
}
