package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestFederateBench(t *testing.T) {
	scale := Quick
	scale.Seed = 1
	res, err := FederateBench(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quantiles) != 4 {
		t.Fatalf("quantile table has %d rows, want 4: %+v", len(res.Quantiles), res.Quantiles)
	}
	for _, row := range res.Quantiles {
		// FederateBench itself errors on a nonzero delta; belt and braces.
		if row.MergedDelta != 0 {
			t.Fatalf("q=%g: merged != single (delta %g)", row.Q, row.MergedDelta)
		}
		// The log-bucket sketch guarantees a small relative error.
		if row.RelativeErr > 0.02 {
			t.Fatalf("q=%g: sketch error %.4f exceeds 2%%", row.Q, row.RelativeErr)
		}
	}
	if res.DocsPerSec <= 0 || res.WindowsPerSec <= 0 || res.DocBytes == 0 {
		t.Fatalf("ingest stats missing: %+v", res)
	}
	if len(res.ShardP99s) != res.Shards || res.FleetP99 <= 0 || res.MaxShardP99 < res.FleetP99 {
		// Max over shards can never be below the fleet quantile of the
		// union stream's upper shard; on the skewed fleet it is above it.
		t.Fatalf("skew stats inconsistent: %+v", res)
	}

	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"merged_minus_single", "docs_per_sec", "fleet_p99", "max_shard_p99"} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("JSON missing %q: %s", key, buf)
		}
	}

	var out bytes.Buffer
	res.Print(&out)
	if !strings.Contains(out.String(), "docs/sec") || !strings.Contains(out.String(), "fleet p99") {
		t.Fatalf("text report incomplete: %s", out.String())
	}
}
