package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestLabelsBench(t *testing.T) {
	scale := Quick
	scale.Seed = 1
	res, err := LabelsBench(scale)
	if err != nil {
		t.Fatal(err)
	}
	// The hard acceptance bars are enforced inside LabelsBench (it
	// returns an error when violated); re-check the headline numbers so
	// a silently weakened assertion shows up here too.
	if res.CleanWindows < 50 || res.CleanCoverage < 0.9 {
		t.Fatalf("clean coverage %.3f over %d windows, want >= 0.9 over >= 50", res.CleanCoverage, res.CleanWindows)
	}
	if res.CorruptCoverage < 0.9 {
		t.Fatalf("corrupted-stream coverage %.3f, want >= 0.9", res.CorruptCoverage)
	}
	if res.ActiveLabels >= res.UniformLabels || res.LabelSavings <= 0 {
		t.Fatalf("active sampling spent %d labels vs uniform %d — must be measurably fewer", res.ActiveLabels, res.UniformLabels)
	}
	if res.MeanLagWindows < 1 {
		t.Fatalf("mean label lag %.2f windows, the lag-%d ramp must register as late", res.MeanLagWindows, res.LagBatches)
	}
	if res.JoinRowsPerSec <= 0 || res.IntervalNanosOp <= 0 {
		t.Fatalf("cost stats missing: %+v", res)
	}

	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"clean_coverage", "active_labels_to_target", "join_rows_per_sec", "conformal_coverage"} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("JSON missing %q: %s", key, buf)
		}
	}

	var out bytes.Buffer
	res.Print(&out)
	for _, want := range []string{"interval coverage", "thompson", "rows/sec"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("text report missing %q: %s", want, out.String())
		}
	}
}

// TestLabelsBenchDeterministicSampling pins that the active-vs-uniform
// comparison is reproducible: same seed, same label counts.
func TestLabelsBenchDeterministicSampling(t *testing.T) {
	a, err := labelsToTargetWidth(7, "ts", 100, 10, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := labelsToTargetWidth(7, "ts", 100, 10, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Thompson label spend not deterministic under a fixed seed: %d vs %d", a, b)
	}
}
