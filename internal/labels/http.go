package labels

// http.go is the subsystem's wire surface, mounted under /labels on
// the gateway and monitor muxes:
//
//	POST /labels           -> ingest {"records":[{request_id, rows?, labels}]}
//	GET  /labels/requests  -> budgeted worklist (?budget=N&policy=ts|uniform)
//	GET  /labels/status    -> Snapshot JSON
//
// The ingest decoder is bounded and strict (size cap, record caps, no
// trailing garbage) — it is the fuzz target FuzzLabelsDecode hardens.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"blackboxval/internal/obs"
)

const (
	// MaxBodyBytes bounds one POST /labels body.
	MaxBodyBytes = 4 << 20
	// maxRecords bounds the records in one ingest call.
	maxRecords = 10000
	// maxRowsPerRecord bounds one record's label vector.
	maxRowsPerRecord = 100000
	// maxWorklist bounds one GET /labels/requests response.
	maxWorklist = 10000
)

// IngestRequest is the POST /labels body.
type IngestRequest struct {
	Records []Record `json:"records"`
}

// DecodeIngest parses and validates one ingest body. It enforces the
// record and row caps and rejects trailing data, so a malformed or
// adversarial body cannot balloon the join state.
func DecodeIngest(r io.Reader) (*IngestRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxBodyBytes))
	var req IngestRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("labels: decoding body: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("labels: trailing data after request object")
	}
	if len(req.Records) == 0 {
		return nil, fmt.Errorf("labels: no records")
	}
	if len(req.Records) > maxRecords {
		return nil, fmt.Errorf("labels: %d records exceeds the cap %d", len(req.Records), maxRecords)
	}
	for i, rec := range req.Records {
		if rec.RequestID == "" {
			return nil, fmt.Errorf("labels: record %d: request_id is required", i)
		}
		if len(rec.Labels) == 0 {
			return nil, fmt.Errorf("labels: record %d: labels are required", i)
		}
		if len(rec.Labels) > maxRowsPerRecord {
			return nil, fmt.Errorf("labels: record %d: %d labels exceeds the cap %d", i, len(rec.Labels), maxRowsPerRecord)
		}
		if rec.Rows != nil && len(rec.Rows) != len(rec.Labels) {
			return nil, fmt.Errorf("labels: record %d: %d rows vs %d labels", i, len(rec.Rows), len(rec.Labels))
		}
	}
	return &req, nil
}

// Handler serves the subsystem. It accepts paths both with and without
// the /labels prefix, so it works mounted via mux.Handle("/labels",
// h) + mux.Handle("/labels/", h) or standalone in tests.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimPrefix(r.URL.Path, "/labels")
		switch path {
		case "", "/":
			s.handleIngest(w, r)
		case "/requests":
			s.handleRequests(w, r)
		case "/status":
			s.handleStatus(w, r)
		default:
			http.NotFound(w, r)
		}
	})
}

func (s *Store) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Label joins are traced like any other hop: a labeling system that
	// posts ground truth with a sampled traceparent gets a label_join
	// span in its waterfall, with the joined/buffered split attached.
	var span *obs.Span
	if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
		if tc, err := obs.ParseTraceparent(tp); err == nil && tc.Sampled() {
			_, span = obs.StartSpan(obs.ContextWithTrace(r.Context(), tc), "label_join")
			defer span.End()
		}
	}
	req, err := DecodeIngest(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res := s.Ingest(req.Records)
	if span != nil {
		span.SetMetric("posted", float64(res.Posted))
		span.SetMetric("joined_rows", float64(res.JoinedRows))
		span.SetMetric("buffered", float64(res.Buffered))
	}
	writeJSON(w, res)
}

func (s *Store) handleRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	budget := 100
	if b := r.URL.Query().Get("budget"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v <= 0 {
			http.Error(w, "invalid budget", http.StatusBadRequest)
			return
		}
		budget = v
	}
	if budget > maxWorklist {
		budget = maxWorklist
	}
	policy := r.URL.Query().Get("policy")
	switch policy {
	case "", PolicyThompson, PolicyUniform:
	default:
		http.Error(w, fmt.Sprintf("unknown policy %q (want %s or %s)", policy, PolicyThompson, PolicyUniform), http.StatusBadRequest)
		return
	}
	items := s.Worklist(budget, policy)
	if items == nil {
		items = []WorkItem{}
	}
	writeJSON(w, map[string]any{"requests": items})
}

func (s *Store) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
