package labels

import (
	"math"
	"math/rand"
	"testing"

	"blackboxval/internal/linalg"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/stats"
)

// newTestStore builds a store over a fresh one-batch-per-window
// timeline.
func newTestStore(t *testing.T, cfg Config) (*Store, *obs.TimeSeries) {
	t.Helper()
	ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{Capacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Timeline = ts
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, ts
}

// probaFor builds a proba matrix whose argmax per row follows pred.
func probaFor(pred []int, classes int) *linalg.Matrix {
	m := linalg.NewMatrix(len(pred), classes)
	for i, c := range pred {
		for j := 0; j < classes; j++ {
			m.Set(i, j, 0.1)
		}
		m.Set(i, c, 0.8)
	}
	return m
}

// serve mimics the monitor's observation path: stamp the open window,
// observe, commit the timeline (closing the window in the default
// one-batch-per-window config).
func serve(s *Store, ts *obs.TimeSeries, id string, pred []int, estimate float64, alarming bool) monitor.Record {
	rec := monitor.Record{
		RequestID: id,
		Size:      len(pred),
		Estimate:  estimate,
		Alarming:  alarming,
		Window:    ts.OpenIndex(),
	}
	s.ObserveBatch(nil, probaFor(pred, 4), rec)
	ts.Commit()
	return rec
}

func TestJoinIdempotency(t *testing.T) {
	s, ts := newTestStore(t, Config{})
	serve(s, ts, "req-1", []int{0, 1, 2, 3}, 0.8, false)

	res := s.Ingest([]Record{{RequestID: "req-1", Labels: []int{0, 1, 0, 3}}})
	if res.JoinedRows != 4 || res.Duplicates != 0 {
		t.Fatalf("first join: %+v", res)
	}
	snapBefore := s.Snapshot()

	// Duplicate post: idempotent no-op, posterior untouched.
	res = s.Ingest([]Record{{RequestID: "req-1", Labels: []int{0, 1, 0, 3}}})
	if res.JoinedRows != 0 || res.Duplicates != 4 {
		t.Fatalf("duplicate join: %+v", res)
	}
	snapAfter := s.Snapshot()
	if snapAfter.Overall != snapBefore.Overall || snapAfter.RowsLabeled != snapBefore.RowsLabeled {
		t.Fatalf("duplicate post moved the posterior: %+v vs %+v", snapAfter.Overall, snapBefore.Overall)
	}

	// Unknown id: buffered, then joined when the batch shows up.
	res = s.Ingest([]Record{{RequestID: "req-2", Labels: []int{1, 1}}})
	if res.Buffered != 1 || res.JoinedRows != 0 {
		t.Fatalf("unknown id: %+v", res)
	}
	serve(s, ts, "req-2", []int{1, 0}, 0.8, false)
	snap := s.Snapshot()
	if snap.RowsLabeled != 6 {
		t.Fatalf("buffered labels did not join on arrival: %+v", snap)
	}
	if snap.PendingPosts != 0 {
		t.Fatalf("pending buffer not drained: %+v", snap)
	}
	if snap.RowsCorrect != 3+1 { // req-1: rows 0,1,3 correct; req-2: row 0 correct
		t.Fatalf("rows correct = %d, want 4", snap.RowsCorrect)
	}
}

func TestJoinLateBeyondLag(t *testing.T) {
	s, ts := newTestStore(t, Config{MaxLagWindows: 3})
	serve(s, ts, "req-old", []int{0, 0}, 0.8, false) // served in window 0
	// Advance to open window 3: lag exactly at the horizon.
	for i := 0; i < 2; i++ {
		serve(s, ts, "", []int{0}, 0.8, false)
	}
	res := s.Ingest([]Record{{RequestID: "req-old", Labels: []int{0, 0}}})
	if res.JoinedRows != 2 {
		t.Fatalf("join at the horizon edge: %+v", res)
	}

	serve(s, ts, "req-stale", []int{0, 0}, 0.8, false) // window 3
	// Three more windows: open index reaches 7, one past the horizon,
	// while the batch itself was still retained at the last observation.
	for i := 0; i < 3; i++ {
		serve(s, ts, "", []int{0}, 0.8, false)
	}
	res = s.Ingest([]Record{{RequestID: "req-stale", Labels: []int{0, 0}}})
	if res.DroppedLate != 2 || res.JoinedRows != 0 {
		t.Fatalf("late-beyond-lag post not dropped: %+v", res)
	}

	// One window further the batch is evicted outright: labels for it
	// are indistinguishable from unknown ids and land in the buffer.
	serve(s, ts, "", []int{0}, 0.8, false)
	res = s.Ingest([]Record{{RequestID: "req-stale", Labels: []int{0, 0}}})
	if res.Buffered != 1 {
		t.Fatalf("labels for evicted batch: %+v", res)
	}

	// Buffered posts expire on the same horizon: the served batches
	// above also advanced the clock past req-never's arrival.
	s.Ingest([]Record{{RequestID: "req-never", Labels: []int{0}}})
	for i := 0; i < 5; i++ {
		serve(s, ts, "x", []int{0}, 0.8, false) // dup id after first: ignored for join, still expires buffers
	}
	if snap := s.Snapshot(); snap.Counters.DroppedPending == 0 {
		t.Fatalf("expired buffered post not counted: %+v", snap.Counters)
	}
}

func TestPartialThenFullJoin(t *testing.T) {
	s, ts := newTestStore(t, Config{})
	serve(s, ts, "req-1", []int{0, 1, 2, 3}, 0.8, false)
	res := s.Ingest([]Record{{RequestID: "req-1", Rows: []int{1, 3}, Labels: []int{1, 0}}})
	if res.JoinedRows != 2 {
		t.Fatalf("partial join: %+v", res)
	}
	// Full-batch post afterwards: the two already labeled rows are
	// idempotent duplicates, the other two join.
	res = s.Ingest([]Record{{RequestID: "req-1", Labels: []int{0, 1, 2, 3}}})
	if res.JoinedRows != 2 || res.Duplicates != 2 {
		t.Fatalf("full-after-partial join: %+v", res)
	}
	snap := s.Snapshot()
	if snap.RowsLabeled != 4 || snap.Coverage != 1 {
		t.Fatalf("coverage after full join: %+v", snap)
	}
}

func TestInvalidRecords(t *testing.T) {
	s, ts := newTestStore(t, Config{})
	serve(s, ts, "req-1", []int{0, 1}, 0.8, false)
	res := s.Ingest([]Record{
		{RequestID: "req-1", Rows: []int{5}, Labels: []int{0}},  // row out of range
		{RequestID: "req-1", Rows: []int{0}, Labels: []int{-2}}, // negative label
		{RequestID: "", Labels: []int{0}},                       // no id
		{RequestID: "req-1", Rows: []int{0, 1}, Labels: []int{0}},
	})
	if res.JoinedRows != 0 {
		t.Fatalf("invalid rows joined: %+v", res)
	}
	if res.Invalid == 0 {
		t.Fatalf("invalid rows not counted: %+v", res)
	}
}

func TestPosteriorMatchesExactConjugate(t *testing.T) {
	s, ts := newTestStore(t, Config{})
	rng := rand.New(rand.NewSource(3))
	n, correct := 0, 0
	for b := 0; b < 20; b++ {
		pred := make([]int, 50)
		labelVals := make([]int, 50)
		for i := range pred {
			pred[i] = rng.Intn(4)
			if rng.Float64() < 0.85 {
				labelVals[i] = pred[i]
				correct++
			} else {
				labelVals[i] = (pred[i] + 1) % 4
			}
			n++
		}
		id := string(rune('a' + b))
		serve(s, ts, id, pred, 0.85, false)
		s.Ingest([]Record{{RequestID: id, Labels: labelVals}})
	}
	snap := s.Snapshot()
	a, bb := 1+float64(correct), 1+float64(n-correct)
	wantLo, wantHi := stats.BetaInterval(a, bb, 0.95)
	if snap.Overall.Labeled != int64(n) || snap.Overall.Correct != int64(correct) {
		t.Fatalf("tallies: %+v, want %d/%d", snap.Overall, correct, n)
	}
	if math.Abs(snap.Overall.Mean-stats.BetaMean(a, bb)) > 1e-12 ||
		math.Abs(snap.Overall.Lo-wantLo) > 1e-12 || math.Abs(snap.Overall.Hi-wantHi) > 1e-12 {
		t.Fatalf("posterior %+v disagrees with exact conjugate Beta(%v,%v)", snap.Overall, a, bb)
	}
}

func TestConformalRanks(t *testing.T) {
	c := newConformal(0.2, 16, 5)
	if _, _, ok := c.interval(0.5); ok {
		t.Fatal("interval emitted during warmup")
	}
	for _, r := range []float64{-0.04, -0.02, -0.01, 0.01, 0.02, 0.03, 0.05, 0.06, 0.08} {
		c.push(r)
	}
	// n=9, alpha=0.2: loRank=floor(0.1*10)=1 -> min residual,
	// hiRank=ceil(0.9*10)=9 -> max residual.
	lo, hi, ok := c.interval(0.5)
	if !ok {
		t.Fatal("interval missing after warmup")
	}
	if math.Abs(lo-(0.5-0.04)) > 1e-12 || math.Abs(hi-(0.5+0.08)) > 1e-12 {
		t.Fatalf("interval (%v, %v), want (0.46, 0.58)", lo, hi)
	}
	c.score(lo, hi, 0.47)
	c.score(lo, hi, 0.9)
	if cov := c.coverage(); math.Abs(cov-0.5) > 1e-12 {
		t.Fatalf("online coverage %v, want 0.5", cov)
	}
}

func TestTimelineSeriesAndMergePrimitive(t *testing.T) {
	s, ts := newTestStore(t, Config{})
	serve(s, ts, "req-1", []int{0, 1, 1, 0}, 0.8, false)
	serve(s, ts, "req-2", []int{1, 1}, 0.8, false)
	// Labels for req-1 land in the currently open window (index 2).
	s.Ingest([]Record{{RequestID: "req-1", Labels: []int{0, 1, 0, 0}}}) // 3 correct of 4
	serve(s, ts, "", []int{0}, 0.8, false)                              // close window 2

	wins := ts.Windows()
	w := wins[2]
	agg, ok := w.Series[SeriesCorrect]
	if !ok {
		t.Fatalf("window 2 missing %s: %v", SeriesCorrect, w.Series)
	}
	if agg.Count != 4 || agg.Sum != 3 {
		t.Fatalf("labeled_correct count/sum = %d/%v, want 4/3", agg.Count, agg.Sum)
	}
	if agg.SumExact == nil {
		t.Fatal("labeled_correct window lost its exact-sum accumulator (fed merge needs it)")
	}
	lag := w.Series[SeriesLag]
	if lag.Count != 1 || lag.Last != 2 {
		t.Fatalf("label_lag = %+v, want one sample of 2", lag)
	}
	for _, name := range []string{SeriesAccMean, SeriesAccLo, SeriesAccHi, SeriesCoverage, SeriesAbsGap} {
		if _, ok := w.Series[name]; !ok {
			t.Errorf("window 2 missing series %s", name)
		}
	}
	mean := w.Series[SeriesAccMean].Last
	want := stats.BetaMean(1+3, 1+1)
	if math.Abs(mean-want) > 1e-12 {
		t.Fatalf("labeled_acc_mean %v, want %v", mean, want)
	}
}

func TestServedEvictionBounds(t *testing.T) {
	s, ts := newTestStore(t, Config{MaxPending: 4, MaxLagWindows: 100})
	for i := 0; i < 10; i++ {
		serve(s, ts, string(rune('a'+i)), []int{0, 1}, 0.8, false)
	}
	snap := s.Snapshot()
	if snap.PendingBatches != 4 {
		t.Fatalf("pending batches %d, want 4", snap.PendingBatches)
	}
	if snap.Counters.EvictedBatches != 6 {
		t.Fatalf("evicted %d, want 6", snap.Counters.EvictedBatches)
	}
	// Labels for an evicted batch: its id is gone, so they buffer.
	res := s.Ingest([]Record{{RequestID: "a", Labels: []int{0, 0}}})
	if res.Buffered != 1 {
		t.Fatalf("labels for evicted batch: %+v", res)
	}
}
