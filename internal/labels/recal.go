package labels

// recal.go is the online recalibration layer (Elder et al., "Learning
// Prediction Intervals for Model Performance"): a conformal-style
// tracker over the signed residuals between h's per-batch accuracy
// estimate and the labeled accuracy that later arrived for the same
// batch. The empirical residual quantiles wrap every new estimate into
// a prediction interval with finite-sample conservative ranks; its
// empirical coverage is tracked online (each interval is scored
// against the batch's labeled accuracy *before* that batch's residual
// joins the ring) and validated in internal/experiments.

import (
	"math"
	"sort"
)

// conformal is the bounded residual ring. Not safe for concurrent use;
// the Store serializes access under its lock.
type conformal struct {
	alpha float64 // miscoverage level, e.g. 0.05 for 95% intervals
	min   int     // residuals required before intervals are emitted
	ring  []float64
	idx   int
	n     int

	evaluated int64 // intervals scored against a later labeled accuracy
	covered   int64
	lastLo    float64
	lastHi    float64
}

func newConformal(alpha float64, window, min int) *conformal {
	return &conformal{alpha: alpha, min: min, ring: make([]float64, window), lastHi: 1}
}

// push adds one signed residual (labeled accuracy minus h's estimate),
// evicting the oldest when the ring is full.
func (c *conformal) push(r float64) {
	c.ring[c.idx] = r
	c.idx = (c.idx + 1) % len(c.ring)
	if c.n < len(c.ring) {
		c.n++
	}
}

// interval wraps the estimate into a prediction interval for the
// labeled accuracy, clamped to [0,1]. Ranks are the conservative
// finite-sample split-conformal ones: hi uses the ceil((1-alpha/2)(n+1))-th
// smallest residual, lo the floor((alpha/2)(n+1))-th; when a rank falls
// off the sample the corresponding side is the domain bound. ok is
// false (and the interval vacuous [0,1]) during warmup.
func (c *conformal) interval(estimate float64) (lo, hi float64, ok bool) {
	if c.n < c.min {
		return 0, 1, false
	}
	sorted := append([]float64(nil), c.ring[:c.n]...)
	sort.Float64s(sorted)
	k := float64(c.n + 1)
	lo, hi = 0, 1
	if loRank := int(math.Floor(c.alpha / 2 * k)); loRank >= 1 {
		lo = clamp01(estimate + sorted[loRank-1])
	}
	if hiRank := int(math.Ceil((1 - c.alpha/2) * k)); hiRank <= c.n {
		hi = clamp01(estimate + sorted[hiRank-1])
	}
	return lo, hi, true
}

// score records whether an emitted interval contained the labeled
// accuracy that later materialized — the online empirical coverage.
func (c *conformal) score(lo, hi, actual float64) {
	c.evaluated++
	if actual >= lo && actual <= hi {
		c.covered++
	}
}

// coverage returns the observed online coverage (1 before any interval
// has been scored, so alert rules on under-coverage stay quiet during
// warmup).
func (c *conformal) coverage() float64 {
	if c.evaluated == 0 {
		return 1
	}
	return float64(c.covered) / float64(c.evaluated)
}

// ConformalSummary is the JSON-facing view of the recalibration state.
type ConformalSummary struct {
	Alpha     float64 `json:"alpha"`
	Residuals int     `json:"residuals"`
	Evaluated int64   `json:"evaluated"`
	Coverage  float64 `json:"coverage"`
	// LastLo/LastHi bracket the most recent h estimate seen at join
	// time — the recalibrated prediction interval for model accuracy.
	LastLo float64 `json:"last_lo"`
	LastHi float64 `json:"last_hi"`
}

func (c *conformal) summary() ConformalSummary {
	return ConformalSummary{
		Alpha: c.alpha, Residuals: c.n, Evaluated: c.evaluated,
		Coverage: c.coverage(), LastLo: c.lastLo, LastHi: c.lastHi,
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
