package labels

// assess.go is the Bayesian assessment layer (Ji et al., "Active
// Bayesian Assessment for Black-Box Classifiers"): Beta-Bernoulli
// posteriors over accuracy, maintained by exact conjugate updates —
// one per served timeline window, one per predicted class, one per
// stratum (predicted class × alarm state, the active sampler's arms)
// and one overall. Credible intervals come from the exact quantile
// function in internal/stats; seeded sampling is only used where the
// policy needs randomness (Thompson draws in sampler.go).

import (
	"sort"

	"blackboxval/internal/stats"
)

// Posterior is a Beta-Bernoulli accuracy posterior: Beta(A, B) where A
// counts the prior pseudo-successes plus observed correct predictions
// and B the failures. The zero value is invalid; start from a prior
// via newPosterior.
type Posterior struct {
	A, B float64
	// Labeled/Correct are the observed (prior-free) tallies behind A/B,
	// kept so snapshots can report raw evidence next to the posterior.
	Labeled int64
	Correct int64
}

func newPosterior(alpha0, beta0 float64) *Posterior {
	return &Posterior{A: alpha0, B: beta0}
}

// Observe applies one exact conjugate update.
func (p *Posterior) Observe(correct bool) {
	p.Labeled++
	if correct {
		p.Correct++
		p.A++
	} else {
		p.B++
	}
}

// Mean returns the posterior mean A/(A+B).
func (p *Posterior) Mean() float64 { return stats.BetaMean(p.A, p.B) }

// Interval returns the equal-tailed credible interval at the given
// level.
func (p *Posterior) Interval(level float64) (lo, hi float64) {
	return stats.BetaInterval(p.A, p.B, level)
}

// PosteriorSummary is the JSON-facing view of one posterior.
type PosteriorSummary struct {
	Labeled int64   `json:"labeled"`
	Correct int64   `json:"correct"`
	Mean    float64 `json:"mean"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
}

func (p *Posterior) summary(level float64) PosteriorSummary {
	lo, hi := p.Interval(level)
	return PosteriorSummary{
		Labeled: p.Labeled, Correct: p.Correct,
		Mean: p.Mean(), Lo: lo, Hi: hi,
	}
}

// stratumKey identifies one active-sampling arm: the predicted class
// of a served row crossed with the monitor's alarm state when the row
// was served.
type stratumKey struct {
	class    int
	alarming bool
}

// StratumSummary reports one stratum's posterior.
type StratumSummary struct {
	Class    int  `json:"class"`
	Alarming bool `json:"alarming"`
	PosteriorSummary
}

// sortedStrata returns the stratum keys in deterministic order (class
// ascending, clean before alarming) — every iteration over the strata
// map goes through this so Thompson trajectories and snapshots are
// reproducible.
func sortedStrata(m map[stratumKey]*Posterior) []stratumKey {
	keys := make([]stratumKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].class != keys[j].class {
			return keys[i].class < keys[j].class
		}
		return !keys[i].alarming && keys[j].alarming
	})
	return keys
}
