package labels

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	s, ts := newTestStore(t, Config{})
	serve(s, ts, "req-1", []int{0, 1, 2}, 0.8, false)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func TestHTTPIngestAndStatus(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Post(srv.URL+"/labels", "application/json",
		strings.NewReader(`{"records":[{"request_id":"req-1","labels":[0,1,0]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control %q", cc)
	}
	var res IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.JoinedRows != 3 {
		t.Fatalf("ingest result %+v", res)
	}

	st, err := http.Get(srv.URL + "/labels/status")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(st.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.RowsLabeled != 3 || snap.RowsCorrect != 2 {
		t.Fatalf("status snapshot %+v", snap)
	}
}

func TestHTTPWorklist(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/labels/requests?budget=2&policy=ts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Requests []WorkItem `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Requests) != 2 {
		t.Fatalf("worklist %+v, want 2 items", body.Requests)
	}
	for _, it := range body.Requests {
		if it.RequestID != "req-1" {
			t.Fatalf("unexpected request id %q", it.RequestID)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newTestServer(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/labels", `{not json`, http.StatusBadRequest},
		{"POST", "/labels", `{"records":[]}`, http.StatusBadRequest},
		{"POST", "/labels", `{"records":[{"request_id":"","labels":[1]}]}`, http.StatusBadRequest},
		{"POST", "/labels", `{"records":[{"request_id":"x","labels":[1]}]}{"x":1}`, http.StatusBadRequest},
		{"GET", "/labels", "", http.StatusMethodNotAllowed},
		{"POST", "/labels/requests", "", http.StatusMethodNotAllowed},
		{"GET", "/labels/requests?budget=-1", "", http.StatusBadRequest},
		{"GET", "/labels/requests?policy=bogus", "", http.StatusBadRequest},
		{"GET", "/labels/nope", "", http.StatusNotFound},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func FuzzLabelsDecode(f *testing.F) {
	f.Add([]byte(`{"records":[{"request_id":"a","labels":[0,1]}]}`))
	f.Add([]byte(`{"records":[{"request_id":"a","rows":[3],"labels":[1]}]}`))
	f.Add([]byte(`{"records":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"records":[{"request_id":"a","labels":[0]}]} trailing`))
	f.Add([]byte(`{"records":[{"request_id":"a","rows":[1,2],"labels":[0]}]}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := DecodeIngest(strings.NewReader(string(raw)))
		if err != nil {
			return
		}
		// A decoded request must satisfy every documented invariant —
		// the join path relies on them.
		if len(req.Records) == 0 || len(req.Records) > maxRecords {
			t.Fatalf("decoder passed record count %d", len(req.Records))
		}
		for _, rec := range req.Records {
			if rec.RequestID == "" || len(rec.Labels) == 0 || len(rec.Labels) > maxRowsPerRecord {
				t.Fatalf("decoder passed invalid record %+v", rec)
			}
			if rec.Rows != nil && len(rec.Rows) != len(rec.Labels) {
				t.Fatalf("decoder passed rows/labels mismatch %+v", rec)
			}
		}
	})
}
