package labels

import (
	"fmt"
	"math/rand"
	"testing"

	"blackboxval/internal/obs"
)

// TestLaggedRampCredibleCoverage is the subsystem's end-to-end
// acceptance test: a deterministic ramp of served batches whose true
// accuracy is known, labels replayed with a fixed lag, and the
// per-window 95% credible intervals checked for >=0.9 empirical
// coverage of the truth over >=50 clean windows.
func TestLaggedRampCredibleCoverage(t *testing.T) {
	const (
		windows  = 60
		rows     = 120
		lag      = 3
		trueAcc  = 0.9
		level    = 0.95
		minCover = 0.9
	)
	s, ts := newTestStore(t, Config{Level: level, MaxLagWindows: 16})
	rng := rand.New(rand.NewSource(2026))

	type sent struct {
		id     string
		labels []int
		window int64
	}
	var backlog []sent
	covered, assessed := 0, 0
	var firstWidth float64
	// post delivers a batch's delayed labels, then immediately assesses
	// the fully labeled window's credible interval against the truth
	// (old per-window posteriors are pruned once they leave the join
	// horizon, so the check happens while the window is live).
	post := func(b sent) {
		s.Ingest([]Record{{RequestID: b.id, Labels: b.labels}})
		p, ok := s.WindowPosterior(b.window)
		if !ok {
			t.Fatalf("window %d has no posterior right after its labels joined", b.window)
		}
		if p.Labeled != rows {
			t.Fatalf("window %d assessed %d rows, want %d", b.window, p.Labeled, rows)
		}
		if assessed == 0 {
			firstWidth = p.Hi - p.Lo
		}
		assessed++
		if p.Lo <= trueAcc && trueAcc <= p.Hi {
			covered++
		}
	}
	for w := 0; w < windows; w++ {
		pred := make([]int, rows)
		labelVals := make([]int, rows)
		for i := range pred {
			pred[i] = rng.Intn(4)
			if rng.Float64() < trueAcc {
				labelVals[i] = pred[i]
			} else {
				labelVals[i] = (pred[i] + 1) % 4
			}
		}
		id := fmt.Sprintf("ramp-%04d", w)
		rec := serve(s, ts, id, pred, trueAcc, false)
		backlog = append(backlog, sent{id: id, labels: labelVals, window: rec.Window})
		// Delayed ground truth: labels for the batch served lag windows
		// ago arrive only now.
		if w >= lag {
			post(backlog[w-lag])
		}
	}
	// Tail flush: the last lag batches still get their labels.
	for _, b := range backlog[windows-lag:] {
		post(b)
	}

	if assessed < 50 {
		t.Fatalf("only %d windows assessed, need >= 50", assessed)
	}
	cov := float64(covered) / float64(assessed)
	if cov < minCover {
		t.Fatalf("empirical 95%% interval coverage %.3f over %d clean windows, need >= %v", cov, assessed, minCover)
	}

	// The lag metric must report the replay lag. A batch's own window
	// has already closed when its delayed labels arrive, so the
	// observed in-ramp lag is lag+1 open-window indices; the tail flush
	// drains the backlog down to lag 1.
	snap := s.Snapshot()
	if snap.LastLagWindows != 1 {
		t.Errorf("last lag %d windows, want 1 after the tail flush", snap.LastLagWindows)
	}
	if snap.MeanLagWindows < float64(lag)-0.5 || snap.MeanLagWindows > float64(lag)+1.5 {
		t.Errorf("mean lag %.2f windows, want ~%d", snap.MeanLagWindows, lag)
	}
	if snap.Coverage < 0.99 {
		t.Errorf("label coverage %.3f after full replay, want ~1", snap.Coverage)
	}

	// The conformal tracker saw h == trueAcc vs noisy realized accuracy:
	// its online coverage must be near the nominal level once warm.
	if snap.Conformal.Evaluated < 30 {
		t.Fatalf("conformal intervals evaluated %d times, want >= 30", snap.Conformal.Evaluated)
	}
	if snap.Conformal.Coverage < 0.85 {
		t.Errorf("conformal online coverage %.3f, want >= 0.85", snap.Conformal.Coverage)
	}

	// Interval width must shrink as evidence accumulates: the overall
	// posterior over ~7200 labels is far tighter than any single window.
	if o := snap.Overall.Hi - snap.Overall.Lo; o >= firstWidth {
		t.Errorf("overall interval width %.4f not tighter than single-window %.4f", o, firstWidth)
	}
}

// TestLaggedRampDetectsCorruption drives a clean ramp into a corrupted
// regime where the model's true accuracy collapses but h keeps
// reporting the clean estimate — the scenario the h_abs_gap series and
// its alert rule exist for.
func TestLaggedRampDetectsCorruption(t *testing.T) {
	s, ts := newTestStore(t, Config{MaxLagWindows: 16})
	rng := rand.New(rand.NewSource(7))
	serveWindow := func(w int, acc float64) {
		pred := make([]int, 100)
		labelVals := make([]int, 100)
		for i := range pred {
			pred[i] = rng.Intn(4)
			if rng.Float64() < acc {
				labelVals[i] = pred[i]
			} else {
				labelVals[i] = (pred[i] + 1) % 4
			}
		}
		id := fmt.Sprintf("w-%03d", w)
		serve(s, ts, id, pred, 0.9, false) // h stays at 0.9 throughout
		s.Ingest([]Record{{RequestID: id, Labels: labelVals}})
	}
	for w := 0; w < 20; w++ {
		serveWindow(w, 0.9)
	}
	cleanGap := lastSeries(ts, SeriesAbsGap)
	for w := 20; w < 30; w++ {
		serveWindow(100+w, 0.5) // corruption: true accuracy collapses
	}
	corruptGap := lastSeries(ts, SeriesAbsGap)
	if cleanGap > 0.1 {
		t.Errorf("clean |h - labeled acc| gap %.3f, want small", cleanGap)
	}
	if corruptGap < 0.25 {
		t.Errorf("corrupted gap %.3f, want a clear excursion an alert rule can fire on", corruptGap)
	}
}

// lastSeries returns the named series' Last value in the most recent
// closed window that carries it.
func lastSeries(ts *obs.TimeSeries, name string) float64 {
	wins := ts.Windows()
	for i := len(wins) - 1; i >= 0; i-- {
		if agg, ok := wins[i].Series[name]; ok {
			return agg.Last
		}
	}
	return 0
}
