// Package labels closes the feedback loop the paper deliberately
// leaves open: h estimates model performance *without* labels at
// serving time, but in real deployments ground truth arrives late and
// at a cost. The Store rides the monitor's batch stream (OnObserve),
// remembers what was served per X-Request-ID, ingests delayed true
// labels over POST /labels (batched JSON, idempotent per request id
// and row, with a bounded pending-join buffer and a configurable max
// lag), and keeps three derived layers:
//
//   - assessment: Beta-Bernoulli accuracy posteriors per served
//     window, per predicted class and per stratum, surfaced as
//     first-class timeline series (labeled_acc_mean/lo95/hi95,
//     labeled_coverage, label_lag) next to h's unlabeled estimate;
//   - active sampling: a budgeted Thompson-sampling policy over the
//     per-stratum posteriors (strata = predicted class × alarm state)
//     that ranks unlabeled served rows into a GET /labels/requests
//     worklist, with a uniform baseline for comparison;
//   - recalibration: an online conformal residual tracker that wraps
//     h's per-batch estimate into a prediction interval and exports
//     the drift of |h − labeled accuracy| (h_abs_gap) for alert rules.
//
// Determinism contract (DESIGN.md §8): all posterior state is exact
// conjugate arithmetic over the ordered join stream, and the only
// randomness — Thompson draws and the uniform baseline — flows from a
// private splitmix64-scrambled RNG seeded by Config.Seed, so worklists
// are a pure function of (seed, ordered stream, call sequence).
//
// Fleet invariant: the per-row labeled_correct series is recorded as
// raw 0/1 samples, so its window Count/Sum merge shard-invariantly via
// stats.ExactSum and the federation aggregator can derive the fleet
// posterior from merged counts (see internal/fed).
package labels

import (
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"sync"

	"blackboxval/internal/data"
	"blackboxval/internal/linalg"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
)

// Timeline series names fed by the Store. Stable API: dashboards,
// alert rules and the federation aggregator address them.
const (
	SeriesAccMean  = "labeled_acc_mean"
	SeriesAccLo    = "labeled_acc_lo95"
	SeriesAccHi    = "labeled_acc_hi95"
	SeriesCorrect  = "labeled_correct" // per-row 0/1, the shard-mergeable primitive
	SeriesCoverage = "labeled_coverage"
	SeriesLag      = "label_lag"
	SeriesAbsGap   = "h_abs_gap"
	SeriesHLo      = "h_interval_lo"
	SeriesHHi      = "h_interval_hi"
	SeriesHCovered = "h_covered"
)

// Config configures a Store.
type Config struct {
	// Timeline is the drift timeline the store stamps served batches
	// against and feeds its series into — normally Monitor.Timeline().
	// Required.
	Timeline *obs.TimeSeries
	// MaxPending bounds the served batches retained while waiting for
	// labels (default 512; the oldest unlabeled batch is evicted).
	MaxPending int
	// MaxPendingLabels bounds label posts buffered because their batch
	// has not been observed yet (default 256).
	MaxPendingLabels int
	// MaxLagWindows is the join horizon: labels for a batch served more
	// than this many timeline windows ago are dropped as late, and
	// served batches older than the horizon stop waiting (default 64).
	MaxLagWindows int64
	// Level is the credible/prediction interval level (default 0.95).
	Level float64
	// PriorA/PriorB are the Beta prior pseudo-counts (default 1, 1 — the
	// uniform prior).
	PriorA, PriorB float64
	// ResidualWindow bounds the conformal residual ring (default 128).
	ResidualWindow int
	// MinResiduals is the conformal warmup: intervals are vacuous [0,1]
	// until this many residuals have been observed (default 10).
	MinResiduals int
	// Seed drives the sampling policies' private RNG (default 1).
	Seed int64
	// Logger receives join anomalies (nil = slog.Default()).
	Logger *slog.Logger
}

func (c *Config) defaults() {
	if c.MaxPending <= 0 {
		c.MaxPending = 512
	}
	if c.MaxPendingLabels <= 0 {
		c.MaxPendingLabels = 256
	}
	if c.MaxLagWindows <= 0 {
		c.MaxLagWindows = 64
	}
	if c.Level == 0 {
		c.Level = 0.95
	}
	if c.PriorA <= 0 {
		c.PriorA = 1
	}
	if c.PriorB <= 0 {
		c.PriorB = 1
	}
	if c.ResidualWindow <= 0 {
		c.ResidualWindow = 128
	}
	if c.MinResiduals <= 0 {
		c.MinResiduals = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
}

// servedBatch is what the store remembers about one observed batch
// while its labels may still arrive.
type servedBatch struct {
	id       string
	seq      int
	window   int64 // served_at drift-timeline window index
	estimate float64
	alarming bool
	pred     []int  // predicted class per row (argmax of proba)
	labeled  []bool // per-row join state (idempotency)
	nLabeled int
}

// labelPost is a label record buffered before its batch was observed.
type labelPost struct {
	id      string
	rows    []int
	labels  []int
	arrived int64 // open window index at arrival, for lag-based expiry
}

// Counters are the join bookkeeping totals, exposed in Snapshot and as
// metrics.
type Counters struct {
	// Posted counts label records received (post-decode).
	Posted int64 `json:"posted"`
	// JoinedBatches counts batches that received >= 1 newly labeled row.
	JoinedBatches int64 `json:"joined_batches"`
	// JoinedRows counts newly labeled rows.
	JoinedRows int64 `json:"joined_rows"`
	// DuplicateRows counts rows re-posted for an already labeled
	// (request id, row) — the idempotent no-op path.
	DuplicateRows int64 `json:"duplicate_rows"`
	// Buffered counts records parked in the pending-join buffer because
	// their request id had not been observed yet.
	Buffered int64 `json:"buffered"`
	// DroppedLate counts records for batches served beyond the lag
	// horizon.
	DroppedLate int64 `json:"dropped_late"`
	// DroppedPending counts buffered records expired or displaced
	// without ever matching a batch (unknown request ids end here).
	DroppedPending int64 `json:"dropped_pending"`
	// EvictedBatches counts served batches that aged out (or were
	// displaced) with unlabeled rows remaining.
	EvictedBatches int64 `json:"evicted_batches"`
	// InvalidRows counts rows rejected by validation (index out of
	// range, negative label, length mismatch).
	InvalidRows int64 `json:"invalid_rows"`
}

// Store is the label-feedback subsystem. Create with New, register on
// the monitor with mon.OnObserve(store.ObserveBatch), mount Handler on
// the serving mux. Safe for concurrent use.
type Store struct {
	cfg Config

	mu     sync.Mutex
	served []*servedBatch // FIFO, oldest first
	byID   map[string]*servedBatch
	early  map[string]*labelPost // pending-join buffer
	order  []string              // early insertion order

	overall  *Posterior
	winPost  map[int64]*Posterior
	perClass map[int]*Posterior
	strata   map[stratumKey]*Posterior
	recal    *conformal
	rng      *rand.Rand

	rowsServed  int64
	rowsLabeled int64
	rowsCorrect int64
	counters    Counters
	lastLag     int64
	lagSum      float64
	lagJoins    int64

	postedMetric *obs.Counter
	joinedMetric *obs.Counter
	dupMetric    *obs.Counter
	dropMetric   *obs.CounterVec
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New validates the configuration and returns a ready store.
func New(cfg Config) (*Store, error) {
	cfg.defaults()
	if cfg.Timeline == nil {
		return nil, fmt.Errorf("labels: a timeline is required")
	}
	if cfg.Level <= 0 || cfg.Level >= 1 {
		return nil, fmt.Errorf("labels: interval level %v out of (0,1)", cfg.Level)
	}
	return &Store{
		cfg:      cfg,
		byID:     map[string]*servedBatch{},
		early:    map[string]*labelPost{},
		overall:  newPosterior(cfg.PriorA, cfg.PriorB),
		winPost:  map[int64]*Posterior{},
		perClass: map[int]*Posterior{},
		strata:   map[stratumKey]*Posterior{},
		recal:    newConformal(1-cfg.Level, cfg.ResidualWindow, cfg.MinResiduals),
		rng:      rand.New(rand.NewSource(int64(splitmix64(uint64(cfg.Seed))))),
	}, nil
}

// RegisterMetrics registers the store's families on reg (nil =
// obs.Default()).
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.postedMetric = reg.Counter("ppm_labels_posted_total",
		"Label records received on POST /labels.")
	s.joinedMetric = reg.Counter("ppm_labels_joined_rows_total",
		"Served rows joined with a true label.")
	s.dupMetric = reg.Counter("ppm_labels_duplicate_rows_total",
		"Label rows ignored because the (request id, row) was already labeled.")
	s.dropMetric = reg.CounterVec("ppm_labels_dropped_total",
		"Label records or rows dropped, by reason (late, pending, evicted, invalid).", "reason")
	reg.GaugeFunc("ppm_labels_pending_batches",
		"Served batches retained with unlabeled rows.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.served))
		})
	reg.GaugeFunc("ppm_labels_pending_posts",
		"Label posts buffered while waiting for their batch to be observed.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.early))
		})
	reg.GaugeFunc("ppm_labels_coverage",
		"Fraction of served rows that have received a true label.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.coverageLocked()
		})
	reg.GaugeFunc("ppm_labeled_accuracy",
		"Posterior mean accuracy over all labeled rows.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.overall.Mean()
		})
}

func (s *Store) coverageLocked() float64 {
	if s.rowsServed == 0 {
		return 0
	}
	return float64(s.rowsLabeled) / float64(s.rowsServed)
}

// ObserveBatch feeds one observed serving batch into the join state.
// Its signature matches monitor.BatchObserver:
//
//	mon.OnObserve(store.ObserveBatch)
//
// Batches without a request id or model outputs (row-streamed windows,
// file-watch batches) cannot be joined and are counted only toward
// coverage's denominator when they carry rows. Any label post already
// buffered for the request id joins immediately.
func (s *Store) ObserveBatch(_ *data.Dataset, proba *linalg.Matrix, rec monitor.Record) {
	if proba == nil || proba.Rows == 0 {
		return
	}
	pred := make([]int, proba.Rows)
	for i := range pred {
		pred[i] = argmax(proba.Row(i))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rowsServed += int64(proba.Rows)
	var sb *servedBatch
	if rec.RequestID != "" {
		if _, dup := s.byID[rec.RequestID]; !dup {
			sb = &servedBatch{
				id:       rec.RequestID,
				seq:      rec.Seq,
				window:   rec.Window,
				estimate: rec.Estimate,
				alarming: rec.Alarming,
				pred:     pred,
				labeled:  make([]bool, proba.Rows),
			}
			s.served = append(s.served, sb)
			s.byID[sb.id] = sb
		}
		// A replayed request id cannot be joined unambiguously: only the
		// first observation enters the join state.
	}
	// The batch stream is the subsystem's clock: every observation
	// advances the retention horizon, joinable or not.
	s.expireLocked(rec.Window)
	if sb == nil {
		return
	}
	if post, ok := s.early[sb.id]; ok {
		delete(s.early, sb.id)
		s.removeOrder(sb.id)
		s.joinLocked(sb, post.rows, post.labels)
	}
}

// expireLocked enforces the retention bounds: served batches beyond
// the lag horizon or the MaxPending cap stop waiting for labels, and
// buffered posts past the horizon are dropped (unknown ids die here).
func (s *Store) expireLocked(openWindow int64) {
	for len(s.served) > 0 {
		sb := s.served[0]
		overCap := len(s.served) > s.cfg.MaxPending
		tooOld := openWindow-sb.window > s.cfg.MaxLagWindows
		if !overCap && !tooOld {
			break
		}
		if sb.nLabeled < len(sb.pred) {
			s.counters.EvictedBatches++
		}
		delete(s.byID, sb.id)
		s.served = s.served[1:]
	}
	for len(s.order) > 0 {
		id := s.order[0]
		post := s.early[id]
		overCap := len(s.order) > s.cfg.MaxPendingLabels
		tooOld := post != nil && openWindow-post.arrived > s.cfg.MaxLagWindows
		if !overCap && !tooOld {
			break
		}
		delete(s.early, id)
		s.order = s.order[1:]
		s.counters.DroppedPending++
		s.drop("pending")
	}
}

func (s *Store) removeOrder(id string) {
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

func (s *Store) drop(reason string) {
	if s.dropMetric != nil {
		s.dropMetric.Inc(reason)
	}
}

// Record is one wire-format label record: the true labels for (a
// subset of) the rows of one served batch, keyed by the X-Request-ID
// the gateway pinned on the serving response. With Rows omitted the
// labels cover the whole batch in row order.
type Record struct {
	RequestID string `json:"request_id"`
	Rows      []int  `json:"rows,omitempty"`
	Labels    []int  `json:"labels"`
}

// IngestResult summarizes one Ingest call — the POST /labels response
// body.
type IngestResult struct {
	Posted      int64 `json:"posted"`
	JoinedRows  int64 `json:"joined_rows"`
	Duplicates  int64 `json:"duplicates"`
	Buffered    int64 `json:"buffered"`
	DroppedLate int64 `json:"dropped_late"`
	Invalid     int64 `json:"invalid"`
}

// Ingest applies a batch of label records: idempotent per (request id,
// row), first write wins. Records for batches not yet observed are
// buffered; records beyond the lag horizon are dropped and counted.
func (s *Store) Ingest(records []Record) IngestResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.counters
	open := s.cfg.Timeline.OpenIndex()
	for _, rec := range records {
		s.counters.Posted++
		if s.postedMetric != nil {
			s.postedMetric.Inc()
		}
		if rec.RequestID == "" || len(rec.Labels) == 0 ||
			(rec.Rows != nil && len(rec.Rows) != len(rec.Labels)) {
			s.counters.InvalidRows += int64(len(rec.Labels))
			s.drop("invalid")
			continue
		}
		sb, ok := s.byID[rec.RequestID]
		if !ok {
			s.bufferLocked(rec, open)
			continue
		}
		if open-sb.window > s.cfg.MaxLagWindows {
			s.counters.DroppedLate += int64(len(rec.Labels))
			s.drop("late")
			continue
		}
		s.joinLocked(sb, rec.Rows, rec.Labels)
	}
	d := Counters{
		Posted:        s.counters.Posted - before.Posted,
		JoinedRows:    s.counters.JoinedRows - before.JoinedRows,
		DuplicateRows: s.counters.DuplicateRows - before.DuplicateRows,
		Buffered:      s.counters.Buffered - before.Buffered,
		DroppedLate:   s.counters.DroppedLate - before.DroppedLate,
		InvalidRows:   s.counters.InvalidRows - before.InvalidRows,
	}
	return IngestResult{
		Posted: d.Posted, JoinedRows: d.JoinedRows, Duplicates: d.DuplicateRows,
		Buffered: d.Buffered, DroppedLate: d.DroppedLate, Invalid: d.InvalidRows,
	}
}

// bufferLocked parks a record whose batch has not been observed yet in
// the bounded pending-join buffer. A re-post for an already buffered
// id replaces the buffered labels (still unjoined, so no double count).
func (s *Store) bufferLocked(rec Record, open int64) {
	if _, ok := s.early[rec.RequestID]; !ok {
		s.order = append(s.order, rec.RequestID)
	}
	s.early[rec.RequestID] = &labelPost{
		id:   rec.RequestID,
		rows: append([]int(nil), rec.Rows...), labels: append([]int(nil), rec.Labels...),
		arrived: open,
	}
	s.counters.Buffered++
	if len(s.order) > s.cfg.MaxPendingLabels {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.early, victim)
		s.counters.DroppedPending++
		s.drop("pending")
	}
}

// joinLocked applies labels to a served batch and feeds the
// assessment, recalibration and timeline layers. rows == nil means
// "the whole batch in order".
func (s *Store) joinLocked(sb *servedBatch, rows, labelVals []int) {
	newCorrect := make([]float64, 0, len(labelVals))
	correct := 0
	for k, label := range labelVals {
		row := k
		if rows != nil {
			row = rows[k]
		}
		if row < 0 || row >= len(sb.pred) || label < 0 {
			s.counters.InvalidRows++
			s.drop("invalid")
			continue
		}
		if sb.labeled[row] {
			s.counters.DuplicateRows++
			if s.dupMetric != nil {
				s.dupMetric.Inc()
			}
			continue
		}
		sb.labeled[row] = true
		sb.nLabeled++
		ok := sb.pred[row] == label
		if ok {
			correct++
		}
		newCorrect = append(newCorrect, boolSample(ok))
		s.observeLocked(sb, row, ok)
	}
	if len(newCorrect) == 0 {
		return
	}
	s.counters.JoinedBatches++
	s.counters.JoinedRows += int64(len(newCorrect))
	if s.joinedMetric != nil {
		s.joinedMetric.Add(float64(len(newCorrect)))
	}
	s.feedTimelineLocked(sb, newCorrect, correct)
}

// observeLocked applies one exact conjugate update across the
// posterior layers.
func (s *Store) observeLocked(sb *servedBatch, row int, ok bool) {
	s.rowsLabeled++
	if ok {
		s.rowsCorrect++
	}
	s.overall.Observe(ok)
	w := s.winPost[sb.window]
	if w == nil {
		w = newPosterior(s.cfg.PriorA, s.cfg.PriorB)
		s.winPost[sb.window] = w
		// Bound the per-window map to the retention horizon: windows
		// older than twice the lag can no longer receive joins.
		for idx := range s.winPost {
			if sb.window-idx > 2*s.cfg.MaxLagWindows {
				delete(s.winPost, idx)
			}
		}
	}
	w.Observe(ok)
	class := sb.pred[row]
	c := s.perClass[class]
	if c == nil {
		c = newPosterior(s.cfg.PriorA, s.cfg.PriorB)
		s.perClass[class] = c
	}
	c.Observe(ok)
	key := stratumKey{class: class, alarming: sb.alarming}
	st := s.strata[key]
	if st == nil {
		st = newPosterior(s.cfg.PriorA, s.cfg.PriorB)
		s.strata[key] = st
	}
	st.Observe(ok)
}

// feedTimelineLocked surfaces one join event as timeline series. The
// samples land in the currently open window (labels are late by
// design; label_lag says how late).
func (s *Store) feedTimelineLocked(sb *servedBatch, newCorrect []float64, correct int) {
	tl := s.cfg.Timeline
	open := tl.OpenIndex()
	lag := open - sb.window
	if lag < 0 {
		lag = 0
	}
	s.lastLag = lag
	s.lagSum += float64(lag)
	s.lagJoins++

	w := s.winPost[sb.window]
	lo, hi := w.Interval(s.cfg.Level)
	tl.Record(SeriesAccMean, w.Mean())
	tl.Record(SeriesAccLo, lo)
	tl.Record(SeriesAccHi, hi)
	tl.RecordAll(SeriesCorrect, newCorrect)
	tl.Record(SeriesCoverage, s.coverageLocked())
	tl.Record(SeriesLag, float64(lag))

	// Recalibration: score the interval the tracker would have emitted
	// for this batch's estimate *before* absorbing its residual, then
	// absorb it. batchAcc is the labeled accuracy of the newly joined
	// rows — the quantity h estimated for this batch.
	batchAcc := float64(correct) / float64(len(newCorrect))
	cLo, cHi, ok := s.recal.interval(sb.estimate)
	if ok {
		s.recal.score(cLo, cHi, batchAcc)
	}
	s.recal.lastLo, s.recal.lastHi = cLo, cHi
	tl.Record(SeriesHLo, cLo)
	tl.Record(SeriesHHi, cHi)
	if ok {
		tl.Record(SeriesHCovered, boolSample(batchAcc >= cLo && batchAcc <= cHi))
	}
	tl.Record(SeriesAbsGap, math.Abs(sb.estimate-w.Mean()))
	s.recal.push(batchAcc - sb.estimate)
}

// Snapshot is the JSON-facing state of the subsystem: /labels/status,
// incident bundles and ppm-diagnose all render it.
type Snapshot struct {
	RowsServed  int64   `json:"rows_served"`
	RowsLabeled int64   `json:"rows_labeled"`
	RowsCorrect int64   `json:"rows_correct"`
	Coverage    float64 `json:"coverage"`
	Level       float64 `json:"level"`

	Overall  PosteriorSummary `json:"overall"`
	Strata   []StratumSummary `json:"strata,omitempty"`
	Counters Counters         `json:"counters"`

	PendingBatches int `json:"pending_batches"`
	PendingPosts   int `json:"pending_posts"`

	LastLagWindows int64   `json:"last_lag_windows"`
	MeanLagWindows float64 `json:"mean_lag_windows"`

	Conformal ConformalSummary `json:"conformal"`
}

// Snapshot returns a consistent copy of the subsystem state.
func (s *Store) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		RowsServed: s.rowsServed, RowsLabeled: s.rowsLabeled, RowsCorrect: s.rowsCorrect,
		Coverage: s.coverageLocked(), Level: s.cfg.Level,
		Overall: s.overall.summary(s.cfg.Level), Counters: s.counters,
		PendingBatches: len(s.served), PendingPosts: len(s.early),
		LastLagWindows: s.lastLag, Conformal: s.recal.summary(),
	}
	if s.lagJoins > 0 {
		snap.MeanLagWindows = s.lagSum / float64(s.lagJoins)
	}
	for _, key := range sortedStrata(s.strata) {
		snap.Strata = append(snap.Strata, StratumSummary{
			Class: key.class, Alarming: key.alarming,
			PosteriorSummary: s.strata[key].summary(s.cfg.Level),
		})
	}
	return snap
}

// WindowPosterior returns the accuracy posterior of one served window
// (ok=false when no labels have joined for it, or it aged out).
func (s *Store) WindowPosterior(window int64) (PosteriorSummary, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.winPost[window]
	if !ok {
		return PosteriorSummary{}, false
	}
	return p.summary(s.cfg.Level), true
}

func argmax(row []float64) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}

func boolSample(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
