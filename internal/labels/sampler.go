package labels

// sampler.go is the active-sampling layer: given a labeling budget, it
// ranks the unlabeled served rows the store is still retaining and
// returns the ones most worth paying an annotator for. The default
// policy is Thompson sampling over the per-stratum accuracy posteriors
// (strata = predicted class × alarm state): each pick draws θ̃ from
// every stratum's Beta posterior and spends the label on the stratum
// whose sampled Bernoulli variance θ̃(1−θ̃), discounted by the evidence
// it already has, is largest — so labels flow to strata that are both
// uncertain and plausibly inaccurate, which is what narrows the
// credible intervals fastest (validated against the uniform baseline
// in internal/experiments). PolicyUniform spends the budget uniformly
// at random over the same candidates.

import "blackboxval/internal/stats"

// Sampling policies accepted by Worklist and GET /labels/requests.
const (
	PolicyThompson = "ts"
	PolicyUniform  = "uniform"
)

// WorkItem is one row worth labeling: post its true label back as
// {"request_id": ..., "rows": [Row], "labels": [...]}.
type WorkItem struct {
	RequestID string `json:"request_id"`
	Row       int    `json:"row"`
	Class     int    `json:"class"`
	Alarming  bool   `json:"alarming"`
}

// candidate queues index unlabeled rows per stratum, newest served
// batch first (most relevant to the current serving regime), row
// ascending within a batch — a deterministic order.
type candidate struct {
	sb  *servedBatch
	row int
}

// Worklist returns up to budget unlabeled served rows under the given
// policy ("" = Thompson). The selection consumes draws from the
// store's seeded RNG, so the sequence of worklists is a pure function
// of (seed, ordered join stream, call sequence). Rows are not
// reserved: they leave the candidate pool only when their labels are
// ingested.
func (s *Store) Worklist(budget int, policy string) []WorkItem {
	if budget <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	queues := map[stratumKey][]candidate{}
	strata := map[stratumKey]*Posterior{}
	for i := len(s.served) - 1; i >= 0; i-- {
		sb := s.served[i]
		for row := 0; row < len(sb.pred); row++ {
			if sb.labeled[row] {
				continue
			}
			key := stratumKey{class: sb.pred[row], alarming: sb.alarming}
			queues[key] = append(queues[key], candidate{sb: sb, row: row})
			if strata[key] == nil {
				if p := s.strata[key]; p != nil {
					strata[key] = p
				} else {
					strata[key] = newPosterior(s.cfg.PriorA, s.cfg.PriorB)
				}
			}
		}
	}
	if len(queues) == 0 {
		return nil
	}

	var out []WorkItem
	take := func(key stratumKey, idx int) {
		q := queues[key]
		c := q[idx]
		queues[key] = append(q[:idx], q[idx+1:]...)
		if len(queues[key]) == 0 {
			delete(queues, key)
		}
		out = append(out, WorkItem{
			RequestID: c.sb.id, Row: c.row,
			Class: key.class, Alarming: key.alarming,
		})
	}

	for len(out) < budget && len(queues) > 0 {
		switch policy {
		case PolicyUniform:
			// Uniform baseline: one candidate uniformly at random across
			// all strata (index into the deterministic concatenation of
			// the sorted stratum queues).
			total := 0
			keys := sortedStrata(strataPresent(queues))
			for _, key := range keys {
				total += len(queues[key])
			}
			pick := s.rng.Intn(total)
			for _, key := range keys {
				if pick < len(queues[key]) {
					take(key, pick)
					break
				}
				pick -= len(queues[key])
			}
		default: // PolicyThompson
			var best stratumKey
			bestScore := -1.0
			for _, key := range sortedStrata(strataPresent(queues)) {
				p := strata[key]
				theta := stats.SampleBeta(s.rng, p.A, p.B)
				// Sampled Bernoulli variance shrunk by the evidence the
				// stratum already holds: the expected reduction in
				// posterior variance from one more label.
				score := theta * (1 - theta) / (p.A + p.B + 1)
				if score > bestScore {
					bestScore = score
					best = key
				}
			}
			take(best, 0)
			// The pick itself is unlabeled, but discount the stratum so a
			// single worklist call spreads a large budget instead of
			// spending it all on one arm with no feedback in between.
			p := strata[best]
			strata[best] = &Posterior{A: p.A + p.Mean(), B: p.B + 1 - p.Mean()}
		}
	}
	return out
}

func strataPresent(queues map[stratumKey][]candidate) map[stratumKey]*Posterior {
	m := make(map[stratumKey]*Posterior, len(queues))
	for k := range queues {
		m[k] = nil
	}
	return m
}
