package labels

import (
	"reflect"
	"testing"
)

// buildSampled sets up a store with two strata of very different
// posteriors: class 0 near 50% accuracy (high Bernoulli variance),
// class 1 near 99% (low variance), plus plenty of unlabeled candidates
// in both.
func buildSampled(t *testing.T, seed int64) *Store {
	t.Helper()
	s, ts := newTestStore(t, Config{Seed: seed})
	// Evidence batches: labeled immediately.
	pred := make([]int, 100)
	labelVals := make([]int, 100)
	for i := range pred {
		if i < 50 {
			pred[i] = 0
			labelVals[i] = i % 2 // class 0: 50% correct
		} else {
			pred[i] = 1
			labelVals[i] = 1 // class 1: ~always correct
		}
	}
	labelVals[99] = 0 // one miss so Beta(51,2), not degenerate
	serve(s, ts, "evidence", pred, 0.8, false)
	s.Ingest([]Record{{RequestID: "evidence", Labels: labelVals}})
	// Candidate batches: unlabeled, both classes.
	for b := 0; b < 4; b++ {
		cand := make([]int, 40)
		for i := range cand {
			cand[i] = i % 2
		}
		serve(s, ts, string(rune('a'+b)), cand, 0.8, false)
	}
	return s
}

func TestWorklistDeterministicUnderSeed(t *testing.T) {
	for _, policy := range []string{PolicyThompson, PolicyUniform} {
		a := buildSampled(t, 42)
		b := buildSampled(t, 42)
		for call := 0; call < 3; call++ {
			wa := a.Worklist(17, policy)
			wb := b.Worklist(17, policy)
			if !reflect.DeepEqual(wa, wb) {
				t.Fatalf("policy %s call %d diverged under identical seeds:\n%v\nvs\n%v", policy, call, wa, wb)
			}
			if len(wa) != 17 {
				t.Fatalf("policy %s returned %d items, want 17", policy, len(wa))
			}
		}
		// A different seed must be allowed to pick differently (uniform
		// certainly will; Thompson with these posteriors almost surely).
		c := buildSampled(t, 43)
		if w := c.Worklist(17, PolicyUniform); reflect.DeepEqual(w, a.Worklist(17, PolicyUniform)) {
			t.Log("seed 43 matched seed 42 (possible but unlikely); not failing")
		}
	}
}

func TestThompsonPrefersUncertainStratum(t *testing.T) {
	s := buildSampled(t, 7)
	items := s.Worklist(60, PolicyThompson)
	if len(items) != 60 {
		t.Fatalf("worklist returned %d items, want 60", len(items))
	}
	class0 := 0
	for _, it := range items {
		if it.Class == 0 {
			class0++
		}
	}
	// Class 0 sits at p≈0.5 with the same evidence mass as class 1 at
	// p≈0.98: its sampled variance dominates, so the budget should lean
	// heavily toward it.
	if class0 <= 40 {
		t.Fatalf("Thompson spent only %d/60 on the uncertain stratum", class0)
	}
}

func TestWorklistExcludesLabeledRows(t *testing.T) {
	s, ts := newTestStore(t, Config{})
	serve(s, ts, "req-1", []int{0, 0, 0, 0}, 0.8, false)
	s.Ingest([]Record{{RequestID: "req-1", Rows: []int{0, 2}, Labels: []int{0, 0}}})
	items := s.Worklist(10, PolicyThompson)
	if len(items) != 2 {
		t.Fatalf("worklist %v, want exactly the 2 unlabeled rows", items)
	}
	for _, it := range items {
		if it.Row != 1 && it.Row != 3 {
			t.Fatalf("worklist offered already-labeled row %d", it.Row)
		}
	}
	// Labeling everything empties the pool.
	s.Ingest([]Record{{RequestID: "req-1", Labels: []int{0, 0, 0, 0}}})
	if items := s.Worklist(10, PolicyThompson); len(items) != 0 {
		t.Fatalf("worklist after full labeling: %v", items)
	}
}
