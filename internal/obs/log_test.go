package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

func TestRegisterFlagsDefaults(t *testing.T) {
	var cfg LogConfig
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg.Level != "info" || cfg.Format != "text" {
		t.Fatalf("defaults = %+v", cfg)
	}
	if err := fs.Parse([]string{}); err != nil {
		t.Fatal(err)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bogus level accepted")
	}
}

func TestNewLoggerTextAndJSON(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger("ppm-test", LogConfig{Level: "warn", Format: "text"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("suppressed")
	logger.Warn("kept", "k", 1)
	out := buf.String()
	if strings.Contains(out, "suppressed") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering broken:\n%s", out)
	}
	if !strings.Contains(out, "component=ppm-test") {
		t.Fatalf("component field missing:\n%s", out)
	}

	buf.Reset()
	logger, err = NewLogger("ppm-test", LogConfig{Level: "info", Format: "json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hello", "n", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line not parseable: %v\n%s", err, buf.String())
	}
	if rec["component"] != "ppm-test" || rec["msg"] != "hello" {
		t.Fatalf("json record = %v", rec)
	}

	if _, err := NewLogger("x", LogConfig{Format: "yaml"}, &buf); err == nil {
		t.Fatal("bogus format accepted")
	}
}

func TestStdLoggerBridge(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger("bridge", LogConfig{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	std := StdLogger(logger, slog.LevelInfo)
	std.Printf("legacy %d", 42)
	if !strings.Contains(buf.String(), "legacy 42") || !strings.Contains(buf.String(), "component=bridge") {
		t.Fatalf("bridge output:\n%s", buf.String())
	}
}
