package alert

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testEvent(rule string) Event {
	return Event{Rule: rule, Series: "estimate", State: "firing",
		Value: 0.7, Threshold: 0.85, Op: "<", Severity: "warning"}
}

func TestWebhookDeliversJSON(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type = %q", ct)
		}
		var ev Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("decode: %v", err)
		}
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{URL: srv.URL, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	wh.Notify(testEvent("estimate_low"))
	wh.Notify(testEvent("ks_high"))
	wh.Close()

	if wh.Delivered() != 2 || wh.Dropped() != 0 || wh.Failed() != 0 {
		t.Fatalf("delivered=%d dropped=%d failed=%d", wh.Delivered(), wh.Dropped(), wh.Failed())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Rule != "estimate_low" || got[1].Rule != "ks_high" {
		t.Fatalf("payloads = %+v", got)
	}
}

func TestWebhookRetriesTransientFailure(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{
		URL: srv.URL, Logger: quietLogger(),
		RetryBaseDelay: time.Millisecond,
		Jitter:         rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	wh.Notify(testEvent("estimate_low"))
	wh.Close()

	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (one retry)", calls.Load())
	}
	if wh.Delivered() != 1 || wh.Failed() != 0 {
		t.Fatalf("delivered=%d failed=%d", wh.Delivered(), wh.Failed())
	}
}

func TestWebhookGivesUpAfterRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{
		URL: srv.URL, Logger: quietLogger(),
		MaxRetries: 2, RetryBaseDelay: time.Millisecond,
		Jitter: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	wh.Notify(testEvent("estimate_low"))
	wh.Close()

	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3 (initial + 2 retries)", calls.Load())
	}
	if wh.Failed() != 1 || wh.Delivered() != 0 {
		t.Fatalf("failed=%d delivered=%d", wh.Failed(), wh.Delivered())
	}
}

func TestWebhookDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{URL: srv.URL, Logger: quietLogger(),
		RetryBaseDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	wh.Notify(testEvent("estimate_low"))
	wh.Close()

	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (4xx is terminal)", calls.Load())
	}
	if wh.Failed() != 1 {
		t.Fatalf("failed = %d", wh.Failed())
	}
}

func TestWebhookDropsWhenQueueFull(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{URL: srv.URL, Logger: quietLogger(), QueueSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// First event occupies the worker; second fills the queue; the rest
	// must be dropped without blocking.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5; i++ {
			wh.Notify(testEvent("estimate_low"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Notify blocked on a full queue")
	}
	close(release)
	wh.Close()

	if wh.Dropped() == 0 {
		t.Fatalf("dropped = %d, want > 0", wh.Dropped())
	}
	if wh.Delivered()+wh.Dropped()+wh.Failed() != 5 {
		t.Fatalf("accounting: delivered=%d dropped=%d failed=%d",
			wh.Delivered(), wh.Dropped(), wh.Failed())
	}
}

func TestWebhookConfigValidation(t *testing.T) {
	if _, err := NewWebhook(WebhookConfig{}); err == nil {
		t.Fatal("missing URL should be rejected")
	}
}
