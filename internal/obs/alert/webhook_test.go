package alert

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testEvent(rule string) Event {
	return Event{Rule: rule, Series: "estimate", State: "firing",
		Value: 0.7, Threshold: 0.85, Op: "<", Severity: "warning"}
}

func TestWebhookDeliversJSON(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type = %q", ct)
		}
		var ev Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("decode: %v", err)
		}
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{URL: srv.URL, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	wh.Notify(testEvent("estimate_low"))
	wh.Notify(testEvent("ks_high"))
	wh.Close()

	if wh.Delivered() != 2 || wh.Dropped() != 0 || wh.Failed() != 0 {
		t.Fatalf("delivered=%d dropped=%d failed=%d", wh.Delivered(), wh.Dropped(), wh.Failed())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Rule != "estimate_low" || got[1].Rule != "ks_high" {
		t.Fatalf("payloads = %+v", got)
	}
}

func TestWebhookRetriesTransientFailure(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{
		URL: srv.URL, Logger: quietLogger(),
		RetryBaseDelay: time.Millisecond,
		Jitter:         rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	wh.Notify(testEvent("estimate_low"))
	wh.Close()

	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (one retry)", calls.Load())
	}
	if wh.Delivered() != 1 || wh.Failed() != 0 {
		t.Fatalf("delivered=%d failed=%d", wh.Delivered(), wh.Failed())
	}
}

func TestWebhookGivesUpAfterRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{
		URL: srv.URL, Logger: quietLogger(),
		MaxRetries: 2, RetryBaseDelay: time.Millisecond,
		Jitter: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	wh.Notify(testEvent("estimate_low"))
	wh.Close()

	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3 (initial + 2 retries)", calls.Load())
	}
	if wh.Failed() != 1 || wh.Delivered() != 0 {
		t.Fatalf("failed=%d delivered=%d", wh.Failed(), wh.Delivered())
	}
}

func TestWebhookDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{URL: srv.URL, Logger: quietLogger(),
		RetryBaseDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	wh.Notify(testEvent("estimate_low"))
	wh.Close()

	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (4xx is terminal)", calls.Load())
	}
	if wh.Failed() != 1 {
		t.Fatalf("failed = %d", wh.Failed())
	}
}

func TestWebhookDropsWhenQueueFull(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{URL: srv.URL, Logger: quietLogger(), QueueSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// First event occupies the worker; second fills the queue; the rest
	// must be dropped without blocking.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5; i++ {
			wh.Notify(testEvent("estimate_low"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Notify blocked on a full queue")
	}
	close(release)
	wh.Close()

	if wh.Dropped() == 0 {
		t.Fatalf("dropped = %d, want > 0", wh.Dropped())
	}
	if wh.Delivered()+wh.Dropped()+wh.Failed() != 5 {
		t.Fatalf("accounting: delivered=%d dropped=%d failed=%d",
			wh.Delivered(), wh.Dropped(), wh.Failed())
	}
}

func TestWebhookConfigValidation(t *testing.T) {
	if _, err := NewWebhook(WebhookConfig{}); err == nil {
		t.Fatal("missing URL should be rejected")
	}
}

func TestWebhookRetries429(t *testing.T) {
	// 429 used to be terminal (any code < 500); it is retryable now.
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{
		URL: srv.URL, Logger: quietLogger(),
		RetryBaseDelay: time.Millisecond,
		Jitter:         rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	wh.Notify(testEvent("estimate_low"))
	wh.Close()

	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (429 must be retried)", calls.Load())
	}
	if wh.Delivered() != 1 || wh.Failed() != 0 {
		t.Fatalf("delivered=%d failed=%d", wh.Delivered(), wh.Failed())
	}
}

func TestWebhookHonorsRetryAfter(t *testing.T) {
	// The server asks for a 1s pause; the configured backoff would only
	// wait ~1ms, so a gap near a second proves the header won.
	var calls atomic.Int32
	var firstAt, secondAt time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstAt = time.Now()
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			secondAt = time.Now()
		}
	}))
	defer srv.Close()

	wh, err := NewWebhook(WebhookConfig{
		URL: srv.URL, Logger: quietLogger(),
		RetryBaseDelay: time.Millisecond,
		Jitter:         rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	wh.Notify(testEvent("estimate_low"))
	wh.Close()

	if calls.Load() != 2 || wh.Delivered() != 1 {
		t.Fatalf("calls=%d delivered=%d", calls.Load(), wh.Delivered())
	}
	if gap := secondAt.Sub(firstAt); gap < 900*time.Millisecond {
		t.Fatalf("retry happened after %v, want >= ~1s (Retry-After ignored?)", gap)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"5", 5 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"garbage", 0},
		{"86400", retryAfterCap}, // clamped
		{now.Add(10 * time.Second).Format(http.TimeFormat), 10 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // past date
		{now.Add(time.Hour).Format(http.TimeFormat), retryAfterCap},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
