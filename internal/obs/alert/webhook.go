package alert

// Webhook delivers alert events as JSON POSTs to an HTTP endpoint.
// Delivery is asynchronous: Notify enqueues onto a bounded channel and
// returns immediately (dropping when the queue is full, never blocking
// the monitoring path), while a single worker goroutine drains the
// queue and retries transient failures with full-jitter backoff — the
// same discipline the gateway uses for backend retries.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// WebhookConfig configures a Webhook notifier.
type WebhookConfig struct {
	// URL is the endpoint POSTed to (required).
	URL string
	// Timeout bounds each delivery attempt (default 5s).
	Timeout time.Duration
	// MaxRetries is how many re-attempts follow a failed delivery
	// (default 2, so up to 3 attempts total).
	MaxRetries int
	// RetryBaseDelay seeds the full-jitter backoff window
	// (default 100ms).
	RetryBaseDelay time.Duration
	// HTTPClient overrides the transport (default: a client with
	// Timeout). Tests inject fakes here.
	HTTPClient *http.Client
	// Logger receives delivery failures (nil = slog.Default()).
	Logger *slog.Logger
	// QueueSize bounds the pending-event queue (default 64).
	QueueSize int
	// Jitter overrides the backoff randomness source; nil uses a
	// time-seeded source.
	Jitter *rand.Rand
}

// Webhook is an asynchronous Notifier. Create with NewWebhook, stop
// with Close.
type Webhook struct {
	url    string
	client *http.Client
	logger *slog.Logger

	maxRetries int
	baseDelay  time.Duration

	jmu    sync.Mutex
	jitter *rand.Rand

	queue chan Event
	done  chan struct{}

	delivered atomic.Int64
	dropped   atomic.Int64
	failed    atomic.Int64

	closeOnce sync.Once
}

// NewWebhook validates cfg, starts the delivery worker and returns the
// notifier.
func NewWebhook(cfg WebhookConfig) (*Webhook, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("alert: webhook needs a URL")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = 100 * time.Millisecond
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: cfg.Timeout}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Jitter == nil {
		cfg.Jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	wh := &Webhook{
		url:        cfg.URL,
		client:     cfg.HTTPClient,
		logger:     cfg.Logger,
		maxRetries: cfg.MaxRetries,
		baseDelay:  cfg.RetryBaseDelay,
		jitter:     cfg.Jitter,
		queue:      make(chan Event, cfg.QueueSize),
		done:       make(chan struct{}),
	}
	go wh.worker()
	return wh, nil
}

// Notify enqueues ev for delivery, dropping it when the queue is full.
func (w *Webhook) Notify(ev Event) {
	select {
	case w.queue <- ev:
	default:
		w.dropped.Add(1)
		w.logger.Warn("alert webhook queue full, event dropped",
			"rule", ev.Rule, "state", ev.State)
	}
}

// Close stops accepting events, drains the queue and waits for the
// worker to finish in-flight deliveries.
func (w *Webhook) Close() {
	w.closeOnce.Do(func() { close(w.queue) })
	<-w.done
}

// Delivered reports successfully POSTed events.
func (w *Webhook) Delivered() int64 { return w.delivered.Load() }

// Dropped reports events rejected by the full queue.
func (w *Webhook) Dropped() int64 { return w.dropped.Load() }

// Failed reports events abandoned after exhausting retries.
func (w *Webhook) Failed() int64 { return w.failed.Load() }

// worker drains the queue until Close.
func (w *Webhook) worker() {
	defer close(w.done)
	for ev := range w.queue {
		if err := w.deliver(ev); err != nil {
			w.failed.Add(1)
			w.logger.Error("alert webhook delivery failed",
				"rule", ev.Rule, "state", ev.State, "err", err)
			continue
		}
		w.delivered.Add(1)
	}
}

// retryAfterCap bounds how long a server-provided Retry-After can make
// the worker sleep: the queue is bounded and other events are waiting
// behind the stalled one.
const retryAfterCap = 30 * time.Second

// deliver POSTs one event, retrying transient failures (network errors,
// 429 and 5xx responses) with full-jitter backoff: the sleep before
// attempt n is drawn uniformly from the upper half of base<<n, matching
// the gateway's backoff so a retry storm decorrelates. When a 429 or
// 503 carries a Retry-After header the server's own pacing wins
// (capped at retryAfterCap) — backing off faster than the endpoint
// asked for just burns the remaining attempts.
func (w *Webhook) deliver(ev Event) error {
	body, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("encoding event: %w", err)
	}
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt <= w.maxRetries; attempt++ {
		if attempt > 0 {
			if retryAfter > 0 {
				time.Sleep(retryAfter)
			} else {
				time.Sleep(w.backoff(attempt))
			}
		}
		retryAfter = 0
		resp, err := w.client.Post(w.url, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		code := resp.StatusCode
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		}
		resp.Body.Close()
		if code < 500 && code != http.StatusTooManyRequests {
			if code >= 300 {
				// Client errors are not retryable: the payload or the
				// endpoint is wrong and repeating won't change that.
				return fmt.Errorf("webhook returned %d", code)
			}
			return nil
		}
		lastErr = fmt.Errorf("webhook returned %d", code)
	}
	return fmt.Errorf("after %d attempts: %w", w.maxRetries+1, lastErr)
}

// parseRetryAfter interprets a Retry-After header value — either
// delta-seconds or an HTTP-date (RFC 9110 §10.2.3) — as a sleep
// duration relative to now, clamped to [0, retryAfterCap]. Returns 0
// for absent or malformed values, falling back to jittered backoff.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		d = time.Duration(secs) * time.Second
	} else if at, err := http.ParseTime(v); err == nil {
		d = at.Sub(now)
	} else {
		return 0
	}
	if d < 0 {
		return 0
	}
	if d > retryAfterCap {
		return retryAfterCap
	}
	return d
}

func (w *Webhook) backoff(attempt int) time.Duration {
	window := w.baseDelay << (attempt - 1)
	w.jmu.Lock()
	d := window/2 + time.Duration(w.jitter.Int63n(int64(window/2)+1))
	w.jmu.Unlock()
	return d
}
