package alert

import (
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blackboxval/internal/obs"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// window builds a closed window with one single-sample series per entry.
func window(idx int64, series map[string]float64) obs.Window {
	w := obs.Window{Index: idx, End: time.Unix(idx, 0), Batches: 1,
		Series: map[string]obs.Aggregate{}}
	for name, v := range series {
		w.Series[name] = obs.Aggregate{Count: 1, Sum: v, Min: v, Max: v, Last: v}
	}
	return w
}

func TestEngineFiresOnceWithHysteresis(t *testing.T) {
	var events []Event
	eng, err := New(Config{
		Rules: []Rule{{
			Name: "estimate_low", Series: "estimate", Op: "<", Threshold: 0.85,
			ForWindows: 3, ClearWindows: 2,
		}},
		Logger:   quietLogger(),
		Notifier: NotifierFunc(func(ev Event) { events = append(events, ev) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng.RegisterMetrics(reg)

	// Two breaching windows: below ForWindows, nothing fires.
	eng.Evaluate(window(0, map[string]float64{"estimate": 0.80}))
	eng.Evaluate(window(1, map[string]float64{"estimate": 0.79}))
	if len(events) != 0 {
		t.Fatalf("fired early: %+v", events)
	}
	// Third consecutive breach fires exactly once.
	eng.Evaluate(window(2, map[string]float64{"estimate": 0.78}))
	if len(events) != 1 || events[0].State != "firing" || events[0].Rule != "estimate_low" {
		t.Fatalf("events = %+v", events)
	}
	if events[0].WindowIndex != 2 || events[0].Value != 0.78 {
		t.Fatalf("firing event = %+v", events[0])
	}
	// Continued breaching does not re-fire (no flapping).
	eng.Evaluate(window(3, map[string]float64{"estimate": 0.70}))
	eng.Evaluate(window(4, map[string]float64{"estimate": 0.60}))
	if len(events) != 1 {
		t.Fatalf("flapped: %+v", events)
	}
	if got := eng.Active(); len(got) != 1 || got[0] != "estimate_low" {
		t.Fatalf("Active = %v", got)
	}

	// One clean window is not enough to resolve (ClearWindows: 2)...
	eng.Evaluate(window(5, map[string]float64{"estimate": 0.95}))
	if len(events) != 1 {
		t.Fatalf("resolved early: %+v", events)
	}
	// ...and a relapse inside the clear period resets the clear counter
	// without re-firing.
	eng.Evaluate(window(6, map[string]float64{"estimate": 0.80}))
	eng.Evaluate(window(7, map[string]float64{"estimate": 0.95}))
	if len(events) != 1 {
		t.Fatalf("unexpected edge during relapse: %+v", events)
	}
	// Second consecutive clean window resolves.
	eng.Evaluate(window(8, map[string]float64{"estimate": 0.96}))
	if len(events) != 2 || events[1].State != "resolved" {
		t.Fatalf("events = %+v", events)
	}
	if len(eng.Active()) != 0 {
		t.Fatalf("still active after resolve: %v", eng.Active())
	}

	// A fresh excursion fires again.
	for i := int64(9); i < 12; i++ {
		eng.Evaluate(window(i, map[string]float64{"estimate": 0.5}))
	}
	if len(events) != 3 || events[2].State != "firing" {
		t.Fatalf("refire events = %+v", events)
	}

	// Metrics: two firing edges, currently active.
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	if !strings.Contains(exp, `ppm_alerts_total{rule="estimate_low"} 2`) {
		t.Fatalf("missing alerts_total:\n%s", exp)
	}
	if !strings.Contains(exp, `ppm_alert_active{rule="estimate_low"} 1`) {
		t.Fatalf("missing alert_active:\n%s", exp)
	}
}

func TestEngineMissingSeriesCountsAsClear(t *testing.T) {
	var events []Event
	eng, err := New(Config{
		Rules: []Rule{{
			Name: "ks_high", Series: "ks_max", Op: ">=", Threshold: 0.3,
		}},
		Logger:   quietLogger(),
		Notifier: NotifierFunc(func(ev Event) { events = append(events, ev) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Evaluate(window(0, map[string]float64{"ks_max": 0.4}))
	if len(events) != 1 || events[0].State != "firing" {
		t.Fatalf("events = %+v", events)
	}
	// A window without the series resolves (default ClearWindows 1).
	eng.Evaluate(window(1, map[string]float64{"other": 1}))
	if len(events) != 2 || events[1].State != "resolved" {
		t.Fatalf("events = %+v", events)
	}
}

func TestEngineReduceKinds(t *testing.T) {
	var fired int
	eng, err := New(Config{
		Rules: []Rule{{
			Name: "spike", Series: "lat", Op: ">", Threshold: 10, Reduce: "max",
		}},
		Logger:   quietLogger(),
		Notifier: NotifierFunc(func(Event) { fired++ }),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mean is 4 but max is 11: the max reduction breaches.
	w := obs.Window{Index: 0, Batches: 1, Series: map[string]obs.Aggregate{
		"lat": {Count: 3, Sum: 12, Min: 0.5, Max: 11, Last: 0.5},
	}}
	eng.Evaluate(w)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestEngineValidation(t *testing.T) {
	cases := []Rule{
		{Series: "x", Op: "<", Threshold: 1},                            // no name
		{Name: "r", Op: "<", Threshold: 1},                              // no series
		{Name: "r", Series: "x", Op: "!=", Threshold: 1},                // bad op
		{Name: "r", Series: "x", Op: "<", Threshold: 1, Reduce: "mode"}, // bad reduce
	}
	for i, r := range cases {
		if _, err := New(Config{Rules: []Rule{r}, Logger: quietLogger()}); err == nil {
			t.Fatalf("case %d: rule %+v should be rejected", i, r)
		}
	}
	if _, err := New(Config{Logger: quietLogger()}); err == nil {
		t.Fatal("empty rule set should be rejected")
	}
	dup := Rule{Name: "r", Series: "x", Op: "<", Threshold: 1}
	if _, err := New(Config{Rules: []Rule{dup, dup}, Logger: quietLogger()}); err == nil {
		t.Fatal("duplicate names should be rejected")
	}

	// Defaults normalize.
	eng, err := New(Config{Rules: []Rule{{Name: "r", Series: "x", Op: "<", Threshold: 1}},
		Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	got := eng.Rules()[0]
	if got.ForWindows != 1 || got.ClearWindows != 1 || got.Severity != "warning" {
		t.Fatalf("defaults = %+v", got)
	}
}

func TestEngineAsTimeSeriesHook(t *testing.T) {
	ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	eng, err := New(Config{
		Rules: []Rule{{
			Name: "alarm_on", Series: "alarm", Op: ">=", Threshold: 1, ForWindows: 2,
		}},
		Logger:   quietLogger(),
		Notifier: NotifierFunc(func(ev Event) { events = append(events, ev) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts.OnWindowClose(eng.Evaluate)
	for _, alarm := range []float64{0, 1, 1, 1} {
		ts.Record("alarm", alarm)
		ts.Commit()
	}
	if len(events) != 1 || events[0].State != "firing" || events[0].WindowIndex != 2 {
		t.Fatalf("events = %+v", events)
	}
}

func TestLoadRules(t *testing.T) {
	dir := t.TempDir()

	bare := filepath.Join(dir, "bare.json")
	os.WriteFile(bare, []byte(`[{"name":"a","series":"estimate","op":"<","threshold":0.85,"for_windows":3}]`), 0o644)
	rules, err := LoadRules(bare)
	if err != nil || len(rules) != 1 || rules[0].Name != "a" || rules[0].ForWindows != 3 {
		t.Fatalf("bare = %+v, %v", rules, err)
	}

	wrapped := filepath.Join(dir, "wrapped.json")
	os.WriteFile(wrapped, []byte(`{"rules":[{"name":"b","series":"ks_max","op":">=","threshold":0.3,"severity":"critical"}]}`), 0o644)
	rules, err = LoadRules(wrapped)
	if err != nil || len(rules) != 1 || rules[0].Severity != "critical" {
		t.Fatalf("wrapped = %+v, %v", rules, err)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"not_rules": 1}`), 0o644)
	if _, err := LoadRules(bad); err == nil {
		t.Fatal("object without rules key should error")
	}
	os.WriteFile(bad, []byte(`{{{`), 0o644)
	if _, err := LoadRules(bad); err == nil {
		t.Fatal("malformed JSON should error")
	}
	if _, err := LoadRules(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestNotifiersFanOut(t *testing.T) {
	var a, b []string
	n := Notifiers(
		NotifierFunc(func(ev Event) { a = append(a, ev.Rule) }),
		nil, // nils are tolerated so call sites can pass optional hooks
		NotifierFunc(func(ev Event) { b = append(b, ev.Rule) }),
	)
	n.Notify(Event{Rule: "r1"})
	n.Notify(Event{Rule: "r2"})
	if len(a) != 2 || len(b) != 2 || a[0] != "r1" || b[1] != "r2" {
		t.Fatalf("fan-out: a=%v b=%v", a, b)
	}
	if Notifiers() != nil || Notifiers(nil, nil) != nil {
		t.Fatal("empty fan-out should collapse to nil")
	}
	single := NotifierFunc(func(Event) {})
	if got := Notifiers(nil, single); got == nil {
		t.Fatal("single notifier lost")
	}
}
