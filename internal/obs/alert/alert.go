// Package alert is the rules engine on top of the drift timeline
// (obs.TimeSeries): threshold-for-duration rules — "estimated accuracy
// below 0.85 for at least 3 windows", "KS statistic above critical for
// at least 2 windows" — evaluated on every window close. A firing rule
// emits one structured slog event, increments ppm_alerts_total, flips
// ppm_alert_active to 1 and notifies an optional Notifier (typically
// the webhook in this package); hysteresis on both edges means an
// alert fires exactly once per excursion and never flaps while the
// condition persists.
package alert

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"blackboxval/internal/obs"
)

// Rule is one threshold-for-duration alert rule.
type Rule struct {
	// Name identifies the rule in logs, metrics labels and payloads.
	Name string `json:"name"`
	// Series is the timeline series the rule watches ("estimate",
	// "ks_max", "alarm", ...).
	Series string `json:"series"`
	// Op compares the reduced window value to Threshold: one of
	// "<", "<=", ">", ">=".
	Op string `json:"op"`
	// Threshold is the breach boundary.
	Threshold float64 `json:"threshold"`
	// Reduce collapses the window aggregate to one value: mean
	// (default), min, max, last, sum or count.
	Reduce string `json:"reduce,omitempty"`
	// ForWindows is how many consecutive breaching windows are required
	// before the alert fires (default 1).
	ForWindows int `json:"for_windows,omitempty"`
	// ClearWindows is how many consecutive non-breaching windows are
	// required before an active alert resolves (default 1).
	ClearWindows int `json:"clear_windows,omitempty"`
	// Severity is a free-form label carried into events ("warning" when
	// empty).
	Severity string `json:"severity,omitempty"`
}

// validate normalizes defaults and rejects malformed rules.
func (r *Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("alert: rule needs a name")
	}
	if r.Series == "" {
		return fmt.Errorf("alert: rule %q needs a series", r.Name)
	}
	switch r.Op {
	case "<", "<=", ">", ">=":
	default:
		return fmt.Errorf("alert: rule %q has op %q (want <, <=, > or >=)", r.Name, r.Op)
	}
	if _, err := (obs.Aggregate{}).Reduce(r.Reduce); err != nil {
		return fmt.Errorf("alert: rule %q: %w", r.Name, err)
	}
	if r.ForWindows <= 0 {
		r.ForWindows = 1
	}
	if r.ClearWindows <= 0 {
		r.ClearWindows = 1
	}
	if r.Severity == "" {
		r.Severity = "warning"
	}
	return nil
}

// breached applies the rule's comparison to a reduced window value.
func (r *Rule) breached(v float64) bool {
	switch r.Op {
	case "<":
		return v < r.Threshold
	case "<=":
		return v <= r.Threshold
	case ">":
		return v > r.Threshold
	default: // ">="
		return v >= r.Threshold
	}
}

// Event is the structured record of an alert edge — it is both the
// webhook payload and the content of the slog event.
type Event struct {
	Rule        string    `json:"rule"`
	Series      string    `json:"series"`
	State       string    `json:"state"` // "firing" or "resolved"
	Value       float64   `json:"value"`
	Threshold   float64   `json:"threshold"`
	Op          string    `json:"op"`
	Severity    string    `json:"severity"`
	WindowIndex int64     `json:"window_index"`
	At          time.Time `json:"at"`
}

// Notifier receives alert edge events. Notify must not block the
// caller: window closes happen on the monitoring path.
type Notifier interface {
	Notify(Event)
}

// NotifierFunc adapts a function to the Notifier interface.
type NotifierFunc func(Event)

// Notify calls f.
func (f NotifierFunc) Notify(ev Event) { f(ev) }

// Notifiers fans every event out to several notifiers in order,
// skipping nils, so one engine can drive e.g. a webhook and the
// incident flight recorder at once. Returns nil when every argument is
// nil, so callers can pass the result straight to Config.Notifier.
func Notifiers(ns ...Notifier) Notifier {
	live := make([]Notifier, 0, len(ns))
	for _, n := range ns {
		if n != nil {
			live = append(live, n)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return NotifierFunc(func(ev Event) {
		for _, n := range live {
			n.Notify(ev)
		}
	})
}

// Config configures an Engine.
type Config struct {
	// Rules are the alert rules (at least one).
	Rules []Rule
	// Logger receives the structured firing/resolved events
	// (nil = slog.Default()).
	Logger *slog.Logger
	// Notifier optionally receives every edge event (e.g. a Webhook).
	Notifier Notifier
}

// ruleState is one rule plus its hysteresis counters.
type ruleState struct {
	rule     Rule
	breach   int // consecutive breaching windows
	clear    int // consecutive non-breaching windows
	active   bool
	lastSeen float64
}

// Engine evaluates the rules against every closed timeline window.
// Wire it with ts.OnWindowClose(engine.Evaluate). Safe for concurrent
// use, though a single TimeSeries delivers windows serially.
type Engine struct {
	logger   *slog.Logger
	notifier Notifier

	mu    sync.Mutex
	rules []*ruleState

	// metric families wired by RegisterMetrics (nil until then).
	fired  *obs.CounterVec
	active *obs.GaugeVec
}

// New validates the rules and returns a ready engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Rules) == 0 {
		return nil, fmt.Errorf("alert: at least one rule is required")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	e := &Engine{logger: cfg.Logger, notifier: cfg.Notifier}
	seen := map[string]bool{}
	for _, r := range cfg.Rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("alert: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		e.rules = append(e.rules, &ruleState{rule: r})
	}
	return e, nil
}

// Rules returns the normalized rule set.
func (e *Engine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, len(e.rules))
	for i, rs := range e.rules {
		out[i] = rs.rule
	}
	return out
}

// RegisterMetrics registers the engine's families on reg and pre-seeds
// one ppm_alert_active series per rule, so dashboards see the inactive
// rules too:
//
//	ppm_alerts_total{rule}  counter  firing edges per rule
//	ppm_alert_active{rule}  gauge    1 while the rule's alert is active
func (e *Engine) RegisterMetrics(reg *obs.Registry) {
	fired := reg.CounterVec("ppm_alerts_total",
		"Alert firing edges by rule.", "rule")
	active := reg.GaugeVec("ppm_alert_active",
		"1 while the rule's alert is active, else 0.", "rule")
	e.mu.Lock()
	e.fired = fired
	e.active = active
	for _, rs := range e.rules {
		active.Set(boolGauge(rs.active), rs.rule.Name)
	}
	e.mu.Unlock()
}

// Evaluate applies every rule to one closed window. Designed as an
// obs.TimeSeries OnWindowClose hook; events are logged and notified
// after the engine's own lock is released.
func (e *Engine) Evaluate(w obs.Window) {
	var events []Event
	e.mu.Lock()
	for _, rs := range e.rules {
		ev, fire := rs.step(w)
		if fire {
			events = append(events, ev)
			if e.fired != nil && ev.State == "firing" {
				e.fired.Inc(ev.Rule)
			}
			if e.active != nil {
				e.active.Set(boolGauge(rs.active), ev.Rule)
			}
		}
	}
	e.mu.Unlock()
	for _, ev := range events {
		e.emit(ev)
	}
}

// step advances one rule's hysteresis state machine for a window and
// reports whether an edge event must be emitted.
func (rs *ruleState) step(w obs.Window) (Event, bool) {
	agg, ok := w.Series[rs.rule.Series]
	breached := false
	value := 0.0
	if ok {
		// Reduce cannot fail here: the kind was validated in New.
		value, _ = agg.Reduce(rs.rule.Reduce)
		rs.lastSeen = value
		breached = rs.rule.breached(value)
	}
	// A window without the series counts as non-breaching: the signal
	// disappeared, which the clear hysteresis absorbs.
	if breached {
		rs.breach++
		rs.clear = 0
	} else {
		rs.breach = 0
		rs.clear++
	}
	switch {
	case !rs.active && rs.breach >= rs.rule.ForWindows:
		rs.active = true
		return rs.event("firing", value, w), true
	case rs.active && rs.clear >= rs.rule.ClearWindows:
		rs.active = false
		return rs.event("resolved", value, w), true
	}
	return Event{}, false
}

func (rs *ruleState) event(state string, value float64, w obs.Window) Event {
	return Event{
		Rule:        rs.rule.Name,
		Series:      rs.rule.Series,
		State:       state,
		Value:       value,
		Threshold:   rs.rule.Threshold,
		Op:          rs.rule.Op,
		Severity:    rs.rule.Severity,
		WindowIndex: w.Index,
		At:          w.End,
	}
}

// emit logs one edge event and forwards it to the notifier.
func (e *Engine) emit(ev Event) {
	level := slog.LevelWarn
	if ev.State == "resolved" {
		level = slog.LevelInfo
	}
	e.logger.Log(nil, level, "alert "+ev.State,
		"rule", ev.Rule, "series", ev.Series, "value", ev.Value,
		"op", ev.Op, "threshold", ev.Threshold, "severity", ev.Severity,
		"window", ev.WindowIndex)
	if e.notifier != nil {
		e.notifier.Notify(ev)
	}
}

// Active returns the names of the currently active alerts, in rule
// order.
func (e *Engine) Active() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, rs := range e.rules {
		if rs.active {
			out = append(out, rs.rule.Name)
		}
	}
	return out
}

// rulesFile is the on-disk rule set: either a bare JSON array of rules
// or an object with a "rules" key.
type rulesFile struct {
	Rules []Rule `json:"rules"`
}

// LoadRules reads alert rules from a JSON file. Both shapes parse:
//
//	[{"name": "estimate_low", "series": "estimate", "op": "<", ...}]
//	{"rules": [...]}
func LoadRules(path string) ([]Rule, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("alert: reading rules: %w", err)
	}
	var bare []Rule
	if err := json.Unmarshal(buf, &bare); err == nil {
		return bare, nil
	}
	var wrapped rulesFile
	if err := json.Unmarshal(buf, &wrapped); err != nil {
		return nil, fmt.Errorf("alert: parsing rules %s: %w", path, err)
	}
	if wrapped.Rules == nil {
		return nil, fmt.Errorf("alert: %s has neither a rule array nor a \"rules\" key", path)
	}
	return wrapped.Rules, nil
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
