package obs

import (
	"strings"
	"testing"
	"time"
)

// fleetFragments models the demo topology: traffic → gateway (relay
// child) → backend predict, with the shadow monitor_observe hanging
// off the relay's trace, each in its own process journal.
func fleetFragments(trace string) []TraceFragment {
	t0 := time.Unix(1700000000, 0).UTC()
	at := func(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }
	return []TraceFragment{
		{Service: "gateway", Spans: []SpanJSON{
			{
				Name: "gateway_request", TraceID: trace,
				SpanID: "aaaaaaaaaaaaaaa1", ParentSpanID: "cccccccccccccc99",
				Start: at(0), Seconds: 0.040,
				Children: []SpanJSON{{
					Name: "gateway_relay", SpanID: "aaaaaaaaaaaaaaa2",
					ParentSpanID: "aaaaaaaaaaaaaaa1", Start: at(2), Seconds: 0.030,
				}},
			},
		}},
		{Service: "backend", Spans: []SpanJSON{
			{
				Name: "backend_predict", TraceID: trace,
				SpanID: "bbbbbbbbbbbbbbb1", ParentSpanID: "aaaaaaaaaaaaaaa2",
				Start: at(5), Seconds: 0.020,
			},
		}},
		{Service: "monitor", Spans: []SpanJSON{
			{
				Name: "monitor_observe", TraceID: trace,
				SpanID: "dddddddddddddddd", ParentSpanID: "aaaaaaaaaaaaaaa1",
				Start: at(45), Seconds: 0.010,
			},
		}},
	}
}

func TestStitchTraceAcrossFragments(t *testing.T) {
	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	wf, err := StitchTrace(trace, fleetFragments(trace))
	if err != nil {
		t.Fatal(err)
	}
	if wf.TraceID != trace {
		t.Fatalf("trace id %q", wf.TraceID)
	}
	if len(wf.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(wf.Rows))
	}
	// The client's synthetic span id (cccc...99) exists in no journal,
	// so gateway_request is promoted to the single root and every other
	// span hangs off it.
	if wf.Roots != 1 {
		t.Fatalf("got %d roots, want 1", wf.Roots)
	}
	byName := map[string]WaterfallRow{}
	for _, r := range wf.Rows {
		byName[r.Span.Name] = r
	}
	for name, svc := range map[string]string{
		"gateway_request": "gateway",
		"gateway_relay":   "gateway",
		"backend_predict": "backend",
		"monitor_observe": "monitor",
	} {
		row, ok := byName[name]
		if !ok {
			t.Fatalf("span %s missing from waterfall", name)
		}
		if row.Service != svc {
			t.Fatalf("span %s attributed to %q, want %q", name, row.Service, svc)
		}
	}
	if byName["gateway_request"].Depth != 0 || !byName["gateway_request"].Root {
		t.Fatal("gateway_request should be the depth-0 root")
	}
	if byName["gateway_relay"].Depth != 1 || byName["monitor_observe"].Depth != 1 {
		t.Fatal("relay and observe should sit at depth 1 under the request")
	}
	if byName["backend_predict"].Depth != 2 {
		t.Fatalf("backend_predict depth %d, want 2 (child of the relay)", byName["backend_predict"].Depth)
	}
	// Cross-process ordering: offsets are relative to the earliest
	// span, so the root starts at 0.
	if byName["gateway_request"].OffsetSeconds != 0 {
		t.Fatalf("root offset %f", byName["gateway_request"].OffsetSeconds)
	}
}

func TestStitchDedupAndMissingTrace(t *testing.T) {
	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	frags := fleetFragments(trace)
	// The same fragment journaled twice (ring + journal overlap) must
	// not duplicate rows.
	frags = append(frags, frags[1])
	wf, err := StitchTrace(trace, frags)
	if err != nil {
		t.Fatal(err)
	}
	if len(wf.Rows) != 4 {
		t.Fatalf("dedup failed: %d rows", len(wf.Rows))
	}
	if _, err := StitchTrace("ffffffffffffffffffffffffffffffff", frags); err == nil {
		t.Fatal("unknown trace id should error")
	}
}

func TestStitchRendersMarkdownAndHTML(t *testing.T) {
	const trace = "4bf92f3577b34da6a3ce929d0e0e4736"
	wf, err := StitchTrace(trace, fleetFragments(trace))
	if err != nil {
		t.Fatal(err)
	}
	md := wf.Markdown()
	for _, want := range []string{trace, "gateway_request", "gateway_relay", "backend_predict", "monitor_observe", "| service |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	html := string(wf.HTML())
	for _, want := range []string{trace, "backend_predict", "monitor_observe", "<style>"} {
		if !strings.Contains(html, want) {
			t.Fatalf("html missing %q", want)
		}
	}
	if strings.Contains(html, "<script") {
		t.Fatal("waterfall HTML must stay script-free")
	}
}
