package obs

import (
	"strings"
	"testing"
	"time"
)

func TestProfilerCaptureAndCooldown(t *testing.T) {
	p := NewProfiler(ProfilerConfig{CPUDuration: 20 * time.Millisecond, Cooldown: time.Hour})
	prof, err := p.Capture()
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.CPU) == 0 || len(prof.Heap) == 0 {
		t.Fatalf("capture: cpu %d bytes, heap %d bytes — want both non-empty", len(prof.CPU), len(prof.Heap))
	}
	for _, raw := range [][]byte{prof.CPU, prof.Heap} {
		if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
			t.Fatalf("profile is not a gzipped pprof proto: % x", raw[:2])
		}
	}
	if prof.CPUSeconds != 0.02 {
		t.Fatalf("CPUSeconds = %v, want 0.02", prof.CPUSeconds)
	}

	if _, err := p.Capture(); err == nil || !strings.Contains(err.Error(), "cooldown") {
		t.Fatalf("second capture error = %v, want cooldown refusal", err)
	}

	// Advancing past the cooldown re-enables capture.
	p.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	if _, err := p.Capture(); err != nil {
		t.Fatalf("capture after cooldown: %v", err)
	}
}
