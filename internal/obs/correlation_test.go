package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSpanAttrsInJSONAndReport(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "gateway_request")
	sp.SetAttr("request_id", "abc-00000001")
	sp.SetAttr("outcome", "ok")
	sp.SetMetric("bytes", 42)
	sp.End()

	if v, ok := sp.Attr("request_id"); !ok || v != "abc-00000001" {
		t.Fatalf("Attr = %q, %v", v, ok)
	}
	if _, ok := sp.Attr("missing"); ok {
		t.Fatal("missing attr should not be found")
	}

	buf, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out []SpanJSON
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Attrs["request_id"] != "abc-00000001" || out[0].Attrs["outcome"] != "ok" {
		t.Fatalf("span export = %+v", out)
	}

	var report strings.Builder
	sp.Report(&report)
	if !strings.Contains(report.String(), "request_id=abc-00000001") {
		t.Fatalf("report missing attr: %q", report.String())
	}
}

func TestMiddlewareEchoesRequestID(t *testing.T) {
	reg := NewRegistry()
	h := Middleware(reg, "test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	req.Header.Set(RequestIDHeader, "gw-0001")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get(RequestIDHeader); got != "gw-0001" {
		t.Fatalf("echoed id = %q, want gw-0001", got)
	}

	// Without an incoming id the middleware mints nothing: only the
	// gateway is the id authority.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/x", nil))
	if got := rr.Header().Get(RequestIDHeader); got != "" {
		t.Fatalf("unexpected minted id %q", got)
	}
}
