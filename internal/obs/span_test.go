package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "train")
	cctx, child := StartSpan(ctx, "meta_dataset")
	child.SetMetric("examples", 128)
	_, grand := StartSpan(cctx, "featurize")
	grand.End()
	child.End()
	_, fit := StartSpan(ctx, "fit")
	fit.End()
	root.End()

	got := tr.Traces()
	if len(got) != 1 {
		t.Fatalf("tracer retained %d roots, want 1 (children must not be recorded as roots)", len(got))
	}
	if got[0] != root {
		t.Fatal("recorded root is not the started root")
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "meta_dataset" || kids[1].Name() != "fit" {
		t.Fatalf("children = %v", kids)
	}
	if root.Child("meta_dataset").Child("featurize") == nil {
		t.Fatal("grandchild not attached")
	}
	if v, ok := root.Child("meta_dataset").Metric("examples"); !ok || v != 128 {
		t.Fatalf("metric = %v (ok=%v)", v, ok)
	}
	if root.Duration() <= 0 {
		t.Fatal("root duration not positive")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	_, s := StartSpan(context.Background(), "once")
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatal("second End changed the duration")
	}
}

func TestDefaultTracerFallback(t *testing.T) {
	before := len(DefaultTracer().Traces())
	_, s := StartSpan(context.Background(), "orphan")
	s.End()
	if got := len(DefaultTracer().Traces()); got != before+1 {
		t.Fatalf("default tracer grew by %d, want 1", got-before)
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(3)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, s := StartSpan(ctx, "burst")
		s.End()
	}
	if got := len(tr.Traces()); got != 3 {
		t.Fatalf("ring retained %d, want 3", got)
	}
}

func TestSpanJSONAndReport(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "pipeline")
	root.SetMetric("rows", 1000)
	_, stage := StartSpan(ctx, "stage_a")
	stage.End()
	root.End()

	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []SpanJSON
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("JSON export not parseable: %v", err)
	}
	if len(decoded) != 1 || decoded[0].Name != "pipeline" || len(decoded[0].Children) != 1 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded[0].Metrics["rows"] != 1000 {
		t.Fatalf("metrics = %v", decoded[0].Metrics)
	}
	if decoded[0].Seconds <= 0 {
		t.Fatal("root seconds not positive")
	}

	var b strings.Builder
	root.Report(&b)
	report := b.String()
	if !strings.Contains(report, "pipeline") || !strings.Contains(report, "  stage_a") {
		t.Fatalf("report:\n%s", report)
	}
	if !strings.Contains(report, "rows=1000") {
		t.Fatalf("report missing metric annotation:\n%s", report)
	}
	if !strings.Contains(report, "100.0%") {
		t.Fatalf("report missing root percentage:\n%s", report)
	}
}
