package obs

// timeseries.go is the drift timeline store: a fixed-capacity ring of
// per-window aggregates fed by a small TimeSeries API. Writers record
// named samples into the currently open window ("estimate", "ks_max",
// "alarm", ...) and commit one logical batch at a time; after
// WindowBatches commits the window closes, its aggregates (count, sum,
// min, max, last, quantile sketch) are frozen into the ring, and any
// registered OnWindowClose hooks — the alert rules engine, dashboards —
// observe the finished window. Closed windows are immutable, so
// snapshots handed to scrapers never race with the ingest path.

import (
	"fmt"
	"sync"
	"time"

	"blackboxval/internal/stats"
)

// TimeSeriesConfig configures a TimeSeries store.
type TimeSeriesConfig struct {
	// Capacity bounds the retained closed windows (default 128). The
	// oldest window is evicted when the ring is full.
	Capacity int
	// WindowBatches is the number of Commit calls aggregated into one
	// window before it closes automatically (default 1: every batch is
	// its own window).
	WindowBatches int
	// Quantiles are the percentiles in (0,100) tracked per series by a
	// mergeable deterministic quantile sketch (default 50, 90, 99).
	// Values outside (0,100) are rejected by NewTimeSeries.
	Quantiles []float64
}

func (c *TimeSeriesConfig) defaults() {
	if c.Capacity <= 0 {
		c.Capacity = 128
	}
	if c.WindowBatches <= 0 {
		c.WindowBatches = 1
	}
	if c.Quantiles == nil {
		c.Quantiles = []float64{50, 90, 99}
	}
}

// Aggregate is the frozen per-series summary of one closed window.
type Aggregate struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Last is the most recently recorded sample of the window — the
	// value dashboards plot when one batch maps to one window.
	Last float64 `json:"last"`
	// Quantiles holds the sketch estimates keyed "p50", "p90", ...
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	// SumExact is the order-invariant exact accumulator behind Sum,
	// carried so federated merges reproduce the single-node sum
	// bit-for-bit instead of re-adding shard floats.
	SumExact *stats.ExactSum `json:"sum_exact,omitempty"`
	// Sketch is the mergeable quantile sketch behind Quantiles — the
	// sufficient statistic /federate ships so fleet quantiles and drift
	// tests are computed over merged distributions, never aggregated
	// from per-shard point estimates.
	Sketch *stats.KLL `json:"sketch,omitempty"`
}

// Mean returns the window mean (0 for an empty aggregate).
func (a Aggregate) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Reduce collapses the aggregate to one value: "mean" (default when
// kind is empty), "min", "max", "last", "sum" or "count".
func (a Aggregate) Reduce(kind string) (float64, error) {
	switch kind {
	case "", "mean":
		return a.Mean(), nil
	case "min":
		return a.Min, nil
	case "max":
		return a.Max, nil
	case "last":
		return a.Last, nil
	case "sum":
		return a.Sum, nil
	case "count":
		return float64(a.Count), nil
	}
	return 0, fmt.Errorf("obs: unknown reduce %q (want mean, min, max, last, sum or count)", kind)
}

// Window is one closed timeline window. Windows are immutable once
// closed; the Series map must not be modified by consumers.
type Window struct {
	// Index is the 0-based position of the window in the stream (it
	// keeps growing after old windows are evicted from the ring).
	Index int64 `json:"index"`
	// Start and End bracket the wall-clock lifetime of the window.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Batches is how many Commit calls the window aggregates.
	Batches int `json:"batches"`
	// Series maps series name to its per-window aggregate.
	Series map[string]Aggregate `json:"series"`
}

// openSeries accumulates one series of the currently open window.
type openSeries struct {
	count          int
	min, max, last float64
	sum            *stats.ExactSum
	sketch         *stats.KLL
}

// TimeSeries is the windowed drift timeline store. It is safe for
// concurrent use: writers may Record/Commit while scrapers call
// Windows. Window-close hooks run synchronously on the committing
// goroutine, after the store's own lock is released.
type TimeSeries struct {
	cfg TimeSeriesConfig

	mu        sync.Mutex
	open      map[string]*openSeries
	openStart time.Time
	batches   int
	next      int64 // index assigned to the next closed window
	ring      []Window
	hooks     []func(Window)
}

// NewTimeSeries validates the configuration and returns an empty store.
func NewTimeSeries(cfg TimeSeriesConfig) (*TimeSeries, error) {
	cfg.defaults()
	for _, q := range cfg.Quantiles {
		if q <= 0 || q >= 100 {
			return nil, fmt.Errorf("obs: timeline quantile %v out of (0,100)", q)
		}
	}
	return &TimeSeries{cfg: cfg, open: map[string]*openSeries{}}, nil
}

// Record adds one sample to the named series of the open window.
func (ts *TimeSeries) Record(series string, v float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.recordLocked(series, v)
}

// RecordAll adds a batch of samples to the named series under a single
// lock acquisition — the bulk path the monitor uses to feed per-class
// output distributions into the timeline.
func (ts *TimeSeries) RecordAll(series string, vs []float64) {
	if len(vs) == 0 {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, v := range vs {
		ts.recordLocked(series, v)
	}
}

func (ts *TimeSeries) recordLocked(series string, v float64) {
	if ts.openStart.IsZero() {
		ts.openStart = time.Now()
	}
	s := ts.open[series]
	if s == nil {
		s = &openSeries{sum: stats.NewExactSum(), sketch: stats.NewKLL()}
		ts.open[series] = s
	}
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum.Add(v)
	s.last = v
	s.sketch.Add(v)
}

// Commit marks one logical batch as fully recorded. After WindowBatches
// commits the open window closes: its aggregates join the ring and the
// close hooks fire (on the calling goroutine, outside the store lock).
func (ts *TimeSeries) Commit() {
	ts.mu.Lock()
	ts.batches++
	if ts.batches < ts.cfg.WindowBatches {
		ts.mu.Unlock()
		return
	}
	w, hooks := ts.closeLocked()
	ts.mu.Unlock()
	for _, fn := range hooks {
		fn(w)
	}
}

// CloseWindow force-closes the open window regardless of its commit
// count, firing the hooks. It reports false (and closes nothing) when
// the window holds no commits and no samples.
func (ts *TimeSeries) CloseWindow() (Window, bool) {
	ts.mu.Lock()
	if ts.batches == 0 && len(ts.open) == 0 {
		ts.mu.Unlock()
		return Window{}, false
	}
	w, hooks := ts.closeLocked()
	ts.mu.Unlock()
	for _, fn := range hooks {
		fn(w)
	}
	return w, true
}

// closeLocked freezes the open window into the ring. Callers must hold
// ts.mu; the returned hooks must be invoked after releasing it.
func (ts *TimeSeries) closeLocked() (Window, []func(Window)) {
	w := Window{
		Index:   ts.next,
		Start:   ts.openStart,
		End:     time.Now(),
		Batches: ts.batches,
		Series:  make(map[string]Aggregate, len(ts.open)),
	}
	if w.Start.IsZero() {
		w.Start = w.End
	}
	for name, s := range ts.open {
		// The open map is reset below, so the accumulator and sketch
		// transfer into the immutable window without copying.
		agg := Aggregate{
			Count: s.count, Sum: s.sum.Value(), Min: s.min, Max: s.max, Last: s.last,
			SumExact: s.sum, Sketch: s.sketch,
		}
		if s.count > 0 {
			agg.Quantiles = make(map[string]float64, len(ts.cfg.Quantiles))
			for _, q := range ts.cfg.Quantiles {
				agg.Quantiles[quantileKey(q)] = s.sketch.Quantile(q / 100)
			}
		}
		w.Series[name] = agg
	}
	ts.next++
	ts.ring = append(ts.ring, w)
	if len(ts.ring) > ts.cfg.Capacity {
		ts.ring = ts.ring[len(ts.ring)-ts.cfg.Capacity:]
	}
	ts.open = map[string]*openSeries{}
	ts.openStart = time.Time{}
	ts.batches = 0
	return w, ts.hooks
}

// quantileKey renders a percentile as its JSON key ("p50", "p99.9").
func quantileKey(q float64) string {
	return fmt.Sprintf("p%g", q)
}

// OnWindowClose registers fn to observe every closed window, in close
// order. Hooks run synchronously on the goroutine that closed the
// window; they must not call back into the closing TimeSeries methods
// (Record/Commit/CloseWindow) but may read Windows/Last.
func (ts *TimeSeries) OnWindowClose(fn func(Window)) {
	ts.mu.Lock()
	ts.hooks = append(ts.hooks, fn)
	ts.mu.Unlock()
}

// OpenIndex returns the index the currently open window will carry
// when it closes. Batch observers use it to stamp served batches with
// their timeline window, so late label joins can compute lag in
// windows instead of inferring time from request-id sequence numbers.
func (ts *TimeSeries) OpenIndex() int64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.next
}

// Windows returns a snapshot of the retained closed windows, oldest
// first. The Window structs (and their Series maps) are immutable.
func (ts *TimeSeries) Windows() []Window {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]Window(nil), ts.ring...)
}

// Last returns the most recently closed window.
func (ts *TimeSeries) Last() (Window, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.ring) == 0 {
		return Window{}, false
	}
	return ts.ring[len(ts.ring)-1], true
}

// Len returns the number of retained closed windows.
func (ts *TimeSeries) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.ring)
}

// Capacity returns the configured ring capacity.
func (ts *TimeSeries) Capacity() int { return ts.cfg.Capacity }

// WindowBatches returns the configured commits-per-window.
func (ts *TimeSeries) WindowBatches() int { return ts.cfg.WindowBatches }

// Quantiles returns a copy of the configured percentile grid.
func (ts *TimeSeries) Quantiles() []float64 {
	return append([]float64(nil), ts.cfg.Quantiles...)
}
