package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"
)

// feedRoundRobin distributes batches of samples round-robin across n
// shard TimeSeries (batch i goes to shard i mod n) and feeds the union
// stream to a single-node TimeSeries — the canonical sharding layout
// the federation layer assumes.
func feedRoundRobin(t *testing.T, batches [][]float64, shards int, shardBatches int) (*TimeSeries, []*TimeSeries) {
	t.Helper()
	single, err := NewTimeSeries(TimeSeriesConfig{WindowBatches: shards * shardBatches})
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*TimeSeries, shards)
	for i := range parts {
		parts[i], err = NewTimeSeries(TimeSeriesConfig{WindowBatches: shardBatches})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, batch := range batches {
		for _, v := range batch {
			single.Record("lat", v)
			parts[i%shards].Record("lat", v)
		}
		single.Commit()
		parts[i%shards].Commit()
	}
	return single, parts
}

// stripTimes zeroes the wall-clock fields, the only part of a window
// that legitimately differs between a fleet and a single node.
func stripTimes(ws []Window) []Window {
	out := make([]Window, len(ws))
	for i, w := range ws {
		w.Start, w.End = time.Time{}, time.Time{}
		out[i] = w
	}
	return out
}

// TestMergeWindowsBitEqualUnionStream pins the distributed determinism
// contract at the obs layer: with batches dispatched round-robin,
// merging the shards' aligned windows (in shard order) reproduces the
// single-node union-stream window bit-for-bit — count, exact sum, min,
// max, last, and every sketch quantile.
func TestMergeWindowsBitEqualUnionStream(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, shards := range []int{1, 3, 5} {
		for _, shardBatches := range []int{1, 2} {
			const windows = 4
			nBatches := shards * shardBatches * windows
			batches := make([][]float64, nBatches)
			for i := range batches {
				batch := make([]float64, 40)
				for j := range batch {
					batch[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3))
				}
				batches[i] = batch
			}
			single, parts := feedRoundRobin(t, batches, shards, shardBatches)
			quantiles := single.Quantiles()

			singleWs := single.Windows()
			if len(singleWs) != windows {
				t.Fatalf("single node closed %d windows, want %d", len(singleWs), windows)
			}
			for wi := 0; wi < windows; wi++ {
				aligned := make([]Window, 0, shards)
				for _, p := range parts {
					pw := p.Windows()
					if len(pw) != windows {
						t.Fatalf("shard closed %d windows, want %d", len(pw), windows)
					}
					aligned = append(aligned, pw[wi])
				}
				merged, ok := MergeWindowSet(aligned, quantiles)
				if !ok {
					t.Fatal("empty merge")
				}
				got, err := json.Marshal(stripTimes([]Window{merged}))
				if err != nil {
					t.Fatal(err)
				}
				want, err := json.Marshal(stripTimes([]Window{singleWs[wi]}))
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Fatalf("shards=%d window %d: merged != union\nmerged: %s\nunion:  %s",
						shards, wi, got, want)
				}
			}
		}
	}
}

// TestFleetP99IsNotMaxOfShardP99s is the aggregate-of-aggregates
// regression: on a skewed split (one shard holds the slow tail) the
// true fleet p99 must come from the merged distribution, and must
// differ from both the max and the mean of the per-shard p99s.
func TestFleetP99IsNotMaxOfShardP99s(t *testing.T) {
	quantiles := []float64{50, 99}
	fast, err := NewTimeSeries(TimeSeriesConfig{WindowBatches: 1, Quantiles: quantiles})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewTimeSeries(TimeSeriesConfig{WindowBatches: 1, Quantiles: quantiles})
	if err != nil {
		t.Fatal(err)
	}
	// 900 fast requests at ~1ms; 100 slow ones spread 100..1000ms on
	// the other shard. Fleet p99 sits just inside the slow tail
	// (~920ms rank in the union), while max(shard p99s) is the slow
	// shard's own p99 (~990ms) — a different answer.
	for i := 0; i < 900; i++ {
		fast.Record("lat", 1+float64(i%10)*0.01)
	}
	for i := 0; i < 100; i++ {
		slow.Record("lat", 100+float64(i)*9)
	}
	fw, _ := fast.CloseWindow()
	sw, _ := slow.CloseWindow()
	merged := MergeWindows(fw, sw, quantiles)

	fleetP99 := merged.Series["lat"].Quantiles["p99"]
	shardMax := math.Max(fw.Series["lat"].Quantiles["p99"], sw.Series["lat"].Quantiles["p99"])
	shardMean := (fw.Series["lat"].Quantiles["p99"] + sw.Series["lat"].Quantiles["p99"]) / 2
	if fleetP99 == shardMax {
		t.Fatalf("fleet p99 %v equals max of shard p99s — still aggregating aggregates", fleetP99)
	}
	if fleetP99 == shardMean {
		t.Fatalf("fleet p99 %v equals mean of shard p99s", fleetP99)
	}
	// The union stream has 1000 samples; rank 0.99·999 ≈ 989 lands at
	// the ~89th slow sample ≈ 900ms. Sanity-band the merged answer.
	if fleetP99 < 800 || fleetP99 > 950 {
		t.Fatalf("fleet p99 = %v, want ~900 (inside the slow tail, below its p99)", fleetP99)
	}
	// Mean must be count-weighted, not a mean of shard means.
	fleetMean := merged.Series["lat"].Mean()
	naive := (fw.Series["lat"].Mean() + sw.Series["lat"].Mean()) / 2
	if fleetMean == naive {
		t.Fatalf("fleet mean %v equals mean of shard means", fleetMean)
	}
	if merged.Series["lat"].Count != 1000 {
		t.Fatalf("merged count = %d, want 1000", merged.Series["lat"].Count)
	}
}

func TestMergeAggregatesDisjointSeriesAndEmpties(t *testing.T) {
	a, err := NewTimeSeries(TimeSeriesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a.Record("only_a", 1)
	a.Commit()
	b, err := NewTimeSeries(TimeSeriesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b.Record("only_b", 2)
	b.Commit()
	aw, _ := a.Last()
	bw, _ := b.Last()
	merged := MergeWindows(aw, bw, []float64{50})
	if merged.Series["only_a"].Last != 1 || merged.Series["only_b"].Last != 2 {
		t.Fatalf("disjoint series lost: %+v", merged.Series)
	}
	if merged.Batches != 2 {
		t.Fatalf("batches = %d, want 2", merged.Batches)
	}
	if _, ok := MergeWindowSet(nil, nil); ok {
		t.Fatal("empty window set should not merge")
	}

	// Legacy aggregates without exact fields degrade to float addition
	// instead of dropping data.
	legacy := Aggregate{Count: 2, Sum: 10, Min: 4, Max: 6, Last: 6}
	got := MergeAggregates(legacy, legacy, []float64{50})
	if got.Count != 4 || got.Sum != 20 || got.Quantiles != nil {
		t.Fatalf("legacy merge = %+v", got)
	}
}

func TestMergeDoesNotAliasInputs(t *testing.T) {
	ts, err := NewTimeSeries(TimeSeriesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts.Record("x", 5)
	ts.Commit()
	w, _ := ts.Last()
	merged := MergeWindows(w, w, []float64{50})
	mergedAgg := merged.Series["x"]
	mergedAgg.Sketch.Add(1e9)
	mergedAgg.SumExact.Add(1e9)
	if w.Series["x"].Sketch.Count() != 1 {
		t.Fatal("merged sketch aliases the input window's sketch")
	}
	if w.Series["x"].SumExact.Value() != 5 {
		t.Fatal("merged sum aliases the input window's accumulator")
	}
}

func TestSeriesNames(t *testing.T) {
	ws := []Window{
		{Series: map[string]Aggregate{"b": {}, "a": {}}},
		{Series: map[string]Aggregate{"c": {}, "a": {}}},
	}
	got := SeriesNames(ws)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SeriesNames = %v", got)
	}
}
