package obs

// SpanJournal is the bounded on-disk span store behind the trace
// stitcher: every sampled root span that carries a trace id is
// appended as one JSON line to a spans-NNNNNN.jsonl segment, segments
// rotate at a size threshold, and only the newest few are retained —
// the same reload-safe ring discipline as the incident flight
// recorder's bundle directory. Zero-padded sequence numbers make
// lexical order chronological, so reopening a journal resumes the
// ring exactly where the previous process left it, and
// `ppm-diagnose -trace` can merge the journals of N processes into one
// waterfall with nothing but a directory glob.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	journalPrefix = "spans-"
	journalSuffix = ".jsonl"

	// DefaultJournalSegmentBytes is the rotation threshold per segment.
	DefaultJournalSegmentBytes = 1 << 20
	// DefaultJournalSegments is the number of retained segments.
	DefaultJournalSegments = 4
)

// SpanJournal appends span trees to a bounded jsonl ring on disk. Safe
// for concurrent use; appends are serialized and each span is written
// in a single O_APPEND write, so concurrent readers never observe a
// torn line.
type SpanJournal struct {
	dir      string
	maxBytes int64
	maxFiles int

	mu   sync.Mutex
	f    *os.File
	seq  int   // sequence number of the open segment
	size int64 // bytes written to the open segment

	appended atomic.Int64
}

// OpenJournal opens (or creates) the span journal in dir, resuming the
// newest existing segment. segmentBytes and segments bound the ring
// (<=0 picks the defaults).
func OpenJournal(dir string, segmentBytes int64, segments int) (*SpanJournal, error) {
	if segmentBytes <= 0 {
		segmentBytes = DefaultJournalSegmentBytes
	}
	if segments <= 0 {
		segments = DefaultJournalSegments
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("span journal: %w", err)
	}
	j := &SpanJournal{dir: dir, maxBytes: segmentBytes, maxFiles: segments, seq: 1}
	files, err := journalSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(files) > 0 {
		newest := files[len(files)-1]
		if n, ok := segmentSeq(newest); ok {
			j.seq = n
		}
		f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			return nil, fmt.Errorf("span journal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("span journal: %w", err)
		}
		j.f, j.size = f, st.Size()
		return j, nil
	}
	if err := j.openSegmentLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// Dir returns the journal directory.
func (j *SpanJournal) Dir() string { return j.dir }

// Appended returns the number of spans written by this process.
func (j *SpanJournal) Appended() int64 { return j.appended.Load() }

// Append writes one root span tree as a JSON line, rotating and
// pruning segments as needed. Errors are swallowed after the first
// marshal (a full disk must not take serving down with it); the append
// counter only advances on success.
func (j *SpanJournal) Append(span SpanJSON) {
	line, err := json.Marshal(span)
	if err != nil {
		return
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return // closed
	}
	if j.size+int64(len(line)) > j.maxBytes && j.size > 0 {
		if err := j.rotateLocked(); err != nil {
			return
		}
	}
	n, err := j.f.Write(line)
	j.size += int64(n)
	if err == nil {
		j.appended.Add(1)
	}
}

// Close closes the open segment. Further appends are dropped.
func (j *SpanJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

func (j *SpanJournal) rotateLocked() error {
	j.f.Close()
	j.f = nil
	j.seq++
	if err := j.openSegmentLocked(); err != nil {
		return err
	}
	// Prune the oldest segments beyond the retention bound.
	files, err := journalSegments(j.dir)
	if err == nil && len(files) > j.maxFiles {
		for _, old := range files[:len(files)-j.maxFiles] {
			os.Remove(old)
		}
	}
	return nil
}

func (j *SpanJournal) openSegmentLocked() error {
	path := filepath.Join(j.dir, fmt.Sprintf("%s%06d%s", journalPrefix, j.seq, journalSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("span journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("span journal: %w", err)
	}
	j.f, j.size = f, st.Size()
	return nil
}

// Find returns the journaled root spans belonging to traceID, oldest
// segment first. It reads the ring from disk on every call — trace
// lookups are diagnostic, not hot-path.
func (j *SpanJournal) Find(traceID string) []SpanJSON {
	spans, _ := ReadJournalDir(j.dir)
	out := spans[:0]
	for _, s := range spans {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out[:len(out):len(out)]
}

// ReadJournalDir loads every span from the spans-*.jsonl ring in dir,
// oldest segment first. Truncated or corrupt lines (a crash mid-write
// on a non-O_APPEND filesystem) are skipped, not fatal.
func ReadJournalDir(dir string) ([]SpanJSON, error) {
	files, err := journalSegments(dir)
	if err != nil {
		return nil, err
	}
	var out []SpanJSON
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 64<<10), 16<<20)
		for sc.Scan() {
			var s SpanJSON
			if err := json.Unmarshal(sc.Bytes(), &s); err == nil && s.Name != "" {
				out = append(out, s)
			}
		}
		f.Close()
	}
	return out, nil
}

func journalSegments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, journalPrefix+"*"+journalSuffix))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

func segmentSeq(path string) (int, bool) {
	base := filepath.Base(path)
	base = strings.TrimPrefix(base, journalPrefix)
	base = strings.TrimSuffix(base, journalSuffix)
	n, err := strconv.Atoi(base)
	return n, err == nil && n > 0
}
