package obs

import (
	"strings"
	"testing"
)

// fullRegistry builds a registry exercising every family kind the
// package offers, so the conformance test covers the complete render
// surface.
func fullRegistry() *Registry {
	r := NewRegistry()
	r.Counter("plain_total", "Unlabeled counter.").Add(3)
	cv := r.CounterVec("labeled_total", "Labeled counter.", "outcome", "method")
	cv.Add(1, "ok", "GET")
	cv.Add(2, `with"quote`, "POST")
	r.Gauge("plain_gauge", "Unlabeled gauge.").Set(1.5)
	r.GaugeFunc("func_gauge", "Callback gauge.", func() float64 { return 2 })
	h := r.Histogram("plain_duration_seconds", "Unlabeled histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	hv := r.HistogramVec("labeled_duration_seconds", "Labeled histogram.", DurationBuckets, "stage")
	hv.Observe(0.2, "fit")
	hv.Observe(0.0004, "featurize")
	hv.Observe(120, "fit")
	return r
}

func TestLintAcceptsFullRegistry(t *testing.T) {
	text := render(t, fullRegistry())
	if errs := Lint(text); len(errs) > 0 {
		t.Fatalf("conformant exposition rejected:\n%v\n%s", errs, text)
	}
}

func TestLintRejections(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"bad metric name", "# HELP bad-name x\n# TYPE bad-name counter\nbad-name 1\n", "invalid metric name"},
		{"counter without _total", "# HELP foo x\n# TYPE foo counter\nfoo 1\n", "should end in _total"},
		{"gauge with _total", "# HELP foo_total x\n# TYPE foo_total gauge\nfoo_total 1\n", "must not use the counter suffix"},
		{"sample before type", "orphan_metric 1\n", "precedes its HELP/TYPE"},
		{"duplicate type", "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n", "duplicate TYPE"},
		{"help after type", "# TYPE a_total counter\n# HELP a_total x\na_total 1\n", "after its TYPE"},
		{"bad value", "# HELP a_total x\n# TYPE a_total counter\na_total abc\n", "bad sample value"},
		{"unterminated labels", "# HELP a_total x\n# TYPE a_total counter\na_total{k=\"v\" 1\n", "unterminated"},
		{"invalid label name", "# HELP a_total x\n# TYPE a_total counter\na_total{0bad=\"v\"} 1\n", "invalid label name"},
		{"le on non-histogram", "# HELP a_total x\n# TYPE a_total counter\na_total{le=\"1\"} 1\n", "le label"},
		{
			"interleaved families",
			"# HELP a_total x\n# TYPE a_total counter\na_total 1\n# HELP b_total x\n# TYPE b_total counter\nb_total 1\na_total{k=\"v\"} 1\n",
			"not contiguous",
		},
		{
			"non-cumulative buckets",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"missing +Inf bucket",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
			"missing +Inf",
		},
		{
			"+Inf disagrees with count",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
			"!= _count",
		},
		{
			"missing sum",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"missing _sum",
		},
		{
			"unsorted le bounds",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"not ascending",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := Lint(tc.text)
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.want) {
					return
				}
			}
			t.Fatalf("want an error containing %q, got %v", tc.want, errs)
		})
	}
}

func TestLintAcceptsLiteralValues(t *testing.T) {
	text := "# HELP g x\n# TYPE g gauge\ng NaN\n"
	if errs := Lint(text); len(errs) > 0 {
		t.Fatalf("NaN literal rejected: %v", errs)
	}
}
