package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/exposition.golden from the current render")

// goldenRegistry builds one registry exercising every family shape the
// exposition renderer supports: plain and labeled counters, settable
// and callback gauges, a labeled gauge, and plain and labeled
// histograms (the labeled histogram is the trickiest surface: per-series
// le buckets interleaved with the partition labels).
func goldenRegistry() *Registry {
	reg := NewRegistry()

	reg.Counter("ppm_batches_total", "Observed batches.").Add(7)

	// Callback counter — the shape runtime self-telemetry uses for
	// cumulative GC pause seconds (a gauge named *_total would fail Lint).
	reg.CounterFunc("ppm_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.", func() float64 { return 1.25 })

	rv := reg.CounterVec("ppm_alerts_total", "Alerts fired by rule.", "rule")
	rv.Add(2, "estimate_low")
	rv.Inc("ks_high")

	reg.Gauge("ppm_estimate", "Latest score estimate.").Set(0.8725)
	reg.GaugeFunc("ppm_queue_depth", "Shadow queue depth.", func() float64 { return 3 })

	gv := reg.GaugeVec("ppm_alert_active", "1 while a rule's alert is active.", "rule")
	gv.Set(1, "estimate_low")
	gv.Set(0, "ks_high")

	// The federation families ppm-aggregate exports (fed.RegisterMetrics),
	// frozen here so their exposition shape cannot drift either.
	reg.GaugeFunc("ppm_federate_replicas",
		"Number of replicas this aggregator scrapes.", func() float64 { return 3 })
	reg.GaugeFunc("ppm_federate_stale_shards",
		"Replicas whose last successful /federate scrape is older than the staleness bound.",
		func() float64 { return 1 })
	reg.GaugeFunc("ppm_federate_fleet_windows",
		"Merged fleet windows currently retained in the ring.", func() float64 { return 12 })
	reg.Counter("ppm_federate_scrapes_total",
		"Completed scrape cycles across all replicas.").Add(9)
	reg.Counter("ppm_federate_scrape_errors_total",
		"Failed per-replica /federate fetches.").Add(2)
	reg.Counter("ppm_federate_windows_merged_total",
		"Fleet windows merged and emitted to the fleet timeline.").Add(12)
	reg.Counter("ppm_federate_missed_windows_total",
		"Shard windows evicted from a replica ring before the fleet could merge them.")
	reg.Counter("ppm_federate_reference_mismatch_total",
		"Scrapes that found a replica with reference distributions diverging from the fleet's.")

	// The serving SLO families the gateway exports (gateway/slo.go),
	// frozen here so their exposition shape cannot drift either.
	reg.GaugeFunc("ppm_serving_inflight",
		"Proxied requests currently in flight.", func() float64 { return 2 })
	reg.Gauge("ppm_serving_alloc_bytes_per_req",
		"Heap bytes allocated per proxied request, sampled at SLO window close (process-wide TotalAlloc delta / request delta).").Set(18432)
	reg.Counter("ppm_serving_over_budget_total",
		"Requests slower than the SLO latency budget.").Add(4)
	bg := reg.GaugeVec("ppm_serving_burn_rate",
		"Error-budget burn rate over the rolling request window (1.0 = consuming budget exactly at the SLO rate).", "window")
	bg.Set(1.5625, "fast")
	bg.Set(0.78125, "slow")
	sv := reg.HistogramVec("ppm_serving_stage_duration_seconds",
		"Serving hot-path stage latency by stage (request, decode, relay, shadow_enqueue, monitor_observe).",
		[]float64{0.001, 0.01, 0.1}, "stage")
	sv.Observe(0.0004, "decode")
	sv.Observe(0.02, "relay")
	sv.Observe(0.025, "request")

	// The durable-timeline families a -tsdb-dir process exports
	// (tsdb.RegisterMetrics), frozen via the same callback shapes so
	// their exposition cannot drift either.
	reg.CounterFunc("ppm_tsdb_appended_windows_total",
		"Timeline windows persisted to the on-disk store.", func() float64 { return 48 })
	reg.CounterFunc("ppm_tsdb_append_errors_total",
		"Windows dropped by the on-disk store (write failure or out-of-order index).",
		func() float64 { return 1 })
	reg.CounterFunc("ppm_tsdb_corrupt_segments_total",
		"Torn or unreadable segments detected and skipped at open.", func() float64 { return 1 })
	reg.CounterFunc("ppm_tsdb_compactions_total",
		"Downsampling compaction passes that produced a compacted segment.",
		func() float64 { return 3 })
	reg.CounterFunc("ppm_tsdb_compacted_windows_total",
		"Raw windows folded into compacted buckets.", func() float64 { return 32 })
	reg.CounterFunc("ppm_tsdb_retention_segments_total",
		"Segments deleted by the size or age retention bounds.", func() float64 { return 2 })
	reg.CounterFunc("ppm_tsdb_queries_total",
		"Range queries served from the on-disk store.", func() float64 { return 17 })
	reg.GaugeFunc("ppm_tsdb_segments",
		"Segment files currently on disk, including the active one.", func() float64 { return 4 })
	reg.GaugeFunc("ppm_tsdb_bytes",
		"Bytes currently on disk across all segments.", func() float64 { return 262144 })

	// The distributed-tracing families every serving binary exports
	// (RegisterTraceMetrics), frozen via the same callback-counter
	// shapes so their exposition cannot drift either.
	reg.CounterFunc("ppm_trace_sampled_total",
		"Sampled root spans recorded by the trace ring.", func() float64 { return 21 })
	reg.CounterFunc("ppm_trace_unsampled_total",
		"Root spans discarded by deterministic head sampling.", func() float64 { return 63 })
	reg.CounterFunc("ppm_trace_dropped_total",
		"Sampled root spans evicted from the bounded trace ring.", func() float64 { return 5 })
	reg.CounterFunc("ppm_trace_journal_spans_total",
		"Root spans appended to the on-disk span journal.", func() float64 { return 16 })

	h := reg.Histogram("ppm_window_close_seconds", "Window close latency.", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.004, 0.02, 0.5} {
		h.Observe(v)
	}

	hv := reg.HistogramVec("ppm_request_seconds", "Request latency by outcome \\ escaped\nhelp.",
		[]float64{0.05, 0.5}, "outcome")
	hv.Observe(0.01, "ok")
	hv.Observe(0.3, "ok")
	hv.Observe(0.7, "upstream_5xx")

	return reg
}

// TestExpositionGoldenConformance diffs the full multi-family render
// against a checked-in golden so the Prometheus text format cannot
// silently regress, and keeps the render conformant per obs.Lint.
// Refresh intentionally with: go test ./internal/obs -run Golden -update-golden
func TestExpositionGoldenConformance(t *testing.T) {
	var b strings.Builder
	if _, err := goldenRegistry().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	if errs := Lint(got); len(errs) != 0 {
		t.Fatalf("golden render fails lint: %v", errs)
	}

	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Determinism: a second render of the same state is byte-identical.
	var again strings.Builder
	if _, err := goldenRegistry().WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != got {
		t.Fatal("render is not deterministic")
	}
}
