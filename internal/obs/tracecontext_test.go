package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func mustParse(t *testing.T, s string) TraceContext {
	t.Helper()
	tc, err := ParseTraceparent(s)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", s, err)
	}
	return tc
}

func TestTraceparentRoundTrip(t *testing.T) {
	const wire = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc := mustParse(t, wire)
	if got := tc.Traceparent(); got != wire {
		t.Fatalf("round trip: got %q want %q", got, wire)
	}
	if !tc.Sampled() {
		t.Fatal("flag 01 should be sampled")
	}
	if tc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id: %s", tc.TraceID)
	}
	if tc.SpanID.String() != "00f067aa0ba902b7" {
		t.Fatalf("span id: %s", tc.SpanID)
	}
	unsampled := mustParse(t, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if unsampled.Sampled() {
		t.Fatal("flag 00 should be unsampled")
	}
}

func TestTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // trailing junk on v00
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",  // non-hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // forbidden version
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong delimiter
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) should fail", s)
		}
	}
	// A higher version may append fields after the v00 prefix; the
	// prefix must still parse (W3C forward compatibility).
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	if _, err := ParseTraceparent(future); err != nil {
		t.Fatalf("future version with extra field should parse: %v", err)
	}
}

func FuzzTraceparentParse(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-rest")
	f.Add(strings.Repeat("0", 55))
	f.Fuzz(func(t *testing.T, s string) {
		tc, err := ParseTraceparent(s)
		if err != nil {
			return
		}
		// Anything accepted must round-trip through the v00 formatter
		// and re-parse to the same context.
		again, err := ParseTraceparent(tc.Traceparent())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", tc.Traceparent(), s, err)
		}
		if again != tc {
			t.Fatalf("round trip drift: %+v vs %+v", tc, again)
		}
		if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
			t.Fatalf("parser accepted zero id in %q", s)
		}
	})
}

// TestSampleTraceDeterministic is the §16 contract: the sampled subset
// of a derived workload is a pure function of (seed, rate) — identical
// when computed serially, in parallel, or partitioned across any
// number of workers.
func TestSampleTraceDeterministic(t *testing.T) {
	const seed, n = uint64(42), 4096
	const rate = 0.25
	serial := make([]bool, n)
	for i := range serial {
		serial[i] = SampleTrace(DeriveTraceID(seed, uint64(i)), rate)
	}
	for _, workers := range []int{2, 3, 8} {
		got := make([]bool, n)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					got[i] = SampleTrace(DeriveTraceID(seed, uint64(i)), rate)
				}
			}(w)
		}
		wg.Wait()
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: verdict for trace %d diverged", workers, i)
			}
		}
	}
	sampled := 0
	for _, s := range serial {
		if s {
			sampled++
		}
	}
	frac := float64(sampled) / n
	if frac < rate-0.05 || frac > rate+0.05 {
		t.Fatalf("sampled fraction %.3f far from rate %.2f", frac, rate)
	}
	for i := 0; i < 64; i++ {
		id := DeriveTraceID(seed, uint64(i))
		if !SampleTrace(id, 1) {
			t.Fatal("rate 1 must sample everything")
		}
		if SampleTrace(id, 0) {
			t.Fatal("rate 0 must sample nothing")
		}
	}
}

func TestDeriveTraceContext(t *testing.T) {
	a := DeriveTraceContext(7, 3, 0.5)
	b := DeriveTraceContext(7, 3, 0.5)
	if a != b {
		t.Fatal("derivation must be deterministic")
	}
	if !a.Valid() {
		t.Fatal("derived context must carry non-zero ids")
	}
	if a.Sampled() != SampleTrace(a.TraceID, 0.5) {
		t.Fatal("derived flags must match the fleet sampling verdict")
	}
	if DeriveTraceContext(7, 4, 0.5).TraceID == a.TraceID {
		t.Fatal("distinct batch indices must get distinct trace ids")
	}
	if DeriveTraceContext(8, 3, 0.5).TraceID == a.TraceID {
		t.Fatal("distinct seeds must get distinct trace ids")
	}
	// Wire-parseable: a synthetic client context must survive the
	// strict parser.
	if _, err := ParseTraceparent(a.Traceparent()); err != nil {
		t.Fatalf("derived traceparent rejected: %v", err)
	}
}

func TestSpanJoinsWireTrace(t *testing.T) {
	tr := NewTracer(8)
	wire := mustParse(t, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	ctx := ContextWithTrace(WithTracer(context.Background(), tr), wire)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	child.End()
	root.End()
	rj, cj := root.JSON(), child.JSON()
	if rj.TraceID != wire.TraceID.String() || cj.TraceID != rj.TraceID {
		t.Fatalf("trace id not inherited: root %q child %q", rj.TraceID, cj.TraceID)
	}
	if rj.ParentSpanID != wire.SpanID.String() {
		t.Fatalf("root parent = %q, want wire span id %q", rj.ParentSpanID, wire.SpanID)
	}
	if cj.ParentSpanID != rj.SpanID {
		t.Fatalf("child parent = %q, want root span id %q", cj.ParentSpanID, rj.SpanID)
	}
	if rj.SpanID == cj.SpanID || rj.SpanID == "" {
		t.Fatalf("span ids must be distinct and non-empty: %q %q", rj.SpanID, cj.SpanID)
	}
	// A minted root context (NewTraceContext) has a zero span id: the
	// first span becomes the true root, with no phantom parent.
	minted, err := NewTraceContext(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := ContextWithTrace(WithTracer(context.Background(), tr), minted)
	_, top := StartSpan(ctx2, "top")
	top.End()
	if tj := top.JSON(); tj.ParentSpanID != "" {
		t.Fatalf("minted trace root should have no parent, got %q", tj.ParentSpanID)
	}
	sampled, unsampled, _ := tr.TraceCounts()
	if sampled != 2 || unsampled != 0 {
		t.Fatalf("trace counts = %d sampled %d unsampled, want 2/0", sampled, unsampled)
	}
}

func TestUnsampledTraceSkipsRing(t *testing.T) {
	tr := NewTracer(8)
	wire := mustParse(t, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	ctx := ContextWithTrace(WithTracer(context.Background(), tr), wire)
	_, root := StartSpan(ctx, "root")
	root.End()
	if got := len(tr.Traces()); got != 0 {
		t.Fatalf("unsampled root landed in the ring (%d traces)", got)
	}
	sampled, unsampled, _ := tr.TraceCounts()
	if sampled != 0 || unsampled != 1 {
		t.Fatalf("trace counts = %d/%d, want 0 sampled / 1 unsampled", sampled, unsampled)
	}
	// Legacy spans without any trace context still count as sampled
	// and land in the ring (the training pipeline's spans).
	_, legacy := StartSpan(WithTracer(context.Background(), tr), "legacy")
	legacy.End()
	if got := len(tr.Traces()); got != 1 {
		t.Fatalf("legacy span missing from ring (%d traces)", got)
	}
}

func TestDerivedTraceIDsUnique(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 10000; i++ {
		id := DeriveTraceID(1, uint64(i))
		if seen[id] {
			t.Fatalf("duplicate derived trace id at %d", i)
		}
		seen[id] = true
	}
	ids := map[SpanID]bool{}
	for i := 0; i < 1000; i++ {
		id := newSpanID()
		if id.IsZero() || ids[id] {
			t.Fatalf("span id %s zero or repeated at %d", id, i)
		}
		ids[id] = true
	}
}

func TestTraceContextString(t *testing.T) {
	tc := DeriveTraceContext(1, 1, 1)
	want := fmt.Sprintf("00-%s-%s-01", tc.TraceID, tc.SpanID)
	if got := tc.Traceparent(); got != want {
		t.Fatalf("Traceparent() = %q want %q", got, want)
	}
}
