package obs

// Lightweight span tracing for the training pipeline. A Span measures
// the wall time of one named stage; spans started under a context that
// already carries a span become children, so a traced run yields a
// tree (train_validator -> internal_predictor -> build_meta_dataset).
// Completed root spans are recorded in a bounded Tracer ring, exported
// as JSON at /debug/spans and rendered as a human-readable stage
// report by Report. Tracing never touches the RNG streams, so the
// determinism contract of DESIGN.md §8 is unaffected.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type spanCtxKey struct{}
type tracerCtxKey struct{}

// Span is one timed stage. Create with StartSpan and finish with End;
// all methods are safe for concurrent use (parallel stages may attach
// children from worker goroutines).
type Span struct {
	name  string
	start time.Time

	// Distributed-trace identity (zero for legacy in-process spans):
	// assigned at StartSpan time from the context's TraceContext, so a
	// span knows its trace, its own id and its parent — local or in
	// another process — without any allocation on the untraced path.
	traceID  TraceID
	spanID   SpanID
	parentID SpanID
	flags    byte

	mu       sync.Mutex
	dur      time.Duration // 0 while running
	metrics  map[string]float64
	attrs    map[string]string
	children []*Span

	tracer *Tracer // set on root spans only
}

// StartSpan begins a span named name. If ctx carries a span, the new
// span is attached as its child; otherwise it is a root span that will
// be recorded — on End — into the tracer carried by ctx, or the
// process-default tracer when none is set. The returned context
// carries the new span for further nesting.
//
// When ctx also carries a TraceContext (an extracted or minted
// traceparent), the span joins that trace: it inherits the trace id
// and flags, records the context's span id as its parent, and mints
// its own span id; the returned context carries the updated
// TraceContext so outbound calls inject this span as the parent.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		s.traceID, s.parentID, s.flags = parent.traceID, parent.spanID, parent.flags
		if !s.traceID.IsZero() {
			s.spanID = newSpanID()
		}
		parent.addChild(s)
	} else {
		// A zero tc.SpanID is legal here (a freshly minted trace whose
		// root this span becomes); the wire parser still rejects it.
		if tc, ok := ctx.Value(traceCtxKey{}).(TraceContext); ok && !tc.TraceID.IsZero() {
			s.traceID, s.parentID, s.flags = tc.TraceID, tc.SpanID, tc.Flags
			s.spanID = newSpanID()
		}
		if tr, ok := ctx.Value(tracerCtxKey{}).(*Tracer); ok && tr != nil {
			s.tracer = tr
		} else {
			s.tracer = defaultTracer
		}
	}
	ctx = context.WithValue(ctx, spanCtxKey{}, s)
	if !s.traceID.IsZero() {
		ctx = context.WithValue(ctx, traceCtxKey{}, TraceContext{TraceID: s.traceID, SpanID: s.spanID, Flags: s.flags})
	}
	return ctx, s
}

// TraceContext returns the span's own trace coordinates (its span id,
// not its parent's). The zero context is returned for untraced spans.
func (s *Span) TraceContext() TraceContext {
	return TraceContext{TraceID: s.traceID, SpanID: s.spanID, Flags: s.flags}
}

// Sampled reports whether the span belongs to a sampled trace. Legacy
// spans without a trace id count as sampled: they predate head
// sampling and are always retained.
func (s *Span) Sampled() bool {
	return s.traceID.IsZero() || s.flags&FlagSampled != 0
}

// WithTracer returns a context whose root spans record into tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerCtxKey{}, tr)
}

// End stops the span's clock. Root spans are recorded into their
// tracer. End is idempotent; only the first call sets the duration.
func (s *Span) End() {
	s.mu.Lock()
	if s.dur != 0 {
		s.mu.Unlock()
		return
	}
	s.dur = time.Since(s.start)
	if s.dur == 0 {
		s.dur = time.Nanosecond // preserve "ended" even on coarse clocks
	}
	tr := s.tracer
	s.mu.Unlock()
	if tr != nil {
		tr.record(s)
	}
}

// SetMetric attaches a numeric annotation (rows, workers, examples...)
// shown in the JSON export and the stage report.
func (s *Span) SetMetric(key string, v float64) {
	s.mu.Lock()
	if s.metrics == nil {
		s.metrics = map[string]float64{}
	}
	s.metrics[key] = v
	s.mu.Unlock()
}

// SetAttr attaches a string annotation (request id, outcome, dataset
// name...) shown in the JSON export and the stage report. Unlike
// SetMetric it carries identity, not measurement — it is how one
// request's correlation id travels from the proxy log line into the
// span export.
func (s *Span) SetAttr(key, value string) {
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Attr returns the annotation value and whether it was set.
func (s *Span) Attr(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.attrs[key]
	return v, ok
}

// Name returns the span's stage name.
func (s *Span) Name() string { return s.name }

// Duration returns the elapsed time: final once End was called, the
// running wall time otherwise.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != 0 {
		return s.dur
	}
	return time.Since(s.start)
}

// Children returns a snapshot of the direct child spans.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Child returns the first direct child with the given name, or nil.
func (s *Span) Child(name string) *Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.children {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Metric returns the annotation value and whether it was set.
func (s *Span) Metric(key string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.metrics[key]
	return v, ok
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// SpanJSON is the wire form of a span tree (/debug/spans, the span
// journal, and the cross-process stitcher). The trace fields are
// omitted for legacy in-process spans.
type SpanJSON struct {
	Name         string             `json:"name"`
	TraceID      string             `json:"trace_id,omitempty"`
	SpanID       string             `json:"span_id,omitempty"`
	ParentSpanID string             `json:"parent_span_id,omitempty"`
	Start        time.Time          `json:"start"`
	Seconds      float64            `json:"seconds"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
	Attrs        map[string]string  `json:"attrs,omitempty"`
	Children     []SpanJSON         `json:"children,omitempty"`
}

// JSON converts the span tree to its exportable form.
func (s *Span) JSON() SpanJSON {
	s.mu.Lock()
	out := SpanJSON{Name: s.name, Start: s.start, Seconds: s.durationLocked().Seconds()}
	if !s.traceID.IsZero() {
		out.TraceID = s.traceID.String()
		out.SpanID = s.spanID.String()
		if !s.parentID.IsZero() {
			out.ParentSpanID = s.parentID.String()
		}
	}
	if len(s.metrics) > 0 {
		out.Metrics = make(map[string]float64, len(s.metrics))
		for k, v := range s.metrics {
			out.Metrics[k] = v
		}
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.JSON())
	}
	return out
}

// durationLocked returns the duration; callers must hold s.mu.
func (s *Span) durationLocked() time.Duration {
	if s.dur != 0 {
		return s.dur
	}
	return time.Since(s.start)
}

// Report renders the span tree as an indented stage report:
//
//	train_predictor                    2.31s  100.0%  rows=880
//	  build_meta_dataset               1.80s   77.9%  examples=128
//	  fit_regressor                    0.35s   15.2%
//
// Percentages are relative to the root span's duration.
func (s *Span) Report(w io.Writer) {
	total := s.Duration().Seconds()
	if total <= 0 {
		total = 1
	}
	s.report(w, 0, total)
}

func (s *Span) report(w io.Writer, depth int, total float64) {
	d := s.Duration()
	label := strings.Repeat("  ", depth) + s.name
	line := fmt.Sprintf("%-36s %9s %6.1f%%", label, d.Round(time.Microsecond), 100*d.Seconds()/total)
	s.mu.Lock()
	keys := make([]string, 0, len(s.metrics))
	for k := range s.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		line += fmt.Sprintf("  %s=%g", k, s.metrics[k])
	}
	attrKeys := make([]string, 0, len(s.attrs))
	for k := range s.attrs {
		attrKeys = append(attrKeys, k)
	}
	sort.Strings(attrKeys)
	for _, k := range attrKeys {
		line += fmt.Sprintf("  %s=%s", k, s.attrs[k])
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	fmt.Fprintln(w, line)
	for _, c := range children {
		c.report(w, depth+1, total)
	}
}

// Tracer retains the most recent completed root spans in a bounded
// ring, newest last. Spans belonging to unsampled traces are counted
// and discarded (head sampling: the keep/drop decision was already
// made, deterministically, when the trace id was minted); sampled
// spans are additionally appended to the on-disk journal when one is
// attached, so they survive the ring and process restarts for the
// cross-process stitcher.
type Tracer struct {
	mu    sync.Mutex
	cap   int
	roots []*Span

	sampled   atomic.Int64 // sampled root spans recorded
	unsampled atomic.Int64 // unsampled root spans discarded
	dropped   atomic.Int64 // sampled root spans evicted from the ring

	journal atomic.Pointer[SpanJournal]
}

// defaultTracer records root spans started without an explicit tracer.
var defaultTracer = NewTracer(64)

// DefaultTracer returns the process-global tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// NewTracer returns a tracer retaining up to capacity root spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{cap: capacity}
}

func (t *Tracer) record(root *Span) {
	if !root.Sampled() {
		// Head sampling: the deterministic keep/drop verdict for this
		// trace id said drop. Count it (the /metrics families make the
		// discard rate visible) and spend nothing else on it.
		t.unsampled.Add(1)
		return
	}
	t.sampled.Add(1)
	t.mu.Lock()
	t.roots = append(t.roots, root)
	if over := len(t.roots) - t.cap; over > 0 {
		t.roots = t.roots[over:]
		t.dropped.Add(int64(over))
	}
	t.mu.Unlock()
	// Journal outside the ring lock: the append serializes on the
	// journal's own mutex and may touch disk.
	if j := t.journal.Load(); j != nil && !root.traceID.IsZero() {
		j.Append(root.JSON())
	}
}

// SetJournal attaches (or, with nil, detaches) the on-disk span
// journal receiving every sampled root span that carries a trace id.
// Several tracers may share one journal; its appends are atomic.
func (t *Tracer) SetJournal(j *SpanJournal) { t.journal.Store(j) }

// Journal returns the attached span journal, or nil.
func (t *Tracer) Journal() *SpanJournal { return t.journal.Load() }

// TraceCounts returns the tracer's lifetime counters: sampled root
// spans recorded, unsampled root spans discarded by head sampling, and
// sampled spans evicted from the bounded ring.
func (t *Tracer) TraceCounts() (sampled, unsampled, dropped int64) {
	return t.sampled.Load(), t.unsampled.Load(), t.dropped.Load()
}

// FindTrace returns the retained root spans belonging to the given
// trace id (oldest first): the ring's fragment of the trace, merged by
// the /debug/traces handler with the journal's.
func (t *Tracer) FindTrace(traceID string) []SpanJSON {
	var out []SpanJSON
	for _, r := range t.Traces() {
		if !r.traceID.IsZero() && r.traceID.String() == traceID {
			out = append(out, r.JSON())
		}
	}
	return out
}

// TraceIDs returns the distinct trace ids present in the ring, oldest
// first — the /debug/traces index.
func (t *Tracer) TraceIDs() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range t.Traces() {
		if r.traceID.IsZero() {
			continue
		}
		id := r.traceID.String()
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// RegisterTraceMetrics exposes the combined trace-pipeline counters of
// the given tracers on reg as the ppm_trace_* families:
//
//	ppm_trace_sampled_total    sampled root spans recorded
//	ppm_trace_unsampled_total  root spans discarded by head sampling
//	ppm_trace_dropped_total    sampled spans evicted from the ring
//	ppm_trace_journal_spans_total  spans appended to the on-disk journal
//
// One process may run several tracers (the gateway's private ring plus
// the default tracer); the families sum across all of them, keeping
// the exposition cardinality flat.
func RegisterTraceMetrics(reg *Registry, tracers ...*Tracer) {
	sum := func(pick func(*Tracer) int64) func() float64 {
		return func() float64 {
			var n int64
			for _, tr := range tracers {
				if tr != nil {
					n += pick(tr)
				}
			}
			return float64(n)
		}
	}
	reg.CounterFunc("ppm_trace_sampled_total",
		"Sampled root spans recorded by the trace ring.",
		sum(func(tr *Tracer) int64 { return tr.sampled.Load() }))
	reg.CounterFunc("ppm_trace_unsampled_total",
		"Root spans discarded by deterministic head sampling.",
		sum(func(tr *Tracer) int64 { return tr.unsampled.Load() }))
	reg.CounterFunc("ppm_trace_dropped_total",
		"Sampled root spans evicted from the bounded trace ring.",
		sum(func(tr *Tracer) int64 { return tr.dropped.Load() }))
	reg.CounterFunc("ppm_trace_journal_spans_total",
		"Root spans appended to the on-disk span journal.",
		func() float64 {
			// Several tracers may share one journal; count each journal
			// once, not once per tracer.
			var n int64
			seen := map[*SpanJournal]bool{}
			for _, tr := range tracers {
				if tr == nil {
					continue
				}
				if j := tr.journal.Load(); j != nil && !seen[j] {
					seen[j] = true
					n += j.Appended()
				}
			}
			return float64(n)
		})
}

// Traces returns the retained root spans, oldest first.
func (t *Tracer) Traces() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Last returns the most recently completed root span, or nil.
func (t *Tracer) Last() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.roots) == 0 {
		return nil
	}
	return t.roots[len(t.roots)-1]
}

// JSON marshals the retained traces (oldest first).
func (t *Tracer) JSON() ([]byte, error) {
	roots := t.Traces()
	out := make([]SpanJSON, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.JSON())
	}
	return json.MarshalIndent(out, "", "  ")
}

// Report renders the stage report of every retained trace, oldest
// first, separated by blank lines.
func (t *Tracer) Report(w io.Writer) {
	for i, r := range t.Traces() {
		if i > 0 {
			fmt.Fprintln(w)
		}
		r.Report(w)
	}
}
