package obs

// Go runtime self-telemetry: every binary registers the same four
// families so an operator can tell a leaking process from a drifting
// model with one /metrics scrape. Reading runtime.MemStats triggers a
// brief stop-the-world, so the callbacks share one cached snapshot
// refreshed at most once per second — scraping /metrics in a tight
// loop cannot degrade the serving path.

import (
	"runtime"
	"sync"
	"time"
)

// processStart anchors ppm_process_uptime_seconds.
var processStart = time.Now()

// memStatsCache rate-limits runtime.ReadMemStats across all callback
// evaluations (several gauges per scrape, any number of registries).
var memStatsCache struct {
	mu      sync.Mutex
	at      time.Time
	stats   runtime.MemStats
	staleOK time.Duration
}

func readMemStats() runtime.MemStats {
	memStatsCache.mu.Lock()
	defer memStatsCache.mu.Unlock()
	if memStatsCache.staleOK == 0 {
		memStatsCache.staleOK = time.Second
	}
	if time.Since(memStatsCache.at) >= memStatsCache.staleOK {
		runtime.ReadMemStats(&memStatsCache.stats)
		memStatsCache.at = time.Now()
	}
	return memStatsCache.stats
}

// RegisterRuntimeMetrics registers the process self-telemetry families
// (goroutine count, heap in use, cumulative GC pause time, uptime) as
// callbacks on reg, so the values are read at scrape time. reg == nil
// registers on the process-global Default registry. Safe to call more
// than once — registration is get-or-create.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		reg = Default()
	}
	reg.GaugeFunc("ppm_go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("ppm_go_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(readMemStats().HeapAlloc) })
	reg.CounterFunc("ppm_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(readMemStats().PauseTotalNs) / 1e9 })
	reg.GaugeFunc("ppm_process_uptime_seconds",
		"Seconds since the process started.",
		func() float64 { return time.Since(processStart).Seconds() })
}
