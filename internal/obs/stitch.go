package obs

// Trace stitching: assembling one causal waterfall out of the span
// fragments that N processes journaled independently. Each process
// only ever sees its own spans; the parent-span ids carried by the
// traceparent headers are the seams. StitchTrace flattens every
// fragment, links children to parents across process boundaries, and
// emits a depth-first waterfall ordered by start time — rendered as
// markdown (ppm-diagnose -trace) or as a dependency-free HTML page in
// the drift-dashboard style (inline CSS, no scripts, no CDNs).

import (
	"fmt"
	"html"
	"sort"
	"strings"
	"time"
)

// TraceFragment is one process's contribution to a trace: the root
// span trees it recorded, labeled with the service (journal) name.
type TraceFragment struct {
	Service string
	Spans   []SpanJSON
}

// WaterfallRow is one span placed on the stitched timeline.
type WaterfallRow struct {
	Service string   `json:"service"`
	Depth   int      `json:"depth"`
	Span    SpanJSON `json:"span"`
	// OffsetSeconds is the span's start relative to the trace start.
	OffsetSeconds float64 `json:"offset_seconds"`
	// Root marks spans whose parent is outside every fragment (the
	// synthetic client span of a load generator, or a lost journal).
	Root bool `json:"root,omitempty"`
}

// Waterfall is a fully stitched trace.
type Waterfall struct {
	TraceID string         `json:"trace_id"`
	Start   time.Time      `json:"start"`
	Seconds float64        `json:"seconds"` // end of last span minus trace start
	Rows    []WaterfallRow `json:"rows"`
	// Roots counts rows promoted to the top level because their parent
	// span is not present in any fragment. A fully connected trace from
	// a traced client has exactly one.
	Roots int `json:"roots"`
}

// stitchNode is the working form of one span during assembly.
type stitchNode struct {
	service  string
	span     SpanJSON
	children []*stitchNode
}

// StitchTrace merges the fragments' spans belonging to traceID into
// one waterfall. Spans are linked by span id across fragments;
// duplicates (the same span present in both a ring dump and a journal)
// are dropped. An empty waterfall (no matching span anywhere) returns
// an error.
func StitchTrace(traceID string, frags []TraceFragment) (*Waterfall, error) {
	byID := map[string]*stitchNode{}
	var anon []*stitchNode // spans without ids can still render flat
	var flatten func(service string, s SpanJSON, parent string)
	flatten = func(service string, s SpanJSON, parent string) {
		if s.TraceID != traceID {
			return
		}
		children := s.Children
		s.Children = nil
		if s.ParentSpanID == "" {
			s.ParentSpanID = parent
		}
		n := &stitchNode{service: service, span: s}
		if s.SpanID != "" {
			if _, dup := byID[s.SpanID]; !dup {
				byID[s.SpanID] = n
			}
		} else {
			anon = append(anon, n)
		}
		for _, c := range children {
			if c.TraceID == "" {
				c.TraceID = s.TraceID
			}
			flatten(service, c, s.SpanID)
		}
	}
	for _, f := range frags {
		for _, s := range f.Spans {
			flatten(f.Service, s, "")
		}
	}
	if len(byID) == 0 && len(anon) == 0 {
		return nil, fmt.Errorf("trace %s: no spans in any fragment", traceID)
	}

	// Link children to parents; spans whose parent is unknown are roots.
	var roots []*stitchNode
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic iteration before the time sort
	for _, id := range ids {
		n := byID[id]
		if p, ok := byID[n.span.ParentSpanID]; ok && p != n {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	roots = append(roots, anon...)

	byStart := func(ns []*stitchNode) {
		sort.SliceStable(ns, func(i, k int) bool { return ns[i].span.Start.Before(ns[k].span.Start) })
	}
	byStart(roots)

	w := &Waterfall{TraceID: traceID, Roots: len(roots)}
	if len(roots) > 0 {
		w.Start = roots[0].span.Start
		for _, r := range roots {
			if r.span.Start.Before(w.Start) {
				w.Start = r.span.Start
			}
		}
	}
	var emit func(n *stitchNode, depth int, root bool)
	emit = func(n *stitchNode, depth int, root bool) {
		off := n.span.Start.Sub(w.Start).Seconds()
		if end := off + n.span.Seconds; end > w.Seconds {
			w.Seconds = end
		}
		w.Rows = append(w.Rows, WaterfallRow{
			Service: n.service, Depth: depth, Span: n.span,
			OffsetSeconds: off, Root: root,
		})
		byStart(n.children)
		for _, c := range n.children {
			emit(c, depth+1, false)
		}
	}
	for _, r := range roots {
		emit(r, 0, true)
	}
	return w, nil
}

// Markdown renders the waterfall as the ppm-diagnose trace report: a
// header with the trace coordinates followed by one table row per
// span, indented by depth, with offset/duration in milliseconds and
// the span's attributes inline.
func (w *Waterfall) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Trace %s\n\n", w.TraceID)
	fmt.Fprintf(&b, "- start: %s\n", w.Start.Format(time.RFC3339Nano))
	fmt.Fprintf(&b, "- duration: %.3f ms\n", w.Seconds*1e3)
	fmt.Fprintf(&b, "- spans: %d across %d root(s)\n\n", len(w.Rows), w.Roots)
	b.WriteString("| service | span | offset (ms) | duration (ms) | detail |\n")
	b.WriteString("|---|---|---:|---:|---|\n")
	for _, r := range w.Rows {
		indent := strings.Repeat("· ", r.Depth)
		fmt.Fprintf(&b, "| %s | %s%s | %.3f | %.3f | %s |\n",
			r.Service, indent, r.Span.Name, r.OffsetSeconds*1e3, r.Span.Seconds*1e3, rowDetail(r.Span))
	}
	return b.String()
}

func rowDetail(s SpanJSON) string {
	parts := make([]string, 0, len(s.Attrs)+len(s.Metrics))
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, k+"="+s.Attrs[k])
	}
	mkeys := make([]string, 0, len(s.Metrics))
	for k := range s.Metrics {
		mkeys = append(mkeys, k)
	}
	sort.Strings(mkeys)
	for _, k := range mkeys {
		parts = append(parts, fmt.Sprintf("%s=%g", k, s.Metrics[k]))
	}
	return strings.Join(parts, " ")
}

// HTML renders the waterfall as a self-contained page: no scripts, no
// external assets, bars positioned by percentage of the trace window —
// the same dependency-free style as the drift dashboard, so it opens
// from a file:// URL on an air-gapped incident laptop.
func (w *Waterfall) HTML() []byte {
	total := w.Seconds
	if total <= 0 {
		total = 1e-9
	}
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>trace %s</title>\n", html.EscapeString(w.TraceID))
	b.WriteString(`<style>
body{font-family:ui-monospace,Menlo,monospace;margin:2em;background:#fafafa;color:#222}
h1{font-size:1.1em}
table{border-collapse:collapse;width:100%}
td,th{padding:2px 8px;font-size:12px;text-align:left;border-bottom:1px solid #eee;white-space:nowrap}
td.bar{width:45%}
.lane{position:relative;height:14px;background:#f0f0f0}
.lane span{position:absolute;top:2px;height:10px;border-radius:2px;min-width:2px}
.svc-0 span{background:#4878cf}.svc-1 span{background:#6acc65}.svc-2 span{background:#d65f5f}
.svc-3 span{background:#b47cc7}.svc-4 span{background:#c4ad66}.svc-5 span{background:#77bedb}
.muted{color:#888}
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>Trace %s</h1>\n", html.EscapeString(w.TraceID))
	fmt.Fprintf(&b, "<p class=\"muted\">start %s · %.3f ms · %d spans · %d root(s)</p>\n",
		html.EscapeString(w.Start.Format(time.RFC3339Nano)), w.Seconds*1e3, len(w.Rows), w.Roots)
	b.WriteString("<table>\n<tr><th>service</th><th>span</th><th>offset</th><th>dur</th><th>timeline</th><th>detail</th></tr>\n")
	laneClass := map[string]int{}
	for _, r := range w.Rows {
		if _, ok := laneClass[r.Service]; !ok {
			laneClass[r.Service] = len(laneClass) % 6
		}
		left := 100 * r.OffsetSeconds / total
		width := 100 * r.Span.Seconds / total
		if width < 0.2 {
			width = 0.2
		}
		if left > 99.8 {
			left = 99.8
		}
		indent := strings.Repeat("&nbsp;&nbsp;", r.Depth)
		fmt.Fprintf(&b,
			"<tr><td>%s</td><td>%s%s</td><td>%.3fms</td><td>%.3fms</td>"+
				"<td class=\"bar\"><div class=\"lane svc-%d\"><span style=\"left:%.2f%%;width:%.2f%%\"></span></div></td><td class=\"muted\">%s</td></tr>\n",
			html.EscapeString(r.Service), indent, html.EscapeString(r.Span.Name),
			r.OffsetSeconds*1e3, r.Span.Seconds*1e3,
			laneClass[r.Service], left, width, html.EscapeString(rowDetail(r.Span)))
	}
	b.WriteString("</table>\n</body></html>\n")
	return []byte(b.String())
}
