// Package obs is the repository's unified telemetry layer: a
// dependency-free metrics registry rendered in Prometheus text
// exposition format, lightweight wall-time span tracing for the
// training pipeline, and a shared structured-logging setup on
// log/slog. Every binary mounts the same surface (GET /metrics,
// /debug/pprof/*, /debug/spans) through Mount, so operators see one
// consistent observability contract whether they scrape the serving
// gateway, the model server, or the batch monitor.
//
// The registry is deliberately small — counters, gauges and
// fixed-bucket histograms, each optionally partitioned by labels —
// but renders deterministically sorted, conformant exposition text
// (see Lint) that any Prometheus-compatible scraper accepts. All
// types are safe for concurrent use; rendering takes each family's
// lock only long enough to snapshot it, so scrapes never block the
// hot path for long.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DurationBuckets are the default histogram bounds, in seconds, for
// request- and stage-duration metrics: 1ms to 10s in a coarse
// logarithmic grid, plus the slow tail up to 60s for training stages.
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// labelKeySep joins label values into a series key. \xff cannot occur
// in valid UTF-8 label values produced by this codebase.
const labelKeySep = "\xff"

// kind enumerates the metric family types.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is the common interface of registered metric families.
type family interface {
	meta() familyMeta
	render(w *expositionWriter)
}

// familyMeta identifies a family for duplicate-registration checks.
type familyMeta struct {
	name   string
	help   string
	kind   kind
	labels string // comma-joined label names
}

// Registry holds metric families and renders them as Prometheus text
// exposition. The zero value is not usable; create with NewRegistry.
// All registration methods are get-or-create: re-registering an
// identical (name, help, kind, labels) family returns the existing
// one, so independent packages can share a process-global registry
// without coordination. Conflicting re-registration panics — that is
// a programming error, caught by the first test that hits it.
type Registry struct {
	mu       sync.Mutex
	families map[string]family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]family{}}
}

// defaultRegistry is the process-global registry used by library
// instrumentation (core training histograms) and served by binaries
// that have no per-instance registry of their own.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// register implements the get-or-create contract shared by all
// family constructors.
func (r *Registry) register(m familyMeta, build func() family) family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.families[m.name]; ok {
		if existing.meta() != m {
			panic(fmt.Sprintf("obs: conflicting registration of %q: have %+v, want %+v",
				m.name, existing.meta(), m))
		}
		return existing
	}
	if !validMetricName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	for _, l := range strings.Split(m.labels, ",") {
		if l != "" && !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, m.name))
		}
	}
	fam := build()
	r.families[m.name] = fam
	return fam
}

// Counter registers (or returns) an unlabeled monotone counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := familyMeta{name: name, help: help, kind: kindCounter}
	return r.register(m, func() family {
		return &Counter{m: m}
	}).(*Counter)
}

// CounterFunc registers a counter whose value is computed by fn at
// every scrape (e.g. cumulative GC pause seconds read from the
// runtime). fn must be safe to call concurrently and must be monotone
// non-decreasing — the registry trusts the callback on that.
func (r *Registry) CounterFunc(name, help string, fn func() float64) *Counter {
	c := r.Counter(name, help)
	c.SetFunc(fn)
	return c
}

// CounterVec registers (or returns) a counter partitioned by the given
// labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	m := familyMeta{name: name, help: help, kind: kindCounter, labels: strings.Join(labels, ",")}
	return r.register(m, func() family {
		return &CounterVec{m: m, labels: labels, vals: map[string]float64{}}
	}).(*CounterVec)
}

// Gauge registers (or returns) a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := familyMeta{name: name, help: help, kind: kindGauge}
	return r.register(m, func() family {
		return &Gauge{m: m}
	}).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at every
// scrape (e.g. a queue depth). fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *Gauge {
	g := r.Gauge(name, help)
	g.SetFunc(fn)
	return g
}

// GaugeVec registers (or returns) a gauge partitioned by the given
// labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	m := familyMeta{name: name, help: help, kind: kindGauge, labels: strings.Join(labels, ",")}
	return r.register(m, func() family {
		return &GaugeVec{m: m, labels: labels, vals: map[string]float64{}}
	}).(*GaugeVec)
}

// Histogram registers (or returns) an unlabeled fixed-bucket
// histogram. bounds must be sorted ascending; the implicit +Inf
// bucket is always appended.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := familyMeta{name: name, help: help, kind: kindHistogram}
	return r.register(m, func() family {
		return &Histogram{m: m, bounds: checkBounds(name, bounds), series: map[string]*histogramSeries{}}
	}).(*Histogram)
}

// HistogramVec registers (or returns) a fixed-bucket histogram
// partitioned by the given labels.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	m := familyMeta{name: name, help: help, kind: kindHistogram, labels: strings.Join(labels, ",")}
	return r.register(m, func() family {
		return &HistogramVec{Histogram{m: m, labels: labels, bounds: checkBounds(name, bounds), series: map[string]*histogramSeries{}}}
	}).(*HistogramVec)
}

func checkBounds(name string, bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending at %v", name, bounds[i]))
		}
	}
	return append([]float64(nil), bounds...)
}

// WriteTo renders the full exposition: families sorted by name, each
// family's samples sorted by label values, HELP and TYPE comments
// first. The output is deterministic for a fixed registry state.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	ew := &expositionWriter{w: w}
	for _, fam := range fams {
		fam.render(ew)
	}
	return ew.n, ew.err
}

// Counter is a monotone unlabeled counter, optionally backed by a
// callback so the rendered value is always current.
type Counter struct {
	m familyMeta

	mu  sync.Mutex
	val float64
	fn  func() float64
}

func (c *Counter) meta() familyMeta { return c.m }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas panic: counters are monotone).
// Ignored at render time if a callback is installed.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: negative delta %v on counter %s", delta, c.m.name))
	}
	c.mu.Lock()
	c.val += delta
	c.mu.Unlock()
}

// SetFunc installs a callback evaluated at every Get/render. The
// callback must be monotone non-decreasing to keep the counter
// contract.
func (c *Counter) SetFunc(fn func() float64) {
	c.mu.Lock()
	c.fn = fn
	c.mu.Unlock()
}

// Get returns the callback value when installed, else the stored value.
func (c *Counter) Get() float64 {
	c.mu.Lock()
	fn := c.fn
	if fn == nil {
		defer c.mu.Unlock()
		return c.val
	}
	c.mu.Unlock()
	return fn()
}

func (c *Counter) render(w *expositionWriter) {
	w.header(c.m)
	w.sample(c.m.name, nil, nil, c.Get())
}

// CounterVec is a monotone counter partitioned by one or more labels.
type CounterVec struct {
	m      familyMeta
	labels []string

	mu   sync.Mutex
	vals map[string]float64
}

func (c *CounterVec) meta() familyMeta { return c.m }

// Inc adds 1 to the series identified by labelValues.
func (c *CounterVec) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add adds delta to the series identified by labelValues, creating it
// on first use. len(labelValues) must match the registered labels.
func (c *CounterVec) Add(delta float64, labelValues ...string) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: negative delta %v on counter %s", delta, c.m.name))
	}
	key := c.key(labelValues)
	c.mu.Lock()
	c.vals[key] += delta
	c.mu.Unlock()
}

// Get returns the current value of one series (0 if never written).
func (c *CounterVec) Get(labelValues ...string) float64 {
	key := c.key(labelValues)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[key]
}

func (c *CounterVec) key(values []string) string {
	if len(values) != len(c.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			c.m.name, len(c.labels), len(values)))
	}
	return strings.Join(values, labelKeySep)
}

func (c *CounterVec) render(w *expositionWriter) {
	c.mu.Lock()
	keys := sortedKeys(c.vals)
	snap := make(map[string]float64, len(c.vals))
	for k, v := range c.vals {
		snap[k] = v
	}
	c.mu.Unlock()
	w.header(c.m)
	for _, k := range keys {
		w.sample(c.m.name, c.labels, strings.Split(k, labelKeySep), snap[k])
	}
}

// Gauge is a settable value, optionally backed by a callback so the
// rendered value is always current.
type Gauge struct {
	m familyMeta

	mu  sync.Mutex
	val float64
	fn  func() float64
}

func (g *Gauge) meta() familyMeta { return g.m }

// Set stores v (ignored at render time if a callback is installed).
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

// Add adds delta to the stored value.
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.val += delta
	g.mu.Unlock()
}

// SetFunc installs a callback evaluated at every Get/render.
func (g *Gauge) SetFunc(fn func() float64) {
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

// Get returns the callback value when installed, else the stored value.
func (g *Gauge) Get() float64 {
	g.mu.Lock()
	fn := g.fn
	if fn == nil {
		defer g.mu.Unlock()
		return g.val
	}
	g.mu.Unlock()
	return fn()
}

func (g *Gauge) render(w *expositionWriter) {
	w.header(g.m)
	w.sample(g.m.name, nil, nil, g.Get())
}

// GaugeVec is a settable gauge partitioned by one or more labels.
type GaugeVec struct {
	m      familyMeta
	labels []string

	mu   sync.Mutex
	vals map[string]float64
}

func (g *GaugeVec) meta() familyMeta { return g.m }

// Set stores v in the series identified by labelValues, creating it on
// first use. len(labelValues) must match the registered labels.
func (g *GaugeVec) Set(v float64, labelValues ...string) {
	key := g.key(labelValues)
	g.mu.Lock()
	g.vals[key] = v
	g.mu.Unlock()
}

// Add adds delta to the series identified by labelValues.
func (g *GaugeVec) Add(delta float64, labelValues ...string) {
	key := g.key(labelValues)
	g.mu.Lock()
	g.vals[key] += delta
	g.mu.Unlock()
}

// Get returns the current value of one series (0 if never written).
func (g *GaugeVec) Get(labelValues ...string) float64 {
	key := g.key(labelValues)
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.vals[key]
}

func (g *GaugeVec) key(values []string) string {
	if len(values) != len(g.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			g.m.name, len(g.labels), len(values)))
	}
	return strings.Join(values, labelKeySep)
}

func (g *GaugeVec) render(w *expositionWriter) {
	g.mu.Lock()
	keys := sortedKeys(g.vals)
	snap := make(map[string]float64, len(g.vals))
	for k, v := range g.vals {
		snap[k] = v
	}
	g.mu.Unlock()
	w.header(g.m)
	for _, k := range keys {
		w.sample(g.m.name, g.labels, strings.Split(k, labelKeySep), snap[k])
	}
}

// histogramSeries is the state of one labeled histogram series.
type histogramSeries struct {
	counts []uint64 // per-bound cumulative counts
	sum    float64
	count  uint64
}

// Histogram is a fixed-bucket histogram; the unlabeled form has
// exactly one series keyed by the empty string.
type Histogram struct {
	m      familyMeta
	labels []string
	bounds []float64

	mu     sync.Mutex
	series map[string]*histogramSeries
}

func (h *Histogram) meta() familyMeta { return h.m }

// Observe records v in the unlabeled series.
func (h *Histogram) Observe(v float64) { h.observe(v, "") }

// Count returns the unlabeled series' observation count.
func (h *Histogram) Count() uint64 { return h.count("") }

// Sum returns the unlabeled series' observation sum.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.series[""]; s != nil {
		return s.sum
	}
	return 0
}

func (h *Histogram) observe(v float64, key string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.series[key]
	if s == nil {
		s = &histogramSeries{counts: make([]uint64, len(h.bounds))}
		h.series[key] = s
	}
	for i, bound := range h.bounds {
		if v <= bound {
			s.counts[i]++
		}
	}
	s.sum += v
	s.count++
}

func (h *Histogram) count(key string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.series[key]; s != nil {
		return s.count
	}
	return 0
}

func (h *Histogram) render(w *expositionWriter) {
	h.mu.Lock()
	keys := sortedKeys(h.series)
	snap := make(map[string]*histogramSeries, len(h.series))
	for k, s := range h.series {
		snap[k] = &histogramSeries{counts: append([]uint64(nil), s.counts...), sum: s.sum, count: s.count}
	}
	h.mu.Unlock()

	w.header(h.m)
	for _, k := range keys {
		s := snap[k]
		var values []string
		if len(h.labels) > 0 {
			values = strings.Split(k, labelKeySep)
		}
		bucketLabels := append(append([]string(nil), h.labels...), "le")
		for i, bound := range h.bounds {
			w.sample(h.m.name+"_bucket", bucketLabels, append(append([]string(nil), values...), formatFloat(bound)), float64(s.counts[i]))
		}
		w.sample(h.m.name+"_bucket", bucketLabels, append(append([]string(nil), values...), "+Inf"), float64(s.count))
		w.sample(h.m.name+"_sum", h.labels, values, s.sum)
		w.sample(h.m.name+"_count", h.labels, values, float64(s.count))
	}
}

// HistogramVec is a fixed-bucket histogram partitioned by labels.
type HistogramVec struct {
	Histogram
}

// Observe records v in the series identified by labelValues.
func (h *HistogramVec) Observe(v float64, labelValues ...string) {
	h.observe(v, h.key(labelValues))
}

// Count returns the observation count of one series.
func (h *HistogramVec) Count(labelValues ...string) uint64 {
	return h.count(h.key(labelValues))
}

func (h *HistogramVec) key(values []string) string {
	if len(values) != len(h.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			h.m.name, len(h.labels), len(values)))
	}
	return strings.Join(values, labelKeySep)
}

// expositionWriter emits Prometheus text exposition lines, tracking
// byte count and the first write error.
type expositionWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (e *expositionWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	n, err := fmt.Fprintf(e.w, format, args...)
	e.n += int64(n)
	if err != nil {
		e.err = err
	}
}

func (e *expositionWriter) header(m familyMeta) {
	e.printf("# HELP %s %s\n# TYPE %s %s\n", m.name, escapeHelp(m.help), m.name, m.kind)
}

// sample writes one exposition line. Label pairs are rendered sorted
// by label name, matching the pre-refactor gateway output.
func (e *expositionWriter) sample(name string, labels, values []string, v float64) {
	if e.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		type pair struct{ k, v string }
		pairs := make([]pair, len(labels))
		for i := range labels {
			pairs[i] = pair{labels[i], values[i]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
		b.WriteByte('{')
		for i, p := range pairs {
			if i > 0 {
				b.WriteByte(',')
			}
			// %q escaping (backslash, quote, \n) is a superset of the
			// exposition format's label-value escaping rules.
			fmt.Fprintf(&b, "%s=%q", p.k, p.v)
		}
		b.WriteByte('}')
	}
	e.printf("%s %s\n", b.String(), formatFloat(v))
}

// escapeHelp escapes backslashes and newlines in HELP text per the
// exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || name == "le" { // "le" is reserved for histogram buckets
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
