package obs

// Lint is a promlint-style conformance checker for the Prometheus
// text exposition format, run in tests against every /metrics surface
// in the repository. It enforces the subset of the format spec a
// scraper depends on — name and label charsets, HELP/TYPE placement,
// family contiguity, label quoting, sample-value syntax — plus the
// histogram structural invariants (_bucket cumulativity, ascending
// le bounds, the +Inf bucket equalling _count, _sum/_count presence)
// and the metric-name unit-suffix conventions (counters end in
// _total, no unit suffixes like _seconds on gauges that are not
// durations, etc. — reported for the families this repo owns).

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// lintFamily accumulates per-family state while scanning.
type lintFamily struct {
	name    string
	typ     string
	hasHelp bool
	// histogram series state, keyed by the non-le label signature
	buckets map[string][]bucketSample
	sums    map[string]bool
	counts  map[string]float64
}

type bucketSample struct {
	le    float64
	isInf bool
	value float64
}

// Lint checks one text exposition document and returns every
// violation found (nil for a conformant document).
func Lint(exposition string) []error {
	var errs []error
	fail := func(ln int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", ln+1, fmt.Sprintf(format, args...)))
	}

	families := map[string]*lintFamily{}
	order := []string{} // family appearance order for contiguity checks
	current := ""       // family of the most recent line
	getFam := func(base string) *lintFamily {
		f := families[base]
		if f == nil {
			f = &lintFamily{name: base, buckets: map[string][]bucketSample{}, sums: map[string]bool{}, counts: map[string]float64{}}
			families[base] = f
			order = append(order, base)
		}
		return f
	}
	touch := func(ln int, base string) *lintFamily {
		f := getFam(base)
		if current != base {
			// Re-entering a family seen before the previous line means the
			// exposition interleaves families, which scrapers reject.
			for _, seen := range order[:len(order)-1] {
				if seen == base && current != "" {
					fail(ln, "family %q is not contiguous (interleaved with %q)", base, current)
					break
				}
			}
			current = base
		}
		return f
	}

	lines := strings.Split(exposition, "\n")
	for ln, line := range lines {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, _, found := strings.Cut(rest, " ")
			if !found && rest == "" {
				fail(ln, "malformed HELP comment %q", line)
				continue
			}
			if !found {
				name = rest // empty help text is legal
			}
			if !validMetricName(name) {
				fail(ln, "HELP for invalid metric name %q", name)
				continue
			}
			f := touch(ln, name)
			if f.hasHelp {
				fail(ln, "duplicate HELP for %q", name)
			}
			if f.typ != "" {
				fail(ln, "HELP for %q after its TYPE", name)
			}
			f.hasHelp = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				fail(ln, "malformed TYPE comment %q", line)
				continue
			}
			name, typ := fields[2], fields[3]
			if !validMetricName(name) {
				fail(ln, "TYPE for invalid metric name %q", name)
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail(ln, "unknown metric type %q", typ)
			}
			f := touch(ln, name)
			if f.typ != "" {
				fail(ln, "duplicate TYPE for %q", name)
			}
			f.typ = typ
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				fail(ln, "counter %q should end in _total", name)
			}
			if typ != "counter" && strings.HasSuffix(name, "_total") {
				fail(ln, "%s %q must not use the counter suffix _total", typ, name)
			}
		case strings.HasPrefix(line, "#"):
			// Plain comments are legal but this repo never emits them.
			fail(ln, "unexpected comment %q", line)
		default:
			lintSample(line, ln, families, touch, fail)
		}
	}

	// Histogram structural invariants, per family and label signature.
	for _, base := range order {
		f := families[base]
		if f.typ == "" {
			errs = append(errs, fmt.Errorf("family %q has samples but no TYPE", base))
		}
		if f.typ != "histogram" {
			continue
		}
		sigs := make([]string, 0, len(f.buckets))
		for sig := range f.buckets {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			samples := f.buckets[sig]
			label := sig
			if label == "" {
				label = "(no labels)"
			}
			var prevLe, prevV float64
			sawInf := false
			for i, b := range samples {
				if b.isInf {
					sawInf = true
				} else if i > 0 && !samples[i-1].isInf && b.le <= prevLe {
					errs = append(errs, fmt.Errorf("histogram %s %s: le bounds not ascending at %v", base, label, b.le))
				}
				if b.value < prevV {
					errs = append(errs, fmt.Errorf("histogram %s %s: buckets not cumulative at le=%v (%v < %v)", base, label, b.le, b.value, prevV))
				}
				prevLe, prevV = b.le, b.value
			}
			if !sawInf {
				errs = append(errs, fmt.Errorf("histogram %s %s: missing +Inf bucket", base, label))
			}
			count, hasCount := f.counts[sig]
			if !hasCount {
				errs = append(errs, fmt.Errorf("histogram %s %s: missing _count sample", base, label))
			}
			if !f.sums[sig] {
				errs = append(errs, fmt.Errorf("histogram %s %s: missing _sum sample", base, label))
			}
			if sawInf && hasCount && len(samples) > 0 {
				last := samples[len(samples)-1]
				if !last.isInf {
					errs = append(errs, fmt.Errorf("histogram %s %s: +Inf bucket is not the last bucket", base, label))
				} else if last.value != count {
					errs = append(errs, fmt.Errorf("histogram %s %s: +Inf bucket %v != _count %v", base, label, last.value, count))
				}
			}
		}
	}
	return errs
}

// lintSample validates one sample line and records histogram state.
func lintSample(line string, ln int, families map[string]*lintFamily,
	touch func(int, string) *lintFamily, fail func(int, string, ...any)) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		fail(ln, "no value separator in %q", line)
		return
	}
	key, valStr := line[:sp], line[sp+1:]
	var value float64
	switch valStr {
	case "+Inf", "-Inf", "NaN":
		// legal literals; value only matters for histogram checks
	default:
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			fail(ln, "bad sample value %q", valStr)
			return
		}
		value = v
	}

	name := key
	labels := map[string]string{}
	if i := strings.IndexByte(key, '{'); i >= 0 {
		if !strings.HasSuffix(key, "}") {
			fail(ln, "unterminated label set in %q", line)
			return
		}
		name = key[:i]
		if !parseLabels(key[i+1:len(key)-1], labels) {
			fail(ln, "malformed label set in %q", line)
			return
		}
		for lname := range labels {
			if lname != "le" && lname != "quantile" && !validLabelName(lname) {
				fail(ln, "invalid label name %q", lname)
			}
		}
	}
	if !validMetricName(name) {
		fail(ln, "invalid metric name %q", name)
		return
	}

	// Resolve the family: histogram/summary samples use suffixed names.
	base := name
	suffix := ""
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(name, s)
		if trimmed != name {
			if f, ok := families[trimmed]; ok && (f.typ == "histogram" || f.typ == "summary") {
				base, suffix = trimmed, s
			}
			break
		}
	}
	f := touch(ln, base)
	if f.typ == "" && !f.hasHelp {
		fail(ln, "sample %q precedes its HELP/TYPE comments", name)
		return
	}
	if f.typ != "histogram" {
		if _, ok := labels["le"]; ok {
			fail(ln, "non-histogram sample %q carries an le label", name)
		}
		return
	}

	// Histogram bookkeeping keyed by the non-le label signature.
	sig := labelSignature(labels)
	switch suffix {
	case "_bucket":
		le, ok := labels["le"]
		if !ok {
			fail(ln, "histogram bucket %q missing le label", name)
			return
		}
		b := bucketSample{value: value}
		if le == "+Inf" {
			b.isInf = true
		} else {
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				fail(ln, "histogram bucket %q has unparsable le=%q", name, le)
				return
			}
			b.le = bound
		}
		f.buckets[sig] = append(f.buckets[sig], b)
	case "_sum":
		f.sums[sig] = true
	case "_count":
		f.counts[sig] = value
	default:
		fail(ln, "histogram family %q has a bare sample %q (want _bucket/_sum/_count)", base, name)
	}
}

// parseLabels fills m from the inside of a label set, returning false
// on syntax errors. Values may contain escaped quotes and commas.
func parseLabels(s string, m map[string]string) bool {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return false
		}
		name := s[:eq]
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return false
		}
		// Scan the quoted value honoring backslash escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return false // unterminated value
		}
		m[name] = rest[1:i]
		s = rest[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return false
			}
			s = s[1:]
		}
	}
	return true
}

// labelSignature serializes the non-le labels deterministically.
func labelSignature(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}
