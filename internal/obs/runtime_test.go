package obs

import (
	"strings"
	"testing"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	// Get-or-create: a second registration of the same families must not
	// panic (every binary calls this next to other registrations).
	RegisterRuntimeMetrics(reg)

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if errs := Lint(got); len(errs) != 0 {
		t.Fatalf("runtime families fail lint: %v", errs)
	}
	for _, fam := range []string{
		"ppm_go_goroutines",
		"ppm_go_heap_alloc_bytes",
		"ppm_go_gc_pause_seconds_total",
		"ppm_process_uptime_seconds",
	} {
		if !strings.Contains(got, "# TYPE "+fam+" ") {
			t.Errorf("exposition missing family %s:\n%s", fam, got)
		}
	}

	if v := reg.Gauge("ppm_go_goroutines", "Number of live goroutines.").Get(); v < 1 {
		t.Errorf("goroutines = %v, want >= 1", v)
	}
	if v := reg.Gauge("ppm_go_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).").Get(); v <= 0 {
		t.Errorf("heap alloc = %v, want > 0", v)
	}
	if v := reg.Counter("ppm_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.").Get(); v < 0 {
		t.Errorf("gc pause total = %v, want >= 0", v)
	}
	if v := reg.Gauge("ppm_process_uptime_seconds", "Seconds since the process started.").Get(); v <= 0 {
		t.Errorf("uptime = %v, want > 0", v)
	}
}

func TestCounterFuncOverridesStoredValue(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterFunc("ppm_cb_total", "Callback counter.", func() float64 { return 42 })
	c.Add(5) // stored value is ignored while the callback is installed
	if got := c.Get(); got != 42 {
		t.Fatalf("Get() = %v, want callback value 42", got)
	}
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ppm_cb_total 42\n") {
		t.Fatalf("render does not use callback value:\n%s", b.String())
	}
}
