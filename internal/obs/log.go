package obs

// Shared structured-logging setup on log/slog. Every binary registers
// the same two flags (-log-level, -log-format), calls SetupLogs once,
// and gets a process-default slog logger tagged with its component
// name — so operators can grep one consistent field across ppm-serve,
// ppm-gateway and the batch tools, and flip any binary to JSON logs
// for ingestion pipelines without code changes.

import (
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"strings"
)

// LogConfig carries the shared logging flags.
type LogConfig struct {
	// Level is the minimum severity: debug, info, warn or error.
	Level string
	// Format is the handler encoding: text or json.
	Format string
}

// RegisterFlags registers -log-level and -log-format on fs.
func (c *LogConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Level, "log-level", "info", "minimum log severity (debug, info, warn, error)")
	fs.StringVar(&c.Format, "log-format", "text", "log encoding (text or json)")
}

// ParseLevel maps a flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NewLogger builds a component-tagged slog logger writing to w.
func NewLogger(component string, cfg LogConfig, w io.Writer) (*slog.Logger, error) {
	level, err := ParseLevel(cfg.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(cfg.Format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", cfg.Format)
	}
	return slog.New(h).With("component", component), nil
}

// SetupLogs builds the component logger on stderr, installs it as the
// slog AND stdlib-log default (so legacy log.Printf calls inside
// libraries flow through the same handler), and returns it.
func SetupLogs(component string, cfg LogConfig) (*slog.Logger, error) {
	logger, err := NewLogger(component, cfg, os.Stderr)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(logger)
	return logger, nil
}

// StdLogger bridges a slog logger to a *log.Logger for APIs that take
// the stdlib type (e.g. gateway.Config.Logger). Messages are emitted
// at the given level.
func StdLogger(logger *slog.Logger, level slog.Level) *log.Logger {
	return slog.NewLogLogger(logger.Handler(), level)
}
