package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestTimeSeriesSingleBatchWindows(t *testing.T) {
	ts, err := NewTimeSeries(TimeSeriesConfig{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ts.Record("estimate", 0.9-0.1*float64(i))
		ts.Record("alarm", 0)
		ts.Commit()
	}
	windows := ts.Windows()
	if len(windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(windows))
	}
	for i, w := range windows {
		if w.Index != int64(i) {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
		if w.Batches != 1 {
			t.Fatalf("window %d batches = %d, want 1", i, w.Batches)
		}
		agg, ok := w.Series["estimate"]
		if !ok {
			t.Fatalf("window %d missing estimate series", i)
		}
		want := 0.9 - 0.1*float64(i)
		if agg.Last != want || agg.Count != 1 || agg.Min != want || agg.Max != want {
			t.Fatalf("window %d estimate = %+v, want %v", i, agg, want)
		}
		if agg.Quantiles["p50"] != want {
			t.Fatalf("window %d p50 = %v, want %v", i, agg.Quantiles["p50"], want)
		}
		if w.End.Before(w.Start) {
			t.Fatalf("window %d ends before it starts", i)
		}
	}
}

func TestTimeSeriesMultiBatchAggregation(t *testing.T) {
	ts, err := NewTimeSeries(TimeSeriesConfig{WindowBatches: 3, Quantiles: []float64{50}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 3, 2} {
		ts.Record("x", v)
		ts.Commit()
	}
	if ts.Len() != 1 {
		t.Fatalf("closed windows = %d, want 1", ts.Len())
	}
	w, ok := ts.Last()
	if !ok {
		t.Fatal("no last window")
	}
	agg := w.Series["x"]
	if agg.Count != 3 || agg.Sum != 6 || agg.Min != 1 || agg.Max != 3 || agg.Last != 2 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.Mean() != 2 {
		t.Fatalf("mean = %v, want 2", agg.Mean())
	}
	if agg.Quantiles["p50"] != 2 {
		t.Fatalf("p50 = %v, want 2", agg.Quantiles["p50"])
	}
	if w.Batches != 3 {
		t.Fatalf("batches = %d, want 3", w.Batches)
	}
}

func TestTimeSeriesRingEviction(t *testing.T) {
	ts, err := NewTimeSeries(TimeSeriesConfig{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ts.Record("v", float64(i))
		ts.Commit()
	}
	windows := ts.Windows()
	if len(windows) != 2 {
		t.Fatalf("retained = %d, want 2", len(windows))
	}
	// Indices keep counting past evicted windows.
	if windows[0].Index != 3 || windows[1].Index != 4 {
		t.Fatalf("indices = %d,%d, want 3,4", windows[0].Index, windows[1].Index)
	}
}

func TestTimeSeriesCloseWindowForcesPartial(t *testing.T) {
	ts, err := NewTimeSeries(TimeSeriesConfig{WindowBatches: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ts.CloseWindow(); ok {
		t.Fatal("empty store should not close a window")
	}
	ts.Record("v", 1)
	ts.Commit()
	w, ok := ts.CloseWindow()
	if !ok || w.Batches != 1 {
		t.Fatalf("forced close = %+v ok=%v", w, ok)
	}
	if ts.Len() != 1 {
		t.Fatalf("ring length = %d, want 1", ts.Len())
	}
}

func TestTimeSeriesHooksFireInOrder(t *testing.T) {
	ts, err := NewTimeSeries(TimeSeriesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	ts.OnWindowClose(func(w Window) { got = append(got, w.Index) })
	ts.OnWindowClose(func(w Window) {
		// Hooks may read the store (the alert engine inspects history).
		if ts.Len() == 0 {
			t.Error("hook ran before the window joined the ring")
		}
	})
	for i := 0; i < 3; i++ {
		ts.Record("v", float64(i))
		ts.Commit()
	}
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("hook order = %v", got)
	}
}

func TestTimeSeriesQuantileSketchTracksStream(t *testing.T) {
	ts, err := NewTimeSeries(TimeSeriesConfig{WindowBatches: 100, Quantiles: []float64{50, 90}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ts.Record("lat", float64(i))
		ts.Commit()
	}
	w, ok := ts.Last()
	if !ok {
		t.Fatal("no window")
	}
	q := w.Series["lat"].Quantiles
	if q["p50"] < 30 || q["p50"] > 70 {
		t.Fatalf("p50 = %v, want ~49.5", q["p50"])
	}
	if q["p90"] < 80 || q["p90"] > 99 {
		t.Fatalf("p90 = %v, want ~89.5", q["p90"])
	}
}

func TestTimeSeriesConfigValidation(t *testing.T) {
	if _, err := NewTimeSeries(TimeSeriesConfig{Quantiles: []float64{0}}); err == nil {
		t.Fatal("quantile 0 should be rejected")
	}
	if _, err := NewTimeSeries(TimeSeriesConfig{Quantiles: []float64{100}}); err == nil {
		t.Fatal("quantile 100 should be rejected")
	}
}

func TestAggregateReduce(t *testing.T) {
	a := Aggregate{Count: 2, Sum: 3, Min: 1, Max: 2, Last: 2}
	for kind, want := range map[string]float64{
		"": 1.5, "mean": 1.5, "min": 1, "max": 2, "last": 2, "sum": 3, "count": 2,
	} {
		got, err := a.Reduce(kind)
		if err != nil || got != want {
			t.Fatalf("Reduce(%q) = %v, %v; want %v", kind, got, err, want)
		}
	}
	if _, err := a.Reduce("median"); err == nil {
		t.Fatal("unknown reduce should error")
	}
}

func TestTimeSeriesJSONRoundTrips(t *testing.T) {
	ts, err := NewTimeSeries(TimeSeriesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts.Record("estimate", 0.8)
	ts.Commit()
	buf, err := json.Marshal(ts.Windows())
	if err != nil {
		t.Fatal(err)
	}
	var back []Window
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Series["estimate"].Last != 0.8 {
		t.Fatalf("round trip = %+v", back)
	}
}

// TestTimeSeriesConcurrentScrape pins the lock-safety contract: writers
// commit windows while readers snapshot the ring. Run under -race.
func TestTimeSeriesConcurrentScrape(t *testing.T) {
	ts, err := NewTimeSeries(TimeSeriesConfig{Capacity: 16, WindowBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts.OnWindowClose(func(Window) {})
	const writers, readers, perWriter = 4, 4, 200
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				ts.Record("estimate", float64(base+j))
				ts.Record("ks_max", 0.1)
				ts.Commit()
			}
		}(i * perWriter)
	}
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, w := range ts.Windows() {
					if w.Batches == 0 {
						t.Error("closed window with zero batches")
						return
					}
				}
				ts.Last()
				ts.Len()
			}
		}()
	}
	for ts.Len() < 16 {
	}
	close(stop)
	wg.Wait()
	if got := ts.Len(); got != 16 {
		t.Fatalf("ring length = %d, want 16 (capacity)", got)
	}
}
