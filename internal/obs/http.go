package obs

// HTTP surface shared by every binary: the /metrics exposition
// handler with the canonical Prometheus content type, the
// /debug/pprof/* profiling endpoints, the /debug/spans JSON trace
// export, and a request-instrumentation middleware.

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// ContentType is the canonical Prometheus text exposition content
// type served by every /metrics endpoint in this repository.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry's text exposition at GET.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		r.WriteTo(w)
	})
}

// Handler serves the tracer's retained span trees as JSON at GET.
// ?limit=N truncates the dump to the N most recent traces. Live
// operational state must never be cached (the monitor endpoints'
// hygiene rule), hence Cache-Control: no-store.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		roots := t.Traces()
		if lim := req.URL.Query().Get("limit"); lim != "" {
			n, err := strconv.Atoi(lim)
			if err != nil || n < 0 {
				http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
				return
			}
			if n < len(roots) {
				roots = roots[len(roots)-n:]
			}
		}
		out := make([]SpanJSON, 0, len(roots))
		for _, r := range roots {
			out = append(out, r.JSON())
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		w.Write(buf)
	})
}

// TraceHandler serves the local fragments of stitched traces:
//
//	GET /debug/traces               JSON index of trace ids in the ring
//	GET /debug/traces/{traceid}     this process's spans for the trace,
//	                                merged from the ring and the journal
//	GET /debug/traces/{id}?format=html  single-process waterfall page
//
// service names the process in the waterfall (e.g. the gateway's
// replica name). Mount under the exact prefix "/debug/traces/".
func (t *Tracer) TraceHandler(service string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		id := strings.Trim(strings.TrimPrefix(req.URL.Path, "/debug/traces"), "/")
		w.Header().Set("Cache-Control", "no-store")
		if id == "" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct {
				Service  string   `json:"service"`
				TraceIDs []string `json:"trace_ids"`
			}{service, t.TraceIDs()})
			return
		}
		spans := t.FindTrace(id)
		if j := t.Journal(); j != nil {
			spans = append(spans, j.Find(id)...)
		}
		if len(spans) == 0 {
			http.Error(w, "unknown trace id (unsampled, evicted, or never seen)", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("format") == "html" {
			wf, err := StitchTrace(id, []TraceFragment{{Service: service, Spans: spans}})
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			w.Write(wf.HTML())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TraceFragment{Service: service, Spans: spans})
	})
}

// TraceMiddleware extracts an incoming traceparent header into the
// request context (and, when tr is non-nil, pins root spans started
// under that context to tr). Requests without a traceparent pass
// through untouched — the untraced hot path costs one header lookup.
func TraceMiddleware(tr *Tracer, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if tp := req.Header.Get(TraceparentHeader); tp != "" {
			if tc, err := ParseTraceparent(tp); err == nil {
				ctx := ContextWithTrace(req.Context(), tc)
				if tr != nil {
					ctx = WithTracer(ctx, tr)
				}
				req = req.WithContext(ctx)
			}
		}
		next.ServeHTTP(w, req)
	})
}

// Mount attaches the shared observability surface to mux:
//
//	GET /metrics            Prometheus text exposition of reg
//	GET /debug/spans        JSON export of the tracer's span trees
//	GET /debug/traces/*     local trace fragments + waterfall view
//	GET /debug/pprof/*      net/http/pprof profiling endpoints
//
// nil reg or tr default to the process-global instances.
func Mount(mux *http.ServeMux, reg *Registry, tr *Tracer) {
	if reg == nil {
		reg = Default()
	}
	if tr == nil {
		tr = DefaultTracer()
	}
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/spans", tr.Handler())
	mux.Handle("/debug/traces", tr.TraceHandler(""))
	mux.Handle("/debug/traces/", tr.TraceHandler(""))
	MountPprof(mux)
}

// MountPprof attaches only the /debug/pprof/* endpoints, for handlers
// that already serve their own /metrics (the gateway).
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// statusRecorder captures the response status for the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// RequestIDHeader carries the end-to-end correlation id minted by the
// gateway and propagated to the backend: one id links the proxy log
// line, the backend call and the shadow-validation verdict.
const RequestIDHeader = "X-Request-ID"

// Middleware wraps next with request accounting on reg:
//
//	http_requests_total{handler,code}
//	http_request_duration_seconds{handler}
//
// The handler label keeps one serving binary's families distinct from
// another's when both are scraped into the same Prometheus. An incoming
// X-Request-ID is echoed on the response and attached to the (debug
// level) access log line, so a request proxied through the gateway is
// correlatable on the backend side too.
func Middleware(reg *Registry, handlerName string, next http.Handler) http.Handler {
	if reg == nil {
		reg = Default()
	}
	requests := reg.CounterVec("http_requests_total",
		"HTTP requests by handler and status code.", "handler", "code")
	latency := reg.HistogramVec("http_request_duration_seconds",
		"HTTP request latency by handler.", DurationBuckets, "handler")
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		id := req.Header.Get(RequestIDHeader)
		if id != "" {
			w.Header().Set(RequestIDHeader, id)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, req)
		requests.Inc(handlerName, httpStatusClass(rec.status))
		latency.Observe(time.Since(start).Seconds(), handlerName)
		if id != "" {
			slog.Debug("request", "handler", handlerName, "method", req.Method,
				"path", req.URL.Path, "code", rec.status, "request_id", id)
		}
	})
}

// httpStatusClass buckets status codes ("200", "404", ...) exactly —
// low cardinality is preserved because only codes actually emitted by
// the handlers appear.
func httpStatusClass(code int) string {
	switch code {
	case 200:
		return "200"
	case 400:
		return "400"
	case 404:
		return "404"
	case 405:
		return "405"
	case 500:
		return "500"
	case 503:
		return "503"
	default:
		// Collapse the long tail by class to bound cardinality.
		switch {
		case code < 300:
			return "2xx"
		case code < 400:
			return "3xx"
		case code < 500:
			return "4xx"
		default:
			return "5xx"
		}
	}
}
