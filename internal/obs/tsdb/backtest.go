package tsdb

// backtest.go: retrospective alerting over persisted history. Replay
// feeds the effective persisted windows, in index order, through a
// fresh stock alert.Engine — the exact state machine that ran live — so
// over an uncompacted range the replayed event sequence is
// bit-identical to what fired in production (same rules, same firing
// window indices, same values). Sweep turns alert tuning into a
// measured exercise: it evaluates a grid of candidate thresholds over
// the same history and reports would-have-fired counts and excursion
// durations per candidate.
//
// Fidelity caveat: once compaction has downsampled a range, replay over
// it sees one merged window per bucket (with the bucket's merged
// reduce values), so hysteresis counts buckets, not raw windows. Audits
// that must be bit-exact should run inside the retention/compaction
// head guard or with -tsdb-downsample 1.

import (
	"io"
	"log/slog"

	"blackboxval/internal/obs/alert"
)

// ReplayEntries runs persisted records through a fresh alert engine and
// returns the edge events in emission order. logger may be nil (replay
// is usually about the returned events, not live log noise).
func ReplayEntries(entries []Entry, rules []alert.Rule, logger *slog.Logger) ([]alert.Event, error) {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	var events []alert.Event
	eng, err := alert.New(alert.Config{
		Rules:    rules,
		Logger:   logger,
		Notifier: alert.NotifierFunc(func(ev alert.Event) { events = append(events, ev) }),
	})
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		eng.Evaluate(e.Window)
	}
	return events, nil
}

// Replay replays the store's whole persisted history through rules.
func (db *DB) Replay(rules []alert.Rule, logger *slog.Logger) ([]alert.Event, error) {
	min, max, ok := db.Bounds()
	if !ok {
		return nil, nil
	}
	return ReplayEntries(db.Entries(min, max), rules, logger)
}

// SweepRow is the outcome of one candidate threshold.
type SweepRow struct {
	Threshold float64 `json:"threshold"`
	// Firings counts firing edges (one per excursion).
	Firings int `json:"firings"`
	// FiringWindows is the total time spent firing, in window indices
	// from each firing edge to its resolved edge (excursions still open
	// at the end of history count through the last window).
	FiringWindows int64 `json:"firing_windows"`
	// Longest is the longest single excursion, same unit.
	Longest int64 `json:"longest"`
}

// Sweep evaluates base with each candidate threshold substituted,
// replaying the persisted history once per candidate over a single
// loaded snapshot.
func (db *DB) Sweep(base alert.Rule, thresholds []float64, logger *slog.Logger) ([]SweepRow, error) {
	min, max, ok := db.Bounds()
	var entries []Entry
	if ok {
		entries = db.Entries(min, max)
	}
	return SweepEntries(entries, base, thresholds, logger)
}

// SweepEntries is Sweep over an already-selected record range (e.g. a
// -from/-to clip of a read-only store).
func SweepEntries(entries []Entry, base alert.Rule, thresholds []float64, logger *slog.Logger) ([]SweepRow, error) {
	rows := make([]SweepRow, 0, len(thresholds))
	for _, t := range thresholds {
		rule := base
		rule.Threshold = t
		events, err := ReplayEntries(entries, []alert.Rule{rule}, logger)
		if err != nil {
			return nil, err
		}
		row := SweepRow{Threshold: t}
		var openAt int64 = -1
		for _, ev := range events {
			switch ev.State {
			case "firing":
				row.Firings++
				openAt = ev.WindowIndex
			case "resolved":
				if openAt >= 0 {
					d := ev.WindowIndex - openAt
					row.FiringWindows += d
					if d > row.Longest {
						row.Longest = d
					}
					openAt = -1
				}
			}
		}
		if openAt >= 0 && len(entries) > 0 {
			last := entries[len(entries)-1]
			d := last.end() - openAt
			row.FiringWindows += d
			if d > row.Longest {
				row.Longest = d
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
