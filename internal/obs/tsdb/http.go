package tsdb

// http.go: GET /timeline/range — the durable counterpart of the live
// /timeline snapshot. The handler ignores the request path so the same
// http.Handler mounts at /timeline/range on a standalone monitor and at
// /monitor/timeline/range behind the gateway. Parameters:
//
//	from, to  window index range (default: the store's bounds)
//	step      re-aggregation factor, >= 1 (default 1)
//	series    optional; restricts the response to per-series points
//
// Non-numeric or negative parameters are a 400, matching the
// validation contract of /timeline?limit= and /debug/spans?limit=.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"blackboxval/internal/obs"
)

// RangeDoc is the full-window response of GET /timeline/range.
type RangeDoc struct {
	From     int64        `json:"from"`
	To       int64        `json:"to"`
	Step     int64        `json:"step"`
	MinIndex int64        `json:"min_index"`
	MaxIndex int64        `json:"max_index"`
	Windows  []obs.Window `json:"windows"`
	// Spans[i] is how many raw window indices Windows[i] covers; a
	// following window whose index exceeds index+span reveals a gap.
	Spans []int64 `json:"spans"`
}

// SeriesRangeDoc is the per-series response of GET /timeline/range.
type SeriesRangeDoc struct {
	Series   string  `json:"series"`
	From     int64   `json:"from"`
	To       int64   `json:"to"`
	Step     int64   `json:"step"`
	MinIndex int64   `json:"min_index"`
	MaxIndex int64   `json:"max_index"`
	Points   []Point `json:"points"`
}

// RangeHandler serves the range-query API over the store.
func (db *DB) RangeHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		min, max, ok := db.Bounds()
		if !ok {
			min, max = 0, 0
		}
		from, err := queryInt(r, "from", min)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		to, err := queryInt(r, "to", max)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		step, err := queryInt(r, "step", 1)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if step < 1 {
			http.Error(w, "step must be a positive integer", http.StatusBadRequest)
			return
		}
		if to < from {
			http.Error(w, fmt.Sprintf("empty range: to=%d < from=%d", to, from), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		if series := r.URL.Query().Get("series"); series != "" {
			points, err := db.Query(series, from, to, step)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if points == nil {
				points = []Point{}
			}
			enc.Encode(SeriesRangeDoc{
				Series: series, From: from, To: to, Step: step,
				MinIndex: min, MaxIndex: max, Points: points,
			})
			return
		}
		windows, spans, err := db.Range(from, to, step)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if windows == nil {
			windows = []obs.Window{}
			spans = []int64{}
		}
		enc.Encode(RangeDoc{
			From: from, To: to, Step: step,
			MinIndex: min, MaxIndex: max, Windows: windows, Spans: spans,
		})
	})
}

// queryInt parses a non-negative integer query parameter, returning
// def when the parameter is absent or empty.
func queryInt(r *http.Request, name string, def int64) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer", name)
	}
	return v, nil
}
