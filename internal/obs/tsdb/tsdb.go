// Package tsdb is the durable half of the drift timeline: an
// append-only, segmented on-disk store for closed obs.TimeSeries
// windows. The in-memory ring (internal/obs/timeseries.go) answers
// "what is h doing right now"; this package answers "what did h look
// like last Tuesday" — it persists the full window payload (aggregates,
// exact sums, mergeable quantile sketches) in the canonical
// serializations from DESIGN.md §8, bounds the footprint with size/age
// retention, and downsamples old history by merging adjacent windows
// through the same Merge the federation layer uses, so compacted output
// is bit-equal no matter when compaction ran (DESIGN.md §17).
//
// Wire a DB to any window source with OnWindowClose(db.Append); query
// history via Query/Range (re-aggregated to a caller step, quantiles
// read off the persisted sketches) or replay it through the stock alert
// engine with Replay/Sweep (ppm-backtest).
package tsdb

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blackboxval/internal/obs"
)

// Config configures a DB. Dir is required; everything else defaults.
type Config struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// SegmentBytes bounds one segment file; the active segment rolls
	// when the next record would exceed it (default 4 MiB).
	SegmentBytes int64
	// RetentionBytes bounds the total on-disk footprint; the oldest
	// closed segments are deleted first (default 256 MiB).
	RetentionBytes int64
	// Retention, when positive, drops closed segments whose newest
	// window ended longer ago than this (default 0 = no age bound).
	Retention time.Duration
	// Downsample is the compaction factor K: raw windows older than the
	// head guard are merged into one record per K-aligned index bucket
	// (default 8; <=1 disables compaction).
	Downsample int
	// CompactAfter is how many of the newest raw windows stay exempt
	// from compaction so recent history keeps full resolution (default
	// 4*Downsample).
	CompactAfter int
	// Quantiles is the percentile grid, in (0,100), recomputed from
	// merged sketches for compacted and re-aggregated windows (default
	// 50, 90, 99 — the timeline default).
	Quantiles []float64
	// Logger receives store lifecycle events (default slog.Default).
	Logger *slog.Logger
}

func (c *Config) defaults() {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.RetentionBytes <= 0 {
		c.RetentionBytes = 256 << 20
	}
	if c.Downsample == 0 {
		c.Downsample = 8
	}
	if c.CompactAfter <= 0 {
		c.CompactAfter = 4 * c.Downsample
		if c.CompactAfter <= 0 {
			c.CompactAfter = 8
		}
	}
	if c.Quantiles == nil {
		c.Quantiles = []float64{50, 90, 99}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
}

// segmentInfo indexes one closed segment file.
type segmentInfo struct {
	path    string
	level   int
	seq     uint64
	bytes   int64
	records int
	// minIndex and endIndex bracket the covered window indices
	// [minIndex, endIndex); meaningless when records == 0.
	minIndex int64
	endIndex int64
	// maxEnd is the newest window End in the segment (age retention).
	maxEnd time.Time
}

// DB is the windowed on-disk store. It is safe for concurrent use;
// Append is designed as an obs.TimeSeries / fed.Aggregator
// OnWindowClose hook. Appends after Close are dropped.
type DB struct {
	cfg Config

	mu       sync.Mutex
	closed   bool
	segments []*segmentInfo // closed segments, creation order
	active   *os.File
	actInfo  *segmentInfo
	nextSeq  uint64
	// lastIndex is the highest window index ever appended (-1 = none);
	// appends at or below it are dropped as out-of-order.
	lastIndex int64
	// compactedThrough shadows raw records: every level-0 record with
	// index below it has been folded into a level-1 bucket.
	compactedThrough int64

	appended         atomic.Uint64
	appendErrors     atomic.Uint64
	corruptSegments  atomic.Uint64
	compactions      atomic.Uint64
	compactedWindows atomic.Uint64
	retentionDeletes atomic.Uint64
	queries          atomic.Uint64
}

// Open scans dir, indexes the surviving segments (counting torn or
// corrupt ones instead of failing), finishes any compaction that was
// interrupted between rename and cleanup, and starts a fresh active
// segment — it never appends into a file an earlier process wrote, so a
// torn tail from a crash stays confined to its own segment.
func Open(cfg Config) (*DB, error) {
	db, err := scan(cfg)
	if err != nil {
		return nil, err
	}
	// Drop stale temp files from a compaction that died before rename.
	if tmps, _ := filepath.Glob(filepath.Join(cfg.Dir, "*.seg.tmp")); len(tmps) > 0 {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	// Finish an interrupted compaction: level-0 segments wholly below
	// the watermark are shadowed duplicates of a level-1 bucket.
	db.dropShadowedLocked()
	if err := db.openSegmentLocked(); err != nil {
		return nil, err
	}
	db.retainLocked()
	return db, nil
}

// OpenReadOnly indexes dir without writing anything: no active segment
// is started, stale temp files stay, shadowed raw segments are skipped
// in memory instead of deleted, and no retention runs — the store is a
// pure reader another process (ppm-backtest auditing a live monitor's
// directory) can point at a directory it does not own. Appends are
// dropped; Close is a no-op.
func OpenReadOnly(cfg Config) (*DB, error) {
	db, err := scan(cfg)
	if err != nil {
		return nil, err
	}
	db.closed = true
	return db, nil
}

// scan builds a DB indexing the closed segments of cfg.Dir.
func scan(cfg Config) (*DB, error) {
	cfg.defaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("tsdb: Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	db := &DB{cfg: cfg, lastIndex: -1}
	names, err := filepath.Glob(filepath.Join(cfg.Dir, "seg-L*.seg"))
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		level, seq, ok := parseSegmentName(path)
		if !ok {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			db.corruptSegments.Add(1)
			cfg.Logger.Warn("tsdb: unreadable segment skipped", "path", path, "err", err)
			continue
		}
		entries, truncated := decodeSegment(data)
		if truncated {
			db.corruptSegments.Add(1)
			cfg.Logger.Warn("tsdb: torn segment tail skipped", "path", path, "valid_records", len(entries))
		}
		info := &segmentInfo{path: path, level: level, seq: seq, bytes: int64(len(data)), records: len(entries)}
		for i, e := range entries {
			if i == 0 || e.Window.Index < info.minIndex {
				info.minIndex = e.Window.Index
			}
			if e.end() > info.endIndex {
				info.endIndex = e.end()
			}
			if e.Window.End.After(info.maxEnd) {
				info.maxEnd = e.Window.End
			}
			if e.end()-1 > db.lastIndex {
				db.lastIndex = e.end() - 1
			}
			if level == 1 && e.end() > db.compactedThrough {
				db.compactedThrough = e.end()
			}
		}
		if seq >= db.nextSeq {
			db.nextSeq = seq + 1
		}
		db.segments = append(db.segments, info)
	}
	return db, nil
}

// openSegmentLocked starts a new empty level-0 active segment.
func (db *DB) openSegmentLocked() error {
	path := filepath.Join(db.cfg.Dir, segmentName(0, db.nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	if _, err := f.Write([]byte(segmentMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("tsdb: %w", err)
	}
	db.active = f
	db.actInfo = &segmentInfo{path: path, level: 0, seq: db.nextSeq, bytes: int64(len(segmentMagic))}
	db.nextSeq++
	return nil
}

// Append persists one closed window. It is the OnWindowClose hook:
// errors are counted and logged, never returned, so a full disk can't
// take the serving path down with it. Windows must arrive in increasing
// index order (the timeline closes them that way); stragglers at or
// below the high-water mark are dropped.
func (db *DB) Append(w obs.Window) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed || db.active == nil {
		return
	}
	if w.Index <= db.lastIndex {
		db.appendErrors.Add(1)
		db.cfg.Logger.Warn("tsdb: out-of-order window dropped", "index", w.Index, "last", db.lastIndex)
		return
	}
	rec, err := encodeRecord(Entry{Span: 1, Windows: 1, Window: w})
	if err != nil {
		db.appendErrors.Add(1)
		db.cfg.Logger.Warn("tsdb: append failed", "err", err)
		return
	}
	if db.actInfo.records > 0 && db.actInfo.bytes+int64(len(rec)) > db.cfg.SegmentBytes {
		if err := db.rotateLocked(); err != nil {
			db.appendErrors.Add(1)
			db.cfg.Logger.Warn("tsdb: segment rotation failed", "err", err)
			return
		}
	}
	if _, err := db.active.Write(rec); err != nil {
		db.appendErrors.Add(1)
		db.cfg.Logger.Warn("tsdb: append failed", "err", err)
		return
	}
	if db.actInfo.records == 0 {
		db.actInfo.minIndex = w.Index
	}
	db.actInfo.records++
	db.actInfo.bytes += int64(len(rec))
	db.actInfo.endIndex = w.Index + 1
	if w.End.After(db.actInfo.maxEnd) {
		db.actInfo.maxEnd = w.End
	}
	db.lastIndex = w.Index
	db.appended.Add(1)
}

// rotateLocked seals the active segment and starts a fresh one, then
// runs compaction and retention — the only scheduled maintenance hook,
// though Compact may also be called explicitly at any time (the
// determinism contract makes the schedule unobservable in the data).
func (db *DB) rotateLocked() error {
	if err := db.sealActiveLocked(); err != nil {
		return err
	}
	if err := db.openSegmentLocked(); err != nil {
		return err
	}
	db.compactLocked()
	db.retainLocked()
	return nil
}

// sealActiveLocked syncs and closes the active segment, moving it to
// the closed list (or deleting it when it holds no records).
func (db *DB) sealActiveLocked() error {
	if db.active == nil {
		return nil
	}
	f, info := db.active, db.actInfo
	db.active, db.actInfo = nil, nil
	syncErr := f.Sync()
	closeErr := f.Close()
	if info.records == 0 {
		os.Remove(info.path)
	} else {
		db.segments = append(db.segments, info)
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// dropShadowedLocked deletes closed level-0 segments whose every record
// is already covered by a level-1 compacted bucket.
func (db *DB) dropShadowedLocked() {
	kept := db.segments[:0]
	for _, info := range db.segments {
		if info.level == 0 && info.records > 0 && info.endIndex <= db.compactedThrough {
			os.Remove(info.path)
			db.cfg.Logger.Info("tsdb: dropped compacted raw segment", "path", info.path)
			continue
		}
		kept = append(kept, info)
	}
	db.segments = kept
}

// retainLocked enforces the size and age bounds over closed segments,
// oldest data first. The active segment is never deleted.
func (db *DB) retainLocked() {
	if len(db.segments) == 0 {
		return
	}
	// Oldest data first: by first covered index, then creation order.
	sort.SliceStable(db.segments, func(i, j int) bool {
		a, b := db.segments[i], db.segments[j]
		if a.minIndex != b.minIndex {
			return a.minIndex < b.minIndex
		}
		return a.seq < b.seq
	})
	total := db.actInfo.bytes
	for _, info := range db.segments {
		total += info.bytes
	}
	cutoff := time.Time{}
	if db.cfg.Retention > 0 {
		cutoff = time.Now().Add(-db.cfg.Retention)
	}
	kept := db.segments[:0]
	for _, info := range db.segments {
		expired := !cutoff.IsZero() && info.records > 0 && info.maxEnd.Before(cutoff)
		oversize := total > db.cfg.RetentionBytes
		if expired || oversize {
			os.Remove(info.path)
			total -= info.bytes
			db.retentionDeletes.Add(1)
			db.cfg.Logger.Info("tsdb: segment dropped by retention", "path", info.path,
				"expired", expired, "oversize", oversize)
			continue
		}
		kept = append(kept, info)
	}
	db.segments = kept
}

// Close seals the active segment. Further appends are dropped.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	return db.sealActiveLocked()
}

// Dir returns the segment directory.
func (db *DB) Dir() string { return db.cfg.Dir }

// Quantiles returns a copy of the configured percentile grid.
func (db *DB) Quantiles() []float64 {
	return append([]float64(nil), db.cfg.Quantiles...)
}

// Appended returns the number of windows persisted by this process.
func (db *DB) Appended() uint64 { return db.appended.Load() }

// CorruptSegments returns how many torn or unreadable segments the
// open scan skipped.
func (db *DB) CorruptSegments() uint64 { return db.corruptSegments.Load() }

// Stats is a point-in-time footprint snapshot for logs and gauges.
type Stats struct {
	Segments int
	Bytes    int64
	Windows  int // persisted records (raw + compacted), not raw windows
}

// Stats reports the current on-disk footprint.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := Stats{}
	for _, info := range db.segments {
		s.Segments++
		s.Bytes += info.bytes
		s.Windows += info.records
	}
	if db.actInfo != nil {
		s.Segments++
		s.Bytes += db.actInfo.bytes
		s.Windows += db.actInfo.records
	}
	return s
}

// RegisterMetrics exposes the store's counters and gauges on reg under
// the ppm_tsdb_* families. Callback-backed families read the live
// atomics, so registration order relative to Open does not matter.
func (db *DB) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("ppm_tsdb_appended_windows_total",
		"Timeline windows persisted to the on-disk store.",
		func() float64 { return float64(db.appended.Load()) })
	reg.CounterFunc("ppm_tsdb_append_errors_total",
		"Windows dropped by the on-disk store (write failure or out-of-order index).",
		func() float64 { return float64(db.appendErrors.Load()) })
	reg.CounterFunc("ppm_tsdb_corrupt_segments_total",
		"Torn or unreadable segments detected and skipped at open.",
		func() float64 { return float64(db.corruptSegments.Load()) })
	reg.CounterFunc("ppm_tsdb_compactions_total",
		"Downsampling compaction passes that produced a compacted segment.",
		func() float64 { return float64(db.compactions.Load()) })
	reg.CounterFunc("ppm_tsdb_compacted_windows_total",
		"Raw windows folded into compacted buckets.",
		func() float64 { return float64(db.compactedWindows.Load()) })
	reg.CounterFunc("ppm_tsdb_retention_segments_total",
		"Segments deleted by the size or age retention bounds.",
		func() float64 { return float64(db.retentionDeletes.Load()) })
	reg.CounterFunc("ppm_tsdb_queries_total",
		"Range queries served from the on-disk store.",
		func() float64 { return float64(db.queries.Load()) })
	reg.GaugeFunc("ppm_tsdb_segments",
		"Segment files currently on disk, including the active one.",
		func() float64 { return float64(db.Stats().Segments) })
	reg.GaugeFunc("ppm_tsdb_bytes",
		"Bytes currently on disk across all segments.",
		func() float64 { return float64(db.Stats().Bytes) })
}
