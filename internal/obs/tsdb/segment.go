package tsdb

// segment.go: the on-disk record format. A segment is one append-only
// file of framed records; each record is the canonical JSON of an Entry
// (one persisted timeline window, raw or compacted) guarded by a CRC32
// so a torn tail from a crash mid-write is detected and skipped rather
// than poisoning the read path. The JSON payload is canonical because
// encoding/json emits struct fields in declaration order and map keys
// sorted, and the sketch/exact-sum fields marshal via their own
// canonical encoders (DESIGN.md §8) — so byte equality of records is
// equality of the persisted windows, which is what the compaction
// determinism suite asserts.
//
// Layout:
//
//	segment  = magic record*
//	magic    = "PPMTSDB1" (8 bytes)
//	record   = u32(len payload) u32(crc32-IEEE payload) payload
//	payload  = canonical JSON of Entry
//
// Integers are little-endian. Decoding stops at the first anomaly
// (short frame, CRC mismatch, invalid JSON, zero/oversized length) and
// keeps the valid prefix; the caller counts the truncation.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"regexp"
	"strconv"

	"blackboxval/internal/obs"
)

const (
	segmentMagic = "PPMTSDB1"
	// maxRecordBytes bounds a single decoded record; a window payload is
	// typically tens of KB (sketch buckets dominate), so anything near
	// this limit is corruption, not data.
	maxRecordBytes = 64 << 20
)

// Entry is one persisted window. Span is the number of consecutive
// timeline indices the record covers, starting at Window.Index: 1 for a
// raw append, the downsampling factor K for a compacted bucket. Windows
// counts the raw windows folded into the record (gaps inside a
// compacted bucket make Windows < Span).
type Entry struct {
	Span    int64      `json:"span"`
	Windows int64      `json:"windows"`
	Window  obs.Window `json:"window"`
}

// end returns the exclusive end of the index range the entry covers.
func (e Entry) end() int64 { return e.Window.Index + e.Span }

// encodeRecord frames one entry for appending to a segment.
func encodeRecord(e Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("tsdb: encode window %d: %w", e.Window.Index, err)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf, nil
}

// decodeSegment parses a whole segment file. It returns every record of
// the valid prefix and whether the file ended cleanly; truncated=true
// means a torn or corrupt tail (or a missing/garbled header) was
// detected and everything from that point on was skipped.
func decodeSegment(data []byte) (entries []Entry, truncated bool) {
	if len(data) < len(segmentMagic) || string(data[:len(segmentMagic)]) != segmentMagic {
		return nil, true
	}
	off := len(segmentMagic)
	for off < len(data) {
		if len(data)-off < 8 {
			return entries, true
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > maxRecordBytes || int(n) > len(data)-off-8 {
			return entries, true
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return entries, true
		}
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return entries, true
		}
		if e.Span <= 0 || e.Windows <= 0 || e.Window.Index < 0 {
			return entries, true
		}
		entries = append(entries, e)
		off += 8 + int(n)
	}
	return entries, false
}

// Segment file names: seg-L<level>-<seq>.seg, zero-padded so a
// lexicographic directory sort is also a sequence sort. Level 0 holds
// raw appends, level 1 compacted buckets.
var segmentNameRe = regexp.MustCompile(`^seg-L([01])-(\d{8})\.seg$`)

func segmentName(level int, seq uint64) string {
	return fmt.Sprintf("seg-L%d-%08d.seg", level, seq)
}

// parseSegmentName reports the level and sequence number of a segment
// file name, or ok=false for foreign files.
func parseSegmentName(path string) (level int, seq uint64, ok bool) {
	m := segmentNameRe.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return 0, 0, false
	}
	level, _ = strconv.Atoi(m[1])
	seq, err := strconv.ParseUint(m[2], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return level, seq, true
}
