package tsdb

// compact.go: deterministic downsampling. Old raw windows are folded
// into one record per K-aligned index bucket [b*K, (b+1)*K) by
// obs.MergeWindowSet — the same associative merge the federation layer
// uses — so the compacted record is a pure function of the raw windows
// in the bucket, independent of when (or in how many passes) compaction
// ran. That is the associativity contract of DESIGN.md §8/§13 extended
// to the time axis (§17): eager, lazy and randomized compaction
// schedules produce bit-identical canonical JSON, which the determinism
// suite asserts.
//
// Eligibility keeps the contract schedule-free: a bucket compacts only
// when it is sealed — every index it covers is (a) in a closed segment
// (the active segment is still being written) and (b) older than the
// CompactAfter head guard, so no future append can land inside it.
// Crash safety: the compacted segment is written complete to a temp
// file, synced, then renamed into place before any covered raw segment
// is deleted; a crash in between leaves shadowed duplicates that the
// next Open resolves via the compactedThrough watermark.

import (
	"os"
	"path/filepath"

	"blackboxval/internal/obs"
)

// Compact runs one compaction pass followed by retention enforcement.
// It is called automatically on every segment rotation; calling it
// explicitly (tests, ppm-backtest maintenance) is safe at any time and
// cannot change what queries observe, only how it is stored.
func (db *DB) Compact() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	db.compactLocked()
	db.retainLocked()
}

// compactLocked folds every sealed, not-yet-compacted bucket into a new
// level-1 segment.
func (db *DB) compactLocked() {
	k := int64(db.cfg.Downsample)
	if k <= 1 {
		return
	}
	// Raw windows are compactable only below both caps: the closed-
	// segment frontier and the head guard of full-resolution windows.
	var closedEnd int64
	for _, info := range db.segments {
		if info.level == 0 && info.records > 0 && info.endIndex > closedEnd {
			closedEnd = info.endIndex
		}
	}
	limit := closedEnd
	if head := db.lastIndex + 1 - int64(db.cfg.CompactAfter); head < limit {
		limit = head
	}
	bucketEnd := (limit / k) * k
	start := ((db.compactedThrough + k - 1) / k) * k
	if start >= bucketEnd {
		return
	}
	raw := db.loadEntriesLocked(start, bucketEnd-1, true)
	var out []Entry
	var folded uint64
	for b := start; b < bucketEnd; b += k {
		var ws []obs.Window
		for _, e := range raw {
			if e.Window.Index >= b && e.Window.Index < b+k {
				ws = append(ws, e.Window)
			}
		}
		if len(ws) == 0 {
			continue // an empty bucket never becomes a record
		}
		merged, _ := obs.MergeWindowSet(ws, db.cfg.Quantiles)
		merged.Index = b
		out = append(out, Entry{Span: k, Windows: int64(len(ws)), Window: merged})
		folded += uint64(len(ws))
	}
	if len(out) > 0 {
		info, err := db.writeCompactedLocked(out)
		if err != nil {
			db.cfg.Logger.Warn("tsdb: compaction failed", "err", err)
			return
		}
		db.segments = append(db.segments, info)
		db.compactions.Add(1)
		db.compactedWindows.Add(folded)
	}
	db.compactedThrough = bucketEnd
	db.dropShadowedLocked()
}

// writeCompactedLocked durably writes one level-1 segment: complete
// temp file, fsync, atomic rename.
func (db *DB) writeCompactedLocked(entries []Entry) (*segmentInfo, error) {
	seq := db.nextSeq
	db.nextSeq++
	path := filepath.Join(db.cfg.Dir, segmentName(1, seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	info := &segmentInfo{path: path, level: 1, seq: seq}
	buf := []byte(segmentMagic)
	for _, e := range entries {
		rec, err := encodeRecord(e)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, err
		}
		buf = append(buf, rec...)
		if info.records == 0 || e.Window.Index < info.minIndex {
			info.minIndex = e.Window.Index
		}
		if e.end() > info.endIndex {
			info.endIndex = e.end()
		}
		if e.Window.End.After(info.maxEnd) {
			info.maxEnd = e.Window.End
		}
		info.records++
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	info.bytes = int64(len(buf))
	return info, nil
}
