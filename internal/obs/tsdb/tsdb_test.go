package tsdb

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blackboxval/internal/obs"
)

// makeWindows closes n one-batch windows from a real TimeSeries so the
// persisted payloads carry genuine sketches, exact sums and quantiles.
func makeWindows(t *testing.T, n int, seed int64) []obs.Window {
	t.Helper()
	ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{Capacity: n + 1})
	if err != nil {
		t.Fatal(err)
	}
	var out []obs.Window
	ts.OnWindowClose(func(w obs.Window) { out = append(out, w) })
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for j := 0; j < 8; j++ {
			ts.Record("estimate", 0.7+0.3*rng.Float64())
			ts.Record("ks_max", 0.4*rng.Float64())
		}
		ts.Record("alarm", float64(i%7/6)) // spikes to 1 every 7th window
		ts.Commit()
	}
	if len(out) != n {
		t.Fatalf("made %d windows, want %d", len(out), n)
	}
	return out
}

func openTestDB(t *testing.T, dir string, mutate func(*Config)) *DB {
	t.Helper()
	cfg := Config{Dir: dir}
	if mutate != nil {
		mutate(&cfg)
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func canonical(t *testing.T, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	windows := makeWindows(t, 10, 1)
	db := openTestDB(t, dir, nil)
	for _, w := range windows {
		db.Append(w)
	}
	if got := db.Appended(); got != 10 {
		t.Fatalf("Appended() = %d, want 10", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openTestDB(t, dir, nil)
	defer db2.Close()
	min, max, ok := db2.Bounds()
	if !ok || min != 0 || max != 9 {
		t.Fatalf("Bounds() = %d, %d, %v; want 0, 9, true", min, max, ok)
	}
	entries := db2.Entries(0, 9)
	if len(entries) != 10 {
		t.Fatalf("Entries returned %d records, want 10", len(entries))
	}
	for i, e := range entries {
		if e.Span != 1 || e.Windows != 1 {
			t.Fatalf("entry %d: span=%d windows=%d, want 1/1", i, e.Span, e.Windows)
		}
		// Bit-equality in canonical JSON: the persisted window is the
		// live window.
		if got, want := canonical(t, e.Window), canonical(t, windows[i]); got != want {
			t.Fatalf("window %d round-trip mismatch:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestRotationAndFreshSegmentPerProcess(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir, func(c *Config) { c.SegmentBytes = 8 << 10; c.Downsample = 1 })
	for _, w := range makeWindows(t, 20, 2) {
		db.Append(w)
	}
	st := db.Stats()
	if st.Segments < 3 {
		t.Fatalf("got %d segments, want rotation to produce at least 3", st.Segments)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	before, _ := filepath.Glob(filepath.Join(dir, "seg-L0-*.seg"))

	// A new process never appends into an old file.
	db2 := openTestDB(t, dir, func(c *Config) { c.Downsample = 1 })
	defer db2.Close()
	db2.Append(makeWindows(t, 21, 3)[20])
	after, _ := filepath.Glob(filepath.Join(dir, "seg-L0-*.seg"))
	if len(after) != len(before)+1 {
		t.Fatalf("reopen+append: %d segments, want %d (fresh active segment)", len(after), len(before)+1)
	}
	if got := len(db2.Entries(0, 20)); got != 21 {
		t.Fatalf("Entries = %d records, want 21", got)
	}
}

func TestTornSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir, func(c *Config) { c.Downsample = 1 })
	windows := makeWindows(t, 6, 4)
	for _, w := range windows {
		db.Append(w)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail of the only segment: chop into the final record and
	// append garbage, as a crash mid-write would.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-L0-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	torn := append(data[:len(data)-10:len(data)-10], []byte("garbage")...)
	if err := os.WriteFile(segs[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := openTestDB(t, dir, func(c *Config) { c.Downsample = 1 })
	defer db2.Close()
	if got := db2.CorruptSegments(); got != 1 {
		t.Fatalf("CorruptSegments() = %d, want 1", got)
	}
	// The valid prefix survives; the torn record is gone.
	entries := db2.Entries(0, 5)
	if len(entries) != 5 {
		t.Fatalf("Entries = %d records, want the 5 of the valid prefix", len(entries))
	}
	// Appends resume on a fresh segment past the high-water mark.
	db2.Append(windows[5])
	if got := len(db2.Entries(0, 5)); got != 6 {
		t.Fatalf("after resumed append: %d records, want 6", got)
	}
}

func TestFullyCorruptSegmentSkipped(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-L0-00000000.seg"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := openTestDB(t, dir, nil)
	defer db.Close()
	if got := db.CorruptSegments(); got != 1 {
		t.Fatalf("CorruptSegments() = %d, want 1", got)
	}
	if _, _, ok := db.Bounds(); ok {
		t.Fatal("Bounds() reported data in an all-corrupt store")
	}
	db.Append(makeWindows(t, 1, 5)[0])
	if got := len(db.Entries(0, 0)); got != 1 {
		t.Fatalf("append after corrupt scan: %d records, want 1", got)
	}
}

func TestOutOfOrderAppendDropped(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir, nil)
	defer db.Close()
	windows := makeWindows(t, 3, 6)
	db.Append(windows[0])
	db.Append(windows[1])
	db.Append(windows[0]) // straggler
	if got := db.Appended(); got != 2 {
		t.Fatalf("Appended() = %d, want 2 (straggler dropped)", got)
	}
	if got := db.appendErrors.Load(); got != 1 {
		t.Fatalf("append errors = %d, want 1", got)
	}
}

func TestRetentionBytes(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir, func(c *Config) {
		c.SegmentBytes = 8 << 10
		c.RetentionBytes = 24 << 10
		c.Downsample = 1
	})
	defer db.Close()
	for _, w := range makeWindows(t, 60, 7) {
		db.Append(w)
	}
	st := db.Stats()
	if st.Bytes > 40<<10 {
		t.Fatalf("retention kept %d bytes, want bounded near 24KiB", st.Bytes)
	}
	if db.retentionDeletes.Load() == 0 {
		t.Fatal("retention deleted nothing")
	}
	min, _, ok := db.Bounds()
	if !ok || min == 0 {
		t.Fatalf("oldest data should be gone; Bounds min = %d, ok = %v", min, ok)
	}
}

func TestCompactionDownsamplesOldHistory(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir, func(c *Config) {
		c.SegmentBytes = 8 << 10
		c.Downsample = 4
		c.CompactAfter = 4
	})
	windows := makeWindows(t, 32, 8)
	for _, w := range windows {
		db.Append(w)
	}
	db.Compact()
	entries := db.Entries(0, 31)
	var rawCount, compacted int
	covered := int64(0)
	seen := int64(0)
	for _, e := range entries {
		if e.Window.Index != seen {
			t.Fatalf("entry coverage gap: got index %d, want %d", e.Window.Index, seen)
		}
		seen = e.end()
		covered += e.Span
		if e.Span == 1 {
			rawCount++
		} else {
			if e.Span != 4 {
				t.Fatalf("compacted span = %d, want 4", e.Span)
			}
			compacted++
		}
	}
	if covered != 32 {
		t.Fatalf("entries cover %d indices, want 32", covered)
	}
	if compacted == 0 {
		t.Fatal("no compacted buckets produced")
	}
	if rawCount < 4 {
		t.Fatalf("head guard kept %d raw windows, want >= CompactAfter", rawCount)
	}
	// A compacted bucket equals the merge of its raw windows.
	first := entries[0]
	if first.Span != 4 || first.Windows != 4 {
		t.Fatalf("first entry span=%d windows=%d, want 4/4", first.Span, first.Windows)
	}
	want, _ := obs.MergeWindowSet(windows[0:4], db.Quantiles())
	want.Index = 0
	if got, exp := canonical(t, first.Window), canonical(t, want); got != exp {
		t.Fatalf("compacted bucket != merged raw windows:\n got %s\nwant %s", got, exp)
	}
	// Compacted raw segments are deleted once shadowed.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	raws, _ := filepath.Glob(filepath.Join(dir, "seg-L0-*.seg"))
	for _, p := range raws {
		data, _ := os.ReadFile(p)
		es, _ := decodeSegment(data)
		for _, e := range es {
			if e.end() <= 24 { // compactedThrough for 32 windows, K=4, guard 4
				t.Fatalf("segment %s still holds shadowed raw window %d", filepath.Base(p), e.Window.Index)
			}
		}
	}
}

func TestQueryReaggregation(t *testing.T) {
	dir := t.TempDir()
	windows := makeWindows(t, 16, 9)
	db := openTestDB(t, dir, func(c *Config) { c.Downsample = 1 })
	defer db.Close()
	for _, w := range windows {
		db.Append(w)
	}
	points, err := db.Query("estimate", 0, 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for i, p := range points {
		if p.Index != int64(i*4) || p.Span != 4 || p.Windows != 4 {
			t.Fatalf("point %d = {index %d span %d windows %d}, want {%d 4 4}", i, p.Index, p.Span, p.Windows, i*4)
		}
		// Re-aggregation equals merging the same raw aggregates.
		var want obs.Aggregate
		for _, w := range windows[i*4 : i*4+4] {
			want = obs.MergeAggregates(want, w.Series["estimate"], db.Quantiles())
		}
		if p.Count != want.Count || p.Sum != want.Sum || p.Min != want.Min || p.Max != want.Max || p.Last != want.Last {
			t.Fatalf("point %d aggregate mismatch: got %+v", i, p)
		}
		if got, exp := canonical(t, p.Quantiles), canonical(t, want.Quantiles); got != exp {
			t.Fatalf("point %d quantiles: got %s, want %s", i, got, exp)
		}
	}
	// Range at step=1 returns the raw windows unchanged apart from the
	// deep copy through the merge identity.
	ws, spans, err := db.Range(4, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 || len(spans) != 4 {
		t.Fatalf("Range returned %d windows, want 4", len(ws))
	}
	for i, w := range ws {
		if spans[i] != 1 {
			t.Fatalf("span[%d] = %d, want 1", i, spans[i])
		}
		if got, exp := canonical(t, w.Series), canonical(t, windows[4+i].Series); got != exp {
			t.Fatalf("Range window %d series mismatch", i)
		}
	}
	if _, err := db.Query("estimate", 5, 2, 1); err == nil ||
		!strings.Contains(err.Error(), "empty range") {
		t.Fatalf("inverted range error = %v, want empty range", err)
	}
	if _, err := db.Query("estimate", 0, 5, 0); err == nil {
		t.Fatal("step 0 accepted")
	}
}

func TestRegisterMetricsLints(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir, nil)
	defer db.Close()
	db.Append(makeWindows(t, 1, 10)[0])
	reg := obs.NewRegistry()
	db.RegisterMetrics(reg)
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if errs := obs.Lint(sb.String()); len(errs) != 0 {
		t.Fatalf("ppm_tsdb_* exposition fails lint: %v", errs)
	}
	if !strings.Contains(sb.String(), "ppm_tsdb_appended_windows_total 1") {
		t.Fatalf("exposition missing append count:\n%s", sb.String())
	}
}

func TestOpenReadOnly(t *testing.T) {
	dir := t.TempDir()
	windows := makeWindows(t, 12, 11)
	db := openTestDB(t, dir, func(c *Config) { c.SegmentBytes = 8 << 10; c.Downsample = 1 })
	for _, w := range windows {
		db.Append(w)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// A leftover compaction temp file must survive a read-only open.
	tmp := filepath.Join(dir, "seg-L1-99999999.seg.tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	before, _ := filepath.Glob(filepath.Join(dir, "*"))

	ro, err := OpenReadOnly(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	min, max, ok := ro.Bounds()
	if !ok || min != 0 || max != 11 {
		t.Fatalf("Bounds() = %d, %d, %v; want 0, 11, true", min, max, ok)
	}
	if got := len(ro.Entries(0, 11)); got != 12 {
		t.Fatalf("Entries = %d records, want 12", got)
	}
	ro.Append(windows[0]) // dropped: the store is a pure reader
	if got := ro.Appended(); got != 0 {
		t.Fatalf("read-only Append persisted %d windows", got)
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(after) != len(before) {
		t.Fatalf("read-only open changed the directory: %d files -> %d", len(before), len(after))
	}
}
