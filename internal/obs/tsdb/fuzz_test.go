package tsdb

import (
	"bytes"
	"testing"

	"blackboxval/internal/obs"
)

// FuzzSegmentDecode drives the segment decoder with arbitrary bytes —
// the read path every Open runs over files a crashed process may have
// torn anywhere. The decoder must never panic, must only surface
// entries that satisfy the record invariants, and must keep the valid
// prefix of a good segment that gained a corrupt tail.
func FuzzSegmentDecode(f *testing.F) {
	windows := seedWindows(f, 3)
	var seg bytes.Buffer
	seg.WriteString(segmentMagic)
	for _, w := range windows {
		rec, err := encodeRecord(Entry{Span: 1, Windows: 1, Window: w})
		if err != nil {
			f.Fatal(err)
		}
		seg.Write(rec)
	}
	valid := seg.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-7])             // torn tail
	f.Add([]byte(segmentMagic))             // empty segment
	f.Add([]byte("PPMTSDB1\x00\x00\x00"))   // short frame
	f.Add([]byte("not a segment at all"))   // garbage header
	f.Add(append([]byte{}, valid[4:]...))   // mis-aligned magic
	f.Add(bytes.Repeat([]byte{0xff}, 4096)) // saturated lengths

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, _ := decodeSegment(data)
		for i, e := range entries {
			if e.Span <= 0 || e.Windows <= 0 || e.Window.Index < 0 {
				t.Fatalf("entry %d violates record invariants: %+v", i, e)
			}
		}
		// Whatever survives a decode must re-encode into a segment that
		// decodes cleanly to the same entries — the stability contract
		// compaction relies on when it rewrites records it read back.
		if len(entries) > 0 {
			var re bytes.Buffer
			re.WriteString(segmentMagic)
			for _, e := range entries {
				rec, err := encodeRecord(e)
				if err != nil {
					t.Fatalf("re-encoding decoded entry: %v", err)
				}
				re.Write(rec)
			}
			again, reTruncated := decodeSegment(re.Bytes())
			if reTruncated {
				t.Fatal("re-encoded segment decodes as truncated")
			}
			if len(again) != len(entries) {
				t.Fatalf("re-encoded segment decodes to %d entries, want %d", len(again), len(entries))
			}
		}
	})
}

// seedWindows closes n real timeline windows for fuzz seeding
// (makeWindows wants a *testing.T, which testing.F cannot supply).
func seedWindows(f *testing.F, n int) []obs.Window {
	f.Helper()
	ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{Capacity: n + 1})
	if err != nil {
		f.Fatal(err)
	}
	var out []obs.Window
	ts.OnWindowClose(func(w obs.Window) { out = append(out, w) })
	for i := 0; i < n; i++ {
		ts.Record("estimate", 0.5+0.1*float64(i))
		ts.Record("alarm", float64(i%2))
		ts.Commit()
	}
	return out
}
