package tsdb

// The compaction associativity contract (DESIGN.md §17): the persisted,
// downsampled history is a pure function of the appended window
// multiset — when compaction ran, how many passes it took, and how the
// raw windows were cut into segments must all be unobservable in the
// data. The suite drives identical window streams through eager, lazy
// and seeded-random compaction schedules and asserts the effective
// records and query outputs are bit-equal in canonical JSON.

import (
	"math/rand"
	"testing"

	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
)

// effectiveState renders everything a reader can observe: the shadow-
// resolved records and a few re-aggregated queries over them.
func effectiveState(t *testing.T, db *DB) string {
	t.Helper()
	min, max, ok := db.Bounds()
	if !ok {
		return "empty"
	}
	entries := db.Entries(min, max)
	q1, err := db.Query("estimate", min, max, 1)
	if err != nil {
		t.Fatal(err)
	}
	q8, err := db.Query("ks_max", min, max, 8)
	if err != nil {
		t.Fatal(err)
	}
	ws, spans, err := db.Range(min, max, 4)
	if err != nil {
		t.Fatal(err)
	}
	return canonical(t, map[string]any{
		"entries": entries, "q1": q1, "q8": q8, "range": ws, "spans": spans,
	})
}

func TestCompactionDeterminism(t *testing.T) {
	windows := makeWindows(t, 96, 42)
	const k, guard = 8, 8

	// Eager: tiny segments, compaction on every rotation plus an
	// explicit pass after every append.
	eager := openTestDB(t, t.TempDir(), func(c *Config) {
		c.SegmentBytes = 4 << 10
		c.Downsample = k
		c.CompactAfter = guard
	})
	for _, w := range windows {
		eager.Append(w)
		eager.Compact()
	}

	// Lazy: huge segments, nothing compacts until one final pass after
	// a restart seals the lone segment.
	lazyDir := t.TempDir()
	lazy := openTestDB(t, lazyDir, func(c *Config) {
		c.Downsample = k
		c.CompactAfter = guard
	})
	for _, w := range windows {
		lazy.Append(w)
	}
	if lazy.compactions.Load() != 0 {
		t.Fatal("lazy schedule compacted early; the comparison would be vacuous")
	}
	if err := lazy.Close(); err != nil {
		t.Fatal(err)
	}
	lazy = openTestDB(t, lazyDir, func(c *Config) {
		c.Downsample = k
		c.CompactAfter = guard
	})
	lazy.Compact()

	// Randomized: seeded-random segment size and compaction points,
	// with a restart in the middle.
	rng := rand.New(rand.NewSource(7))
	randDir := t.TempDir()
	open := func() *DB {
		return openTestDB(t, randDir, func(c *Config) {
			c.SegmentBytes = int64(2<<10 + rng.Intn(16<<10))
			c.Downsample = k
			c.CompactAfter = guard
		})
	}
	randomized := open()
	for i, w := range windows {
		randomized.Append(w)
		if rng.Intn(5) == 0 {
			randomized.Compact()
		}
		if i == 48 {
			if err := randomized.Close(); err != nil {
				t.Fatal(err)
			}
			randomized = open()
		}
	}
	randomized.Compact()

	want := effectiveState(t, eager)
	if eager.compactions.Load() == 0 {
		t.Fatal("eager schedule never compacted; the comparison would be vacuous")
	}
	for name, db := range map[string]*DB{"lazy": lazy, "randomized": randomized} {
		if got := effectiveState(t, db); got != want {
			t.Errorf("%s schedule diverged from eager:\n got %.400s\nwant %.400s", name, got, want)
		}
		db.Close()
	}
	eager.Close()
}

// A range query at step=K over raw history must equal the compacted
// bucket bit-for-bit — compaction is re-aggregation, persisted.
func TestCompactionEqualsStepQuery(t *testing.T) {
	windows := makeWindows(t, 40, 43)
	raw := openTestDB(t, t.TempDir(), func(c *Config) { c.Downsample = 1 })
	defer raw.Close()
	compacted := openTestDB(t, t.TempDir(), func(c *Config) {
		c.SegmentBytes = 4 << 10
		c.Downsample = 8
		c.CompactAfter = 8
	})
	defer compacted.Close()
	for _, w := range windows {
		raw.Append(w)
		compacted.Append(w)
	}
	compacted.Compact()
	if compacted.compactions.Load() == 0 {
		t.Fatal("nothing compacted")
	}
	rawQ, err := raw.Query("estimate", 0, 23, 8)
	if err != nil {
		t.Fatal(err)
	}
	compQ, err := compacted.Query("estimate", 0, 23, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(t, compQ), canonical(t, rawQ); got != want {
		t.Fatalf("compacted step-8 query != raw step-8 query:\n got %s\nwant %s", got, want)
	}
}

// Backtest parity: replaying persisted windows through a fresh stock
// alert engine reproduces the live event sequence bit-for-bit.
func TestBacktestReproducesLiveAlerts(t *testing.T) {
	rules := []alert.Rule{{
		Name: "estimate_low", Series: "estimate", Op: "<", Threshold: 0.82,
		Reduce: "mean", ForWindows: 2, ClearWindows: 2, Severity: "critical",
	}}
	var liveEvents []alert.Event
	live, err := alert.New(alert.Config{
		Rules:    rules,
		Notifier: alert.NotifierFunc(func(ev alert.Event) { liveEvents = append(liveEvents, ev) }),
	})
	if err != nil {
		t.Fatal(err)
	}

	db := openTestDB(t, t.TempDir(), func(c *Config) {
		c.SegmentBytes = 8 << 10
		c.Downsample = 1 // full resolution: bit-exact replay
	})
	defer db.Close()
	for _, w := range makeWindows(t, 64, 44) {
		live.Evaluate(w) // what production did
		db.Append(w)     // what the store persisted
	}
	if len(liveEvents) == 0 {
		t.Fatal("workload produced no live alert events; test is vacuous")
	}

	replayed, err := db.Replay(rules, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(t, replayed), canonical(t, liveEvents); got != want {
		t.Fatalf("replayed events != live events:\n got %s\nwant %s", got, want)
	}
}

func TestSweepCountsExcursions(t *testing.T) {
	db := openTestDB(t, t.TempDir(), func(c *Config) { c.Downsample = 1 })
	defer db.Close()
	// Deterministic sawtooth on "alarm": windows 10-19 and 40-44 sit at
	// 1, everything else at 0.
	ts, err := obs.NewTimeSeries(obs.TimeSeriesConfig{Capacity: 80})
	if err != nil {
		t.Fatal(err)
	}
	ts.OnWindowClose(db.Append)
	for i := 0; i < 60; i++ {
		v := 0.0
		if (i >= 10 && i < 20) || (i >= 40 && i < 45) {
			v = 1
		}
		ts.Record("alarm", v)
		ts.Commit()
	}
	base := alert.Rule{Name: "alarm_on", Series: "alarm", Op: ">=", Reduce: "max"}
	rows, err := db.Sweep(base, []float64{0.5, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Firings != 2 {
		t.Fatalf("threshold 0.5: %d firings, want 2", rows[0].Firings)
	}
	// Excursions run from the firing edge (windows 10 and 40) to the
	// resolved edge one clear window after each plateau (20 and 45).
	if rows[0].FiringWindows != (20-10)+(45-40) || rows[0].Longest != 10 {
		t.Fatalf("threshold 0.5: firing_windows=%d longest=%d, want 15/10",
			rows[0].FiringWindows, rows[0].Longest)
	}
	if rows[1].Firings != 0 || rows[1].FiringWindows != 0 {
		t.Fatalf("threshold 2 should never fire: %+v", rows[1])
	}
}
