package tsdb

// query.go: the read path. Queries re-read segment files on demand —
// this is the audit/diagnostic path, so the store keeps no decoded
// window cache; the page cache makes repeated scans of warm segments
// cheap. Re-aggregation to a caller-chosen step reuses the same
// mergeable-statistics rules as compaction (sums via ExactSum merge,
// quantiles read off merged sketches, never averaged point estimates),
// so a range query at step=K over raw history equals the compacted
// record for the same bucket bit-for-bit.

import (
	"fmt"
	"os"
	"sort"

	"blackboxval/internal/obs"
)

// Point is one re-aggregated bucket of a per-series range query.
type Point struct {
	// Index is the bucket start in window-index space; the bucket
	// conceptually covers [Index, Index+step).
	Index int64 `json:"index"`
	// Span is how many raw window indices the merged records cover
	// (gaps make Span < step).
	Span int64 `json:"span"`
	// Windows is how many raw windows were folded into the bucket.
	Windows int64   `json:"windows"`
	Count   int     `json:"count"`
	Sum     float64 `json:"sum"`
	Mean    float64 `json:"mean"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Last    float64 `json:"last"`
	// Quantiles are read off the merged persisted sketch ("p50", ...).
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// loadEntriesLocked reads every effective record overlapping the index
// range [from, to], sorted by window index. Level-0 records below the
// compactedThrough watermark are shadowed duplicates of a level-1
// bucket and are skipped. rawOnly restricts the scan to raw (span 1,
// level 0) records — the compaction input. The active segment is
// included: its records were complete single writes, so the page cache
// serves them back consistently.
func (db *DB) loadEntriesLocked(from, to int64, rawOnly bool) []Entry {
	if to < from {
		return nil
	}
	infos := make([]*segmentInfo, 0, len(db.segments)+1)
	infos = append(infos, db.segments...)
	if db.actInfo != nil && db.actInfo.records > 0 {
		infos = append(infos, db.actInfo)
	}
	var out []Entry
	for _, info := range infos {
		if info.records == 0 || info.minIndex > to || info.endIndex <= from {
			continue
		}
		if rawOnly && info.level != 0 {
			continue
		}
		data, err := os.ReadFile(info.path)
		if err != nil {
			db.cfg.Logger.Warn("tsdb: segment read failed", "path", info.path, "err", err)
			continue
		}
		entries, _ := decodeSegment(data)
		for _, e := range entries {
			if e.Window.Index > to || e.end() <= from {
				continue
			}
			if info.level == 0 && e.Window.Index < db.compactedThrough {
				continue // shadowed by a compacted bucket
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Window.Index < out[j].Window.Index })
	return out
}

// Entries returns the effective persisted records overlapping [from,
// to] in index order — raw windows where full resolution survives,
// compacted buckets where it does not. This is the backtest input.
func (db *DB) Entries(from, to int64) []Entry {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.queries.Add(1)
	return db.loadEntriesLocked(from, to, false)
}

// Bounds reports the lowest and highest window index with persisted
// data, or ok=false for an empty store.
func (db *DB) Bounds() (min, max int64, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	infos := make([]*segmentInfo, 0, len(db.segments)+1)
	infos = append(infos, db.segments...)
	if db.actInfo != nil {
		infos = append(infos, db.actInfo)
	}
	for _, info := range infos {
		if info.records == 0 {
			continue
		}
		if !ok || info.minIndex < min {
			min = info.minIndex
		}
		if info.endIndex-1 > max {
			max = info.endIndex - 1
		}
		ok = true
	}
	return min, max, ok
}

// bucketStart maps an entry to its query bucket.
func bucketStart(idx, from, step int64) int64 {
	if idx < from {
		idx = from
	}
	return from + ((idx-from)/step)*step
}

// Range merges the persisted records overlapping [from, to] into one
// window per step-sized bucket and returns the windows with their
// covered spans (sum of merged record spans — the dashboard uses it to
// render gaps). step must be >= 1 and to >= from.
func (db *DB) Range(from, to, step int64) ([]obs.Window, []int64, error) {
	if err := checkRange(from, to, step); err != nil {
		return nil, nil, err
	}
	entries := db.Entries(from, to)
	var windows []obs.Window
	var spans []int64
	for i := 0; i < len(entries); {
		b := bucketStart(entries[i].Window.Index, from, step)
		j := i
		var ws []obs.Window
		var span int64
		for ; j < len(entries) && bucketStart(entries[j].Window.Index, from, step) == b; j++ {
			ws = append(ws, entries[j].Window)
			span += entries[j].Span
		}
		merged, _ := obs.MergeWindowSet(ws, db.cfg.Quantiles)
		merged.Index = b
		windows = append(windows, merged)
		spans = append(spans, span)
		i = j
	}
	return windows, spans, nil
}

// Query re-aggregates one series over [from, to] at the given step,
// with quantiles extracted from the merged persisted sketches.
func (db *DB) Query(series string, from, to, step int64) ([]Point, error) {
	if err := checkRange(from, to, step); err != nil {
		return nil, err
	}
	entries := db.Entries(from, to)
	var points []Point
	for i := 0; i < len(entries); {
		b := bucketStart(entries[i].Window.Index, from, step)
		j := i
		agg := obs.Aggregate{}
		p := Point{Index: b}
		for ; j < len(entries) && bucketStart(entries[j].Window.Index, from, step) == b; j++ {
			e := entries[j]
			if sa, ok := e.Window.Series[series]; ok {
				agg = obs.MergeAggregates(agg, sa, db.cfg.Quantiles)
				p.Span += e.Span
				p.Windows += e.Windows
			}
		}
		i = j
		if p.Windows == 0 {
			continue
		}
		p.Count = agg.Count
		p.Sum = agg.Sum
		p.Mean = agg.Mean()
		p.Min = agg.Min
		p.Max = agg.Max
		p.Last = agg.Last
		p.Quantiles = agg.Quantiles
		points = append(points, p)
	}
	return points, nil
}

func checkRange(from, to, step int64) error {
	if from < 0 || to < 0 {
		return fmt.Errorf("tsdb: negative range [%d, %d]", from, to)
	}
	if to < from {
		return fmt.Errorf("tsdb: empty range [%d, %d]", from, to)
	}
	if step < 1 {
		return fmt.Errorf("tsdb: step %d < 1", step)
	}
	return nil
}
