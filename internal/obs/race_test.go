package obs

// Race-detector coverage for the shared Registry and the span tree:
// concurrent Inc/Add/Set/Observe against concurrent renders, and
// concurrent span creation/End against tracer export. Run via the
// Makefile race gate (`go test -short -race ./internal/obs/...`).

import (
	"context"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestRegistryConcurrentWritesAndRenders(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_ops_total", "Ops.")
	cv := r.CounterVec("race_outcomes_total", "Outcomes.", "outcome")
	g := r.Gauge("race_depth", "Depth.")
	h := r.HistogramVec("race_duration_seconds", "Latency.", []float64{0.01, 0.1, 1}, "op")

	const writers = 8
	const perWriter = 500
	var writeWG, renderWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			outcome := []string{"ok", "error"}[w%2]
			for i := 0; i < perWriter; i++ {
				c.Inc()
				cv.Add(1, outcome)
				g.Set(float64(i))
				h.Observe(float64(i%100)/100, "op")
			}
		}(w)
	}

	// Renders interleave with the writers; every snapshot must be
	// internally consistent (Lint enforces histogram cumulativity).
	done := make(chan struct{})
	errCh := make(chan error, 4)
	for s := 0; s < 4; s++ {
		renderWG.Add(1)
		go func() {
			defer renderWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var b strings.Builder
				if _, err := r.WriteTo(&b); err != nil {
					errCh <- err
					return
				}
				if errs := Lint(b.String()); len(errs) > 0 {
					errCh <- errs[0]
					return
				}
			}
		}()
	}

	writeWG.Wait()
	close(done)
	renderWG.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("concurrent render produced non-conformant exposition: %v", err)
	default:
	}

	if got := c.Get(); got != writers*perWriter {
		t.Fatalf("counter = %v, want %v", got, writers*perWriter)
	}
	if got := cv.Get("ok") + cv.Get("error"); got != writers*perWriter {
		t.Fatalf("vec total = %v, want %v", got, writers*perWriter)
	}
	if got := h.Count("op"); got != uint64(writers*perWriter) {
		t.Fatalf("histogram count = %v, want %v", got, writers*perWriter)
	}
}

func TestSpanTreeConcurrent(t *testing.T) {
	tr := NewTracer(16)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "parallel_stage")

	var wg sync.WaitGroup
	// Workers attach children concurrently (mirrors runJobs attaching
	// per-wave spans) while exporters walk the tree.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, s := StartSpan(ctx, "job")
				s.SetMetric("idx", float64(i))
				s.End()
			}
		}()
	}
	for e := 0; e < 4; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := tr.JSON(); err != nil {
					t.Error(err)
					return
				}
				root.Report(io.Discard)
				root.Children()
				root.Duration()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 8*200 {
		t.Fatalf("children = %d, want %d", got, 8*200)
	}
}
