package obs

import (
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_done_total", "Finished jobs.")
	c.Inc()
	c.Add(2)
	if got := c.Get(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}

	cv := r.CounterVec("requests_total", "Requests by outcome and method.", "outcome", "method")
	cv.Add(2, "ok", "GET")
	cv.Inc("error", "POST")
	if got := cv.Get("ok", "GET"); got != 2 {
		t.Fatalf("vec get = %v, want 2", got)
	}
	if got := cv.Get("never", "seen"); got != 0 {
		t.Fatalf("unseen series = %v, want 0", got)
	}

	text := render(t, r)
	for _, want := range []string{
		"# HELP jobs_done_total Finished jobs.",
		"# TYPE jobs_done_total counter",
		"jobs_done_total 3",
		`requests_total{method="GET",outcome="ok"} 2`,
		`requests_total{method="POST",outcome="error"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestGaugeAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth", "Queue depth.")
	g.Set(4)
	g.Add(-1)
	if got := g.Get(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	v := 7.5
	r.GaugeFunc("live_value", "Callback gauge.", func() float64 { return v })
	text := render(t, r)
	if !strings.Contains(text, "queue_depth 3\n") || !strings.Contains(text, "live_value 7.5\n") {
		t.Fatalf("exposition:\n%s", text)
	}
	v = 9
	if !strings.Contains(render(t, r), "live_value 9\n") {
		t.Fatal("gauge func not re-evaluated at render")
	}
}

func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("op_duration_seconds", "Op latency.", []float64{0.01, 0.1, 1}, "op")
	h.Observe(0.005, "read")
	h.Observe(0.05, "read")
	h.Observe(50, "read") // beyond last bound: only +Inf
	if got := h.Count("read"); got != 3 {
		t.Fatalf("count = %v, want 3", got)
	}

	text := render(t, r)
	for _, want := range []string{
		`op_duration_seconds_bucket{le="0.01",op="read"} 1`,
		`op_duration_seconds_bucket{le="0.1",op="read"} 2`,
		`op_duration_seconds_bucket{le="1",op="read"} 2`,
		`op_duration_seconds_bucket{le="+Inf",op="read"} 3`,
		`op_duration_seconds_count{op="read"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if errs := Lint(text); len(errs) > 0 {
		t.Fatalf("lint errors: %v", errs)
	}
}

func TestGetOrCreateAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "Help.")
	b := r.Counter("x_total", "Help.")
	if a != b {
		t.Fatal("re-registering an identical family must return the same instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting registration must panic")
		}
	}()
	r.Gauge("x_total", "Help.")
}

func TestRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("z_total", "Z.", "k")
	for _, k := range []string{"b", "a", "c", "aa"} {
		cv.Inc(k)
	}
	r.Gauge("a_gauge", "A.")
	first := render(t, r)
	for i := 0; i < 5; i++ {
		if render(t, r) != first {
			t.Fatal("rendering is not deterministic")
		}
	}
	// Families sorted by name: a_gauge before z_total.
	if strings.Index(first, "a_gauge") > strings.Index(first, "z_total") {
		t.Fatalf("families not sorted:\n%s", first)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("esc_total", "Escapes.", "v")
	cv.Inc(`quote " backslash \ newline` + "\n")
	text := render(t, r)
	if errs := Lint(text); len(errs) > 0 {
		t.Fatalf("lint rejects escaped label value: %v\n%s", errs, text)
	}
	if !strings.Contains(text, `\"`) || !strings.Contains(text, `\\`) || !strings.Contains(text, `\n`) {
		t.Fatalf("label value not escaped:\n%s", text)
	}
}
