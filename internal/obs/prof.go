package obs

// prof.go: alert-triggered profile capture. A Profiler takes bounded
// CPU and heap pprof snapshots on demand — typically from an incident
// capture fired by a burn-rate alert — so the bundle records not just
// THAT serving was slow but WHAT the process was doing while it was.
// CPU capture costs its configured duration of wall time (the sampler
// runs concurrently; the caller blocks, serving does not), so captures
// are rate-limited by a cooldown and refused while another capture or
// an external pprof session holds the CPU profiler.

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"
)

// Profiles is one captured profile pair. The profile bytes are gzipped
// pprof protos, exactly what `go tool pprof` reads; inside JSON they
// marshal as base64.
type Profiles struct {
	CapturedAt time.Time `json:"captured_at"`
	// CPUSeconds is the CPU profile's sampling duration.
	CPUSeconds float64 `json:"cpu_seconds"`
	CPU        []byte  `json:"cpu,omitempty"`
	Heap       []byte  `json:"heap,omitempty"`
}

// ProfilerConfig tunes a Profiler. The zero value is usable.
type ProfilerConfig struct {
	// CPUDuration is how long the CPU profiler samples per capture
	// (default 250ms). The capturing goroutine blocks for this long.
	CPUDuration time.Duration
	// Cooldown is the minimum spacing between captures (default 30s), so
	// a flapping alert cannot keep the CPU profiler permanently on.
	Cooldown time.Duration
}

// Profiler captures bounded CPU+heap profile pairs with a cooldown.
// Safe for concurrent use; concurrent captures are refused, not queued.
type Profiler struct {
	cpuDuration time.Duration
	cooldown    time.Duration

	mu   sync.Mutex
	busy bool
	last time.Time
	now  func() time.Time // test seam
}

// NewProfiler returns a ready Profiler.
func NewProfiler(cfg ProfilerConfig) *Profiler {
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 250 * time.Millisecond
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 30 * time.Second
	}
	return &Profiler{cpuDuration: cfg.CPUDuration, cooldown: cfg.Cooldown, now: time.Now}
}

// Capture takes one CPU+heap profile pair. It returns an error when a
// capture is already running, the cooldown has not elapsed, or the CPU
// profiler is held by someone else (e.g. a live /debug/pprof/profile
// request) — in which case it degrades to a heap-only capture rather
// than failing outright.
func (p *Profiler) Capture() (*Profiles, error) {
	p.mu.Lock()
	now := p.now()
	if p.busy {
		p.mu.Unlock()
		return nil, fmt.Errorf("obs: profile capture already in progress")
	}
	if !p.last.IsZero() && now.Sub(p.last) < p.cooldown {
		p.mu.Unlock()
		return nil, fmt.Errorf("obs: profile capture in cooldown (%s remaining)",
			(p.cooldown - now.Sub(p.last)).Round(time.Millisecond))
	}
	p.busy = true
	p.last = now
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.busy = false
		p.mu.Unlock()
	}()

	out := &Profiles{CapturedAt: now.UTC()}
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err == nil {
		time.Sleep(p.cpuDuration)
		pprof.StopCPUProfile()
		out.CPU = cpu.Bytes()
		out.CPUSeconds = p.cpuDuration.Seconds()
	}
	var heap bytes.Buffer
	if prof := pprof.Lookup("heap"); prof != nil {
		if err := prof.WriteTo(&heap, 0); err == nil {
			out.Heap = heap.Bytes()
		}
	}
	if out.CPU == nil && out.Heap == nil {
		return nil, fmt.Errorf("obs: profile capture produced nothing (CPU profiler busy, heap lookup failed)")
	}
	return out, nil
}
