package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMountSurface(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mounted_total", "Mounted.").Inc()
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "mounted_span")
	s.End()

	mux := http.NewServeMux()
	Mount(mux, reg, tr)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ContentType {
		t.Fatalf("content type = %q, want %q", got, ContentType)
	}
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mounted_total 1") {
		t.Fatalf("exposition:\n%s", b.String())
	}

	resp, err = http.Get(srv.URL + "/debug/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/spans = %d", resp.StatusCode)
	}
	var spans []SpanJSON
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "mounted_span" {
		t.Fatalf("spans = %+v", spans)
	}

	// pprof index must answer (the profile endpoints are slow; the
	// index proves the mount).
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ = %d", resp.StatusCode)
	}
}

func TestMetricsMethodGuard(t *testing.T) {
	reg := NewRegistry()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	NewTracer(1).Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/spans", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /debug/spans = %d, want 405", rec.Code)
	}
}

func TestMiddlewareAccounting(t *testing.T) {
	reg := NewRegistry()
	h := Middleware(reg, "api", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("ok"))
	}))
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/missing", nil))

	if got := reg.CounterVec("http_requests_total", "HTTP requests by handler and status code.", "handler", "code").Get("api", "200"); got != 3 {
		t.Fatalf("200 count = %v, want 3", got)
	}
	if got := reg.CounterVec("http_requests_total", "HTTP requests by handler and status code.", "handler", "code").Get("api", "404"); got != 1 {
		t.Fatalf("404 count = %v, want 1", got)
	}
	hist := reg.HistogramVec("http_request_duration_seconds", "HTTP request latency by handler.", DurationBuckets, "handler")
	if got := hist.Count("api"); got != 4 {
		t.Fatalf("latency observations = %v, want 4", got)
	}
	text := render(t, reg)
	if errs := Lint(text); len(errs) > 0 {
		t.Fatalf("middleware exposition not conformant: %v\n%s", errs, text)
	}
}
