package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func journalSpan(trace, span, parent, name string) SpanJSON {
	return SpanJSON{
		Name: name, TraceID: trace, SpanID: span, ParentSpanID: parent,
		Start: time.Unix(1700000000, 0).UTC(), Seconds: 0.001,
	}
}

func TestJournalAppendRotateReload(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation quickly; 2 retained files bound the
	// disk no matter how many spans are appended.
	j, err := OpenJournal(dir, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		j.Append(journalSpan("aa01", fmt.Sprintf("%016x", i+1), "", "s"))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "spans-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 || len(files) > 2 {
		t.Fatalf("retained %d segments, want 1..2", len(files))
	}
	spans, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 || len(spans) >= 50 {
		t.Fatalf("reload kept %d spans; rotation should have dropped the head but kept the tail", len(spans))
	}
	// Reopen resumes the newest segment instead of clobbering it (the
	// roomier bound keeps this append from rotating anything out).
	j2, err := OpenJournal(dir, 1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	j2.Append(journalSpan("bb02", fmt.Sprintf("%016x", 99), "", "late"))
	j2.Close()
	after, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(spans)+1 {
		t.Fatalf("resume lost spans: %d before, %d after", len(spans), len(after))
	}
	found := false
	for _, s := range after {
		if s.TraceID == "bb02" {
			found = true
		}
	}
	if !found {
		t.Fatal("resumed journal lost the appended span")
	}
}

func TestJournalSkipsCorruptLines(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalSpan("aa01", "0000000000000001", "", "good"))
	j.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "spans-*.jsonl"))
	f, err := os.OpenFile(files[0], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{torn write\n")
	f.WriteString(`{"name":"also-good","trace_id":"aa01","span_id":"0000000000000002"}` + "\n")
	f.Close()
	spans, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (corrupt line skipped)", len(spans))
	}
}

// TestJournalConcurrentAppendAndRead drives sampled spans through a
// tracer while /debug/traces is read concurrently — the -race suite's
// guard for the journal's append path vs the stitch read path.
func TestJournalConcurrentAppendAndRead(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 1<<16, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	tr := NewTracer(16)
	tr.SetJournal(j)
	h := tr.TraceHandler("test")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tc := DeriveTraceContext(uint64(w), uint64(i), 1)
				ctx := ContextWithTrace(WithTracer(context.Background(), tr), tc)
				ctx, root := StartSpan(ctx, "root")
				_, child := StartSpan(ctx, "child")
				child.End()
				root.End()
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
				var listing struct {
					TraceIDs []string `json:"trace_ids"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
					t.Errorf("listing decode: %v", err)
					return
				}
				for _, id := range listing.TraceIDs {
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+id, nil))
					if rec.Code != 200 && rec.Code != 404 {
						t.Errorf("trace fetch returned %d", rec.Code)
						return
					}
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if j.Appended() == 0 {
		t.Fatal("no spans reached the journal")
	}
}

// TestTraceMetricsLint registers the live trace families over two
// tracers sharing one journal: the render must pass the exposition
// linter and the shared journal must be counted once, not per tracer.
func TestTraceMetricsLint(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	a, b := NewTracer(4), NewTracer(4)
	a.SetJournal(j)
	b.SetJournal(j)
	for i, tr := range []*Tracer{a, b} {
		tc := DeriveTraceContext(9, uint64(i), 1)
		_, s := StartSpan(ContextWithTrace(WithTracer(context.Background(), tr), tc), "root")
		s.End()
	}
	reg := NewRegistry()
	RegisterTraceMetrics(reg, a, b)
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if errs := Lint(sb.String()); len(errs) != 0 {
		t.Fatalf("trace families fail lint: %v", errs)
	}
	if !strings.Contains(sb.String(), "ppm_trace_sampled_total 2") {
		t.Fatalf("expected 2 sampled roots:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "ppm_trace_journal_spans_total 2") {
		t.Fatalf("shared journal double-counted:\n%s", sb.String())
	}
}

// TestDebugSpansHygiene pins the /debug/spans contract: JSON content
// type, no-store caching, and a validated ?limit= parameter.
func TestDebugSpansHygiene(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		_, s := StartSpan(WithTracer(context.Background(), tr), fmt.Sprintf("span-%d", i))
		s.End()
	}
	h := tr.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("Cache-Control"); got != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", got)
	}
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "application/json") {
		t.Fatalf("Content-Type = %q, want application/json", got)
	}
	var all []json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &all); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(all) != 3 {
		t.Fatalf("got %d traces, want 3", len(all))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans?limit=1", nil))
	var limited []json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &limited); err != nil {
		t.Fatalf("decode limited: %v", err)
	}
	if len(limited) != 1 {
		t.Fatalf("limit=1 returned %d traces", len(limited))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans?limit=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bogus limit: status %d, want 400", rec.Code)
	}
}
