package obs

// W3C Trace Context for the serving fleet: a hand-rolled, dependency
// free implementation of the `traceparent` header (version 00) plus
// the deterministic head sampler that decides — as a pure function of
// the trace-id bits and the configured rate — whether a trace is kept.
// Because the decision depends on nothing but the id, every process in
// the fleet reaches the same verdict independently, and a replayed
// workload (ppm-traffic derives trace ids from its seed) yields a
// bit-identical sampled set across runs and worker counts, honoring
// the determinism contract of DESIGN.md §8.

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// TraceparentHeader is the W3C Trace Context request header carrying
// trace-id, parent span-id and the sampled flag across process
// boundaries. It rides next to X-Request-ID: the request id names the
// request, the trace id names its causal tree.
const TraceparentHeader = "traceparent"

// FlagSampled is the trace-flags bit marking a sampled trace.
const FlagSampled byte = 0x01

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is the 8-byte W3C span (parent) identifier.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hexEncode(t[:]) }

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hexEncode(s[:]) }

// TraceContext is one parsed traceparent: the trace the request
// belongs to, the caller's span, and the trace flags.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Valid reports whether both ids are non-zero (the W3C invariant).
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() && !tc.SpanID.IsZero() }

// Sampled reports whether the sampled flag bit is set.
func (tc TraceContext) Sampled() bool { return tc.Flags&FlagSampled != 0 }

// Traceparent renders the context as a version-00 traceparent value:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
func (tc TraceContext) Traceparent() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = appendHex(buf, tc.TraceID[:])
	buf = append(buf, '-')
	buf = appendHex(buf, tc.SpanID[:])
	buf = append(buf, '-')
	buf = appendHex(buf, []byte{tc.Flags})
	return string(buf)
}

var (
	errTraceparentLength  = errors.New("traceparent: malformed length")
	errTraceparentVersion = errors.New("traceparent: invalid version")
	errTraceparentHex     = errors.New("traceparent: non-lowercase-hex field")
	errTraceparentDelim   = errors.New("traceparent: missing field delimiter")
	errTraceparentZeroID  = errors.New("traceparent: all-zero trace-id or parent-id")
)

// ParseTraceparent parses a traceparent header value. It is strict for
// version 00 (exactly 55 lowercase-hex-and-dash characters) and
// forward-compatible for higher versions (trailing fields after the
// 00-shaped prefix are ignored, per the W3C spec). The all-zero
// trace-id and parent-id are rejected, as is version ff.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) < 55 {
		return tc, errTraceparentLength
	}
	ver, ok := hexByte(s[0], s[1])
	if !ok {
		return tc, errTraceparentHex
	}
	if ver == 0xff {
		return tc, errTraceparentVersion
	}
	if ver == 0 && len(s) != 55 {
		return tc, errTraceparentLength
	}
	if ver != 0 && len(s) > 55 && s[55] != '-' {
		return tc, errTraceparentDelim
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, errTraceparentDelim
	}
	for i := 0; i < 16; i++ {
		b, ok := hexByte(s[3+2*i], s[4+2*i])
		if !ok {
			return tc, errTraceparentHex
		}
		tc.TraceID[i] = b
	}
	for i := 0; i < 8; i++ {
		b, ok := hexByte(s[36+2*i], s[37+2*i])
		if !ok {
			return tc, errTraceparentHex
		}
		tc.SpanID[i] = b
	}
	flags, ok := hexByte(s[53], s[54])
	if !ok {
		return tc, errTraceparentHex
	}
	tc.Flags = flags
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		return tc, errTraceparentZeroID
	}
	return tc, nil
}

// hexByte decodes two lowercase hex characters into one byte. The W3C
// spec requires lowercase; uppercase input is rejected.
func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

const hexDigits = "0123456789abcdef"

func appendHex(dst, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0x0f])
	}
	return dst
}

func hexEncode(src []byte) string {
	return string(appendHex(make([]byte, 0, 2*len(src)), src))
}

// splitmix64 is the finalizing scrambler shared with the parallel
// builder's per-worker seeding (internal/core): a bijective avalanche
// over uint64, so consecutive derived states map to well-spread ids.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SampleTrace is the deterministic head-sampling decision: keep iff
// splitmix64(low 8 bytes of the trace id) falls below rate·2^64. Every
// process computes the same verdict for the same id, so a trace is
// either collected by the whole fleet or by nobody — there are no
// half-sampled waterfalls — and replays reproduce the exact sampled
// set bit-for-bit.
func SampleTrace(id TraceID, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	x := splitmix64(binary.BigEndian.Uint64(id[8:]))
	// rate·2^64 is exact in float64 for the rates that matter; the
	// comparison is pure integer→float math, identical on every host.
	return float64(x) < rate*(1<<64)
}

// DeriveTraceID returns the n-th trace id of the deterministic stream
// keyed by seed — the id ppm-traffic stamps on its n-th request, so a
// replay with the same workload seed produces the same ids and (via
// SampleTrace) the same sampled set. Distinct ids are guaranteed by
// feeding disjoint counter values through the splitmix64 bijection.
func DeriveTraceID(seed, n uint64) TraceID {
	var id TraceID
	base := seed ^ 0xd6e8feb86659fd93
	binary.BigEndian.PutUint64(id[:8], splitmix64(base+2*n))
	binary.BigEndian.PutUint64(id[8:], splitmix64(base+2*n+1))
	if id.IsZero() { // astronomically unlikely; keep the W3C invariant
		id[15] = 1
	}
	return id
}

// DeriveTraceContext builds the full deterministic client context for
// request n: trace id from the seed stream, a synthetic client span id
// derived from the trace id, and the sampled flag from the
// deterministic sampler at rate.
func DeriveTraceContext(seed, n uint64, rate float64) TraceContext {
	tc := TraceContext{TraceID: DeriveTraceID(seed, n)}
	binary.BigEndian.PutUint64(tc.SpanID[:], splitmix64(binary.BigEndian.Uint64(tc.TraceID[:8])^0xa0761d6478bd642f))
	if tc.SpanID.IsZero() {
		tc.SpanID[7] = 1
	}
	if SampleTrace(tc.TraceID, rate) {
		tc.Flags = FlagSampled
	}
	return tc
}

// spanIDBase randomizes per-process span ids so two processes never
// mint the same id inside one trace; the counter keeps them unique
// within the process.
var (
	spanIDBase uint64
	spanIDSeq  atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		spanIDBase = binary.BigEndian.Uint64(b[:])
	} else {
		spanIDBase = 0x9e3779b97f4a7c15 // degraded but functional
	}
}

// newSpanID mints a process-unique span id.
func newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], splitmix64(spanIDBase+spanIDSeq.Add(1)))
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// NewTraceContext mints a fresh root context with a random trace id,
// applying the deterministic sampler at rate. This is what the gateway
// uses for clients that arrive without a traceparent; traced load
// generators use DeriveTraceContext instead. The span id is left zero:
// the first span started under the context becomes the trace root.
func NewTraceContext(rate float64) (TraceContext, error) {
	var tc TraceContext
	if _, err := crand.Read(tc.TraceID[:]); err != nil {
		return tc, fmt.Errorf("minting trace id: %w", err)
	}
	if tc.TraceID.IsZero() {
		tc.TraceID[15] = 1
	}
	if SampleTrace(tc.TraceID, rate) {
		tc.Flags = FlagSampled
	}
	return tc, nil
}

type traceCtxKey struct{}

// ContextWithTrace attaches a trace context to ctx; StartSpan links
// the next span into that trace and outbound helpers (the gateway
// relay, cloud.Client, the /federate scraper) inject it as a
// traceparent header.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the trace context carried by ctx, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
