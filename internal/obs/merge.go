package obs

// merge.go: true cross-shard aggregation for timeline windows. The
// federation layer merges window aggregates from N replicas into one
// fleet view, and every field here is computed from sufficient
// statistics, never from per-shard point estimates — no mean of shard
// means (counts weight the exact sums), no max of shard p99s (the
// mergeable sketches combine first, then the quantile is read off the
// merged distribution). With shards fed round-robin, the merged window
// is bit-identical to the window a single node would have closed over
// the union stream; see DESIGN.md §13 for the contract.

import (
	"sort"
	"time"

	"blackboxval/internal/stats"
)

// cloneAggregate deep-copies a so merged results never alias shard
// payloads (the aggregator mutates merged state across scrape cycles).
func cloneAggregate(a Aggregate) Aggregate {
	out := a
	if a.Quantiles != nil {
		out.Quantiles = make(map[string]float64, len(a.Quantiles))
		for k, v := range a.Quantiles {
			out.Quantiles[k] = v
		}
	}
	if a.SumExact != nil {
		out.SumExact = a.SumExact.Clone()
	}
	if a.Sketch != nil {
		out.Sketch = a.Sketch.Clone()
	}
	return out
}

// MergeAggregates combines two per-series aggregates in stream order (a
// before b). quantiles is the percentile grid, in (0,100), to read off
// the merged sketch. Inputs are not modified.
//
// Merge rules, chosen so that merging shard aggregates reproduces the
// single-node aggregate exactly:
//
//   - Count: integer sum.
//   - Min/Max: exact extremes of the union.
//   - Sum: merged ExactSum rounded once (falls back to adding the
//     rounded shard sums only when a shard predates the exact field).
//   - Last: the later operand's Last (shard order is stream order).
//   - Quantiles: read from the merged sketch — never aggregated from
//     the operands' quantile estimates.
func MergeAggregates(a, b Aggregate, quantiles []float64) Aggregate {
	if a.Count == 0 && b.Count == 0 {
		return cloneAggregate(a)
	}
	if a.Count == 0 {
		return cloneAggregate(b)
	}
	if b.Count == 0 {
		return cloneAggregate(a)
	}
	out := Aggregate{
		Count: a.Count + b.Count,
		Min:   a.Min,
		Max:   a.Max,
		Last:  b.Last,
	}
	if b.Min < out.Min {
		out.Min = b.Min
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	sum := stats.NewExactSum()
	for _, op := range []Aggregate{a, b} {
		if op.SumExact != nil {
			sum.Merge(op.SumExact)
		} else {
			sum.Add(op.Sum)
		}
	}
	out.SumExact = sum
	out.Sum = sum.Value()
	sk := stats.NewKLL()
	degraded := false
	for _, op := range []Aggregate{a, b} {
		if op.Sketch != nil {
			sk.Merge(op.Sketch)
		} else {
			degraded = true
		}
	}
	if sk.Count() > 0 && !degraded {
		out.Sketch = sk
		out.Quantiles = make(map[string]float64, len(quantiles))
		for _, q := range quantiles {
			out.Quantiles[quantileKey(q)] = sk.Quantile(q / 100)
		}
	}
	return out
}

// MergeWindows combines two aligned windows (same logical window index,
// a's shard before b's in stream order). The caller is responsible for
// alignment; the result keeps a's Index. Batches add, the wall-clock
// span is the envelope, and every shared series merges via
// MergeAggregates (series present on one side only are cloned).
func MergeWindows(a, b Window, quantiles []float64) Window {
	out := Window{
		Index:   a.Index,
		Batches: a.Batches + b.Batches,
		Series:  make(map[string]Aggregate, len(a.Series)+len(b.Series)),
	}
	out.Start, out.End = windowSpan(a, b)
	for name, agg := range a.Series {
		if bAgg, ok := b.Series[name]; ok {
			out.Series[name] = MergeAggregates(agg, bAgg, quantiles)
		} else {
			out.Series[name] = cloneAggregate(agg)
		}
	}
	for name, agg := range b.Series {
		if _, ok := a.Series[name]; !ok {
			out.Series[name] = cloneAggregate(agg)
		}
	}
	return out
}

// MergeWindowSet folds aligned windows from N shards (in shard order)
// into one fleet window. It reports false for an empty input.
func MergeWindowSet(ws []Window, quantiles []float64) (Window, bool) {
	if len(ws) == 0 {
		return Window{}, false
	}
	out := MergeWindows(ws[0], Window{Index: ws[0].Index}, quantiles) // deep copy via merge with empty
	for _, w := range ws[1:] {
		out = MergeWindows(out, w, quantiles)
	}
	return out, true
}

// SeriesNames returns the sorted union of series names across windows —
// a deterministic iteration order for renderers and tests.
func SeriesNames(ws []Window) []string {
	seen := map[string]bool{}
	for _, w := range ws {
		for name := range w.Series {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// windowSpan reports the wall-clock envelope of two windows.
func windowSpan(a, b Window) (time.Time, time.Time) {
	start, end := a.Start, a.End
	if !b.Start.IsZero() && (start.IsZero() || b.Start.Before(start)) {
		start = b.Start
	}
	if b.End.After(end) {
		end = b.End
	}
	return start, end
}
