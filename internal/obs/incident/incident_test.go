package incident

import (
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/linalg"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
)

// corruptAge scales the "age" column by 1000 with per-value probability
// magnitude — the targeted single-column drift the attribution must pin.
func corruptAge(ds *data.Dataset, magnitude float64, seed int64) *data.Dataset {
	out := ds.Clone()
	rng := rand.New(rand.NewSource(seed))
	col := out.Frame.Column("age")
	for i, v := range col.Num {
		if rng.Float64() < magnitude {
			col.Num[i] = v * 1000
		}
	}
	return out
}

// skewedProba builds a degenerate proba matrix predicting class 0 for
// every row (argmax histogram fully collapsed).
func skewedProba(rows int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, 2)
	for i := 0; i < rows; i++ {
		m.Set(i, 0, 0.9)
		m.Set(i, 1, 0.1)
	}
	return m
}

// balancedProba alternates the predicted class.
func balancedProba(rows int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, 2)
	for i := 0; i < rows; i++ {
		hi, lo := 0, 1
		if i%2 == 1 {
			hi, lo = 1, 0
		}
		m.Set(i, hi, 0.8)
		m.Set(i, lo, 0.2)
	}
	return m
}

func TestReservoirDeterminism(t *testing.T) {
	feed := func(s *reservoir) {
		for i := int64(0); i < 5; i++ {
			s.offer(datagen.Income(200, 10+i), i)
		}
	}
	a, b := newReservoir(64, 7), newReservoir(64, 7)
	feed(a)
	feed(b)
	da, db := a.dataset(nil), b.dataset(nil)
	if da.Len() != 64 || db.Len() != 64 {
		t.Fatalf("lens = %d, %d, want 64", da.Len(), db.Len())
	}
	ja, _ := json.Marshal(da.Frame.Columns())
	jb, _ := json.Marshal(db.Frame.Columns())
	if string(ja) != string(jb) {
		t.Fatal("same seed + same stream produced different retained sets")
	}

	// A different seed retains a different sample of the same stream.
	c := newReservoir(64, 8)
	feed(c)
	jc, _ := json.Marshal(c.dataset(nil).Frame.Columns())
	if string(jc) == string(ja) {
		t.Fatal("different seeds retained identical sets (RNG not wired?)")
	}
}

func TestReservoirSkipsMismatchedSchema(t *testing.T) {
	s := newReservoir(32, 1)
	s.offer(datagen.Income(50, 1), 0)
	s.offer(datagen.Heart(50, 1), 1) // different columns: must be skipped
	if s.skipped != 1 {
		t.Fatalf("skipped = %d, want 1", s.skipped)
	}
	if s.seen != 50 {
		t.Fatalf("seen = %d, want 50 (mismatched rows must not advance the stream)", s.seen)
	}
}

func TestCaptureAttributesCorruptedColumn(t *testing.T) {
	reference := datagen.Income(2000, 1)
	rec, err := New(Config{
		Reference:     reference,
		RefOutputs:    balancedProba(400),
		Classes:       []string{"<=50K", ">50K"},
		ReservoirRows: 256,
		Logger:        quietLogger(),
		Registry:      obs.NewRegistry(),
		Tracer:        obs.NewTracer(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.RegisterMetrics(nil) // so the bundle's metrics snapshot is non-empty

	// Two clean batches, then three heavily corrupted ones; every batch
	// predicts only class 0 so the class histogram collapses too.
	for i := int64(0); i < 2; i++ {
		batch := datagen.Income(300, 20+i)
		rec.ObserveBatch(batch, skewedProba(300), monitor.Record{Seq: int(i), Estimate: 0.8, Size: 300})
	}
	for i := int64(0); i < 3; i++ {
		batch := corruptAge(datagen.Income(300, 30+i), 0.9, 40+i)
		rec.ObserveBatch(batch, skewedProba(300), monitor.Record{
			Seq: int(2 + i), RequestID: "req-bad", Estimate: 0.4, Size: 300, Violating: true,
		})
	}

	b, err := rec.Capture("test")
	if err != nil {
		t.Fatal(err)
	}
	if b.TopColumn() != "age" {
		t.Fatalf("top column = %q, want age\nattribution: %+v", b.TopColumn(), b.Attribution)
	}
	if !b.Attribution[0].Rejected {
		t.Fatal("corrupted column not rejected")
	}
	if b.CorrectedAlpha >= 0.05 {
		t.Fatalf("corrected alpha = %v, want Bonferroni-reduced below 0.05", b.CorrectedAlpha)
	}
	if b.ReservoirRows != 256 || b.RowsSeen != 1500 || b.BatchesSeen != 5 {
		t.Fatalf("provenance: rows=%d seen=%d batches=%d", b.ReservoirRows, b.RowsSeen, b.BatchesSeen)
	}
	if b.ClassShift == nil || !b.ClassShift.Rejected {
		t.Fatalf("class shift = %+v, want rejected (all predictions collapsed to one class)", b.ClassShift)
	}
	if len(b.WorstBatches) == 0 || b.WorstBatches[0].RequestID != "req-bad" || b.WorstBatches[0].Estimate != 0.4 {
		t.Fatalf("worst batches = %+v", b.WorstBatches)
	}
	if b.Metrics == "" {
		t.Fatal("bundle carries no metrics snapshot")
	}

	md := b.Markdown()
	for _, want := range []string{"# Incident " + b.ID, "| 1 | age |", "req-bad", "Per-column drift attribution"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRetentionRingPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Dir:        dir,
		MaxBundles: 2,
		Logger:     quietLogger(),
		Registry:   obs.NewRegistry(),
		Tracer:     obs.NewTracer(8),
	}
	rec, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rec.Capture("test"); err != nil {
			t.Fatal(err)
		}
	}
	bundles := rec.Bundles()
	if len(bundles) != 2 {
		t.Fatalf("retained %d bundles, want 2", len(bundles))
	}
	if bundles[0].ID != "inc-000001" || bundles[1].ID != "inc-000002" {
		t.Fatalf("retained ids: %s, %s (oldest must be evicted)", bundles[0].ID, bundles[1].ID)
	}
	onDisk, _ := filepath.Glob(filepath.Join(dir, "inc-*.json"))
	if len(onDisk) != 2 {
		t.Fatalf("on disk: %v, want 2 files", onDisk)
	}

	// A fresh recorder over the same dir resumes the ring and the id
	// counter.
	rec2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec2.Bundles(); len(got) != 2 || got[1].ID != "inc-000002" {
		t.Fatalf("reloaded bundles: %+v", got)
	}
	b, err := rec2.Capture("after-restart")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != "inc-000003" {
		t.Fatalf("id after reload = %s, want inc-000003", b.ID)
	}

	// Unreadable files are skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "inc-999999.json"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); err != nil {
		t.Fatalf("corrupt bundle file must not break construction: %v", err)
	}
	if _, err := LoadBundle(filepath.Join(dir, "inc-999999.json")); err == nil {
		t.Fatal("LoadBundle accepted garbage")
	}
}

func TestAlertNotifierCooldownAndStates(t *testing.T) {
	rec, err := New(Config{
		Cooldown: time.Minute,
		Logger:   quietLogger(),
		Registry: obs.NewRegistry(),
		Tracer:   obs.NewTracer(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	rec.now = func() time.Time { return now }

	n := rec.AlertNotifier()
	n.Notify(alert.Event{Rule: "estimate_low", State: "resolved"}) // ignored
	n.Notify(alert.Event{Rule: "estimate_low", State: "firing", Severity: "page"})
	n.Notify(alert.Event{Rule: "estimate_low", State: "firing"}) // inside cooldown
	if got := len(rec.Bundles()); got != 1 {
		t.Fatalf("bundles after flapping rule = %d, want 1 (cooldown)", got)
	}
	b := rec.Bundles()[0]
	if b.Reason != "alert:estimate_low" || b.Rule != "estimate_low" || b.Severity != "page" {
		t.Fatalf("bundle = %+v", b)
	}

	// Manual captures bypass the cooldown; a later alert fires again
	// once the cooldown has elapsed.
	if _, err := rec.Capture(""); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	n.Notify(alert.Event{Rule: "ks_high", State: "firing"})
	bundles := rec.Bundles()
	if len(bundles) != 3 || bundles[1].Reason != "manual" || bundles[2].Reason != "alert:ks_high" {
		reasons := make([]string, len(bundles))
		for i, b := range bundles {
			reasons[i] = b.Reason
		}
		t.Fatalf("reasons = %v", reasons)
	}
}

func TestRecorderMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	rec, err := New(Config{
		ReservoirRows: 16,
		Logger:        quietLogger(),
		Registry:      reg,
		Tracer:        obs.NewTracer(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.RegisterMetrics(nil) // nil = the configured registry
	rec.ObserveBatch(datagen.Income(10, 1), nil, monitor.Record{Size: 10})
	if _, err := rec.Capture("test"); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if errs := obs.Lint(got); len(errs) != 0 {
		t.Fatalf("incident families fail lint: %v", errs)
	}
	for _, want := range []string{
		`ppm_incident_captures_total{trigger="manual"} 1`,
		"ppm_incident_bundles 1",
		"ppm_incident_reservoir_rows 10",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reference := datagen.Income(500, 1)
	rec, err := New(Config{
		Reference:     reference,
		ReservoirRows: 64,
		Logger:        quietLogger(),
		Registry:      obs.NewRegistry(),
		Tracer:        obs.NewTracer(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 32*1024)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, sb.String()
	}

	// Empty list first.
	resp, body := get(MountPath)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"incidents":[]`) {
		t.Fatalf("empty list: %d %q", resp.StatusCode, body)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q", cc)
	}
	if _, body = get(MountPath + "/latest"); !strings.Contains(body, "no such incident") {
		t.Fatalf("latest on empty ring: %q", body)
	}

	// Trigger requires POST.
	resp, _ = get(MountPath + "/trigger")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET trigger = %d, want 405", resp.StatusCode)
	}
	rec.ObserveBatch(corruptAge(datagen.Income(200, 5), 0.9, 6), nil, monitor.Record{Size: 200, RequestID: "req-1"})
	post, err := http.Post(srv.URL+MountPath+"/trigger", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var triggered Bundle
	if err := json.NewDecoder(post.Body).Decode(&triggered); err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusOK || triggered.ID == "" || triggered.Reason != "manual" {
		t.Fatalf("trigger: %d %+v", post.StatusCode, triggered)
	}

	resp, body = get(MountPath)
	if !strings.Contains(body, triggered.ID) || !strings.Contains(body, `"top_column":"age"`) {
		t.Fatalf("list after trigger: %q", body)
	}
	if _, body = get(MountPath + "/" + triggered.ID); !strings.Contains(body, `"id":"`+triggered.ID+`"`) {
		t.Fatalf("bundle by id: %q", body)
	}
	resp, body = get(MountPath + "/" + triggered.ID + "/report")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/markdown") {
		t.Fatalf("report content type = %q", ct)
	}
	if !strings.Contains(body, "# Incident "+triggered.ID) {
		t.Fatalf("report body: %q", body)
	}
	resp, body = get(MountPath + "/view")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("view content type = %q", ct)
	}
	if !strings.Contains(body, triggered.ID) {
		t.Fatalf("view body missing bundle id")
	}
	if resp, _ = get(MountPath + "/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", resp.StatusCode)
	}
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
