// Package incident is the flight recorder of the serving stack: it
// rides the monitor's batch stream, continuously retaining a bounded,
// deterministic reservoir of recent raw serving rows plus
// predicted-class counts and the worst-scoring batches, and — when an
// alert rule fires, or on demand — freezes everything into a
// self-contained incident bundle: ranked per-column drift attribution
// against the held-out reference (the paper's REL test battery:
// two-sample KS per numeric column, chi-squared per categorical
// column, Bonferroni-corrected), a BBSEh-style predicted-class
// histogram shift, the drift-timeline excerpt around the excursion, a
// metrics-registry snapshot, recent spans, and the X-Request-IDs of
// the worst batches for log correlation. Bundles persist as JSON under
// a bounded on-disk retention ring and are served over HTTP (see
// Handler) or rendered to markdown (see Bundle.Markdown, cmd/ppm-diagnose).
//
// Determinism contract (mirrors DESIGN.md §8): the reservoir is
// Algorithm R driven by a private RNG seeded from Config.Seed through
// the same splitmix64 scramble the parallel trainer uses. The retained
// row set is therefore a pure function of (Seed, the ordered stream of
// observed batches) — independent of wall clock, scheduling, or how
// often bundles are captured — so an incident replayed from the same
// traffic yields byte-identical attribution inputs.
package incident

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"blackboxval/internal/baselines"
	"blackboxval/internal/data"
	"blackboxval/internal/frame"
	"blackboxval/internal/labels"
	"blackboxval/internal/linalg"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
	"blackboxval/internal/stats"
)

// Config configures a Recorder.
type Config struct {
	// Reference is the held-out clean sample (e.g. the bundle's
	// persisted reference.json) that serving rows are attributed
	// against. Without it the recorder still captures bundles, just
	// with no per-column attribution.
	Reference *data.Dataset
	// RefOutputs are the model's outputs on the held-out test set; they
	// anchor the predicted-class histogram shift. Optional.
	RefOutputs *linalg.Matrix
	// Classes names the model's classes for report rendering. Optional.
	Classes []string
	// Monitor, when set, contributes its timeline excerpt, summary and
	// alarm line to captured bundles.
	Monitor *monitor.Monitor
	// Labels, when set, snapshots the label-feedback subsystem into
	// captured bundles: the labeled-accuracy credible interval next to
	// h's estimate, per-stratum posteriors, join/lag state and the
	// conformal recalibration interval.
	Labels *labels.Store
	// Dir is the on-disk retention ring ("" = in-memory only). Existing
	// bundles in Dir are loaded at construction time.
	Dir string
	// MaxBundles bounds retained bundles, in memory and on disk
	// (default 16; the oldest bundle is evicted).
	MaxBundles int
	// ReservoirRows bounds the raw-row reservoir (default 512).
	ReservoirRows int
	// Seed drives the reservoir's private RNG (default 1).
	Seed int64
	// TimelineTail is how many trailing timeline windows a bundle
	// embeds (default 32).
	TimelineTail int
	// WorstBatches is how many lowest-estimate batches a bundle lists
	// for request-id correlation (default 5).
	WorstBatches int
	// ClassWindowBatches is how many trailing batches the serving
	// predicted-class histogram aggregates (default 16).
	ClassWindowBatches int
	// Cooldown is the minimum spacing between alert-triggered captures,
	// so a flapping rule cannot storm the retention ring (default 30s;
	// manual triggers ignore it).
	Cooldown time.Duration
	// Profiler, when set, captures a bounded CPU+heap pprof pair into
	// every bundle (subject to the profiler's own cooldown; a refused
	// capture is logged, never fatal). Wire the gateway's profiler here
	// so a firing burn-rate rule freezes what the process was doing.
	Profiler *obs.Profiler
	// Serving, when set, snapshots the serving SLO observatory (per-
	// stage latency quantiles + slowest request exemplars) into every
	// bundle. The gateway supplies this from its /slo tracker.
	Serving func() *ServingSLO
	// Registry is snapshotted into bundles and receives the recorder's
	// own families via RegisterMetrics (nil = obs.Default()).
	Registry *obs.Registry
	// Tracer contributes recent spans (nil = obs.DefaultTracer()).
	Tracer *obs.Tracer
	// Logger receives capture events (nil = slog.Default()).
	Logger *slog.Logger
}

func (c *Config) defaults() {
	if c.MaxBundles <= 0 {
		c.MaxBundles = 16
	}
	if c.ReservoirRows <= 0 {
		c.ReservoirRows = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TimelineTail <= 0 {
		c.TimelineTail = 32
	}
	if c.WorstBatches <= 0 {
		c.WorstBatches = 5
	}
	if c.ClassWindowBatches <= 0 {
		c.ClassWindowBatches = 16
	}
	if c.Cooldown == 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Tracer == nil {
		c.Tracer = obs.DefaultTracer()
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
}

// Recorder is the incident flight recorder. Create with New, feed it
// through monitor.OnObserve (or ObserveBatch directly), hook alerts
// with AlertNotifier, and serve bundles with Handler. Safe for
// concurrent use.
type Recorder struct {
	cfg Config

	mu          sync.Mutex
	res         *reservoir
	batchesSeen int64
	worst       []BatchRef  // lowest-estimate batches, ascending estimate
	classRing   [][]float64 // per-batch predicted-class counts, trailing window
	lastAuto    time.Time   // last alert-triggered capture (cooldown)
	bundles     []*Bundle   // retained bundles, oldest first
	nextSeq     int         // id counter, seeded past loaded bundles
	now         func() time.Time

	capturesMetric *obs.CounterVec
	bundlesMetric  *obs.Gauge
	rowsMetric     *obs.Gauge
}

// New validates cfg, loads any bundles already retained under cfg.Dir,
// and returns a ready recorder.
func New(cfg Config) (*Recorder, error) {
	cfg.defaults()
	r := &Recorder{
		cfg: cfg,
		res: newReservoir(cfg.ReservoirRows, cfg.Seed),
		now: time.Now,
	}
	if cfg.Dir != "" {
		if err := r.loadDir(); err != nil {
			return nil, fmt.Errorf("incident: loading %s: %w", cfg.Dir, err)
		}
	}
	return r, nil
}

// RegisterMetrics registers the recorder's families on reg (nil = the
// configured registry): capture counts by trigger, retained bundles,
// and the current reservoir fill.
func (r *Recorder) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = r.cfg.Registry
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.capturesMetric = reg.CounterVec("ppm_incident_captures_total",
		"Incident bundles captured, by trigger (alert or manual).", "trigger")
	r.bundlesMetric = reg.GaugeFunc("ppm_incident_bundles",
		"Incident bundles currently retained.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.bundles))
		})
	r.rowsMetric = reg.GaugeFunc("ppm_incident_reservoir_rows",
		"Raw serving rows currently held in the incident reservoir.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(r.res.len())
		})
}

// ObserveBatch feeds one observed serving batch: raw rows enter the
// deterministic reservoir, the predicted-class histogram window
// advances, and the batch competes for the worst-scoring list. batch
// and proba may be nil (row-streamed windows carry neither); the
// record still competes for the worst list when it has a request id.
// Its signature matches monitor.BatchObserver:
//
//	mon.OnObserve(rec.ObserveBatch)
func (r *Recorder) ObserveBatch(batch *data.Dataset, proba *linalg.Matrix, rec monitor.Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batchesSeen++
	if batch != nil && batch.Tabular() {
		r.res.offer(batch, rec.Window)
	}
	if proba != nil && proba.Rows > 0 {
		r.classRing = append(r.classRing, baselines.PredictedClassCounts(proba))
		if len(r.classRing) > r.cfg.ClassWindowBatches {
			r.classRing = r.classRing[len(r.classRing)-r.cfg.ClassWindowBatches:]
		}
	}
	r.offerWorst(BatchRef{
		Seq:       rec.Seq,
		RequestID: rec.RequestID,
		TraceID:   rec.TraceID,
		Estimate:  rec.Estimate,
		Size:      rec.Size,
		Violating: rec.Violating,
	})
}

// offerWorst keeps the cfg.WorstBatches lowest-estimate batches,
// ascending by estimate (worst first), seq as the deterministic
// tie-break. Callers hold r.mu.
func (r *Recorder) offerWorst(ref BatchRef) {
	r.worst = append(r.worst, ref)
	sort.SliceStable(r.worst, func(i, j int) bool {
		if r.worst[i].Estimate != r.worst[j].Estimate {
			return r.worst[i].Estimate < r.worst[j].Estimate
		}
		return r.worst[i].Seq < r.worst[j].Seq
	})
	if len(r.worst) > r.cfg.WorstBatches {
		r.worst = r.worst[:r.cfg.WorstBatches]
	}
}

// AlertNotifier adapts the recorder to the alert engine: every firing
// edge captures a bundle (subject to the cooldown), resolved edges are
// ignored. Compose with a webhook via alert.Notifiers.
func (r *Recorder) AlertNotifier() alert.Notifier {
	return alert.NotifierFunc(func(ev alert.Event) {
		if ev.State != "firing" {
			return
		}
		r.mu.Lock()
		now := r.now()
		if !r.lastAuto.IsZero() && now.Sub(r.lastAuto) < r.cfg.Cooldown {
			r.mu.Unlock()
			r.cfg.Logger.Info("incident capture suppressed by cooldown", "rule", ev.Rule)
			return
		}
		r.lastAuto = now
		r.mu.Unlock()
		if _, err := r.capture("alert:"+ev.Rule, &ev); err != nil {
			r.cfg.Logger.Error("incident capture failed", "rule", ev.Rule, "err", err)
		}
	})
}

// Capture assembles, retains and persists a bundle right now. reason
// is free text recorded in the bundle ("manual" when empty). Manual
// captures bypass the alert cooldown.
func (r *Recorder) Capture(reason string) (*Bundle, error) {
	if reason == "" {
		reason = "manual"
	}
	return r.capture(reason, nil)
}

func (r *Recorder) capture(reason string, ev *alert.Event) (*Bundle, error) {
	r.mu.Lock()
	serving := r.res.dataset(r.cfg.Classes)
	rowsSeen := r.res.seen
	batches := r.batchesSeen
	worst := append([]BatchRef(nil), r.worst...)
	servingCounts := sumCounts(r.classRing)
	wmin, wmax, wok := r.res.windowSpan()
	id := fmt.Sprintf("inc-%06d", r.nextSeq)
	r.nextSeq++
	r.mu.Unlock()

	b := &Bundle{
		ID:            id,
		CapturedAt:    r.now().UTC(),
		Reason:        reason,
		ReservoirRows: 0,
		RowsSeen:      rowsSeen,
		BatchesSeen:   batches,
		Seed:          r.cfg.Seed,
		WorstBatches:  worst,
	}
	if serving != nil {
		b.ReservoirRows = serving.Len()
	}
	if wok {
		b.ReservoirWindows = &WindowSpan{Min: wmin, Max: wmax}
	}
	if r.cfg.Labels != nil {
		snap := r.cfg.Labels.Snapshot()
		b.Labels = &snap
	}
	if ev != nil {
		b.Rule = ev.Rule
		b.Severity = ev.Severity
		b.AlertValue = ev.Value
		b.AlertSeries = ev.Series
	}
	if m := r.cfg.Monitor; m != nil {
		b.Alarming = m.Alarming()
		b.AlarmLine = m.AlarmLine()
		s := m.Summarize()
		b.Summary = &s
		windows := m.Timeline().Windows()
		if len(windows) > r.cfg.TimelineTail {
			windows = windows[len(windows)-r.cfg.TimelineTail:]
		}
		b.Timeline = windows
	}
	if r.cfg.Reference != nil && serving != nil {
		rel := baselines.NewREL(r.cfg.Reference)
		b.Attribution, b.CorrectedAlpha = rel.Attribute(serving)
	}
	if r.cfg.RefOutputs != nil && r.cfg.RefOutputs.Rows > 0 && len(servingCounts) > 0 {
		b.ClassShift = classShift(r.cfg.RefOutputs, servingCounts, r.cfg.Classes)
	}
	if r.cfg.Serving != nil {
		b.Serving = r.cfg.Serving()
	}
	if r.cfg.Profiler != nil {
		profiles, err := r.cfg.Profiler.Capture()
		if err != nil {
			// Cooldown or a concurrent pprof session: the bundle is still
			// valuable without profiles.
			r.cfg.Logger.Info("incident profile capture skipped", "err", err)
		} else {
			b.Profiles = profiles
		}
	}
	var metrics strings.Builder
	if _, err := r.cfg.Registry.WriteTo(&metrics); err == nil {
		b.Metrics = metrics.String()
	}
	for _, span := range r.cfg.Tracer.Traces() {
		b.Spans = append(b.Spans, span.JSON())
	}
	b.Traces = r.collectTraces(b)

	r.mu.Lock()
	r.bundles = append(r.bundles, b)
	if len(r.bundles) > r.cfg.MaxBundles {
		r.bundles = r.bundles[len(r.bundles)-r.cfg.MaxBundles:]
	}
	counter := r.capturesMetric
	r.mu.Unlock()
	if counter != nil {
		trigger := "manual"
		if ev != nil {
			trigger = "alert"
		}
		counter.Inc(trigger)
	}
	if err := r.persist(b); err != nil {
		return b, err
	}
	r.cfg.Logger.Info("incident bundle captured",
		"id", b.ID, "reason", reason, "rows", b.ReservoirRows, "top", b.TopColumn())
	return b, nil
}

// Bundles returns the retained bundles, oldest first.
func (r *Recorder) Bundles() []*Bundle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Bundle(nil), r.bundles...)
}

// Bundle returns one retained bundle by id.
func (r *Recorder) Bundle(id string) (*Bundle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.bundles {
		if b.ID == id {
			return b, true
		}
	}
	return nil, false
}

// classShift runs the BBSEh chi-squared test between the reference
// predicted-class histogram and the serving window's.
func classShift(refOutputs *linalg.Matrix, servingCounts []float64, classes []string) *ClassShift {
	refCounts := baselines.PredictedClassCounts(refOutputs)
	if len(refCounts) != len(servingCounts) {
		return nil
	}
	res := stats.ChiSquareCounts(refCounts, servingCounts)
	return &ClassShift{
		Classes:   append([]string(nil), classes...),
		Reference: refCounts,
		Serving:   servingCounts,
		Statistic: res.Statistic,
		PValue:    res.PValue,
		Rejected:  res.Rejected(baselines.Alpha),
	}
}

func sumCounts(ring [][]float64) []float64 {
	var out []float64
	for _, counts := range ring {
		if out == nil {
			out = make([]float64, len(counts))
		}
		if len(counts) != len(out) {
			continue
		}
		for i, v := range counts {
			out[i] += v
		}
	}
	return out
}

// ---- deterministic reservoir ----------------------------------------

// reservoir holds a uniform sample of k raw rows via Algorithm R
// (Vitter 1985) over the concatenated batch stream, stored columnar so
// the sample reassembles into a dataset without copying whole batches.
// The RNG is derived from the seed by the splitmix64 scramble (same
// finalizer as internal/core's parallel trainer), making the retained
// set a pure function of (seed, ordered stream).
type reservoir struct {
	k      int
	seen   int64
	filled int
	rng    *rand.Rand

	// schema is frozen by the first tabular batch; later batches with a
	// different column layout are skipped (counted in skipped).
	names   []string
	kinds   []frame.Kind
	cols    [][]float64 // numeric storage per column (len == filled)
	strs    [][]string  // string storage per column
	wins    []int64     // served_at drift-timeline window index per slot
	classes []string
	skipped int64
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newReservoir(k int, seed int64) *reservoir {
	return &reservoir{
		k:   k,
		rng: rand.New(rand.NewSource(int64(splitmix64(uint64(seed))))),
	}
}

func (s *reservoir) len() int { return s.filled }

// offer feeds every row of a tabular batch through Algorithm R. window
// is the drift-timeline window the batch was served in; each retained
// slot remembers it, so label joins and lag metrics read served_at
// directly instead of inferring time from request-id sequence numbers.
func (s *reservoir) offer(batch *data.Dataset, window int64) {
	columns := batch.Frame.Columns()
	if len(columns) == 0 {
		s.skipped++
		return
	}
	if s.names == nil {
		s.names = make([]string, len(columns))
		s.kinds = make([]frame.Kind, len(columns))
		s.cols = make([][]float64, len(columns))
		s.strs = make([][]string, len(columns))
		for i, c := range columns {
			s.names[i] = c.Name
			s.kinds[i] = c.Kind
		}
		s.classes = append([]string(nil), batch.Classes...)
	} else if !s.matches(columns) {
		s.skipped++
		return
	}
	for row := 0; row < columns[0].Len(); row++ {
		switch {
		case s.filled < s.k:
			s.appendRow(columns, row)
			s.wins = append(s.wins, window)
			s.filled++
		default:
			// Replace a random slot with probability k/(seen+1).
			if j := s.rng.Int63n(s.seen + 1); j < int64(s.k) {
				s.setRow(columns, row, int(j))
				s.wins[j] = window
			}
		}
		s.seen++
	}
}

// windowSpan reports the oldest and newest served_at window indices of
// the retained rows (ok=false while the reservoir is empty).
func (s *reservoir) windowSpan() (min, max int64, ok bool) {
	if len(s.wins) == 0 {
		return 0, 0, false
	}
	min, max = s.wins[0], s.wins[0]
	for _, w := range s.wins[1:] {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	return min, max, true
}

func (s *reservoir) matches(columns []*frame.Column) bool {
	if len(columns) != len(s.names) || len(columns) == 0 {
		return false
	}
	for i, c := range columns {
		if c.Name != s.names[i] || c.Kind != s.kinds[i] {
			return false
		}
	}
	return true
}

func (s *reservoir) appendRow(columns []*frame.Column, row int) {
	for i, c := range columns {
		if c.Kind == frame.Numeric {
			s.cols[i] = append(s.cols[i], c.Num[row])
		} else {
			s.strs[i] = append(s.strs[i], c.Str[row])
		}
	}
}

func (s *reservoir) setRow(columns []*frame.Column, row, slot int) {
	for i, c := range columns {
		if c.Kind == frame.Numeric {
			s.cols[i][slot] = c.Num[row]
		} else {
			s.strs[i][slot] = c.Str[row]
		}
	}
}

// dataset reassembles the current sample into an unlabeled dataset
// (nil while empty). classes overrides the batch-derived class list
// when set.
func (s *reservoir) dataset(classes []string) *data.Dataset {
	n := s.len()
	if n == 0 {
		return nil
	}
	f := frame.New()
	for i, name := range s.names {
		switch s.kinds[i] {
		case frame.Numeric:
			f.AddNumeric(name, append([]float64(nil), s.cols[i]...))
		case frame.Categorical:
			f.AddCategorical(name, append([]string(nil), s.strs[i]...))
		default:
			f.AddText(name, append([]string(nil), s.strs[i]...))
		}
	}
	if classes == nil {
		classes = s.classes
	}
	return &data.Dataset{
		Frame:   f,
		Labels:  make([]int, n),
		Classes: append([]string(nil), classes...),
	}
}

// maxBundleTraces bounds the embedded traces per bundle: the worst
// batches and slowest exemplars overlap heavily in practice, and a
// bundle must stay small enough to POST to a webhook.
const maxBundleTraces = 6

// collectTraces resolves the bundle's worst-estimate batches and
// slowest request exemplars to their sampled traces and embeds this
// process's span fragments (trace ring + journal) for each. Unsampled
// or evicted traces simply do not appear — head sampling already
// decided they were not worth keeping.
func (r *Recorder) collectTraces(b *Bundle) []TraceRef {
	type candidate struct {
		traceID, requestID, why string
	}
	var cands []candidate
	for _, ref := range b.WorstBatches {
		if ref.TraceID != "" {
			cands = append(cands, candidate{ref.TraceID, ref.RequestID, "worst_estimate"})
		}
	}
	// Exemplars carry request ids only; resolve them through the span
	// ring, whose request spans carry both the request_id attribute and
	// the trace id.
	var exemplarIDs []string
	if b.Serving != nil {
		for _, ex := range b.Serving.Exemplars {
			if ex.RequestID != "" {
				exemplarIDs = append(exemplarIDs, ex.RequestID)
			}
		}
	}
	if len(exemplarIDs) > 0 {
		byRequest := map[string]string{}
		for _, root := range r.cfg.Tracer.Traces() {
			js := root.JSON()
			if js.TraceID == "" {
				continue
			}
			if id, ok := js.Attrs["request_id"]; ok {
				byRequest[id] = js.TraceID
			}
		}
		for _, id := range exemplarIDs {
			if tid, ok := byRequest[id]; ok {
				cands = append(cands, candidate{tid, id, "slowest_exemplar"})
			}
		}
	}

	seen := map[string]bool{}
	var out []TraceRef
	for _, c := range cands {
		if seen[c.traceID] || len(out) >= maxBundleTraces {
			continue
		}
		seen[c.traceID] = true
		spans := r.cfg.Tracer.FindTrace(c.traceID)
		if j := r.cfg.Tracer.Journal(); j != nil {
			// The ring and the journal overlap for recent traces; dedup
			// by span id, preferring the ring's (fresher) copy.
			have := map[string]bool{}
			for _, s := range spans {
				if s.SpanID != "" {
					have[s.SpanID] = true
				}
			}
			for _, s := range j.Find(c.traceID) {
				if s.SpanID == "" || !have[s.SpanID] {
					spans = append(spans, s)
				}
			}
		}
		if len(spans) == 0 {
			continue
		}
		out = append(out, TraceRef{TraceID: c.traceID, RequestID: c.requestID, Why: c.why, Spans: spans})
	}
	return out
}
