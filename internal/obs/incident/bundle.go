package incident

// bundle.go is the incident bundle itself: the self-contained JSON
// artifact a capture freezes, its bounded on-disk retention ring, and
// the human-readable markdown report ppm-diagnose and the dashboard
// view render from it.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"blackboxval/internal/baselines"
	"blackboxval/internal/labels"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/stats"
)

// WindowSpan brackets a range of drift-timeline window indices.
type WindowSpan struct {
	Min int64 `json:"min"`
	Max int64 `json:"max"`
}

// BatchRef points an incident at one monitored serving batch, carrying
// the X-Request-ID needed to find it again in /history, the gateway
// log and the span attrs.
type BatchRef struct {
	Seq       int     `json:"seq"`
	RequestID string  `json:"request_id,omitempty"`
	TraceID   string  `json:"trace_id,omitempty"`
	Estimate  float64 `json:"estimate"`
	Size      int     `json:"size"`
	Violating bool    `json:"violating"`
}

// TraceRef embeds one sampled trace's local span fragments in a
// bundle: the worst-estimate batches' traces and the slowest-exemplar
// requests' traces, so a burn-rate incident page opens directly into a
// cross-process waterfall (stitch with ppm-diagnose -trace, merging
// the other processes' journals).
type TraceRef struct {
	TraceID   string `json:"trace_id"`
	RequestID string `json:"request_id,omitempty"`
	// Why records what pulled the trace into the bundle:
	// "worst_estimate" or "slowest_exemplar".
	Why   string         `json:"why"`
	Spans []obs.SpanJSON `json:"spans,omitempty"`
}

// ClassShift is the BBSEh-style predicted-class histogram comparison:
// the chi-squared test between the reference histogram (model outputs
// on the held-out test set) and the recent serving window's.
type ClassShift struct {
	Classes   []string  `json:"classes,omitempty"`
	Reference []float64 `json:"reference"`
	Serving   []float64 `json:"serving"`
	Statistic float64   `json:"statistic"`
	PValue    float64   `json:"p_value"`
	Rejected  bool      `json:"rejected"`
}

// Bundle is one self-contained incident: everything an operator needs
// to diagnose an excursion without access to the live process.
type Bundle struct {
	ID         string    `json:"id"`
	CapturedAt time.Time `json:"captured_at"`
	// Reason is "manual" or "alert:<rule>".
	Reason      string  `json:"reason"`
	Rule        string  `json:"rule,omitempty"`
	Severity    string  `json:"severity,omitempty"`
	AlertSeries string  `json:"alert_series,omitempty"`
	AlertValue  float64 `json:"alert_value,omitempty"`

	Alarming  bool             `json:"alarming"`
	AlarmLine float64          `json:"alarm_line,omitempty"`
	Summary   *monitor.Summary `json:"summary,omitempty"`

	// Reservoir provenance: the determinism contract's inputs.
	ReservoirRows int   `json:"reservoir_rows"`
	RowsSeen      int64 `json:"rows_seen"`
	BatchesSeen   int64 `json:"batches_seen"`
	Seed          int64 `json:"seed"`
	// ReservoirWindows is the served_at window-index span of the rows
	// currently retained in the reservoir (nil while empty).
	ReservoirWindows *WindowSpan `json:"reservoir_windows,omitempty"`

	// Labels is the label-feedback snapshot at capture time: the
	// labeled-accuracy credible interval an operator reads next to h's
	// unlabeled estimate. Nil when no label store was wired.
	Labels *labels.Snapshot `json:"labels,omitempty"`

	// Attribution is the ranked per-column drift evidence (most
	// suspicious first) and the Bonferroni-corrected alpha it was
	// judged at.
	Attribution    []baselines.ColumnAttribution `json:"attribution,omitempty"`
	CorrectedAlpha float64                       `json:"corrected_alpha,omitempty"`
	ClassShift     *ClassShift                   `json:"class_shift,omitempty"`

	Timeline     []obs.Window   `json:"timeline,omitempty"`
	WorstBatches []BatchRef     `json:"worst_batches,omitempty"`
	Spans        []obs.SpanJSON `json:"spans,omitempty"`
	// Traces are the sampled traces of the worst-estimate batches and
	// the slowest request exemplars at capture time (local fragments:
	// this process's ring + journal).
	Traces []TraceRef `json:"traces,omitempty"`
	// Serving is the serving SLO snapshot at capture time: per-stage
	// latency quantiles plus the slowest request exemplars, whose
	// X-Request-IDs resolve in /history and the gateway log.
	Serving *ServingSLO `json:"serving,omitempty"`
	// Profiles is the alert-triggered CPU+heap pprof pair (base64 pprof
	// protos in the JSON; extract with ppm-diagnose -extract-profiles).
	Profiles *obs.Profiles `json:"profiles,omitempty"`
	// Metrics is a Prometheus text exposition snapshot of the process
	// registry at capture time.
	Metrics string `json:"metrics,omitempty"`
}

// ServingStage is one stage's latency summary inside a bundle.
type ServingStage struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// ServingSLO is the serving SLO observatory's snapshot embedded in a
// bundle. The gateway fills it from its /slo tracker (Config.Serving).
type ServingSLO struct {
	BudgetSeconds float64          `json:"budget_seconds"`
	Target        float64          `json:"target"`
	Requests      int64            `json:"requests"`
	OverBudget    int64            `json:"over_budget"`
	BurnFast      float64          `json:"burn_fast"`
	BurnSlow      float64          `json:"burn_slow"`
	Stages        []ServingStage   `json:"stages,omitempty"`
	Exemplars     []stats.Exemplar `json:"exemplars,omitempty"`
}

// TopColumn names the highest-ranked attributed column ("" when the
// bundle carries no attribution).
func (b *Bundle) TopColumn() string {
	if len(b.Attribution) == 0 {
		return ""
	}
	return b.Attribution[0].Column
}

// Markdown renders the bundle as a human incident report.
func (b *Bundle) Markdown() string {
	var w strings.Builder
	fmt.Fprintf(&w, "# Incident %s\n\n", b.ID)
	fmt.Fprintf(&w, "- captured: %s\n", b.CapturedAt.Format(time.RFC3339))
	fmt.Fprintf(&w, "- reason: %s\n", b.Reason)
	if b.Rule != "" {
		fmt.Fprintf(&w, "- rule: %s (severity %s, series %q, value %.4g)\n",
			b.Rule, b.Severity, b.AlertSeries, b.AlertValue)
	}
	fmt.Fprintf(&w, "- alarming: %v", b.Alarming)
	if b.AlarmLine > 0 {
		fmt.Fprintf(&w, " (alarm line %.4f)", b.AlarmLine)
	}
	w.WriteString("\n")
	fmt.Fprintf(&w, "- reservoir: %d rows sampled from %d seen across %d batches (seed %d)",
		b.ReservoirRows, b.RowsSeen, b.BatchesSeen, b.Seed)
	if ws := b.ReservoirWindows; ws != nil {
		fmt.Fprintf(&w, ", served in windows %d–%d", ws.Min, ws.Max)
	}
	w.WriteString("\n")
	if s := b.Summary; s != nil {
		fmt.Fprintf(&w, "- history: %d batches, %d violations, %d alarmed; estimate mean %.4f min %.4f last %.4f\n",
			s.Batches, s.Violations, s.AlarmedBatches, s.MeanEstimate, s.MinEstimate, s.LastEstimate)
	}

	if l := b.Labels; l != nil {
		w.WriteString("\n## Label feedback\n\n")
		fmt.Fprintf(&w, "- labeled accuracy: %.4f [%.4f, %.4f] at %.0f%% credibility (%d of %d served rows labeled, coverage %.1f%%)\n",
			l.Overall.Mean, l.Overall.Lo, l.Overall.Hi, l.Level*100,
			l.RowsLabeled, l.RowsServed, l.Coverage*100)
		fmt.Fprintf(&w, "- label lag: last %d windows, mean %.1f; pending: %d batches, %d buffered posts\n",
			l.LastLagWindows, l.MeanLagWindows, l.PendingBatches, l.PendingPosts)
		fmt.Fprintf(&w, "- recalibrated h interval: [%.4f, %.4f] (conformal, %d residuals, online coverage %.3f)\n",
			l.Conformal.LastLo, l.Conformal.LastHi, l.Conformal.Residuals, l.Conformal.Coverage)
		if len(l.Strata) > 0 {
			w.WriteString("\n| stratum (class, alarm) | labeled | correct | mean | interval |\n")
			w.WriteString("|------------------------|--------:|--------:|-----:|----------|\n")
			for _, st := range l.Strata {
				fmt.Fprintf(&w, "| class %d, alarming=%v | %d | %d | %.4f | [%.4f, %.4f] |\n",
					st.Class, st.Alarming, st.Labeled, st.Correct, st.Mean, st.Lo, st.Hi)
			}
		}
	}

	w.WriteString("\n## Per-column drift attribution\n\n")
	if len(b.Attribution) == 0 {
		w.WriteString("No attribution: the recorder had no reference sample or no raw rows.\n")
	} else {
		fmt.Fprintf(&w, "Bonferroni-corrected alpha: %.2e. Most suspicious first.\n\n", b.CorrectedAlpha)
		w.WriteString("| rank | column | kind | test | statistic | p-value | rejected | missing Δ |\n")
		w.WriteString("|-----:|--------|------|------|----------:|--------:|----------|----------:|\n")
		for i, a := range b.Attribution {
			fmt.Fprintf(&w, "| %d | %s | %s | %s | %.4f | %.3g | %v | %+.3f |\n",
				i+1, a.Column, a.Kind, a.Test, a.Statistic, a.PValue, a.Rejected, a.MissingDelta)
		}
	}

	w.WriteString("\n## Predicted-class histogram shift (BBSEh)\n\n")
	if cs := b.ClassShift; cs == nil {
		w.WriteString("Not computed (no reference outputs).\n")
	} else {
		fmt.Fprintf(&w, "Chi-squared %.4f, p-value %.3g, rejected at alpha %.2f: %v\n\n",
			cs.Statistic, cs.PValue, baselines.Alpha, cs.Rejected)
		w.WriteString("| class | reference count | serving count |\n|-------|----------------:|--------------:|\n")
		for i := range cs.Reference {
			name := fmt.Sprintf("class%d", i)
			if i < len(cs.Classes) && cs.Classes[i] != "" {
				name = cs.Classes[i]
			}
			fmt.Fprintf(&w, "| %s | %.0f | %.0f |\n", name, cs.Reference[i], cs.Serving[i])
		}
	}

	w.WriteString("\n## Worst-scoring batches\n\n")
	if len(b.WorstBatches) == 0 {
		w.WriteString("None recorded.\n")
	} else {
		w.WriteString("| seq | estimate | size | violating | X-Request-ID |\n|----:|---------:|-----:|-----------|--------------|\n")
		for _, ref := range b.WorstBatches {
			id := ref.RequestID
			if id == "" {
				id = "—"
			}
			fmt.Fprintf(&w, "| %d | %.4f | %d | %v | %s |\n", ref.Seq, ref.Estimate, ref.Size, ref.Violating, id)
		}
	}

	w.WriteString("\n## Timeline excerpt\n\n")
	if len(b.Timeline) == 0 {
		w.WriteString("No closed timeline windows at capture time.\n")
	} else {
		w.WriteString("| window | batches | estimate (mean) | ks_max | alarm | violation |\n")
		w.WriteString("|-------:|--------:|----------------:|-------:|------:|----------:|\n")
		for _, win := range b.Timeline {
			fmt.Fprintf(&w, "| %d | %d | %.4f | %.4f | %.0f | %.0f |\n",
				win.Index, win.Batches,
				win.Series["estimate"].Mean(),
				win.Series["ks_max"].Mean(),
				win.Series["alarm"].Max,
				win.Series["violation"].Max)
		}
	}

	if s := b.Serving; s != nil {
		w.WriteString("\n## Serving SLO\n\n")
		fmt.Fprintf(&w, "- budget %.1fms at target %.2f%%: %d of %d requests over budget (burn fast %.2f, slow %.2f)\n",
			s.BudgetSeconds*1000, s.Target*100, s.OverBudget, s.Requests, s.BurnFast, s.BurnSlow)
		if len(s.Stages) > 0 {
			w.WriteString("\n| stage | count | p50 | p99 | p999 | max |\n")
			w.WriteString("|-------|------:|----:|----:|-----:|----:|\n")
			for _, st := range s.Stages {
				fmt.Fprintf(&w, "| %s | %d | %.2fms | %.2fms | %.2fms | %.2fms |\n",
					st.Stage, st.Count, st.P50*1000, st.P99*1000, st.P999*1000, st.Max*1000)
			}
		}
		if len(s.Exemplars) > 0 {
			w.WriteString("\nSlowest requests (X-Request-ID → /history):\n\n")
			for _, ex := range s.Exemplars {
				fmt.Fprintf(&w, "- %s: %.2fms\n", ex.RequestID, ex.Value*1000)
			}
		}
	}
	if p := b.Profiles; p != nil {
		fmt.Fprintf(&w, "\n## Profiles\n\nCPU profile: %d bytes over %.0fms; heap profile: %d bytes. Extract from the bundle JSON and read with `go tool pprof`.\n",
			len(p.CPU), p.CPUSeconds*1000, len(p.Heap))
	}
	if len(b.Spans) > 0 {
		fmt.Fprintf(&w, "\n## Spans\n\n%d recent trace(s) embedded; see the bundle JSON for the trees.\n", len(b.Spans))
	}
	if b.Metrics != "" {
		fmt.Fprintf(&w, "\n## Metrics snapshot\n\n%d exposition lines embedded; see the bundle JSON.\n",
			strings.Count(b.Metrics, "\n"))
	}
	return w.String()
}

// LoadBundle reads one bundle JSON file, as written by the retention
// ring (used by ppm-diagnose).
func LoadBundle(path string) (*Bundle, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("incident: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("incident: decoding %s: %w", path, err)
	}
	if b.ID == "" {
		return nil, fmt.Errorf("incident: %s is not an incident bundle (no id)", path)
	}
	return &b, nil
}

// persist writes b under the retention dir (atomic rename) and prunes
// the ring beyond MaxBundles. No-op without a Dir.
func (r *Recorder) persist(b *Bundle) error {
	if r.cfg.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("incident: %w", err)
	}
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("incident: encoding bundle: %w", err)
	}
	final := filepath.Join(r.cfg.Dir, b.ID+".json")
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("incident: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("incident: %w", err)
	}
	// Prune the on-disk ring: ids are zero-padded sequence numbers, so
	// lexical order is capture order.
	paths, err := filepath.Glob(filepath.Join(r.cfg.Dir, "inc-*.json"))
	if err != nil {
		return nil
	}
	sort.Strings(paths)
	for len(paths) > r.cfg.MaxBundles {
		os.Remove(paths[0])
		paths = paths[1:]
	}
	return nil
}

// loadDir seeds the in-memory ring and the id counter from bundles
// already retained on disk (oldest first, bounded by MaxBundles).
func (r *Recorder) loadDir() error {
	paths, err := filepath.Glob(filepath.Join(r.cfg.Dir, "inc-*.json"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	if len(paths) > r.cfg.MaxBundles {
		paths = paths[len(paths)-r.cfg.MaxBundles:]
	}
	for _, path := range paths {
		b, err := LoadBundle(path)
		if err != nil {
			r.cfg.Logger.Warn("skipping unreadable incident bundle", "path", path, "err", err)
			continue
		}
		r.bundles = append(r.bundles, b)
		var seq int
		if _, err := fmt.Sscanf(b.ID, "inc-%d", &seq); err == nil && seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	return nil
}
