package incident

// The incident HTTP surface, mounted at /debug/incidents on the
// gateway's and monitor's muxes:
//
//	GET  /debug/incidents              -> JSON list of retained bundles
//	GET  /debug/incidents/latest       -> newest bundle JSON (404 if none)
//	GET  /debug/incidents/view         -> HTML incident browser
//	GET  /debug/incidents/{id}         -> one bundle as JSON
//	GET  /debug/incidents/{id}/report  -> one bundle rendered to markdown
//	POST /debug/incidents/trigger      -> capture a bundle now
//
// Every response sets an explicit Content-Type and Cache-Control:
// no-store — incident state must never be served stale.

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
)

// ListEntry is one row of the GET /debug/incidents index.
type ListEntry struct {
	ID         string `json:"id"`
	CapturedAt string `json:"captured_at"`
	Reason     string `json:"reason"`
	// TopColumn is the highest-ranked attributed column ("" when the
	// bundle has no attribution).
	TopColumn string `json:"top_column,omitempty"`
	Alarming  bool   `json:"alarming"`
}

// MountPath is where binaries mount Handler.
const MountPath = "/debug/incidents"

// Handler serves the incident surface. Mount at MountPath (both with
// and without a trailing slash when using http.ServeMux):
//
//	mux.Handle(incident.MountPath, rec.Handler())
//	mux.Handle(incident.MountPath+"/", rec.Handler())
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rest := strings.TrimPrefix(strings.TrimPrefix(req.URL.Path, MountPath), "/")
		switch {
		case rest == "":
			r.handleList(w, req)
		case rest == "trigger":
			r.handleTrigger(w, req)
		case rest == "view":
			r.handleView(w, req)
		case rest == "latest":
			r.handleBundle(w, req, "", false)
		case strings.HasSuffix(rest, "/report"):
			r.handleBundle(w, req, strings.TrimSuffix(rest, "/report"), true)
		default:
			r.handleBundle(w, req, rest, false)
		}
	})
}

func setHeaders(w http.ResponseWriter, contentType string) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Cache-Control", "no-store")
}

func writeJSON(w http.ResponseWriter, v any) {
	setHeaders(w, "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (r *Recorder) handleList(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	bundles := r.Bundles()
	entries := make([]ListEntry, 0, len(bundles))
	for _, b := range bundles {
		entries = append(entries, ListEntry{
			ID:         b.ID,
			CapturedAt: b.CapturedAt.Format("2006-01-02T15:04:05Z07:00"),
			Reason:     b.Reason,
			TopColumn:  b.TopColumn(),
			Alarming:   b.Alarming,
		})
	}
	writeJSON(w, map[string]any{"incidents": entries})
}

func (r *Recorder) handleTrigger(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	b, err := r.Capture("manual")
	if err != nil {
		// The bundle exists even when persistence failed; report both.
		setHeaders(w, "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]any{"id": b.ID, "error": err.Error()})
		return
	}
	writeJSON(w, b)
}

// handleBundle serves one bundle by id ("" = newest), as JSON or as a
// rendered markdown report.
func (r *Recorder) handleBundle(w http.ResponseWriter, req *http.Request, id string, report bool) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	var b *Bundle
	if id == "" {
		if bundles := r.Bundles(); len(bundles) > 0 {
			b = bundles[len(bundles)-1]
		}
	} else if found, ok := r.Bundle(id); ok {
		b = found
	}
	if b == nil {
		http.Error(w, "no such incident", http.StatusNotFound)
		return
	}
	if report {
		setHeaders(w, "text/markdown; charset=utf-8")
		fmt.Fprint(w, b.Markdown())
		return
	}
	writeJSON(w, b)
}

// handleView renders a dependency-free HTML incident browser: the list
// of retained bundles and the newest bundle's report inline.
func (r *Recorder) handleView(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	bundles := r.Bundles()
	setHeaders(w, "text/html; charset=utf-8")
	var sb strings.Builder
	sb.WriteString(`<!doctype html><html lang="en"><head><meta charset="utf-8">
<title>ppm incidents</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }
  h1 { font-size: 1.2rem; }
  table { border-collapse: collapse; }
  th, td { border: 1px solid #ccc; padding: .25rem .6rem; }
  th { background: #f0f0f0; }
  pre { background: #fafafa; border: 1px solid #ddd; padding: 1rem; overflow-x: auto; }
  .meta { color: #666; font-size: .85rem; }
</style></head><body>
<h1>Incident bundles</h1>
`)
	if len(bundles) == 0 {
		sb.WriteString(`<p class="meta">No incidents captured yet. POST `)
		sb.WriteString(MountPath)
		sb.WriteString(`/trigger to capture one now.</p>`)
	} else {
		sb.WriteString("<table><thead><tr><th>id</th><th>captured</th><th>reason</th><th>top column</th><th>alarming</th></tr></thead><tbody>")
		for i := len(bundles) - 1; i >= 0; i-- {
			b := bundles[i]
			fmt.Fprintf(&sb, `<tr><td><a href="%s/%s">%s</a></td><td>%s</td><td>%s</td><td>%s</td><td>%v</td></tr>`,
				MountPath, html.EscapeString(b.ID), html.EscapeString(b.ID),
				b.CapturedAt.Format("2006-01-02 15:04:05"),
				html.EscapeString(b.Reason), html.EscapeString(b.TopColumn()), b.Alarming)
		}
		sb.WriteString("</tbody></table>")
		latest := bundles[len(bundles)-1]
		fmt.Fprintf(&sb, "<h1>Latest report (%s)</h1><pre>%s</pre>",
			html.EscapeString(latest.ID), html.EscapeString(latest.Markdown()))
	}
	sb.WriteString("</body></html>\n")
	fmt.Fprint(w, sb.String())
}
