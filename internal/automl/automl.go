// Package automl provides automatic machine learning substrates standing
// in for the AutoML systems of the paper's Section 6.3 (auto-sklearn,
// TPOT, auto-keras and a large convnet). Each search returns an opaque
// data.Model: the validation system never learns which family, feature
// map or hyperparameters were chosen — exactly the AutoML black box
// contract the paper exploits.
package automl

import (
	"fmt"
	"math/rand"

	"blackboxval/internal/data"
	"blackboxval/internal/featurize"
	"blackboxval/internal/linalg"
	"blackboxval/internal/models"
)

// Config controls an AutoML search.
type Config struct {
	// Folds for cross-validated candidate scoring (default 3).
	Folds int
	// HashDims for text featurization (default featurize.DefaultHashDims).
	HashDims int
	// EnsembleSize is the number of top models blended by AutoSklearn
	// (default 3).
	EnsembleSize int
	// Seed drives all randomness.
	Seed int64
}

func (c *Config) defaults() {
	if c.Folds == 0 {
		c.Folds = 3
	}
	if c.HashDims == 0 {
		c.HashDims = featurize.DefaultHashDims
	}
	if c.EnsembleSize == 0 {
		c.EnsembleSize = 3
	}
}

// Ensemble soft-votes over several trained pipelines, averaging their
// class probabilities — the ensembling strategy of auto-sklearn.
type Ensemble struct {
	members []data.Model
	classes int
}

// PredictProba implements data.Model.
func (e *Ensemble) PredictProba(ds *data.Dataset) *linalg.Matrix {
	var sum *linalg.Matrix
	for _, m := range e.members {
		p := m.PredictProba(ds)
		if sum == nil {
			sum = p.Clone()
			continue
		}
		for i := range sum.Data {
			sum.Data[i] += p.Data[i]
		}
	}
	linalg.Scale(sum, 1/float64(len(e.members)))
	return sum
}

// NumClasses implements data.Model.
func (e *Ensemble) NumClasses() int { return e.classes }

// Size returns the number of ensemble members.
func (e *Ensemble) Size() int { return len(e.members) }

// scoredCandidate pairs a candidate with its cross-validated accuracy.
type scoredCandidate struct {
	cand  models.Candidate
	score float64
}

// scoreCandidates cross-validates every candidate on the featurized data.
func scoreCandidates(X *linalg.Matrix, y []int, classes, folds int, cands []models.Candidate, rng *rand.Rand) ([]scoredCandidate, error) {
	scored := make([]scoredCandidate, 0, len(cands))
	for _, cand := range cands {
		// Reuse GridSearchCV's internals via a single-candidate search to
		// keep fold assignment consistent.
		perFoldRng := rand.New(rand.NewSource(rng.Int63()))
		acc, err := crossValAccuracy(X, y, classes, folds, cand, perFoldRng)
		if err != nil {
			return nil, err
		}
		scored = append(scored, scoredCandidate{cand: cand, score: acc})
	}
	return scored, nil
}

func crossValAccuracy(X *linalg.Matrix, y []int, classes, folds int, cand models.Candidate, rng *rand.Rand) (float64, error) {
	if folds > len(y) {
		folds = len(y)
	}
	perm := rng.Perm(len(y))
	total := 0.0
	for f := 0; f < folds; f++ {
		var trainIdx, valIdx []int
		for i, idx := range perm {
			if i%folds == f {
				valIdx = append(valIdx, idx)
			} else {
				trainIdx = append(trainIdx, idx)
			}
		}
		trainY := make([]int, len(trainIdx))
		for i, idx := range trainIdx {
			trainY[i] = y[idx]
		}
		valY := make([]int, len(valIdx))
		for i, idx := range valIdx {
			valY[i] = y[idx]
		}
		clf := cand.New()
		if err := clf.Fit(X.SelectRows(trainIdx), trainY, classes); err != nil {
			return 0, fmt.Errorf("automl: cross-validating %s: %w", cand.Name, err)
		}
		total += models.Accuracy(clf.PredictProba(X.SelectRows(valIdx)), valY)
	}
	return total / float64(folds), nil
}

// tabularCandidates is the default search space over model families and
// hyperparameters for relational data.
func tabularCandidates(seed int64) []models.Candidate {
	var cands []models.Candidate
	cands = append(cands, models.LRCandidates(seed)...)
	cands = append(cands, models.DNNCandidates(seed)...)
	cands = append(cands, models.XGBCandidates(seed)...)
	return cands
}

// AutoSklearn searches model families and hyperparameters with
// cross-validation and returns a soft-voting ensemble of the top
// configurations, mimicking auto-sklearn's ensemble construction.
func AutoSklearn(train *data.Dataset, cfg Config) (data.Model, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 30))

	feat := &featurize.Pipeline{HashDims: cfg.HashDims}
	if err := feat.Fit(train); err != nil {
		return nil, fmt.Errorf("automl: fitting feature map: %w", err)
	}
	X, err := feat.Transform(train)
	if err != nil {
		return nil, err
	}
	classes := len(train.Classes)

	scored, err := scoreCandidates(X, y(train), classes, cfg.Folds, tabularCandidates(cfg.Seed), rng)
	if err != nil {
		return nil, err
	}
	sortByScore(scored)
	k := cfg.EnsembleSize
	if k > len(scored) {
		k = len(scored)
	}
	ens := &Ensemble{classes: classes}
	for _, sc := range scored[:k] {
		model, err := models.TrainPipeline(train, sc.cand.New(), cfg.HashDims)
		if err != nil {
			return nil, fmt.Errorf("automl: refitting %s: %w", sc.cand.Name, err)
		}
		ens.members = append(ens.members, model)
	}
	return ens, nil
}

// TPOT performs a greedy pipeline search: it scores all candidate
// configurations (the "population"), then hill-climbs variations of the
// winner — a deterministic stand-in for TPOT's genetic programming.
func TPOT(train *data.Dataset, cfg Config) (data.Model, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 31))

	feat := &featurize.Pipeline{HashDims: cfg.HashDims}
	if err := feat.Fit(train); err != nil {
		return nil, err
	}
	X, err := feat.Transform(train)
	if err != nil {
		return nil, err
	}
	classes := len(train.Classes)
	scored, err := scoreCandidates(X, y(train), classes, cfg.Folds, tabularCandidates(cfg.Seed), rng)
	if err != nil {
		return nil, err
	}
	sortByScore(scored)
	winner := scored[0]

	// One "generation" of mutations around the winner: vary the GBDT
	// shrinkage / MLP width if applicable.
	mutations := mutate(winner.cand, cfg.Seed)
	if len(mutations) > 0 {
		mutScored, err := scoreCandidates(X, y(train), classes, cfg.Folds, mutations, rng)
		if err != nil {
			return nil, err
		}
		for _, ms := range mutScored {
			if ms.score > winner.score {
				winner = ms
			}
		}
	}
	return models.TrainPipeline(train, winner.cand.New(), cfg.HashDims)
}

// mutate derives hyperparameter variations of a winning candidate.
func mutate(c models.Candidate, seed int64) []models.Candidate {
	probe := c.New()
	switch probe.(type) {
	case *models.GBDTClassifier:
		return []models.Candidate{
			{Name: c.Name + "+lr0.1", New: func() models.Classifier {
				return &models.GBDTClassifier{Trees: 60, MaxDepth: 3, LearningRate: 0.1, Seed: seed}
			}},
			{Name: c.Name + "+deep", New: func() models.Classifier {
				return &models.GBDTClassifier{Trees: 40, MaxDepth: 5, Seed: seed}
			}},
		}
	case *models.MLPClassifier:
		return []models.Candidate{
			{Name: c.Name + "+wide", New: func() models.Classifier {
				return &models.MLPClassifier{Hidden: []int{96, 48}, Seed: seed}
			}},
		}
	default:
		return nil
	}
}

// AutoKeras runs a small neural architecture search over convnet shapes
// for image data, standing in for auto-keras.
func AutoKeras(train *data.Dataset, cfg Config) (data.Model, error) {
	cfg.defaults()
	if train.Tabular() {
		return nil, fmt.Errorf("automl: AutoKeras expects image data")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 32))

	feat := &featurize.Pipeline{}
	if err := feat.Fit(train); err != nil {
		return nil, err
	}
	X, err := feat.Transform(train)
	if err != nil {
		return nil, err
	}
	classes := len(train.Classes)
	shapes := []struct{ c1, c2, dense int }{
		{4, 8, 32},
		{8, 16, 64},
	}
	var cands []models.Candidate
	for _, s := range shapes {
		s := s
		cands = append(cands, models.Candidate{
			Name: fmt.Sprintf("conv(%d,%d,%d)", s.c1, s.c2, s.dense),
			New: func() models.Classifier {
				return &models.CNNClassifier{Conv1: s.c1, Conv2: s.c2, Dense: s.dense, Epochs: 2, Seed: cfg.Seed}
			},
		})
	}
	scored, err := scoreCandidates(X, y(train), classes, 2, cands, rng)
	if err != nil {
		return nil, err
	}
	sortByScore(scored)
	return models.TrainPipeline(train, scored[0].cand.New(), 0)
}

// LargeConvNet trains the paper's fixed large convolutional architecture
// (proportionally scaled: twice the filters of the default conv model).
func LargeConvNet(train *data.Dataset, cfg Config) (data.Model, error) {
	cfg.defaults()
	if train.Tabular() {
		return nil, fmt.Errorf("automl: LargeConvNet expects image data")
	}
	clf := &models.CNNClassifier{Conv1: 16, Conv2: 32, Dense: 128, Epochs: 3, Seed: cfg.Seed}
	return models.TrainPipeline(train, clf, 0)
}

func y(ds *data.Dataset) []int { return ds.Labels }

func sortByScore(scored []scoredCandidate) {
	for i := 1; i < len(scored); i++ {
		for j := i; j > 0 && scored[j].score > scored[j-1].score; j-- {
			scored[j], scored[j-1] = scored[j-1], scored[j]
		}
	}
}
