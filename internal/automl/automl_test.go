package automl

import (
	"math"
	"math/rand"
	"testing"

	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/linalg"
	"blackboxval/internal/models"
)

func TestAutoSklearnProducesAccurateEnsemble(t *testing.T) {
	if testing.Short() {
		t.Skip("AutoML search is slow")
	}
	rng := rand.New(rand.NewSource(1))
	ds := datagen.Income(1600, 1)
	train, test := ds.Split(0.7, rng)
	model, err := AutoSklearn(train, Config{Seed: 1, Folds: 2, HashDims: 32})
	if err != nil {
		t.Fatal(err)
	}
	ens, ok := model.(*Ensemble)
	if !ok {
		t.Fatal("AutoSklearn should return an Ensemble")
	}
	if ens.Size() != 3 {
		t.Fatalf("ensemble size = %d", ens.Size())
	}
	proba := model.PredictProba(test)
	if acc := models.Accuracy(proba, test.Labels); acc < 0.7 {
		t.Fatalf("ensemble accuracy = %v", acc)
	}
	// Probabilities remain a distribution after averaging.
	for i := 0; i < proba.Rows; i++ {
		sum := 0.0
		for _, v := range proba.Row(i) {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("ensemble row %d sums to %v", i, sum)
		}
	}
}

func TestTPOTProducesAccuratePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("AutoML search is slow")
	}
	rng := rand.New(rand.NewSource(2))
	ds := datagen.Income(1600, 2)
	train, test := ds.Split(0.7, rng)
	model, err := TPOT(train, Config{Seed: 1, Folds: 2, HashDims: 32})
	if err != nil {
		t.Fatal(err)
	}
	if acc := models.Accuracy(model.PredictProba(test), test.Labels); acc < 0.7 {
		t.Fatalf("TPOT accuracy = %v", acc)
	}
}

func TestAutoKerasOnDigits(t *testing.T) {
	if testing.Short() {
		t.Skip("AutoML search is slow")
	}
	rng := rand.New(rand.NewSource(3))
	ds := datagen.Digits(600, 3)
	train, test := ds.Split(0.7, rng)
	model, err := AutoKeras(train, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := models.Accuracy(model.PredictProba(test), test.Labels); acc < 0.8 {
		t.Fatalf("auto-keras accuracy = %v", acc)
	}
}

func TestAutoKerasRejectsTabular(t *testing.T) {
	ds := datagen.Income(100, 4)
	if _, err := AutoKeras(ds, Config{}); err == nil {
		t.Fatal("expected error for tabular data")
	}
	if _, err := LargeConvNet(ds, Config{}); err == nil {
		t.Fatal("expected error for tabular data")
	}
}

func TestLargeConvNet(t *testing.T) {
	if testing.Short() {
		t.Skip("convnet training is slow")
	}
	rng := rand.New(rand.NewSource(5))
	ds := datagen.Digits(500, 5)
	train, test := ds.Split(0.7, rng)
	model, err := LargeConvNet(train, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := models.Accuracy(model.PredictProba(test), test.Labels); acc < 0.8 {
		t.Fatalf("large convnet accuracy = %v", acc)
	}
}

type fixedModel struct{ v float64 }

func (f fixedModel) PredictProba(ds *data.Dataset) *linalg.Matrix {
	out := linalg.NewMatrix(ds.Len(), 2)
	for i := 0; i < out.Rows; i++ {
		out.Set(i, 0, f.v)
		out.Set(i, 1, 1-f.v)
	}
	return out
}
func (fixedModel) NumClasses() int { return 2 }

func TestEnsembleAveraging(t *testing.T) {
	ds := datagen.Income(10, 6)
	ens := &Ensemble{members: []data.Model{fixedModel{0.2}, fixedModel{0.6}}, classes: 2}
	proba := ens.PredictProba(ds)
	if math.Abs(proba.At(0, 0)-0.4) > 1e-12 {
		t.Fatalf("ensemble average = %v, want 0.4", proba.At(0, 0))
	}
	if ens.NumClasses() != 2 {
		t.Fatal("NumClasses wrong")
	}
}

func TestSortByScore(t *testing.T) {
	scored := []scoredCandidate{{score: 0.1}, {score: 0.9}, {score: 0.5}}
	sortByScore(scored)
	if scored[0].score != 0.9 || scored[2].score != 0.1 {
		t.Fatalf("sort wrong: %+v", scored)
	}
}

func TestMutateKnowsGBDT(t *testing.T) {
	cand := models.Candidate{Name: "xgb", New: func() models.Classifier {
		return &models.GBDTClassifier{Seed: 1}
	}}
	if len(mutate(cand, 1)) == 0 {
		t.Fatal("GBDT should have mutations")
	}
	lr := models.Candidate{Name: "lr", New: func() models.Classifier {
		return &models.SGDClassifier{Seed: 1}
	}}
	if len(mutate(lr, 1)) != 0 {
		t.Fatal("lr should have no mutations")
	}
}
