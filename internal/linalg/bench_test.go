package linalg

import (
	"math/rand"
	"testing"
)

func randomMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMatMul128x256x64(b *testing.B) {
	a := randomMatrix(128, 256, 1)
	c := randomMatrix(256, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}

func BenchmarkMatMul512x512x128(b *testing.B) {
	a := randomMatrix(512, 512, 1)
	c := randomMatrix(512, 128, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := randomMatrix(512, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose(m)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	m := randomMatrix(1000, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(m.Clone())
	}
}

func BenchmarkDot(b *testing.B) {
	x := randomMatrix(1, 1024, 1).Row(0)
	y := randomMatrix(1, 1024, 2).Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}
