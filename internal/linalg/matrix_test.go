package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixZeroInitialized(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("new matrix not zeroed: %v", m.Data)
		}
	}
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatalf("At wrong: %v", m.Data)
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatal("Set did not update value")
	}
	if got := m.Col(1); got[0] != 9 || got[1] != 4 || got[2] != 6 {
		t.Fatalf("Col(1) = %v", got)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatMulKnownResult(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := MatMul(a, b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(37, 23)
	b := NewMatrix(23, 41)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := MatMul(a, b)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			want := 0.0
			for k := 0; k < a.Cols; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if !almostEqual(got.At(i, j), want, 1e-9) {
				t.Fatalf("mismatch at (%d,%d): got %v want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		tt := Transpose(Transpose(m))
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(4, 5)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64() * 10
		}
		SoftmaxRows(m)
		for i := 0; i < m.Rows; i++ {
			sum := 0.0
			for _, v := range m.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if !almostEqual(sum, 1, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsStableForLargeValues(t *testing.T) {
	m := FromRows([][]float64{{1000, 1001, 999}})
	SoftmaxRows(m)
	for _, v := range m.Row(0) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", m.Row(0))
		}
	}
	if ArgmaxRow(m.Row(0)) != 1 {
		t.Fatalf("argmax after softmax = %d, want 1", ArgmaxRow(m.Row(0)))
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if !almostEqual(got, math.Log(6), 1e-12) {
		t.Fatalf("LogSumExp = %v, want log(6)", got)
	}
	big := LogSumExp([]float64{1e4, 1e4})
	if !almostEqual(big, 1e4+math.Log(2), 1e-9) {
		t.Fatalf("LogSumExp large = %v", big)
	}
}

func TestSelectRows(t *testing.T) {
	m := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	s := m.SelectRows([]int{2, 0})
	if s.Rows != 2 || s.At(0, 0) != 3 || s.At(1, 0) != 1 {
		t.Fatalf("SelectRows wrong: %+v", s)
	}
}

func TestDotAxpyNorm(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Fatalf("Axpy = %v", y)
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

func TestArgmaxRowTieBreaksLow(t *testing.T) {
	if ArgmaxRow([]float64{1, 3, 3, 2}) != 1 {
		t.Fatal("argmax should pick first maximum")
	}
}

func TestAddRowVectorAndScale(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	AddRowVector(m, []float64{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddRowVector wrong: %v", m.Data)
	}
	Scale(m, 0.5)
	if m.At(0, 0) != 5.5 {
		t.Fatalf("Scale wrong: %v", m.Data)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original data")
	}
}
