// Package linalg provides the dense linear algebra primitives used by the
// models in this repository: a row-major float64 matrix, parallel matrix
// multiplication, and the numerically stable reductions (softmax,
// log-sum-exp) needed for classifier training.
package linalg

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense, row-major matrix of float64 values. The zero value is
// an empty 0x0 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-initialized rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equally sized rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: got %d values, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into a new slice.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// SelectRows returns a new matrix with the given rows of m, in order.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := NewMatrix(len(idx), m.Cols)
	for k, i := range idx {
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// MatMul computes a*b, parallelizing over row blocks of a.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	matMulInto(a, b, out)
	return out
}

func matMulInto(a, b, out *Matrix) {
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 || a.Rows*a.Cols*b.Cols < 1<<16 {
		matMulRange(a, b, out, 0, a.Rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes out[lo:hi] = a[lo:hi]*b with an ikj loop order that
// streams through b row by row (cache friendly for row-major storage).
func matMulRange(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
}

// Transpose returns m^T.
func Transpose(m *Matrix) *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// AddRowVector adds v to every row of m in place.
func AddRowVector(m *Matrix, v []float64) {
	if len(v) != m.Cols {
		panic("linalg: vector length does not match column count")
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j := range r {
			r[j] += v[j]
		}
	}
}

// Scale multiplies every element of m by s in place.
func Scale(m *Matrix, s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// SoftmaxRows applies the softmax function to each row of m in place,
// using the max-subtraction trick for numerical stability.
func SoftmaxRows(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		max := r[0]
		for _, v := range r[1:] {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for j, v := range r {
			e := math.Exp(v - max)
			r[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range r {
			r[j] *= inv
		}
	}
}

// LogSumExp returns log(sum(exp(x))) computed stably.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, v := range x {
		sum += math.Exp(v - max)
	}
	return max + math.Log(sum)
}

// ArgmaxRow returns the index of the largest value in xs, breaking ties in
// favour of the lowest index.
func ArgmaxRow(xs []float64) int {
	best := 0
	for j, v := range xs[1:] {
		if v > xs[best] {
			best = j + 1
		}
	}
	return best
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot of unequal length vectors")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: axpy of unequal length vectors")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
