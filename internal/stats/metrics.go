package stats

import "sort"

// Accuracy returns the fraction of predictions matching the true labels.
func Accuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("stats: accuracy of unequal length slices")
	}
	if len(pred) == 0 {
		return 0
	}
	hit := 0
	for i, p := range pred {
		if p == truth[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

// Confusion holds binary classification counts for the positive class.
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one prediction/truth pair, treating positive as the
// positive class label.
func (c *Confusion) Observe(pred, truth, positive int) {
	switch {
	case pred == positive && truth == positive:
		c.TP++
	case pred == positive && truth != positive:
		c.FP++
	case pred != positive && truth == positive:
		c.FN++
	default:
		c.TN++
	}
}

// Precision returns TP/(TP+FP), or 0 when no positive predictions exist.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when no positive examples exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// F1Score computes the F1 score of binary predictions against truth for
// the given positive label.
func F1Score(pred, truth []int, positive int) float64 {
	if len(pred) != len(truth) {
		panic("stats: F1 of unequal length slices")
	}
	var c Confusion
	for i := range pred {
		c.Observe(pred[i], truth[i], positive)
	}
	return c.F1()
}

// AUC computes the area under the ROC curve for binary classification,
// given scores for the positive class and true labels (1 = positive).
// Ties in scores are handled by the rank-sum (Mann–Whitney) formulation.
func AUC(scores []float64, truth []int) float64 {
	if len(scores) != len(truth) {
		panic("stats: AUC of unequal length slices")
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Assign average ranks to tied scores.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}

	nPos, nNeg := 0, 0
	rankSum := 0.0
	for i, t := range truth {
		if t == 1 {
			nPos++
			rankSum += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}
