package stats

import (
	"encoding/json"
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// randomFinite draws a float64 uniformly over bit patterns, rejecting
// NaN/Inf — so subnormals, huge magnitudes and both signs all occur.
func randomFinite(rng *rand.Rand) float64 {
	for {
		b := rng.Uint64()
		if (b>>52)&0x7ff != 0x7ff {
			return math.Float64frombits(b)
		}
	}
}

// bigSum computes the exact sum with math/big at a precision wide
// enough (the register is 2176 bits) that no intermediate rounding
// occurs, then rounds once to float64 — the reference ExactSum must hit
// bit-for-bit.
func bigSum(xs []float64) float64 {
	total := new(big.Float).SetPrec(2400).SetMode(big.ToNearestEven)
	for _, x := range xs {
		total.Add(total, new(big.Float).SetPrec(2400).SetFloat64(x))
	}
	v, _ := total.Float64()
	return v
}

func TestExactSumMatchesBigFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(4) {
			case 0: // ordinary magnitudes
				xs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
			case 1: // full-range bit patterns (subnormals, huge values)
				xs[i] = randomFinite(rng)
			case 2: // catastrophic cancellation fodder
				xs[i] = math.Ldexp(1+rng.Float64(), 900)
				if rng.Intn(2) == 0 {
					xs[i] = -xs[i]
				}
			default: // tiny values that naive summation loses
				xs[i] = math.Ldexp(rng.Float64(), -1000)
			}
		}
		s := NewExactSum()
		for _, x := range xs {
			s.Add(x)
		}
		want := bigSum(xs)
		got := s.Value()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: ExactSum = %g (%x), big.Float = %g (%x)",
				trial, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestExactSumOrderAndGroupingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = randomFinite(rng)
	}

	sequential := NewExactSum()
	for _, x := range xs {
		sequential.Add(x)
	}

	shuffled := append([]float64(nil), xs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	reordered := NewExactSum()
	for _, x := range shuffled {
		reordered.Add(x)
	}
	if !sequential.Equal(reordered) {
		t.Fatal("shuffled order changed the accumulator state")
	}

	// Random partition into 4 shards, merged in shard order.
	shards := make([]*ExactSum, 4)
	for i := range shards {
		shards[i] = NewExactSum()
	}
	for _, x := range xs {
		shards[rng.Intn(4)].Add(x)
	}
	merged := NewExactSum()
	for _, sh := range shards {
		merged.Merge(sh)
	}
	if !sequential.Equal(merged) {
		t.Fatal("merge of shard partition differs from sequential accumulation")
	}
	if math.Float64bits(sequential.Value()) != math.Float64bits(merged.Value()) {
		t.Fatalf("values differ: %g vs %g", sequential.Value(), merged.Value())
	}
}

func TestExactSumNaiveSumLosesWhatExactSumKeeps(t *testing.T) {
	// 1 + 1e-18 added 1e4 times: the tiny terms vanish under naive
	// left-to-right addition but must survive exactly here.
	s := NewExactSum()
	naive := 0.0
	s.Add(1)
	naive += 1
	for i := 0; i < 10000; i++ {
		s.Add(1e-18)
		naive += 1e-18
	}
	want := bigSum(append([]float64{1}, repeat(1e-18, 10000)...))
	if got := s.Value(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("ExactSum = %v, want %v", got, want)
	}
	if naive == s.Value() {
		t.Skip("naive summation happened to be exact on this platform")
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestExactSumCancellation(t *testing.T) {
	s := NewExactSum()
	s.Add(math.MaxFloat64)
	s.Add(-math.MaxFloat64)
	s.Add(math.SmallestNonzeroFloat64)
	s.Add(-math.SmallestNonzeroFloat64)
	if !s.IsZero() {
		t.Fatal("exact cancellation should leave a zero register")
	}
	if v := s.Value(); v != 0 || math.Signbit(v) {
		t.Fatalf("Value = %v, want +0", v)
	}
}

func TestExactSumNonfinite(t *testing.T) {
	s := NewExactSum()
	s.Add(1)
	s.Add(math.Inf(1))
	if v := s.Value(); !math.IsInf(v, 1) {
		t.Fatalf("Value = %v, want +Inf", v)
	}
	o := NewExactSum()
	o.Add(math.Inf(-1))
	s.Merge(o)
	if v := s.Value(); !math.IsNaN(v) {
		t.Fatalf("Value = %v, want NaN (+Inf plus -Inf)", v)
	}
	n := NewExactSum()
	n.Add(math.NaN())
	if v := n.Value(); !math.IsNaN(v) {
		t.Fatalf("Value = %v, want NaN", v)
	}
}

func TestExactSumJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		s := NewExactSum()
		for i := 0; i < 50; i++ {
			s.Add(randomFinite(rng))
		}
		buf, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		buf2, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(buf2) {
			t.Fatal("JSON encoding is not deterministic")
		}
		back := NewExactSum()
		if err := json.Unmarshal(buf, back); err != nil {
			t.Fatal(err)
		}
		if !s.Equal(back) {
			t.Fatal("JSON round trip changed the accumulator state")
		}
	}
	// Negative totals use the sign-magnitude form.
	s := NewExactSum()
	s.Add(-123.456)
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back := NewExactSum()
	if err := json.Unmarshal(buf, back); err != nil {
		t.Fatal(err)
	}
	if got := back.Value(); got != -123.456 {
		t.Fatalf("round trip = %v, want -123.456", got)
	}
}
