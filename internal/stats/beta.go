package stats

// beta.go implements the Beta distribution machinery behind the label
// feedback subsystem's Bayesian accuracy assessment (Ji et al., "Active
// Bayesian Assessment for Black-Box Classifiers"): the regularized
// incomplete beta function (CDF), its inverse (quantiles for credible
// intervals), and a deterministic sampler for Thompson sampling. All
// exact conjugate updates live with the callers; this file is pure
// special-function math in the Numerical Recipes style of gammaQ in
// tests.go.

import (
	"math"
	"math/rand"
)

// BetaCDF computes the regularized incomplete beta function
// I_x(a, b) = P(X <= x) for X ~ Beta(a, b), via the Lentz continued
// fraction with the symmetry transform for fast convergence.
func BetaCDF(x, a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic("stats: invalid shape arguments to BetaCDF")
	}
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaContinuedFraction(x, a, b) / a
	}
	return 1 - front*betaContinuedFraction(1-x, b, a)/b
}

// betaContinuedFraction evaluates the continued fraction of the
// incomplete beta function at x (modified Lentz method).
func betaContinuedFraction(x, a, b float64) float64 {
	const itmax = 500
	const eps = 1e-14
	const fpmin = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= itmax; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// BetaQuantile inverts BetaCDF: it returns the x with I_x(a, b) = p,
// by bisection (the CDF is monotone, so 200 halvings pin x to ~1e-61 —
// far below float64 resolution — without the bracket-escape risk of
// Newton steps at extreme shapes).
func BetaQuantile(p, a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic("stats: invalid shape arguments to BetaQuantile")
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		if BetaCDF(mid, a, b) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// BetaInterval returns the equal-tailed credible interval of the given
// level (e.g. 0.95) for Beta(a, b).
func BetaInterval(a, b, level float64) (lo, hi float64) {
	if level <= 0 || level >= 1 {
		panic("stats: credible level out of (0,1)")
	}
	tail := (1 - level) / 2
	return BetaQuantile(tail, a, b), BetaQuantile(1-tail, a, b)
}

// BetaMean returns the mean a/(a+b) of Beta(a, b).
func BetaMean(a, b float64) float64 { return a / (a + b) }

// SampleBeta draws one Beta(a, b) variate from rng as
// Ga/(Ga+Gb) with Ga ~ Gamma(a), Gb ~ Gamma(b). Determinism contract:
// the value consumed from rng depends only on (rng state, a, b), so a
// seeded rng yields a reproducible Thompson-sampling trajectory.
func SampleBeta(rng *rand.Rand, a, b float64) float64 {
	ga := sampleGamma(rng, a)
	gb := sampleGamma(rng, b)
	if ga+gb == 0 {
		return 0.5
	}
	return ga / (ga + gb)
}

// sampleGamma draws Gamma(shape, 1) via Marsaglia–Tsang squeeze for
// shape >= 1 and the standard boost Gamma(shape+1)·U^(1/shape) below 1.
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		panic("stats: invalid shape argument to sampleGamma")
	}
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
