// Package stats implements the statistical substrate for the performance
// prediction system: descriptive statistics and percentiles (the feature
// extractor of Algorithm 1 builds on these), two-sample hypothesis tests
// (Kolmogorov–Smirnov and chi-squared, used by the performance validator
// and by the REL/BBSE/BBSEh baselines), and classification metrics.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles returns the requested percentiles of xs, sorting xs only
// once. It panics on empty input.
func Percentiles(xs []float64, ps []float64) []float64 {
	if len(xs) == 0 {
		panic("stats: percentiles of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// PercentileGrid returns 0, step, 2*step, ..., 100. The paper's output
// featurizer uses step=5 (0th, 5th, ..., 100th percentile).
func PercentileGrid(step float64) []float64 {
	if step <= 0 || step > 100 {
		panic("stats: invalid percentile step")
	}
	var ps []float64
	for p := 0.0; p < 100; p += step {
		ps = append(ps, p)
	}
	return append(ps, 100)
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: MAE of unequal length slices")
	}
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		s += math.Abs(p - truth[i])
	}
	return s / float64(len(pred))
}

// AbsErrors returns the element-wise absolute errors |pred-truth|.
func AbsErrors(pred, truth []float64) []float64 {
	if len(pred) != len(truth) {
		panic("stats: AbsErrors of unequal length slices")
	}
	out := make([]float64, len(pred))
	for i := range pred {
		out[i] = math.Abs(pred[i] - truth[i])
	}
	return out
}
