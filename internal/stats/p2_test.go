package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestP2QuantileMatchesExactOnUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		est := NewP2Quantile(p)
		var all []float64
		for i := 0; i < 20000; i++ {
			v := rng.Float64()
			est.Add(v)
			all = append(all, v)
		}
		exact := Percentile(all, p*100)
		if math.Abs(est.Value()-exact) > 0.01 {
			t.Fatalf("p=%v: P² %v vs exact %v", p, est.Value(), exact)
		}
	}
}

func TestP2QuantileMatchesExactOnGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	est := NewP2Quantile(0.5)
	var all []float64
	for i := 0; i < 20000; i++ {
		v := rng.NormFloat64()*10 + 100
		est.Add(v)
		all = append(all, v)
	}
	exact := Percentile(all, 50)
	if math.Abs(est.Value()-exact) > 0.3 {
		t.Fatalf("median: P² %v vs exact %v", est.Value(), exact)
	}
}

func TestP2QuantileSmallStreams(t *testing.T) {
	est := NewP2Quantile(0.5)
	if est.Value() != 0 {
		t.Fatal("empty estimator should return 0")
	}
	for _, v := range []float64{3, 1, 2} {
		est.Add(v)
	}
	if est.Value() != 2 {
		t.Fatalf("exact small-stream median = %v, want 2", est.Value())
	}
	if est.Count() != 3 {
		t.Fatalf("count = %d", est.Count())
	}
}

func TestP2QuantileBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=0")
		}
	}()
	NewP2Quantile(0)
}

func TestP2QuantileSortedInput(t *testing.T) {
	// Sorted input is the adversarial case for marker algorithms.
	est := NewP2Quantile(0.9)
	n := 10000
	for i := 0; i < n; i++ {
		est.Add(float64(i))
	}
	exact := 0.9 * float64(n-1)
	if math.Abs(est.Value()-exact) > float64(n)*0.02 {
		t.Fatalf("sorted stream: P² %v vs exact %v", est.Value(), exact)
	}
}

func TestP2DigestMatchesPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	grid := PercentileGrid(5)
	digest := NewP2Digest(grid)
	var all []float64
	for i := 0; i < 20000; i++ {
		v := rng.Float64()
		digest.Add(v)
		all = append(all, v)
	}
	exact := Percentiles(all, grid)
	got := digest.Values()
	for i := range grid {
		if math.Abs(got[i]-exact[i]) > 0.015 {
			t.Fatalf("grid %v: digest %v vs exact %v", grid[i], got[i], exact[i])
		}
	}
	// Extremes are exact.
	sort.Float64s(all)
	if got[0] != all[0] || got[len(got)-1] != all[len(all)-1] {
		t.Fatal("digest extremes should be exact min/max")
	}
}

func TestP2DigestEmptyAndCount(t *testing.T) {
	digest := NewP2Digest(PercentileGrid(25))
	for _, v := range digest.Values() {
		if v != 0 {
			t.Fatal("empty digest should return zeros")
		}
	}
	digest.Add(7)
	if digest.Count() != 1 {
		t.Fatal("count wrong")
	}
	for _, v := range digest.Values() {
		if v != 7 {
			t.Fatalf("single-value digest = %v", digest.Values())
		}
	}
}

func TestP2DigestMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		digest := NewP2Digest(PercentileGrid(10))
		for i := 0; i < 500; i++ {
			digest.Add(rng.NormFloat64())
		}
		vals := digest.Values()
		// Interior P² markers are approximate: allow tiny inversions but
		// require global monotone trend within a small tolerance.
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1]-0.25 {
				return false
			}
		}
		return vals[0] <= vals[len(vals)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
