package stats

import "fmt"

// CalibrationBin is one bucket of a reliability diagram.
type CalibrationBin struct {
	// Lo and Hi bound the predicted-probability bucket [Lo, Hi).
	Lo, Hi float64
	// Count is the number of predictions in the bucket.
	Count int
	// MeanPredicted is the average predicted probability in the bucket.
	MeanPredicted float64
	// ObservedRate is the empirical positive rate in the bucket.
	ObservedRate float64
}

// CalibrationCurve bins predicted probabilities against observed binary
// outcomes (1 = positive), producing the reliability diagram used to
// judge whether a probabilistic alarm (e.g. the validator's violation
// probability) can be thresholded meaningfully. Empty buckets are
// omitted.
func CalibrationCurve(predicted []float64, outcomes []int, bins int) []CalibrationBin {
	if len(predicted) != len(outcomes) {
		panic("stats: calibration inputs of unequal length")
	}
	if bins < 1 {
		panic("stats: need at least one calibration bin")
	}
	sums := make([]float64, bins)
	hits := make([]int, bins)
	counts := make([]int, bins)
	for i, p := range predicted {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("stats: predicted probability %v out of [0,1]", p))
		}
		b := int(p * float64(bins))
		if b == bins {
			b = bins - 1
		}
		sums[b] += p
		counts[b]++
		if outcomes[i] == 1 {
			hits[b]++
		}
	}
	var out []CalibrationBin
	width := 1.0 / float64(bins)
	for b := 0; b < bins; b++ {
		if counts[b] == 0 {
			continue
		}
		out = append(out, CalibrationBin{
			Lo:            float64(b) * width,
			Hi:            float64(b+1) * width,
			Count:         counts[b],
			MeanPredicted: sums[b] / float64(counts[b]),
			ObservedRate:  float64(hits[b]) / float64(counts[b]),
		})
	}
	return out
}

// ExpectedCalibrationError summarizes a reliability diagram as the
// count-weighted mean absolute gap between predicted and observed rates.
func ExpectedCalibrationError(curve []CalibrationBin) float64 {
	total := 0
	weighted := 0.0
	for _, bin := range curve {
		total += bin.Count
		gap := bin.MeanPredicted - bin.ObservedRate
		if gap < 0 {
			gap = -gap
		}
		weighted += gap * float64(bin.Count)
	}
	if total == 0 {
		return 0
	}
	return weighted / float64(total)
}
