package stats

import (
	"math"
	"math/rand"
	"testing"
)

// oracleBetaCDF is the closed-form regularized incomplete beta for
// integer shapes: I_x(a, b) = sum_{j=a}^{a+b-1} C(a+b-1, j) x^j (1-x)^(a+b-1-j)
// (the binomial-tail identity). It shares no code with BetaCDF.
func oracleBetaCDF(x float64, a, b int) float64 {
	n := a + b - 1
	sum := 0.0
	for j := a; j <= n; j++ {
		sum += binom(n, j) * math.Pow(x, float64(j)) * math.Pow(1-x, float64(n-j))
	}
	return sum
}

func binom(n, k int) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c *= float64(n-i) / float64(i+1)
	}
	return c
}

func TestBetaCDFAgainstClosedForm(t *testing.T) {
	shapes := [][2]int{{1, 1}, {2, 2}, {1, 5}, {5, 1}, {3, 7}, {20, 5}, {50, 50}, {200, 17}}
	for _, s := range shapes {
		a, b := s[0], s[1]
		for x := 0.01; x < 1; x += 0.07 {
			got := BetaCDF(x, float64(a), float64(b))
			want := oracleBetaCDF(x, a, b)
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("BetaCDF(%v, %d, %d) = %v, closed form %v", x, a, b, got, want)
			}
		}
	}
}

func TestBetaCDFGoldenValues(t *testing.T) {
	cases := []struct {
		x, a, b, want float64
	}{
		{0.5, 1, 1, 0.5},           // uniform
		{0.3, 1, 1, 0.3},           // uniform
		{0.5, 2, 2, 0.5},           // symmetric: 3x^2-2x^3 at 1/2
		{0.25, 2, 2, 0.15625},      // 3(1/16)-2(1/64)
		{0.3, 2, 5, 0.579825},      // 1 - 0.7^6 - 6*0.3*0.7^5
		{0.7, 2, 1, 0.49},          // CDF x^2
		{0.7, 1, 2, 0.91},          // CDF 1-(1-x)^2
		{0.2, 1, 10, 0.8926258176}, // 1-0.8^10
	}
	for _, c := range cases {
		got := BetaCDF(c.x, c.a, c.b)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("BetaCDF(%v, %v, %v) = %.12f, want %.12f", c.x, c.a, c.b, got, c.want)
		}
	}
	if got := BetaCDF(-0.1, 2, 3); got != 0 {
		t.Errorf("BetaCDF below support = %v, want 0", got)
	}
	if got := BetaCDF(1.5, 2, 3); got != 1 {
		t.Errorf("BetaCDF above support = %v, want 1", got)
	}
}

func TestBetaQuantileGoldenIntervals(t *testing.T) {
	// Closed-form quantiles: Beta(1,1) q(p)=p; Beta(2,1) CDF=x^2 so
	// q(p)=sqrt(p); Beta(1,2) CDF=1-(1-x)^2 so q(p)=1-sqrt(1-p);
	// Beta(1,n) CDF=1-(1-x)^n so q(p)=1-(1-p)^(1/n).
	cases := []struct {
		a, b, level    float64
		wantLo, wantHi float64
	}{
		{1, 1, 0.95, 0.025, 0.975},
		{2, 1, 0.95, math.Sqrt(0.025), math.Sqrt(0.975)},
		{1, 2, 0.95, 1 - math.Sqrt(0.975), 1 - math.Sqrt(0.025)},
		{1, 10, 0.90, 1 - math.Pow(0.95, 0.1), 1 - math.Pow(0.05, 0.1)},
		{1, 1, 0.50, 0.25, 0.75},
	}
	for _, c := range cases {
		lo, hi := BetaInterval(c.a, c.b, c.level)
		if math.Abs(lo-c.wantLo) > 1e-9 || math.Abs(hi-c.wantHi) > 1e-9 {
			t.Errorf("BetaInterval(%v,%v,%v) = (%.9f, %.9f), want (%.9f, %.9f)",
				c.a, c.b, c.level, lo, hi, c.wantLo, c.wantHi)
		}
	}
}

func TestBetaQuantileInvertsCDF(t *testing.T) {
	shapes := [][2]float64{{1, 1}, {2, 5}, {37, 4}, {150, 150}, {400, 13}}
	for _, s := range shapes {
		a, b := s[0], s[1]
		for _, p := range []float64{0.001, 0.025, 0.25, 0.5, 0.75, 0.975, 0.999} {
			x := BetaQuantile(p, a, b)
			back := BetaCDF(x, a, b)
			if math.Abs(back-p) > 1e-9 {
				t.Errorf("BetaCDF(BetaQuantile(%v, %v, %v)) = %v", p, a, b, back)
			}
		}
	}
	if BetaQuantile(0, 3, 4) != 0 || BetaQuantile(1, 3, 4) != 1 {
		t.Error("quantile endpoints must be 0 and 1")
	}
}

func TestBetaIntervalShrinksWithEvidence(t *testing.T) {
	// A posterior over accuracy must tighten as labels accumulate:
	// width(1+9n, 1+n) strictly decreases in n for a 90%-accurate stream.
	prev := math.Inf(1)
	for _, n := range []float64{10, 100, 1000, 10000} {
		lo, hi := BetaInterval(1+0.9*n, 1+0.1*n, 0.95)
		if w := hi - lo; w >= prev {
			t.Fatalf("interval width %v did not shrink (prev %v) at n=%v", w, prev, n)
		} else {
			prev = w
		}
		if lo >= 0.9 || hi <= 0.9 {
			t.Fatalf("interval (%v, %v) at n=%v excludes the truth 0.9", lo, hi, n)
		}
	}
}

func TestSampleBetaDeterministicAndCalibrated(t *testing.T) {
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		x, y := SampleBeta(a, 3.5, 2), SampleBeta(b, 3.5, 2)
		if x != y {
			t.Fatalf("draw %d diverged under identical seeds: %v vs %v", i, x, y)
		}
		if x <= 0 || x >= 1 {
			t.Fatalf("draw %d out of (0,1): %v", i, x)
		}
	}
	// Moment check: mean of Beta(8,2) is 0.8.
	rng := rand.New(rand.NewSource(11))
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += SampleBeta(rng, 8, 2)
	}
	if mean := sum / n; math.Abs(mean-0.8) > 0.01 {
		t.Errorf("sample mean %v, want ~0.8", mean)
	}
}
