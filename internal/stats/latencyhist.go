package stats

// latencyhist.go: LatencyHist, the mergeable log-bucketed latency
// histogram behind the serving SLO observatory (DESIGN.md §15). It
// shares the KLL sketch's dyadic bucket grid (bucketIndex/bucketValue:
// kllResolution sub-buckets per power of two, pure functions of the
// value's bits) so the same determinism contract holds: the histogram
// state is a pure function of the observed multiset, Merge is
// associative and commutative, and fleet-merged p99/p999 are bit-equal
// to a single node observing the union stream. Unlike the P² digest it
// replaces on the hot path, nothing in it depends on arrival order —
// the coordinated-omission analysis in open-loop load tests stays
// honest under sharding.
//
// On top of the counts, each bucket carries up to `slots` bounded
// **exemplars** — (latency, X-Request-ID) pairs — so a slow p999
// bucket links straight to `/history` and incident bundles. Exemplar
// retention is itself order-free: a bucket keeps the top-K of its
// exemplars under the total order (value descending, request ID
// ascending). Top-K-of-union truncation is a homomorphism — an
// exemplar outside the top-K of A∪B has K better exemplars that also
// appear in A∪B∪C, so it can never re-enter a later merge — which
// makes exemplar merging associative and commutative too, and the
// canonical JSON form byte-stable across any shard partition.
//
// Input rules: latencies are seconds ≥ 0. NaN inputs are counted but
// excluded; +Inf clamps to math.MaxFloat64; negative values (clock
// weirdness) clamp to 0. The exact sum is carried in an ExactSum
// superaccumulator so fleet mean latency is grouping-invariant.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultExemplarSlots is the per-bucket exemplar bound used when a
// LatencyHist is built with slots <= 0.
const DefaultExemplarSlots = 4

// latencyHistVersion tags the serialized form.
const latencyHistVersion = 1

// Exemplar is one retained (latency, request ID) observation. The
// canonical order — value descending, then request ID ascending — is
// the total order exemplar truncation uses.
type Exemplar struct {
	Value     float64 `json:"v"`
	RequestID string  `json:"id,omitempty"`
}

// exemplarLess reports whether a precedes b in canonical order.
func exemplarLess(a, b Exemplar) bool {
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.RequestID < b.RequestID
}

// latBucket is one histogram cell: a count plus bounded exemplars kept
// in canonical order.
type latBucket struct {
	n  int64
	ex []Exemplar
}

// insertExemplar adds e to the bucket's canonical top-K list, bounded
// by slots. Insertion keeps the list sorted; ties and duplicates are
// legal (the list is a multiset prefix).
func (b *latBucket) insertExemplar(e Exemplar, slots int) {
	if slots <= 0 {
		return
	}
	i := sort.Search(len(b.ex), func(i int) bool { return !exemplarLess(b.ex[i], e) })
	if i >= slots {
		return
	}
	b.ex = append(b.ex, Exemplar{})
	copy(b.ex[i+1:], b.ex[i:])
	b.ex[i] = e
	if len(b.ex) > slots {
		b.ex = b.ex[:slots]
	}
}

// LatencyHist is a deterministic, mergeable log-bucketed latency
// histogram with bounded per-bucket exemplars. The zero value is an
// empty, usable histogram with DefaultExemplarSlots. Not safe for
// concurrent use; callers wrap it in their own lock.
type LatencyHist struct {
	slots    int // exemplar bound per bucket
	count    int64
	nans     int64
	min, max float64
	sum      *ExactSum
	zero     *latBucket           // observations exactly 0 (after clamping)
	pos      map[int32]*latBucket // dyadic bucket index → cell
}

// NewLatencyHist returns an empty histogram keeping at most slots
// exemplars per bucket (DefaultExemplarSlots when slots <= 0).
func NewLatencyHist(slots int) *LatencyHist {
	if slots <= 0 {
		slots = DefaultExemplarSlots
	}
	return &LatencyHist{slots: slots, sum: NewExactSum(), pos: map[int32]*latBucket{}}
}

// lazyInit upgrades a zero-value histogram to a usable one.
func (h *LatencyHist) lazyInit() {
	if h.slots <= 0 {
		h.slots = DefaultExemplarSlots
	}
	if h.sum == nil {
		h.sum = NewExactSum()
	}
	if h.pos == nil {
		h.pos = map[int32]*latBucket{}
	}
}

// normalizeLatency applies the pointwise input rules: NaN is rejected,
// +Inf clamps to MaxFloat64, anything ≤ 0 (including -0 and -Inf)
// clamps to 0.
func normalizeLatency(v float64) (float64, bool) {
	if math.IsNaN(v) {
		return 0, false
	}
	if math.IsInf(v, 1) {
		return math.MaxFloat64, true
	}
	if v <= 0 {
		return 0, true
	}
	return v, true
}

// Observe consumes one latency observation (seconds) with no exemplar.
func (h *LatencyHist) Observe(v float64) { h.ObserveID(v, "") }

// Add implements QuantileEstimator.
func (h *LatencyHist) Add(v float64) { h.ObserveID(v, "") }

// ObserveID consumes one latency observation tagged with a request ID.
// An empty ID records the count without an exemplar.
func (h *LatencyHist) ObserveID(v float64, requestID string) {
	h.lazyInit()
	v, ok := normalizeLatency(v)
	if !ok {
		h.nans++
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum.Add(v)
	b := h.bucketFor(v)
	b.n++
	if requestID != "" {
		b.insertExemplar(Exemplar{Value: v, RequestID: requestID}, h.slots)
	}
}

// bucketFor returns (allocating if needed) the cell for normalized v.
func (h *LatencyHist) bucketFor(v float64) *latBucket {
	if v == 0 {
		if h.zero == nil {
			h.zero = &latBucket{}
		}
		return h.zero
	}
	idx := bucketIndex(v)
	b := h.pos[idx]
	if b == nil {
		b = &latBucket{}
		h.pos[idx] = b
	}
	return b
}

// Count returns the number of (finite) observations consumed.
func (h *LatencyHist) Count() int { return int(h.count) }

// NaNs returns the number of NaN inputs that were dropped.
func (h *LatencyHist) NaNs() int { return int(h.nans) }

// Min returns the exact minimum (0 for an empty histogram).
func (h *LatencyHist) Min() float64 { return h.min }

// Max returns the exact maximum (0 for an empty histogram).
func (h *LatencyHist) Max() float64 { return h.max }

// Sum returns the exact sum of observations.
func (h *LatencyHist) Sum() float64 { return h.sum.Value() }

// Mean returns the mean latency (0 for an empty histogram).
func (h *LatencyHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum.Value() / float64(h.count)
}

// Slots returns the per-bucket exemplar bound.
func (h *LatencyHist) Slots() int { return h.slots }

// Quantile returns the q-quantile estimate using the same rank
// convention as the KLL sketch (k = round(q·(n−1))): bucket midpoints
// inside the range, exact at the extremes. Relative error is bounded
// by the grid resolution (≤ 1/(2·kllResolution) ≈ 0.4%).
func (h *LatencyHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Round(q * float64(h.count-1)))
	if rank == 0 {
		return h.min
	}
	if rank == h.count-1 {
		return h.max
	}
	var c int64
	if h.zero != nil {
		c += h.zero.n
		if c > rank {
			return clampRange(0, h.min, h.max)
		}
	}
	for _, b := range h.sortedCells() {
		c += b.cell.n
		if c > rank {
			return clampRange(bucketValue(b.idx), h.min, h.max)
		}
	}
	return h.max
}

// latCell pairs a bucket index with its cell, for ordered iteration.
type latCell struct {
	idx  int32
	cell *latBucket
}

// sortedCells returns the positive cells ascending by bucket index.
func (h *LatencyHist) sortedCells() []latCell {
	out := make([]latCell, 0, len(h.pos))
	for idx, b := range h.pos {
		out = append(out, latCell{idx, b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
	return out
}

// mergeExemplars folds the canonical lists a and b into the canonical
// top-K of their union.
func mergeExemplars(a, b []Exemplar, slots int) []Exemplar {
	if len(b) == 0 {
		return a
	}
	out := make([]Exemplar, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return exemplarLess(out[i], out[j]) })
	if len(out) > slots {
		out = out[:slots]
	}
	return out
}

// Merge folds o into h. The resulting state — counts, exact sum, and
// exemplars — is bit-identical to a single histogram fed the union
// multiset, whatever the partition. o is not modified. Histograms with
// different exemplar bounds refuse to merge (truncation depth is part
// of the canonical form).
func (h *LatencyHist) Merge(o *LatencyHist) error {
	if o == nil {
		return nil
	}
	h.lazyInit()
	oSlots := o.slots
	if oSlots <= 0 {
		oSlots = DefaultExemplarSlots
	}
	if oSlots != h.slots {
		return fmt.Errorf("stats: latency hist exemplar slots %d != %d", oSlots, h.slots)
	}
	h.nans += o.nans
	if o.count == 0 {
		return nil
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	if o.sum != nil {
		h.sum.Merge(o.sum)
	}
	if o.zero != nil {
		z := h.zero
		if z == nil {
			z = &latBucket{}
			h.zero = z
		}
		z.n += o.zero.n
		z.ex = mergeExemplars(z.ex, o.zero.ex, h.slots)
	}
	for idx, ob := range o.pos {
		b := h.pos[idx]
		if b == nil {
			b = &latBucket{}
			h.pos[idx] = b
		}
		b.n += ob.n
		b.ex = mergeExemplars(b.ex, ob.ex, h.slots)
	}
	return nil
}

// Clone returns a deep copy.
func (h *LatencyHist) Clone() *LatencyHist {
	sum := NewExactSum()
	if h.sum != nil {
		sum = h.sum.Clone()
	}
	c := &LatencyHist{slots: h.slots, count: h.count, nans: h.nans, min: h.min, max: h.max,
		sum: sum, pos: make(map[int32]*latBucket, len(h.pos))}
	if h.zero != nil {
		c.zero = &latBucket{n: h.zero.n, ex: append([]Exemplar(nil), h.zero.ex...)}
	}
	for idx, b := range h.pos {
		c.pos[idx] = &latBucket{n: b.n, ex: append([]Exemplar(nil), b.ex...)}
	}
	return c
}

// TopExemplars returns up to k exemplars across all buckets in
// canonical order (slowest first) — the "these exact requests were
// slow" list for /slo and incident bundles.
func (h *LatencyHist) TopExemplars(k int) []Exemplar {
	if k <= 0 {
		return nil
	}
	var out []Exemplar
	if h.zero != nil {
		out = append(out, h.zero.ex...)
	}
	for _, b := range h.pos {
		out = append(out, b.ex...)
	}
	sort.Slice(out, func(i, j int) bool { return exemplarLess(out[i], out[j]) })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// latBucketJSON is one serialized cell.
type latBucketJSON struct {
	Idx int32      `json:"i"`
	N   int64      `json:"n"`
	Ex  []Exemplar `json:"ex,omitempty"`
}

// latencyHistJSON is the canonical JSON wire form: fixed field order,
// buckets ascending by index, exemplars in canonical order — identical
// states serialize to identical bytes.
type latencyHistJSON struct {
	V       int             `json:"v"`
	Slots   int             `json:"slots"`
	Count   int64           `json:"count"`
	NaNs    int64           `json:"nans,omitempty"`
	Min     float64         `json:"min"`
	Max     float64         `json:"max"`
	Sum     *ExactSum       `json:"sum,omitempty"`
	Zero    *latBucketJSON  `json:"zero,omitempty"`
	Buckets []latBucketJSON `json:"buckets,omitempty"`
}

// MarshalJSON encodes the histogram canonically.
func (h *LatencyHist) MarshalJSON() ([]byte, error) {
	slots := h.slots
	if slots <= 0 {
		slots = DefaultExemplarSlots
	}
	out := latencyHistJSON{V: latencyHistVersion, Slots: slots, Count: h.count, NaNs: h.nans, Min: h.min, Max: h.max}
	if h.sum != nil && !h.sum.IsZero() {
		out.Sum = h.sum
	}
	if h.zero != nil && h.zero.n > 0 {
		out.Zero = &latBucketJSON{Idx: 0, N: h.zero.n, Ex: h.zero.ex}
	}
	for _, c := range h.sortedCells() {
		out.Buckets = append(out.Buckets, latBucketJSON{Idx: c.idx, N: c.cell.n, Ex: c.cell.ex})
	}
	return json.Marshal(out)
}

// validateCell checks one decoded cell against the bucket it claims.
// zero==true means the cell is the zero bucket (values exactly 0).
func validateCell(c latBucketJSON, slots int, zero bool) error {
	if c.N <= 0 {
		return fmt.Errorf("stats: latency hist bucket count %d", c.N)
	}
	if len(c.Ex) > slots {
		return fmt.Errorf("stats: latency hist bucket has %d exemplars for %d slots", len(c.Ex), slots)
	}
	if int64(len(c.Ex)) > c.N {
		return fmt.Errorf("stats: latency hist bucket has %d exemplars for count %d", len(c.Ex), c.N)
	}
	for i, e := range c.Ex {
		v, ok := normalizeLatency(e.Value)
		if !ok || v != e.Value {
			return fmt.Errorf("stats: latency hist exemplar value %v not normalized", e.Value)
		}
		if zero {
			if v != 0 {
				return fmt.Errorf("stats: zero-bucket exemplar value %v", v)
			}
		} else if v == 0 || bucketIndex(v) != c.Idx {
			return fmt.Errorf("stats: exemplar value %v outside bucket %d", v, c.Idx)
		}
		if i > 0 && exemplarLess(e, c.Ex[i-1]) {
			return fmt.Errorf("stats: latency hist exemplars not in canonical order")
		}
	}
	return nil
}

// UnmarshalJSON restores a histogram serialized by MarshalJSON,
// validating structural invariants so malformed federation payloads
// fail loudly.
func (h *LatencyHist) UnmarshalJSON(buf []byte) error {
	var in latencyHistJSON
	if err := json.Unmarshal(buf, &in); err != nil {
		return err
	}
	if in.V != latencyHistVersion {
		return fmt.Errorf("stats: latency hist version %d, want %d", in.V, latencyHistVersion)
	}
	if in.Slots <= 0 {
		return fmt.Errorf("stats: latency hist exemplar slots %d", in.Slots)
	}
	r := NewLatencyHist(in.Slots)
	r.count, r.nans, r.min, r.max = in.Count, in.NaNs, in.Min, in.Max
	if in.Sum != nil {
		r.sum = in.Sum.Clone()
	}
	var total int64
	if in.Zero != nil {
		if err := validateCell(*in.Zero, in.Slots, true); err != nil {
			return err
		}
		r.zero = &latBucket{n: in.Zero.N, ex: append([]Exemplar(nil), in.Zero.Ex...)}
		total += in.Zero.N
	}
	for i, c := range in.Buckets {
		if i > 0 && c.Idx <= in.Buckets[i-1].Idx {
			return fmt.Errorf("stats: latency hist buckets not ascending")
		}
		if err := validateCell(c, in.Slots, false); err != nil {
			return err
		}
		r.pos[c.Idx] = &latBucket{n: c.N, ex: append([]Exemplar(nil), c.Ex...)}
		total += c.N
	}
	if total != in.Count {
		return fmt.Errorf("stats: latency hist bucket counts sum to %d, want %d", total, in.Count)
	}
	*h = *r
	return nil
}
