package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 0, 1, 1}, []int{1, 1, 1, 0}); got != 0.5 {
		t.Fatalf("Accuracy = %v, want 0.5", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestF1PerfectAndWorst(t *testing.T) {
	if got := F1Score([]int{1, 1, 0, 0}, []int{1, 1, 0, 0}, 1); got != 1 {
		t.Fatalf("perfect F1 = %v", got)
	}
	if got := F1Score([]int{0, 0, 1, 1}, []int{1, 1, 0, 0}, 1); got != 0 {
		t.Fatalf("inverted F1 = %v", got)
	}
}

func TestF1KnownValue(t *testing.T) {
	// TP=2, FP=1, FN=1 -> precision 2/3, recall 2/3, F1 = 2/3.
	pred := []int{1, 1, 1, 0, 0}
	truth := []int{1, 1, 0, 1, 0}
	got := F1Score(pred, truth, 1)
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("F1 = %v, want 2/3", got)
	}
}

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Observe(1, 1, 1) // TP
	c.Observe(1, 0, 1) // FP
	c.Observe(0, 1, 1) // FN
	c.Observe(0, 0, 1) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 {
		t.Fatalf("metrics = %v %v %v", c.Precision(), c.Recall(), c.F1())
	}
}

func TestConfusionZeroDivision(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion must yield zero metrics, not NaN")
	}
}

func TestAUCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []int{1, 1, 0, 0}
	if got := AUC(scores, truth); got != 1 {
		t.Fatalf("AUC = %v, want 1", got)
	}
	// Inverted scores give AUC 0.
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, truth); got != 0 {
		t.Fatalf("inverted AUC = %v, want 0", got)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4000
	scores := make([]float64, n)
	truth := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		truth[i] = rng.Intn(2)
	}
	got := AUC(scores, truth)
	if math.Abs(got-0.5) > 0.03 {
		t.Fatalf("random AUC = %v, want ≈0.5", got)
	}
}

func TestAUCTiesAveraged(t *testing.T) {
	// All scores identical: AUC must be exactly 0.5 via rank averaging.
	got := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{1, 0, 1, 0})
	if got != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", got)
	}
}

func TestAUCDegenerateClasses(t *testing.T) {
	if AUC([]float64{0.1, 0.9}, []int{1, 1}) != 0.5 {
		t.Fatal("single-class AUC should be 0.5")
	}
}

func TestAUCInvariantToMonotoneTransform(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		scores := make([]float64, n)
		scaled := make([]float64, n)
		truth := make([]int, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			scaled[i] = 3*scores[i] + 7 // strictly monotone transform
			truth[i] = rng.Intn(2)
		}
		return math.Abs(AUC(scores, truth)-AUC(scaled, truth)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
