package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v, want 5", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("Variance = %v, want 4", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("StdDev = %v, want 2", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestPercentileBasics(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 35 {
		t.Fatalf("P50 = %v", got)
	}
	// interpolated value: rank = 0.25*4 = 1 -> exactly 20
	if got := Percentile(xs, 25); got != 20 {
		t.Fatalf("P25 = %v", got)
	}
	// rank = 0.30*4 = 1.2 -> 20 + 0.2*(35-20) = 23
	if got := Percentile(xs, 30); math.Abs(got-23) > 1e-12 {
		t.Fatalf("P30 = %v, want 23", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentilesMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		ps := PercentileGrid(5)
		vals := Percentiles(xs, ps)
		if len(vals) != 21 {
			return false
		}
		return sort.Float64sAreSorted(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentilesBoundedByExtremes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range Percentiles(xs, PercentileGrid(10)) {
			if v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileGrid(t *testing.T) {
	grid := PercentileGrid(5)
	if len(grid) != 21 || grid[0] != 0 || grid[20] != 100 || grid[1] != 5 {
		t.Fatalf("grid = %v", grid)
	}
	grid = PercentileGrid(25)
	if len(grid) != 5 {
		t.Fatalf("grid(25) = %v", grid)
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMAE(t *testing.T) {
	got := MAE([]float64{1, 2, 3}, []float64{2, 2, 1})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("MAE = %v, want 1", got)
	}
	if MAE(nil, nil) != 0 {
		t.Fatal("empty MAE should be 0")
	}
}

func TestAbsErrors(t *testing.T) {
	got := AbsErrors([]float64{1, 5}, []float64{4, 3})
	if got[0] != 3 || got[1] != 2 {
		t.Fatalf("AbsErrors = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{1, 2, 100}) != 2 {
		t.Fatal("median wrong")
	}
}
