package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSIdenticalSamplesHighP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	res := KolmogorovSmirnov(a, b)
	if res.PValue < 0.01 {
		t.Fatalf("same-distribution samples rejected: D=%v p=%v", res.Statistic, res.PValue)
	}
	if res.Rejected(0.001) {
		t.Fatal("Rejected(0.001) should be false")
	}
}

func TestKSShiftedSamplesLowP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 2
	}
	res := KolmogorovSmirnov(a, b)
	if res.PValue > 1e-6 {
		t.Fatalf("shifted samples not rejected: D=%v p=%v", res.Statistic, res.PValue)
	}
	if !res.Rejected(0.05) {
		t.Fatal("Rejected(0.05) should be true")
	}
}

func TestKSStatisticExact(t *testing.T) {
	// a entirely below b: D must be 1.
	res := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{10, 11, 12})
	if res.Statistic != 1 {
		t.Fatalf("D = %v, want 1", res.Statistic)
	}
	// identical samples: D must be 0, p must be 1.
	res = KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1, 2, 3})
	if res.Statistic != 0 || res.PValue != 1 {
		t.Fatalf("identical samples: D=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestKSEmptySample(t *testing.T) {
	res := KolmogorovSmirnov(nil, []float64{1, 2})
	if res.PValue != 1 {
		t.Fatalf("empty sample should give p=1, got %v", res.PValue)
	}
}

func TestKSPValueInRange(t *testing.T) {
	for lambda := 0.0; lambda < 5; lambda += 0.05 {
		p := ksPValue(lambda)
		if p < 0 || p > 1 {
			t.Fatalf("ksPValue(%v) = %v out of [0,1]", lambda, p)
		}
	}
	// Known reference point: Q(1.36) ≈ 0.049 (the classic 5% critical value).
	if p := ksPValue(1.36); math.Abs(p-0.049) > 0.003 {
		t.Fatalf("ksPValue(1.36) = %v, want ≈0.049", p)
	}
}

func TestChiSquareSameDistribution(t *testing.T) {
	res := ChiSquareCounts([]float64{100, 200, 300}, []float64{105, 195, 298})
	if res.PValue < 0.1 {
		t.Fatalf("similar counts rejected: X2=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestChiSquareDifferentDistribution(t *testing.T) {
	res := ChiSquareCounts([]float64{100, 200, 300}, []float64{300, 200, 100})
	if res.PValue > 1e-6 {
		t.Fatalf("divergent counts not rejected: X2=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestChiSquareZeroCategoriesSkipped(t *testing.T) {
	res := ChiSquareCounts([]float64{0, 50, 50}, []float64{0, 48, 52})
	if math.IsNaN(res.Statistic) || math.IsNaN(res.PValue) {
		t.Fatalf("zero category caused NaN: %+v", res)
	}
}

func TestChiSquarePValueReference(t *testing.T) {
	// Chi-squared with 1 df: P(X >= 3.841) ≈ 0.05.
	if p := ChiSquarePValue(3.841, 1); math.Abs(p-0.05) > 0.002 {
		t.Fatalf("ChiSquarePValue(3.841,1) = %v, want ≈0.05", p)
	}
	// Chi-squared with 5 df: P(X >= 11.070) ≈ 0.05.
	if p := ChiSquarePValue(11.070, 5); math.Abs(p-0.05) > 0.002 {
		t.Fatalf("ChiSquarePValue(11.07,5) = %v, want ≈0.05", p)
	}
	if ChiSquarePValue(0, 3) != 1 {
		t.Fatal("P(X>=0) must be 1")
	}
}

func TestGammaQMonotoneDecreasingInX(t *testing.T) {
	prev := 1.0
	for x := 0.1; x < 20; x += 0.1 {
		q := gammaQ(2.5, x)
		if q > prev+1e-12 {
			t.Fatalf("gammaQ not monotone at x=%v: %v > %v", x, q, prev)
		}
		prev = q
	}
}

func TestBonferroni(t *testing.T) {
	if BonferroniAlpha(0.05, 5) != 0.01 {
		t.Fatal("Bonferroni wrong")
	}
	if BonferroniAlpha(0.05, 0) != 0.05 {
		t.Fatal("Bonferroni with n=0 should return alpha")
	}
}
