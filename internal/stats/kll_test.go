package stats

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// kllBytes returns the canonical binary form, failing the test on error.
func kllBytes(t testing.TB, k *KLL) []byte {
	t.Helper()
	buf, err := k.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestKLLExactBelowCutover(t *testing.T) {
	k := NewKLL()
	for _, v := range []float64{1, 3, 2} {
		k.Add(v)
	}
	if got := k.Quantile(0.5); got != 2 {
		t.Fatalf("p50 of {1,3,2} = %v, want exactly 2", got)
	}
	if k.Quantile(0) != 1 || k.Quantile(1) != 3 {
		t.Fatalf("extremes = %v,%v, want 1,3", k.Quantile(0), k.Quantile(1))
	}
	single := NewKLL()
	single.Add(0.7)
	if got := single.Quantile(0.5); got != 0.7 {
		t.Fatalf("p50 of single sample = %v, want exactly 0.7", got)
	}
	if NewKLL().Quantile(0.5) != 0 {
		t.Fatal("empty sketch should report 0")
	}
}

// kllDistributions mirrors the streaming property test's sweep: the
// sketch must track exact percentiles across shapes, not just uniform.
func kllDistributions(rng *rand.Rand) map[string]func() float64 {
	return map[string]func() float64{
		"uniform":   func() float64 { return rng.Float64() * 100 },
		"normal":    func() float64 { return rng.NormFloat64()*5 + 50 },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64() * 2) },
		"bimodal": func() float64 {
			if rng.Intn(2) == 0 {
				return rng.NormFloat64() + 10
			}
			return rng.NormFloat64() + 1000
		},
		"signed": func() float64 { return rng.NormFloat64() * 1e6 },
		"heavy": func() float64 {
			return math.Copysign(math.Exp(rng.Float64()*20), rng.NormFloat64())
		},
	}
}

func TestKLLQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 5000
	for name, draw := range kllDistributions(rng) {
		k := NewKLL()
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = draw()
			k.Add(xs[i])
		}
		sort.Float64s(xs)
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			rank := int(math.Round(q * float64(n-1)))
			exact := xs[rank]
			got := k.Quantile(q)
			// The dyadic grid guarantees relative error ≤ ~1/(2·res);
			// allow 1.5/res to cover the bucket-midpoint convention.
			tol := math.Abs(exact)*1.5/kllResolution + 1e-12
			if math.Abs(got-exact) > tol {
				t.Errorf("%s q=%v: sketch %v, exact %v (tol %v)", name, q, got, exact, tol)
			}
		}
		if k.Quantile(0) != xs[0] || k.Quantile(1) != xs[n-1] {
			t.Errorf("%s: extremes not exact", name)
		}
	}
}

func TestKLLQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k := NewKLL()
	for i := 0; i < 2000; i++ {
		k.Add(rng.NormFloat64() * 100)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := k.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%v gives %v after %v", q, v, prev)
		}
		prev = v
	}
}

// TestKLLMergeBitEqualUnion pins the heart of the distributed
// determinism contract: merging shard sketches in shard order yields a
// state bit-identical to one sketch fed the union stream — and because
// the state is canonical in the multiset, merge order and merge tree
// shape don't matter either.
func TestKLLMergeBitEqualUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 10, 64, 65, 200, 5000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4))
		}
		union := NewKLL()
		for _, x := range xs {
			union.Add(x)
		}
		want := kllBytes(t, union)
		for _, shards := range []int{1, 2, 3, 5} {
			parts := make([]*KLL, shards)
			for i := range parts {
				parts[i] = NewKLL()
			}
			for i, x := range xs {
				parts[i%shards].Add(x)
			}
			// Merge in shard order.
			merged := NewKLL()
			for _, p := range parts {
				if err := merged.Merge(p); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(kllBytes(t, merged), want) {
				t.Fatalf("n=%d shards=%d: merged state != union state", n, shards)
			}
			// Reversed merge order (commutativity).
			rev := NewKLL()
			for i := shards - 1; i >= 0; i-- {
				if err := rev.Merge(parts[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(kllBytes(t, rev), want) {
				t.Fatalf("n=%d shards=%d: reversed merge differs", n, shards)
			}
			// Tree merge (associativity): merge pairs first.
			if shards >= 3 {
				left := NewKLL()
				left.Merge(parts[0])
				left.Merge(parts[1])
				right := NewKLL()
				for _, p := range parts[2:] {
					right.Merge(p)
				}
				tree := NewKLL()
				tree.Merge(left)
				tree.Merge(right)
				if !bytes.Equal(kllBytes(t, tree), want) {
					t.Fatalf("n=%d shards=%d: tree merge differs", n, shards)
				}
			}
		}
	}
}

func TestKLLMergeDoesNotMutateOperand(t *testing.T) {
	a, b := NewKLL(), NewKLL()
	for i := 0; i < 100; i++ {
		a.Add(float64(i))
		b.Add(float64(i) * 2)
	}
	before := kllBytes(t, b)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(kllBytes(t, b), before) {
		t.Fatal("Merge mutated its operand")
	}
	clone := a.Clone()
	clone.Add(1e9)
	if clone.Count() == a.Count() {
		t.Fatal("Clone shares state with the original")
	}
}

func TestKLLSerializationRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 3, 64, 500} {
		k := NewKLL()
		for i := 0; i < n; i++ {
			k.Add(rng.NormFloat64() * 100)
		}
		k.Add(math.NaN()) // nans must round-trip too

		bin := kllBytes(t, k)
		var fromBin KLL
		if err := fromBin.UnmarshalBinary(bin); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(kllBytes(t, &fromBin), bin) {
			t.Fatalf("n=%d: binary round trip not bit-equal", n)
		}

		js, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		js2, _ := json.Marshal(k)
		if !bytes.Equal(js, js2) {
			t.Fatalf("n=%d: JSON encoding not deterministic", n)
		}
		var fromJSON KLL
		if err := json.Unmarshal(js, &fromJSON); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(kllBytes(t, &fromJSON), bin) {
			t.Fatalf("n=%d: JSON round trip not bit-equal to binary form", n)
		}
	}
}

func TestKLLSerializationRejectsGarbage(t *testing.T) {
	var k KLL
	if err := k.UnmarshalBinary([]byte("nope")); err == nil {
		t.Fatal("bad magic accepted")
	}
	good := NewKLL()
	good.Add(1)
	buf := kllBytes(t, good)
	if err := k.UnmarshalBinary(buf[:len(buf)-3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if err := json.Unmarshal([]byte(`{"v":99,"count":0,"min":0,"max":0}`), &k); err == nil {
		t.Fatal("future version accepted")
	}
	if err := json.Unmarshal([]byte(`{"v":1,"count":3,"min":0,"max":0,"xs":[1]}`), &k); err == nil {
		t.Fatal("inconsistent count accepted")
	}
	if err := json.Unmarshal([]byte(`{"v":1,"count":100,"min":0,"max":1,"bucketed":true,"pos":[[0,5]]}`), &k); err == nil {
		t.Fatal("bucket counts that do not sum to count accepted")
	}
}

func TestKLLSpecialInputs(t *testing.T) {
	k := NewKLL()
	k.Add(math.NaN())
	k.Add(math.Inf(1))
	k.Add(math.Inf(-1))
	k.Add(math.Copysign(0, -1))
	if k.Count() != 3 || k.NaNs() != 1 {
		t.Fatalf("count = %d nans = %d, want 3 and 1", k.Count(), k.NaNs())
	}
	if k.Max() != math.MaxFloat64 || k.Min() != -math.MaxFloat64 {
		t.Fatalf("infinities not clamped: min=%v max=%v", k.Min(), k.Max())
	}
	if math.Signbit(k.Quantile(0.5)) {
		t.Fatal("-0 was not normalized to +0")
	}
}

func TestKLLKSDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b, c := NewKLL(), NewKLL(), NewKLL()
	for i := 0; i < 3000; i++ {
		a.Add(rng.NormFloat64())
		b.Add(rng.NormFloat64())
		c.Add(rng.NormFloat64() + 50) // disjoint support
	}
	if d := KSDistance(a, a); d != 0 {
		t.Fatalf("KS(a,a) = %v, want 0", d)
	}
	if d := KSDistance(a, b); d > 0.08 {
		t.Fatalf("KS of same-distribution samples = %v, want small", d)
	}
	if d := KSDistance(a, c); d != 1 {
		t.Fatalf("KS of disjoint samples = %v, want 1", d)
	}
	if d := KSDistance(a, NewKLL()); d != 0 {
		t.Fatalf("KS vs empty = %v, want 0", d)
	}

	// Bit-equality of the statistic under sharding: KS(merged, ref)
	// must equal KS(union, ref) exactly, since the sketches are.
	shards := []*KLL{NewKLL(), NewKLL(), NewKLL()}
	union := NewKLL()
	for i := 0; i < 2000; i++ {
		v := rng.NormFloat64() * 3
		union.Add(v)
		shards[i%3].Add(v)
	}
	merged := NewKLL()
	for _, s := range shards {
		merged.Merge(s)
	}
	du, dm := KSDistance(union, a), KSDistance(merged, a)
	if math.Float64bits(du) != math.Float64bits(dm) {
		t.Fatalf("KS(union)=%v != KS(merged)=%v", du, dm)
	}
}

func TestP2DigestQuantileAdapter(t *testing.T) {
	d := NewP2Digest([]float64{25, 50, 75})
	for i := 0; i < 100; i++ {
		d.Add(float64(i))
	}
	if d.Quantile(0) != 0 || d.Quantile(1) != 99 {
		t.Fatalf("extremes = %v,%v, want 0,99", d.Quantile(0), d.Quantile(1))
	}
	if p50 := d.Quantile(0.5); p50 < 40 || p50 > 60 {
		t.Fatalf("p50 = %v, want ~49.5", p50)
	}
	if p10 := d.Quantile(0.1); p10 < 0 || p10 > 30 {
		t.Fatalf("p10 (interpolated below the grid) = %v", p10)
	}
	if NewP2Digest([]float64{50}).Quantile(0.5) != 0 {
		t.Fatal("empty digest should report 0")
	}
}

// FuzzKLLMerge is the satellite fuzz target: arbitrary byte streams
// become float64 observations (NaN and ±Inf included), are split across
// a fuzzer-chosen shard count, and the merged sketch must be BIT-EQUAL
// to the union-stream sketch — a stronger property than the rank-error
// bound the ISSUE asks for — while both serializations round-trip
// bit-exactly.
func FuzzKLLMerge(f *testing.F) {
	seed := make([]byte, 0, 64)
	for _, v := range []float64{0, 1, -1, 0.5, math.Pi, 1e300, -1e-300, math.Inf(1), math.NaN()} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		seed = append(seed, b[:]...)
	}
	f.Add(seed, uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, shardByte uint8) {
		shards := 1 + int(shardByte%5)
		union := NewKLL()
		parts := make([]*KLL, shards)
		for i := range parts {
			parts[i] = NewKLL()
		}
		n := 0
		for i := 0; i+8 <= len(data) && n < 4096; i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i : i+8]))
			union.Add(v)
			parts[n%shards].Add(v)
			n++
		}
		merged := NewKLL()
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		want := kllBytes(t, union)
		if !bytes.Equal(kllBytes(t, merged), want) {
			t.Fatal("merged sketch not bit-equal to union-stream sketch")
		}
		if merged.Count() != union.Count() || merged.NaNs() != union.NaNs() {
			t.Fatalf("counts diverged: %d/%d vs %d/%d",
				merged.Count(), merged.NaNs(), union.Count(), union.NaNs())
		}

		// Serialization round-trips bit-equal.
		var back KLL
		if err := back.UnmarshalBinary(want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(kllBytes(t, &back), want) {
			t.Fatal("binary round trip not bit-equal")
		}
		js, err := json.Marshal(union)
		if err != nil {
			t.Fatal(err)
		}
		var fromJSON KLL
		if err := json.Unmarshal(js, &fromJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(kllBytes(t, &fromJSON), want) {
			t.Fatal("JSON round trip not bit-equal")
		}

		// Quantiles stay inside [min,max] and monotone in q.
		if union.Count() > 0 {
			prev := math.Inf(-1)
			for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
				v := union.Quantile(q)
				if v < union.Min() || v > union.Max() {
					t.Fatalf("q=%v estimate %v outside [%v,%v]", q, v, union.Min(), union.Max())
				}
				if v < prev {
					t.Fatalf("quantiles not monotone at q=%v", q)
				}
				prev = v
			}
		}
	})
}

// FuzzKLLRoundTrip aims arbitrary bytes at the two decoders the
// /federate path exposes to the network. Garbage must be rejected with
// an error, never a panic; anything the decoder accepts must re-encode
// to the same canonical bytes (so a scraped sketch re-exported by an
// aggregator-of-aggregators is unchanged) and answer quantile queries
// without panicking.
func FuzzKLLRoundTrip(f *testing.F) {
	k := NewKLL()
	for i := 0; i < 200; i++ {
		k.Add(float64(i) * 1.7)
	}
	wire, err := k.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	js, err := json.Marshal(k)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add(js)
	f.Add([]byte{})
	f.Add([]byte(`{"count":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			t.Skip("decoder behavior is covered by small inputs; keep minimization cheap")
		}
		var fromBin KLL
		if err := fromBin.UnmarshalBinary(data); err == nil {
			out, err := fromBin.MarshalBinary()
			if err != nil {
				t.Fatalf("accepted binary input failed to re-encode: %v", err)
			}
			var again KLL
			if err := again.UnmarshalBinary(out); err != nil {
				t.Fatalf("re-encoded sketch rejected: %v", err)
			}
			if !bytes.Equal(kllBytes(t, &again), out) {
				t.Fatal("binary form not canonical after round trip")
			}
			_ = fromBin.Quantile(0.99)
		}
		var fromJSON KLL
		if err := json.Unmarshal(data, &fromJSON); err == nil {
			out, err := json.Marshal(&fromJSON)
			if err != nil {
				t.Fatalf("accepted JSON input failed to re-encode: %v", err)
			}
			var again KLL
			if err := json.Unmarshal(out, &again); err != nil {
				t.Fatalf("re-encoded JSON rejected: %v", err)
			}
			out2, err := json.Marshal(&again)
			if err != nil || !bytes.Equal(out2, out) {
				t.Fatalf("JSON form not canonical after round trip (err %v)", err)
			}
			_ = fromJSON.Quantile(0.5)
		}
	})
}
