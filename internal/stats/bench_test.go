package stats

import (
	"math/rand"
	"testing"
)

func randomSample(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func BenchmarkKolmogorovSmirnov1k(b *testing.B) {
	x := randomSample(1000, 1)
	y := randomSample(1000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KolmogorovSmirnov(x, y)
	}
}

func BenchmarkPercentiles10k(b *testing.B) {
	xs := randomSample(10000, 1)
	grid := PercentileGrid(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentiles(xs, grid)
	}
}

func BenchmarkChiSquareCounts(b *testing.B) {
	a := []float64{120, 340, 90, 450, 75}
	c := []float64{110, 360, 85, 430, 80}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ChiSquareCounts(a, c)
	}
}

func BenchmarkP2DigestAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := NewP2Digest(PercentileGrid(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(rng.Float64())
	}
}

func BenchmarkAUC(b *testing.B) {
	n := 2000
	scores := randomSample(n, 1)
	truth := make([]int, n)
	rng := rand.New(rand.NewSource(2))
	for i := range truth {
		truth[i] = rng.Intn(2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AUC(scores, truth)
	}
}
