package stats

import (
	"math"
	"sort"
)

// TestResult holds the outcome of a two-sample hypothesis test.
type TestResult struct {
	Statistic float64 // test statistic (KS D or chi-squared X²)
	PValue    float64 // probability of a statistic at least this extreme under H0
}

// Rejected reports whether the test rejects the null hypothesis ("the two
// samples come from the same distribution") at significance level alpha.
func (t TestResult) Rejected(alpha float64) bool { return t.PValue < alpha }

// KolmogorovSmirnov performs a two-sample Kolmogorov–Smirnov test between
// samples a and b and returns the D statistic together with the asymptotic
// p-value. Used on model softmax outputs by the performance validator and
// the BBSE baseline, and on raw numeric columns by the REL baseline.
func KolmogorovSmirnov(a, b []float64) TestResult {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return TestResult{Statistic: 0, PValue: 1}
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	d := 0.0
	i, j := 0, 0
	for i < n && j < m {
		v := as[i]
		if bs[j] < v {
			v = bs[j]
		}
		for i < n && as[i] <= v {
			i++
		}
		for j < m && bs[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/float64(n) - float64(j)/float64(m))
		if diff > d {
			d = diff
		}
	}
	en := math.Sqrt(float64(n) * float64(m) / float64(n+m))
	return TestResult{Statistic: d, PValue: ksPValue((en + 0.12 + 0.11/en) * d)}
}

// ksPValue evaluates the Kolmogorov distribution tail
// Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k² lambda²).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const maxTerms = 101
	sum := 0.0
	sign := 1.0
	l2 := -2 * lambda * lambda
	for k := 1; k < maxTerms; k++ {
		term := sign * math.Exp(l2*float64(k)*float64(k))
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum) {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ChiSquareCounts performs a chi-squared homogeneity test between two sets
// of category counts (e.g. predicted class counts on test vs. serving
// data, as in the BBSEh baseline). Both slices must have the same length;
// categories with zero total count are skipped.
func ChiSquareCounts(observedA, observedB []float64) TestResult {
	if len(observedA) != len(observedB) {
		panic("stats: chi-square count vectors of unequal length")
	}
	totalA, totalB := 0.0, 0.0
	for i := range observedA {
		totalA += observedA[i]
		totalB += observedB[i]
	}
	if totalA == 0 || totalB == 0 {
		return TestResult{Statistic: 0, PValue: 1}
	}
	grand := totalA + totalB
	x2 := 0.0
	df := -1 // (rows-1)*(cols-1) with rows=2: categories-1
	for i := range observedA {
		colTotal := observedA[i] + observedB[i]
		if colTotal == 0 {
			continue
		}
		df++
		expA := totalA * colTotal / grand
		expB := totalB * colTotal / grand
		da := observedA[i] - expA
		db := observedB[i] - expB
		x2 += da * da / expA
		x2 += db * db / expB
	}
	if df < 1 {
		return TestResult{Statistic: 0, PValue: 1}
	}
	return TestResult{Statistic: x2, PValue: ChiSquarePValue(x2, float64(df))}
}

// ChiSquarePValue returns P(X >= x2) for a chi-squared distribution with
// df degrees of freedom, i.e. the regularized upper incomplete gamma
// function Q(df/2, x2/2).
func ChiSquarePValue(x2, df float64) float64 {
	if x2 <= 0 {
		return 1
	}
	return gammaQ(df/2, x2/2)
}

// gammaQ computes the regularized upper incomplete gamma function Q(a, x)
// using the series expansion for x < a+1 and the continued fraction
// otherwise (Numerical Recipes style).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		panic("stats: invalid arguments to gammaQ")
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// BonferroniAlpha returns the per-test significance level that controls
// the family-wise error rate at alpha across n tests.
func BonferroniAlpha(alpha float64, n int) float64 {
	if n <= 0 {
		return alpha
	}
	return alpha / float64(n)
}
