package stats

// kll.go: KLL, the mergeable quantile sketch behind the fleet-scale
// drift timeline. The classic KLL sketch (Karnin, Lang & Liberty 2016)
// compacts level buffers by randomized (or adaptively seeded)
// subsampling, which makes the merged state depend on merge order — a
// non-starter here, because DESIGN.md extends the determinism contract
// to distribution: merge(shard₁..shardₙ) must be BIT-EQUAL to a single
// node observing the union stream. Any lossy compaction scheme whose
// output depends on arrival or merge order breaks that, so this KLL
// keeps the KLL interface (Add/Quantile/Merge, bounded memory,
// guaranteed rank error) on top of a canonical structure: the sketch
// state is a pure function of the observed multiset.
//
// Two regimes:
//
//   - exact (≤ kllCutover samples): a sorted slice of the raw values —
//     tiny windows report exact order statistics, which the timeline
//     tests and dashboards rely on.
//   - bucketed (> kllCutover): counts over a fixed dyadic grid with
//     kllResolution sub-buckets per power of two. The bucket of a value
//     depends only on its bits (Frexp + exact mantissa arithmetic), so
//     bucketize(multiset) is pointwise and order-free, and merging is
//     integer count addition — associative, commutative, and bit-exact.
//
// The price of determinism is a fixed relative resolution instead of
// KLL's distribution-adaptive one: quantiles carry relative error
// ≤ 1/(2·kllResolution) ≈ 0.4% of the value (exact at the extremes,
// which are tracked separately). That is far tighter than the drift
// thresholds consuming these numbers.
//
// NaN inputs are counted but excluded; ±Inf are clamped to
// ±math.MaxFloat64; -0 is normalized to +0. All three rules are
// pointwise, preserving canonicality — and keeping every field JSON-
// representable.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

const (
	// kllResolution is the number of sub-buckets per power of two. It
	// must be a power of two so the mantissa→sub-bucket arithmetic is
	// exact in floating point. 128 gives ≤0.4% relative quantile error.
	kllResolution = 128
	// kllCutover is the largest sample count kept exactly; one sample
	// more and the sketch converts to the bucketed regime.
	kllCutover = 64
	// kllVersion tags the serialized forms.
	kllVersion = 1
)

// QuantileEstimator is the common surface over the repo's two quantile
// substrates: the mergeable KLL sketch (fleet aggregation) and the O(1)
// P² digest (single-stream featurization, kept where bit-compatibility
// with persisted predictor bundles is load-bearing).
type QuantileEstimator interface {
	// Add consumes one observation.
	Add(x float64)
	// Count returns the number of observations consumed.
	Count() int
	// Quantile returns the estimate for q in [0,1] (0 = min, 1 = max).
	Quantile(q float64) float64
}

var (
	_ QuantileEstimator = (*KLL)(nil)
	_ QuantileEstimator = (*P2Digest)(nil)
)

// KLL is a deterministic mergeable quantile sketch. The zero value is
// an empty, usable sketch. Not safe for concurrent use.
type KLL struct {
	count    int64 // finite observations (after clamping/normalizing)
	nans     int64 // NaN inputs, excluded from count
	min, max float64

	// exact regime
	xs []float64 // sorted raw values; nil once bucketed

	// bucketed regime
	bucketed bool
	zero     int64
	neg, pos map[int32]int64 // bucket index (of |v|) → count
}

// NewKLL returns an empty sketch.
func NewKLL() *KLL { return &KLL{} }

// bucketIndex maps a positive finite v to its dyadic bucket. With
// v = f·2^e, f ∈ [0.5,1), the sub-bucket is ⌊(f−0.5)·2·res⌋: f−0.5 is
// exact (Sterbenz), and the scale is a power of two, so the index is a
// pure function of the bits of v on any IEEE-754 platform.
func bucketIndex(v float64) int32 {
	f, e := math.Frexp(v)
	sub := int32((f - 0.5) * (2 * kllResolution))
	return int32(e)*kllResolution + sub
}

// bucketValue returns the canonical representative (geometric midpoint
// of the mantissa range) of a positive bucket index.
func bucketValue(idx int32) float64 {
	e := idx / kllResolution
	sub := idx % kllResolution
	if sub < 0 { // floor division for negative exponents
		sub += kllResolution
		e--
	}
	m := 0.5 + (float64(sub)+0.5)/(2*kllResolution)
	return math.Ldexp(m, int(e))
}

// normalize applies the pointwise input rules shared by Add and the
// serialization validators.
func normalize(x float64) (float64, bool) {
	if math.IsNaN(x) {
		return 0, false
	}
	switch {
	case math.IsInf(x, 1):
		x = math.MaxFloat64
	case math.IsInf(x, -1):
		x = -math.MaxFloat64
	case x == 0:
		x = 0 // collapse -0 to +0
	}
	return x, true
}

// Add consumes one observation.
func (k *KLL) Add(x float64) {
	x, ok := normalize(x)
	if !ok {
		k.nans++
		return
	}
	if k.count == 0 || x < k.min {
		k.min = x
	}
	if k.count == 0 || x > k.max {
		k.max = x
	}
	k.count++
	if !k.bucketed {
		i := sort.SearchFloat64s(k.xs, x)
		k.xs = append(k.xs, 0)
		copy(k.xs[i+1:], k.xs[i:])
		k.xs[i] = x
		if len(k.xs) > kllCutover {
			k.toBuckets()
		}
		return
	}
	k.bucketAdd(x, 1)
}

// toBuckets converts the exact regime to the bucketed one. Bucketizing
// is pointwise, so the result depends only on the multiset, not on
// when the cutover happened.
func (k *KLL) toBuckets() {
	k.bucketed = true
	k.neg = map[int32]int64{}
	k.pos = map[int32]int64{}
	for _, x := range k.xs {
		k.bucketAdd(x, 1)
	}
	k.xs = nil
}

func (k *KLL) bucketAdd(x float64, n int64) {
	switch {
	case x == 0:
		k.zero += n
	case x > 0:
		k.pos[bucketIndex(x)] += n
	default:
		k.neg[bucketIndex(-x)] += n
	}
}

// Count returns the number of (finite) observations consumed.
func (k *KLL) Count() int { return int(k.count) }

// NaNs returns the number of NaN inputs that were dropped.
func (k *KLL) NaNs() int { return int(k.nans) }

// Min returns the exact minimum (0 for an empty sketch).
func (k *KLL) Min() float64 { return k.min }

// Max returns the exact maximum (0 for an empty sketch).
func (k *KLL) Max() float64 { return k.max }

// kllBucket is one (index, count) pair in value order.
type kllBucket struct {
	idx int32
	n   int64
}

// sortedBuckets returns the map's buckets ordered by ascending index.
func sortedBuckets(m map[int32]int64) []kllBucket {
	out := make([]kllBucket, 0, len(m))
	for idx, n := range m {
		out = append(out, kllBucket{idx, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
	return out
}

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Quantile returns the q-quantile estimate for q in [0,1], using the
// rank convention k = round(q·(n−1)). Exact below the cutover; within
// the bucket resolution above it. q=0 and q=1 are always exact.
func (k *KLL) Quantile(q float64) float64 {
	if k.count == 0 {
		return 0
	}
	if q <= 0 {
		return k.min
	}
	if q >= 1 {
		return k.max
	}
	rank := int64(math.Round(q * float64(k.count-1)))
	if !k.bucketed {
		return k.xs[rank]
	}
	if rank == 0 {
		return k.min
	}
	if rank == k.count-1 {
		return k.max
	}
	var c int64
	negs := sortedBuckets(k.neg)
	for i := len(negs) - 1; i >= 0; i-- { // descending |v| index = ascending value
		c += negs[i].n
		if c > rank {
			return clampRange(-bucketValue(negs[i].idx), k.min, k.max)
		}
	}
	c += k.zero
	if c > rank {
		return clampRange(0, k.min, k.max)
	}
	for _, b := range sortedBuckets(k.pos) {
		c += b.n
		if c > rank {
			return clampRange(bucketValue(b.idx), k.min, k.max)
		}
	}
	return k.max
}

// Merge folds o into k. Merging is associative and commutative in the
// strongest sense: the resulting state is bit-identical to a single
// sketch fed the union multiset, whatever the partition. o is not
// modified. The error return exists for wire-level use (it never fires
// for in-process sketches).
func (k *KLL) Merge(o *KLL) error {
	if o == nil {
		return nil
	}
	k.nans += o.nans
	if o.count == 0 {
		return nil
	}
	if k.count == 0 || o.min < k.min {
		k.min = o.min
	}
	if k.count == 0 || o.max > k.max {
		k.max = o.max
	}
	total := k.count + o.count
	if !k.bucketed && !o.bucketed && total <= kllCutover {
		merged := make([]float64, 0, total)
		merged = append(merged, k.xs...)
		merged = append(merged, o.xs...)
		sort.Float64s(merged)
		k.xs = merged
		k.count = total
		return nil
	}
	if !k.bucketed {
		k.toBuckets()
	}
	if o.bucketed {
		k.zero += o.zero
		for idx, n := range o.neg {
			k.neg[idx] += n
		}
		for idx, n := range o.pos {
			k.pos[idx] += n
		}
	} else {
		for _, x := range o.xs {
			k.bucketAdd(x, 1)
		}
	}
	k.count = total
	return nil
}

// Clone returns a deep copy.
func (k *KLL) Clone() *KLL {
	c := &KLL{count: k.count, nans: k.nans, min: k.min, max: k.max, bucketed: k.bucketed, zero: k.zero}
	if k.xs != nil {
		c.xs = append([]float64(nil), k.xs...)
	}
	if k.bucketed {
		c.neg = make(map[int32]int64, len(k.neg))
		for idx, n := range k.neg {
			c.neg[idx] = n
		}
		c.pos = make(map[int32]int64, len(k.pos))
		for idx, n := range k.pos {
			c.pos[idx] = n
		}
	}
	return c
}

// supports returns the sketch's support points (ascending, unique) and
// their counts — the empirical distribution the sketch represents.
func (k *KLL) supports() ([]float64, []int64) {
	if !k.bucketed {
		var vs []float64
		var ns []int64
		for _, x := range k.xs {
			if len(vs) > 0 && vs[len(vs)-1] == x {
				ns[len(ns)-1]++
				continue
			}
			vs = append(vs, x)
			ns = append(ns, 1)
		}
		return vs, ns
	}
	vs := make([]float64, 0, len(k.neg)+len(k.pos)+1)
	ns := make([]int64, 0, cap(vs))
	negs := sortedBuckets(k.neg)
	for i := len(negs) - 1; i >= 0; i-- {
		vs = append(vs, -bucketValue(negs[i].idx))
		ns = append(ns, negs[i].n)
	}
	if k.zero > 0 {
		vs = append(vs, 0)
		ns = append(ns, k.zero)
	}
	for _, b := range sortedBuckets(k.pos) {
		vs = append(vs, bucketValue(b.idx))
		ns = append(ns, b.n)
	}
	return vs, ns
}

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic
// sup|F_a − F_b| between the empirical distributions of two sketches
// (0 when either is empty). Because the sketches are canonical, the
// statistic computed from merged shard sketches is bit-identical to
// the single-node value — the "drift-test sufficient statistics" the
// federation layer ships instead of raw samples.
func KSDistance(a, b *KLL) float64 {
	if a == nil || b == nil || a.count == 0 || b.count == 0 {
		return 0
	}
	va, ca := a.supports()
	vb, cb := b.supports()
	na, nb := float64(a.count), float64(b.count)
	var cumA, cumB int64
	var d float64
	i, j := 0, 0
	for i < len(va) || j < len(vb) {
		var v float64
		switch {
		case j >= len(vb):
			v = va[i]
		case i >= len(va):
			v = vb[j]
		case va[i] <= vb[j]:
			v = va[i]
		default:
			v = vb[j]
		}
		if i < len(va) && va[i] == v {
			cumA += ca[i]
			i++
		}
		if j < len(vb) && vb[j] == v {
			cumB += cb[j]
			j++
		}
		// Divide integer cumulative counts so the CDFs hit 0 and 1
		// exactly instead of drifting through float accumulation.
		if diff := math.Abs(float64(cumA)/na - float64(cumB)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// kllJSON is the canonical JSON wire form: field order is fixed by the
// struct, bucket arrays are ascending by index, so identical sketch
// states serialize to identical bytes.
type kllJSON struct {
	V        int        `json:"v"`
	Count    int64      `json:"count"`
	NaNs     int64      `json:"nans,omitempty"`
	Min      float64    `json:"min"`
	Max      float64    `json:"max"`
	Xs       []float64  `json:"xs,omitempty"`
	Bucketed bool       `json:"bucketed,omitempty"`
	Zero     int64      `json:"zero,omitempty"`
	Neg      [][2]int64 `json:"neg,omitempty"` // [bucket index, count]
	Pos      [][2]int64 `json:"pos,omitempty"`
}

// MarshalJSON encodes the sketch canonically.
func (k *KLL) MarshalJSON() ([]byte, error) {
	out := kllJSON{V: kllVersion, Count: k.count, NaNs: k.nans, Min: k.min, Max: k.max, Bucketed: k.bucketed, Zero: k.zero}
	if !k.bucketed {
		out.Xs = k.xs
	} else {
		for _, b := range sortedBuckets(k.neg) {
			out.Neg = append(out.Neg, [2]int64{int64(b.idx), b.n})
		}
		for _, b := range sortedBuckets(k.pos) {
			out.Pos = append(out.Pos, [2]int64{int64(b.idx), b.n})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a sketch serialized by MarshalJSON, validating
// structural invariants so malformed federation payloads fail loudly.
func (k *KLL) UnmarshalJSON(buf []byte) error {
	var in kllJSON
	if err := json.Unmarshal(buf, &in); err != nil {
		return err
	}
	if in.V != kllVersion {
		return fmt.Errorf("stats: sketch version %d, want %d", in.V, kllVersion)
	}
	r := &KLL{count: in.Count, nans: in.NaNs, min: in.Min, max: in.Max, bucketed: in.Bucketed, zero: in.Zero}
	if !in.Bucketed {
		if int64(len(in.Xs)) != in.Count {
			return fmt.Errorf("stats: exact sketch has %d values for count %d", len(in.Xs), in.Count)
		}
		if !sort.Float64sAreSorted(in.Xs) {
			return fmt.Errorf("stats: exact sketch values not sorted")
		}
		if len(in.Xs) > 0 {
			r.xs = append([]float64(nil), in.Xs...)
		}
	} else {
		r.neg = map[int32]int64{}
		r.pos = map[int32]int64{}
		total := in.Zero
		for _, side := range [][][2]int64{in.Neg, in.Pos} {
			for _, b := range side {
				if b[1] <= 0 || b[0] < math.MinInt32 || b[0] > math.MaxInt32 {
					return fmt.Errorf("stats: invalid sketch bucket %v", b)
				}
				total += b[1]
			}
		}
		if total != in.Count {
			return fmt.Errorf("stats: sketch bucket counts sum to %d, want %d", total, in.Count)
		}
		for _, b := range in.Neg {
			r.neg[int32(b[0])] = b[1]
		}
		for _, b := range in.Pos {
			r.pos[int32(b[0])] = b[1]
		}
	}
	*k = *r
	return nil
}

var kllMagic = [4]byte{'K', 'L', 'S', kllVersion}

// MarshalBinary encodes the sketch in a compact deterministic binary
// form (little-endian, buckets ascending by index).
func (k *KLL) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(kllMagic[:])
	var flags byte
	if k.bucketed {
		flags |= 1
	}
	buf.WriteByte(flags)
	writeU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	writeU64(uint64(k.count))
	writeU64(uint64(k.nans))
	writeU64(math.Float64bits(k.min))
	writeU64(math.Float64bits(k.max))
	if !k.bucketed {
		writeU32(uint32(len(k.xs)))
		for _, x := range k.xs {
			writeU64(math.Float64bits(x))
		}
		return buf.Bytes(), nil
	}
	writeU64(uint64(k.zero))
	for _, m := range []map[int32]int64{k.neg, k.pos} {
		bs := sortedBuckets(m)
		writeU32(uint32(len(bs)))
		for _, b := range bs {
			writeU32(uint32(b.idx))
			writeU64(uint64(b.n))
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (k *KLL) UnmarshalBinary(data []byte) error {
	rd := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(rd, magic[:]); err != nil || magic != kllMagic {
		return fmt.Errorf("stats: bad sketch header")
	}
	flags, err := rd.ReadByte()
	if err != nil {
		return err
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(rd, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(rd, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	r := &KLL{bucketed: flags&1 != 0}
	fields := []*int64{&r.count, &r.nans}
	for _, f := range fields {
		v, err := readU64()
		if err != nil {
			return err
		}
		*f = int64(v)
	}
	for _, f := range []*float64{&r.min, &r.max} {
		v, err := readU64()
		if err != nil {
			return err
		}
		*f = math.Float64frombits(v)
	}
	if !r.bucketed {
		n, err := readU32()
		if err != nil {
			return err
		}
		if int64(n) != r.count || n > kllCutover {
			return fmt.Errorf("stats: exact sketch has %d values for count %d", n, r.count)
		}
		for i := uint32(0); i < n; i++ {
			v, err := readU64()
			if err != nil {
				return err
			}
			r.xs = append(r.xs, math.Float64frombits(v))
		}
		if !sort.Float64sAreSorted(r.xs) {
			return fmt.Errorf("stats: exact sketch values not sorted")
		}
	} else {
		z, err := readU64()
		if err != nil {
			return err
		}
		r.zero = int64(z)
		total := r.zero
		r.neg = map[int32]int64{}
		r.pos = map[int32]int64{}
		for _, m := range []map[int32]int64{r.neg, r.pos} {
			n, err := readU32()
			if err != nil {
				return err
			}
			for i := uint32(0); i < n; i++ {
				idx, err := readU32()
				if err != nil {
					return err
				}
				cnt, err := readU64()
				if err != nil {
					return err
				}
				if int64(cnt) <= 0 {
					return fmt.Errorf("stats: invalid sketch bucket count %d", int64(cnt))
				}
				m[int32(idx)] = int64(cnt)
				total += int64(cnt)
			}
		}
		if total != r.count {
			return fmt.Errorf("stats: sketch bucket counts sum to %d, want %d", total, r.count)
		}
	}
	if rd.Len() != 0 {
		return fmt.Errorf("stats: %d trailing bytes after sketch", rd.Len())
	}
	*k = *r
	return nil
}
