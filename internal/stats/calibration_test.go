package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestCalibrationCurvePerfectlyCalibrated(t *testing.T) {
	// Outcomes drawn exactly from the predicted probabilities.
	rng := rand.New(rand.NewSource(1))
	n := 50000
	predicted := make([]float64, n)
	outcomes := make([]int, n)
	for i := range predicted {
		p := rng.Float64()
		predicted[i] = p
		if rng.Float64() < p {
			outcomes[i] = 1
		}
	}
	curve := CalibrationCurve(predicted, outcomes, 10)
	if len(curve) != 10 {
		t.Fatalf("bins = %d", len(curve))
	}
	if ece := ExpectedCalibrationError(curve); ece > 0.02 {
		t.Fatalf("ECE = %v for perfectly calibrated data", ece)
	}
	for _, bin := range curve {
		if bin.MeanPredicted < bin.Lo || bin.MeanPredicted >= bin.Hi+1e-9 {
			t.Fatalf("bin mean %v outside [%v,%v)", bin.MeanPredicted, bin.Lo, bin.Hi)
		}
	}
}

func TestCalibrationCurveOverconfident(t *testing.T) {
	// Predictions of 0.9 with a true rate of 0.5: ECE ≈ 0.4.
	n := 2000
	predicted := make([]float64, n)
	outcomes := make([]int, n)
	for i := range predicted {
		predicted[i] = 0.9
		outcomes[i] = i % 2
	}
	curve := CalibrationCurve(predicted, outcomes, 10)
	if len(curve) != 1 {
		t.Fatalf("expected one occupied bin, got %d", len(curve))
	}
	if math.Abs(ExpectedCalibrationError(curve)-0.4) > 1e-9 {
		t.Fatalf("ECE = %v, want 0.4", ExpectedCalibrationError(curve))
	}
}

func TestCalibrationCurveEdgeValues(t *testing.T) {
	// p=1.0 must land in the last bin, not out of range.
	curve := CalibrationCurve([]float64{0, 1, 1}, []int{0, 1, 1}, 5)
	if len(curve) != 2 {
		t.Fatalf("bins = %d", len(curve))
	}
	last := curve[len(curve)-1]
	if last.Count != 2 || last.ObservedRate != 1 {
		t.Fatalf("last bin = %+v", last)
	}
}

func TestCalibrationCurvePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length": func() { CalibrationCurve([]float64{0.5}, nil, 5) },
		"bins":   func() { CalibrationCurve([]float64{0.5}, []int{1}, 0) },
		"range":  func() { CalibrationCurve([]float64{1.5}, []int{1}, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestExpectedCalibrationErrorEmpty(t *testing.T) {
	if ExpectedCalibrationError(nil) != 0 {
		t.Fatal("empty curve should have zero ECE")
	}
}
