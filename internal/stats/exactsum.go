package stats

// exactsum.go: an exact, order- and grouping-invariant accumulator for
// float64 sums. Floating-point addition is not associative, so a naive
// running sum depends on arrival order — which breaks the fleet
// determinism contract, where merge(shard₁..shardₙ) must be bit-equal
// to a single node observing the union stream. ExactSum sidesteps the
// problem with a Kulisch-style superaccumulator: every float64 is a
// 53-bit integer scaled by a power of two, so the whole double range
// fits in one 2176-bit fixed-point register (2^-1074 .. 2^1023 plus
// ~77 bits of carry headroom). Integer addition IS associative and
// commutative, so any shard partition, merge tree or arrival order
// yields the same limbs — and Value() rounds the exact total to the
// nearest float64 exactly once.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"strconv"
)

const (
	// sumLimbs is the register width in 64-bit limbs. Bit i of limb j
	// weighs 2^(64j+i-sumBias); 34 limbs span bits -1074..1101, leaving
	// ~2^77 max-magnitude additions before the two's-complement register
	// could wrap.
	sumLimbs = 34
	// sumBias aligns bit 0 of limb 0 with 2^-1074, the smallest
	// subnormal double.
	sumBias = 1074
)

// ExactSum accumulates float64 values exactly. The zero value is
// unusable; call NewExactSum. Not safe for concurrent use.
type ExactSum struct {
	limbs [sumLimbs]uint64 // two's complement fixed-point total
	nan   bool             // saw a NaN input
	pinf  bool             // saw +Inf
	ninf  bool             // saw -Inf
}

// NewExactSum returns an empty accumulator.
func NewExactSum() *ExactSum { return &ExactSum{} }

// Add accumulates one value. Nonfinite inputs set sticky flags that
// dominate Value() (NaN, or +Inf and -Inf together, yield NaN) without
// corrupting the finite total.
func (s *ExactSum) Add(x float64) {
	b := math.Float64bits(x)
	exp := int((b >> 52) & 0x7ff)
	frac := b & (1<<52 - 1)
	neg := b>>63 == 1
	if exp == 0x7ff {
		switch {
		case frac != 0:
			s.nan = true
		case neg:
			s.ninf = true
		default:
			s.pinf = true
		}
		return
	}
	var m uint64
	var e int
	if exp == 0 {
		m, e = frac, -sumBias // subnormal (covers ±0: m == 0)
	} else {
		m, e = frac|1<<52, exp-1075
	}
	if m == 0 {
		return
	}
	p := e + sumBias // bit position of the mantissa's LSB, always >= 0
	limb, off := p>>6, uint(p&63)
	lo := m << off
	var hi uint64
	if off != 0 {
		hi = m >> (64 - off)
	}
	if neg {
		s.subAt(limb, lo, hi)
	} else {
		s.addAt(limb, lo, hi)
	}
}

// addAt adds the 128-bit quantity (hi,lo) at limb i, rippling carries.
func (s *ExactSum) addAt(i int, lo, hi uint64) {
	var c uint64
	s.limbs[i], c = bits.Add64(s.limbs[i], lo, 0)
	if i+1 < sumLimbs {
		s.limbs[i+1], c = bits.Add64(s.limbs[i+1], hi, c)
	}
	for j := i + 2; j < sumLimbs && c != 0; j++ {
		s.limbs[j], c = bits.Add64(s.limbs[j], 0, c)
	}
}

// subAt subtracts the 128-bit quantity (hi,lo) at limb i, rippling
// borrows; the register wraps mod 2^2176, i.e. two's complement.
func (s *ExactSum) subAt(i int, lo, hi uint64) {
	var c uint64
	s.limbs[i], c = bits.Sub64(s.limbs[i], lo, 0)
	if i+1 < sumLimbs {
		s.limbs[i+1], c = bits.Sub64(s.limbs[i+1], hi, c)
	}
	for j := i + 2; j < sumLimbs && c != 0; j++ {
		s.limbs[j], c = bits.Sub64(s.limbs[j], 0, c)
	}
}

// Merge folds another accumulator into s (limbwise integer addition, so
// merging is associative and commutative). o is not modified.
func (s *ExactSum) Merge(o *ExactSum) {
	if o == nil {
		return
	}
	var c uint64
	for i := 0; i < sumLimbs; i++ {
		s.limbs[i], c = bits.Add64(s.limbs[i], o.limbs[i], c)
	}
	s.nan = s.nan || o.nan
	s.pinf = s.pinf || o.pinf
	s.ninf = s.ninf || o.ninf
}

// Clone returns a deep copy.
func (s *ExactSum) Clone() *ExactSum {
	c := *s
	return &c
}

// Equal reports bit-identical accumulator state.
func (s *ExactSum) Equal(o *ExactSum) bool {
	if o == nil {
		return false
	}
	return *s == *o
}

// IsZero reports whether the accumulator holds an exact zero total and
// no nonfinite flags.
func (s *ExactSum) IsZero() bool {
	return *s == ExactSum{}
}

// negative reports the sign of the two's-complement register.
func (s *ExactSum) negative() bool { return s.limbs[sumLimbs-1]>>63 == 1 }

// negateLimbs flips mag to its two's complement (in place).
func negateLimbs(mag *[sumLimbs]uint64) {
	var c uint64 = 1
	for i := 0; i < sumLimbs; i++ {
		mag[i], c = bits.Add64(^mag[i], 0, c)
	}
}

// extractBits reads n (<= 53) bits starting at bit position pos.
func extractBits(mag *[sumLimbs]uint64, pos, n int) uint64 {
	limb, off := pos>>6, uint(pos&63)
	v := mag[limb] >> off
	if off != 0 && limb+1 < sumLimbs {
		v |= mag[limb+1] << (64 - off)
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	return v
}

// anyBitBelow reports whether any bit strictly below pos is set.
func anyBitBelow(mag *[sumLimbs]uint64, pos int) bool {
	if pos <= 0 {
		return false
	}
	limb, off := pos>>6, uint(pos&63)
	for i := 0; i < limb; i++ {
		if mag[i] != 0 {
			return true
		}
	}
	if off == 0 {
		return false
	}
	return mag[limb]&(1<<off-1) != 0
}

// Value rounds the exact total to the nearest float64 (ties to even) —
// the uniquely-determined correctly-rounded sum of every Add so far.
func (s *ExactSum) Value() float64 {
	switch {
	case s.nan || (s.pinf && s.ninf):
		return math.NaN()
	case s.pinf:
		return math.Inf(1)
	case s.ninf:
		return math.Inf(-1)
	}
	mag := s.limbs
	sign := 1.0
	if s.negative() {
		sign = -1
		negateLimbs(&mag)
	}
	h := sumLimbs - 1
	for h >= 0 && mag[h] == 0 {
		h--
	}
	if h < 0 {
		return 0
	}
	top := h*64 + 63 - bits.LeadingZeros64(mag[h]) // highest set bit
	if top <= 52 {
		// At most 53 low bits: the total is an exact (sub)normal.
		return sign * math.Ldexp(float64(mag[0]), -sumBias)
	}
	mant := extractBits(&mag, top-52, 53)
	guard := extractBits(&mag, top-53, 1)
	sticky := anyBitBelow(&mag, top-53)
	if guard == 1 && (sticky || mant&1 == 1) {
		mant++
		if mant == 1<<53 {
			mant = 1 << 52
			top++
		}
	}
	// mant ∈ [2^52, 2^53), exponent top-sumBias-52 >= -1073: normal
	// range, so Ldexp is exact (or overflows to ±Inf, which is the
	// correctly rounded answer).
	return sign * math.Ldexp(float64(mant), top-sumBias-52)
}

// sumLimbJSON is one nonzero limb in the canonical JSON encoding.
type sumLimbJSON struct {
	I int    `json:"i"`
	V string `json:"v"` // hex, no leading zeros
}

// exactSumJSON is the canonical sign-magnitude wire form: identical
// accumulator states always serialize to identical bytes.
type exactSumJSON struct {
	Neg   bool          `json:"neg,omitempty"`
	Limbs []sumLimbJSON `json:"limbs,omitempty"`
	NaN   bool          `json:"nan,omitempty"`
	PInf  bool          `json:"pinf,omitempty"`
	NInf  bool          `json:"ninf,omitempty"`
}

// MarshalJSON encodes the accumulator as sign + sparse magnitude limbs
// (ascending limb index), a canonical deterministic form.
func (s *ExactSum) MarshalJSON() ([]byte, error) {
	out := exactSumJSON{NaN: s.nan, PInf: s.pinf, NInf: s.ninf}
	mag := s.limbs
	if s.negative() {
		out.Neg = true
		negateLimbs(&mag)
	}
	for i, v := range mag {
		if v != 0 {
			out.Limbs = append(out.Limbs, sumLimbJSON{I: i, V: strconv.FormatUint(v, 16)})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores an accumulator serialized by MarshalJSON.
func (s *ExactSum) UnmarshalJSON(buf []byte) error {
	var in exactSumJSON
	if err := json.Unmarshal(buf, &in); err != nil {
		return err
	}
	var mag [sumLimbs]uint64
	for _, l := range in.Limbs {
		if l.I < 0 || l.I >= sumLimbs {
			return fmt.Errorf("stats: exact sum limb index %d out of range", l.I)
		}
		v, err := strconv.ParseUint(l.V, 16, 64)
		if err != nil {
			return fmt.Errorf("stats: exact sum limb %d: %w", l.I, err)
		}
		mag[l.I] = v
	}
	if in.Neg {
		negateLimbs(&mag)
	}
	s.limbs = mag
	s.nan, s.pinf, s.ninf = in.NaN, in.PInf, in.NInf
	return nil
}
