package stats

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// histJSON returns the canonical JSON form, failing the test on error.
func histJSON(t testing.TB, h *LatencyHist) []byte {
	t.Helper()
	buf, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// latencyStream builds a deterministic latency-shaped stream (lognormal
// around ~5ms with a heavy tail) plus request IDs.
func latencyStream(n int, seed int64) ([]float64, []string) {
	rng := rand.New(rand.NewSource(seed))
	vs := make([]float64, n)
	ids := make([]string, n)
	for i := range vs {
		vs[i] = math.Exp(rng.NormFloat64()*1.2 - 5.3)
		if rng.Intn(50) == 0 {
			vs[i] *= 100 // tail outliers exercise the p999 buckets
		}
		ids[i] = fmt.Sprintf("req-%06d", i)
	}
	return vs, ids
}

func TestLatencyHistQuantileAccuracy(t *testing.T) {
	const n = 5000
	vs, _ := latencyStream(n, 42)
	h := NewLatencyHist(0)
	xs := make([]float64, n)
	for i, v := range vs {
		h.Observe(v)
		xs[i] = v
	}
	sort.Float64s(xs)
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(math.Round(q * float64(n-1)))
		exact := xs[rank]
		got := h.Quantile(q)
		tol := math.Abs(exact)*1.5/kllResolution + 1e-12
		if math.Abs(got-exact) > tol {
			t.Errorf("q=%v: hist %v, exact %v (tol %v)", q, got, exact, tol)
		}
	}
	if h.Quantile(0) != xs[0] || h.Quantile(1) != xs[n-1] {
		t.Error("extremes not exact")
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	if math.Abs(h.Mean()-sum/n) > 1e-12*math.Abs(sum/n) {
		t.Errorf("mean = %v, want %v", h.Mean(), sum/n)
	}
}

// TestLatencyHistMergeBitEqualUnion is the determinism suite the ISSUE
// names: across workers {1,2,8} × shards {1,3,5}, merged shard
// histograms (counts, exact sums AND exemplars) must serialize to
// canonical JSON bit-equal to a single histogram fed the union stream.
// Workers feed shards concurrently to prove arrival order inside a
// shard is irrelevant; the value→shard partition itself is fixed so
// every run observes the same multisets.
func TestLatencyHistMergeBitEqualUnion(t *testing.T) {
	const n = 2000
	vs, ids := latencyStream(n, 7)
	union := NewLatencyHist(0)
	for i, v := range vs {
		union.ObserveID(v, ids[i])
	}
	want := histJSON(t, union)

	for _, workers := range []int{1, 2, 8} {
		for _, shards := range []int{1, 3, 5} {
			parts := make([]*LatencyHist, shards)
			locks := make([]sync.Mutex, shards)
			for i := range parts {
				parts[i] = NewLatencyHist(0)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < n; i += workers {
						s := i % shards
						locks[s].Lock()
						parts[s].ObserveID(vs[i], ids[i])
						locks[s].Unlock()
					}
				}(w)
			}
			wg.Wait()

			merged := NewLatencyHist(0)
			for _, p := range parts {
				if err := merged.Merge(p); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(histJSON(t, merged), want) {
				t.Fatalf("workers=%d shards=%d: merged hist != union hist", workers, shards)
			}
			// Reversed merge order (commutativity).
			rev := NewLatencyHist(0)
			for i := shards - 1; i >= 0; i-- {
				if err := rev.Merge(parts[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(histJSON(t, rev), want) {
				t.Fatalf("workers=%d shards=%d: reversed merge differs", workers, shards)
			}
			// Tree merge (associativity).
			if shards >= 3 {
				left := NewLatencyHist(0)
				left.Merge(parts[0])
				left.Merge(parts[1])
				right := NewLatencyHist(0)
				for _, p := range parts[2:] {
					right.Merge(p)
				}
				tree := NewLatencyHist(0)
				tree.Merge(left)
				tree.Merge(right)
				if !bytes.Equal(histJSON(t, tree), want) {
					t.Fatalf("workers=%d shards=%d: tree merge differs", workers, shards)
				}
			}
			// Fleet p99/p999 bit-equal to the union stream.
			for _, q := range []float64{0.5, 0.99, 0.999} {
				if math.Float64bits(merged.Quantile(q)) != math.Float64bits(union.Quantile(q)) {
					t.Fatalf("workers=%d shards=%d: q=%v diverged", workers, shards, q)
				}
			}
		}
	}
}

// TestLatencyHistExemplarBounds drives adversarial streams at the
// exemplar slots: equal values with many distinct IDs (pure tie-break
// pressure), ascending values into one bucket, duplicate IDs, and
// empty IDs. Every bucket must stay within its slot bound and keep
// canonical order.
func TestLatencyHistExemplarBounds(t *testing.T) {
	checkBounds := func(t *testing.T, h *LatencyHist) {
		t.Helper()
		var form latencyHistJSON
		if err := json.Unmarshal(histJSON(t, h), &form); err != nil {
			t.Fatal(err)
		}
		cells := form.Buckets
		if form.Zero != nil {
			cells = append(cells, *form.Zero)
		}
		for _, c := range cells {
			if len(c.Ex) > h.Slots() {
				t.Fatalf("bucket %d holds %d exemplars, slots %d", c.Idx, len(c.Ex), h.Slots())
			}
			for i := 1; i < len(c.Ex); i++ {
				if exemplarLess(c.Ex[i], c.Ex[i-1]) {
					t.Fatalf("bucket %d exemplars out of canonical order", c.Idx)
				}
			}
		}
	}

	t.Run("equal values many ids", func(t *testing.T) {
		h := NewLatencyHist(3)
		for i := 0; i < 1000; i++ {
			h.ObserveID(0.25, fmt.Sprintf("id-%03d", 999-i))
		}
		checkBounds(t, h)
		top := h.TopExemplars(3)
		if len(top) != 3 || top[0].RequestID != "id-000" {
			t.Fatalf("tie-break should keep lowest IDs, got %+v", top)
		}
	})
	t.Run("one hot bucket", func(t *testing.T) {
		h := NewLatencyHist(4)
		for i := 0; i < 500; i++ {
			// All land in the same dyadic bucket: [0.5, 0.5+1/(2*res)).
			h.ObserveID(0.5+float64(i)*1e-9, fmt.Sprintf("r%d", i))
		}
		checkBounds(t, h)
		top := h.TopExemplars(4)
		if len(top) != 4 || top[0].Value < top[3].Value {
			t.Fatalf("top exemplars not slowest-first: %+v", top)
		}
	})
	t.Run("duplicate ids and empties", func(t *testing.T) {
		h := NewLatencyHist(2)
		for i := 0; i < 300; i++ {
			h.ObserveID(float64(i%7)*0.001, "dup")
			h.Observe(float64(i%7) * 0.001)
		}
		checkBounds(t, h)
		if h.Count() != 600 {
			t.Fatalf("count = %d, want 600", h.Count())
		}
	})
	t.Run("zero and negative", func(t *testing.T) {
		h := NewLatencyHist(2)
		for i := 0; i < 50; i++ {
			h.ObserveID(0, fmt.Sprintf("z%d", i))
			h.ObserveID(-1, fmt.Sprintf("n%d", i)) // clock weirdness clamps to 0
		}
		checkBounds(t, h)
		if h.Min() != 0 || h.Max() != 0 || h.Count() != 100 {
			t.Fatalf("min=%v max=%v count=%d", h.Min(), h.Max(), h.Count())
		}
	})
}

func TestLatencyHistMergeRules(t *testing.T) {
	a, b := NewLatencyHist(4), NewLatencyHist(8)
	a.Observe(1)
	b.Observe(2)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different exemplar bounds must fail")
	}
	c := NewLatencyHist(4)
	c.ObserveID(3, "x")
	before := histJSON(t, c)
	if err := a.Merge(c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(histJSON(t, c), before) {
		t.Fatal("Merge mutated its operand")
	}
	clone := a.Clone()
	clone.Observe(9)
	if clone.Count() == a.Count() {
		t.Fatal("Clone shares state with the original")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyHistSpecialInputs(t *testing.T) {
	h := NewLatencyHist(0)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Copysign(0, -1))
	if h.Count() != 2 || h.NaNs() != 1 {
		t.Fatalf("count=%d nans=%d, want 2 and 1", h.Count(), h.NaNs())
	}
	if h.Max() != math.MaxFloat64 {
		t.Fatalf("+Inf not clamped: %v", h.Max())
	}
	if math.Signbit(h.Min()) {
		t.Fatal("-0 not normalized")
	}
	var zero LatencyHist // zero value usable
	zero.ObserveID(0.01, "a")
	if zero.Count() != 1 || zero.Slots() != DefaultExemplarSlots {
		t.Fatalf("zero value: count=%d slots=%d", zero.Count(), zero.Slots())
	}
}

func TestLatencyHistJSONRoundTrip(t *testing.T) {
	vs, ids := latencyStream(700, 3)
	h := NewLatencyHist(2)
	for i, v := range vs {
		h.ObserveID(v, ids[i])
	}
	h.Observe(math.NaN())
	js := histJSON(t, h)
	if !bytes.Equal(js, histJSON(t, h)) {
		t.Fatal("JSON encoding not deterministic")
	}
	var back LatencyHist
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(histJSON(t, &back), js) {
		t.Fatal("round trip not bit-equal")
	}
	if math.Float64bits(back.Sum()) != math.Float64bits(h.Sum()) {
		t.Fatal("exact sum diverged through JSON")
	}
}

func TestLatencyHistJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"future version":    `{"v":9,"slots":4,"count":0,"min":0,"max":0}`,
		"bad slots":         `{"v":1,"slots":0,"count":0,"min":0,"max":0}`,
		"count mismatch":    `{"v":1,"slots":4,"count":5,"min":0,"max":1,"buckets":[{"i":0,"n":1}]}`,
		"unsorted buckets":  `{"v":1,"slots":4,"count":2,"min":0,"max":1,"buckets":[{"i":5,"n":1},{"i":3,"n":1}]}`,
		"excess exemplars":  `{"v":1,"slots":1,"count":3,"min":0.5,"max":0.5,"buckets":[{"i":128,"n":3,"ex":[{"v":0.5,"id":"a"},{"v":0.5,"id":"b"}]}]}`,
		"exemplar mismatch": `{"v":1,"slots":4,"count":1,"min":0.5,"max":0.5,"buckets":[{"i":128,"n":1,"ex":[{"v":99,"id":"a"}]}]}`,
		"unordered ex":      `{"v":1,"slots":4,"count":2,"min":0.5,"max":0.6,"buckets":[{"i":128,"n":2,"ex":[{"v":0.5,"id":"a"},{"v":0.6,"id":"b"}]}]}`,
		"negative count":    `{"v":1,"slots":4,"count":-1,"min":0,"max":0,"buckets":[{"i":1,"n":-1}]}`,
	}
	for name, js := range cases {
		var h LatencyHist
		if err := json.Unmarshal([]byte(js), &h); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// FuzzLatencyHistMerge is the satellite fuzz target wired into `make
// fuzz`: arbitrary bytes become latency observations and request IDs,
// split across a fuzzer-chosen shard count; the merged histogram —
// counts, exact sum, exemplars — must be bit-equal (canonical JSON) to
// the union-stream histogram, and the canonical form must round-trip.
func FuzzLatencyHistMerge(f *testing.F) {
	seed := make([]byte, 0, 64)
	for _, v := range []float64{0, 1e-6, 0.004, 0.25, 1, 17.5, math.Inf(1), math.NaN()} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		seed = append(seed, b[:]...)
	}
	f.Add(seed, uint8(3), uint8(2))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, shardByte, slotByte uint8) {
		shards := 1 + int(shardByte%5)
		slots := 1 + int(slotByte%4)
		union := NewLatencyHist(slots)
		parts := make([]*LatencyHist, shards)
		for i := range parts {
			parts[i] = NewLatencyHist(slots)
		}
		n := 0
		for i := 0; i+8 <= len(data) && n < 4096; i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i : i+8]))
			// Low bits double as the request ID so ties collide often.
			id := fmt.Sprintf("r%d", data[i]%16)
			if data[i]%5 == 0 {
				id = ""
			}
			union.ObserveID(v, id)
			parts[n%shards].ObserveID(v, id)
			n++
		}
		merged := NewLatencyHist(slots)
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		want := histJSON(t, union)
		if !bytes.Equal(histJSON(t, merged), want) {
			t.Fatal("merged hist not bit-equal to union-stream hist")
		}
		var back LatencyHist
		if err := json.Unmarshal(want, &back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(histJSON(t, &back), want) {
			t.Fatal("JSON round trip not canonical")
		}
		if union.Count() > 0 {
			prev := math.Inf(-1)
			for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
				v := union.Quantile(q)
				if v < union.Min() || v > union.Max() || v < prev {
					t.Fatalf("quantile q=%v broken: %v", q, v)
				}
				prev = v
			}
		}
	})
}
