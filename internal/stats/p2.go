package stats

import (
	"fmt"
	"sort"
)

// P2Quantile estimates a single quantile online with the P² algorithm
// (Jain & Chlamtac, 1985): five markers are maintained and adjusted with
// parabolic interpolation, giving O(1) memory per quantile regardless of
// stream length. Used to featurize model-output streams that are too
// large (or too continuous) to buffer and sort.
type P2Quantile struct {
	p       float64
	count   int
	initial []float64  // first five observations
	q       [5]float64 // marker heights
	n       [5]float64 // marker positions (1-based)
	np      [5]float64 // desired marker positions
	dn      [5]float64 // desired position increments
}

// NewP2Quantile returns an estimator for the p-quantile (0 < p < 1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: P2 quantile %v out of (0,1)", p))
	}
	return &P2Quantile{
		p:  p,
		dn: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// Add consumes one observation.
func (e *P2Quantile) Add(x float64) {
	e.count++
	if e.count <= 5 {
		e.initial = append(e.initial, x)
		if e.count == 5 {
			sort.Float64s(e.initial)
			for i := 0; i < 5; i++ {
				e.q[i] = e.initial[i]
				e.n[i] = float64(i + 1)
			}
			e.np = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}

	// Find the cell k such that q[k] <= x < q[k+1], clamping extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}

	// Adjust the interior markers.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qNew := e.parabolic(i, sign)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.n[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic marker update.
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback marker update.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// Count returns the number of observations consumed.
func (e *P2Quantile) Count() int { return e.count }

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact order statistic.
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		sorted := append([]float64(nil), e.initial...)
		sort.Float64s(sorted)
		return percentileSorted(sorted, e.p*100)
	}
	return e.q[2]
}

// P2Digest tracks a whole percentile grid online, one P² estimator per
// interior grid point plus exact min/max for the extremes.
type P2Digest struct {
	grid       []float64 // percentiles in [0,100]
	estimators []*P2Quantile
	min, max   float64
	count      int
}

// NewP2Digest returns a digest for the given percentile grid (values in
// [0,100], e.g. stats.PercentileGrid(5)).
func NewP2Digest(grid []float64) *P2Digest {
	d := &P2Digest{grid: append([]float64(nil), grid...)}
	for _, p := range grid {
		if p <= 0 || p >= 100 {
			d.estimators = append(d.estimators, nil) // served by min/max
			continue
		}
		d.estimators = append(d.estimators, NewP2Quantile(p/100))
	}
	return d
}

// Add consumes one observation.
func (d *P2Digest) Add(x float64) {
	if d.count == 0 || x < d.min {
		d.min = x
	}
	if d.count == 0 || x > d.max {
		d.max = x
	}
	d.count++
	for _, e := range d.estimators {
		if e != nil {
			e.Add(x)
		}
	}
}

// Count returns the number of observations consumed.
func (d *P2Digest) Count() int { return d.count }

// Quantile returns the estimate for q in [0,1] (0 = exact min, 1 =
// exact max), interpolating linearly between the digest's grid points.
// It adapts the digest to the QuantileEstimator interface shared with
// the mergeable KLL sketch.
func (d *P2Digest) Quantile(q float64) float64 {
	if d.count == 0 {
		return 0
	}
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	p := q * 100
	vals := d.Values()
	// Extend the grid with the exact extremes so any p interpolates.
	grid := append([]float64{0}, d.grid...)
	grid = append(grid, 100)
	ext := append([]float64{d.min}, vals...)
	ext = append(ext, d.max)
	for i := 1; i < len(grid); i++ {
		if p > grid[i] {
			continue
		}
		lo, hi := grid[i-1], grid[i]
		if hi == lo {
			return ext[i]
		}
		t := (p - lo) / (hi - lo)
		return ext[i-1] + t*(ext[i]-ext[i-1])
	}
	return d.max
}

// Values returns the current percentile estimates in grid order. For an
// ascending grid the estimates are rectified to be monotone
// non-decreasing: the per-point P² estimators are independent, so early
// in a stream adjacent estimates can cross, which the exact
// (sort-based) percentiles never do. The running max restores the
// invariant without hurting accuracy — each clamped value moves toward
// the true quantile, which is at least the preceding one.
func (d *P2Digest) Values() []float64 {
	out := make([]float64, len(d.grid))
	ascending := true
	for i, p := range d.grid {
		switch {
		case d.count == 0:
			out[i] = 0
		case p <= 0:
			out[i] = d.min
		case p >= 100:
			out[i] = d.max
		default:
			out[i] = d.estimators[i].Value()
		}
		if i > 0 && d.grid[i] < d.grid[i-1] {
			ascending = false
		}
	}
	if ascending {
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1] {
				out[i] = out[i-1]
			}
		}
	}
	return out
}
