// Package data defines the labeled dataset container shared by the whole
// system. A Dataset is either tabular (backed by a frame.DataFrame) or an
// image set (backed by imgdata.Set), always with integer class labels.
// The package also declares Model, the black box contract: the validator
// side of the system only ever calls PredictProba on a Dataset — it never
// sees features, weights or the model's feature map.
package data

import (
	"fmt"
	"math/rand"

	"blackboxval/internal/frame"
	"blackboxval/internal/imgdata"
	"blackboxval/internal/linalg"
)

// Dataset is a labeled dataset. Exactly one of Frame and Images is set.
type Dataset struct {
	Frame   *frame.DataFrame
	Images  *imgdata.Set
	Labels  []int
	Classes []string // class names; Labels index into this slice
}

// Model is the black box classifier contract. Implementations include
// locally trained pipelines (models.Pipeline), AutoML-selected models and
// HTTP-served cloud models (cloud.Client). The returned matrix has one
// row per example and one column per class, rows summing to 1.
type Model interface {
	// PredictProba returns class probabilities for every example in ds.
	PredictProba(ds *Dataset) *linalg.Matrix
	// NumClasses returns the number of classes the model predicts.
	NumClasses() int
}

// Tabular reports whether the dataset is relational.
func (d *Dataset) Tabular() bool { return d.Frame != nil }

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Validate checks the internal consistency of the dataset.
func (d *Dataset) Validate() error {
	if (d.Frame == nil) == (d.Images == nil) {
		return fmt.Errorf("data: dataset must have exactly one of Frame or Images")
	}
	n := 0
	if d.Frame != nil {
		n = d.Frame.NumRows()
	} else {
		n = d.Images.Len()
	}
	if n != len(d.Labels) {
		return fmt.Errorf("data: %d examples but %d labels", n, len(d.Labels))
	}
	for i, y := range d.Labels {
		if y < 0 || y >= len(d.Classes) {
			return fmt.Errorf("data: label %d at row %d out of range [0,%d)", y, i, len(d.Classes))
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Labels:  append([]int(nil), d.Labels...),
		Classes: append([]string(nil), d.Classes...),
	}
	if d.Frame != nil {
		out.Frame = d.Frame.Clone()
	}
	if d.Images != nil {
		out.Images = d.Images.Clone()
	}
	return out
}

// SelectRows returns a new dataset with the given rows, in order.
func (d *Dataset) SelectRows(idx []int) *Dataset {
	out := &Dataset{
		Labels:  make([]int, len(idx)),
		Classes: append([]string(nil), d.Classes...),
	}
	for k, i := range idx {
		out.Labels[k] = d.Labels[i]
	}
	if d.Frame != nil {
		out.Frame = d.Frame.SelectRows(idx)
	}
	if d.Images != nil {
		out.Images = d.Images.SelectRows(idx)
	}
	return out
}

// Split partitions the dataset into two disjoint parts, the first holding
// frac of the (shuffled) rows. This realizes the paper's disjoint
// D_source / D_serving and D_train / D_test partitions.
func (d *Dataset) Split(frac float64, rng *rand.Rand) (*Dataset, *Dataset) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("data: invalid split fraction %v", frac))
	}
	idx := rng.Perm(d.Len())
	cut := int(float64(len(idx)) * frac)
	return d.SelectRows(idx[:cut]), d.SelectRows(idx[cut:])
}

// Sample returns n rows drawn without replacement (or all rows shuffled
// when n >= Len).
func (d *Dataset) Sample(n int, rng *rand.Rand) *Dataset {
	idx := rng.Perm(d.Len())
	if n < len(idx) {
		idx = idx[:n]
	}
	return d.SelectRows(idx)
}

// Balance resamples the dataset so all classes have equal counts (the
// paper balances classes "to make the scores easier to interpret"). It
// downsamples every class to the size of the rarest one.
func (d *Dataset) Balance(rng *rand.Rand) *Dataset {
	byClass := make(map[int][]int)
	for i, y := range d.Labels {
		byClass[y] = append(byClass[y], i)
	}
	minCount := d.Len()
	for _, rows := range byClass {
		if len(rows) < minCount {
			minCount = len(rows)
		}
	}
	var idx []int
	for c := 0; c < len(d.Classes); c++ {
		rows := byClass[c]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		if len(rows) > minCount {
			rows = rows[:minCount]
		}
		idx = append(idx, rows...)
	}
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return d.SelectRows(idx)
}

// ClassCounts returns the number of examples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, len(d.Classes))
	for _, y := range d.Labels {
		counts[y]++
	}
	return counts
}

// Predict returns the argmax class per row of a probability matrix.
func Predict(proba *linalg.Matrix) []int {
	out := make([]int, proba.Rows)
	for i := 0; i < proba.Rows; i++ {
		out[i] = linalg.ArgmaxRow(proba.Row(i))
	}
	return out
}
