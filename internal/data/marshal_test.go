package data

import (
	"encoding/json"
	"math"
	"testing"

	"blackboxval/internal/frame"
	"blackboxval/internal/imgdata"
)

func TestDatasetJSONRoundTripTabular(t *testing.T) {
	ds := tabular(6)
	ds.Frame.Column("x").Num[2] = math.NaN()
	raw, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	var got Dataset
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 6 || len(got.Classes) != 2 {
		t.Fatalf("shape lost: %+v", got)
	}
	if !math.IsNaN(got.Frame.Column("x").Num[2]) {
		t.Fatal("NaN lost")
	}
	if got.Frame.Column("x").Num[1] != 1 {
		t.Fatal("values lost")
	}
}

func TestDatasetJSONRoundTripAllColumnKinds(t *testing.T) {
	f := frame.New().
		AddNumeric("n", []float64{1, 2}).
		AddCategorical("c", []string{"a", ""}).
		AddText("t", []string{"hello world", "foo"})
	ds := &Dataset{Frame: f, Labels: []int{0, 1}, Classes: []string{"x", "y"}}
	raw, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	var got Dataset
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Frame.Column("c").Kind != frame.Categorical || got.Frame.Column("t").Kind != frame.Text {
		t.Fatal("column kinds lost")
	}
	if got.Frame.Column("c").Str[1] != "" {
		t.Fatal("missing categorical lost")
	}
	if got.Frame.Column("t").Str[0] != "hello world" {
		t.Fatal("text lost")
	}
}

func TestDatasetJSONRoundTripImages(t *testing.T) {
	set := imgdata.NewSet(2, 2)
	set.Append([]float64{0.1, 0.2, 0.3, 0.4})
	ds := &Dataset{Images: set, Labels: []int{1}, Classes: []string{"a", "b"}}
	raw, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	var got Dataset
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Images.Width != 2 || got.Images.Pixels[0][3] != 0.4 {
		t.Fatal("images lost")
	}
}

func TestDatasetJSONRejectsInvalid(t *testing.T) {
	var ds Dataset
	// inconsistent label count must fail the embedded Validate
	bad := `{"columns":[{"name":"x","kind":0,"num":[1,2]}],"labels":[0],"classes":["a"]}`
	if err := json.Unmarshal([]byte(bad), &ds); err == nil {
		t.Fatal("inconsistent dataset should fail to unmarshal")
	}
	imgBad := `{"images":[[1,2]],"labels":[0],"classes":["a"]}`
	if err := json.Unmarshal([]byte(imgBad), &ds); err == nil {
		t.Fatal("image dataset without dimensions should fail")
	}
}
