package data

import (
	"encoding/json"
	"fmt"
	"math"

	"blackboxval/internal/frame"
	"blackboxval/internal/imgdata"
)

// JSON serialization of full labeled datasets (the paper publishes
// "serialized datasets" alongside its models). Missing numeric cells are
// encoded as null, since JSON has no NaN.

type columnState struct {
	Name string     `json:"name"`
	Kind frame.Kind `json:"kind"`
	Num  []*float64 `json:"num,omitempty"`
	Str  []string   `json:"str,omitempty"`
}

type datasetState struct {
	Columns []columnState `json:"columns,omitempty"`
	Images  [][]float64   `json:"images,omitempty"`
	Width   int           `json:"width,omitempty"`
	Height  int           `json:"height,omitempty"`
	Labels  []int         `json:"labels"`
	Classes []string      `json:"classes"`
}

// MarshalJSON implements json.Marshaler.
func (d *Dataset) MarshalJSON() ([]byte, error) {
	st := datasetState{Labels: d.Labels, Classes: d.Classes}
	if d.Frame != nil {
		for _, c := range d.Frame.Columns() {
			cs := columnState{Name: c.Name, Kind: c.Kind}
			if c.Kind == frame.Numeric {
				cs.Num = make([]*float64, len(c.Num))
				for i, v := range c.Num {
					if !math.IsNaN(v) {
						v := v
						cs.Num[i] = &v
					}
				}
			} else {
				cs.Str = c.Str
			}
			st.Columns = append(st.Columns, cs)
		}
	}
	if d.Images != nil {
		st.Images = d.Images.Pixels
		st.Width = d.Images.Width
		st.Height = d.Images.Height
	}
	return json.Marshal(st)
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Dataset) UnmarshalJSON(b []byte) error {
	var st datasetState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	d.Labels = st.Labels
	d.Classes = st.Classes
	d.Frame = nil
	d.Images = nil
	if len(st.Columns) > 0 {
		f := frame.New()
		for _, cs := range st.Columns {
			switch cs.Kind {
			case frame.Numeric:
				num := make([]float64, len(cs.Num))
				for i, v := range cs.Num {
					if v == nil {
						num[i] = math.NaN()
					} else {
						num[i] = *v
					}
				}
				f.AddNumeric(cs.Name, num)
			case frame.Categorical:
				f.AddCategorical(cs.Name, cs.Str)
			case frame.Text:
				f.AddText(cs.Name, cs.Str)
			default:
				return fmt.Errorf("data: unknown column kind %v", cs.Kind)
			}
		}
		d.Frame = f
	}
	if len(st.Images) > 0 {
		if st.Width <= 0 || st.Height <= 0 {
			return fmt.Errorf("data: image dataset lacks dimensions")
		}
		set := imgdata.NewSet(st.Width, st.Height)
		for _, px := range st.Images {
			set.Append(px)
		}
		d.Images = set
	}
	return d.Validate()
}
