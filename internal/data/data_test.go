package data

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blackboxval/internal/frame"
	"blackboxval/internal/imgdata"
	"blackboxval/internal/linalg"
)

func tabular(n int) *Dataset {
	x := make([]float64, n)
	labels := make([]int, n)
	for i := range x {
		x[i] = float64(i)
		labels[i] = i % 2
	}
	return &Dataset{
		Frame:   frame.New().AddNumeric("x", x),
		Labels:  labels,
		Classes: []string{"no", "yes"},
	}
}

func TestValidate(t *testing.T) {
	d := tabular(4)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dataset{Labels: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("dataset without frame or images should fail validation")
	}
	d2 := tabular(4)
	d2.Labels = []int{0, 1}
	if err := d2.Validate(); err == nil {
		t.Fatal("label count mismatch should fail validation")
	}
	d3 := tabular(2)
	d3.Labels[0] = 7
	if err := d3.Validate(); err == nil {
		t.Fatal("out-of-range label should fail validation")
	}
	both := tabular(1)
	both.Images = imgdata.NewSet(2, 2)
	if err := both.Validate(); err == nil {
		t.Fatal("dataset with both frame and images should fail validation")
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := tabular(40)
		a, b := d.Split(0.7, rng)
		if a.Len()+b.Len() != 40 || a.Len() != 28 {
			return false
		}
		seen := map[float64]int{}
		for _, v := range a.Frame.Column("x").Num {
			seen[v]++
		}
		for _, v := range b.Frame.Column("x").Num {
			seen[v]++
		}
		// Every original row appears exactly once across the two halves.
		if len(seen) != 40 {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	d := tabular(20)
	s := d.Sample(5, rand.New(rand.NewSource(1)))
	if s.Len() != 5 {
		t.Fatalf("sample size = %d", s.Len())
	}
	seen := map[float64]bool{}
	for _, v := range s.Frame.Column("x").Num {
		if seen[v] {
			t.Fatal("sample contains duplicates")
		}
		seen[v] = true
	}
	// Oversampling returns all rows.
	if d.Sample(100, rand.New(rand.NewSource(1))).Len() != 20 {
		t.Fatal("oversample should cap at dataset size")
	}
}

func TestBalanceEqualizesClasses(t *testing.T) {
	n := 30
	x := make([]float64, n)
	labels := make([]int, n)
	for i := range labels {
		if i < 25 {
			labels[i] = 0
		} else {
			labels[i] = 1
		}
	}
	d := &Dataset{
		Frame:   frame.New().AddNumeric("x", x),
		Labels:  labels,
		Classes: []string{"a", "b"},
	}
	b := d.Balance(rand.New(rand.NewSource(1)))
	counts := b.ClassCounts()
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("balanced counts = %v", counts)
	}
}

func TestCloneAndSelectRows(t *testing.T) {
	d := tabular(5)
	c := d.Clone()
	c.Labels[0] = 1
	c.Frame.Column("x").Num[0] = -1
	if d.Labels[0] != 0 || d.Frame.Column("x").Num[0] != 0 {
		t.Fatal("clone aliases original")
	}
	s := d.SelectRows([]int{4, 0})
	if s.Len() != 2 || s.Frame.Column("x").Num[0] != 4 || s.Labels[1] != 0 {
		t.Fatal("SelectRows wrong")
	}
}

func TestImageDatasetSelect(t *testing.T) {
	set := imgdata.NewSet(2, 2)
	set.Append([]float64{1, 1, 1, 1})
	set.Append([]float64{0, 0, 0, 0})
	d := &Dataset{Images: set, Labels: []int{0, 1}, Classes: []string{"bright", "dark"}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Tabular() {
		t.Fatal("image dataset should not be tabular")
	}
	s := d.SelectRows([]int{1})
	if s.Images.Pixels[0][0] != 0 || s.Labels[0] != 1 {
		t.Fatal("image SelectRows wrong")
	}
}

func TestPredictArgmax(t *testing.T) {
	proba := linalg.FromRows([][]float64{{0.9, 0.1}, {0.2, 0.8}, {0.5, 0.5}})
	got := Predict(proba)
	if got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestClassCounts(t *testing.T) {
	d := tabular(5)
	counts := d.ClassCounts()
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}
