// Package report renders experiment results as GitHub-flavored markdown,
// so `ppm-bench -format markdown` regenerates EXPERIMENTS.md-style
// sections directly from a run.
package report

import (
	"fmt"
	"strings"

	"blackboxval/internal/experiments"
	"blackboxval/internal/obs/incident"
)

// Markdown renders any experiment result type as a markdown section.
// Incident bundles render here too, so ppm-diagnose shares the
// experiment pipeline's entry point.
func Markdown(result any) (string, error) {
	switch r := result.(type) {
	case *incident.Bundle:
		return r.Markdown(), nil
	case *experiments.Figure2Result:
		return figure2(r), nil
	case *experiments.Figure3Result:
		return figure3(r), nil
	case *experiments.Figure4Result:
		return figure4(r), nil
	case *experiments.ValidationResult:
		return validation(r), nil
	case *experiments.Figure6Result:
		return figure6(r), nil
	case *experiments.Figure7Result:
		return figure7(r), nil
	case *experiments.GenMatrixResult:
		return genMatrix(r), nil
	case *experiments.AblationResult:
		return ablation(r), nil
	case *experiments.StabilityResult:
		return stability(r), nil
	case *experiments.PipelineResult:
		return pipeline(r), nil
	case *experiments.TimelineResult:
		return timeline(r), nil
	case *experiments.ServingResult:
		return serving(r), nil
	case *experiments.TSDBResult:
		return tsdbReport(r), nil
	default:
		return "", fmt.Errorf("report: no markdown renderer for %T", result)
	}
}

// table renders a markdown table from a header and rows.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(header, " | ") + " |\n")
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

func figure2(r *experiments.Figure2Result) string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset, row.Model, f3(row.TestScore),
			f4(row.P25), f4(row.MedianAE), f4(row.P75),
		})
	}
	return fmt.Sprintf("### Figure 2(%s) — absolute error of score prediction, known errors\n\n%s",
		r.Panel, table([]string{"dataset", "model", "test score", "p25", "median AE", "p75"}, rows))
}

func figure3(r *experiments.Figure3Result) string {
	var rows [][]string
	series := func(name string, points []experiments.Figure3Point) {
		for _, p := range points {
			rows = append(rows, []string{
				name, fmt.Sprintf("%.2f", p.Fraction), f4(p.P5), f4(p.Median), f4(p.P95),
			})
		}
	}
	series("linear", r.Linear)
	series("nonlinear", r.Nonlinear)
	return "### Figure 3 — prediction error vs. fraction of unknown error types\n\n" +
		table([]string{"series", "fraction", "p5", "median", "p95"}, rows)
}

func figure4(r *experiments.Figure4Result) string {
	var b strings.Builder
	b.WriteString("### Figure 4 — sensitivity to the held-out sample size\n\n")
	for _, s := range r.Series {
		var rows [][]string
		for _, p := range s.Points {
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.TestSize), f4(p.P10), f4(p.MAE), f4(p.P90),
			})
		}
		fmt.Fprintf(&b, "**%s in %s (%s)**\n\n%s\n", s.Error, s.Dataset, s.Model,
			table([]string{"|Dtest|", "p10", "MAE", "p90"}, rows))
	}
	return b.String()
}

func validation(r *experiments.ValidationResult) string {
	title := "### §6.2.1 — validation F1, mixtures of known errors"
	if r.Mode == "unknown" {
		title = "### Figure 5 — validation F1 under unknown shifts and errors"
	}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset, row.Model, fmt.Sprintf("%.2f", row.Threshold),
			f3(row.F1["PPM"]), f3(row.F1["BBSE"]), f3(row.F1["BBSE-h"]), f3(row.F1["REL"]),
			fmt.Sprintf("%d/%d", row.Violations, row.Trials),
		})
	}
	wins := r.WinsByMethod()
	return fmt.Sprintf("%s\n\n%s\nWins by method: PPM %d, BBSE %d, BBSE-h %d, REL %d.\n",
		title,
		table([]string{"dataset", "model", "t", "PPM", "BBSE", "BBSE-h", "REL", "violations"}, rows),
		wins["PPM"], wins["BBSE"], wins["BBSE-h"], wins["REL"])
}

func figure6(r *experiments.Figure6Result) string {
	var rows [][]string
	for _, row := range r.Rows {
		rel := f3(row.F1["REL"])
		if !row.RELApplicable {
			rel = "n/a"
		}
		rows = append(rows, []string{
			row.System, row.Dataset, fmt.Sprintf("%.2f", row.Threshold),
			f3(row.F1["PPM"]), f3(row.F1["BBSE"]), f3(row.F1["BBSE-h"]), rel,
		})
	}
	return "### Figure 6 — validation F1 for AutoML-trained black boxes\n\n" +
		table([]string{"system", "dataset", "t", "PPM", "BBSE", "BBSE-h", "REL"}, rows)
}

func figure7(r *experiments.Figure7Result) string {
	var b strings.Builder
	b.WriteString("### Figure 7 — cloud-hosted black box over HTTP\n\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "**%s** — MAE %.4f (paper: income 0.0038, heart 0.0101)\n\n", s.Dataset, s.MAE)
		var rows [][]string
		for _, p := range s.Points {
			rows = append(rows, []string{f4(p.TrueScore), f4(p.PredictedScore)})
		}
		b.WriteString(table([]string{"true accuracy", "predicted"}, rows))
		b.WriteString("\n")
	}
	return b.String()
}

func genMatrix(r *experiments.GenMatrixResult) string {
	var rows [][]string
	for _, row := range r.Rows {
		known := "yes"
		if !row.Known {
			known = "no"
		}
		rows = append(rows, []string{row.Error, known, f4(row.MedianAE), f4(row.P90)})
	}
	return fmt.Sprintf("### Error-type generalization matrix (%s on %s)\n\n%s",
		r.Model, r.Dataset,
		table([]string{"error type", "in training set", "median AE", "p90"}, rows))
}

func stability(r *experiments.StabilityResult) string {
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{c.Dataset, c.Model, f4(c.Mean), f4(c.Std)})
	}
	return fmt.Sprintf("### Seed stability of the Figure 2 median AE (%d seeds)\n\n%s",
		len(r.Seeds), table([]string{"dataset", "model", "mean median AE", "std"}, rows))
}

func ablation(r *experiments.AblationResult) string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Variant, f4(row.MAE), f4(row.P90)})
	}
	return fmt.Sprintf("### Ablation — %s\n\n%s", r.Study,
		table([]string{"variant", "MAE", "p90"}, rows))
}

func pipeline(r *experiments.PipelineResult) string {
	var rows [][]string
	for _, st := range r.Stages {
		pct := 0.0
		if r.TotalSeconds > 0 {
			pct = 100 * st.Seconds / r.TotalSeconds
		}
		rows = append(rows, []string{st.Path, f3(st.Seconds), fmt.Sprintf("%.1f%%", pct)})
	}
	return fmt.Sprintf("### Pipeline benchmark (scale=%s, dataset=%s, model=%s, workers=%d)\n\n%s\nTotal %.3fs, %d rows scored, %.0f rows/sec.\n",
		r.Scale, r.Dataset, r.Model, r.Workers,
		table([]string{"stage", "seconds", "share"}, rows),
		r.TotalSeconds, r.RowsScored, r.RowsPerSec)
}

func serving(r *experiments.ServingResult) string {
	var rows [][]string
	for _, s := range r.Stages {
		rows = append(rows, []string{
			s.Stage, fmt.Sprintf("%d", s.Count),
			f3(s.P50Ms), f3(s.P99Ms), f3(s.P999Ms), f3(s.MaxMs),
		})
	}
	return fmt.Sprintf("### Serving SLO benchmark (scale=%s, %s/%s, %d batches x %d rows)\n\n%s\nThroughput %.0f req/sec (%.0f rows/sec); %d allocs/op, %d B/op client-visible, %.0f server alloc bytes/req; budget %.0fms target %.2f, %d over budget.\n",
		r.Scale, r.Dataset, r.Model, r.Batches, r.RowsPerBatch,
		table([]string{"stage", "count", "p50 ms", "p99 ms", "p999 ms", "max ms"}, rows),
		r.RequestsPerSec, r.RowsPerSec, r.AllocsPerOp, r.BytesPerOp, r.ServerAllocBytesPerReq,
		r.BudgetSeconds*1e3, r.Target, r.OverBudget)
}

func timeline(r *experiments.TimelineResult) string {
	rows := [][]string{
		{"ingest batches/sec", fmt.Sprintf("%.0f", r.BatchesPerSec)},
		{"ingest windows/sec", fmt.Sprintf("%.0f", r.WindowsPerSec)},
		{"render mean ms", f3(r.RenderMeanMs)},
		{"render max ms", f3(r.RenderMaxMs)},
		{"render bytes", fmt.Sprintf("%d", r.RenderBytes)},
	}
	return fmt.Sprintf("### Timeline benchmark (scale=%s, %d batches x %d series, window=%d, capacity=%d)\n\n%s",
		r.Scale, r.Batches, r.SeriesPerBatch, r.WindowBatches, r.Capacity,
		table([]string{"metric", "value"}, rows))
}

func tsdbReport(r *experiments.TSDBResult) string {
	det := "yes"
	if !r.CompactionDeterministic {
		det = "NO (regression)"
	}
	rows := [][]string{
		{"append windows/sec", fmt.Sprintf("%.0f", r.AppendWindowsPerSec)},
		{"segments / bytes on disk", fmt.Sprintf("%d / %d", r.Segments, r.BytesOnDisk)},
		{"cold decode+re-aggregate windows/sec", fmt.Sprintf("%.0f", r.DecodeWindowsPerSec)},
		{"query p50 ms", f3(r.QueryP50Ms)},
		{"query p99 ms", f3(r.QueryP99Ms)},
		{"compaction deterministic (eager vs lazy)", det},
	}
	return fmt.Sprintf("### TSDB benchmark (scale=%s, %d windows x %d series, %d queries)\n\n%s",
		r.Scale, r.Windows, r.SeriesPerWindow, r.Queries,
		table([]string{"metric", "value"}, rows))
}
