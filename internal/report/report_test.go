package report

import (
	"strings"
	"testing"

	"blackboxval/internal/experiments"
)

func TestFigure2Markdown(t *testing.T) {
	r := &experiments.Figure2Result{
		Panel: "a",
		Rows: []experiments.Figure2Row{
			{Dataset: "income", Model: "lr", TestScore: 0.8, P25: 0.004, MedianAE: 0.01, P75: 0.02},
		},
	}
	md, err := Markdown(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 2(a)", "| income | lr | 0.800 |", "| dataset |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFigure3Markdown(t *testing.T) {
	r := &experiments.Figure3Result{
		Linear:    []experiments.Figure3Point{{Fraction: 0.5, Median: 0.02, P5: 0.001, P95: 0.1}},
		Nonlinear: []experiments.Figure3Point{{Fraction: 0.5, Median: 0.015, P5: 0.001, P95: 0.05}},
	}
	md, err := Markdown(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "| linear | 0.50 |") || !strings.Contains(md, "| nonlinear | 0.50 |") {
		t.Fatalf("markdown missing series rows:\n%s", md)
	}
}

func TestValidationMarkdownModes(t *testing.T) {
	base := experiments.ValidationRow{
		Dataset: "bank", Model: "xgb", Threshold: 0.05,
		F1:         map[string]float64{"PPM": 0.9, "BBSE": 0.8, "BBSE-h": 0.7, "REL": 0.6},
		Violations: 10, Trials: 40,
	}
	known := &experiments.ValidationResult{Mode: "known", Rows: []experiments.ValidationRow{base}}
	md, err := Markdown(known)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "§6.2.1") || !strings.Contains(md, "Wins by method: PPM 1") {
		t.Fatalf("known-mode markdown wrong:\n%s", md)
	}
	unknown := &experiments.ValidationResult{Mode: "unknown", Rows: []experiments.ValidationRow{base}}
	md, err = Markdown(unknown)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "Figure 5") {
		t.Fatalf("unknown-mode markdown wrong:\n%s", md)
	}
}

func TestFigure6MarkdownRELNa(t *testing.T) {
	r := &experiments.Figure6Result{Rows: []experiments.Figure6Row{
		{System: "auto-keras", Dataset: "digits", Threshold: 0.05,
			F1: map[string]float64{"PPM": 0.8, "BBSE": 0.7, "BBSE-h": 0.75}, RELApplicable: false},
	}}
	md, err := Markdown(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "| n/a |") {
		t.Fatalf("REL should render n/a on images:\n%s", md)
	}
}

func TestFigure7AndFigure4AndGenMatrixAndAblation(t *testing.T) {
	f7 := &experiments.Figure7Result{Series: []experiments.Figure7Series{
		{Dataset: "income", MAE: 0.018, Points: []experiments.Figure7Point{{TrueScore: 0.8, PredictedScore: 0.79}}},
	}}
	md, err := Markdown(f7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "MAE 0.0180") {
		t.Fatalf("figure 7 markdown wrong:\n%s", md)
	}

	f4r := &experiments.Figure4Result{Series: []experiments.Figure4Series{
		{Dataset: "income", Error: "missing", Model: "lr",
			Points: []experiments.Figure4Point{{TestSize: 100, MAE: 0.02, P10: 0.01, P90: 0.05}}},
	}}
	md, err = Markdown(f4r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "**missing in income (lr)**") {
		t.Fatalf("figure 4 markdown wrong:\n%s", md)
	}

	gm := &experiments.GenMatrixResult{Dataset: "income", Model: "lr",
		Rows: []experiments.GenMatrixRow{{Error: "typos", Known: false, MedianAE: 0.01, P90: 0.03}}}
	md, err = Markdown(gm)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "| typos | no |") {
		t.Fatalf("gen matrix markdown wrong:\n%s", md)
	}

	ab := &experiments.AblationResult{Study: "percentile-step",
		Rows: []experiments.AblationRow{{Variant: "step=5", MAE: 0.027, P90: 0.05}}}
	md, err = Markdown(ab)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "Ablation — percentile-step") {
		t.Fatalf("ablation markdown wrong:\n%s", md)
	}
}

func TestMarkdownUnknownType(t *testing.T) {
	if _, err := Markdown(42); err == nil {
		t.Fatal("unknown type should error")
	}
}

func TestTableShape(t *testing.T) {
	md := table([]string{"a", "b"}, [][]string{{"1", "2"}})
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if lines[1] != "| --- | --- |" {
		t.Fatalf("separator = %q", lines[1])
	}
}

func TestServingMarkdown(t *testing.T) {
	r := &experiments.ServingResult{
		Scale: "quick", Dataset: "income", Model: "lr",
		Batches: 256, RowsPerBatch: 100,
		BudgetSeconds: 0.25, Target: 0.99,
		RequestsPerSec: 1500, RowsPerSec: 150000,
		AllocsPerOp: 700, BytesPerOp: 140000, ServerAllocBytesPerReq: 139000,
		Stages: []experiments.ServingStageLatency{
			{Stage: "request", Count: 256, P50Ms: 0.2, P99Ms: 1.1, P999Ms: 2.0, MaxMs: 5.0},
			{Stage: "relay", Count: 256, P50Ms: 0.1, P99Ms: 0.9, P999Ms: 1.9, MaxMs: 4.9},
		},
	}
	md, err := Markdown(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Serving SLO benchmark (scale=quick, income/lr, 256 batches x 100 rows)",
		"| request | 256 | 0.200 | 1.100 | 2.000 | 5.000 |",
		"| stage | count | p50 ms | p99 ms | p999 ms | max ms |",
		"700 allocs/op", "budget 250ms target 0.99",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
