package fed_test

// End-to-end federation flow: real gateways proxying to a real model
// backend, ppm-traffic's corruption ramp dispatched round-robin across
// three replicas over HTTP, the aggregator scraping /federate, and the
// alert engine deciding over the merged fleet timeline. The fleet must
// fire the same alert, once, in the same window as a single-replica
// run over the identical workload — and killing a replica mid-ramp
// must degrade to the stale-shards gauge, never a missing or false
// alert.

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"blackboxval/internal/cli"
	"blackboxval/internal/cloud"
	"blackboxval/internal/fed"
	"blackboxval/internal/gateway"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs/alert"
)

// e2eGateway is one replica: gateway + monitor + HTTP servers.
type e2eGateway struct {
	mon *monitor.Monitor
	srv *httptest.Server
}

// newE2EGateways boots n gateways sharing one model backend. Each
// gateway gets its own monitor with a one-batch timeline window.
func newE2EGateways(t *testing.T, f fixture, n int) []e2eGateway {
	t.Helper()
	backend := httptest.NewServer(cloud.NewServer(f.model).Handler())
	t.Cleanup(backend.Close)
	out := make([]e2eGateway, n)
	for i := range out {
		mon := newMonitor(t, f, 1)
		g, err := gateway.New(gateway.Config{
			Backend:     backend.URL,
			Monitor:     mon,
			ReplicaName: fmt.Sprintf("gw-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(g.Close)
		srv := httptest.NewServer(g.Handler())
		t.Cleanup(srv.Close)
		out[i] = e2eGateway{mon: mon, srv: srv}
	}
	return out
}

// waitObserved blocks until every gateway's monitor has committed its
// share of the workload (the shadow tap is asynchronous).
func waitObserved(t *testing.T, gws []e2eGateway, perReplica []int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for i, gw := range gws {
		for gw.mon.Observed() < perReplica[i] {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d observed %d batches, want %d",
					i, gw.mon.Observed(), perReplica[i])
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// e2eTraffic is the deterministic corruption ramp both topologies
// replay: 12 batches, 2 clean, then a ramp on one income column.
func e2eTraffic(t *testing.T, targets []string) {
	t.Helper()
	err := cli.SendTraffic(cli.TrafficOptions{
		Targets:      targets,
		Dataset:      "income",
		Batches:      12,
		Rows:         80,
		Column:       "age",
		CleanBatches: 2,
		MaxMagnitude: 0.95,
		Seed:         7,
		Out:          io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// scrapeFleet builds an aggregator over the gateways, wires an alert
// engine, scrapes once and returns windows + events + the engine.
func scrapeFleet(t *testing.T, gws []e2eGateway, staleAfter time.Duration) (*fed.Aggregator, *collector, *alert.Engine) {
	t.Helper()
	cfg := fed.Config{Interval: time.Hour, Timeout: 5 * time.Second, StaleAfter: staleAfter}
	for i, gw := range gws {
		cfg.Replicas = append(cfg.Replicas, fed.ReplicaConfig{
			Name: fmt.Sprintf("gw-%d", i), URL: gw.srv.URL + "/federate",
		})
	}
	agg, err := fed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collector{}
	engine := newEngine(t, sink)
	agg.OnWindowClose(engine.Evaluate)
	agg.SetAlarming(func() bool { return len(engine.Active()) > 0 })
	agg.ScrapeOnce(context.Background())
	return agg, sink, engine
}

// TestE2EFleetVsSingleGateway is the parity test: the same ramp
// through 3 gateways (fleet, windows of 1 batch each, merged 3-up)
// versus 1 gateway (windows of 3 batches), same rule, same decisions —
// the fleet must fire the same alert exactly once in the same window.
func TestE2EFleetVsSingleGateway(t *testing.T) {
	f := getFixture(t)
	backend := httptest.NewServer(cloud.NewServer(f.model).Handler())
	t.Cleanup(backend.Close)

	// Reference: one gateway, TimelineWindow=3 → 4 windows over 12
	// batches, engine wired straight onto the monitor's timeline.
	refMon := newMonitor(t, f, 3)
	refG, err := gateway.New(gateway.Config{Backend: backend.URL, Monitor: refMon, ReplicaName: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(refG.Close)
	refSrv := httptest.NewServer(refG.Handler())
	t.Cleanup(refSrv.Close)
	refSink := &collector{}
	refEngine := newEngine(t, refSink)
	refMon.Timeline().OnWindowClose(refEngine.Evaluate)
	e2eTraffic(t, []string{refSrv.URL})
	waitObserved(t, []e2eGateway{{mon: refMon, srv: refSrv}}, []int{12})

	// Fleet: three gateways, TimelineWindow=1, batches round-robin.
	gws := newE2EGateways(t, f, 3)
	targets := make([]string, len(gws))
	for i, gw := range gws {
		targets[i] = gw.srv.URL
	}
	e2eTraffic(t, targets)
	waitObserved(t, gws, []int{4, 4, 4})
	agg, fleetSink, _ := scrapeFleet(t, gws, time.Hour)

	fleetWs := agg.Windows()
	refWs := refMon.Timeline().Windows()
	if len(fleetWs) != 4 || len(refWs) != 4 {
		t.Fatalf("windows: fleet %d ref %d, want 4", len(fleetWs), len(refWs))
	}
	for i := range fleetWs {
		got := canonicalWindow(t, fleetWs[i], true)
		want := canonicalWindow(t, refWs[i], false)
		if got != want {
			t.Fatalf("window %d: fleet != single gateway\nfleet:  %s\nsingle: %s", i, got, want)
		}
	}

	fleetEvents, refEvents := project(fleetSink.events()), project(refSink.events())
	if fmt.Sprint(fleetEvents) != fmt.Sprint(refEvents) {
		t.Fatalf("alert events diverge\nfleet:  %v\nsingle: %v", fleetEvents, refEvents)
	}
	firing := 0
	for _, ev := range fleetEvents {
		if ev.State == "firing" {
			firing++
		}
	}
	if firing != 1 {
		t.Fatalf("fleet fired %d times, want exactly once: %v", firing, fleetEvents)
	}
}

// TestE2EReplicaDeathDegrades kills one of three gateways mid-ramp:
// the fleet keeps merging the survivors, reports exactly one stale
// shard, and the alert engine does not fire off the staleness itself.
func TestE2EReplicaDeathDegrades(t *testing.T) {
	f := getFixture(t)
	gws := newE2EGateways(t, f, 3)
	targets := make([]string, len(gws))
	for i, gw := range gws {
		targets[i] = gw.srv.URL
	}

	// First half of a clean workload across all three replicas.
	err := cli.SendTraffic(cli.TrafficOptions{
		Targets: targets, Dataset: "income", Batches: 6, Rows: 60, Seed: 7, Out: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitObserved(t, gws, []int{2, 2, 2})

	agg, sink, engine := scrapeFleet(t, gws, 50*time.Millisecond)
	if got := len(agg.Windows()); got != 2 {
		t.Fatalf("fleet merged %d windows before the death, want 2", got)
	}

	// Kill replica 1 mid-run, keep serving the survivors, let the
	// staleness bound lapse, scrape again.
	gws[1].srv.Close()
	err = cli.SendTraffic(cli.TrafficOptions{
		Targets: []string{targets[0], targets[2]}, Dataset: "income",
		Batches: 2, Rows: 60, Seed: 9, Out: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitObserved(t, []e2eGateway{gws[0], gws[2]}, []int{3, 3})
	time.Sleep(80 * time.Millisecond)
	report := agg.ScrapeOnce(context.Background())

	if report.Stale != 1 || agg.StaleShards() != 1 {
		t.Fatalf("stale shards = %d/%d, want 1", report.Stale, agg.StaleShards())
	}
	ws := agg.Windows()
	if len(ws) != 3 {
		t.Fatalf("fleet has %d windows after degradation, want 3", len(ws))
	}
	last := ws[len(ws)-1]
	if last.Series["fleet_stale_shards"].Last != 1 {
		t.Fatalf("fleet_stale_shards = %v, want 1", last.Series["fleet_stale_shards"].Last)
	}
	// The degraded window merged two replicas' batches, not a fabricated
	// third share.
	if got := last.Series["estimate"].Count; got != 2 {
		t.Fatalf("degraded window merged %d batches of estimate, want 2", got)
	}
	// Clean traffic + a dead replica must NOT fire the drift alert.
	if evs := sink.events(); len(evs) != 0 {
		t.Fatalf("staleness produced alert events: %v", project(evs))
	}
	if len(engine.Active()) != 0 || agg.Alarming() {
		t.Fatal("staleness flipped the fleet alarm")
	}
}
