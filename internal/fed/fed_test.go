package fed_test

// Unit tests for the federation layer: the replica /federate handler,
// the aggregator's merge/staleness/error behavior against fake
// replicas, the ppm_federate_* exposition conformance, and the fleet
// incident capture. The cross-shard determinism matrix lives in
// determinism_test.go; the multi-gateway flow in e2e_test.go.

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blackboxval/internal/core"
	"blackboxval/internal/data"
	"blackboxval/internal/datagen"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/fed"
	"blackboxval/internal/labels"
	"blackboxval/internal/linalg"
	"blackboxval/internal/models"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
	"blackboxval/internal/stats"
)

// fixture trains one small black box + predictor shared by the fed
// tests — smaller than the gateway fixture (the determinism matrix
// retrains nothing; it builds many monitors off this one predictor).
type fixture struct {
	model   data.Model
	pred    *core.Predictor
	val     *core.Validator
	test    *data.Dataset
	serving *data.Dataset
}

var (
	fixOnce sync.Once
	fix     fixture
)

func getFixture(t *testing.T) fixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := rand.New(rand.NewSource(1))
		ds := datagen.Income(1600, 1).Balance(rng)
		source, serving := ds.Split(0.7, rng)
		train, test := source.Split(0.6, rng)
		model, err := models.TrainPipeline(train, &models.GBDTClassifier{Trees: 10, Seed: 1}, 64)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := core.TrainPredictor(model, test, core.PredictorConfig{
			Generators:  errorgen.KnownTabular(),
			Repetitions: 15,
			ForestSizes: []int{20},
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		val, err := core.TrainValidator(model, test, core.ValidatorConfig{
			Generators: errorgen.KnownTabular(),
			Threshold:  0.05,
			Batches:    30,
			Seed:       1,
		})
		if err != nil {
			t.Fatal(err)
		}
		fix = fixture{model: model, pred: pred, val: val, test: test, serving: serving}
	})
	return fix
}

func newMonitor(t *testing.T, f fixture, timelineWindow int) *monitor.Monitor {
	t.Helper()
	mon, err := monitor.New(monitor.Config{
		Predictor: f.pred, Validator: f.val, Threshold: 0.05,
		TimelineWindow: timelineWindow,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mon
}

// servingBatches slices the fixture's serving split into n proba
// batches of the given size.
func servingBatches(t *testing.T, f fixture, n, rows int) []*linalg.Matrix {
	t.Helper()
	if n*rows > f.serving.Len() {
		t.Fatalf("fixture serving split has %d rows, need %d", f.serving.Len(), n*rows)
	}
	out := make([]*linalg.Matrix, n)
	for i := range out {
		idx := make([]int, rows)
		for j := range idx {
			idx[j] = i*rows + j
		}
		out[i] = f.model.PredictProba(f.serving.SelectRows(idx))
	}
	return out
}

// fakeReplica serves a swappable federation document — the aggregator
// tests' stand-in for a live monitor.
type fakeReplica struct {
	mu  sync.Mutex
	doc fed.Doc
}

func (f *fakeReplica) set(doc fed.Doc) {
	f.mu.Lock()
	f.doc = doc
	f.mu.Unlock()
}

func (f *fakeReplica) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		json.NewEncoder(w).Encode(f.doc)
	})
}

// tsDoc builds a federation document straight from an obs.TimeSeries —
// the minimal valid replica payload.
func tsDoc(ts *obs.TimeSeries, replica string) fed.Doc {
	return fed.Doc{
		Version:       fed.DocVersion,
		Replica:       replica,
		WindowBatches: ts.WindowBatches(),
		Capacity:      ts.Capacity(),
		Quantiles:     ts.Quantiles(),
		AlarmLine:     0.5,
		Observed:      len(ts.Windows()),
		Windows:       ts.Windows(),
	}
}

func newAggregator(t *testing.T, urls []string, mutate func(*fed.Config)) *fed.Aggregator {
	t.Helper()
	cfg := fed.Config{Interval: time.Hour, Timeout: 2 * time.Second, StaleAfter: time.Hour}
	for i, u := range urls {
		cfg.Replicas = append(cfg.Replicas, fed.ReplicaConfig{Name: shardName(i), URL: u})
	}
	if mutate != nil {
		mutate(&cfg)
	}
	agg, err := fed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func shardName(i int) string {
	return string(rune('a' + i))
}

func TestReplicaHandlerServesDoc(t *testing.T) {
	f := getFixture(t)
	mon := newMonitor(t, f, 1)
	for _, p := range servingBatches(t, f, 2, 40) {
		mon.ObserveProba(p)
	}
	srv := httptest.NewServer(fed.ReplicaHandler(mon, "replica-7"))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var doc fed.Doc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != fed.DocVersion || doc.Replica != "replica-7" {
		t.Fatalf("doc header = %d/%q", doc.Version, doc.Replica)
	}
	if doc.Observed != 2 || len(doc.Windows) != 2 {
		t.Fatalf("observed %d windows %d, want 2/2", doc.Observed, len(doc.Windows))
	}
	if len(doc.References) == 0 {
		t.Fatal("doc carries no reference sketches")
	}
	for name, sk := range doc.References {
		if sk == nil || sk.Count() == 0 {
			t.Fatalf("reference %s is empty", name)
		}
	}
	// The monitor's own per-class serving distributions must ride along
	// in the window aggregates so the fleet can run drift tests.
	agg, ok := doc.Windows[0].Series["proba_class_0"]
	if !ok || agg.Sketch == nil || agg.Sketch.Count() != 40 {
		t.Fatalf("window lacks proba_class_0 sketch: %+v", agg)
	}

	post, err := http.Post(srv.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", post.StatusCode)
	}
}

// TestAggregatorMergesAlignedWindows scrapes three fake replicas fed
// round-robin and checks the merged fleet windows against the
// single-node union stream — the determinism contract exercised
// through the full HTTP scrape path.
func TestAggregatorMergesAlignedWindows(t *testing.T) {
	const shards = 3
	rng := rand.New(rand.NewSource(5))
	single, err := obs.NewTimeSeries(obs.TimeSeriesConfig{WindowBatches: shards})
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*obs.TimeSeries, shards)
	for i := range parts {
		parts[i], err = obs.NewTimeSeries(obs.TimeSeriesConfig{WindowBatches: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	const windows = 3
	for b := 0; b < shards*windows; b++ {
		for j := 0; j < 30; j++ {
			v := rng.NormFloat64()
			single.Record("lat", v)
			parts[b%shards].Record("lat", v)
		}
		single.Commit()
		parts[b%shards].Commit()
	}

	var urls []string
	for i := range parts {
		fr := &fakeReplica{}
		fr.set(tsDoc(parts[i], shardName(i)))
		srv := httptest.NewServer(fr.handler())
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	agg := newAggregator(t, urls, nil)
	var hookIndexes []int64
	agg.OnWindowClose(func(w obs.Window) { hookIndexes = append(hookIndexes, w.Index) })
	report := agg.ScrapeOnce(context.Background())
	if len(report.Errors) != 0 || report.Emitted != windows {
		t.Fatalf("scrape report %+v, want %d clean emissions", report, windows)
	}

	merged := agg.Windows()
	singleWs := single.Windows()
	if len(merged) != windows || len(singleWs) != windows {
		t.Fatalf("windows: merged %d single %d, want %d", len(merged), len(singleWs), windows)
	}
	for i := range merged {
		if merged[i].Index != int64(i) || hookIndexes[i] != merged[i].Index {
			t.Fatalf("window %d has index %d (hook %v)", i, merged[i].Index, hookIndexes)
		}
		got := canonicalWindow(t, merged[i], true)
		want := canonicalWindow(t, singleWs[i], false)
		if got != want {
			t.Fatalf("window %d: merged != union\nmerged: %s\nunion:  %s", i, got, want)
		}
		// The enrichment series rides on every fleet window.
		stale, ok := merged[i].Series["fleet_stale_shards"]
		if !ok || stale.Last != 0 {
			t.Fatalf("window %d fleet_stale_shards = %+v", i, stale)
		}
	}

	// A second scrape against unchanged replicas must not re-emit.
	report = agg.ScrapeOnce(context.Background())
	if report.Emitted != 0 || len(agg.Windows()) != windows {
		t.Fatalf("re-scrape emitted %d", report.Emitted)
	}
}

// canonicalWindow renders a window for bit-equality comparison:
// wall-clock times zeroed, and (for fleet windows) the aggregator's
// enrichment series removed so the remainder must equal the single
// node's payload exactly.
func canonicalWindow(t *testing.T, w obs.Window, fleet bool) string {
	t.Helper()
	w.Start, w.End = time.Time{}, time.Time{}
	if fleet {
		series := make(map[string]obs.Aggregate, len(w.Series))
		for name, agg := range w.Series {
			if strings.HasPrefix(name, "fleet_") {
				continue
			}
			series[name] = agg
		}
		w.Series = series
	}
	buf, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestAggregatorStaleShardDegrades kills one of two replicas and checks
// the fleet keeps emitting from the survivor with the gap surfaced as
// the stale-shards gauge, not a stall or a fabricated window.
func TestAggregatorStaleShardDegrades(t *testing.T) {
	live, dead := &fakeReplica{}, &fakeReplica{}
	liveTS, _ := obs.NewTimeSeries(obs.TimeSeriesConfig{WindowBatches: 1})
	deadTS, _ := obs.NewTimeSeries(obs.TimeSeriesConfig{WindowBatches: 1})
	record := func(ts *obs.TimeSeries, v float64) {
		ts.Record("lat", v)
		ts.Commit()
	}
	record(liveTS, 1)
	record(deadTS, 2)
	live.set(tsDoc(liveTS, "live"))
	dead.set(tsDoc(deadTS, "dead"))
	liveSrv := httptest.NewServer(live.handler())
	defer liveSrv.Close()
	deadSrv := httptest.NewServer(dead.handler())

	agg := newAggregator(t, []string{liveSrv.URL, deadSrv.URL}, func(cfg *fed.Config) {
		cfg.StaleAfter = 30 * time.Millisecond
		cfg.Timeout = 200 * time.Millisecond
	})
	reg := obs.NewRegistry()
	agg.RegisterMetrics(reg)

	report := agg.ScrapeOnce(context.Background())
	if len(report.Errors) != 0 || report.Emitted != 1 || report.Stale != 0 {
		t.Fatalf("healthy scrape: %+v", report)
	}
	first := agg.Windows()[0]
	if first.Series["lat"].Count != 2 {
		t.Fatalf("first fleet window merged %d samples, want 2", first.Series["lat"].Count)
	}

	// Kill one replica, advance the survivor, and let staleness lapse.
	deadSrv.Close()
	record(liveTS, 3)
	live.set(tsDoc(liveTS, "live"))
	time.Sleep(50 * time.Millisecond)

	report = agg.ScrapeOnce(context.Background())
	if len(report.Errors) != 1 || report.Errors["b"] == "" {
		t.Fatalf("dead replica not reported: %+v", report)
	}
	if report.Stale != 1 || agg.StaleShards() != 1 {
		t.Fatalf("stale = %d/%d, want 1", report.Stale, agg.StaleShards())
	}
	ws := agg.Windows()
	if len(ws) != 2 {
		t.Fatalf("fleet emitted %d windows, want degraded second emission", len(ws))
	}
	second := ws[1]
	if second.Series["lat"].Count != 1 || second.Series["lat"].Last != 3 {
		t.Fatalf("degraded window = %+v", second.Series["lat"])
	}
	if second.Series["fleet_stale_shards"].Last != 1 {
		t.Fatalf("fleet_stale_shards = %v, want 1", second.Series["fleet_stale_shards"].Last)
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	render := b.String()
	for _, want := range []string{
		"ppm_federate_stale_shards 1",
		"ppm_federate_replicas 2",
		"ppm_federate_scrape_errors_total 1",
		"ppm_federate_windows_merged_total 2",
	} {
		if !strings.Contains(render, want) {
			t.Fatalf("exposition missing %q:\n%s", want, render)
		}
	}
	status := agg.Status()
	if status.StaleShards != 1 || !status.Replicas[1].Stale || status.Replicas[0].Stale {
		t.Fatalf("status = %+v", status)
	}
}

// TestAggregatorRejectsGarbage covers malformed replica payloads: bad
// JSON and wrong wire versions count as scrape errors and emit nothing.
func TestAggregatorRejectsGarbage(t *testing.T) {
	badJSON := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer badJSON.Close()
	badVersion := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(fed.Doc{Version: 99})
	}))
	defer badVersion.Close()
	badStatus := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer badStatus.Close()

	agg := newAggregator(t, []string{badJSON.URL, badVersion.URL, badStatus.URL}, nil)
	reg := obs.NewRegistry()
	agg.RegisterMetrics(reg)
	report := agg.ScrapeOnce(context.Background())
	if len(report.Errors) != 3 || report.Emitted != 0 {
		t.Fatalf("report = %+v, want 3 errors, 0 emissions", report)
	}
	if len(agg.Windows()) != 0 {
		t.Fatal("garbage scrape emitted fleet windows")
	}
	var b strings.Builder
	reg.WriteTo(&b)
	if !strings.Contains(b.String(), "ppm_federate_scrape_errors_total 3") {
		t.Fatalf("error counter wrong:\n%s", b.String())
	}
}

// TestAggregatorRejectsBadConfig pins the constructor validation.
func TestAggregatorRejectsBadConfig(t *testing.T) {
	if _, err := fed.New(fed.Config{}); err == nil {
		t.Fatal("no replicas accepted")
	}
	if _, err := fed.New(fed.Config{Replicas: []fed.ReplicaConfig{{Name: "a"}}}); err == nil {
		t.Fatal("missing url accepted")
	}
	dup := []fed.ReplicaConfig{{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"}}
	if _, err := fed.New(fed.Config{Replicas: dup}); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

// TestFederateMetricsLint renders the full federation family set and
// runs the exposition linter over it.
func TestFederateMetricsLint(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(fed.Doc{Version: fed.DocVersion})
	}))
	defer srv.Close()
	agg := newAggregator(t, []string{srv.URL}, nil)
	reg := obs.NewRegistry()
	agg.RegisterMetrics(reg)
	agg.ScrapeOnce(context.Background())

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	render := b.String()
	if errs := obs.Lint(render); len(errs) != 0 {
		t.Fatalf("ppm_federate_* exposition fails lint: %v", errs)
	}
	for _, family := range []string{
		"ppm_federate_replicas",
		"ppm_federate_stale_shards",
		"ppm_federate_fleet_windows",
		"ppm_federate_scrapes_total",
		"ppm_federate_scrape_errors_total",
		"ppm_federate_windows_merged_total",
		"ppm_federate_missed_windows_total",
		"ppm_federate_reference_mismatch_total",
	} {
		if !strings.Contains(render, "# TYPE "+family+" ") {
			t.Fatalf("family %s missing from exposition:\n%s", family, render)
		}
	}
}

// TestAggregatorHTTPSurface walks the fleet endpoints.
func TestAggregatorHTTPSurface(t *testing.T) {
	ts, _ := obs.NewTimeSeries(obs.TimeSeriesConfig{WindowBatches: 1})
	ts.Record("estimate", 0.9)
	ts.Commit()
	fr := &fakeReplica{}
	fr.set(tsDoc(ts, "a"))
	replica := httptest.NewServer(fr.handler())
	defer replica.Close()

	agg := newAggregator(t, []string{replica.URL}, nil)
	agg.ScrapeOnce(context.Background())
	alarming := false
	agg.SetAlarming(func() bool { return alarming })
	srv := httptest.NewServer(agg.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := get("/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Fleet drift timeline") {
		t.Fatalf("dashboard: %d %.80s", resp.StatusCode, body)
	}
	resp, body = get("/timeline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status %d", resp.StatusCode)
	}
	var tl monitor.TimelineDoc
	if err := json.Unmarshal(body, &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Windows) != 1 || tl.AlarmLine != 0.5 {
		t.Fatalf("timeline doc = %+v", tl)
	}
	resp, body = get("/federate")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("federate status %d", resp.StatusCode)
	}
	var doc fed.Doc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != fed.DocVersion || doc.Replica != "fleet" || len(doc.Windows) != 1 {
		t.Fatalf("fleet doc = %d/%q/%d windows", doc.Version, doc.Replica, len(doc.Windows))
	}
	resp, _ = get("/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status status %d", resp.StatusCode)
	}
	resp, _ = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while healthy: %d", resp.StatusCode)
	}
	alarming = true
	resp, _ = get("/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while alarming: %d, want 503", resp.StatusCode)
	}
	post, err := http.Post(srv.URL+"/timeline", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /timeline: %d, want 405", post.StatusCode)
	}
}

// TestFleetIncidentCapture exercises the capture ring: firing events
// write artifacts, resolutions and cooldown-window repeats do not, and
// the ring prunes oldest-first.
func TestFleetIncidentCapture(t *testing.T) {
	ts, _ := obs.NewTimeSeries(obs.TimeSeriesConfig{WindowBatches: 1})
	ts.Record("estimate", 0.2)
	ts.Commit()
	fr := &fakeReplica{}
	fr.set(tsDoc(ts, "a"))
	srv := httptest.NewServer(fr.handler())
	defer srv.Close()
	agg := newAggregator(t, []string{srv.URL}, nil)
	agg.ScrapeOnce(context.Background())

	dir := t.TempDir()
	capture, err := fed.NewCapture(agg, fed.CaptureConfig{Dir: dir, Max: 2, Cooldown: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	notify := capture.Notifier()
	ev := alert.Event{Rule: "estimate_low", Series: "estimate", State: "firing", Value: 0.2, WindowIndex: 1}
	notify.Notify(ev)
	notify.Notify(alert.Event{Rule: "estimate_low", State: "resolved"})
	incidents, err := capture.Incidents()
	if err != nil {
		t.Fatal(err)
	}
	if len(incidents) != 1 {
		t.Fatalf("%d incidents, want 1 (resolved must not capture)", len(incidents))
	}
	inc := incidents[0]
	if inc.Event.Rule != "estimate_low" || len(inc.Windows) != 1 || len(inc.Status.Replicas) != 1 {
		t.Fatalf("incident = %+v", inc)
	}

	// Cooldown: a burst inside the window captures nothing extra.
	burst := fed.CaptureConfig{Dir: t.TempDir(), Cooldown: time.Hour}
	c2, err := fed.NewCapture(agg, burst)
	if err != nil {
		t.Fatal(err)
	}
	c2.Notifier().Notify(ev)
	c2.Notifier().Notify(ev)
	if got, _ := c2.Incidents(); len(got) != 1 {
		t.Fatalf("cooldown leaked: %d incidents", len(got))
	}

	// Prune: Max=2 keeps the newest two.
	time.Sleep(2 * time.Millisecond)
	notify.Notify(ev)
	time.Sleep(2 * time.Millisecond)
	notify.Notify(ev)
	incidents, err = capture.Incidents()
	if err != nil {
		t.Fatal(err)
	}
	if len(incidents) != 2 {
		t.Fatalf("prune kept %d, want 2", len(incidents))
	}
}

// TestConcurrentFederateAndObserve is the race-gate coverage: /federate
// renders concurrently with live ObserveProba traffic on the replica
// side, and ScrapeOnce runs concurrently with Windows/Status reads on
// the aggregator side. Run under -race via the Makefile audit target.
func TestConcurrentFederateAndObserve(t *testing.T) {
	f := getFixture(t)
	mon := newMonitor(t, f, 1)
	probas := servingBatches(t, f, 8, 25)
	replicaSrv := httptest.NewServer(fed.ReplicaHandler(mon, "race"))
	defer replicaSrv.Close()
	agg := newAggregator(t, []string{replicaSrv.URL}, nil)

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for _, p := range probas {
			mon.ObserveProba(p)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, err := http.Get(replicaSrv.URL)
			if err != nil {
				t.Error(err)
				return
			}
			var doc fed.Doc
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Error(err)
			}
			resp.Body.Close()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			agg.ScrapeOnce(context.Background())
			agg.Windows()
			agg.Status()
			agg.StaleShards()
		}
	}()
	wg.Wait()

	// After the dust settles one more scrape must see all 8 windows.
	agg.ScrapeOnce(context.Background())
	if got := len(agg.Windows()); got != 8 {
		t.Fatalf("fleet holds %d windows after race run, want 8", got)
	}
}

// TestFleetLabeledAccuracyPosterior checks the aggregator derives the
// fleet label-feedback posterior from the merged labeled_correct
// counts, and that the derivation is shard-invariant: two shards each
// holding part of the labels yield exactly the posterior a single node
// joining every label would hold, because the per-row 0/1 series
// merges by exact counts (ExactSum), not by averaging shard posteriors.
func TestFleetLabeledAccuracyPosterior(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([]*obs.TimeSeries, 2)
	var err error
	for i := range parts {
		parts[i], err = obs.NewTimeSeries(obs.TimeSeriesConfig{WindowBatches: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	total, correct := 0, 0
	for s, n := range []int{40, 25} { // deliberately uneven shards
		for j := 0; j < n; j++ {
			v := 0.0
			if rng.Float64() < 0.8 {
				v = 1
				correct++
			}
			total++
			parts[s].Record(labels.SeriesCorrect, v)
		}
		parts[s].Commit()
	}

	var urls []string
	for i := range parts {
		fr := &fakeReplica{}
		fr.set(tsDoc(parts[i], shardName(i)))
		srv := httptest.NewServer(fr.handler())
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	agg := newAggregator(t, urls, nil)
	if report := agg.ScrapeOnce(context.Background()); report.Emitted != 1 {
		t.Fatalf("scrape report %+v, want 1 emission", report)
	}
	w := agg.Windows()[0]

	cor, ok := w.Series[labels.SeriesCorrect]
	if !ok || cor.Count != total || cor.SumExact == nil {
		t.Fatalf("merged labeled_correct = %+v, want count %d with exact sum", cor, total)
	}
	alpha := 1 + float64(correct)
	beta := 1 + float64(total-correct)
	wantLo, wantHi := stats.BetaInterval(alpha, beta, 0.95)
	if got := w.Series["fleet_labeled_acc_mean"].Last; got != stats.BetaMean(alpha, beta) {
		t.Errorf("fleet_labeled_acc_mean = %v, want %v (Beta(%v,%v))", got, stats.BetaMean(alpha, beta), alpha, beta)
	}
	if lo := w.Series["fleet_labeled_acc_lo95"].Last; lo != wantLo {
		t.Errorf("fleet_labeled_acc_lo95 = %v, want %v", lo, wantLo)
	}
	if hi := w.Series["fleet_labeled_acc_hi95"].Last; hi != wantHi {
		t.Errorf("fleet_labeled_acc_hi95 = %v, want %v", hi, wantHi)
	}
}
