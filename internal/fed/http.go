package fed

// The aggregator's HTTP surface, mounted by cmd/ppm-aggregate:
//
//	GET /          fleet dashboard (merged estimate sparkline + shard table)
//	GET /timeline  merged fleet timeline, same document shape as a
//	               replica's /timeline so existing tooling points at either
//	GET /federate  fleet re-export of the merged view (aggregators compose)
//	GET /slo       fleet serving SLO view (merged per-stage latency
//	               quantiles + slowest exemplars; 404 until a gateway
//	               replica ships serving state)
//	GET /status    per-shard scrape health
//	GET /healthz   200 ok / 503 when the fleet alert engine is firing
//
// /metrics and /debug/* stay the caller's responsibility (cmd wires the
// shared obs registry) so the fed package needs no exposition logic.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
)

// TimelineDoc renders the merged fleet view in the replica timeline
// document shape (monitor.TimelineDoc), so dashboards and scripts work
// against a replica and a fleet interchangeably. WindowBatches is the
// fleet per-window batch total (shards × per-shard batches).
func (a *Aggregator) TimelineDoc() monitor.TimelineDoc {
	alarm := a.Alarming()
	a.mu.Lock()
	defer a.mu.Unlock()
	batches := 0
	for _, sh := range a.shards {
		if sh.doc != nil {
			batches += sh.doc.WindowBatches
		}
	}
	return monitor.TimelineDoc{
		AlarmLine:     a.alarmLine,
		WindowBatches: batches,
		Capacity:      a.cfg.Capacity,
		RefreshMillis: a.cfg.RefreshMillis,
		Alarming:      alarm,
		Windows:       append([]obs.Window(nil), a.fleet...),
	}
}

// Handler serves the aggregator's HTTP surface.
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		if !guardGet(w, r) {
			return
		}
		setHeaders(w, "text/html; charset=utf-8")
		fmt.Fprint(w, fleetDashboardHTML)
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		if !guardGet(w, r) {
			return
		}
		writeJSON(w, a.TimelineDoc())
	})
	mux.HandleFunc("/federate", func(w http.ResponseWriter, r *http.Request) {
		if !guardGet(w, r) {
			return
		}
		writeJSON(w, a.FleetDoc())
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		if !guardGet(w, r) {
			return
		}
		serving := a.FleetServing()
		if serving == nil {
			http.Error(w, "no serving state federated yet", http.StatusNotFound)
			return
		}
		writeJSON(w, serving.View(5))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if !guardGet(w, r) {
			return
		}
		writeJSON(w, a.Status())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !guardGet(w, r) {
			return
		}
		setHeaders(w, "text/plain; charset=utf-8")
		if a.Alarming() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "alarming")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func guardGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func setHeaders(w http.ResponseWriter, contentType string) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Cache-Control", "no-store")
}

func writeJSON(w http.ResponseWriter, v any) {
	setHeaders(w, "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// fleetDashboardHTML mirrors the replica dashboard's dependency-free
// style: one page, inline script, polling /timeline for the merged
// drift trace and /status for shard health.
const fleetDashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ppm fleet timeline</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }
  h1 { font-size: 1.2rem; }
  .status { margin: .5rem 0 1rem; }
  .badge { padding: .15rem .5rem; border-radius: .25rem; color: #fff; }
  .ok { background: #2a7d2a; }
  .alarm { background: #b02a2a; }
  .stale { background: #b07a2a; }
  svg { border: 1px solid #ddd; background: #fafafa; }
  table { border-collapse: collapse; margin-top: 1rem; }
  th, td { border: 1px solid #ccc; padding: .25rem .6rem; text-align: right; }
  th { background: #f0f0f0; }
  td.bad { background: #f6d5d5; }
  td.name { text-align: left; }
  .meta { color: #666; font-size: .85rem; }
</style>
</head>
<body>
<h1>Fleet drift timeline</h1>
<div class="status">
  state: <span id="state" class="badge ok">loading…</span>
  <span id="stale" class="badge stale" style="display:none"></span>
  <span class="meta" id="meta"></span>
</div>
<svg id="chart" width="720" height="160" viewBox="0 0 720 160"></svg>
<h2 style="font-size:1rem">Shards</h2>
<table>
  <thead><tr><th>replica</th><th>observed</th><th>max window</th><th>fails</th><th>state</th></tr></thead>
  <tbody id="shards"></tbody>
</table>
<h2 style="font-size:1rem">Merged windows</h2>
<table>
  <thead><tr><th>window</th><th>batches</th><th>estimate</th><th>fleet ks_max</th><th>stale shards</th></tr></thead>
  <tbody id="rows"></tbody>
</table>
<div id="slo" style="display:none">
<h2 style="font-size:1rem">Serving latency (fleet-merged)</h2>
<div class="meta" id="slometa"></div>
<table>
  <thead><tr><th>stage</th><th>count</th><th>p50</th><th>p99</th><th>p999</th><th>max</th></tr></thead>
  <tbody id="slorows"></tbody>
</table>
<div class="meta" id="sloex"></div>
</div>
<script>
"use strict";
function line(points, color) {
  if (!points.length) return "";
  var d = points.map(function (p, i) { return (i ? "L" : "M") + p[0].toFixed(1) + " " + p[1].toFixed(1); }).join(" ");
  return '<path d="' + d + '" fill="none" stroke="' + color + '" stroke-width="1.5"/>';
}
function seriesMean(w, name) {
  var a = w.series && w.series[name];
  return a && a.count ? a.sum / a.count : null;
}
function renderTimeline(doc) {
  var windows = doc.windows || [];
  var state = document.getElementById("state");
  state.textContent = doc.alarming ? "ALARM" : "ok";
  state.className = "badge " + (doc.alarming ? "alarm" : "ok");
  document.getElementById("meta").textContent =
    windows.length + " merged windows · " + doc.window_batches + " batch(es)/window · alarm line " +
    doc.alarm_line.toFixed(4) + (doc.refresh_ms > 0 ? " · refresh " + doc.refresh_ms + "ms" : "");

  var W = 720, H = 160, pad = 8;
  var xs = function (i) { return windows.length < 2 ? W / 2 : pad + i * (W - 2 * pad) / (windows.length - 1); };
  var ys = function (v) { return H - pad - v * (H - 2 * pad); };
  var est = [], ks = [];
  windows.forEach(function (w, i) {
    var e = seriesMean(w, "estimate"); if (e !== null) est.push([xs(i), ys(Math.max(0, Math.min(1, e)))]);
    var k = seriesMean(w, "fleet_ks_max"); if (k !== null) ks.push([xs(i), ys(Math.max(0, Math.min(1, k)))]);
  });
  var alarmY = ys(Math.max(0, Math.min(1, doc.alarm_line)));
  document.getElementById("chart").innerHTML =
    '<line x1="0" x2="' + W + '" y1="' + alarmY + '" y2="' + alarmY + '" stroke="#b02a2a" stroke-dasharray="4 3"/>' +
    line(est, "#2255aa") + line(ks, "#cc8800");

  var rows = windows.slice(-12).reverse().map(function (w) {
    var e = seriesMean(w, "estimate"), k = seriesMean(w, "fleet_ks_max"), s = seriesMean(w, "fleet_stale_shards");
    return "<tr><td>" + w.index + "</td><td>" + w.batches + "</td><td>" +
      (e === null ? "–" : e.toFixed(4)) + "</td><td>" + (k === null ? "–" : k.toFixed(4)) +
      '</td><td class="' + (s ? "bad" : "") + '">' + (s === null ? "–" : s) + "</td></tr>";
  });
  document.getElementById("rows").innerHTML = rows.join("");
  return doc.refresh_ms;
}
function renderStatus(st) {
  var staleBadge = document.getElementById("stale");
  if (st.stale_shards > 0) {
    staleBadge.style.display = "";
    staleBadge.textContent = st.stale_shards + " stale shard" + (st.stale_shards > 1 ? "s" : "");
  } else {
    staleBadge.style.display = "none";
  }
  var rows = (st.replicas || []).map(function (r) {
    return '<tr><td class="name">' + r.name + "</td><td>" + r.observed + "</td><td>" +
      (r.max_window < 0 ? "–" : r.max_window) + "</td><td>" + r.fails +
      '</td><td class="' + (r.stale ? "bad" : "") + '">' +
      (r.stale ? "STALE" : (r.alarming ? "alarming" : "ok")) + "</td></tr>";
  });
  document.getElementById("shards").innerHTML = rows.join("");
}
function ms(v) { return (v * 1000).toFixed(2) + "ms"; }
function renderSLO(view) {
  var box = document.getElementById("slo");
  if (!view) { box.style.display = "none"; return; }
  box.style.display = "";
  document.getElementById("slometa").textContent =
    view.requests + " requests · " + view.over_budget + " over a " +
    ms(view.budget_seconds) + " budget · target " + (view.target * 100).toFixed(2) + "%";
  document.getElementById("slorows").innerHTML = (view.stages || []).map(function (s) {
    return '<tr><td class="name">' + s.stage + "</td><td>" + s.count + "</td><td>" +
      ms(s.p50) + "</td><td>" + ms(s.p99) + "</td><td>" + ms(s.p999) + "</td><td>" + ms(s.max) + "</td></tr>";
  }).join("");
  document.getElementById("sloex").textContent = (view.exemplars || []).length
    ? "slowest: " + view.exemplars.map(function (e) { return e.id + " (" + ms(e.v) + ")"; }).join(", ")
    : "";
}
function poll() {
  Promise.all([
    fetch("timeline").then(function (r) { return r.json(); }),
    fetch("status").then(function (r) { return r.json(); }),
    fetch("slo").then(function (r) { return r.ok ? r.json() : null; }).catch(function () { return null; })
  ]).then(function (res) {
    var refresh = renderTimeline(res[0]);
    renderStatus(res[1]);
    renderSLO(res[2]);
    if (refresh > 0) setTimeout(poll, refresh);
  }).catch(function () { setTimeout(poll, 5000); });
}
poll();
</script>
</body>
</html>
`
