package fed

// The aggregator's HTTP surface, mounted by cmd/ppm-aggregate:
//
//	GET /          fleet dashboard (merged estimate sparkline + shard table)
//	GET /timeline  merged fleet timeline, same document shape as a
//	               replica's /timeline so existing tooling points at either
//	GET /federate  fleet re-export of the merged view (aggregators compose)
//	GET /slo       fleet serving SLO view (merged per-stage latency
//	               quantiles + slowest exemplars; 404 until a gateway
//	               replica ships serving state)
//	GET /status    per-shard scrape health
//	GET /healthz   200 ok / 503 when the fleet alert engine is firing
//
// /metrics and /debug/* stay the caller's responsibility (cmd wires the
// shared obs registry) so the fed package needs no exposition logic.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
)

// TimelineDoc renders the merged fleet view in the replica timeline
// document shape (monitor.TimelineDoc), so dashboards and scripts work
// against a replica and a fleet interchangeably. WindowBatches is the
// fleet per-window batch total (shards × per-shard batches).
func (a *Aggregator) TimelineDoc() monitor.TimelineDoc {
	alarm := a.Alarming()
	a.mu.Lock()
	defer a.mu.Unlock()
	batches := 0
	for _, sh := range a.shards {
		if sh.doc != nil {
			batches += sh.doc.WindowBatches
		}
	}
	return monitor.TimelineDoc{
		AlarmLine:     a.alarmLine,
		WindowBatches: batches,
		Capacity:      a.cfg.Capacity,
		RefreshMillis: a.cfg.RefreshMillis,
		Alarming:      alarm,
		Windows:       append([]obs.Window(nil), a.fleet...),
	}
}

// Handler serves the aggregator's HTTP surface.
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		if !guardGet(w, r) {
			return
		}
		setHeaders(w, "text/html; charset=utf-8")
		fmt.Fprint(w, fleetDashboardHTML)
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		if !guardGet(w, r) {
			return
		}
		doc := a.TimelineDoc()
		// The shared ?limit= contract (monitor /timeline, /debug/spans):
		// non-numeric or negative is a 400, never a silent default.
		if raw := r.URL.Query().Get("limit"); raw != "" {
			limit, err := strconv.Atoi(raw)
			if err != nil || limit < 0 {
				http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
				return
			}
			if limit < len(doc.Windows) {
				doc.Windows = doc.Windows[len(doc.Windows)-limit:]
			}
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/federate", func(w http.ResponseWriter, r *http.Request) {
		if !guardGet(w, r) {
			return
		}
		writeJSON(w, a.FleetDoc())
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		if !guardGet(w, r) {
			return
		}
		serving := a.FleetServing()
		if serving == nil {
			http.Error(w, "no serving state federated yet", http.StatusNotFound)
			return
		}
		writeJSON(w, serving.View(5))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if !guardGet(w, r) {
			return
		}
		writeJSON(w, a.Status())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !guardGet(w, r) {
			return
		}
		setHeaders(w, "text/plain; charset=utf-8")
		if a.Alarming() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "alarming")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func guardGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func setHeaders(w http.ResponseWriter, contentType string) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Cache-Control", "no-store")
}

func writeJSON(w http.ResponseWriter, v any) {
	setHeaders(w, "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// fleetDashboardHTML mirrors the replica dashboard's dependency-free
// style: one page, inline script, polling /timeline for the merged
// drift trace and /status for shard health.
const fleetDashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ppm fleet timeline</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }
  h1 { font-size: 1.2rem; }
  .status { margin: .5rem 0 1rem; }
  .badge { padding: .15rem .5rem; border-radius: .25rem; color: #fff; }
  .ok { background: #2a7d2a; }
  .alarm { background: #b02a2a; }
  .stale { background: #b07a2a; }
  svg { border: 1px solid #ddd; background: #fafafa; }
  table { border-collapse: collapse; margin-top: 1rem; }
  th, td { border: 1px solid #ccc; padding: .25rem .6rem; text-align: right; }
  th { background: #f0f0f0; }
  td.bad { background: #f6d5d5; }
  td.name { text-align: left; }
  .meta { color: #666; font-size: .85rem; }
  button { font: inherit; padding: .1rem .5rem; }
</style>
</head>
<body>
<h1>Fleet drift timeline</h1>
<div class="status">
  state: <span id="state" class="badge ok">loading…</span>
  <span id="stale" class="badge stale" style="display:none"></span>
  <span id="gaps" class="badge stale" style="display:none"></span>
  <span class="meta" id="meta"></span>
</div>
<svg id="chart" width="720" height="160" viewBox="0 0 720 160"></svg>
<h2 style="font-size:1rem">Shards</h2>
<table>
  <thead><tr><th>replica</th><th>observed</th><th>max window</th><th>fails</th><th>state</th></tr></thead>
  <tbody id="shards"></tbody>
</table>
<h2 style="font-size:1rem">Merged windows</h2>
<table>
  <thead><tr><th>window</th><th>batches</th><th>estimate</th><th>fleet ks_max</th><th>stale shards</th></tr></thead>
  <tbody id="rows"></tbody>
</table>
<div id="slo" style="display:none">
<h2 style="font-size:1rem">Serving latency (fleet-merged)</h2>
<div class="meta" id="slometa"></div>
<table>
  <thead><tr><th>stage</th><th>count</th><th>p50</th><th>p99</th><th>p999</th><th>max</th></tr></thead>
  <tbody id="slorows"></tbody>
</table>
<div class="meta" id="sloex"></div>
</div>
<div id="hist" style="display:none">
<h2 style="font-size:1rem">Durable history</h2>
<div class="meta">
  <button id="older">&laquo; older</button>
  <button id="newer">newer &raquo;</button>
  <span id="histmeta"></span>
</div>
<svg id="histchart" width="720" height="160" viewBox="0 0 720 160"></svg>
</div>
<script>
"use strict";
// line breaks its path wherever a point follows a gap, so the
// sparkline never strokes across missing windows.
function line(points, color) {
  if (!points.length) return "";
  var d = points.map(function (p, i) { return (i && !p.gap ? "L" : "M") + p.x.toFixed(1) + " " + p.y.toFixed(1); }).join(" ");
  return '<path d="' + d + '" fill="none" stroke="' + color + '" stroke-width="1.5"/>';
}
function seriesMean(w, name) {
  var a = w.series && w.series[name];
  return a && a.count ? a.sum / a.count : null;
}
// drawDrift renders a gap-aware fleet drift chart: x is proportional
// to window index, missing index ranges are shaded and break the
// series lines. spans is null for the live ring or the
// /timeline/range spans array for compacted history. Returns the
// number of missing window indices.
function drawDrift(el, windows, spans, alarmLine) {
  var W = 720, H = 160, pad = 8;
  var alarmY = H - pad - Math.max(0, Math.min(1, alarmLine)) * (H - 2 * pad);
  if (!windows.length) {
    el.innerHTML = '<line x1="0" x2="' + W + '" y1="' + alarmY + '" y2="' + alarmY + '" stroke="#b02a2a" stroke-dasharray="4 3"/>';
    return 0;
  }
  var spanOf = function (i) { return spans && spans[i] > 1 ? spans[i] : 1; };
  var first = windows[0].index;
  var last = windows[windows.length - 1].index + spanOf(windows.length - 1) - 1;
  var range = Math.max(1, last - first);
  var xs = function (idx) { return last === first ? W / 2 : pad + (idx - first) * (W - 2 * pad) / range; };
  var ys = function (v) { return H - pad - Math.max(0, Math.min(1, v)) * (H - 2 * pad); };
  var est = [], ks = [], gapRects = "", missing = 0, prevEnd = null;
  windows.forEach(function (w, i) {
    var gap = prevEnd !== null && w.index > prevEnd + 1;
    if (gap) {
      missing += w.index - prevEnd - 1;
      gapRects += '<rect x="' + xs(prevEnd).toFixed(1) + '" y="0" width="' +
        (xs(w.index) - xs(prevEnd)).toFixed(1) + '" height="' + H + '" fill="#b07a2a" fill-opacity="0.15"/>';
    }
    var x = xs(w.index + (spanOf(i) - 1) / 2);
    var e = seriesMean(w, "estimate"); if (e !== null) est.push({x: x, y: ys(e), gap: gap});
    var k = seriesMean(w, "fleet_ks_max"); if (k !== null) ks.push({x: x, y: ys(k), gap: gap});
    prevEnd = w.index + spanOf(i) - 1;
  });
  el.innerHTML =
    gapRects +
    '<line x1="0" x2="' + W + '" y1="' + alarmY + '" y2="' + alarmY + '" stroke="#b02a2a" stroke-dasharray="4 3"/>' +
    line(est, "#2255aa") + line(ks, "#cc8800");
  return missing;
}
var lastAlarmLine = 0;
function renderTimeline(doc) {
  var windows = doc.windows || [];
  lastAlarmLine = doc.alarm_line;
  var state = document.getElementById("state");
  state.textContent = doc.alarming ? "ALARM" : "ok";
  state.className = "badge " + (doc.alarming ? "alarm" : "ok");
  document.getElementById("meta").textContent =
    windows.length + " merged windows · " + doc.window_batches + " batch(es)/window · alarm line " +
    doc.alarm_line.toFixed(4) + (doc.refresh_ms > 0 ? " · refresh " + doc.refresh_ms + "ms" : "");

  var missing = drawDrift(document.getElementById("chart"), windows, null, doc.alarm_line);
  var gapBadge = document.getElementById("gaps");
  if (missing > 0) {
    gapBadge.style.display = "";
    gapBadge.textContent = "STALE · " + missing + " missing window" + (missing > 1 ? "s" : "");
  } else {
    gapBadge.style.display = "none";
  }

  var rows = windows.slice(-12).reverse().map(function (w) {
    var e = seriesMean(w, "estimate"), k = seriesMean(w, "fleet_ks_max"), s = seriesMean(w, "fleet_stale_shards");
    return "<tr><td>" + w.index + "</td><td>" + w.batches + "</td><td>" +
      (e === null ? "–" : e.toFixed(4)) + "</td><td>" + (k === null ? "–" : k.toFixed(4)) +
      '</td><td class="' + (s ? "bad" : "") + '">' + (s === null ? "–" : s) + "</td></tr>";
  });
  document.getElementById("rows").innerHTML = rows.join("");
  return doc.refresh_ms;
}
function renderStatus(st) {
  var staleBadge = document.getElementById("stale");
  if (st.stale_shards > 0) {
    staleBadge.style.display = "";
    staleBadge.textContent = st.stale_shards + " stale shard" + (st.stale_shards > 1 ? "s" : "");
  } else {
    staleBadge.style.display = "none";
  }
  var rows = (st.replicas || []).map(function (r) {
    return '<tr><td class="name">' + r.name + "</td><td>" + r.observed + "</td><td>" +
      (r.max_window < 0 ? "–" : r.max_window) + "</td><td>" + r.fails +
      '</td><td class="' + (r.stale ? "bad" : "") + '">' +
      (r.stale ? "STALE" : (r.alarming ? "alarming" : "ok")) + "</td></tr>";
  });
  document.getElementById("shards").innerHTML = rows.join("");
}
function ms(v) { return (v * 1000).toFixed(2) + "ms"; }
function renderSLO(view) {
  var box = document.getElementById("slo");
  if (!view) { box.style.display = "none"; return; }
  box.style.display = "";
  document.getElementById("slometa").textContent =
    view.requests + " requests · " + view.over_budget + " over a " +
    ms(view.budget_seconds) + " budget · target " + (view.target * 100).toFixed(2) + "%";
  document.getElementById("slorows").innerHTML = (view.stages || []).map(function (s) {
    return '<tr><td class="name">' + s.stage + "</td><td>" + s.count + "</td><td>" +
      ms(s.p50) + "</td><td>" + ms(s.p99) + "</td><td>" + ms(s.p999) + "</td><td>" + ms(s.max) + "</td></tr>";
  }).join("");
  document.getElementById("sloex").textContent = (view.exemplars || []).length
    ? "slowest: " + view.exemplars.map(function (e) { return e.id + " (" + ms(e.v) + ")"; }).join(", ")
    : "";
}
function poll() {
  Promise.all([
    fetch("timeline").then(function (r) { return r.json(); }),
    fetch("status").then(function (r) { return r.json(); }),
    fetch("slo").then(function (r) { return r.ok ? r.json() : null; }).catch(function () { return null; })
  ]).then(function (res) {
    var refresh = renderTimeline(res[0]);
    renderStatus(res[1]);
    renderSLO(res[2]);
    if (refresh > 0) setTimeout(poll, refresh);
  }).catch(function () { setTimeout(poll, 5000); });
}
poll();
// Durable history: pages through the aggregator's -tsdb-dir store at
// timeline/range; the panel stays hidden when the store is off (the
// probe fetch 404s).
var histState = { page: 96, from: 0, to: 0, min: 0, max: 0 };
function renderHist(doc) {
  histState.min = doc.min_index; histState.max = doc.max_index;
  histState.from = doc.from; histState.to = doc.to;
  var missing = drawDrift(document.getElementById("histchart"), doc.windows || [], doc.spans || null, lastAlarmLine);
  document.getElementById("histmeta").textContent =
    "windows " + doc.from + "–" + doc.to + " of " + doc.min_index + "–" + doc.max_index +
    " · " + (doc.windows || []).length + " persisted" +
    (missing > 0 ? " · " + missing + " missing" : "");
  document.getElementById("older").disabled = doc.from <= doc.min_index;
  document.getElementById("newer").disabled = doc.to >= doc.max_index;
}
function loadHist(from, to) {
  fetch("timeline/range?from=" + from + "&to=" + to)
    .then(function (r) { if (!r.ok) throw 0; return r.json(); })
    .then(renderHist).catch(function () {});
}
function histPage(to) {
  loadHist(Math.max(histState.min, to - histState.page + 1), to);
}
function initHist() {
  fetch("timeline/range?from=0&to=0")
    .then(function (r) { if (!r.ok) throw 0; return r.json(); })
    .then(function (doc) {
      document.getElementById("hist").style.display = "";
      document.getElementById("older").onclick = function () {
        histPage(Math.max(histState.min + histState.page - 1, histState.from - 1));
      };
      document.getElementById("newer").onclick = function () {
        histPage(Math.min(histState.max, histState.to + histState.page));
      };
      histPage(doc.max_index);
    }).catch(function () {});
}
initHist();
</script>
</body>
</html>
`
