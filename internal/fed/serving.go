package fed

// serving.go: the serving SLO half of the federation document. A
// gateway replica ships its per-stage latency histograms
// (stats.LatencyHist — deterministic, mergeable, exemplar-carrying)
// inside /federate, and the aggregator merges the latest document per
// replica into fleet-wide quantiles that are bit-equal to the
// histogram a single node would have built over the union stream.
//
// Unlike timeline windows, the serving histograms are CUMULATIVE since
// process start, so the aggregator must never accumulate them across
// scrapes: each fleet view is re-merged from scratch out of the latest
// retained document per replica. Double-merging a cumulative histogram
// would double-count every request.

import (
	"sort"

	"blackboxval/internal/stats"
)

// ServingDoc is the serving SLO section of a /federate document:
// per-stage cumulative latency histograms plus the scalar SLO state.
type ServingDoc struct {
	// BudgetSeconds is the replica's per-request latency budget.
	BudgetSeconds float64 `json:"budget_seconds"`
	// Target is the replica's SLO target fraction.
	Target float64 `json:"target"`
	// Requests counts proxied requests since process start.
	Requests int64 `json:"requests"`
	// OverBudget counts requests slower than the budget.
	OverBudget int64 `json:"over_budget"`
	// Stages maps stage name (request, decode, relay, shadow_enqueue,
	// monitor_observe) to its cumulative latency histogram.
	Stages map[string]*stats.LatencyHist `json:"stages,omitempty"`
}

// MergeServing merges replica serving documents in the given order into
// one fleet document. Nil documents are skipped; budget and target are
// adopted from the first non-nil document (shards of one fleet share an
// SLO by construction). Stage histograms are cloned before merging —
// the inputs are never modified.
func MergeServing(docs ...*ServingDoc) (*ServingDoc, error) {
	var out *ServingDoc
	for _, d := range docs {
		if d == nil {
			continue
		}
		if out == nil {
			out = &ServingDoc{
				BudgetSeconds: d.BudgetSeconds,
				Target:        d.Target,
				Stages:        map[string]*stats.LatencyHist{},
			}
		}
		out.Requests += d.Requests
		out.OverBudget += d.OverBudget
		for stage, h := range d.Stages {
			if h == nil {
				continue
			}
			if prev := out.Stages[stage]; prev == nil {
				out.Stages[stage] = h.Clone()
			} else if err := prev.Merge(h); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ServingStageView is one stage's latency summary in the fleet /slo
// document.
type ServingStageView struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// ServingView is the dashboard-facing rendering of a ServingDoc: stage
// quantile rows in canonical order plus the globally slowest exemplars
// of the end-to-end request stage.
type ServingView struct {
	BudgetSeconds float64            `json:"budget_seconds"`
	Target        float64            `json:"target"`
	Requests      int64              `json:"requests"`
	OverBudget    int64              `json:"over_budget"`
	Stages        []ServingStageView `json:"stages"`
	Exemplars     []stats.Exemplar   `json:"exemplars,omitempty"`
}

// servingStageOrder pins the rendering order of the known gateway
// stages; unknown stages follow alphabetically.
var servingStageOrder = []string{"request", "decode", "relay", "shadow_enqueue", "monitor_observe"}

// View renders the document for dashboards, with up to `exemplars`
// slowest request exemplars.
func (s *ServingDoc) View(exemplars int) ServingView {
	v := ServingView{
		BudgetSeconds: s.BudgetSeconds,
		Target:        s.Target,
		Requests:      s.Requests,
		OverBudget:    s.OverBudget,
	}
	seen := map[string]bool{}
	names := make([]string, 0, len(s.Stages))
	for _, name := range servingStageOrder {
		if s.Stages[name] != nil {
			names = append(names, name)
			seen[name] = true
		}
	}
	rest := make([]string, 0)
	for name, h := range s.Stages {
		if h != nil && !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	names = append(names, rest...)
	for _, name := range names {
		h := s.Stages[name]
		v.Stages = append(v.Stages, ServingStageView{
			Stage: name,
			Count: int64(h.Count()),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
			Max:   h.Max(),
			Mean:  h.Mean(),
		})
	}
	if h := s.Stages["request"]; h != nil {
		v.Exemplars = h.TopExemplars(exemplars)
	}
	return v
}

// FleetServing re-merges the latest serving documents across replicas,
// in replica-config (stream) order. It returns nil when no replica has
// shipped serving state yet, and nil on a merge error (incompatible
// exemplar slot configuration — logged, not fatal: the drift half of
// the fleet keeps working).
func (a *Aggregator) FleetServing() *ServingDoc {
	a.mu.Lock()
	docs := make([]*ServingDoc, 0, len(a.shards))
	for _, sh := range a.shards {
		if sh.doc != nil && sh.doc.Serving != nil {
			docs = append(docs, sh.doc.Serving)
		}
	}
	a.mu.Unlock()
	if len(docs) == 0 {
		return nil
	}
	merged, err := MergeServing(docs...)
	if err != nil {
		a.log.Warn("federate serving merge failed", "err", err)
		return nil
	}
	return merged
}
