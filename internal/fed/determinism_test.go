package fed_test

// The distributed determinism suite — the contract DESIGN.md §13 pins:
// with serving batches dispatched round-robin across N replicas (batch
// i → replica i mod N, shard windows of k batches aligned against
// single-node windows of N·k), the merged fleet timeline is bit-equal
// to the timeline a single node closes over the union stream, and the
// alert engine reaches identical decisions (same events, same values,
// same window indices, fired exactly once). The matrix crosses
// predictor training parallelism (Workers ∈ {1,2,8}, the §8 contract)
// with shard counts {1,3,5}, driving real monitors through real
// /federate HTTP scrapes.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"blackboxval/internal/core"
	"blackboxval/internal/errorgen"
	"blackboxval/internal/fed"
	"blackboxval/internal/linalg"
	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
)

// detBatches builds the shared serving workload: clean leading batches,
// then a corruption ramp strong enough to drag the estimate below the
// alarm line. Probas are precomputed once so every topology observes
// the identical stream.
func detBatches(t *testing.T, f fixture, n, rows int) []*linalg.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	gen := errorgen.Scaling{}
	out := make([]*linalg.Matrix, n)
	clean := n / 3
	for i := range out {
		idx := make([]int, rows)
		for j := range idx {
			idx[j] = rng.Intn(f.serving.Len())
		}
		batch := f.serving.SelectRows(idx)
		if i >= clean {
			magnitude := float64(i-clean+1) / float64(n-clean)
			batch = gen.Corrupt(batch, magnitude, rng)
		}
		out[i] = f.model.PredictProba(batch)
	}
	return out
}

// alertEvent is the decision-relevant projection of an alert.Event
// (timestamps legitimately differ between runs).
type alertEvent struct {
	Rule   string
	State  string
	Value  float64
	Window int64
}

func project(evs []alert.Event) []alertEvent {
	out := make([]alertEvent, len(evs))
	for i, ev := range evs {
		out[i] = alertEvent{Rule: ev.Rule, State: ev.State, Value: ev.Value, Window: ev.WindowIndex}
	}
	return out
}

// collector gathers alert events in emission order.
type collector struct {
	mu  sync.Mutex
	evs []alert.Event
}

func (c *collector) Notify(ev alert.Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

func (c *collector) events() []alert.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]alert.Event(nil), c.evs...)
}

// detRule sits between the fixture's clean estimate regime (~0.70-0.75)
// and the corruption ramp's tail (~0.60-0.65); ClearWindows=3 keeps a
// noisy mid-ramp window from resolving and re-firing the excursion.
var detRule = alert.Rule{
	Name: "estimate_low", Series: "estimate", Op: "<", Threshold: 0.70,
	Reduce: "mean", ForWindows: 1, ClearWindows: 3,
}

func newEngine(t *testing.T, sink *collector) *alert.Engine {
	t.Helper()
	engine, err := alert.New(alert.Config{Rules: []alert.Rule{detRule}, Notifier: sink})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// trainDetPredictor trains the fixture predictor at an explicit worker
// count — §8 guarantees the result is bit-identical for every value.
func trainDetPredictor(t *testing.T, f fixture, workers int) *core.Predictor {
	t.Helper()
	pred, err := core.TrainPredictor(f.model, f.test, core.PredictorConfig{
		Generators:  errorgen.KnownTabular(),
		Repetitions: 15,
		ForestSizes: []int{20},
		Seed:        1,
		Workers:     workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func detMonitor(t *testing.T, pred *core.Predictor, timelineWindow int) *monitor.Monitor {
	t.Helper()
	mon, err := monitor.New(monitor.Config{
		Predictor: pred, Threshold: 0.05, TimelineWindow: timelineWindow,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mon
}

// runFleet feeds the batches round-robin into nShards monitors, serves
// them over HTTP, scrapes with an aggregator wired to a fresh alert
// engine, and returns the merged windows plus the fleet's alert events.
func runFleet(t *testing.T, pred *core.Predictor, batches []*linalg.Matrix, nShards int) ([]obs.Window, []alert.Event) {
	t.Helper()
	shards := make([]*monitor.Monitor, nShards)
	cfg := fed.Config{Interval: time.Hour, Timeout: 5 * time.Second, StaleAfter: time.Hour}
	for i := range shards {
		shards[i] = detMonitor(t, pred, 1)
		srv := httptest.NewServer(fed.ReplicaHandler(shards[i], shardName(i)))
		t.Cleanup(srv.Close)
		cfg.Replicas = append(cfg.Replicas, fed.ReplicaConfig{Name: shardName(i), URL: srv.URL})
	}
	for i, p := range batches {
		shards[i%nShards].ObserveProba(p)
	}
	agg, err := fed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collector{}
	engine := newEngine(t, sink)
	agg.OnWindowClose(engine.Evaluate)
	report := agg.ScrapeOnce(context.Background())
	if len(report.Errors) != 0 {
		t.Fatalf("fleet scrape errors: %+v", report.Errors)
	}
	return agg.Windows(), sink.events()
}

// runSingle feeds the union stream into one monitor whose windows span
// nShards batches, and replays its timeline through the same rule.
func runSingle(t *testing.T, pred *core.Predictor, batches []*linalg.Matrix, nShards int) ([]obs.Window, []alert.Event) {
	t.Helper()
	mon := detMonitor(t, pred, nShards)
	sink := &collector{}
	engine := newEngine(t, sink)
	mon.Timeline().OnWindowClose(engine.Evaluate)
	for _, p := range batches {
		mon.ObserveProba(p)
	}
	return mon.Timeline().Windows(), sink.events()
}

// TestFleetBitEqualSingleNode is the matrix: every (workers, shards)
// cell must produce a merged timeline bit-equal to the single-node
// union-stream timeline and identical alert decisions. Within one
// workers value the single-node run is shared across shard counts;
// across workers values the runs must also agree with each other.
func TestFleetBitEqualSingleNode(t *testing.T) {
	f := getFixture(t)
	const windows = 4
	var crossWorkers map[int]string // shards -> canonical fleet timeline

	for _, workers := range []int{1, 2, 8} {
		pred := trainDetPredictor(t, f, workers)

		for _, nShards := range []int{1, 3, 5} {
			name := fmt.Sprintf("workers=%d/shards=%d", workers, nShards)
			// Each topology gets a stream sized to close exactly
			// `windows` windows, with its own clean head and ramp tail.
			stream := detBatches(t, f, nShards*windows, 40)
			singleWs, singleEvents := runSingle(t, pred, stream, nShards)
			fleetWs, fleetEvents := runFleet(t, pred, stream, nShards)
			if len(singleWs) != windows || len(fleetWs) != windows {
				t.Fatalf("%s: closed %d fleet / %d single windows, want %d",
					name, len(fleetWs), len(singleWs), windows)
			}
			var fleetCanon string
			for i := range fleetWs {
				got := canonicalWindow(t, fleetWs[i], true)
				want := canonicalWindow(t, singleWs[i], false)
				if got != want {
					t.Fatalf("%s window %d: merged != union\nmerged: %s\nunion:  %s",
						name, i, got, want)
				}
				fleetCanon += got + "\n"
			}

			// Alert parity: same decisions, same values, same windows —
			// and the excursion fires exactly once.
			gotEvents, wantEvents := project(fleetEvents), project(singleEvents)
			if fmt.Sprint(gotEvents) != fmt.Sprint(wantEvents) {
				t.Fatalf("%s: alert events diverge\nfleet:  %v\nsingle: %v",
					name, gotEvents, wantEvents)
			}
			firing := 0
			for _, ev := range gotEvents {
				if ev.State == "firing" {
					firing++
				}
			}
			if firing != 1 {
				t.Fatalf("%s: %d firing events, want exactly 1 (%v)", name, firing, gotEvents)
			}

			// Cross-workers: the same shard count must yield the same
			// bytes regardless of training parallelism.
			if crossWorkers == nil {
				crossWorkers = map[int]string{}
			}
			if prev, ok := crossWorkers[nShards]; ok {
				if prev != fleetCanon {
					t.Fatalf("%s: fleet timeline differs across workers values", name)
				}
			} else {
				crossWorkers[nShards] = fleetCanon
			}
		}
	}
}

// TestAggregatorOfOneIsTransparent pins that federating a single
// replica adds nothing but the enrichment series: the merged windows
// equal the replica's own timeline byte-for-byte once fleet_* series
// and wall-clock times are stripped.
func TestAggregatorOfOneIsTransparent(t *testing.T) {
	f := getFixture(t)
	batches := detBatches(t, f, 6, 40)
	mon := detMonitor(t, f.pred, 1)
	for _, p := range batches {
		mon.ObserveProba(p)
	}
	srv := httptest.NewServer(fed.ReplicaHandler(mon, "solo"))
	defer srv.Close()
	agg, err := fed.New(fed.Config{
		Replicas: []fed.ReplicaConfig{{Name: "solo", URL: srv.URL}},
		Interval: time.Hour, Timeout: 5 * time.Second, StaleAfter: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg.ScrapeOnce(context.Background())
	raw := mon.Timeline().Windows()
	merged := agg.Windows()
	if len(merged) != len(raw) {
		t.Fatalf("merged %d windows, raw %d", len(merged), len(raw))
	}
	for i := range merged {
		if canonicalWindow(t, merged[i], true) != canonicalWindow(t, raw[i], false) {
			t.Fatalf("window %d: aggregator-of-one altered the timeline", i)
		}
		// The fleet drift statistics must be present and genuine: the
		// merged serving distribution against the replica's references.
		if _, ok := merged[i].Series["fleet_ks_max"]; !ok {
			t.Fatalf("window %d lacks fleet_ks_max", i)
		}
	}
	// The ramp's corrupted tail must show more fleet-level drift than
	// the clean head — the KS statistic is computed over true merged
	// distributions, so it must react to the corruption.
	head := merged[0].Series["fleet_ks_max"].Last
	tail := merged[len(merged)-1].Series["fleet_ks_max"].Last
	if !(tail > head) {
		t.Fatalf("fleet KS did not respond to the ramp: head %v tail %v", head, tail)
	}
}

// TestFleetDocReExportMergesDownstream pins hierarchical federation:
// an aggregator's /federate re-export must itself be a valid replica
// document that a second-tier aggregator can scrape and reproduce.
func TestFleetDocReExportMergesDownstream(t *testing.T) {
	f := getFixture(t)
	batches := detBatches(t, f, 6, 40)
	const nShards = 3
	fleetWs, _ := runFleet(t, f.pred, batches, nShards)

	// Rebuild the same fleet, then stack a tier-2 aggregator on tier-1.
	shards := make([]*monitor.Monitor, nShards)
	cfg := fed.Config{Interval: time.Hour, Timeout: 5 * time.Second, StaleAfter: time.Hour}
	for i := range shards {
		shards[i] = detMonitor(t, f.pred, 1)
		srv := httptest.NewServer(fed.ReplicaHandler(shards[i], shardName(i)))
		t.Cleanup(srv.Close)
		cfg.Replicas = append(cfg.Replicas, fed.ReplicaConfig{Name: shardName(i), URL: srv.URL})
	}
	for i, p := range batches {
		shards[i%nShards].ObserveProba(p)
	}
	tier1, err := fed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tier1.ScrapeOnce(context.Background())
	tier1Srv := httptest.NewServer(tier1.Handler())
	defer tier1Srv.Close()

	tier2, err := fed.New(fed.Config{
		Replicas: []fed.ReplicaConfig{{Name: "fleet", URL: tier1Srv.URL + "/federate"}},
		Interval: time.Hour, Timeout: 5 * time.Second, StaleAfter: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	tier2.ScrapeOnce(context.Background())
	tier2Ws := tier2.Windows()
	if len(tier2Ws) != len(fleetWs) {
		t.Fatalf("tier-2 merged %d windows, tier-1 %d", len(tier2Ws), len(fleetWs))
	}
	for i := range tier2Ws {
		if canonicalWindow(t, tier2Ws[i], true) != canonicalWindow(t, fleetWs[i], true) {
			t.Fatalf("window %d: tier-2 re-merge diverged from tier-1", i)
		}
	}
}
