// Package fed is the federation layer for fleet-scale sharded
// monitoring. Every gateway/monitor replica exposes its drift state at
// GET /federate as a versioned JSON document carrying window aggregates
// with their mergeable sufficient statistics — exact-sum accumulators
// and deterministic quantile sketches — plus the static per-class
// reference output distributions. An Aggregator (cmd/ppm-aggregate)
// scrapes N replicas on an interval, aligns their windows by index and
// merges them into one fleet-wide timeline over which the existing
// alert engine, dashboard and incident capture run unchanged.
//
// The layer extends DESIGN.md §8's determinism contract to
// distribution (§13): with serving batches dispatched round-robin
// across replicas, merge(shard₁..shardₙ) of aligned windows is
// bit-equal to the window a single node would have closed over the
// union stream — so a fleet reaches exactly the same verdicts as the
// monolith it replaced.
package fed

import (
	"encoding/json"
	"net/http"

	"blackboxval/internal/monitor"
	"blackboxval/internal/obs"
	"blackboxval/internal/stats"
)

// DocVersion is the /federate wire format version. Aggregators reject
// documents with a different version rather than mis-merging them.
const DocVersion = 1

// Doc is the versioned JSON document one replica serves at /federate:
// its retained timeline windows (each aggregate carrying the mergeable
// sketch and exact sum), the alarm geometry, and the drift-test
// reference distributions.
type Doc struct {
	// Version is the wire format version (DocVersion).
	Version int `json:"version"`
	// Replica is the self-reported replica name (may be empty; the
	// aggregator keys shards by its own configuration, not this field).
	Replica string `json:"replica"`
	// WindowBatches is the replica's commits-per-window.
	WindowBatches int `json:"window_batches"`
	// Capacity is the replica's timeline ring bound.
	Capacity int `json:"capacity"`
	// Quantiles is the percentile grid of the replica's timeline.
	Quantiles []float64 `json:"quantiles"`
	// AlarmLine is the replica's alarm threshold line.
	AlarmLine float64 `json:"alarm_line"`
	// Alarming is the replica's live alarm state.
	Alarming bool `json:"alarming"`
	// Observed counts batches the replica's monitor has committed —
	// the progress watermark scrapers use to tell traffic has drained.
	Observed int `json:"observed"`
	// Windows are the retained closed windows, oldest first.
	Windows []obs.Window `json:"windows"`
	// References are the per-class held-out output distributions keyed
	// by their proba_class_<c> series names, shipped so the aggregator
	// can run drift tests against merged serving distributions.
	References map[string]*stats.KLL `json:"references,omitempty"`
	// Serving is the replica's serving SLO state (per-stage cumulative
	// latency histograms); absent for replicas without a gateway. The
	// field is additive, so DocVersion is unchanged — old aggregators
	// ignore it, old replicas simply never send it.
	Serving *ServingDoc `json:"serving,omitempty"`
}

// BuildDoc snapshots a monitor into its /federate document.
func BuildDoc(mon *monitor.Monitor, replica string) Doc {
	tl := mon.Timeline()
	return Doc{
		Version:       DocVersion,
		Replica:       replica,
		WindowBatches: tl.WindowBatches(),
		Capacity:      tl.Capacity(),
		Quantiles:     tl.Quantiles(),
		AlarmLine:     mon.AlarmLine(),
		Alarming:      mon.Alarming(),
		Observed:      mon.Observed(),
		Windows:       tl.Windows(),
		References:    mon.ReferenceSketches(),
	}
}

// ReplicaHandler serves a monitor's federation document at GET
// <mount>/federate semantics: any GET to the handler returns the
// current Doc. Mounted by the gateway (top-level /federate) and
// ppm-monitor.
func ReplicaHandler(mon *monitor.Monitor, replica string) http.Handler {
	return ReplicaHandlerServing(mon, replica, nil)
}

// ReplicaHandlerServing is ReplicaHandler with a serving SLO provider:
// each GET snapshots the provider's ServingDoc into the document. The
// gateway passes its SLO tracker's snapshot; a nil provider (bare
// ppm-monitor) omits the section.
func ReplicaHandlerServing(mon *monitor.Monitor, replica string, serving func() *ServingDoc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		// Join the aggregator's sampled scrape trace: the federate_serve
		// span is the replica-side half of the scrape waterfall.
		if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
			if tc, err := obs.ParseTraceparent(tp); err == nil && tc.Sampled() {
				_, span := obs.StartSpan(obs.ContextWithTrace(r.Context(), tc), "federate_serve")
				span.SetAttr("replica", replica)
				defer span.End()
			}
		}
		doc := BuildDoc(mon, replica)
		if serving != nil {
			doc.Serving = serving()
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if err := json.NewEncoder(w).Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// minWindowIndex returns the smallest retained window index (ok=false
// when the document holds no windows).
func minWindowIndex(d *Doc) (int64, bool) {
	if d == nil || len(d.Windows) == 0 {
		return 0, false
	}
	return d.Windows[0].Index, true
}

// maxWindowIndex returns the largest retained window index.
func maxWindowIndex(d *Doc) (int64, bool) {
	if d == nil || len(d.Windows) == 0 {
		return 0, false
	}
	return d.Windows[len(d.Windows)-1].Index, true
}

// findWindow returns the window with the given index. Windows are
// stored oldest-first with consecutive indices, so this is a direct
// offset; it falls back to a scan if a replica served a gapped ring.
func findWindow(d *Doc, index int64) (obs.Window, bool) {
	min, ok := minWindowIndex(d)
	if !ok || index < min {
		return obs.Window{}, false
	}
	off := index - min
	if off < int64(len(d.Windows)) && d.Windows[off].Index == index {
		return d.Windows[off], true
	}
	for _, w := range d.Windows {
		if w.Index == index {
			return w, true
		}
	}
	return obs.Window{}, false
}
