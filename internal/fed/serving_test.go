package fed_test

// Serving SLO federation: the latency-histogram half of the
// determinism contract. A request stream partitioned round-robin
// across N gateway shards and federated through real /federate HTTP
// scrapes must merge into per-stage histograms bit-equal (canonical
// JSON) to the histogram a single node would have built over the union
// stream — including the exemplar request IDs, whose bounded top-K
// retention is itself a merge homomorphism.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"blackboxval/internal/fed"
	"blackboxval/internal/stats"
)

// servingStream is a deterministic latency stream with request ids:
// lognormal around ~5ms with a heavy 100× tail every 50th request.
func servingStream(n int, seed int64) ([]float64, []string) {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	ids := make([]string, n)
	for i := range vals {
		v := 0.005 * math.Exp(0.5*rng.NormFloat64())
		if i%50 == 17 {
			v *= 100
		}
		vals[i] = v
		ids[i] = fmt.Sprintf("req-%06d", i)
	}
	return vals, ids
}

// buildServingDocs partitions the stream round-robin into nShards
// serving documents (request + relay stages; relay at 80% of the
// request latency) and returns them plus the single-node union doc.
func buildServingDocs(t *testing.T, nShards int) ([]*fed.ServingDoc, *fed.ServingDoc) {
	t.Helper()
	vals, ids := servingStream(600, 7)
	mk := func() *fed.ServingDoc {
		return &fed.ServingDoc{
			BudgetSeconds: 0.025, Target: 0.99,
			Stages: map[string]*stats.LatencyHist{
				"request": stats.NewLatencyHist(stats.DefaultExemplarSlots),
				"relay":   stats.NewLatencyHist(stats.DefaultExemplarSlots),
			},
		}
	}
	docs := make([]*fed.ServingDoc, nShards)
	for i := range docs {
		docs[i] = mk()
	}
	union := mk()
	for i, v := range vals {
		for _, d := range []*fed.ServingDoc{docs[i%nShards], union} {
			d.Stages["request"].ObserveID(v, ids[i])
			d.Stages["relay"].ObserveID(0.8*v, ids[i])
			d.Requests++
			if v > d.BudgetSeconds {
				d.OverBudget++
			}
		}
	}
	return docs, union
}

func canonicalServing(t *testing.T, d *fed.ServingDoc) string {
	t.Helper()
	buf, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestFleetServingBitEqualUnion scrapes nShards replicas over real
// /federate HTTP and checks the aggregator's merged serving state is
// bit-equal to the union-stream document, for every shard count.
func TestFleetServingBitEqualUnion(t *testing.T) {
	f := getFixture(t)
	for _, nShards := range []int{1, 3, 5} {
		t.Run(fmt.Sprintf("shards=%d", nShards), func(t *testing.T) {
			docs, union := buildServingDocs(t, nShards)
			cfg := fed.Config{Interval: time.Hour, Timeout: 5 * time.Second, StaleAfter: time.Hour}
			for i := range docs {
				doc := docs[i]
				srv := httptest.NewServer(fed.ReplicaHandlerServing(
					newMonitor(t, f, 1), shardName(i), func() *fed.ServingDoc { return doc }))
				t.Cleanup(srv.Close)
				cfg.Replicas = append(cfg.Replicas, fed.ReplicaConfig{Name: shardName(i), URL: srv.URL})
			}
			agg, err := fed.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			report := agg.ScrapeOnce(context.Background())
			if len(report.Errors) != 0 {
				t.Fatalf("scrape errors: %+v", report.Errors)
			}
			merged := agg.FleetServing()
			if merged == nil {
				t.Fatal("no fleet serving state after scrape")
			}
			if got, want := canonicalServing(t, merged), canonicalServing(t, union); got != want {
				t.Fatalf("shards=%d: merged serving != union\nmerged: %s\nunion:  %s", nShards, got, want)
			}
			// Quantiles of the merged state are the union's, bit for bit.
			for _, stage := range []string{"request", "relay"} {
				for _, q := range []float64{0.5, 0.99, 0.999} {
					got := merged.Stages[stage].Quantile(q)
					want := union.Stages[stage].Quantile(q)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("stage %s q%v: merged %v != union %v", stage, q, got, want)
					}
				}
			}
			// The fleet re-export carries the merged serving section, so
			// tier-2 aggregators and dashboards see it too.
			if fd := agg.FleetDoc(); fd.Serving == nil ||
				canonicalServing(t, fd.Serving) != canonicalServing(t, union) {
				t.Fatal("FleetDoc serving section diverges from union")
			}
		})
	}
}

// TestFleetSLOEndpoint pins the aggregator's /slo surface: 404 before
// any serving state is federated, then a rendered view with stage rows
// and exemplar ids after a scrape.
func TestFleetSLOEndpoint(t *testing.T) {
	f := getFixture(t)
	docs, _ := buildServingDocs(t, 1)
	var serving *fed.ServingDoc // nil until "the gateway starts serving"
	srv := httptest.NewServer(fed.ReplicaHandlerServing(
		newMonitor(t, f, 1), "solo", func() *fed.ServingDoc { return serving }))
	defer srv.Close()
	agg, err := fed.New(fed.Config{
		Replicas: []fed.ReplicaConfig{{Name: "solo", URL: srv.URL}},
		Interval: time.Hour, Timeout: 5 * time.Second, StaleAfter: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	defer aggSrv.Close()

	agg.ScrapeOnce(context.Background())
	resp, err := http.Get(aggSrv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/slo before serving state = %d, want 404", resp.StatusCode)
	}

	serving = docs[0]
	agg.ScrapeOnce(context.Background())
	resp, err = http.Get(aggSrv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/slo = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Fatalf("/slo Cache-Control = %q", got)
	}
	var view fed.ServingView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Requests != 600 || len(view.Stages) != 2 {
		t.Fatalf("view = %+v, want 600 requests over 2 stages", view)
	}
	if view.Stages[0].Stage != "request" {
		t.Fatalf("stage order: first is %q, want request", view.Stages[0].Stage)
	}
	if len(view.Exemplars) == 0 || view.Exemplars[0].RequestID == "" {
		t.Fatalf("view exemplars = %+v, want slowest request ids", view.Exemplars)
	}
}

// TestMergeServingRules pins the merge conventions: nil docs skipped,
// inputs never mutated, disjoint stage sets unioned.
func TestMergeServingRules(t *testing.T) {
	a := &fed.ServingDoc{BudgetSeconds: 0.1, Target: 0.99, Requests: 2,
		Stages: map[string]*stats.LatencyHist{"request": stats.NewLatencyHist(2)}}
	a.Stages["request"].ObserveID(0.01, "a-1")
	a.Stages["request"].ObserveID(0.02, "a-2")
	b := &fed.ServingDoc{BudgetSeconds: 0.1, Target: 0.99, Requests: 1, OverBudget: 1,
		Stages: map[string]*stats.LatencyHist{"relay": stats.NewLatencyHist(2)}}
	b.Stages["relay"].ObserveID(0.2, "b-1")

	before := canonicalServing(t, a)
	merged, err := fed.MergeServing(nil, a, nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalServing(t, a) != before {
		t.Fatal("MergeServing mutated its input")
	}
	if merged.Requests != 3 || merged.OverBudget != 1 {
		t.Fatalf("merged scalars = %+v", merged)
	}
	if merged.Stages["request"].Count() != 2 || merged.Stages["relay"].Count() != 1 {
		t.Fatal("disjoint stages were not unioned")
	}
	if out, err := fed.MergeServing(nil, nil); err != nil || out != nil {
		t.Fatalf("all-nil merge = (%v, %v), want (nil, nil)", out, err)
	}
}
