package fed

// aggregator.go: the fleet-side half of the federation layer. An
// Aggregator scrapes N replicas' /federate documents on an interval
// (per-replica timeouts, failures isolated per shard), aligns their
// timeline windows by index, and merges each aligned set — in the
// configured replica order, which is the round-robin stream order —
// into one fleet window via obs.MergeWindowSet. The merged window is
// enriched with fleet-level drift statistics (KS of merged per-class
// serving distributions against the shipped references) and appended
// to a fleet ring that behaves exactly like a replica timeline:
// OnWindowClose hooks drive the stock alert engine, the dashboard
// reads Windows(), and /federate re-exports the merged view so
// aggregators compose hierarchically.
//
// Degradation policy: a replica that has not answered within
// StaleAfter is stale. Stale shards stop gating emission — the fleet
// timeline keeps advancing on the live shards (their last-good
// documents still contribute whatever windows they already shipped) —
// and the gap is surfaced through the ppm_federate_stale_shards gauge
// and the fleet_stale_shards timeline series, not through a false
// alarm.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"blackboxval/internal/labels"
	"blackboxval/internal/obs"
	"blackboxval/internal/stats"
)

// ReplicaConfig names one replica and its /federate URL.
type ReplicaConfig struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config configures an Aggregator.
type Config struct {
	// Replicas are the shards to scrape, in stream (round-robin) order —
	// the order windows merge in, which the determinism contract pins.
	Replicas []ReplicaConfig
	// Interval is the scrape cadence of Run (default 2s).
	Interval time.Duration
	// Timeout bounds each per-replica scrape (default 1s).
	Timeout time.Duration
	// StaleAfter is how long a replica may go unanswered before it stops
	// gating fleet window emission (default 5×Interval).
	StaleAfter time.Duration
	// Capacity bounds the fleet window ring (default 128).
	Capacity int
	// RefreshMillis is the fleet dashboard's poll interval (default
	// 2000; <0 disables auto-refresh).
	RefreshMillis int
	// HTTPClient overrides the scrape client (default http.Client with
	// Timeout as its deadline backstop).
	HTTPClient *http.Client
	// Logger receives structured scrape/merge events (nil = slog.Default()).
	Logger *slog.Logger
	// TraceSampleRate head-samples the scrape cycles' traces (<=0 or
	// >1 = 1.0): each sampled cycle mints one trace with a
	// federate_scrape root span and one child per replica fetch, and
	// the traceparent rides the /federate GETs so replica-side spans
	// join the same waterfall.
	TraceSampleRate float64
	// Tracer records the scrape spans (nil = obs.DefaultTracer()).
	Tracer *obs.Tracer
}

func (c *Config) defaults() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 5 * c.Interval
	}
	if c.Capacity <= 0 {
		c.Capacity = 128
	}
	if c.RefreshMillis == 0 {
		c.RefreshMillis = 2000
	}
	if c.TraceSampleRate <= 0 || c.TraceSampleRate > 1 {
		c.TraceSampleRate = 1
	}
	if c.Tracer == nil {
		c.Tracer = obs.DefaultTracer()
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
}

// shard is the aggregator's live state for one replica.
type shard struct {
	cfg     ReplicaConfig
	doc     *Doc
	lastOK  time.Time
	lastErr string
	fails   int64
}

// Aggregator merges N replicas' drift timelines into one fleet
// timeline. Safe for concurrent use: Run/ScrapeOnce write under the
// aggregator lock while HTTP handlers snapshot.
type Aggregator struct {
	cfg    Config
	client *http.Client
	log    *slog.Logger

	mu        sync.Mutex
	start     time.Time // first scrape; seeds staleness for never-seen shards
	shards    []*shard
	fleet     []obs.Window
	next      int64 // index of the next fleet window to emit
	primed    bool  // next has been aligned to the replicas' rings
	hooks     []func(obs.Window)
	alarmFn   func() bool
	quantiles []float64
	alarmLine float64
	refs      map[string]*stats.KLL
	refsWire  map[string]string // canonical encoding, for mismatch detection

	// metric families wired by RegisterMetrics (nil until then)
	scrapesMetric  *obs.Counter
	errorsMetric   *obs.Counter
	mergedMetric   *obs.Counter
	missedMetric   *obs.Counter
	mismatchMetric *obs.Counter
}

// New validates the configuration and returns a ready aggregator.
func New(cfg Config) (*Aggregator, error) {
	cfg.defaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fed: at least one replica is required")
	}
	seen := map[string]bool{}
	a := &Aggregator{cfg: cfg, client: cfg.HTTPClient, log: cfg.Logger}
	for _, r := range cfg.Replicas {
		if r.Name == "" || r.URL == "" {
			return nil, fmt.Errorf("fed: replica needs both name and url, got %+v", r)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("fed: duplicate replica name %q", r.Name)
		}
		seen[r.Name] = true
		a.shards = append(a.shards, &shard{cfg: r})
	}
	if a.client == nil {
		a.client = &http.Client{Timeout: cfg.Timeout}
	}
	return a, nil
}

// OnWindowClose registers fn to observe every merged fleet window, in
// emission order — the same contract as obs.TimeSeries.OnWindowClose,
// so the stock alert engine wires on unchanged.
func (a *Aggregator) OnWindowClose(fn func(obs.Window)) {
	a.mu.Lock()
	a.hooks = append(a.hooks, fn)
	a.mu.Unlock()
}

// SetAlarming installs the fleet alarm predicate surfaced by /healthz
// and the dashboard (typically: the alert engine has active alerts).
func (a *Aggregator) SetAlarming(fn func() bool) {
	a.mu.Lock()
	a.alarmFn = fn
	a.mu.Unlock()
}

// Alarming reports the fleet alarm state (false until SetAlarming).
func (a *Aggregator) Alarming() bool {
	a.mu.Lock()
	fn := a.alarmFn
	a.mu.Unlock()
	return fn != nil && fn()
}

// scrapeResult is one replica fetch outcome.
type scrapeResult struct {
	doc *Doc
	err error
}

// fetch retrieves and decodes one replica's document, injecting the
// scrape cycle's traceparent when the context carries one.
func (a *Aggregator) fetch(ctx context.Context, url string) (*Doc, error) {
	ctx, cancel := context.WithTimeout(ctx, a.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if tc, traced := obs.TraceFromContext(ctx); traced {
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc Doc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	if doc.Version != DocVersion {
		return nil, fmt.Errorf("federate version %d, want %d", doc.Version, DocVersion)
	}
	return &doc, nil
}

// ScrapeReport summarizes one scrape cycle.
type ScrapeReport struct {
	// Errors maps replica name to its failure (healthy replicas absent).
	Errors map[string]string
	// Emitted is how many fleet windows this cycle merged and emitted.
	Emitted int
	// Stale is the number of stale shards after the cycle.
	Stale int
}

// ScrapeOnce runs one synchronous scrape-and-merge cycle: fetch every
// replica concurrently, update shard states, emit every fleet window
// that is ready, fire hooks (outside the lock, in order). It is the
// deterministic core Run loops over — tests drive it directly.
func (a *Aggregator) ScrapeOnce(ctx context.Context) ScrapeReport {
	// One trace per scrape cycle, head-sampled deterministically from
	// the minted trace id: the federate_scrape root spans the cycle,
	// one scrape_replica child per shard, and the traceparent rides
	// every /federate GET. The trace ids are random (scrape cycles are
	// wall-clock driven, outside the §8 replay contract), but the
	// keep/drop decision still uses the shared pure function.
	if tc, err := obs.NewTraceContext(a.cfg.TraceSampleRate); err == nil && tc.Sampled() {
		cycleCtx, cycle := obs.StartSpan(obs.WithTracer(obs.ContextWithTrace(ctx, tc), a.cfg.Tracer), "federate_scrape")
		cycle.SetMetric("replicas", float64(len(a.shards)))
		defer cycle.End()
		ctx = cycleCtx
	}
	results := make([]scrapeResult, len(a.shards))
	var wg sync.WaitGroup
	for i, sh := range a.shards {
		wg.Add(1)
		go func(i int, name, url string) {
			defer wg.Done()
			fetchCtx := ctx
			if _, traced := obs.TraceFromContext(ctx); traced {
				var span *obs.Span
				fetchCtx, span = obs.StartSpan(ctx, "scrape_replica")
				span.SetAttr("replica", name)
				defer span.End()
			}
			doc, err := a.fetch(fetchCtx, url)
			results[i] = scrapeResult{doc: doc, err: err}
		}(i, sh.cfg.Name, sh.cfg.URL)
	}
	wg.Wait()

	now := time.Now()
	report := ScrapeReport{Errors: map[string]string{}}
	a.mu.Lock()
	if a.start.IsZero() {
		a.start = now
	}
	if a.scrapesMetric != nil {
		a.scrapesMetric.Inc()
	}
	for i, sh := range a.shards {
		res := results[i]
		if res.err != nil {
			sh.fails++
			sh.lastErr = res.err.Error()
			report.Errors[sh.cfg.Name] = sh.lastErr
			if a.errorsMetric != nil {
				a.errorsMetric.Inc()
			}
			a.log.Warn("federate scrape failed", "replica", sh.cfg.Name, "err", res.err)
			continue
		}
		sh.doc = res.doc
		sh.lastOK = now
		sh.lastErr = ""
		a.adoptMetadataLocked(sh.cfg.Name, res.doc)
	}
	emitted := a.emitReadyLocked(now)
	report.Emitted = len(emitted)
	report.Stale = a.staleShardsLocked(now)
	hooks := a.hooks
	a.mu.Unlock()

	for _, w := range emitted {
		for _, fn := range hooks {
			fn(w)
		}
	}
	return report
}

// adoptMetadataLocked takes alarm geometry, the quantile grid and the
// reference sketches from the first replica that supplies them, and
// flags replicas whose references disagree — shards validating against
// different held-out distributions would make the fleet drift
// statistics meaningless.
func (a *Aggregator) adoptMetadataLocked(name string, doc *Doc) {
	if a.quantiles == nil && len(doc.Quantiles) > 0 {
		a.quantiles = append([]float64(nil), doc.Quantiles...)
	}
	if a.alarmLine == 0 && doc.AlarmLine != 0 {
		a.alarmLine = doc.AlarmLine
	}
	if doc.References == nil {
		return
	}
	wire := make(map[string]string, len(doc.References))
	for series, sk := range doc.References {
		buf, err := json.Marshal(sk)
		if err != nil {
			continue
		}
		wire[series] = string(buf)
	}
	if a.refs == nil {
		a.refs = doc.References
		a.refsWire = wire
		return
	}
	for series, enc := range wire {
		if prev, ok := a.refsWire[series]; ok && prev != enc {
			if a.mismatchMetric != nil {
				a.mismatchMetric.Inc()
			}
			a.log.Warn("federate reference distribution mismatch",
				"replica", name, "series", series)
			return
		}
	}
}

// staleLocked reports whether a shard is stale at now: it has never
// answered (measured from the first scrape) or its last answer is older
// than StaleAfter.
func (a *Aggregator) staleLocked(sh *shard, now time.Time) bool {
	since := sh.lastOK
	if since.IsZero() {
		since = a.start
	}
	if since.IsZero() {
		return false
	}
	return now.Sub(since) > a.cfg.StaleAfter
}

func (a *Aggregator) staleShardsLocked(now time.Time) int {
	n := 0
	for _, sh := range a.shards {
		if a.staleLocked(sh, now) {
			n++
		}
	}
	return n
}

// emitReadyLocked advances the fleet timeline: window index a.next is
// emitted once every non-stale replica has shipped it, merged in
// replica-config order. Stale replicas contribute whatever their
// last-good document retains but never block emission. Emission stops
// at the first index some live replica has yet to close.
func (a *Aggregator) emitReadyLocked(now time.Time) []obs.Window {
	if !a.primed {
		// Start at the highest first-retained index across available
		// documents, so every shard can still contribute window one.
		aligned := false
		for _, sh := range a.shards {
			if min, ok := minWindowIndex(sh.doc); ok {
				if !aligned || min > a.next {
					a.next = min
				}
				aligned = true
			}
		}
		if !aligned {
			return nil
		}
		a.primed = true
	}
	var emitted []obs.Window
	for {
		ready := true
		contributors := make([]obs.Window, 0, len(a.shards))
		for _, sh := range a.shards {
			stale := a.staleLocked(sh, now)
			if sh.doc == nil {
				if !stale {
					ready = false
					break
				}
				continue
			}
			w, ok := findWindow(sh.doc, a.next)
			if ok {
				contributors = append(contributors, w)
				continue
			}
			if max, hasMax := maxWindowIndex(sh.doc); hasMax && a.next <= max {
				// The shard's ring already evicted this index: its
				// share of the window is lost, not pending.
				if a.missedMetric != nil {
					a.missedMetric.Inc()
				}
				a.log.Warn("federate window evicted before merge",
					"replica", sh.cfg.Name, "window", a.next)
				continue
			}
			if !stale {
				ready = false
				break
			}
		}
		if !ready || len(contributors) == 0 {
			break
		}
		merged, ok := obs.MergeWindowSet(contributors, a.quantiles)
		if !ok {
			break
		}
		merged.Index = a.next
		a.enrichLocked(&merged, now)
		a.fleet = append(a.fleet, merged)
		if len(a.fleet) > a.cfg.Capacity {
			a.fleet = a.fleet[len(a.fleet)-a.cfg.Capacity:]
		}
		a.next++
		if a.mergedMetric != nil {
			a.mergedMetric.Inc()
		}
		emitted = append(emitted, merged)
	}
	return emitted
}

// scalarAggregate wraps a single derived value as a timeline aggregate.
func scalarAggregate(v float64) obs.Aggregate {
	return obs.Aggregate{Count: 1, Sum: v, Min: v, Max: v, Last: v}
}

// enrichLocked appends fleet-level series to a merged window: the KS
// drift statistics of the merged per-class serving distributions
// against the reference sketches (fleet_ks_class_<c>, fleet_ks_max) —
// computed over the true merged distributions, never aggregated from
// per-shard statistics — and the stale-shard count at emission time.
func (a *Aggregator) enrichLocked(w *obs.Window, now time.Time) {
	if a.refs != nil {
		ksMax := 0.0
		found := false
		series := make([]string, 0, len(a.refs))
		for name := range a.refs {
			series = append(series, name)
		}
		sort.Strings(series)
		for _, name := range series {
			agg, ok := w.Series[name]
			if !ok || agg.Sketch == nil {
				continue
			}
			ks := stats.KSDistance(agg.Sketch, a.refs[name])
			w.Series["fleet_ks_"+trimProba(name)] = scalarAggregate(ks)
			if ks > ksMax {
				ksMax = ks
			}
			found = true
		}
		if found {
			w.Series["fleet_ks_max"] = scalarAggregate(ksMax)
		}
	}
	// Fleet label-feedback posterior: the labeled_correct series carries
	// per-row 0/1 samples, so its merged Count/Sum are exact fleet-wide
	// label counts (shard-invariant via ExactSum) and the Beta posterior
	// over them is identical to the one a single process joining every
	// label would hold. Uniform Beta(1,1) prior, matching labels.Config.
	if agg, ok := w.Series[labels.SeriesCorrect]; ok && agg.Count > 0 {
		sum := agg.Sum
		if agg.SumExact != nil {
			sum = agg.SumExact.Value()
		}
		alpha := 1 + sum
		beta := 1 + float64(agg.Count) - sum
		lo, hi := stats.BetaInterval(alpha, beta, 0.95)
		w.Series["fleet_labeled_acc_mean"] = scalarAggregate(stats.BetaMean(alpha, beta))
		w.Series["fleet_labeled_acc_lo95"] = scalarAggregate(lo)
		w.Series["fleet_labeled_acc_hi95"] = scalarAggregate(hi)
	}
	w.Series["fleet_stale_shards"] = scalarAggregate(float64(a.staleShardsLocked(now)))
}

// trimProba turns "proba_class_0" into "class_0" for the fleet KS
// series names.
func trimProba(series string) string {
	const prefix = "proba_"
	if len(series) > len(prefix) && series[:len(prefix)] == prefix {
		return series[len(prefix):]
	}
	return series
}

// Run scrapes on the configured interval until ctx is done. The first
// cycle runs immediately.
func (a *Aggregator) Run(ctx context.Context) {
	a.ScrapeOnce(ctx)
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			a.ScrapeOnce(ctx)
		}
	}
}

// Windows returns a snapshot of the merged fleet windows, oldest first.
func (a *Aggregator) Windows() []obs.Window {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]obs.Window(nil), a.fleet...)
}

// Last returns the most recently merged fleet window.
func (a *Aggregator) Last() (obs.Window, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.fleet) == 0 {
		return obs.Window{}, false
	}
	return a.fleet[len(a.fleet)-1], true
}

// StaleShards returns the number of currently stale replicas.
func (a *Aggregator) StaleShards() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.staleShardsLocked(time.Now())
}

// AlarmLine returns the fleet alarm line (adopted from the replicas; 0
// before the first successful scrape).
func (a *Aggregator) AlarmLine() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alarmLine
}

// Quantiles returns the adopted percentile grid (nil before the first
// successful scrape).
func (a *Aggregator) Quantiles() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]float64(nil), a.quantiles...)
}

// ShardStatus is one replica's health snapshot.
type ShardStatus struct {
	Name         string `json:"name"`
	URL          string `json:"url"`
	Stale        bool   `json:"stale"`
	Fails        int64  `json:"fails"`
	LastError    string `json:"last_error,omitempty"`
	LastOKMillis int64  `json:"last_ok_age_ms"` // -1 when never scraped
	Observed     int    `json:"observed"`
	Alarming     bool   `json:"alarming"`
	MaxWindow    int64  `json:"max_window"` // -1 when no windows retained
}

// Status is the aggregator's health document served at /status.
type Status struct {
	Replicas    []ShardStatus `json:"replicas"`
	StaleShards int           `json:"stale_shards"`
	FleetAlarm  bool          `json:"fleet_alarm"`
	Windows     int           `json:"windows"`
	NextIndex   int64         `json:"next_index"`
}

// Status snapshots the aggregator's shard health.
func (a *Aggregator) Status() Status {
	alarm := a.Alarming() // outside a.mu: the predicate may take other locks
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Status{FleetAlarm: alarm, Windows: len(a.fleet), NextIndex: a.next}
	for _, sh := range a.shards {
		s := ShardStatus{
			Name:         sh.cfg.Name,
			URL:          sh.cfg.URL,
			Stale:        a.staleLocked(sh, now),
			Fails:        sh.fails,
			LastError:    sh.lastErr,
			LastOKMillis: -1,
			MaxWindow:    -1,
		}
		if !sh.lastOK.IsZero() {
			s.LastOKMillis = now.Sub(sh.lastOK).Milliseconds()
		}
		if sh.doc != nil {
			s.Observed = sh.doc.Observed
			s.Alarming = sh.doc.Alarming
			if max, ok := maxWindowIndex(sh.doc); ok {
				s.MaxWindow = max
			}
		}
		if s.Stale {
			st.StaleShards++
		}
		st.Replicas = append(st.Replicas, s)
	}
	return st
}

// FleetDoc re-exports the merged timeline in the /federate wire format
// (gateway-of-gateways: aggregators can scrape aggregators). The
// fleet's WindowBatches is the per-window batch total across live
// shards, and Observed sums the replicas' watermarks.
func (a *Aggregator) FleetDoc() Doc {
	alarm := a.Alarming()
	serving := a.FleetServing() // outside a.mu: FleetServing locks too
	a.mu.Lock()
	defer a.mu.Unlock()
	doc := Doc{
		Serving:    serving,
		Version:    DocVersion,
		Replica:    "fleet",
		Capacity:   a.cfg.Capacity,
		Quantiles:  append([]float64(nil), a.quantiles...),
		AlarmLine:  a.alarmLine,
		Alarming:   alarm,
		Windows:    append([]obs.Window(nil), a.fleet...),
		References: a.refs,
	}
	for _, sh := range a.shards {
		if sh.doc != nil {
			doc.WindowBatches += sh.doc.WindowBatches
			doc.Observed += sh.doc.Observed
		}
	}
	return doc
}

// RegisterMetrics registers the ppm_federate_* families on reg:
//
//	ppm_federate_replicas                 gauge   configured replicas
//	ppm_federate_stale_shards             gauge   replicas currently stale
//	ppm_federate_fleet_windows            gauge   merged windows retained
//	ppm_federate_scrapes_total            counter scrape cycles
//	ppm_federate_scrape_errors_total      counter failed replica fetches
//	ppm_federate_windows_merged_total     counter fleet windows emitted
//	ppm_federate_missed_windows_total     counter shard windows evicted before merge
//	ppm_federate_reference_mismatch_total counter replicas with divergent references
func (a *Aggregator) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("ppm_federate_replicas",
		"Number of replicas this aggregator scrapes.",
		func() float64 { return float64(len(a.cfg.Replicas)) })
	reg.GaugeFunc("ppm_federate_stale_shards",
		"Replicas whose last successful /federate scrape is older than the staleness bound.",
		func() float64 { return float64(a.StaleShards()) })
	reg.GaugeFunc("ppm_federate_fleet_windows",
		"Merged fleet windows currently retained in the ring.",
		func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(len(a.fleet))
		})
	a.scrapesMetric = reg.Counter("ppm_federate_scrapes_total",
		"Completed scrape cycles across all replicas.")
	a.errorsMetric = reg.Counter("ppm_federate_scrape_errors_total",
		"Failed per-replica /federate fetches.")
	a.mergedMetric = reg.Counter("ppm_federate_windows_merged_total",
		"Fleet windows merged and emitted to the fleet timeline.")
	a.missedMetric = reg.Counter("ppm_federate_missed_windows_total",
		"Shard windows evicted from a replica ring before the fleet could merge them.")
	a.mismatchMetric = reg.Counter("ppm_federate_reference_mismatch_total",
		"Scrapes that found a replica with reference distributions diverging from the fleet's.")
}
