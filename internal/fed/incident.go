package fed

// Fleet-level incident capture. The replica-side flight recorder
// (obs/incident) snapshots raw serving batches — the aggregator never
// sees those, so its capture is a lighter artifact: the alert event
// that fired, the shard health table at that instant, and the recent
// merged windows. Enough to answer "which shard dragged the fleet
// under the line, and when" before SSHing anywhere.

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"blackboxval/internal/obs"
	"blackboxval/internal/obs/alert"
)

// CaptureConfig configures a fleet incident Capture.
type CaptureConfig struct {
	// Dir receives one JSON file per incident (created if missing).
	Dir string
	// Max bounds the number of incident files kept on disk; the oldest
	// are pruned (default 16).
	Max int
	// Windows is how many trailing merged windows each incident embeds
	// (default 8).
	Windows int
	// Cooldown suppresses captures that follow another within this span,
	// so a flapping rule doesn't churn the ring (default 30s).
	Cooldown time.Duration
	// Logger receives capture events (nil = slog.Default()).
	Logger *slog.Logger
}

func (c *CaptureConfig) defaults() {
	if c.Max <= 0 {
		c.Max = 16
	}
	if c.Windows <= 0 {
		c.Windows = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
}

// FleetIncident is the JSON artifact one capture writes.
type FleetIncident struct {
	ID      string       `json:"id"`
	At      time.Time    `json:"at"`
	Event   alert.Event  `json:"event"`
	Status  Status       `json:"status"`
	Windows []obs.Window `json:"windows"`
}

// Capture writes fleet incident files when the alert engine fires.
type Capture struct {
	cfg CaptureConfig
	agg *Aggregator

	mu   sync.Mutex
	last time.Time
	seq  int
}

// NewCapture builds a fleet incident capture bound to an aggregator.
func NewCapture(agg *Aggregator, cfg CaptureConfig) (*Capture, error) {
	cfg.defaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fed: incident capture needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Capture{cfg: cfg, agg: agg}, nil
}

// Notifier adapts the capture to the alert engine: only firing edges
// capture (resolutions are quiet), and captures inside the cooldown
// window are dropped.
func (c *Capture) Notifier() alert.Notifier {
	return alert.NotifierFunc(func(ev alert.Event) {
		if ev.State != "firing" {
			return
		}
		if _, err := c.capture(ev); err != nil {
			c.cfg.Logger.Warn("fleet incident capture failed", "err", err)
		}
	})
}

func (c *Capture) capture(ev alert.Event) (*FleetIncident, error) {
	now := time.Now()
	c.mu.Lock()
	if !c.last.IsZero() && now.Sub(c.last) < c.cfg.Cooldown {
		c.mu.Unlock()
		return nil, nil
	}
	c.last = now
	c.seq++
	id := fmt.Sprintf("fleet-%s-%03d", now.UTC().Format("20060102T150405"), c.seq)
	c.mu.Unlock()

	ws := c.agg.Windows()
	if len(ws) > c.cfg.Windows {
		ws = ws[len(ws)-c.cfg.Windows:]
	}
	inc := &FleetIncident{
		ID:      id,
		At:      now.UTC(),
		Event:   ev,
		Status:  c.agg.Status(),
		Windows: ws,
	}
	buf, err := json.MarshalIndent(inc, "", "  ")
	if err != nil {
		return nil, err
	}
	path := filepath.Join(c.cfg.Dir, id+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	c.cfg.Logger.Info("fleet incident captured",
		"id", id, "rule", ev.Rule, "window", ev.WindowIndex, "path", path)
	c.prune()
	return inc, nil
}

// prune keeps at most Max fleet incident files, deleting the oldest.
func (c *Capture) prune() {
	entries, err := filepath.Glob(filepath.Join(c.cfg.Dir, "fleet-*.json"))
	if err != nil || len(entries) <= c.cfg.Max {
		return
	}
	sort.Strings(entries) // IDs sort chronologically by construction
	for _, path := range entries[:len(entries)-c.cfg.Max] {
		if err := os.Remove(path); err != nil {
			c.cfg.Logger.Warn("fleet incident prune failed", "path", path, "err", err)
		}
	}
}

// Incidents lists the capture directory's fleet incidents, oldest
// first.
func (c *Capture) Incidents() ([]*FleetIncident, error) {
	entries, err := filepath.Glob(filepath.Join(c.cfg.Dir, "fleet-*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(entries)
	out := make([]*FleetIncident, 0, len(entries))
	for _, path := range entries {
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var inc FleetIncident
		if err := json.Unmarshal(buf, &inc); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, &inc)
	}
	return out, nil
}
