package frame

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// InferCSV parses CSV data with a header row, inferring each column's
// kind from its values, for ingesting user data without a hand-written
// schema:
//
//   - a column whose non-missing cells all parse as numbers is Numeric,
//   - otherwise, a column with a small distinct-value set is Categorical,
//   - otherwise it is Text.
//
// Empty cells and "NA"/"null"-style tokens count as missing.
func InferCSV(r io.Reader) (*DataFrame, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("frame: reading CSV header: %w", err)
	}
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("frame: reading CSV row %d: %w", len(rows), err)
		}
		rows = append(rows, rec)
	}

	d := New()
	for j, rawName := range header {
		name := strings.TrimSpace(rawName)
		if name == "" {
			return nil, fmt.Errorf("frame: column %d has an empty header", j)
		}
		col := make([]string, len(rows))
		for i, rec := range rows {
			col[i] = strings.TrimSpace(rec[j])
		}
		switch inferKind(col) {
		case Numeric:
			nums := make([]float64, len(col))
			for i, cell := range col {
				if isMissingToken(cell) {
					nums[i] = math.NaN()
					continue
				}
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("frame: column %q inferred numeric but row %d holds %q", name, i, cell)
				}
				nums[i] = v
			}
			d.AddNumeric(name, nums)
		case Categorical:
			vals := make([]string, len(col))
			for i, cell := range col {
				if !isMissingToken(cell) {
					vals[i] = cell
				}
			}
			d.AddCategorical(name, vals)
		default:
			vals := make([]string, len(col))
			for i, cell := range col {
				if !isMissingToken(cell) {
					vals[i] = cell
				}
			}
			d.AddText(name, vals)
		}
	}
	return d, nil
}

// missingTokens are cell values treated as missing during inference.
var missingTokens = map[string]bool{
	"": true, "NA": true, "N/A": true, "na": true, "null": true,
	"NULL": true, "none": true, "None": true, "nan": true, "NaN": true,
}

func isMissingToken(cell string) bool { return missingTokens[cell] }

// inferKind decides the column kind from its raw string values.
func inferKind(col []string) Kind {
	nonMissing := 0
	numeric := 0
	words := 0
	distinct := map[string]bool{}
	for _, cell := range col {
		if isMissingToken(cell) {
			continue
		}
		nonMissing++
		distinct[cell] = true
		words += len(strings.Fields(cell))
		if _, err := strconv.ParseFloat(cell, 64); err == nil {
			numeric++
		}
	}
	if nonMissing == 0 {
		return Categorical // fully missing: treat as categorical of blanks
	}
	if numeric == nonMissing {
		return Numeric
	}
	// Multi-word values are prose, not category labels.
	if float64(words)/float64(nonMissing) > 3 {
		return Text
	}
	// Small distinct-value set relative to the data: categorical.
	limit := 20
	if frac := nonMissing / 20; frac > limit {
		limit = frac
	}
	if len(distinct) <= limit {
		return Categorical
	}
	return Text
}
