package frame

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func sampleFrame() *DataFrame {
	return New().
		AddNumeric("age", []float64{18, 40, 37}).
		AddCategorical("job", []string{"eng", "doc", "eng"}).
		AddText("bio", []string{"hello world", "lorem ipsum", "foo bar"})
}

func TestAddAndAccess(t *testing.T) {
	d := sampleFrame()
	if d.NumRows() != 3 || d.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", d.NumRows(), d.NumCols())
	}
	if d.Column("age").Num[1] != 40 {
		t.Fatal("numeric column wrong")
	}
	if d.Column("job").Str[0] != "eng" {
		t.Fatal("categorical column wrong")
	}
	if d.Column("nope") != nil {
		t.Fatal("missing column should be nil")
	}
	names := d.ColumnNames()
	if len(names) != 3 || names[0] != "age" || names[2] != "bio" {
		t.Fatalf("names = %v", names)
	}
}

func TestDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().AddNumeric("x", []float64{1}).AddNumeric("x", []float64{2})
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().AddNumeric("x", []float64{1, 2}).AddNumeric("y", []float64{1})
}

func TestNamesOfKind(t *testing.T) {
	d := sampleFrame()
	if got := d.NamesOfKind(Numeric); len(got) != 1 || got[0] != "age" {
		t.Fatalf("numeric names = %v", got)
	}
	if got := d.NamesOfKind(Categorical); len(got) != 1 || got[0] != "job" {
		t.Fatalf("categorical names = %v", got)
	}
	if got := d.NamesOfKind(Text); len(got) != 1 || got[0] != "bio" {
		t.Fatalf("text names = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sampleFrame()
	c := d.Clone()
	c.Column("age").Num[0] = 99
	c.Column("job").Str[0] = "nurse"
	if d.Column("age").Num[0] != 18 || d.Column("job").Str[0] != "eng" {
		t.Fatal("clone aliases original storage")
	}
}

func TestSelectRowsWithRepeats(t *testing.T) {
	d := sampleFrame()
	s := d.SelectRows([]int{2, 2, 0})
	if s.NumRows() != 3 {
		t.Fatalf("rows = %d", s.NumRows())
	}
	if s.Column("age").Num[0] != 37 || s.Column("age").Num[2] != 18 {
		t.Fatalf("selected ages = %v", s.Column("age").Num)
	}
	if s.Column("job").Str[1] != "eng" {
		t.Fatal("selected job wrong")
	}
}

func TestMissingMarkers(t *testing.T) {
	d := sampleFrame()
	age := d.Column("age")
	job := d.Column("job")
	if IsMissing(age, 0) || IsMissing(job, 0) {
		t.Fatal("fresh cells should not be missing")
	}
	SetMissing(age, 0)
	SetMissing(job, 1)
	if !IsMissing(age, 0) || !math.IsNaN(age.Num[0]) {
		t.Fatal("numeric missing marker wrong")
	}
	if !IsMissing(job, 1) || job.Str[1] != "" {
		t.Fatal("categorical missing marker wrong")
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	d := New().AddNumeric("x", []float64{1, 2, 3, 4, 5})
	s := d.Shuffle(rand.New(rand.NewSource(1)))
	sum := 0.0
	for _, v := range s.Column("x").Num {
		sum += v
	}
	if sum != 15 || s.NumRows() != 5 {
		t.Fatalf("shuffle lost rows: %v", s.Column("x").Num)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := New().
		AddNumeric("age", []float64{18, math.NaN()}).
		AddCategorical("job", []string{"eng", ""}).
		AddText("bio", []string{"a,b", "quote\"inside"})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	specs := []ColumnSpec{{"age", Numeric}, {"job", Categorical}, {"bio", Text}}
	got, err := ReadCSV(&buf, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	if got.Column("age").Num[0] != 18 || !math.IsNaN(got.Column("age").Num[1]) {
		t.Fatalf("age = %v", got.Column("age").Num)
	}
	if got.Column("job").Str[1] != "" {
		t.Fatal("missing categorical not round-tripped")
	}
	if got.Column("bio").Str[0] != "a,b" || got.Column("bio").Str[1] != "quote\"inside" {
		t.Fatalf("bio = %v", got.Column("bio").Str)
	}
}

func TestReadCSVHeaderMismatch(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), []ColumnSpec{{"a", Numeric}, {"c", Numeric}})
	if err == nil {
		t.Fatal("expected header mismatch error")
	}
}

func TestReadCSVBadNumber(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a\nnot-a-number\n"), []ColumnSpec{{"a", Numeric}})
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" || Text.String() != "text" {
		t.Fatal("kind strings wrong")
	}
}
