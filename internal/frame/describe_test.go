package frame

import (
	"math"
	"strings"
	"testing"
)

func TestDescribeNumeric(t *testing.T) {
	d := New().AddNumeric("x", []float64{1, 2, 3, 4, math.NaN()})
	s := d.Describe()[0]
	if s.Kind != Numeric || s.Rows != 5 || s.Missing != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.MissingRate-0.2) > 1e-12 {
		t.Fatalf("missing rate = %v", s.MissingRate)
	}
	if !strings.Contains(s.String(), "numeric") {
		t.Fatal("string render wrong")
	}
}

func TestDescribeCategorical(t *testing.T) {
	d := New().AddCategorical("c", []string{"a", "b", "a", "", "a", "c"})
	s := d.Describe()[0]
	if s.Distinct != 3 || s.Missing != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if len(s.TopValues) != 3 || s.TopValues[0] != "a" || s.TopCounts[0] != 3 {
		t.Fatalf("top values = %v %v", s.TopValues, s.TopCounts)
	}
	if !strings.Contains(s.String(), "a(3)") {
		t.Fatalf("string render = %q", s.String())
	}
}

func TestDescribeText(t *testing.T) {
	d := New().AddText("t", []string{"one two three", "four five", ""})
	s := d.Describe()[0]
	if s.Missing != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.MeanTokens-2.5) > 1e-12 {
		t.Fatalf("mean tokens = %v", s.MeanTokens)
	}
}

func TestDescribeAllColumns(t *testing.T) {
	d := sampleFrame()
	summaries := d.Describe()
	if len(summaries) != 3 {
		t.Fatalf("summaries = %d", len(summaries))
	}
	if summaries[0].Name != "age" || summaries[1].Name != "job" || summaries[2].Name != "bio" {
		t.Fatal("order not preserved")
	}
}

func TestDescribeEmptyNumericColumn(t *testing.T) {
	d := New().AddNumeric("x", []float64{math.NaN(), math.NaN()})
	s := d.Describe()[0]
	if s.Missing != 2 || s.MissingRate != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Min != 0 || s.Max != 0 {
		t.Fatal("fully missing column should keep zero stats")
	}
}
