// Package frame implements a small typed dataframe for relational data:
// numeric columns (with NaN as the missing marker), categorical columns
// (with "" as the missing marker) and free-text columns. It is the
// substrate that error generators corrupt and that the featurization
// pipeline consumes, mirroring the role pandas plays in the paper.
package frame

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind identifies the type of a column.
type Kind int

const (
	// Numeric columns hold float64 values; math.NaN() marks missing cells.
	Numeric Kind = iota
	// Categorical columns hold strings from a finite domain; "" marks
	// missing cells.
	Categorical
	// Text columns hold free-form strings (e.g. tweets).
	Text
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column is a named, typed vector of values. Exactly one of Num or Str is
// populated depending on Kind (Str backs both Categorical and Text).
type Column struct {
	Name string
	Kind Kind
	Num  []float64
	Str  []string
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	if c.Kind == Numeric {
		return len(c.Num)
	}
	return len(c.Str)
}

// Clone returns a deep copy of the column.
func (c *Column) Clone() *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	if c.Num != nil {
		out.Num = append([]float64(nil), c.Num...)
	}
	if c.Str != nil {
		out.Str = append([]string(nil), c.Str...)
	}
	return out
}

// DataFrame is an ordered collection of equal-length columns.
type DataFrame struct {
	cols  []*Column
	index map[string]int
}

// New returns an empty dataframe.
func New() *DataFrame {
	return &DataFrame{index: make(map[string]int)}
}

// AddNumeric appends a numeric column. It panics if the name is taken or
// the length disagrees with existing columns.
func (d *DataFrame) AddNumeric(name string, values []float64) *DataFrame {
	d.add(&Column{Name: name, Kind: Numeric, Num: values})
	return d
}

// AddCategorical appends a categorical column.
func (d *DataFrame) AddCategorical(name string, values []string) *DataFrame {
	d.add(&Column{Name: name, Kind: Categorical, Str: values})
	return d
}

// AddText appends a free-text column.
func (d *DataFrame) AddText(name string, values []string) *DataFrame {
	d.add(&Column{Name: name, Kind: Text, Str: values})
	return d
}

func (d *DataFrame) add(c *Column) {
	if _, ok := d.index[c.Name]; ok {
		panic(fmt.Sprintf("frame: duplicate column %q", c.Name))
	}
	if len(d.cols) > 0 && c.Len() != d.NumRows() {
		panic(fmt.Sprintf("frame: column %q has %d rows, frame has %d", c.Name, c.Len(), d.NumRows()))
	}
	d.index[c.Name] = len(d.cols)
	d.cols = append(d.cols, c)
}

// NumRows returns the number of rows.
func (d *DataFrame) NumRows() int {
	if len(d.cols) == 0 {
		return 0
	}
	return d.cols[0].Len()
}

// NumCols returns the number of columns.
func (d *DataFrame) NumCols() int { return len(d.cols) }

// Columns returns the columns in order. Callers must not mutate the slice.
func (d *DataFrame) Columns() []*Column { return d.cols }

// Column returns the named column, or nil if absent.
func (d *DataFrame) Column(name string) *Column {
	i, ok := d.index[name]
	if !ok {
		return nil
	}
	return d.cols[i]
}

// ColumnNames returns the column names in order.
func (d *DataFrame) ColumnNames() []string {
	names := make([]string, len(d.cols))
	for i, c := range d.cols {
		names[i] = c.Name
	}
	return names
}

// NamesOfKind returns the names of all columns of the given kind.
func (d *DataFrame) NamesOfKind(k Kind) []string {
	var names []string
	for _, c := range d.cols {
		if c.Kind == k {
			names = append(names, c.Name)
		}
	}
	return names
}

// Clone returns a deep copy of the dataframe.
func (d *DataFrame) Clone() *DataFrame {
	out := New()
	for _, c := range d.cols {
		out.add(c.Clone())
	}
	return out
}

// SelectRows returns a new dataframe containing the given rows, in order.
// Indices may repeat (sampling with replacement).
func (d *DataFrame) SelectRows(idx []int) *DataFrame {
	out := New()
	for _, c := range d.cols {
		nc := &Column{Name: c.Name, Kind: c.Kind}
		if c.Kind == Numeric {
			nc.Num = make([]float64, len(idx))
			for k, i := range idx {
				nc.Num[k] = c.Num[i]
			}
		} else {
			nc.Str = make([]string, len(idx))
			for k, i := range idx {
				nc.Str[k] = c.Str[i]
			}
		}
		out.add(nc)
	}
	return out
}

// IsMissing reports whether the cell at row i of column c is missing.
func IsMissing(c *Column, i int) bool {
	if c.Kind == Numeric {
		return math.IsNaN(c.Num[i])
	}
	return c.Str[i] == ""
}

// SetMissing marks the cell at row i of column c as missing.
func SetMissing(c *Column, i int) {
	if c.Kind == Numeric {
		c.Num[i] = math.NaN()
	} else {
		c.Str[i] = ""
	}
}

// Shuffle returns a row permutation of d drawn from rng.
func (d *DataFrame) Shuffle(rng *rand.Rand) *DataFrame {
	idx := rng.Perm(d.NumRows())
	return d.SelectRows(idx)
}
