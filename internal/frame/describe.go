package frame

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ColumnSummary profiles one column: counts, missingness and, depending
// on the kind, distribution statistics or the dominant categories.
type ColumnSummary struct {
	Name        string
	Kind        Kind
	Rows        int
	Missing     int
	MissingRate float64

	// Numeric columns.
	Min, Max, Mean, Std, Median float64

	// Categorical columns: distinct values and the most frequent ones.
	Distinct  int
	TopValues []string
	TopCounts []int

	// Text columns.
	MeanTokens float64
}

// Describe profiles every column of the dataframe, the `df.describe()`
// of this substrate. Used by the ppm-validate inspect workflow to sanity
// check serving data before it reaches a model.
func (d *DataFrame) Describe() []ColumnSummary {
	out := make([]ColumnSummary, 0, d.NumCols())
	for _, c := range d.cols {
		s := ColumnSummary{Name: c.Name, Kind: c.Kind, Rows: c.Len()}
		switch c.Kind {
		case Numeric:
			describeNumeric(c, &s)
		case Categorical:
			describeCategorical(c, &s)
		case Text:
			describeText(c, &s)
		}
		if s.Rows > 0 {
			s.MissingRate = float64(s.Missing) / float64(s.Rows)
		}
		out = append(out, s)
	}
	return out
}

func describeNumeric(c *Column, s *ColumnSummary) {
	vals := make([]float64, 0, len(c.Num))
	for _, v := range c.Num {
		if math.IsNaN(v) {
			s.Missing++
			continue
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return
	}
	sort.Float64s(vals)
	s.Min, s.Max = vals[0], vals[len(vals)-1]
	s.Median = vals[len(vals)/2]
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	s.Mean = sum / float64(len(vals))
	ss := 0.0
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(vals)))
}

func describeCategorical(c *Column, s *ColumnSummary) {
	counts := map[string]int{}
	for _, v := range c.Str {
		if v == "" {
			s.Missing++
			continue
		}
		counts[v]++
	}
	s.Distinct = len(counts)
	type kv struct {
		k string
		n int
	}
	ranked := make([]kv, 0, len(counts))
	for k, n := range counts {
		ranked = append(ranked, kv{k, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].k < ranked[j].k
	})
	for i := 0; i < len(ranked) && i < 3; i++ {
		s.TopValues = append(s.TopValues, ranked[i].k)
		s.TopCounts = append(s.TopCounts, ranked[i].n)
	}
}

func describeText(c *Column, s *ColumnSummary) {
	tokens := 0
	nonMissing := 0
	for _, v := range c.Str {
		if v == "" {
			s.Missing++
			continue
		}
		nonMissing++
		tokens += len(strings.Fields(v))
	}
	if nonMissing > 0 {
		s.MeanTokens = float64(tokens) / float64(nonMissing)
	}
}

// String renders the summary as one table row body.
func (s ColumnSummary) String() string {
	switch s.Kind {
	case Numeric:
		return fmt.Sprintf("%-22s numeric     missing %5.1f%%  min %.4g  median %.4g  mean %.4g  max %.4g  std %.4g",
			s.Name, s.MissingRate*100, s.Min, s.Median, s.Mean, s.Max, s.Std)
	case Categorical:
		tops := make([]string, len(s.TopValues))
		for i, v := range s.TopValues {
			tops[i] = fmt.Sprintf("%s(%d)", v, s.TopCounts[i])
		}
		return fmt.Sprintf("%-22s categorical missing %5.1f%%  distinct %d  top %s",
			s.Name, s.MissingRate*100, s.Distinct, strings.Join(tops, " "))
	default:
		return fmt.Sprintf("%-22s text        missing %5.1f%%  mean tokens %.1f",
			s.Name, s.MissingRate*100, s.MeanTokens)
	}
}
