package frame

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ColumnSpec declares the name and kind of a CSV column for ReadCSV.
type ColumnSpec struct {
	Name string
	Kind Kind
}

// ReadCSV parses CSV data with a header row into a dataframe according to
// specs. Header names must match the specs in order. Empty cells and "NA"
// become missing values.
func ReadCSV(r io.Reader, specs []ColumnSpec) (*DataFrame, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("frame: reading CSV header: %w", err)
	}
	if len(header) != len(specs) {
		return nil, fmt.Errorf("frame: CSV has %d columns, specs declare %d", len(header), len(specs))
	}
	for i, s := range specs {
		if strings.TrimSpace(header[i]) != s.Name {
			return nil, fmt.Errorf("frame: CSV column %d is %q, spec says %q", i, header[i], s.Name)
		}
	}

	nums := make([][]float64, len(specs))
	strs := make([][]string, len(specs))
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("frame: reading CSV row %d: %w", row, err)
		}
		for i, cell := range rec {
			cell = strings.TrimSpace(cell)
			if specs[i].Kind == Numeric {
				if cell == "" || cell == "NA" {
					nums[i] = append(nums[i], math.NaN())
					continue
				}
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("frame: row %d column %q: %w", row, specs[i].Name, err)
				}
				nums[i] = append(nums[i], v)
			} else {
				if cell == "NA" {
					cell = ""
				}
				strs[i] = append(strs[i], cell)
			}
		}
		row++
	}

	d := New()
	for i, s := range specs {
		switch s.Kind {
		case Numeric:
			d.AddNumeric(s.Name, nums[i])
		case Categorical:
			d.AddCategorical(s.Name, strs[i])
		case Text:
			d.AddText(s.Name, strs[i])
		}
	}
	return d, nil
}

// WriteCSV writes the dataframe as CSV with a header row. Missing numeric
// cells are written as "NA"; missing string cells as empty strings.
func (d *DataFrame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.ColumnNames()); err != nil {
		return fmt.Errorf("frame: writing CSV header: %w", err)
	}
	rec := make([]string, d.NumCols())
	for i := 0; i < d.NumRows(); i++ {
		for j, c := range d.cols {
			if c.Kind == Numeric {
				if math.IsNaN(c.Num[i]) {
					rec[j] = "NA"
				} else {
					rec[j] = strconv.FormatFloat(c.Num[i], 'g', -1, 64)
				}
			} else {
				rec[j] = c.Str[i]
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("frame: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
